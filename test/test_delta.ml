(* Tests for the delta-evaluation move kernel ([Delta]) and the
   annealing driver ([Lns]) on top of it: oracle bit-identity of the
   incremental evaluator, LIFO rollback restoring states bit-identically
   (the undo-log property), materialized schedules passing the
   independent checker, and the reproducible-polish contract. *)

module Rng = Resched_util.Rng
module Suite = Resched_platform.Suite
module Instance = Resched_platform.Instance
module Fp_cache = Resched_floorplan.Fp_cache
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Delta = Resched_core.Delta
module Lns = Resched_core.Lns

let config () =
  {
    Delta.default_config with
    Delta.cache = Some (Fp_cache.create ~subsumption:false ());
  }

let seed_schedule ?(tasks = 20) seed =
  let rng = Rng.create seed in
  let inst = Suite.instance rng ~tasks in
  let sched, _stats = Pa.run inst in
  sched

(* The same weighted proposal distribution [Lns] uses, local to the
   tests so the kernel properties do not depend on the driver. *)
let propose d rng =
  let n = Delta.size d in
  let regions = Array.of_list (Delta.live_regions d) in
  let pick_region () = regions.(Rng.int rng (Array.length regions)) in
  let have = Array.length regions > 0 in
  match Rng.int rng 6 with
  | 0 when have -> Delta.Reassign { task = Rng.int rng n; region = pick_region () }
  | 1 -> Delta.Swap { task_a = Rng.int rng n; task_b = Rng.int rng n }
  | 2 -> Delta.To_sw { task = Rng.int rng n; processor = Rng.int rng 2 }
  | 3 -> (
    let u = Rng.int rng n in
    match Instance.hw_impls (Delta.instance d) u with
    | [] -> Delta.To_sw { task = u; processor = 0 }
    | impls ->
      let idx, _ = List.nth impls (Rng.int rng (List.length impls)) in
      let region = if have && Rng.bool rng then Some (pick_region ()) else None in
      Delta.To_hw { task = u; impl_idx = idx; region })
  | 4 when have -> Delta.Merge { dst = pick_region (); src = pick_region () }
  | _ when have ->
    let r = pick_region () in
    let c = Delta.region_task_count d r in
    Delta.Split { region = r; keep = (if c < 2 then 1 else 1 + Rng.int rng (c - 1)) }
  | _ -> Delta.Swap { task_a = Rng.int rng n; task_b = Rng.int rng n }

(* --- of_schedule ------------------------------------------------- *)

let test_of_schedule_roundtrip () =
  let sched = seed_schedule 42 in
  let d = Delta.of_schedule ~config:(config ()) sched in
  Alcotest.(check bool) "times agree with the oracle" true (Delta.verify d);
  Alcotest.(check bool)
    "canonical makespan never exceeds the pipeline's" true
    (Delta.makespan d <= Schedule.makespan sched);
  let back = Delta.to_schedule d in
  (match Validate.check back with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "materialized schedule invalid: %a"
      (Fmt.list Validate.pp_violation) vs);
  Alcotest.(check int) "materialized makespan" (Delta.makespan d)
    (Schedule.makespan back)

(* --- incremental = oracle ---------------------------------------- *)

let test_incremental_matches_oracle () =
  let sched = seed_schedule 7 ~tasks:24 in
  let rng = Rng.create 99 in
  let d = Delta.of_schedule ~config:(config ()) sched in
  let o = Delta.of_schedule ~config:(config ()) sched in
  let applied = ref 0 in
  for _ = 1 to 300 do
    let mv = propose d rng in
    let vd = Delta.apply ~incremental:true d mv in
    let vo = Delta.apply ~incremental:false o mv in
    (match (vd, vo) with
    | Some a, Some b ->
      incr applied;
      Alcotest.(check int) "same makespan" b.Delta.makespan a.Delta.makespan;
      Alcotest.(check bool) "incremental state passes the oracle check" true
        (Delta.verify d);
      Alcotest.(check string) "bit-identical states" (Delta.fingerprint o)
        (Delta.fingerprint d);
      Delta.commit d;
      Delta.commit o
    | None, None -> ()
    | Some _, None -> Alcotest.fail "incremental accepted, oracle rejected"
    | None, Some _ -> Alcotest.fail "oracle accepted, incremental rejected")
  done;
  Alcotest.(check bool) "some moves actually applied" true (!applied > 10)

(* --- rollback (S3) ------------------------------------------------ *)

let prop_rollback_restores =
  QCheck.Test.make ~count:30
    ~name:"random moves + LIFO rollbacks restore a bit-identical state"
    QCheck.(triple small_int small_int (int_range 1 3))
    (fun (seed, moveseed, job) ->
      let sched = seed_schedule (1000 + (17 * job)) ~tasks:(10 + (6 * job)) in
      let d = Delta.of_schedule ~config:(config ()) sched in
      let rng = Rng.create (seed + (31 * moveseed)) in
      let before = Delta.fingerprint d in
      let applied = ref 0 in
      for _ = 1 to 40 do
        match Delta.apply d (propose d rng) with
        | Some _ -> incr applied
        | None -> ()
      done;
      for _ = 1 to !applied do
        Delta.rollback d
      done;
      String.equal before (Delta.fingerprint d))

let prop_commit_then_validate =
  QCheck.Test.make ~count:20
    ~name:"accepted move sequences materialize into valid schedules"
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, job) ->
      let sched = seed_schedule (2000 + (13 * job)) ~tasks:(12 + (5 * job)) in
      let d = Delta.of_schedule ~config:(config ()) sched in
      let rng = Rng.create seed in
      for _ = 1 to 60 do
        match Delta.apply d (propose d rng) with
        | Some v ->
          (* keep only states the independent checker can accept: the
             kernel tolerates over-capacity region sets (flagged through
             [fp_feasible]), [Validate] rejects them *)
          if v.Delta.fp_feasible then Delta.commit d else Delta.rollback d
        | None -> ()
      done;
      match Validate.check (Delta.to_schedule d) with
      | Ok () -> true
      | Error vs ->
        QCheck.Test.fail_reportf "invalid after committed moves: %a"
          (Fmt.list Validate.pp_violation) vs)

(* --- Lns ----------------------------------------------------------- *)

let test_polish_deterministic_and_no_worse () =
  let sched = seed_schedule 5 ~tasks:25 in
  let run () =
    Lns.polish ~config:(config ()) ~seed:11 ~min_moves:400 ~budget_seconds:0.
      sched
  in
  let a = run () and b = run () in
  Alcotest.(check int) "deterministic makespan" a.Lns.makespan b.Lns.makespan;
  Alcotest.(check int) "deterministic acceptance count" a.Lns.stats.Lns.accepted
    b.Lns.stats.Lns.accepted;
  Alcotest.(check bool) "never worse than the seed" true
    (a.Lns.makespan <= Schedule.makespan sched);
  match a.Lns.schedule with
  | None -> Alcotest.fail "feasible seed lost its schedule"
  | Some s -> (
    Alcotest.(check int) "reported makespan is the schedule's" a.Lns.makespan
      (Schedule.makespan s);
    match Validate.check s with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "polished schedule invalid: %a"
        (Fmt.list Validate.pp_violation) vs)

let () =
  Alcotest.run "delta"
    [
      ( "kernel",
        [
          Alcotest.test_case "of_schedule roundtrip" `Quick
            test_of_schedule_roundtrip;
          Alcotest.test_case "incremental = oracle over random moves" `Quick
            test_incremental_matches_oracle;
          QCheck_alcotest.to_alcotest prop_rollback_restores;
          QCheck_alcotest.to_alcotest prop_commit_then_validate;
        ] );
      ( "lns",
        [
          Alcotest.test_case "polish deterministic, never worse" `Quick
            test_polish_deterministic_and_no_worse;
        ] );
    ]
