(* Tests for the taskgraph substrate: DAG structure, topological sort and
   cycle detection, the CPM time windows, and the generators. *)

module Rng = Resched_util.Rng
module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Generator = Resched_taskgraph.Generator
module Dot = Resched_taskgraph.Dot

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 3;
  g

let test_graph_basics () =
  let g = diamond () in
  Alcotest.(check int) "size" 4 (Graph.size g);
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "no reverse edge" false (Graph.has_edge g 1 0);
  Alcotest.(check (list int)) "succs" [ 1; 2 ] (Graph.succs g 0);
  Alcotest.(check (list int)) "preds" [ 1; 2 ] (Graph.preds g 3);
  Alcotest.(check (list int)) "sources" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Graph.sinks g)

let test_graph_duplicate_edges_ignored () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 1;
  Alcotest.(check int) "single edge" 1 (Graph.edge_count g)

let test_graph_self_loop_rejected () =
  let g = Graph.create 2 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.add_edge: self loop") (fun () ->
      Graph.add_edge g 1 1)

let test_graph_copy_independent () =
  let g = diamond () in
  let h = Graph.copy g in
  Graph.add_edge h 1 2;
  Alcotest.(check bool) "copy got the edge" true (Graph.has_edge h 1 2);
  Alcotest.(check bool) "original untouched" false (Graph.has_edge g 1 2)

let test_topological_order () =
  let g = diamond () in
  let order = Graph.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i u -> pos.(u) <- i) order;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d before %d" u v)
        true
        (pos.(u) < pos.(v)))
    (Graph.edges g)

let test_cycle_detection () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 0;
  Alcotest.(check bool) "cyclic" false (Graph.is_acyclic g);
  match Graph.topological_order g with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Graph.Cycle _ -> ()

let test_reachable () =
  let g = diamond () in
  let r = Graph.reachable g 1 in
  Alcotest.(check bool) "1 reaches 3" true r.(3);
  Alcotest.(check bool) "1 does not reach 2" false r.(2);
  Alcotest.(check bool) "1 reaches itself" true r.(1)

let test_closure_matches_reachable () =
  let check_graph name g =
    let c = Graph.closure g in
    let n = Graph.size g in
    for u = 0 to n - 1 do
      let r = Graph.reachable g u in
      for v = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s: closure %d->%d" name u v)
          r.(v)
          (Graph.in_closure c u v)
      done
    done
  in
  check_graph "diamond" (diamond ());
  check_graph "empty" (Graph.create 3);
  let rng = Rng.create 11 in
  for i = 1 to 10 do
    let tasks = 2 + Rng.int rng 40 in
    check_graph
      (Printf.sprintf "layered-%d" i)
      (Generator.layered rng ~tasks ~width:4 ~edge_probability:0.15)
  done

let test_closure_is_a_snapshot () =
  let g = diamond () in
  let c = Graph.closure g in
  Graph.add_edge g 1 2;
  Alcotest.(check bool) "new edge not in snapshot" false
    (Graph.in_closure c 1 2);
  Alcotest.(check bool) "fresh closure sees it" true
    (Graph.in_closure (Graph.closure g) 1 2)

let test_marking_matches_reachable () =
  let rng = Rng.create 23 in
  for _ = 1 to 10 do
    let tasks = 2 + Rng.int rng 40 in
    let g = Generator.layered rng ~tasks ~width:4 ~edge_probability:0.15 in
    let u = Rng.int rng tasks in
    let fwd = Array.make tasks false in
    Graph.mark_reachable g u fwd;
    Alcotest.(check (array bool)) "mark_reachable = reachable"
      (Graph.reachable g u) fwd;
    (* Ancestors of u = nodes that reach u. *)
    let anc = Array.make tasks false in
    Graph.mark_coreachable g u anc;
    let expected = Array.init tasks (fun v -> (Graph.reachable g v).(u)) in
    Alcotest.(check (array bool)) "mark_coreachable = co-reachable" expected
      anc;
    (* Accumulation: marking a second root unions without clearing. *)
    let v = Rng.int rng tasks in
    Graph.mark_reachable g v fwd;
    let rv = Graph.reachable g v in
    let union = Array.mapi (fun i b -> b || rv.(i)) (Graph.reachable g u) in
    Alcotest.(check (array bool)) "marks accumulate" union fwd
  done

let test_restore_rewinds_edges () =
  let pristine = diamond () in
  let g = Graph.copy pristine in
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 3;
  Alcotest.(check int) "mutated" 6 (Graph.edge_count g);
  Graph.restore ~from:pristine g;
  Alcotest.(check int) "edge count rewound" (Graph.edge_count pristine)
    (Graph.edge_count g);
  Alcotest.(check bool) "inserted edge gone" false (Graph.has_edge g 1 2);
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "edge %d->%d kept" u v)
        true (Graph.has_edge g u v))
    (Graph.edges pristine);
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Graph.restore: size mismatch") (fun () ->
      Graph.restore ~from:(Graph.create 2) g)

let test_cpm_diamond () =
  let g = diamond () in
  let durations = [| 2; 5; 3; 4 |] in
  let cpm = Cpm.compute g ~durations in
  (* Critical path: 0 -> 1 -> 3 = 2 + 5 + 4 = 11. *)
  Alcotest.(check int) "makespan" 11 cpm.Cpm.makespan;
  Alcotest.(check (array int)) "t_min" [| 0; 2; 2; 7 |] cpm.Cpm.t_min;
  Alcotest.(check (array int)) "t_max" [| 2; 7; 7; 11 |] cpm.Cpm.t_max;
  Alcotest.(check (array bool)) "critical" [| true; true; false; true |]
    cpm.Cpm.critical;
  Alcotest.(check int) "slack of 2" 2 (Cpm.slack cpm ~durations 2);
  Alcotest.(check (list int)) "critical path" [ 0; 1; 3 ]
    (Cpm.critical_path cpm ~durations g)

let test_cpm_empty_durations () =
  let g = Graph.create 3 in
  let cpm = Cpm.compute g ~durations:[| 0; 0; 0 |] in
  Alcotest.(check int) "zero makespan" 0 cpm.Cpm.makespan

let test_cpm_release () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1;
  let cpm =
    Cpm.compute_with_release g ~durations:[| 3; 4 |] ~release:[| 5; 0 |]
  in
  Alcotest.(check int) "start release" 5 cpm.Cpm.t_min.(0);
  Alcotest.(check int) "succ sees release" 8 cpm.Cpm.t_min.(1);
  Alcotest.(check int) "makespan" 12 cpm.Cpm.makespan

let test_cpm_rejects_bad_input () =
  let g = Graph.create 2 in
  Alcotest.check_raises "length"
    (Invalid_argument "Cpm.compute: durations length mismatch") (fun () ->
      ignore (Cpm.compute g ~durations:[| 1 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Cpm.compute: negative duration") (fun () ->
      ignore (Cpm.compute g ~durations:[| 1; -2 |]))

let check_cpm_equal name (a : Cpm.t) (b : Cpm.t) =
  Alcotest.(check (array int)) (name ^ ": t_min") a.Cpm.t_min b.Cpm.t_min;
  Alcotest.(check (array int)) (name ^ ": t_max") a.Cpm.t_max b.Cpm.t_max;
  Alcotest.(check int) (name ^ ": makespan") a.Cpm.makespan b.Cpm.makespan;
  Alcotest.(check (array bool))
    (name ^ ": critical")
    a.Cpm.critical b.Cpm.critical;
  Alcotest.(check (array int)) (name ^ ": order") a.Cpm.order b.Cpm.order

let test_compute_with_matches_compute () =
  let rng = Rng.create 31 in
  let tasks = 40 in
  (* One set of buffers recycled across graphs and edge insertions, as
     the scheduler's window refresh uses it. *)
  let b = Cpm.make_buffers tasks in
  for i = 1 to 10 do
    let g = Generator.layered rng ~tasks ~width:5 ~edge_probability:0.1 in
    let durations = Array.init tasks (fun _ -> Rng.int rng 50) in
    check_cpm_equal
      (Printf.sprintf "graph %d" i)
      (Cpm.compute g ~durations)
      (Cpm.compute_with b g ~durations);
    (* Mutate the graph (as region/processor ordering edges do) and
       recompute on the same buffers. *)
    let order = Graph.topological_order g in
    for _ = 1 to 5 do
      let i = Rng.int rng (tasks - 1) in
      let j = i + 1 + Rng.int rng (tasks - i - 1) in
      Graph.add_edge g order.(i) order.(j)
    done;
    check_cpm_equal
      (Printf.sprintf "graph %d augmented" i)
      (Cpm.compute g ~durations)
      (Cpm.compute_with b g ~durations)
  done;
  let wrong = Cpm.make_buffers (tasks + 1) in
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Cpm.compute_with: buffers sized for a different graph")
    (fun () ->
      ignore
        (Cpm.compute_with wrong
           (Generator.chain tasks)
           ~durations:(Array.make tasks 1)))

let test_generator_chain () =
  let g = Generator.chain 5 in
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check (list int)) "single source" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "single sink" [ 4 ] (Graph.sinks g)

let test_generator_independent () =
  let g = Generator.independent 5 in
  Alcotest.(check int) "no edges" 0 (Graph.edge_count g)

let test_generator_fork_join () =
  let g = Generator.fork_join ~branches:3 ~depth:2 in
  Alcotest.(check int) "size" 8 (Graph.size g);
  Alcotest.(check (list int)) "one source" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "one sink" [ 7 ] (Graph.sinks g);
  Alcotest.(check bool) "acyclic" true (Graph.is_acyclic g)

let test_generator_layered_properties () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let tasks = 5 + Rng.int rng 60 in
    let g =
      Generator.layered rng ~tasks ~width:4 ~edge_probability:0.1
    in
    Alcotest.(check int) "size" tasks (Graph.size g);
    Alcotest.(check bool) "acyclic" true (Graph.is_acyclic g)
  done

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_dot_output () =
  let g = diamond () in
  let s = Dot.to_string ~name:"d" g in
  Alcotest.(check bool) "header" true (contains_substring s "digraph d");
  Alcotest.(check bool) "edge" true (contains_substring s "n0 -> n1");
  Alcotest.(check bool) "node" true (contains_substring s "n3 [label=\"3\"]")

(* Property: series_parallel generates acyclic graphs of the requested
   size. *)
let prop_series_parallel =
  QCheck.Test.make ~count:100 ~name:"series-parallel generator"
    QCheck.(pair int (int_range 1 40))
    (fun (seed, tasks) ->
      let rng = Rng.create seed in
      let g = Generator.series_parallel rng ~tasks in
      Graph.size g = tasks && Graph.is_acyclic g)

(* Property: random linear extensions respect all edges. *)
let prop_random_order_respects_edges =
  QCheck.Test.make ~count:100 ~name:"random linear extension"
    QCheck.(pair int (int_range 2 40))
    (fun (seed, tasks) ->
      let rng = Rng.create seed in
      let g = Generator.layered rng ~tasks ~width:3 ~edge_probability:0.15 in
      let order = Generator.random_orders_respecting rng g in
      let pos = Array.make tasks 0 in
      Array.iteri (fun i u -> pos.(u) <- i) order;
      List.for_all (fun (u, v) -> pos.(u) < pos.(v)) (Graph.edges g))

(* Property: CPM windows are consistent: t_min + dur <= t_max, and along
   every edge t_min(v) >= t_min(u) + dur(u). *)
let prop_cpm_windows =
  QCheck.Test.make ~count:100 ~name:"CPM window invariants"
    QCheck.(pair int (int_range 2 50))
    (fun (seed, tasks) ->
      let rng = Rng.create (seed lxor 0x9e37) in
      let g = Generator.layered rng ~tasks ~width:4 ~edge_probability:0.1 in
      let durations = Array.init tasks (fun _ -> 1 + Rng.int rng 100) in
      let cpm = Cpm.compute g ~durations in
      let ok = ref true in
      for u = 0 to tasks - 1 do
        if cpm.Cpm.t_min.(u) + durations.(u) > cpm.Cpm.t_max.(u) then ok := false;
        if cpm.Cpm.t_min.(u) + durations.(u) > cpm.Cpm.makespan then ok := false
      done;
      List.iter
        (fun (u, v) ->
          if cpm.Cpm.t_min.(v) < cpm.Cpm.t_min.(u) + durations.(u) then
            ok := false)
        (Graph.edges g);
      (* At least one critical task exists. *)
      !ok && Array.exists (fun c -> c) cpm.Cpm.critical)

let () =
  Alcotest.run "taskgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "duplicate edges" `Quick
            test_graph_duplicate_edges_ignored;
          Alcotest.test_case "self loop" `Quick test_graph_self_loop_rejected;
          Alcotest.test_case "copy" `Quick test_graph_copy_independent;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "reachability" `Quick test_reachable;
          Alcotest.test_case "closure = reachable" `Quick
            test_closure_matches_reachable;
          Alcotest.test_case "closure snapshots" `Quick
            test_closure_is_a_snapshot;
          Alcotest.test_case "marking = reachable" `Quick
            test_marking_matches_reachable;
          Alcotest.test_case "restore" `Quick test_restore_rewinds_edges;
        ] );
      ( "cpm",
        [
          Alcotest.test_case "diamond" `Quick test_cpm_diamond;
          Alcotest.test_case "zero durations" `Quick test_cpm_empty_durations;
          Alcotest.test_case "release times" `Quick test_cpm_release;
          Alcotest.test_case "input validation" `Quick
            test_cpm_rejects_bad_input;
          Alcotest.test_case "compute_with = compute" `Quick
            test_compute_with_matches_compute;
        ] );
      ( "generators",
        [
          Alcotest.test_case "chain" `Quick test_generator_chain;
          Alcotest.test_case "independent" `Quick test_generator_independent;
          Alcotest.test_case "fork-join" `Quick test_generator_fork_join;
          Alcotest.test_case "layered" `Quick test_generator_layered_properties;
          Alcotest.test_case "dot export" `Quick test_dot_output;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_series_parallel;
          QCheck_alcotest.to_alcotest prop_random_order_respects_edges;
          QCheck_alcotest.to_alcotest prop_cpm_windows;
        ] );
    ]
