(* Tests for the fault-injection layer and the self-healing repair
   engine: fault plans, single repairs per fault kind and policy, the
   event-driven executor replay, and the Monte-Carlo campaign. *)

module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Repair = Resched_core.Repair
module Fault = Resched_sim.Fault
module Executor = Resched_sim.Executor
module Campaign = Resched_sim.Campaign

let fixture ?(tasks = 20) seed =
  let rng = Rng.create seed in
  let inst = Suite.instance rng ~tasks in
  fst (Pa.run inst)

(* A schedule with at least one region hosting >= 2 tasks (so it has a
   reconfiguration); the suite+PA fixtures have these for most seeds. *)
let fixture_with_reconf () =
  let rec hunt seed =
    if seed > 60 then Alcotest.fail "no fixture with a reconfiguration found";
    let sched = fixture seed in
    if sched.Schedule.reconfigurations <> [] then sched else hunt (seed + 1)
  in
  hunt 1

let fixture_with_region () =
  let rec hunt seed =
    if seed > 60 then Alcotest.fail "no fixture with a used region found";
    let sched = fixture seed in
    if
      Array.exists
        (fun (r : Schedule.region) -> r.Schedule.tasks <> [])
        sched.Schedule.regions
    then sched
    else hunt (seed + 1)
  in
  hunt 1

let check_valid label sched =
  match Validate.check sched with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: repaired schedule invalid: %s" label
      (String.concat "; "
         (List.map
            (fun (v : Validate.violation) -> v.Validate.message)
            vs))

let policies = [ Repair.Retry; Repair.Sw_fallback; Repair.Resched_tail ]

(* ------------------------------------------------------------------ *)
(* Single repairs                                                      *)

let test_overrun_all_policies () =
  let sched = fixture 3 in
  let task = 0 in
  let s = sched.Schedule.slots.(task) in
  let fault =
    Repair.Task_overrun { task; end_at = s.Schedule.end_ + 7 }
  in
  List.iter
    (fun policy ->
      match Repair.repair ~policy ~at:s.Schedule.end_ ~fault sched with
      | Error msg -> Alcotest.failf "overrun repair failed: %s" msg
      | Ok (repaired, actions) ->
        check_valid "overrun" repaired;
        Alcotest.(check bool) "task end pushed to the realized end" true
          (repaired.Schedule.slots.(task).Schedule.end_ = s.Schedule.end_ + 7);
        Alcotest.(check bool) "a retime action is reported" true
          (List.exists (fun a -> Repair.action_key a = "retime") actions))
    policies

let test_reconf_retry_within_budget () =
  let sched = fixture_with_reconf () in
  let rc = List.hd sched.Schedule.reconfigurations in
  let fault =
    Repair.Reconf_failed
      {
        region = rc.Schedule.region;
        t_in = rc.Schedule.t_in;
        t_out = rc.Schedule.t_out;
        failures = 2;
      }
  in
  let dur = rc.Schedule.r_end - rc.Schedule.r_start in
  List.iter
    (fun policy ->
      match
        Repair.repair ~max_attempts:3 ~backoff:2 ~policy
          ~at:rc.Schedule.r_start ~fault sched
      with
      | Error msg -> Alcotest.failf "retryable failure not repaired: %s" msg
      | Ok (repaired, actions) ->
        check_valid "reconf-retry" repaired;
        Alcotest.(check bool) "a retry action is reported" true
          (List.exists (fun a -> Repair.action_key a = "retry") actions);
        let rc' =
          List.find
            (fun (r : Schedule.reconfiguration) ->
              r.Schedule.region = rc.Schedule.region
              && r.Schedule.t_in = rc.Schedule.t_in
              && r.Schedule.t_out = rc.Schedule.t_out)
            repaired.Schedule.reconfigurations
        in
        Alcotest.(check int) "successful load delayed by 2 attempts + backoff"
          (rc.Schedule.r_start + (2 * (dur + 2)))
          rc'.Schedule.r_start)
    policies

let test_reconf_permanent_by_policy () =
  let sched = fixture_with_reconf () in
  let rc = List.hd sched.Schedule.reconfigurations in
  let fault =
    Repair.Reconf_failed
      {
        region = rc.Schedule.region;
        t_in = rc.Schedule.t_in;
        t_out = rc.Schedule.t_out;
        failures = 3;
      }
  in
  (match
     Repair.repair ~max_attempts:3 ~policy:Repair.Retry ~at:rc.Schedule.r_start
       ~fault sched
   with
  | Ok _ -> Alcotest.fail "Retry must not recover a permanent load failure"
  | Error _ -> ());
  List.iter
    (fun policy ->
      match
        Repair.repair ~max_attempts:3 ~policy ~at:rc.Schedule.r_start ~fault
          sched
      with
      | Error msg -> Alcotest.failf "permanent failure not recovered: %s" msg
      | Ok (repaired, actions) ->
        check_valid "reconf-permanent" repaired;
        Alcotest.(check bool) "the outgoing task migrated" true
          (List.exists
             (fun a ->
               match a with
               | Repair.Migrated { task; _ } -> task = rc.Schedule.t_out
               | _ -> false)
             actions);
        (* The migrated task now runs a software implementation on a
           processor. *)
        let s = repaired.Schedule.slots.(rc.Schedule.t_out) in
        (match s.Schedule.placement with
        | Schedule.On_processor _ -> ()
        | Schedule.On_region _ ->
          Alcotest.fail "migrated task still on a region");
        let i =
          Instance.impl repaired.Schedule.instance ~task:rc.Schedule.t_out
            ~idx:s.Schedule.impl_idx
        in
        Alcotest.(check bool) "migrated task is software" true (Impl.is_sw i))
    [ Repair.Sw_fallback; Repair.Resched_tail ]

let test_region_death_by_policy () =
  let sched = fixture_with_region () in
  let region =
    let found = ref (-1) in
    Array.iteri
      (fun i (r : Schedule.region) ->
        if !found < 0 && r.Schedule.tasks <> [] then found := i)
      sched.Schedule.regions;
    !found
  in
  let fault = Repair.Region_dead { region } in
  (match Repair.repair ~policy:Repair.Retry ~at:0 ~fault sched with
  | Ok _ -> Alcotest.fail "Retry must not recover a dead region"
  | Error _ -> ());
  List.iter
    (fun policy ->
      match Repair.repair ~policy ~at:0 ~fault sched with
      | Error msg -> Alcotest.failf "region death not recovered: %s" msg
      | Ok (repaired, _) ->
        check_valid "region-death" repaired;
        Alcotest.(check (list int)) "dead region emptied" []
          repaired.Schedule.regions.(region).Schedule.tasks;
        (* No reconfiguration references the dead region any more (its
           whole task list migrated at t=0). *)
        Alcotest.(check bool) "no reconfigurations into the dead region" true
          (List.for_all
             (fun (rc : Schedule.reconfiguration) ->
               rc.Schedule.region <> region)
             repaired.Schedule.reconfigurations))
    [ Repair.Sw_fallback; Repair.Resched_tail ]

let test_region_death_mid_run_keeps_prefix () =
  let sched = fixture_with_reconf () in
  (* Find a region with >= 2 tasks and kill it right after its first
     task finishes: the finished prefix must stay, the suffix must
     migrate. *)
  let region, first, rest =
    let found = ref None in
    Array.iteri
      (fun i (r : Schedule.region) ->
        match
          (!found, Schedule.region_tasks_in_order sched i, r.Schedule.tasks)
        with
        | None, a :: (_ :: _ as tl), _ -> found := Some (i, a, tl)
        | _ -> ())
      sched.Schedule.regions;
    match !found with
    | Some (i, a, tl) -> (i, a, tl)
    | None -> Alcotest.fail "no region with two tasks"
  in
  let at = sched.Schedule.slots.(first).Schedule.end_ in
  match
    Repair.repair ~policy:Repair.Sw_fallback ~at
      ~fault:(Repair.Region_dead { region }) sched
  with
  | Error msg -> Alcotest.failf "mid-run region death not recovered: %s" msg
  | Ok (repaired, _) ->
    check_valid "mid-run region death" repaired;
    Alcotest.(check (list int)) "finished prefix kept" [ first ]
      repaired.Schedule.regions.(region).Schedule.tasks;
    Alcotest.(check bool) "finished task kept its committed slot" true
      (repaired.Schedule.slots.(first) = sched.Schedule.slots.(first));
    List.iter
      (fun u ->
        match repaired.Schedule.slots.(u).Schedule.placement with
        | Schedule.On_processor _ -> ()
        | Schedule.On_region _ -> Alcotest.failf "task %d did not migrate" u)
      rest

let test_resched_tail_never_worse_than_shift () =
  (* Compaction can only help: under the same fault, Resched_tail's
     repaired makespan is <= Sw_fallback's. *)
  List.iter
    (fun seed ->
      let sched = fixture seed in
      match sched.Schedule.reconfigurations with
      | [] -> ()
      | rc :: _ ->
        let fault =
          Repair.Reconf_failed
            {
              region = rc.Schedule.region;
              t_in = rc.Schedule.t_in;
              t_out = rc.Schedule.t_out;
              failures = 9;
            }
        in
        let span policy =
          match
            Repair.repair ~max_attempts:3 ~policy ~at:rc.Schedule.r_start
              ~fault sched
          with
          | Ok (r, _) -> Schedule.makespan r
          | Error msg -> Alcotest.failf "seed %d: %s" seed msg
        in
        Alcotest.(check bool) "tail rescheduling never loses to shifting" true
          (span Repair.Resched_tail <= span Repair.Sw_fallback))
    [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* The no-software-fallback edge case                                  *)

(* Hand-built: two HW-only tasks sharing one region. Bypasses
   [Instance.make] (which insists on software implementations) to model
   a system whose tasks exist only as bitstreams. *)
let hw_only_schedule () =
  let arch = Arch.mini in
  let graph = Graph.create 2 in
  Graph.add_edge graph 0 1;
  let res = Resource.make ~clb:2 ~bram:0 ~dsp:0 in
  let hw = Impl.hw ~time:5 ~res () in
  let inst : Instance.t =
    {
      Instance.arch;
      graph;
      names = [| "t0"; "t1" |];
      impls = [| [| hw |]; [| hw |] |];
    }
  in
  let region =
    { Schedule.res; reconf_ticks = 3; tasks = [ 0; 1 ] }
  in
  let slots =
    [|
      { Schedule.impl_idx = 0; placement = Schedule.On_region 0; start_ = 0;
        end_ = 5 };
      { Schedule.impl_idx = 0; placement = Schedule.On_region 0; start_ = 8;
        end_ = 13 };
    |]
  in
  let reconfigurations =
    [ { Schedule.region = 0; t_in = 0; t_out = 1; r_start = 5; r_end = 8 } ]
  in
  {
    Schedule.instance = inst;
    regions = [| region |];
    slots;
    reconfigurations;
    makespan = 13;
    floorplan = None;
    module_reuse = false;
    resource_scale = 1.0;
  }

let test_no_sw_fallback_is_unrecoverable () =
  let sched = hw_only_schedule () in
  check_valid "hand-built HW-only schedule" sched;
  List.iter
    (fun policy ->
      match
        Repair.repair ~policy ~at:0 ~fault:(Repair.Region_dead { region = 0 })
          sched
      with
      | Ok _ -> Alcotest.fail "migration without a SW implementation"
      | Error msg ->
        Alcotest.(check bool) "error names the missing SW implementation" true
          (let has sub s =
             let n = String.length sub and m = String.length s in
             let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
             go 0
           in
           has "software" msg))
    [ Repair.Sw_fallback; Repair.Resched_tail ]

(* ------------------------------------------------------------------ *)
(* Executor integration                                                *)

let test_duplicate_reconf_detected () =
  let sched = fixture_with_reconf () in
  let rc = List.hd sched.Schedule.reconfigurations in
  let corrupted =
    {
      sched with
      Schedule.reconfigurations = rc :: sched.Schedule.reconfigurations;
    }
  in
  match Executor.execute ~jitter:Executor.Deterministic corrupted with
  | _ -> Alcotest.fail "expected Replay_error on a duplicate reconfiguration"
  | exception Executor.Replay_error _ -> ()

let default_plan seed sched =
  Fault.sample (Rng.create seed) sched

(* The instance inside a schedule holds the device's bitstream model (a
   closure), so whole-trial structural equality is not defined; project
   every trial down to its pure data before comparing. *)
let trial_data (t : Executor.fault_trial) =
  ( ( t.Executor.survived,
      t.Executor.fired,
      t.Executor.moot,
      t.Executor.actions,
      t.Executor.failure ),
    ( t.Executor.schedule.Schedule.slots,
      t.Executor.schedule.Schedule.reconfigurations,
      t.Executor.schedule.Schedule.makespan,
      Array.map
        (fun (r : Schedule.region) -> r.Schedule.tasks)
        t.Executor.schedule.Schedule.regions ),
    (t.Executor.static_makespan, t.Executor.final_makespan,
     t.Executor.degradation) )

let test_replay_faults_deterministic () =
  let sched = fixture 11 in
  List.iter
    (fun policy ->
      let a = Executor.replay_faults ~policy ~plan:(default_plan 5 sched) sched
      and b =
        Executor.replay_faults ~policy ~plan:(default_plan 5 sched) sched
      in
      Alcotest.(check bool) "equal plans replay bit-identically" true
        (trial_data a = trial_data b))
    policies

let test_replay_survives_with_sw_policies () =
  (* Every suite task has a SW implementation, so Sw_fallback and
     Resched_tail must recover 100% of default-plan trials. *)
  List.iter
    (fun seed ->
      let sched = fixture seed in
      List.iter
        (fun policy ->
          List.iter
            (fun fseed ->
              let plan = default_plan fseed sched in
              let t = Executor.replay_faults ~policy ~plan sched in
              if not t.Executor.survived then
                Alcotest.failf "seed %d/%d under %s: %s" seed fseed
                  (Repair.policy_name policy)
                  (Option.value ~default:"?" t.Executor.failure);
              check_valid "survivor" t.Executor.schedule)
            [ 1; 2; 3; 4; 5; 6; 7; 8 ])
        [ Repair.Sw_fallback; Repair.Resched_tail ])
    [ 2; 9 ]

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)

let test_campaign_jobs_invariant () =
  let sched = fixture 7 in
  List.iter
    (fun policy ->
      let run jobs =
        Campaign.run ~jobs ~trials:40 ~seed:123 ~policy sched
      in
      Alcotest.(check bool) "jobs=1 equals jobs=4" true (run 1 = run 4))
    policies

let test_campaign_full_recovery () =
  let sched = fixture 4 in
  List.iter
    (fun policy ->
      let s = Campaign.run ~jobs:2 ~trials:60 ~seed:99 ~policy sched in
      Alcotest.(check int) "every trial survives" s.Campaign.trials
        s.Campaign.survived;
      Alcotest.(check bool) "every repaired schedule validates" true
        s.Campaign.all_valid;
      Alcotest.(check bool) "degradation is >= 1 on average" true
        (s.Campaign.mean_degradation >= 1.0 || s.Campaign.faults_fired = 0))
    [ Repair.Sw_fallback; Repair.Resched_tail ]

let test_campaign_retry_weaker () =
  (* Retry cannot recover permanent faults; with death probability
     forced up it must lose trials that the SW policies survive. *)
  let sched = fixture_with_region () in
  let spec =
    { Fault.default_spec with Fault.p_region_death = 0.9; p_overrun = 0. }
  in
  let rate policy =
    (Campaign.run ~spec ~trials:40 ~seed:5 ~policy sched).Campaign.survival_rate
  in
  Alcotest.(check bool) "retry loses trials" true (rate Repair.Retry < 1.0);
  Alcotest.(check (float 0.0)) "sw-fallback survives all" 1.0
    (rate Repair.Sw_fallback)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_repair_always_validates =
  QCheck.Test.make ~count:40
    ~name:"replayed faults always yield validated schedules"
    QCheck.(triple small_int (int_range 8 25) (int_range 0 2))
    (fun (seed, tasks, pidx) ->
      let policy = List.nth policies pidx in
      let sched = fixture ~tasks (1 + (seed mod 50)) in
      let spec =
        {
          Fault.default_spec with
          Fault.p_reconf_fail = 0.5;
          p_overrun = 0.3;
          p_region_death = 0.3;
        }
      in
      let plan = Fault.sample (Rng.create (seed * 31 + 7)) ~spec sched in
      let t = Executor.replay_faults ~policy ~plan sched in
      (* Survived or not, the last schedule standing must validate. *)
      Validate.check t.Executor.schedule = Ok ()
      && ((not t.Executor.survived) || t.Executor.degradation >= 0.99))

let prop_equal_seeds_equal_campaigns =
  QCheck.Test.make ~count:10 ~name:"campaigns are seed-deterministic"
    QCheck.(pair small_int (int_range 8 20))
    (fun (seed, tasks) ->
      let sched = fixture ~tasks (1 + (seed mod 20)) in
      let run jobs =
        Campaign.run ~jobs ~trials:12 ~seed:(seed + 1) ~policy:Repair.Resched_tail
          sched
      in
      run 1 = run 3)

let () =
  Alcotest.run "fault"
    [
      ( "repair",
        [
          Alcotest.test_case "overrun repairs under every policy" `Quick
            test_overrun_all_policies;
          Alcotest.test_case "reconf retry within budget" `Quick
            test_reconf_retry_within_budget;
          Alcotest.test_case "permanent reconf failure by policy" `Quick
            test_reconf_permanent_by_policy;
          Alcotest.test_case "region death by policy" `Quick
            test_region_death_by_policy;
          Alcotest.test_case "mid-run region death keeps prefix" `Quick
            test_region_death_mid_run_keeps_prefix;
          Alcotest.test_case "resched-tail never worse than shift" `Quick
            test_resched_tail_never_worse_than_shift;
          Alcotest.test_case "no-SW fallback is unrecoverable" `Quick
            test_no_sw_fallback_is_unrecoverable;
        ] );
      ( "executor",
        [
          Alcotest.test_case "duplicate reconfiguration detected" `Quick
            test_duplicate_reconf_detected;
          Alcotest.test_case "fault replay deterministic" `Quick
            test_replay_faults_deterministic;
          Alcotest.test_case "SW policies survive default plans" `Quick
            test_replay_survives_with_sw_policies;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs-invariant results" `Quick
            test_campaign_jobs_invariant;
          Alcotest.test_case "full recovery with SW policies" `Quick
            test_campaign_full_recovery;
          Alcotest.test_case "retry is weaker under forced deaths" `Quick
            test_campaign_retry_weaker;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_repair_always_validates;
          QCheck_alcotest.to_alcotest prop_equal_seeds_equal_campaigns;
        ] );
    ]
