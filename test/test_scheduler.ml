(* End-to-end and per-step tests for the PA / PA-R schedulers. *)

module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache
module Graph = Resched_taskgraph.Graph
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Pa = Resched_core.Pa
module Pa_random = Resched_core.Pa_random
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Impl_select = Resched_core.Impl_select
module Cost = Resched_core.Cost
module State = Resched_core.State
module Regions_define = Resched_core.Regions_define
module Sw_balance = Resched_core.Sw_balance
module Metrics = Resched_core.Metrics

let validate_or_fail sched =
  match Validate.check sched with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "invalid schedule: %s"
      (String.concat "; "
         (List.map (fun (v : Validate.violation) -> v.message) vs))

(* A small hand-built instance mirroring Fig. 1: t1 with a fast/large and
   a slow/small implementation, t2 and t3 with one implementation each,
   dependencies t1 -> t3 (and t2 independent). *)
let fig1_like_instance ?(arch = Arch.mini) () =
  let graph = Graph.create 3 in
  Graph.add_edge graph 0 2;
  let big = Resource.make ~clb:500 ~bram:10 ~dsp:10 in
  let small = Resource.make ~clb:150 ~bram:2 ~dsp:2 in
  let impls =
    [|
      [|
        Impl.sw ~time:5000;
        Impl.hw ~time:200 ~res:big ();
        Impl.hw ~time:420 ~res:small ();
      |];
      [| Impl.sw ~time:4000; Impl.hw ~time:300 ~res:small () |];
      [| Impl.sw ~time:4500; Impl.hw ~time:350 ~res:small () |];
    |]
  in
  Instance.make ~arch ~graph ~impls ()

let test_impl_select_prefers_cheap_hw () =
  let inst = fig1_like_instance () in
  let impl_of = Impl_select.run inst ~max_res:(Arch.max_res Arch.mini) in
  (* All hardware implementations beat software times by far. *)
  Array.iteri
    (fun task idx ->
      let i = Instance.impl inst ~task ~idx in
      Alcotest.(check bool)
        (Printf.sprintf "task %d selects hardware" task)
        true (Impl.is_hw i))
    impl_of

let test_efficiency_orders_small_impls_higher () =
  let inst = fig1_like_instance () in
  let cost = Cost.make inst ~max_res:(Arch.max_res Arch.mini) in
  let big = Instance.impl inst ~task:0 ~idx:1 in
  let small = Instance.impl inst ~task:0 ~idx:2 in
  Alcotest.(check bool)
    "small/slow implementation has higher efficiency index" true
    (Cost.efficiency cost small > Cost.efficiency cost big)

let test_pa_on_fig1_like () =
  let inst = fig1_like_instance () in
  let sched, stats = Pa.run inst in
  validate_or_fail sched;
  Alcotest.(check bool) "at least one attempt" true (stats.Pa.attempts >= 1);
  Alcotest.(check bool)
    "beats the all-software schedule" true
    (Schedule.makespan sched
    < Schedule.makespan (Pa.all_software_schedule inst))

let test_all_software_schedule_valid () =
  let rng = Rng.create 7 in
  let inst = Suite.instance rng ~tasks:25 in
  let sched = Pa.all_software_schedule inst in
  validate_or_fail sched;
  Alcotest.(check int) "no region" 0 (Array.length sched.Schedule.regions);
  Alcotest.(check int) "no hw task" 0 (Schedule.hw_task_count sched)

let test_pa_on_suite_instances () =
  List.iter
    (fun tasks ->
      let rng = Rng.create (1000 + tasks) in
      let inst = Suite.instance rng ~tasks in
      let sched, _ = Pa.run inst in
      validate_or_fail sched;
      let m = Metrics.compute sched in
      Alcotest.(check bool)
        (Printf.sprintf "%d tasks: makespan >= CPM lower bound" tasks)
        true
        (m.Metrics.makespan >= m.Metrics.critical_path_lower_bound))
    [ 10; 20; 40 ]

let test_pa_respects_floorplan () =
  let rng = Rng.create 99 in
  let inst = Suite.instance rng ~tasks:30 in
  let sched, _ = Pa.run inst in
  match sched.Schedule.floorplan with
  | None -> Alcotest.fail "PA.run must attach a floorplan"
  | Some placements ->
    Alcotest.(check int) "one placement per region"
      (Array.length sched.Schedule.regions)
      (Array.length placements)

let test_par_improves_or_matches_pa () =
  let rng = Rng.create 5 in
  let inst = Suite.instance rng ~tasks:30 in
  let pa_sched, _ = Pa.run inst in
  let outcome = Pa_random.run ~seed:11 ~budget_seconds:0.5 inst in
  match outcome.Pa_random.schedule with
  | None -> Alcotest.fail "PA-R found no feasible schedule"
  | Some sched ->
    validate_or_fail sched;
    Alcotest.(check bool) "ran several iterations" true
      (outcome.Pa_random.iterations > 1);
    (* Not guaranteed to beat PA, but must be in a sane range. *)
    Alcotest.(check bool) "within 3x of PA" true
      (Schedule.makespan sched < 3 * Schedule.makespan pa_sched)

let test_par_trace_monotone () =
  let rng = Rng.create 21 in
  let inst = Suite.instance rng ~tasks:20 in
  let outcome = Pa_random.run ~seed:3 ~budget_seconds:0.3 inst in
  let rec decreasing = function
    | (a : Pa_random.trace_point) :: (b : Pa_random.trace_point) :: tl ->
      a.Pa_random.makespan > b.Pa_random.makespan && decreasing (b :: tl)
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "trace strictly improves" true
    (decreasing outcome.Pa_random.trace)

let test_module_reuse_never_worse () =
  (* With module reuse on, consecutive same-module tasks skip their
     reconfiguration; the schedule must stay valid. *)
  let rng = Rng.create 31 in
  let inst = Suite.instance rng ~tasks:30 in
  let config = { Pa.default_config with Pa.module_reuse = true } in
  let sched, _ = Pa.run ~config inst in
  validate_or_fail sched

let test_chain_graph () =
  (* A pure pipeline: no HW parallelism available; PA must still emit a
     valid schedule (the paper notes chains are its worst case). *)
  let graph = Resched_taskgraph.Generator.chain 8 in
  let rng = Rng.create 17 in
  let mk _ =
    let t = 100 + Rng.int rng 400 in
    [|
      Impl.sw ~time:(8 * t);
      Impl.hw ~time:t ~res:(Resource.make ~clb:(100 + Rng.int rng 200) ~bram:1 ~dsp:0) ();
    |]
  in
  let impls = Array.init 8 mk in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let sched, _ = Pa.run inst in
  validate_or_fail sched

let test_independent_tasks () =
  let graph = Resched_taskgraph.Generator.independent 6 in
  let impls =
    Array.init 6 (fun i ->
        [|
          Impl.sw ~time:2000;
          Impl.hw ~time:(200 + (10 * i))
            ~res:(Resource.make ~clb:120 ~bram:1 ~dsp:1) ();
        |])
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let sched, _ = Pa.run inst in
  validate_or_fail sched

let test_sw_only_instance () =
  (* No hardware implementation anywhere: PA degenerates to SW mapping. *)
  let graph = Resched_taskgraph.Generator.chain 4 in
  let impls = Array.init 4 (fun _ -> [| Impl.sw ~time:50 |]) in
  let inst = Instance.make ~arch:Arch.zedboard ~graph ~impls () in
  let sched, _ = Pa.run inst in
  validate_or_fail sched;
  Alcotest.(check int) "chain of 4 x 50" 200 (Schedule.makespan sched)

let test_region_compatibility_predicates () =
  (* Two independent HW tasks; a region hosting one accepts the other
     only when the reconfiguration fits between their windows. *)
  let graph = Graph.create 2 in
  let res = Resource.make ~clb:100 ~bram:0 ~dsp:0 in
  let impls =
    Array.init 2 (fun _ -> [| Impl.sw ~time:9000; Impl.hw ~time:50 ~res () |])
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let state = State.create inst ~impl_of:[| 1; 1 |] () in
  let region = State.new_region state res in
  State.assign_to_region state ~task:0 region;
  (* Windows of independent equal tasks overlap: no critical (or
     non-critical) sharing possible. *)
  Alcotest.(check bool) "critical: overlapping windows rejected" false
    (Regions_define.region_compatible_critical state ~task:1 region);
  Alcotest.(check bool) "non-critical: overlapping windows rejected" false
    (Regions_define.region_compatible_non_critical state ~task:1 region)

let test_region_compatibility_with_gap () =
  (* A dependency chain separates the windows; the reconfiguration (73
     ticks for 100 CLB) must fit in the inter-window gap. *)
  let mk gap_filler =
    let graph = Graph.create 3 in
    Graph.add_edge graph 0 1;
    Graph.add_edge graph 1 2;
    let res = Resource.make ~clb:100 ~bram:0 ~dsp:0 in
    let impls =
      [|
        [| Impl.sw ~time:9000; Impl.hw ~time:50 ~res () |];
        [| Impl.sw ~time:gap_filler |];
        [| Impl.sw ~time:9000; Impl.hw ~time:50 ~res () |];
      |]
    in
    let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
    let state = State.create inst ~impl_of:[| 1; 0; 1 |] () in
    let region = State.new_region state res in
    State.assign_to_region state ~task:0 region;
    (state, region)
  in
  (* Middle software task of 100 ticks: gap 100 >= 73 -> compatible. *)
  let state, region = mk 100 in
  Alcotest.(check bool) "wide gap accepted" true
    (Regions_define.region_compatible_critical state ~task:2 region);
  (* Middle software task of 20 ticks: gap 20 < 73 -> rejected for a
     critical task, but fine for the non-critical rule (no reconf check). *)
  let state, region = mk 20 in
  Alcotest.(check bool) "narrow gap rejected (critical)" false
    (Regions_define.region_compatible_critical state ~task:2 region);
  Alcotest.(check bool) "narrow gap accepted (non-critical)" true
    (Regions_define.region_compatible_non_critical state ~task:2 region)

let test_tot_rec_time () =
  let inst = fig1_like_instance () in
  let impl_of = Impl_select.run inst ~max_res:(Arch.max_res Arch.mini) in
  let state = State.create inst ~impl_of () in
  Alcotest.(check int) "no region yet" 0 (Sw_balance.tot_rec_time state);
  let region = State.new_region state (Resource.make ~clb:100 ~bram:0 ~dsp:0) in
  State.assign_to_region state ~task:1 region;
  Alcotest.(check int) "single task region still 0" 0
    (Sw_balance.tot_rec_time state)

let trace_makespans (o : Pa_random.outcome) =
  List.map (fun (p : Pa_random.trace_point) -> p.Pa_random.makespan)
    o.Pa_random.trace

let test_run_parallel_jobs1_matches_sequential () =
  (* With a zero budget and a fixed min_iterations both runs execute the
     exact same finite stream, so the outcomes must be identical; a
     subsumption-free cache only memoizes the deterministic check so it
     cannot change the result either. *)
  let rng = Rng.create 8 in
  let inst = Suite.instance rng ~tasks:15 in
  let seq = Pa_random.run ~seed:9 ~min_iterations:12 ~budget_seconds:0. inst in
  let par =
    Pa_random.run_parallel ~jobs:1 ~seed:9 ~min_iterations:12
      ~budget_seconds:0. inst
  in
  let cached =
    Pa_random.run ~seed:9 ~min_iterations:12
      ~cache:(Fp_cache.create ~subsumption:false ())
      ~budget_seconds:0. inst
  in
  Alcotest.(check int) "same iteration count" seq.Pa_random.iterations
    par.Pa_random.iterations;
  let makespan o =
    match o.Pa_random.schedule with
    | Some s -> Schedule.makespan s
    | None -> -1
  in
  Alcotest.(check int) "same best makespan" (makespan seq) (makespan par);
  Alcotest.(check (list int)) "same trace" (trace_makespans seq)
    (trace_makespans par);
  Alcotest.(check int) "cache does not change the result" (makespan seq)
    (makespan cached);
  Alcotest.(check (list int)) "cache does not change the trace"
    (trace_makespans seq) (trace_makespans cached)

let test_run_parallel_valid_schedule_and_trace () =
  let rng = Rng.create 13 in
  let inst = Suite.instance rng ~tasks:20 in
  let cache = Fp_cache.create () in
  let outcome =
    Pa_random.run_parallel ~jobs:3 ~seed:4 ~min_iterations:9 ~cache
      ~budget_seconds:0.2 inst
  in
  Alcotest.(check bool) "total min iterations honored" true
    (outcome.Pa_random.iterations >= 9);
  (match outcome.Pa_random.schedule with
  | None -> Alcotest.fail "parallel PA-R found no feasible schedule"
  | Some sched -> validate_or_fail sched);
  (* The merged trace must be globally ordered and strictly improving. *)
  let rec ordered = function
    | (a : Pa_random.trace_point) :: (b : Pa_random.trace_point) :: tl ->
      a.Pa_random.elapsed <= b.Pa_random.elapsed
      && a.Pa_random.makespan > b.Pa_random.makespan
      && ordered (b :: tl)
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "merged trace ordered and improving" true
    (ordered outcome.Pa_random.trace);
  (* The best schedule's makespan is the trace's last point. *)
  match (outcome.Pa_random.schedule, List.rev outcome.Pa_random.trace) with
  | Some sched, last :: _ ->
    Alcotest.(check int) "trace ends at the best makespan"
      (Schedule.makespan sched) last.Pa_random.makespan
  | _ -> ()

let test_par_min_iterations () =
  (* Even a zero budget must run at least one iteration (and with the
     adaptive scale, usually find something feasible on retries). *)
  let rng = Rng.create 44 in
  let inst = Suite.instance rng ~tasks:12 in
  let outcome = Pa_random.run ~seed:5 ~min_iterations:8 ~budget_seconds:0. inst in
  Alcotest.(check bool) "at least 8 iterations" true
    (outcome.Pa_random.iterations >= 8)

let test_reconf_sched_sequences_all () =
  (* Step 7 must sequence exactly the region-internal reconfigurations
     and keep them disjoint on the controller (checked via validation of
     the final schedule, and structurally here). *)
  let rng = Rng.create 50 in
  let inst = Suite.instance rng ~tasks:25 in
  let impl_of =
    Resched_core.Impl_select.run inst ~max_res:(Arch.max_res inst.Instance.arch)
  in
  let state = State.create inst ~impl_of () in
  Regions_define.run ~ordering:Regions_define.By_efficiency state;
  Resched_core.Sw_balance.run state;
  Resched_core.Sw_map.run state;
  let specs, sequence = Resched_core.Reconf_sched.run state in
  Alcotest.(check int) "sequence covers every reconfiguration"
    (Array.length specs) (List.length sequence);
  let sorted = List.sort compare sequence in
  Alcotest.(check (list int)) "sequence is a permutation"
    (List.init (Array.length specs) (fun i -> i))
    sorted;
  (* Dependency-forced orderings are respected. *)
  let pos = Array.make (Array.length specs) 0 in
  List.iteri (fun p k -> pos.(k) <- p) sequence;
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if i <> j && Resched_core.Timing.must_precede state si sj then
            Alcotest.(check bool)
              (Printf.sprintf "reconf %d before %d" i j)
              true
              (pos.(i) < pos.(j)))
        specs)
    specs

(* Property: PA output on random suite instances always validates and
   never beats the CPM lower bound. *)
let prop_pa_valid =
  QCheck.Test.make ~count:25 ~name:"PA schedules always validate"
    QCheck.(pair int (int_range 5 35))
    (fun (seed, tasks) ->
      let rng = Rng.create seed in
      let inst = Suite.instance rng ~tasks in
      let sched, _ = Pa.run inst in
      match Validate.check sched with
      | Ok () ->
        let m = Metrics.compute sched in
        m.Metrics.makespan >= m.Metrics.critical_path_lower_bound
      | Error _ -> false)

let prop_schedule_once_valid_any_ordering =
  QCheck.Test.make ~count:25
    ~name:"schedule_once validates under every ordering policy"
    QCheck.(pair int (int_range 5 25))
    (fun (seed, tasks) ->
      let rng = Rng.create (seed lxor 77) in
      let inst = Suite.instance rng ~tasks in
      List.for_all
        (fun ordering ->
          let config = { Pa.default_config with Pa.ordering } in
          let sched = Pa.schedule_once ~config inst in
          Validate.check sched = Ok ())
        [
          Regions_define.By_efficiency;
          Regions_define.By_cost;
          Regions_define.Topological;
          Regions_define.Random (Rng.create seed);
        ])

(* Property: a cached floorplan verdict agrees with a fresh
   [Floorplanner.check] on the same needs, on first use (miss) and on
   reuse (hit), and hit placements still validate in the caller's region
   order. *)
let prop_cache_matches_fresh_check =
  QCheck.Test.make ~count:50 ~name:"floorplan cache verdict = fresh check"
    QCheck.int
    (fun s ->
      let rng = Rng.create (s lxor 0x0F1C) in
      let device = Device.minifab in
      let count = 1 + Rng.int rng 4 in
      let needs =
        Array.init count (fun _ ->
            Resource.make
              ~clb:(20 + Rng.int rng 300)
              ~bram:(Rng.int rng 6) ~dsp:(Rng.int rng 6))
      in
      let cache = Fp_cache.create () in
      let fresh = Floorplanner.check device needs in
      let miss = Fp_cache.check cache device needs in
      let hit = Fp_cache.check cache device needs in
      let kind = function
        | Floorplanner.Feasible _ -> 0
        | Floorplanner.Infeasible -> 1
        | Floorplanner.Unknown -> 2
      in
      let placements_ok = function
        | Floorplanner.Feasible p ->
          Floorplanner.validate device ~needs p = Ok ()
        | Floorplanner.Infeasible | Floorplanner.Unknown -> true
      in
      let st = Fp_cache.stats cache in
      kind fresh.Floorplanner.verdict = kind miss.Floorplanner.verdict
      && kind miss.Floorplanner.verdict = kind hit.Floorplanner.verdict
      && placements_ok miss.Floorplanner.verdict
      && placements_ok hit.Floorplanner.verdict
      && st.Fp_cache.l1_hits = 1 && st.Fp_cache.hits = 0
      && st.Fp_cache.misses = 1)

(* Everything observable about a schedule except the instance pointer:
   structural equality here is what "bit-identical" means below. *)
let schedule_fingerprint (s : Schedule.t) =
  ( s.Schedule.regions,
    s.Schedule.slots,
    s.Schedule.reconfigurations,
    s.Schedule.makespan,
    s.Schedule.resource_scale )

(* Property: the optimized engine (restart-context arena + incremental
   timing solver + marking-based mappings) produces bit-identical
   schedules to the from-scratch oracle path, across repeated arena
   reuse and across the resource-scale lattice — and they validate. *)
let prop_incremental_engine_bit_identical =
  QCheck.Test.make ~count:15
    ~name:"incremental engine = from-scratch oracle (bit-identical)"
    QCheck.(pair int (int_range 5 30))
    (fun (seed, tasks) ->
      let rng = Rng.create (seed lxor 0x5ca1e) in
      let inst = Suite.instance rng ~tasks in
      let ctx = Pa.Context.create inst in
      let scales =
        [ 1.0; 0.9; 1.0; 0.81; 0.9; 1.0 ]
        (* revisits exercise the per-scale memo and State.reset *)
      in
      List.for_all
        (fun (i, resource_scale) ->
          let config =
            { Pa.default_config with
              Pa.ordering = Regions_define.Random (Rng.create (seed + i))
            }
          in
          let fast =
            Pa.schedule_once ~config ~resource_scale ~ctx ~incremental:true
              inst
          in
          let oracle =
            Pa.schedule_once
              ~config:
                { config with
                  Pa.ordering = Regions_define.Random (Rng.create (seed + i))
                }
              ~resource_scale ~incremental:false inst
          in
          schedule_fingerprint fast = schedule_fingerprint oracle
          && Validate.check fast = Ok ())
        (List.mapi (fun i s -> (i, s)) scales))

(* Property: the randomized search's candidate stream is unchanged by
   the engine switch — same best makespan, same iteration count, same
   improvement trace at a fixed (seed, min_iterations, budget = 0). *)
let prop_par_stream_identical =
  QCheck.Test.make ~count:10
    ~name:"PA-R stream identical under incremental engine"
    QCheck.(pair int (int_range 5 25))
    (fun (seed, tasks) ->
      let rng = Rng.create (seed lxor 0xbeef) in
      let inst = Suite.instance rng ~tasks in
      let run incremental =
        Pa_random.run ~seed ~min_iterations:12 ~incremental ~budget_seconds:0.
          inst
      in
      let a = run true and b = run false in
      let ms o =
        match o.Pa_random.schedule with
        | Some s -> Schedule.makespan s
        | None -> -1
      in
      ms a = ms b
      && a.Pa_random.iterations = b.Pa_random.iterations
      && List.map (fun p -> (p.Pa_random.iteration, p.Pa_random.makespan))
           a.Pa_random.trace
         = List.map (fun p -> (p.Pa_random.iteration, p.Pa_random.makespan))
             b.Pa_random.trace)

let () =
  Alcotest.run "scheduler"
    [
      ( "steps",
        [
          Alcotest.test_case "implementation selection" `Quick
            test_impl_select_prefers_cheap_hw;
          Alcotest.test_case "efficiency index ordering" `Quick
            test_efficiency_orders_small_impls_higher;
          Alcotest.test_case "totRecTime" `Quick test_tot_rec_time;
          Alcotest.test_case "region compatibility (overlap)" `Quick
            test_region_compatibility_predicates;
          Alcotest.test_case "region compatibility (reconf gap)" `Quick
            test_region_compatibility_with_gap;
        ] );
      ( "pa",
        [
          Alcotest.test_case "fig1-like instance" `Quick test_pa_on_fig1_like;
          Alcotest.test_case "all-software fallback" `Quick
            test_all_software_schedule_valid;
          Alcotest.test_case "suite instances" `Quick test_pa_on_suite_instances;
          Alcotest.test_case "floorplan attached" `Quick
            test_pa_respects_floorplan;
          Alcotest.test_case "chain topology" `Quick test_chain_graph;
          Alcotest.test_case "independent tasks" `Quick test_independent_tasks;
          Alcotest.test_case "software-only instance" `Quick
            test_sw_only_instance;
          Alcotest.test_case "module reuse" `Quick test_module_reuse_never_worse;
        ] );
      ( "pa-r",
        [
          Alcotest.test_case "sane result" `Quick test_par_improves_or_matches_pa;
          Alcotest.test_case "trace improves monotonically" `Quick
            test_par_trace_monotone;
          Alcotest.test_case "min iterations honored" `Quick
            test_par_min_iterations;
          Alcotest.test_case "run_parallel jobs=1 = sequential" `Quick
            test_run_parallel_jobs1_matches_sequential;
          Alcotest.test_case "run_parallel valid schedule and trace" `Quick
            test_run_parallel_valid_schedule_and_trace;
        ] );
      ( "reconf-sched",
        [
          Alcotest.test_case "sequences all reconfigurations" `Quick
            test_reconf_sched_sequences_all;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_pa_valid;
          QCheck_alcotest.to_alcotest prop_schedule_once_valid_any_ordering;
          QCheck_alcotest.to_alcotest prop_cache_matches_fresh_check;
          QCheck_alcotest.to_alcotest prop_incremental_engine_bit_identical;
          QCheck_alcotest.to_alcotest prop_par_stream_identical;
        ] );
    ]
