(* Unit tests for the core scheduler's support modules: the validator's
   violation detection (by corrupting known-good schedules), the timing
   resolver, reconfiguration sequencing, the working state, Gantt
   rendering and metrics. *)

module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Impl = Resched_platform.Impl
module Arch = Resched_platform.Arch
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module State = Resched_core.State
module Timing = Resched_core.Timing
module Gantt = Resched_core.Gantt
module Metrics = Resched_core.Metrics
module Impl_select = Resched_core.Impl_select
module Sw_map = Resched_core.Sw_map

let good_schedule () =
  let rng = Rng.create 2 in
  let inst = Suite.instance rng ~tasks:15 in
  let sched, _ = Pa.run inst in
  (match Validate.check sched with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "fixture schedule must be valid");
  sched

let has_code code = List.exists (fun (v : Validate.violation) -> v.code = code)

let expect_violation code sched =
  match Validate.check sched with
  | Ok () -> Alcotest.failf "expected violation %s, got Ok" code
  | Error vs ->
    if not (has_code code vs) then
      Alcotest.failf "expected violation %s, got [%s]" code
        (String.concat "; "
           (List.map (fun (v : Validate.violation) -> v.code) vs))

let test_validate_detects_dep_violation () =
  let sched = good_schedule () in
  (* Pull some dependent task before its predecessor ends. *)
  let u, v =
    match Graph.edges sched.Schedule.instance.Instance.graph with
    | (u, v) :: _ -> (u, v)
    | [] -> Alcotest.fail "fixture has no edge"
  in
  ignore u;
  let slots = Array.copy sched.Schedule.slots in
  let s = slots.(v) in
  slots.(v) <-
    { s with Schedule.start_ = 0; end_ = s.Schedule.end_ - s.Schedule.start_ };
  expect_violation "DEP" { sched with Schedule.slots = slots }

let test_validate_detects_bad_makespan () =
  let sched = good_schedule () in
  expect_violation "SPAN" { sched with Schedule.makespan = 1 }

let test_validate_detects_slot_length_mismatch () =
  let sched = good_schedule () in
  let slots = Array.copy sched.Schedule.slots in
  let s = slots.(0) in
  slots.(0) <- { s with Schedule.end_ = s.Schedule.end_ + 1 };
  expect_violation "TIME" { sched with Schedule.slots = slots }

let test_validate_detects_missing_reconfiguration () =
  (* Find a schedule with at least one reconfiguration and drop it. *)
  let rec find seed =
    if seed > 40 then Alcotest.fail "no fixture with reconfigurations"
    else begin
      let rng = Rng.create seed in
      let inst = Suite.instance rng ~tasks:20 in
      let sched, _ = Pa.run inst in
      if sched.Schedule.reconfigurations <> [] && Validate.check sched = Ok ()
      then sched
      else find (seed + 1)
    end
  in
  let sched = find 1 in
  expect_violation "RECONF" { sched with Schedule.reconfigurations = [] }

let test_validate_detects_controller_overlap () =
  let rec find seed =
    if seed > 60 then Alcotest.fail "no fixture with two reconfigurations"
    else begin
      let rng = Rng.create seed in
      let inst = Suite.instance rng ~tasks:25 in
      let sched, _ = Pa.run inst in
      if List.length sched.Schedule.reconfigurations >= 2
         && Validate.check sched = Ok ()
      then sched
      else find (seed + 1)
    end
  in
  let sched = find 1 in
  (* Shift every reconfiguration to start at the same instant; keep each
     inside its region window by construction? Simply clone the first
     reconfiguration's slot onto the second: controller overlap. *)
  let rcs =
    match sched.Schedule.reconfigurations with
    | a :: b :: tl ->
      { b with Schedule.r_start = a.Schedule.r_start;
        r_end = a.Schedule.r_start + (b.Schedule.r_end - b.Schedule.r_start) }
      :: a :: tl
    | l -> l
  in
  expect_violation "CTRL" { sched with Schedule.reconfigurations = rcs }

let test_validate_detects_overcapacity () =
  let sched = good_schedule () in
  if Array.length sched.Schedule.regions = 0 then
    Alcotest.fail "fixture has no region"
  else begin
    let regions = Array.copy sched.Schedule.regions in
    let r = regions.(0) in
    regions.(0) <-
      { r with Schedule.res = Resource.make ~clb:1_000_000 ~bram:0 ~dsp:0 };
    expect_violation "CAP" { sched with Schedule.regions = regions }
  end

let test_validate_detects_bad_floorplan () =
  let sched = good_schedule () in
  match sched.Schedule.floorplan with
  | Some placements when Array.length placements >= 2 ->
    let p = Array.copy placements in
    p.(1) <- p.(0);
    expect_violation "PLAN" { sched with Schedule.floorplan = Some p }
  | _ -> Alcotest.fail "fixture has fewer than 2 placed regions"

let test_validate_detects_kind_mismatch () =
  let sched = good_schedule () in
  (* Find a HW task and claim it runs on a processor. *)
  let slots = Array.copy sched.Schedule.slots in
  let idx = ref (-1) in
  Array.iteri
    (fun i (s : Schedule.task_slot) ->
      match s.Schedule.placement with
      | Schedule.On_region _ when !idx = -1 -> idx := i
      | _ -> ())
    slots;
  if !idx = -1 then Alcotest.fail "fixture has no HW task"
  else begin
    let s = slots.(!idx) in
    slots.(!idx) <- { s with Schedule.placement = Schedule.On_processor 0 };
    expect_violation "KIND" { sched with Schedule.slots = slots }
  end

(* ---- timing resolver ---- *)

let two_region_state () =
  let graph = Graph.create 4 in
  Graph.add_edge graph 0 1;
  let res = Resource.make ~clb:100 ~bram:0 ~dsp:0 in
  let impls =
    Array.init 4 (fun i ->
        [| Impl.sw ~time:10_000; Impl.hw ~time:(100 + (10 * i)) ~res () |])
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let state = State.create inst ~impl_of:[| 1; 1; 1; 1 |] () in
  state

let test_timing_resolve_respects_sequence () =
  let state = two_region_state () in
  let r0 = State.new_region state (Resource.make ~clb:100 ~bram:0 ~dsp:0) in
  let r1 = State.new_region state (Resource.make ~clb:100 ~bram:0 ~dsp:0) in
  State.assign_to_region state ~task:0 r0;
  State.assign_to_region state ~task:1 r0;
  State.assign_to_region state ~task:2 r1;
  State.assign_to_region state ~task:3 r1;
  let specs = Timing.reconf_specs state in
  Alcotest.(check int) "two reconfigurations" 2 (Array.length specs);
  let resolved01 = Timing.resolve state ~reconfigs:specs ~sequence:[ 0; 1 ] in
  let resolved10 = Timing.resolve state ~reconfigs:specs ~sequence:[ 1; 0 ] in
  (* In both orders the controller is exclusive. *)
  List.iter
    (fun (r : Timing.resolved) ->
      let s0, e0 = (r.Timing.rec_start.(0), r.Timing.rec_end.(0)) in
      let s1, e1 = (r.Timing.rec_start.(1), r.Timing.rec_end.(1)) in
      Alcotest.(check bool) "no controller overlap" true (e0 <= s1 || e1 <= s0))
    [ resolved01; resolved10 ]

let check_resolved name (a : Timing.resolved) (b : Timing.resolved) =
  Alcotest.(check (array int))
    (name ^ ": task_start")
    a.Timing.task_start b.Timing.task_start;
  Alcotest.(check (array int))
    (name ^ ": task_end")
    a.Timing.task_end b.Timing.task_end;
  Alcotest.(check (array int))
    (name ^ ": rec_start")
    a.Timing.rec_start b.Timing.rec_start;
  Alcotest.(check (array int))
    (name ^ ": rec_end")
    a.Timing.rec_end b.Timing.rec_end;
  Alcotest.(check int) (name ^ ": makespan") a.Timing.makespan b.Timing.makespan

let test_solver_matches_from_scratch_resolve () =
  let state = two_region_state () in
  let r0 = State.new_region state (Resource.make ~clb:100 ~bram:0 ~dsp:0) in
  let r1 = State.new_region state (Resource.make ~clb:100 ~bram:0 ~dsp:0) in
  State.assign_to_region state ~task:0 r0;
  State.assign_to_region state ~task:1 r0;
  State.assign_to_region state ~task:2 r1;
  State.assign_to_region state ~task:3 r1;
  let specs = Timing.reconf_specs state in
  let solver = Timing.Solver.create state ~reconfigs:specs in
  (* The solver's scratch arrays are rewound by every resolve: replaying
     a sequence after another one must reproduce the from-scratch answer
     bit for bit. *)
  List.iter
    (fun sequence ->
      let name =
        String.concat "," (List.map string_of_int sequence) |> ( ^ ) "seq "
      in
      check_resolved name
        (Timing.resolve state ~reconfigs:specs ~sequence)
        (Timing.Solver.resolve solver ~sequence))
    [ [ 0; 1 ]; [ 1; 0 ]; [ 0; 1 ] ]

let test_solver_matches_resolve_on_pipeline_state () =
  (* A state shaped by the real pipeline (region + processor ordering
     edges, software switches) instead of a hand-built fixture. *)
  let rng = Rng.create 50 in
  let inst = Suite.instance rng ~tasks:25 in
  let impl_of = Impl_select.run inst ~max_res:(Arch.max_res inst.Instance.arch) in
  let state = State.create inst ~impl_of () in
  Resched_core.Regions_define.run
    ~ordering:Resched_core.Regions_define.By_efficiency state;
  Resched_core.Sw_balance.run state;
  Sw_map.run state;
  let specs, sequence = Resched_core.Reconf_sched.run state in
  let solver = Timing.Solver.create state ~reconfigs:specs in
  check_resolved "pipeline sequence"
    (Timing.resolve state ~reconfigs:specs ~sequence)
    (Timing.Solver.resolve solver ~sequence)

let test_timing_reuse_skips_pairs () =
  let graph = Graph.create 2 in
  Graph.add_edge graph 0 1;
  let res = Resource.make ~clb:80 ~bram:0 ~dsp:0 in
  let impls =
    Array.init 2 (fun _ ->
        [| Impl.sw ~time:9_000; Impl.hw ~module_id:3 ~time:100 ~res () |])
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let state = State.create inst ~impl_of:[| 1; 1 |] () in
  let r = State.new_region state res in
  State.assign_to_region state ~task:0 r;
  State.assign_to_region state ~task:1 r;
  Alcotest.(check int) "reconfiguration without reuse" 1
    (Array.length (Timing.reconf_specs state));
  Alcotest.(check int) "no reconfiguration with reuse" 0
    (Array.length (Timing.reconf_specs ~module_reuse:true state))

(* ---- state ---- *)

let test_state_switch_to_sw () =
  let state = two_region_state () in
  Alcotest.(check bool) "starts hw" true (State.is_hw state 0);
  State.switch_to_sw state ~task:0;
  Alcotest.(check bool) "now sw" false (State.is_hw state 0);
  Alcotest.(check int) "duration updated" 10_000 (State.duration state 0)

let test_state_region_accounting () =
  let state = two_region_state () in
  let r0 = State.new_region state (Resource.make ~clb:100 ~bram:0 ~dsp:0) in
  Alcotest.(check bool) "fits second region" true
    (State.fits_on_fpga state (Resource.make ~clb:100 ~bram:0 ~dsp:0));
  Alcotest.(check bool) "does not fit oversized" false
    (State.fits_on_fpga state (Resource.make ~clb:10_000 ~bram:0 ~dsp:0));
  State.assign_to_region state ~task:2 r0;
  Alcotest.(check (list int)) "hosted" [ 2 ] r0.State.tasks;
  (* reconf time for 100 CLB at default ICAP: 73 ticks. *)
  Alcotest.(check int) "region reconf" 73 r0.State.reconf

let test_state_region_edges_ordered () =
  let state = two_region_state () in
  let r0 = State.new_region state (Resource.make ~clb:100 ~bram:0 ~dsp:0) in
  (* Tasks 2 and 3 are independent; assigning both to one region must
     insert an ordering edge. *)
  State.assign_to_region state ~task:2 r0;
  State.assign_to_region state ~task:3 r0;
  let dep = state.State.dep in
  Alcotest.(check bool) "ordering edge exists" true
    (Graph.has_edge dep 2 3 || Graph.has_edge dep 3 2)

(* ---- impl_select / sw_map ---- *)

let test_impl_select_falls_back_to_sw () =
  (* HW implementation slower than SW: SW must be selected. *)
  let graph = Graph.create 1 in
  let impls =
    [|
      [| Impl.sw ~time:50;
         Impl.hw ~time:500 ~res:(Resource.make ~clb:10 ~bram:0 ~dsp:0) () |];
    |]
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let impl_of = Impl_select.run inst ~max_res:(Arch.max_res Arch.mini) in
  Alcotest.(check int) "sw selected" 0 impl_of.(0)

let test_sw_map_balances_processors () =
  (* Four independent SW tasks on two processors: each processor gets
     two, and the makespan is two task lengths, not four. *)
  let graph = Graph.create 4 in
  let impls = Array.init 4 (fun _ -> [| Impl.sw ~time:100 |]) in
  let inst = Instance.make ~arch:Arch.zedboard ~graph ~impls () in
  let sched, _ = Pa.run inst in
  Validate.check_exn sched;
  Alcotest.(check int) "two rounds" 200 (Schedule.makespan sched)

let test_sw_map_incremental_matches_oracle () =
  (* The marking-based pair sequencing must insert exactly the edges the
     pairwise-DFS oracle inserts, hence produce the same assignment and
     windows. *)
  let rng = Rng.create 61 in
  for _ = 1 to 5 do
    let inst = Suite.instance rng ~tasks:(10 + Rng.int rng 30) in
    let impl_of =
      Impl_select.run inst ~max_res:(Arch.max_res inst.Instance.arch)
    in
    let build incremental =
      let state = State.create inst ~impl_of () in
      Resched_core.Regions_define.run
        ~ordering:Resched_core.Regions_define.By_efficiency state;
      Resched_core.Sw_balance.run state;
      Sw_map.run ~incremental state;
      state
    in
    let a = build true and b = build false in
    Alcotest.(check (array int))
      "processor assignment" b.State.processor_of a.State.processor_of;
    Alcotest.(check (list (pair int int)))
      "augmented edges" (Graph.edges b.State.dep) (Graph.edges a.State.dep);
    let n = Instance.size inst in
    Alcotest.(check (array int)) "t_min"
      (Array.init n (State.t_min b))
      (Array.init n (State.t_min a))
  done

let test_sw_map_delay_formula () =
  let state = two_region_state () in
  Alcotest.(check int) "no delay when free early" 0
    (Sw_map.delay state ~task:2 ~last_end:0);
  Alcotest.(check int) "delay equals busy overlap" 50
    (Sw_map.delay state ~task:2 ~last_end:(State.t_min state 2 + 50))

(* ---- gantt / metrics / schedule ---- *)

let test_gantt_renders_all_lanes () =
  let sched = good_schedule () in
  let s = Gantt.render ~width:60 sched in
  let lines = String.split_on_char '\n' s in
  (* 1 header + cpus + regions (+ icap when reconfigurations exist). *)
  let expected =
    1 + 2
    + Array.length sched.Schedule.regions
    + (if sched.Schedule.reconfigurations <> [] then 1 else 0)
  in
  Alcotest.(check int) "lane count" expected
    (List.length (List.filter (fun l -> l <> "") lines))

let test_metrics_bounds () =
  let sched = good_schedule () in
  let m = Metrics.compute sched in
  Alcotest.(check bool) "utilizations in [0,1]" true
    (m.Metrics.fpga_utilization >= 0.
    && m.Metrics.fpga_utilization <= 1.
    && m.Metrics.processor_utilization >= 0.
    && m.Metrics.processor_utilization <= 1.);
  Alcotest.(check bool) "overhead in [0,1]" true
    (m.Metrics.reconfiguration_overhead >= 0.
    && m.Metrics.reconfiguration_overhead <= 1.);
  Alcotest.(check int) "task partition" 15 (m.Metrics.hw_tasks + m.Metrics.sw_tasks)

let test_schedule_accessors () =
  let sched = good_schedule () in
  Alcotest.(check int) "task counts partition" 15
    (Schedule.hw_task_count sched + Schedule.sw_task_count sched);
  Array.iteri
    (fun ridx (r : Schedule.region) ->
      Alcotest.(check (list int)) "tasks already ordered" r.Schedule.tasks
        (Schedule.region_tasks_in_order sched ridx))
    sched.Schedule.regions

let test_pa_deterministic () =
  let rng1 = Rng.create 123 and rng2 = Rng.create 123 in
  let i1 = Suite.instance rng1 ~tasks:18 in
  let i2 = Suite.instance rng2 ~tasks:18 in
  let s1, _ = Pa.run i1 and s2, _ = Pa.run i2 in
  Alcotest.(check int) "same makespan" (Schedule.makespan s1)
    (Schedule.makespan s2);
  Alcotest.(check int) "same region count"
    (Array.length s1.Schedule.regions)
    (Array.length s2.Schedule.regions)

(* ---- schedule serialization ---- *)

module Schedule_io = Resched_core.Schedule_io

let test_schedule_io_roundtrip () =
  let sched = good_schedule () in
  let text = Schedule_io.to_string sched in
  match Schedule_io.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok sched' ->
    (* The reloaded schedule must be semantically identical: it validates
       and reserializes to the same text. *)
    (match Validate.check sched' with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "reloaded schedule invalid: %s"
        (String.concat "; "
           (List.map (fun (v : Validate.violation) -> v.message) vs)));
    Alcotest.(check string) "stable round-trip" text
      (Schedule_io.to_string sched');
    Alcotest.(check int) "same makespan" (Schedule.makespan sched)
      (Schedule.makespan sched')

let test_schedule_io_save_load () =
  let sched = good_schedule () in
  let path = Filename.temp_file "resched" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule_io.save path sched;
      match Schedule_io.load path with
      | Ok sched' ->
        Alcotest.(check int) "same makespan" (Schedule.makespan sched)
          (Schedule.makespan sched')
      | Error msg -> Alcotest.failf "load failed: %s" msg)

let test_schedule_io_rejects_garbage () =
  (match Schedule_io.of_string "not a schedule" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  let sched = good_schedule () in
  let text = Schedule_io.to_string sched in
  (* Drop the slot lines: the parser must notice the missing tasks. *)
  let broken =
    String.split_on_char '\n' text
    |> List.filter (fun l -> not (String.length l >= 4 && String.sub l 0 4 = "slot"))
    |> String.concat "\n"
  in
  match Schedule_io.of_string broken with
  | Ok _ -> Alcotest.fail "schedule without slots accepted"
  | Error _ -> ()

(* ---- communication overhead extension ---- *)

module Comm = Resched_core.Comm

let test_comm_inflates_times () =
  let graph = Graph.create 3 in
  Graph.add_edge graph 0 2;
  Graph.add_edge graph 1 2;
  let res = Resource.make ~clb:50 ~bram:0 ~dsp:0 in
  let impls =
    [|
      [| Impl.sw ~time:100 |];
      [| Impl.sw ~time:100 |];
      [| Impl.sw ~time:100; Impl.hw ~time:40 ~res () |];
    |]
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let inflated =
    Comm.inflate ~hw_factor:1.0 ~sw_factor:0.5
      ~cost:(Comm.uniform_cost 10) inst
  in
  (* Task 2 receives 2 edges x 10 ticks: HW +20, SW +10 (factor 0.5). *)
  Alcotest.(check int) "hw inflated" 60
    (Instance.impl inflated ~task:2 ~idx:1).Impl.time;
  Alcotest.(check int) "sw inflated" 110
    (Instance.impl inflated ~task:2 ~idx:0).Impl.time;
  (* Sources have no incoming communication. *)
  Alcotest.(check int) "source untouched" 100
    (Instance.impl inflated ~task:0 ~idx:0).Impl.time

let test_comm_schedules_validate () =
  let rng = Rng.create 6 in
  let inst = Suite.instance rng ~tasks:20 in
  let inflated = Comm.inflate ~cost:(Comm.uniform_cost 50) inst in
  let sched, _ = Pa.run inflated in
  Validate.check_exn sched;
  let base, _ = Pa.run inst in
  (* Communication can only lengthen the critical path lower bound. *)
  let lb s = (Metrics.compute s).Metrics.critical_path_lower_bound in
  Alcotest.(check bool) "lower bound grows" true (lb sched >= lb base)

let test_comm_rejects_negative () =
  let rng = Rng.create 6 in
  let inst = Suite.instance rng ~tasks:5 in
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Comm.inflate: negative cost") (fun () ->
      ignore (Comm.inflate ~cost:(fun ~src:_ ~dst:_ -> -1) inst))

(* Property: the validator rejects every systematic corruption of a valid
   schedule — slot stretching, makespan tampering and (when present)
   dropped reconfigurations. *)
let prop_validator_catches_corruption =
  QCheck.Test.make ~count:25 ~name:"validator catches corruption"
    QCheck.(pair int (int_range 8 25))
    (fun (seed, tasks) ->
      let rng = Rng.create (seed lxor 0xC0DE) in
      let inst = Suite.instance rng ~tasks in
      let sched, _ = Pa.run inst in
      Validate.check sched = Ok ()
      && begin
           (* Stretch a random slot by one tick. *)
           let slots = Array.copy sched.Schedule.slots in
           let t = Rng.int rng tasks in
           let s = slots.(t) in
           slots.(t) <- { s with Schedule.end_ = s.Schedule.end_ + 1 };
           Validate.check { sched with Schedule.slots = slots } <> Ok ()
         end
      && Validate.check { sched with Schedule.makespan = sched.Schedule.makespan + 1 }
         <> Ok ()
      && (sched.Schedule.reconfigurations = []
         || Validate.check { sched with Schedule.reconfigurations = [] }
            <> Ok ()))

let () =
  Alcotest.run "core-units"
    [
      ( "validator",
        [
          Alcotest.test_case "dependency violation" `Quick
            test_validate_detects_dep_violation;
          Alcotest.test_case "bad makespan" `Quick
            test_validate_detects_bad_makespan;
          Alcotest.test_case "slot length" `Quick
            test_validate_detects_slot_length_mismatch;
          Alcotest.test_case "missing reconfiguration" `Quick
            test_validate_detects_missing_reconfiguration;
          Alcotest.test_case "controller overlap" `Quick
            test_validate_detects_controller_overlap;
          Alcotest.test_case "over capacity" `Quick
            test_validate_detects_overcapacity;
          Alcotest.test_case "bad floorplan" `Quick
            test_validate_detects_bad_floorplan;
          Alcotest.test_case "kind mismatch" `Quick
            test_validate_detects_kind_mismatch;
        ] );
      ( "timing",
        [
          Alcotest.test_case "controller sequence" `Quick
            test_timing_resolve_respects_sequence;
          Alcotest.test_case "solver = from-scratch resolve" `Quick
            test_solver_matches_from_scratch_resolve;
          Alcotest.test_case "solver on pipeline state" `Quick
            test_solver_matches_resolve_on_pipeline_state;
          Alcotest.test_case "module reuse skips pairs" `Quick
            test_timing_reuse_skips_pairs;
        ] );
      ( "state",
        [
          Alcotest.test_case "switch to software" `Quick test_state_switch_to_sw;
          Alcotest.test_case "region accounting" `Quick
            test_state_region_accounting;
          Alcotest.test_case "region ordering edges" `Quick
            test_state_region_edges_ordered;
        ] );
      ( "steps",
        [
          Alcotest.test_case "impl select falls back to sw" `Quick
            test_impl_select_falls_back_to_sw;
          Alcotest.test_case "sw mapping balances processors" `Quick
            test_sw_map_balances_processors;
          Alcotest.test_case "lambda formula" `Quick test_sw_map_delay_formula;
          Alcotest.test_case "sw_map incremental = oracle" `Quick
            test_sw_map_incremental_matches_oracle;
        ] );
      ( "schedule-io",
        [
          Alcotest.test_case "round-trip" `Quick test_schedule_io_roundtrip;
          Alcotest.test_case "save/load" `Quick test_schedule_io_save_load;
          Alcotest.test_case "rejects garbage" `Quick
            test_schedule_io_rejects_garbage;
        ] );
      ( "comm",
        [
          Alcotest.test_case "inflates times" `Quick test_comm_inflates_times;
          Alcotest.test_case "schedules validate" `Quick
            test_comm_schedules_validate;
          Alcotest.test_case "rejects negative cost" `Quick
            test_comm_rejects_negative;
        ] );
      ( "output",
        [
          Alcotest.test_case "gantt lanes" `Quick test_gantt_renders_all_lanes;
          Alcotest.test_case "metrics bounds" `Quick test_metrics_bounds;
          Alcotest.test_case "schedule accessors" `Quick test_schedule_accessors;
          Alcotest.test_case "PA deterministic" `Quick test_pa_deterministic;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_validator_catches_corruption ] );
    ]
