(* Tests for the IS-k baseline and the HEFT-style list scheduler. *)

module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Partial = Resched_baseline.Partial
module Chunk_dfs = Resched_baseline.Chunk_dfs
module Isk = Resched_baseline.Isk
module List_sched = Resched_baseline.List_sched

let validate_or_fail sched =
  match Validate.check sched with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "invalid schedule: %s"
      (String.concat "; "
         (List.map (fun (v : Validate.violation) -> v.message) vs))

let small_instance ?(tasks = 12) seed =
  let rng = Rng.create seed in
  Suite.instance rng ~tasks

let test_partial_sw_only () =
  let graph = Graph.create 2 in
  Graph.add_edge graph 0 1;
  let impls =
    [| [| Impl.sw ~time:10 |]; [| Impl.sw ~time:20 |] |]
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let s = Partial.create inst in
  let s = Partial.apply s ~task:0 (Partial.Opt_sw { impl_idx = 0; proc = 0 }) in
  let s = Partial.apply s ~task:1 (Partial.Opt_sw { impl_idx = 0; proc = 0 }) in
  Alcotest.(check int) "makespan 30" 30 s.Partial.makespan;
  validate_or_fail (Partial.to_schedule s)

let test_partial_reconf_on_shared_region () =
  let graph = Graph.create 2 in
  Graph.add_edge graph 0 1;
  let res = Resource.make ~clb:100 ~bram:0 ~dsp:0 in
  let impls =
    [|
      [| Impl.sw ~time:1000; Impl.hw ~time:50 ~res () |];
      [| Impl.sw ~time:1000; Impl.hw ~time:60 ~res () |];
    |]
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let s = Partial.create inst in
  let s = Partial.apply s ~task:0 (Partial.Opt_new { impl_idx = 1 }) in
  let rid = (List.hd s.Partial.regions).Partial.rid in
  let s = Partial.apply s ~task:1 (Partial.Opt_existing { impl_idx = 1; rid }) in
  let sched = Partial.to_schedule s in
  validate_or_fail sched;
  Alcotest.(check int) "one reconfiguration" 1
    (List.length sched.Schedule.reconfigurations);
  (* Reconfiguration time for 100 CLB at 3200 bits/us:
     ceil(100 * 36*3232/50 / 3200) = ceil(72.72) = 73. *)
  let rc = List.hd sched.Schedule.reconfigurations in
  Alcotest.(check int) "reconf duration" 73
    (rc.Schedule.r_end - rc.Schedule.r_start);
  Alcotest.(check int) "makespan includes reconf" (50 + 73 + 60)
    sched.Schedule.makespan

let test_partial_module_reuse_skips_reconf () =
  let graph = Graph.create 2 in
  Graph.add_edge graph 0 1;
  let res = Resource.make ~clb:100 ~bram:0 ~dsp:0 in
  let impls =
    [|
      [| Impl.sw ~time:1000; Impl.hw ~module_id:7 ~time:50 ~res () |];
      [| Impl.sw ~time:1000; Impl.hw ~module_id:7 ~time:60 ~res () |];
    |]
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let s = Partial.create ~module_reuse:true inst in
  let s = Partial.apply s ~task:0 (Partial.Opt_new { impl_idx = 1 }) in
  let rid = (List.hd s.Partial.regions).Partial.rid in
  let s = Partial.apply s ~task:1 (Partial.Opt_existing { impl_idx = 1; rid }) in
  let sched = Partial.to_schedule s in
  validate_or_fail sched;
  Alcotest.(check int) "no reconfiguration" 0
    (List.length sched.Schedule.reconfigurations);
  Alcotest.(check int) "makespan without reconf" 110 sched.Schedule.makespan

let test_partial_prefetch () =
  (* Two independent tasks on two regions; the second region's
     reconfiguration... actually: t0 long on cpu, t1 short HW depending on
     t0; reconfiguration of the region hosting an earlier task must be
     able to start before t1's input is ready. *)
  let graph = Graph.create 3 in
  Graph.add_edge graph 0 2;
  let res = Resource.make ~clb:100 ~bram:0 ~dsp:0 in
  let impls =
    [|
      [| Impl.sw ~time:500 |];
      [| Impl.sw ~time:1000; Impl.hw ~time:50 ~res () |];
      [| Impl.sw ~time:1000; Impl.hw ~time:60 ~res () |];
    |]
  in
  let inst = Instance.make ~arch:Arch.mini ~graph ~impls () in
  let s = Partial.create inst in
  let s = Partial.apply s ~task:0 (Partial.Opt_sw { impl_idx = 0; proc = 0 }) in
  let s = Partial.apply s ~task:1 (Partial.Opt_new { impl_idx = 1 }) in
  let rid = (List.hd s.Partial.regions).Partial.rid in
  let s = Partial.apply s ~task:2 (Partial.Opt_existing { impl_idx = 1; rid }) in
  let sched = Partial.to_schedule s in
  validate_or_fail sched;
  (* t1 ends at 50; reconf runs 50..123, well before t0 ends at 500; so
     t2 starts exactly when its dependency completes. *)
  Alcotest.(check int) "t2 starts at dep completion" 500
    sched.Schedule.slots.(2).Schedule.start_;
  let rc = List.hd sched.Schedule.reconfigurations in
  Alcotest.(check int) "prefetched reconf start" 50 rc.Schedule.r_start

let test_chunk_dfs_beats_greedy_order () =
  (* IS-1 commits task 0 to its locally-best option; chunked together
     (k=2) the solver may pick a better joint assignment. At minimum the
     k=2 result can never be worse. *)
  let inst = small_instance 3 in
  let sched1, _ = Isk.schedule_once ~config:(Isk.config ~k:1) inst in
  let sched2, _ = Isk.schedule_once ~config:(Isk.config ~k:2) inst in
  validate_or_fail sched1;
  validate_or_fail sched2;
  Alcotest.(check bool) "both positive" true
    (sched1.Schedule.makespan > 0 && sched2.Schedule.makespan > 0)

let test_isk_valid_on_suite () =
  List.iter
    (fun (seed, tasks, k) ->
      let rng = Rng.create seed in
      let inst = Suite.instance rng ~tasks in
      let config = { (Isk.config ~k) with Isk.chunk_node_limit = 20_000 } in
      let sched, stats = Isk.run ~config inst in
      validate_or_fail sched;
      Alcotest.(check bool) "did some chunks" true (stats.Isk.chunks > 0))
    [ (1, 10, 1); (2, 15, 2); (3, 12, 3); (4, 20, 5) ]

let test_isk_floorplan_attached () =
  let inst = small_instance ~tasks:15 42 in
  let sched, _ = Isk.run ~config:(Isk.config ~k:1) inst in
  match sched.Schedule.floorplan with
  | None -> Alcotest.fail "IS-k must attach a floorplan"
  | Some _ -> ()

let test_list_sched_valid () =
  List.iter
    (fun seed ->
      let inst = small_instance ~tasks:18 seed in
      let sched = List_sched.run inst in
      validate_or_fail sched)
    [ 5; 6; 7 ]

module Fp_cache = Resched_floorplan.Fp_cache

(* A shared floorplan cache must not change either scheduler's output,
   and both must report the cache activity of their own run. *)
let test_isk_cache_threading () =
  let inst = small_instance ~tasks:15 42 in
  let cache = Fp_cache.create () in
  let sched_plain, _ = Isk.run ~config:(Isk.config ~k:1) inst in
  let config = { (Isk.config ~k:1) with Isk.floorplan_cache = Some cache } in
  let sched_cached, stats = Isk.run ~config inst in
  Alcotest.(check int) "same makespan" sched_plain.Schedule.makespan
    sched_cached.Schedule.makespan;
  (match stats.Isk.cache_stats with
  | None -> Alcotest.fail "cached run must report cache stats"
  | Some st ->
    Alcotest.(check bool) "cache consulted" true
      (st.Fp_cache.hits + st.Fp_cache.sub_hits + st.Fp_cache.misses > 0));
  (* A second identical run resolves its checks from the shared cache. *)
  let _, stats2 = Isk.run ~config inst in
  match stats2.Isk.cache_stats with
  | None -> Alcotest.fail "cached run must report cache stats"
  | Some st ->
    Alcotest.(check int) "replay is all hits" 0 st.Fp_cache.misses

let test_list_sched_cache_threading () =
  let inst = small_instance ~tasks:18 5 in
  let cache = Fp_cache.create () in
  let plain = List_sched.run inst in
  let cached, stats = List_sched.run_with_stats ~cache inst in
  validate_or_fail cached;
  Alcotest.(check int) "same makespan" plain.Schedule.makespan
    cached.Schedule.makespan;
  (match stats with
  | None -> Alcotest.fail "cached run must report cache stats"
  | Some st ->
    Alcotest.(check bool) "cache consulted" true
      (st.Fp_cache.hits + st.Fp_cache.sub_hits + st.Fp_cache.misses > 0));
  match List_sched.run_with_stats ~cache inst with
  | _, Some st -> Alcotest.(check int) "replay is all hits" 0 st.Fp_cache.misses
  | _, None -> Alcotest.fail "cached run must report cache stats"

let test_upward_ranks_monotone () =
  let inst = small_instance 9 in
  let ranks = List_sched.upward_ranks inst in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d > rank %d along edge" u v)
        true
        (ranks.(u) > ranks.(v)))
    (Graph.edges inst.Instance.graph)

module Optimal = Resched_baseline.Optimal
module Pa = Resched_core.Pa

let tiny_instance seed tasks =
  let rng = Rng.create seed in
  (* Shrink areas/time ranges so tiny instances still exercise region
     sharing on the small fabric. *)
  let params =
    { Suite.default_params with
      Suite.clb_min = 100;
      clb_max = 260;
      p_bram_heavy = 0.;
      p_dsp_heavy = 0.;
      width_of_tasks = (fun _ -> 2) }
  in
  Suite.instance ~params ~arch:Arch.mini rng ~tasks

let test_optimal_validates_and_bounds () =
  List.iter
    (fun (seed, tasks) ->
      let inst = tiny_instance seed tasks in
      let r = Optimal.schedule ~node_limit:2_000_000 inst in
      validate_or_fail r.Optimal.schedule;
      Alcotest.(check bool) "above CPM bound" true
        (Schedule.makespan r.Optimal.schedule >= Optimal.lower_bound inst))
    [ (1, 4); (2, 5); (3, 6) ]

let test_heuristics_never_beat_optimal () =
  (* The exact search shares PA's scheduling model, so no heuristic can
     beat a proved-optimal result. *)
  List.iter
    (fun (seed, tasks) ->
      let inst = tiny_instance seed tasks in
      let r = Optimal.schedule ~node_limit:4_000_000 inst in
      if r.Optimal.proved_optimal then begin
        let opt = Schedule.makespan r.Optimal.schedule in
        let pa, _ = Pa.run inst in
        let is1, _ = Isk.run ~config:(Isk.config ~k:1) inst in
        let heft = List_sched.run inst in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: PA >= OPT" seed)
          true
          (Schedule.makespan pa >= opt);
        Alcotest.(check bool) "IS-1 >= OPT" true (Schedule.makespan is1 >= opt);
        Alcotest.(check bool) "HEFT >= OPT" true (Schedule.makespan heft >= opt)
      end)
    [ (4, 5); (5, 5); (6, 6); (7, 6) ]

let test_isk_full_chunk_equals_optimal () =
  (* IS-k with k >= n is the exact search itself. *)
  let inst = tiny_instance 8 5 in
  let r = Optimal.schedule inst in
  let config = { (Isk.config ~k:5) with Isk.chunk_node_limit = 5_000_000;
                 Isk.module_reuse = false } in
  let sched, _ = Isk.schedule_once ~config inst in
  Alcotest.(check bool) "proved" true r.Optimal.proved_optimal;
  Alcotest.(check int) "same makespan"
    (Schedule.makespan r.Optimal.schedule)
    (Schedule.makespan sched)

module Ilp_exact = Resched_baseline.Ilp_exact

let test_ilp_matches_optimal () =
  (* The monolithic ILP shares the repository's scheduling semantics, so
     on instances where it proves optimality it must agree exactly with
     the exhaustive search. *)
  List.iter
    (fun (seed, tasks) ->
      let inst = tiny_instance seed tasks in
      match Ilp_exact.solve ~node_limit:50_000 ~time_limit:20. inst with
      | None -> Alcotest.failf "ILP found nothing on seed %d" seed
      | Some r ->
        validate_or_fail r.Ilp_exact.schedule;
        if r.Ilp_exact.proved_optimal then begin
          let opt = Optimal.schedule inst in
          Alcotest.(check int)
            (Printf.sprintf "seed %d: ILP = exhaustive optimum" seed)
            (Schedule.makespan opt.Optimal.schedule)
            (Schedule.makespan r.Ilp_exact.schedule)
        end)
    [ (1, 2); (2, 2); (1, 3); (2, 3); (3, 3); (1, 4); (2, 4) ]

let test_ilp_model_grows () =
  let v2, c2 = Ilp_exact.model_size (tiny_instance 1 2) in
  let v5, c5 = Ilp_exact.model_size (tiny_instance 1 5) in
  Alcotest.(check bool) "variables grow" true (v5 > v2);
  Alcotest.(check bool) "constraints grow superlinearly" true
    (c5 > 3 * c2)

let test_ilp_time_limit_respected () =
  let inst = tiny_instance 1 6 in
  let t0 = Unix.gettimeofday () in
  let _ = Ilp_exact.solve ~node_limit:1_000_000 ~time_limit:1.0 inst in
  let dt = Unix.gettimeofday () -. t0 in
  (* Generous slack: the limit is only checked between branch-and-bound
     nodes, and a single node is one LP solve. *)
  Alcotest.(check bool) "returns within ~20x the limit" true (dt < 20.)

(* Property: IS-k schedules validate for random instances and any small
   k; module reuse on and off. *)
let prop_isk_valid =
  QCheck.Test.make ~count:20 ~name:"IS-k schedules always validate"
    QCheck.(triple int (int_range 5 22) (int_range 1 4))
    (fun (seed, tasks, k) ->
      let rng = Rng.create seed in
      let inst = Suite.instance rng ~tasks in
      let config =
        { (Isk.config ~k) with Isk.chunk_node_limit = 10_000 }
      in
      let sched, _ = Isk.run ~config inst in
      let sched_no_reuse, _ =
        Isk.run ~config:{ config with Isk.module_reuse = false } inst
      in
      Validate.check sched = Ok () && Validate.check sched_no_reuse = Ok ())

let prop_list_sched_valid =
  QCheck.Test.make ~count:20 ~name:"list scheduler always validates"
    QCheck.(pair int (int_range 5 30))
    (fun (seed, tasks) ->
      let rng = Rng.create (seed lxor 0xABC) in
      let inst = Suite.instance rng ~tasks in
      Validate.check (List_sched.run inst) = Ok ())

let () =
  Alcotest.run "baseline"
    [
      ( "partial",
        [
          Alcotest.test_case "software chain" `Quick test_partial_sw_only;
          Alcotest.test_case "reconfiguration on shared region" `Quick
            test_partial_reconf_on_shared_region;
          Alcotest.test_case "module reuse skips reconfiguration" `Quick
            test_partial_module_reuse_skips_reconf;
          Alcotest.test_case "reconfiguration prefetch" `Quick
            test_partial_prefetch;
        ] );
      ( "isk",
        [
          Alcotest.test_case "k=2 joint decision" `Quick
            test_chunk_dfs_beats_greedy_order;
          Alcotest.test_case "valid on suite instances" `Quick
            test_isk_valid_on_suite;
          Alcotest.test_case "floorplan attached" `Quick
            test_isk_floorplan_attached;
          Alcotest.test_case "shared floorplan cache" `Quick
            test_isk_cache_threading;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "validates and bounds" `Quick
            test_optimal_validates_and_bounds;
          Alcotest.test_case "heuristics never beat optimal" `Quick
            test_heuristics_never_beat_optimal;
          Alcotest.test_case "IS-n equals optimal" `Quick
            test_isk_full_chunk_equals_optimal;
        ] );
      ( "ilp-exact",
        [
          Alcotest.test_case "matches exhaustive optimum" `Slow
            test_ilp_matches_optimal;
          Alcotest.test_case "model size grows" `Quick test_ilp_model_grows;
          Alcotest.test_case "time limit respected" `Slow
            test_ilp_time_limit_respected;
        ] );
      ( "list-sched",
        [
          Alcotest.test_case "valid schedules" `Quick test_list_sched_valid;
          Alcotest.test_case "shared floorplan cache" `Quick
            test_list_sched_cache_threading;
          Alcotest.test_case "upward ranks decrease along edges" `Quick
            test_upward_ranks_monotone;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_isk_valid;
          QCheck_alcotest.to_alcotest prop_list_sched_valid;
        ] );
    ]
