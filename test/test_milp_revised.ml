(* Tests for the revised-simplex engine: the dense tableau solver acts
   as the oracle on randomized bounded LPs and MILPs, plus unit tests
   for the mechanisms the tableau does not have — bound flips in the
   ratio test, LU refactorization after eta-file growth, and dual
   warm starts after a single bound change. *)

module Lp = Resched_milp.Lp
module Simplex = Resched_milp.Simplex
module Revised = Resched_milp.Revised
module Basis = Resched_milp.Basis
module Branch_bound = Resched_milp.Branch_bound
module Rng = Resched_util.Rng

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Random model generation (shared by the equivalence properties)      *)

let random_model rng ~nvars ~nrows ~integer_vars =
  let maximize = Rng.int_in rng 0 1 = 1 in
  let m =
    Lp.create ~objective:(if maximize then Lp.Maximize else Lp.Minimize) ()
  in
  let vars =
    Array.init nvars (fun i ->
        let lb = float_of_int (Rng.int_in rng 0 3) in
        let ub = lb +. float_of_int (Rng.int_in rng 1 8) in
        Lp.add_var m
          ~name:(Printf.sprintf "v%d" i)
          ~lb ~ub ~integer:(integer_vars && Rng.int_in rng 0 2 > 0)
          ~obj:(float_of_int (Rng.int_in rng (-10) 10))
          ())
  in
  for _ = 1 to nrows do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Rng.int_in rng 0 99 < 70 then
               Some (v, float_of_int (Rng.int_in rng (-5) 5))
             else None)
    in
    if terms <> [] then begin
      let sense =
        match Rng.int_in rng 0 2 with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq
      in
      Lp.add_constraint m terms sense (float_of_int (Rng.int_in rng (-10) 30))
    end
  done;
  m

(* Both engines must agree on the LP relaxation: same status, and equal
   objectives when Optimal. Bounded boxes rule out Unbounded. *)
let prop_lp_equivalence =
  QCheck.Test.make ~count:300 ~name:"revised = tableau on random bounded LPs"
    QCheck.(pair int (pair (int_range 1 8) (int_range 0 6)))
    (fun (seed, (nvars, nrows)) ->
      let rng = Rng.create (seed lxor 0x1ee7) in
      let m = random_model rng ~nvars ~nrows ~integer_vars:false in
      match (Simplex.solve m, Revised.solve m) with
      | Simplex.Optimal a, Simplex.Optimal b ->
        Float.abs (a.Simplex.objective -. b.Simplex.objective) < 1e-5
      | Simplex.Infeasible, Simplex.Infeasible -> true
      | _ -> false)

(* And on full MILPs through the branch-and-bound (same optimum; node
   counts may differ because branching rules differ). *)
let prop_milp_equivalence =
  QCheck.Test.make ~count:150 ~name:"revised = tableau on random MILPs"
    QCheck.(pair int (pair (int_range 1 7) (int_range 0 5)))
    (fun (seed, (nvars, nrows)) ->
      let rng = Rng.create (seed lxor 0xb0b0) in
      let m = random_model rng ~nvars ~nrows ~integer_vars:true in
      let tab =
        Branch_bound.solve ~engine:Branch_bound.Tableau ~node_limit:50_000 m
      in
      let rev =
        Branch_bound.solve ~engine:Branch_bound.Revised ~node_limit:50_000 m
      in
      match (tab, rev) with
      | Branch_bound.Optimal a, Branch_bound.Optimal b ->
        Float.abs (a.Branch_bound.objective -. b.Branch_bound.objective)
        < 1e-5
      | Branch_bound.Infeasible, Branch_bound.Infeasible -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Bound flips                                                         *)

let test_bound_flip () =
  (* maximize x + 2y with x in [0,5], y in [0,3] and a slack constraint
     that never binds: the optimum is reached purely by flipping both
     variables to their upper bounds — no basis change, zero pivots. *)
  let t =
    Revised.make ~goal:Lp.Maximize ~obj:[| 1.; 2. |] ~lb:[| 0.; 0. |]
      ~ub:[| 5.; 3. |]
      ~rows:[| ([ (0, 1.); (1, 1.) ], Lp.Le, 100.) |]
      ()
  in
  (match Revised.solve_fresh t with
  | Simplex.Optimal s ->
    check_float "flip objective" 11. s.Simplex.objective;
    check_float "x at upper" 5. s.Simplex.values.(0);
    check_float "y at upper" 3. s.Simplex.values.(1)
  | _ -> Alcotest.fail "expected Optimal");
  Alcotest.(check int) "no pivots, only flips" 0 (Revised.last_pivots t)

let test_bound_flip_blocked () =
  (* maximize x, x in [0,10], x <= 4: the flip to ub = 10 is blocked by
     the slack leaving its bound first, so x enters the basis at 4. *)
  let t =
    Revised.make ~goal:Lp.Maximize ~obj:[| 1. |] ~lb:[| 0. |] ~ub:[| 10. |]
      ~rows:[| ([ (0, 1.) ], Lp.Le, 4.) |]
      ()
  in
  (match Revised.solve_fresh t with
  | Simplex.Optimal s -> check_float "blocked at row" 4. s.Simplex.objective
  | _ -> Alcotest.fail "expected Optimal");
  Alcotest.(check bool) "one real pivot" true (Revised.last_pivots t >= 1)

(* ------------------------------------------------------------------ *)
(* LU factorization and eta updates                                    *)

let test_basis_lu_roundtrip () =
  (* Factor a fixed 3x3 matrix and check FTRAN/BTRAN against solutions
     computed by hand:  B = [[2,1,0],[1,3,1],[0,1,4]]. *)
  let cols =
    [|
      ([| 0; 1 |], [| 2.; 1. |]);
      ([| 0; 1; 2 |], [| 1.; 3.; 1. |]);
      ([| 1; 2 |], [| 1.; 4. |]);
    |]
  in
  let b = Basis.create 3 in
  Basis.refactor b ~column:(fun k -> cols.(k));
  (* B x = [3;6;9]  ->  x = [1;1;2]. *)
  let rhs = [| 3.; 6.; 9. |] in
  Basis.ftran b rhs;
  check_float "x0" 1. rhs.(0);
  check_float "x1" 1. rhs.(1);
  check_float "x2" 2. rhs.(2);
  (* B^T y = [4;10;14] -> y = [1;2;3]. *)
  let c = [| 4.; 10.; 14. |] in
  Basis.btran b c;
  check_float "y0" 1. c.(0);
  check_float "y1" 2. c.(1);
  check_float "y2" 3. c.(2)

let test_basis_eta_and_refactor_request () =
  (* Replace basis position 1's column by a = [1;1;1] via an eta update
     and verify FTRAN now solves against the updated matrix; after
     [refactor_every] updates, [update] must request refactorization. *)
  let cols =
    [|
      ([| 0; 1 |], [| 2.; 1. |]);
      ([| 0; 1; 2 |], [| 1.; 3.; 1. |]);
      ([| 1; 2 |], [| 1.; 4. |]);
    |]
  in
  let b = Basis.create ~refactor_every:3 3 in
  Basis.refactor b ~column:(fun k -> cols.(k));
  let w = [| 1.; 1.; 1. |] in
  Basis.ftran b w;
  let req1 = Basis.update b ~row:1 ~w in
  Alcotest.(check bool) "first eta fits" false req1;
  Alcotest.(check int) "one eta" 1 (Basis.eta_count b);
  (* New B' = [[2,1,0],[1,1,1],[0,1,4]];  B' x = [3;3;5] -> x = [1;1;1]. *)
  let rhs = [| 3.; 3.; 5. |] in
  Basis.ftran b rhs;
  check_float "x0 after eta" 1. rhs.(0);
  check_float "x1 after eta" 1. rhs.(1);
  check_float "x2 after eta" 1. rhs.(2);
  (* And B'^T y = [3;3;5] -> y = [1;1;1]. *)
  let c = [| 3.; 3.; 5. |] in
  Basis.btran b c;
  check_float "y0 after eta" 1. c.(0);
  check_float "y1 after eta" 1. c.(1);
  check_float "y2 after eta" 1. c.(2);
  (* Two more (identity-ish) updates exhaust refactor_every = 3. *)
  let e2 = [| 0.; 1.; 0. |] in
  Basis.ftran b e2;
  let req2 = Basis.update b ~row:1 ~w:e2 in
  Alcotest.(check bool) "second eta fits" false req2;
  let e3 = [| 0.; 1.; 0. |] in
  Basis.ftran b e3;
  let req3 = Basis.update b ~row:1 ~w:e3 in
  Alcotest.(check bool) "third eta requests refactor" true req3

let test_solver_with_tiny_eta_file () =
  (* Forcing a refactor after every single pivot must not change any
     result: run a branching-heavy knapsack with refactor_every = 1 at
     the Revised.make level via of-model default vs tiny. *)
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let m = random_model rng ~nvars:6 ~nrows:4 ~integer_vars:false in
    let t1 = Revised.of_model m in
    let t2 =
      Revised.make ~refactor_every:1 ~goal:(Lp.objective m)
        ~obj:(Lp.obj_coeffs m) ~lb:(Lp.lb_array m) ~ub:(Lp.ub_array m)
        ~rows:(Lp.rows m) ()
    in
    match (Revised.solve_fresh t1, Revised.solve_fresh t2) with
    | Simplex.Optimal a, Simplex.Optimal b ->
      check_float "tiny eta file same optimum" a.Simplex.objective
        b.Simplex.objective
    | Simplex.Infeasible, Simplex.Infeasible -> ()
    | _ -> Alcotest.fail "status mismatch with refactor_every = 1"
  done

(* ------------------------------------------------------------------ *)
(* Dual warm start                                                     *)

let test_warm_start_single_bound_change () =
  (* Solve, tighten one bound (what a branch-and-bound child does), and
     re-solve warm: the result must equal a from-scratch solve and take
     only a few dual pivots, strictly fewer than the cold solve took. *)
  let m = Lp.create ~objective:Lp.Maximize () in
  let xs =
    Array.init 8 (fun i ->
        Lp.add_var m
          ~name:(Printf.sprintf "x%d" i)
          ~lb:0. ~ub:4.
          ~obj:(float_of_int (3 + (i * 2 mod 7)))
          ())
  in
  Array.iteri
    (fun r _ ->
      if r < 5 then
        Lp.add_constraint m
          (Array.to_list
             (Array.mapi (fun i x -> (x, float_of_int (1 + ((i + r) mod 4)))) xs))
          Lp.Le
          (float_of_int (10 + (3 * r))))
    (Array.make 5 ());
  let t = Revised.of_model m in
  let cold =
    match Revised.solve_fresh t with
    | Simplex.Optimal s -> s
    | _ -> Alcotest.fail "root solve failed"
  in
  let cold_pivots = Revised.last_pivots t in
  Alcotest.(check bool) "cold solve pivots" true (cold_pivots > 0);
  (* Child: x0 <= floor(x0_root) - style bound tightening. *)
  let lb = Lp.lb_array m and ub = Lp.ub_array m in
  ub.(0) <- Float.max lb.(0) (Float.floor (cold.Simplex.values.(0) /. 2.));
  Revised.set_bounds t ~lb ~ub;
  let warm =
    match Revised.solve_warm t with
    | Simplex.Optimal s -> s
    | _ -> Alcotest.fail "warm solve failed"
  in
  let warm_pivots = Revised.last_pivots t in
  (* Reference: fresh solve of the child model. *)
  let t2 = Revised.of_model m in
  Revised.set_bounds t2 ~lb ~ub;
  (match Revised.solve_fresh t2 with
  | Simplex.Optimal s ->
    check_float "warm = fresh on child" s.Simplex.objective
      warm.Simplex.objective
  | _ -> Alcotest.fail "child fresh solve failed");
  Alcotest.(check bool)
    (Printf.sprintf "warm pivots (%d) < cold pivots (%d)" warm_pivots
       cold_pivots)
    true
    (warm_pivots < cold_pivots)

let test_snapshot_roundtrip () =
  let m = Lp.create ~objective:Lp.Maximize () in
  let x = Lp.add_var m ~lb:0. ~ub:7. ~obj:2. () in
  let y = Lp.add_var m ~lb:0. ~ub:7. ~obj:3. () in
  Lp.add_constraint m [ (x, 1.); (y, 2.) ] Lp.Le 10.;
  Lp.add_constraint m [ (x, 2.); (y, 1.) ] Lp.Le 11.;
  let t = Revised.of_model m in
  let obj0 =
    match Revised.solve_fresh t with
    | Simplex.Optimal s -> s.Simplex.objective
    | _ -> Alcotest.fail "solve failed"
  in
  let snap = Revised.save_basis t in
  (* Perturb the solver thoroughly, then restore and re-solve warm. *)
  let lb = Lp.lb_array m and ub = Lp.ub_array m in
  ub.(0) <- 1.;
  Revised.set_bounds t ~lb ~ub;
  ignore (Revised.solve_warm t);
  Revised.set_bounds t ~lb:(Lp.lb_array m) ~ub:(Lp.ub_array m);
  Alcotest.(check bool) "snapshot loads" true (Revised.load_basis t snap);
  match Revised.solve_warm t with
  | Simplex.Optimal s -> check_float "restored optimum" obj0 s.Simplex.objective
  | _ -> Alcotest.fail "restored solve failed"

(* ------------------------------------------------------------------ *)
(* Branch-and-bound determinism and parallel agreement                 *)

let hard_knapsack seed =
  let rng = Rng.create seed in
  let m = Lp.create ~objective:Lp.Maximize () in
  let vars =
    Array.init 12 (fun i ->
        Lp.add_var m
          ~name:(Printf.sprintf "v%d" i)
          ~lb:0.
          ~ub:(float_of_int (Rng.int_in rng 1 4))
          ~integer:true
          ~obj:(float_of_int (Rng.int_in rng 3 20))
          ())
  in
  for _ = 1 to 5 do
    Lp.add_constraint m
      (Array.to_list
         (Array.map (fun v -> (v, float_of_int (Rng.int_in rng 1 9))) vars))
      Lp.Le
      (float_of_int (Rng.int_in rng 12 40))
  done;
  m

let solution_exn = function
  | Branch_bound.Optimal s -> s
  | _ -> Alcotest.fail "expected Optimal"

let test_jobs1_determinism () =
  (* Two identical sequential runs must visit the same node count and
     produce the same incumbent, for both engines. *)
  List.iter
    (fun engine ->
      let m = hard_knapsack 4242 in
      let a = solution_exn (Branch_bound.solve ~engine ~jobs:1 m) in
      let b = solution_exn (Branch_bound.solve ~engine ~jobs:1 m) in
      Alcotest.(check int) "same node count" a.Branch_bound.nodes
        b.Branch_bound.nodes;
      check_float "same objective" a.Branch_bound.objective
        b.Branch_bound.objective;
      Array.iteri
        (fun i v -> check_float "same values" v b.Branch_bound.values.(i))
        a.Branch_bound.values)
    [ Branch_bound.Revised; Branch_bound.Tableau ]

let test_parallel_same_incumbent () =
  (* jobs > 1 explores in nondeterministic order but must reach the same
     optimal objective as the sequential search. *)
  for seed = 1 to 6 do
    let m = hard_knapsack (900 + seed) in
    let seq = solution_exn (Branch_bound.solve ~jobs:1 m) in
    let par = solution_exn (Branch_bound.solve ~jobs:4 m) in
    check_float "parallel objective" seq.Branch_bound.objective
      par.Branch_bound.objective
  done

let test_limit_not_infeasible () =
  (* A deadline in the past forces every LP to report Limit; the search
     must answer Node_limit/Feasible, never claim Infeasible (the bug
     this engine revision fixed: Iteration_limit used to masquerade as
     phase-1/phase-2 infeasibility and silently prune subtrees). *)
  List.iter
    (fun engine ->
      let m = hard_knapsack 7 in
      match Branch_bound.solve ~engine ~time_limit:1e-9 m with
      | Branch_bound.Infeasible -> Alcotest.fail "Limit leaked as Infeasible"
      | Branch_bound.Node_limit | Branch_bound.Feasible _
      | Branch_bound.Optimal _ | Branch_bound.Unbounded ->
        ())
    [ Branch_bound.Revised; Branch_bound.Tableau ]

let () =
  Alcotest.run "milp-revised"
    [
      ( "bound-flips",
        [
          Alcotest.test_case "pure flip optimum" `Quick test_bound_flip;
          Alcotest.test_case "blocked flip pivots" `Quick
            test_bound_flip_blocked;
        ] );
      ( "basis",
        [
          Alcotest.test_case "LU ftran/btran roundtrip" `Quick
            test_basis_lu_roundtrip;
          Alcotest.test_case "eta update + refactor request" `Quick
            test_basis_eta_and_refactor_request;
          Alcotest.test_case "refactor_every=1 solver" `Quick
            test_solver_with_tiny_eta_file;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "single bound change" `Quick
            test_warm_start_single_bound_change;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_snapshot_roundtrip;
        ] );
      ( "branch-bound",
        [
          Alcotest.test_case "jobs=1 deterministic" `Quick
            test_jobs1_determinism;
          Alcotest.test_case "parallel same incumbent" `Quick
            test_parallel_same_incumbent;
          Alcotest.test_case "Limit is not Infeasible" `Quick
            test_limit_not_infeasible;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_lp_equivalence;
          QCheck_alcotest.to_alcotest prop_milp_equivalence;
        ] );
    ]
