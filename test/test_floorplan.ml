(* Tests for the floorplanning substrate: feasible-placement enumeration,
   the packer, the MILP engine and their agreement. *)

module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device
module Placement = Resched_floorplan.Placement
module Packer = Resched_floorplan.Packer
module Milp_model = Resched_floorplan.Milp_model
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache

let v ~clb ~bram ~dsp = Resource.make ~clb ~bram ~dsp

let test_rect_geometry () =
  let a = { Placement.c0 = 0; c1 = 3; r0 = 0; r1 = 1 } in
  let b = { Placement.c0 = 4; c1 = 6; r0 = 0; r1 = 1 } in
  let c = { Placement.c0 = 2; c1 = 5; r0 = 1; r1 = 2 } in
  Alcotest.(check int) "width" 4 (Placement.width a);
  Alcotest.(check int) "height" 2 (Placement.height a);
  Alcotest.(check bool) "disjoint columns" false (Placement.overlap a b);
  Alcotest.(check bool) "overlapping" true (Placement.overlap a c);
  Alcotest.(check bool) "overlap symmetric" true (Placement.overlap c a);
  Alcotest.(check bool) "contains" true
    (Placement.contains ~outer:{ Placement.c0 = 0; c1 = 9; r0 = 0; r1 = 2 } a)

let test_candidates_cover_requirement () =
  let d = Device.xc7z020 in
  let need = v ~clb:700 ~bram:5 ~dsp:10 in
  let cands = Placement.candidates d need in
  Alcotest.(check bool) "some candidates" true (cands <> []);
  List.iter
    (fun rect ->
      let have = Placement.resources d rect in
      Alcotest.(check bool) "covers" true (Resource.fits need ~within:have))
    cands

let test_candidates_minimal_width () =
  let d = Device.minifab in
  let need = v ~clb:60 ~bram:0 ~dsp:0 in
  let cands = Placement.candidates d need in
  List.iter
    (fun (rect : Placement.rect) ->
      if rect.Placement.c0 < rect.Placement.c1 then begin
        (* Dropping the leftmost column must break feasibility. *)
        let narrower = { rect with Placement.c0 = rect.Placement.c0 + 1 } in
        let have = Placement.resources d narrower in
        Alcotest.(check bool) "minimal" false (Resource.fits need ~within:have)
      end)
    cands

let test_candidates_impossible () =
  let d = Device.minifab in
  (* Minifab has 1 BRAM column x 2 rows x 10 BRAM = 20 BRAM total. *)
  Alcotest.(check (list int)) "no candidate" []
    (List.map (fun _ -> 0) (Placement.candidates d (v ~clb:0 ~bram:21 ~dsp:0)))

let test_pack_single () =
  let d = Device.minifab in
  match Packer.pack d [| v ~clb:100 ~bram:2 ~dsp:1 |] with
  | Packer.Placed [| rect |] ->
    let have = Placement.resources d rect in
    Alcotest.(check bool) "covers" true
      (Resource.fits (v ~clb:100 ~bram:2 ~dsp:1) ~within:have)
  | _ -> Alcotest.fail "expected placement"

let test_pack_disjoint () =
  let d = Device.minifab in
  let needs = [| v ~clb:100 ~bram:0 ~dsp:0; v ~clb:100 ~bram:0 ~dsp:0 |] in
  match Packer.pack d needs with
  | Packer.Placed p ->
    Alcotest.(check bool) "disjoint" false (Placement.overlap p.(0) p.(1))
  | _ -> Alcotest.fail "expected placement"

let test_pack_capacity_infeasible () =
  let d = Device.minifab in
  (* minifab: 6 CLB columns x 2 rows x 50 = 600 CLB; three 250-CLB
     regions exceed capacity. *)
  let needs = [| v ~clb:250 ~bram:0 ~dsp:0; v ~clb:250 ~bram:0 ~dsp:0;
                 v ~clb:250 ~bram:0 ~dsp:0 |] in
  match Packer.pack d needs with
  | Packer.Infeasible -> ()
  | Packer.Placed _ -> Alcotest.fail "impossible packing accepted"
  | Packer.Unknown -> Alcotest.fail "should be provably infeasible"

let test_pack_geometric_infeasible () =
  let d = Device.minifab in
  (* Two regions each needing both the single BRAM column (full height
     would be needed... take BRAM 11 > one row's 10): each must span both
     rows of the unique BRAM column -> they must overlap. *)
  let needs = [| v ~clb:0 ~bram:11 ~dsp:0; v ~clb:0 ~bram:11 ~dsp:0 |] in
  match Packer.pack d needs with
  | Packer.Infeasible -> ()
  | Packer.Placed _ -> Alcotest.fail "impossible packing accepted"
  | Packer.Unknown -> Alcotest.fail "should be provably infeasible"

let test_pack_empty () =
  match Packer.pack Device.minifab [||] with
  | Packer.Placed [||] -> ()
  | _ -> Alcotest.fail "empty set is trivially placed"

let test_milp_engine_agrees_feasible () =
  let d = Device.minifab in
  let needs = [| v ~clb:100 ~bram:2 ~dsp:0; v ~clb:150 ~bram:0 ~dsp:5 |] in
  (match Milp_model.pack d needs with
  | Milp_model.Placed p ->
    Alcotest.(check bool) "disjoint" false (Placement.overlap p.(0) p.(1))
  | _ -> Alcotest.fail "MILP should place");
  match Packer.pack d needs with
  | Packer.Placed _ -> ()
  | _ -> Alcotest.fail "packer should place"

let test_milp_engine_agrees_infeasible () =
  let d = Device.minifab in
  let needs = [| v ~clb:0 ~bram:11 ~dsp:0; v ~clb:0 ~bram:11 ~dsp:0 |] in
  match Milp_model.pack d needs with
  | Milp_model.Infeasible -> ()
  | Milp_model.Placed _ -> Alcotest.fail "impossible packing accepted"
  | Milp_model.Unknown -> Alcotest.fail "should be provably infeasible"

let test_floorplanner_check_and_validate () =
  let d = Device.xc7z020 in
  let needs = Array.init 6 (fun i -> v ~clb:(400 + (100 * i)) ~bram:2 ~dsp:4) in
  let report = Floorplanner.check d needs in
  match report.Floorplanner.verdict with
  | Floorplanner.Feasible placements ->
    (match Floorplanner.validate d ~needs placements with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "claimed floorplan invalid: %s" msg)
  | _ -> Alcotest.fail "expected feasible"

let test_validate_rejects_bad_plans () =
  let d = Device.minifab in
  let needs = [| v ~clb:100 ~bram:0 ~dsp:0; v ~clb:100 ~bram:0 ~dsp:0 |] in
  let r = { Placement.c0 = 0; c1 = 2; r0 = 0; r1 = 0 } in
  (match Floorplanner.validate d ~needs [| r; r |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlap accepted");
  (match Floorplanner.validate d ~needs [| r |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "count mismatch accepted");
  let tiny = { Placement.c0 = 0; c1 = 0; r0 = 0; r1 = 0 } in
  match
    Floorplanner.validate d ~needs
      [| tiny; { Placement.c0 = 4; c1 = 7; r0 = 0; r1 = 1 } |]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "under-provisioned accepted"

let test_quick_capacity_check () =
  let d = Device.minifab in
  Alcotest.(check bool) "fits" true
    (Floorplanner.quick_capacity_check d [| v ~clb:500 ~bram:10 ~dsp:10 |]);
  Alcotest.(check bool) "too big" false
    (Floorplanner.quick_capacity_check d [| v ~clb:700 ~bram:0 ~dsp:0 |])

let test_cache_counters_and_permutation () =
  let d = Device.minifab in
  let cache = Fp_cache.create () in
  let a = v ~clb:60 ~bram:2 ~dsp:0 and b = v ~clb:220 ~bram:0 ~dsp:4 in
  let first = Fp_cache.check cache d [| a; b |] in
  (* The reversed needs are the same multiset: must hit, and the returned
     placements must cover the *reversed* order. *)
  let second = Fp_cache.check cache d [| b; a |] in
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "one miss" 1 st.Fp_cache.misses;
  Alcotest.(check int) "one hit" 1 st.Fp_cache.hits;
  Alcotest.(check int) "one insert" 1 st.Fp_cache.inserts;
  (match (first.Floorplanner.verdict, second.Floorplanner.verdict) with
  | Floorplanner.Feasible p1, Floorplanner.Feasible p2 ->
    Alcotest.(check (result unit string))
      "original order validates" (Ok ())
      (Floorplanner.validate d ~needs:[| a; b |] p1);
    Alcotest.(check (result unit string))
      "permuted order validates" (Ok ())
      (Floorplanner.validate d ~needs:[| b; a |] p2)
  | _ -> Alcotest.fail "small region set must be feasible on minifab");
  (* Empty need sets bypass the cache entirely. *)
  (match (Fp_cache.check cache d [||]).Floorplanner.verdict with
  | Floorplanner.Feasible [||] -> ()
  | _ -> Alcotest.fail "empty needs trivially feasible");
  Alcotest.(check int) "empty needs not counted" 1
    (Fp_cache.stats cache).Fp_cache.hits

let test_cache_invalidate_device () =
  let cache = Fp_cache.create () in
  let needs = [| v ~clb:60 ~bram:0 ~dsp:0 |] in
  ignore (Fp_cache.check cache Device.minifab needs);
  ignore (Fp_cache.check cache Device.xc7z010 needs);
  Fp_cache.invalidate_device cache Device.minifab;
  (* minifab misses again; xc7z010 still hits. *)
  ignore (Fp_cache.check cache Device.minifab needs);
  ignore (Fp_cache.check cache Device.xc7z010 needs);
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "three misses" 3 st.Fp_cache.misses;
  Alcotest.(check int) "one hit" 1 st.Fp_cache.hits;
  Fp_cache.clear cache;
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "clear resets counters" 0
    (st.Fp_cache.hits + st.Fp_cache.misses + st.Fp_cache.inserts)

(* Property: whenever the packer places, the MILP engine never proves
   infeasibility, and vice versa: MILP placement implies the packer does
   not prove infeasibility. Verdicts are cross-validated. *)
let prop_engines_consistent =
  QCheck.Test.make ~count:40 ~name:"packer/MILP engines consistent"
    QCheck.(pair int (int_range 1 4))
    (fun (seed, count) ->
      let rng = Rng.create seed in
      let d = Device.minifab in
      let needs =
        Array.init count (fun _ ->
            v
              ~clb:(50 + Rng.int rng 200)
              ~bram:(Rng.int rng 8)
              ~dsp:(Rng.int rng 12))
      in
      let p = Packer.pack d needs in
      let m = Milp_model.pack d needs in
      let valid placements =
        Floorplanner.validate d ~needs placements = Ok ()
      in
      (match p with Packer.Placed pl -> valid pl | _ -> true)
      && (match m with Milp_model.Placed pl -> valid pl | _ -> true)
      &&
      match (p, m) with
      | Packer.Placed _, Milp_model.Infeasible -> false
      | Packer.Infeasible, Milp_model.Placed _ -> false
      | _ -> true)

let () =
  Alcotest.run "floorplan"
    [
      ( "placement",
        [
          Alcotest.test_case "rect geometry" `Quick test_rect_geometry;
          Alcotest.test_case "candidates cover" `Quick
            test_candidates_cover_requirement;
          Alcotest.test_case "candidates minimal" `Quick
            test_candidates_minimal_width;
          Alcotest.test_case "impossible requirement" `Quick
            test_candidates_impossible;
        ] );
      ( "packer",
        [
          Alcotest.test_case "single region" `Quick test_pack_single;
          Alcotest.test_case "disjoint regions" `Quick test_pack_disjoint;
          Alcotest.test_case "capacity infeasible" `Quick
            test_pack_capacity_infeasible;
          Alcotest.test_case "geometric infeasible" `Quick
            test_pack_geometric_infeasible;
          Alcotest.test_case "empty" `Quick test_pack_empty;
        ] );
      ( "milp-engine",
        [
          Alcotest.test_case "feasible agreement" `Quick
            test_milp_engine_agrees_feasible;
          Alcotest.test_case "infeasible agreement" `Quick
            test_milp_engine_agrees_infeasible;
        ] );
      ( "floorplanner",
        [
          Alcotest.test_case "check + validate" `Quick
            test_floorplanner_check_and_validate;
          Alcotest.test_case "validate rejects bad plans" `Quick
            test_validate_rejects_bad_plans;
          Alcotest.test_case "quick capacity check" `Quick
            test_quick_capacity_check;
        ] );
      ( "fp-cache",
        [
          Alcotest.test_case "counters and permutation" `Quick
            test_cache_counters_and_permutation;
          Alcotest.test_case "invalidate by device" `Quick
            test_cache_invalidate_device;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_engines_consistent ]);
    ]
