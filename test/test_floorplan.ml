(* Tests for the floorplanning substrate: feasible-placement enumeration,
   the packer, the MILP engine and their agreement. *)

module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device
module Placement = Resched_floorplan.Placement
module Packer = Resched_floorplan.Packer
module Milp_model = Resched_floorplan.Milp_model
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache

let v ~clb ~bram ~dsp = Resource.make ~clb ~bram ~dsp

let test_rect_geometry () =
  let a = { Placement.c0 = 0; c1 = 3; r0 = 0; r1 = 1 } in
  let b = { Placement.c0 = 4; c1 = 6; r0 = 0; r1 = 1 } in
  let c = { Placement.c0 = 2; c1 = 5; r0 = 1; r1 = 2 } in
  Alcotest.(check int) "width" 4 (Placement.width a);
  Alcotest.(check int) "height" 2 (Placement.height a);
  Alcotest.(check bool) "disjoint columns" false (Placement.overlap a b);
  Alcotest.(check bool) "overlapping" true (Placement.overlap a c);
  Alcotest.(check bool) "overlap symmetric" true (Placement.overlap c a);
  Alcotest.(check bool) "contains" true
    (Placement.contains ~outer:{ Placement.c0 = 0; c1 = 9; r0 = 0; r1 = 2 } a)

let test_candidates_cover_requirement () =
  let d = Device.xc7z020 in
  let need = v ~clb:700 ~bram:5 ~dsp:10 in
  let cands = Placement.candidates d need in
  Alcotest.(check bool) "some candidates" true (cands <> []);
  List.iter
    (fun rect ->
      let have = Placement.resources d rect in
      Alcotest.(check bool) "covers" true (Resource.fits need ~within:have))
    cands

let test_candidates_minimal_width () =
  let d = Device.minifab in
  let need = v ~clb:60 ~bram:0 ~dsp:0 in
  let cands = Placement.candidates d need in
  List.iter
    (fun (rect : Placement.rect) ->
      if rect.Placement.c0 < rect.Placement.c1 then begin
        (* Dropping the leftmost column must break feasibility. *)
        let narrower = { rect with Placement.c0 = rect.Placement.c0 + 1 } in
        let have = Placement.resources d narrower in
        Alcotest.(check bool) "minimal" false (Resource.fits need ~within:have)
      end)
    cands

let test_candidates_impossible () =
  let d = Device.minifab in
  (* Minifab has 1 BRAM column x 2 rows x 10 BRAM = 20 BRAM total. *)
  Alcotest.(check (list int)) "no candidate" []
    (List.map (fun _ -> 0) (Placement.candidates d (v ~clb:0 ~bram:21 ~dsp:0)))

let test_pack_single () =
  let d = Device.minifab in
  match Packer.pack d [| v ~clb:100 ~bram:2 ~dsp:1 |] with
  | Packer.Placed [| rect |] ->
    let have = Placement.resources d rect in
    Alcotest.(check bool) "covers" true
      (Resource.fits (v ~clb:100 ~bram:2 ~dsp:1) ~within:have)
  | _ -> Alcotest.fail "expected placement"

let test_pack_disjoint () =
  let d = Device.minifab in
  let needs = [| v ~clb:100 ~bram:0 ~dsp:0; v ~clb:100 ~bram:0 ~dsp:0 |] in
  match Packer.pack d needs with
  | Packer.Placed p ->
    Alcotest.(check bool) "disjoint" false (Placement.overlap p.(0) p.(1))
  | _ -> Alcotest.fail "expected placement"

let test_pack_capacity_infeasible () =
  let d = Device.minifab in
  (* minifab: 6 CLB columns x 2 rows x 50 = 600 CLB; three 250-CLB
     regions exceed capacity. *)
  let needs = [| v ~clb:250 ~bram:0 ~dsp:0; v ~clb:250 ~bram:0 ~dsp:0;
                 v ~clb:250 ~bram:0 ~dsp:0 |] in
  match Packer.pack d needs with
  | Packer.Infeasible -> ()
  | Packer.Placed _ -> Alcotest.fail "impossible packing accepted"
  | Packer.Unknown -> Alcotest.fail "should be provably infeasible"

let test_pack_geometric_infeasible () =
  let d = Device.minifab in
  (* Two regions each needing both the single BRAM column (full height
     would be needed... take BRAM 11 > one row's 10): each must span both
     rows of the unique BRAM column -> they must overlap. *)
  let needs = [| v ~clb:0 ~bram:11 ~dsp:0; v ~clb:0 ~bram:11 ~dsp:0 |] in
  match Packer.pack d needs with
  | Packer.Infeasible -> ()
  | Packer.Placed _ -> Alcotest.fail "impossible packing accepted"
  | Packer.Unknown -> Alcotest.fail "should be provably infeasible"

let test_pack_empty () =
  match Packer.pack Device.minifab [||] with
  | Packer.Placed [||] -> ()
  | _ -> Alcotest.fail "empty set is trivially placed"

let test_milp_engine_agrees_feasible () =
  let d = Device.minifab in
  let needs = [| v ~clb:100 ~bram:2 ~dsp:0; v ~clb:150 ~bram:0 ~dsp:5 |] in
  (match Milp_model.pack d needs with
  | Milp_model.Placed p ->
    Alcotest.(check bool) "disjoint" false (Placement.overlap p.(0) p.(1))
  | _ -> Alcotest.fail "MILP should place");
  match Packer.pack d needs with
  | Packer.Placed _ -> ()
  | _ -> Alcotest.fail "packer should place"

let test_milp_engine_agrees_infeasible () =
  let d = Device.minifab in
  let needs = [| v ~clb:0 ~bram:11 ~dsp:0; v ~clb:0 ~bram:11 ~dsp:0 |] in
  match Milp_model.pack d needs with
  | Milp_model.Infeasible -> ()
  | Milp_model.Placed _ -> Alcotest.fail "impossible packing accepted"
  | Milp_model.Unknown -> Alcotest.fail "should be provably infeasible"

let test_floorplanner_check_and_validate () =
  let d = Device.xc7z020 in
  let needs = Array.init 6 (fun i -> v ~clb:(400 + (100 * i)) ~bram:2 ~dsp:4) in
  let report = Floorplanner.check d needs in
  match report.Floorplanner.verdict with
  | Floorplanner.Feasible placements ->
    (match Floorplanner.validate d ~needs placements with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "claimed floorplan invalid: %s" msg)
  | _ -> Alcotest.fail "expected feasible"

let test_validate_rejects_bad_plans () =
  let d = Device.minifab in
  let needs = [| v ~clb:100 ~bram:0 ~dsp:0; v ~clb:100 ~bram:0 ~dsp:0 |] in
  let r = { Placement.c0 = 0; c1 = 2; r0 = 0; r1 = 0 } in
  (match Floorplanner.validate d ~needs [| r; r |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlap accepted");
  (match Floorplanner.validate d ~needs [| r |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "count mismatch accepted");
  let tiny = { Placement.c0 = 0; c1 = 0; r0 = 0; r1 = 0 } in
  match
    Floorplanner.validate d ~needs
      [| tiny; { Placement.c0 = 4; c1 = 7; r0 = 0; r1 = 1 } |]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "under-provisioned accepted"

let test_quick_capacity_check () =
  let d = Device.minifab in
  Alcotest.(check bool) "fits" true
    (Floorplanner.quick_capacity_check d [| v ~clb:500 ~bram:10 ~dsp:10 |]);
  Alcotest.(check bool) "too big" false
    (Floorplanner.quick_capacity_check d [| v ~clb:700 ~bram:0 ~dsp:0 |]);
  (* Per-column-type row-slot condition: four bram:5 regions pass the
     device-total check (20 <= 20) but each needs its own BRAM
     column-row slot and minifab has only 1 column x 2 rows. *)
  Alcotest.(check bool) "row slots exhausted" false
    (Floorplanner.quick_capacity_check d
       (Array.make 4 (v ~clb:0 ~bram:5 ~dsp:0)));
  Alcotest.(check bool) "row slots sufficient" true
    (Floorplanner.quick_capacity_check d
       (Array.make 2 (v ~clb:0 ~bram:5 ~dsp:0)))

(* v2-specific dominance / symmetry edge cases. *)

let test_pack_v2_equal_needs () =
  let d = Device.minifab in
  (* Identical demands share one candidate array and ordered anchors;
     the packing must still exist and be disjoint. *)
  let needs = Array.make 4 (v ~clb:100 ~bram:0 ~dsp:0) in
  match Packer.pack ~engine:Packer.Column_interval d needs with
  | Packer.Placed p ->
    Alcotest.(check (result unit string))
      "validates" (Ok ())
      (Floorplanner.validate d ~needs p)
  | _ -> Alcotest.fail "equal needs should pack"

let test_pack_v2_zero_slack () =
  let d = Device.minifab in
  (* Six 100-CLB regions consume exactly minifab's 600 CLBs: feasible
     with zero slack. A seventh unit anywhere tips it over, and the
     capacity lower bound must prove that without search. *)
  let exact = Array.make 6 (v ~clb:100 ~bram:0 ~dsp:0) in
  (match Packer.pack ~engine:Packer.Column_interval d exact with
  | Packer.Placed p ->
    Alcotest.(check (result unit string))
      "validates" (Ok ())
      (Floorplanner.validate d ~needs:exact p)
  | _ -> Alcotest.fail "zero-slack packing should exist");
  let over = Array.append exact [| v ~clb:1 ~bram:0 ~dsp:0 |] in
  match Packer.pack ~engine:Packer.Column_interval d over with
  | Packer.Infeasible -> ()
  | _ -> Alcotest.fail "601 CLBs on a 600-CLB device must be infeasible"

let test_capacity_bounds_ok () =
  let d = Device.minifab in
  Alcotest.(check bool) "sound on feasible" true
    (Packer.capacity_bounds_ok d [| v ~clb:100 ~bram:2 ~dsp:5 |]);
  (* 4 x bram:5 passes device totals but not the per-kind row-slot
     budget (4 slots needed, 1 column x 2 rows available). *)
  Alcotest.(check bool) "row-slot bound" false
    (Packer.capacity_bounds_ok d (Array.make 4 (v ~clb:0 ~bram:5 ~dsp:0)))

let test_cache_counters_and_permutation () =
  let d = Device.minifab in
  let cache = Fp_cache.create () in
  let a = v ~clb:60 ~bram:2 ~dsp:0 and b = v ~clb:220 ~bram:0 ~dsp:4 in
  let first = Fp_cache.check cache d [| a; b |] in
  (* The reversed needs are the same multiset: must hit, and the returned
     placements must cover the *reversed* order. *)
  let second = Fp_cache.check cache d [| b; a |] in
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "one miss" 1 st.Fp_cache.misses;
  (* The repeat lands in the calling domain's L1 memo — the shared L2 is
     never touched again. *)
  Alcotest.(check int) "one L1 hit" 1 st.Fp_cache.l1_hits;
  Alcotest.(check int) "no L2 hit" 0 st.Fp_cache.hits;
  Alcotest.(check int) "one insert" 1 st.Fp_cache.inserts;
  (match (first.Floorplanner.verdict, second.Floorplanner.verdict) with
  | Floorplanner.Feasible p1, Floorplanner.Feasible p2 ->
    Alcotest.(check (result unit string))
      "original order validates" (Ok ())
      (Floorplanner.validate d ~needs:[| a; b |] p1);
    Alcotest.(check (result unit string))
      "permuted order validates" (Ok ())
      (Floorplanner.validate d ~needs:[| b; a |] p2)
  | _ -> Alcotest.fail "small region set must be feasible on minifab");
  (* Empty need sets bypass the cache entirely. *)
  (match (Fp_cache.check cache d [||]).Floorplanner.verdict with
  | Floorplanner.Feasible [||] -> ()
  | _ -> Alcotest.fail "empty needs trivially feasible");
  Alcotest.(check int) "empty needs not counted" 2
    (Fp_cache.lookups (Fp_cache.stats cache))

let test_cache_invalidate_device () =
  let cache = Fp_cache.create () in
  let needs = [| v ~clb:60 ~bram:0 ~dsp:0 |] in
  ignore (Fp_cache.check cache Device.minifab needs);
  ignore (Fp_cache.check cache Device.xc7z010 needs);
  Fp_cache.invalidate_device cache Device.minifab;
  (* minifab misses again; xc7z010 still hits. *)
  ignore (Fp_cache.check cache Device.minifab needs);
  ignore (Fp_cache.check cache Device.xc7z010 needs);
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "three misses" 3 st.Fp_cache.misses;
  Alcotest.(check int) "one hit" 1 st.Fp_cache.hits;
  Fp_cache.clear cache;
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "clear resets counters" 0
    (st.Fp_cache.hits + st.Fp_cache.misses + st.Fp_cache.inserts)

(* Subsumption-index behaviour. *)

let test_cache_subsumption_feasible () =
  let d = Device.minifab in
  (* L1 disabled so the promotion-to-exact-entry behaviour of the shared
     L2 is observable (with an L1 the repeat would be absorbed there). *)
  let cache = Fp_cache.create ~l1_capacity:0 () in
  let big = [| v ~clb:300 ~bram:4 ~dsp:8; v ~clb:100 ~bram:2 ~dsp:0 |] in
  (match (Fp_cache.check cache d big).Floorplanner.verdict with
  | Floorplanner.Feasible _ -> ()
  | _ -> Alcotest.fail "base set must be feasible on minifab");
  (* A smaller query — fewer regions, each dominated by a distinct
     stored need — must be answered from the index without a fresh
     check, and the reused placements must cover the smaller needs. *)
  let small = [| v ~clb:90 ~bram:1 ~dsp:0 |] in
  (match (Fp_cache.check cache d small).Floorplanner.verdict with
  | Floorplanner.Feasible p ->
    Alcotest.(check (result unit string))
      "reused placements validate" (Ok ())
      (Floorplanner.validate d ~needs:small p)
  | _ -> Alcotest.fail "embedded query must derive Feasible");
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "one subsumption hit" 1 st.Fp_cache.sub_hits;
  Alcotest.(check int) "one miss" 1 st.Fp_cache.misses;
  (* Derived verdicts are promoted: the same query again is an exact
     hit, not a second subsumption probe. *)
  ignore (Fp_cache.check cache d small);
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "promotion gives exact hit" 1 st.Fp_cache.hits;
  Alcotest.(check int) "no extra subsumption hit" 1 st.Fp_cache.sub_hits

let test_cache_subsumption_infeasible () =
  let d = Device.minifab in
  let cache = Fp_cache.create () in
  (* Two full-column BRAM regions are provably infeasible (one BRAM
     column, two rows, 10 BRAM per tile). *)
  let small = [| v ~clb:0 ~bram:11 ~dsp:0; v ~clb:0 ~bram:11 ~dsp:0 |] in
  (match (Fp_cache.check cache d small).Floorplanner.verdict with
  | Floorplanner.Infeasible -> ()
  | _ -> Alcotest.fail "base set must be infeasible");
  (* Any superset that the stored set embeds into inherits the proof. *)
  let bigger =
    [| v ~clb:50 ~bram:0 ~dsp:0; v ~clb:0 ~bram:11 ~dsp:0;
       v ~clb:10 ~bram:11 ~dsp:0 |]
  in
  (match (Fp_cache.check cache d bigger).Floorplanner.verdict with
  | Floorplanner.Infeasible -> ()
  | _ -> Alcotest.fail "dominating query must derive Infeasible");
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "one subsumption hit" 1 st.Fp_cache.sub_hits;
  Alcotest.(check int) "one miss" 1 st.Fp_cache.misses

let test_cache_unknown_never_subsumed () =
  let d = Device.minifab in
  let cache = Fp_cache.create () in
  (* With a zero node budget the greedy pre-pass fails on this set and
     the search returns Unknown (found by enumeration; re-verified
     here). Unknown must reach the exact table only — a smaller embedded
     query must run its own check rather than inherit the non-verdict. *)
  let vague = [| v ~clb:215 ~bram:10 ~dsp:5; v ~clb:285 ~bram:1 ~dsp:0 |] in
  (match
     (Fp_cache.check cache ~node_limit:0 d vague).Floorplanner.verdict
   with
  | Floorplanner.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown under a zero node budget");
  let smaller = [| v ~clb:250 ~bram:1 ~dsp:0; v ~clb:100 ~bram:8 ~dsp:3 |] in
  ignore (Fp_cache.check cache ~node_limit:0 d smaller);
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "no subsumption hits" 0 st.Fp_cache.sub_hits;
  Alcotest.(check int) "both queries miss" 2 st.Fp_cache.misses

let test_cache_stripe_stats_sum () =
  let d = Device.minifab in
  let cache = Fp_cache.create ~stripes:4 () in
  for i = 1 to 8 do
    ignore (Fp_cache.check cache d [| v ~clb:(40 + (10 * i)) ~bram:0 ~dsp:0 |])
  done;
  ignore (Fp_cache.check cache d [| v ~clb:50 ~bram:0 ~dsp:0 |]);
  let sum =
    Array.fold_left
      (fun (h, s, m, i) (st : Fp_cache.stats) ->
        ( h + st.Fp_cache.hits,
          s + st.Fp_cache.sub_hits,
          m + st.Fp_cache.misses,
          i + st.Fp_cache.inserts ))
      (0, 0, 0, 0)
      (Fp_cache.stripe_stats cache)
  in
  let st = Fp_cache.stats cache in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "stripes sum to totals"
    ( (st.Fp_cache.hits, st.Fp_cache.sub_hits),
      (st.Fp_cache.misses, st.Fp_cache.inserts) )
    (let h, s, m, i = sum in
     ((h, s), (m, i)))

let test_cache_l1_epoch_flush () =
  let d = Device.minifab in
  let needs = [| v ~clb:60 ~bram:0 ~dsp:0 |] in
  let cache = Fp_cache.create () in
  ignore (Fp_cache.check cache d needs);
  ignore (Fp_cache.check cache d needs);
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "warm L1 serves the repeat" 1 st.Fp_cache.l1_hits;
  let e0 = Fp_cache.epoch cache in
  (* Invalidating an unrelated device must still advance the epoch: the
     L1 is not indexed by device, so it is flushed wholesale. *)
  Fp_cache.invalidate_device cache Device.xc7z010;
  Alcotest.(check bool) "epoch advanced" true (Fp_cache.epoch cache > e0);
  ignore (Fp_cache.check cache d needs);
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "flushed L1 does not answer" 1 st.Fp_cache.l1_hits;
  Alcotest.(check int) "the surviving L2 entry does" 1 st.Fp_cache.hits;
  (* The L2 answer re-fills the caller's L1. *)
  ignore (Fp_cache.check cache d needs);
  let st = Fp_cache.stats cache in
  Alcotest.(check int) "L1 re-filled after the flush" 2 st.Fp_cache.l1_hits;
  Alcotest.(check int) "no extra L2 traffic" 1 st.Fp_cache.hits

(* Multi-domain stress: several workers hammer one shared cache (with a
   writer interleaving device invalidations) and every verdict must
   agree with the uncached sequential oracle — [Floorplanner.check] is a
   pure function of (device, needs), so no interleaving may change an
   answer. Afterwards the cache is quiescent, so the lock-free counters
   must account for every lookup exactly once and the per-stripe rows
   must sum to the totals. *)
let prop_cache_concurrent_matches_oracle =
  let devices = [| Device.minifab; Device.xc7z010 |] in
  let pool =
    [|
      [| v ~clb:60 ~bram:0 ~dsp:0 |];
      [| v ~clb:100 ~bram:2 ~dsp:1 |];
      [| v ~clb:100 ~bram:0 ~dsp:0; v ~clb:100 ~bram:0 ~dsp:0 |];
      [| v ~clb:250 ~bram:0 ~dsp:0; v ~clb:250 ~bram:0 ~dsp:0;
         v ~clb:250 ~bram:0 ~dsp:0 |];
      [| v ~clb:50 ~bram:1 ~dsp:0; v ~clb:80 ~bram:0 ~dsp:1 |];
      [| v ~clb:0 ~bram:21 ~dsp:0 |];
      [| v ~clb:30 ~bram:0 ~dsp:0; v ~clb:30 ~bram:0 ~dsp:0;
         v ~clb:30 ~bram:0 ~dsp:0; v ~clb:30 ~bram:0 ~dsp:0 |];
      [| v ~clb:600 ~bram:0 ~dsp:0 |];
    |]
  in
  let kind = function
    | Floorplanner.Feasible _ -> `Feasible
    | Floorplanner.Infeasible -> `Infeasible
    | Floorplanner.Unknown -> `Unknown
  in
  QCheck.Test.make ~count:4
    ~name:"concurrent fp_cache agrees with the sequential oracle"
    QCheck.(
      list_of_size
        Gen.(int_range 12 48)
        (pair
           (int_bound (Array.length devices - 1))
           (int_bound (Array.length pool - 1))))
    (fun ops ->
      let ops = Array.of_list ops in
      let oracle =
        Array.map
          (fun (di, ni) ->
            kind (Floorplanner.check devices.(di) pool.(ni)).Floorplanner.verdict)
          ops
      in
      let cache = Fp_cache.create ~stripes:4 () in
      let jobs = 4 in
      let failures = Atomic.make 0 in
      ignore
        (Resched_util.Domain_pool.run ~jobs (fun w ->
             Array.iteri
               (fun i (di, ni) ->
                 if w = 0 && i mod 11 = 10 then
                   Fp_cache.invalidate_device cache devices.(0);
                 let r = Fp_cache.check cache devices.(di) pool.(ni) in
                 let ok =
                   (* a decisive oracle verdict must be reproduced; the
                      cache may only refine an [Unknown] *)
                   (oracle.(i) = `Unknown
                   || kind r.Floorplanner.verdict = oracle.(i))
                   &&
                   match r.Floorplanner.verdict with
                   | Floorplanner.Feasible rects ->
                     Floorplanner.validate devices.(di) ~needs:pool.(ni) rects
                     = Ok ()
                   | _ -> true
                 in
                 if not ok then Atomic.incr failures)
               ops));
      let st = Fp_cache.stats cache in
      let rows = Fp_cache.stripe_stats cache in
      let sum f = Array.fold_left (fun acc r -> acc + f r) 0 rows in
      Atomic.get failures = 0
      && Fp_cache.lookups st = jobs * Array.length ops
      && sum (fun r -> r.Fp_cache.hits) = st.Fp_cache.hits
      && sum (fun r -> r.Fp_cache.sub_hits) = st.Fp_cache.sub_hits
      && sum (fun r -> r.Fp_cache.misses) = st.Fp_cache.misses
      && sum (fun r -> r.Fp_cache.inserts) = st.Fp_cache.inserts
      && Array.for_all (fun r -> r.Fp_cache.l1_hits = 0) rows)

(* Property: whenever the packer places, the MILP engine never proves
   infeasibility, and vice versa: MILP placement implies the packer does
   not prove infeasibility. Verdicts are cross-validated. *)
let prop_engines_consistent =
  QCheck.Test.make ~count:40 ~name:"packer/MILP engines consistent"
    QCheck.(pair int (int_range 1 4))
    (fun (seed, count) ->
      let rng = Rng.create seed in
      let d = Device.minifab in
      let needs =
        Array.init count (fun _ ->
            v
              ~clb:(50 + Rng.int rng 200)
              ~bram:(Rng.int rng 8)
              ~dsp:(Rng.int rng 12))
      in
      let p = Packer.pack d needs in
      let m = Milp_model.pack d needs in
      let valid placements =
        Floorplanner.validate d ~needs placements = Ok ()
      in
      (match p with Packer.Placed pl -> valid pl | _ -> true)
      && (match m with Milp_model.Placed pl -> valid pl | _ -> true)
      &&
      match (p, m) with
      | Packer.Placed _, Milp_model.Infeasible -> false
      | Packer.Infeasible, Milp_model.Placed _ -> false
      | _ -> true)

(* The prefix-sum candidate enumeration is a drop-in replacement for the
   v1 sliding-window scan: same rects, same snuggest-first order. *)
let prop_grid_candidates_identical =
  QCheck.Test.make ~count:200 ~name:"grid candidates = v1 candidates"
    QCheck.(triple int (int_range 0 2) (int_range 0 2))
    (fun (seed, dev_idx, _) ->
      let rng = Rng.create seed in
      let d = [| Device.minifab; Device.xc7z010; Device.xc7z020 |].(dev_idx) in
      let need =
        v
          ~clb:(1 + Rng.int rng 1200)
          ~bram:(Rng.int rng 20) ~dsp:(Rng.int rng 30)
      in
      Placement.grid_candidates (Placement.grid d) need
      = Placement.candidates d need)

(* The column-interval packer against the v1 oracle: never a
   contradiction, never less decisive, and placements always validate.
   (v2 may *refine* a v1 [Unknown] to a decisive verdict — its pruning
   reaches deeper into the same search space within the node budget.) *)
let prop_packer_v2_agrees_v1 =
  QCheck.Test.make ~count:100 ~name:"packer v2 vs v1 oracle"
    QCheck.(pair int (int_range 1 5))
    (fun (seed, count) ->
      let rng = Rng.create seed in
      let d = Device.minifab in
      let needs =
        Array.init count (fun _ ->
            v
              ~clb:(50 + Rng.int rng 250)
              ~bram:(Rng.int rng 11)
              ~dsp:(Rng.int rng 21))
      in
      let v1 = Packer.pack ~engine:Packer.Backtracking_v1 d needs in
      let v2 = Packer.pack ~engine:Packer.Column_interval d needs in
      (match v2 with
      | Packer.Placed pl -> Floorplanner.validate d ~needs pl = Ok ()
      | _ -> true)
      &&
      match (v1, v2) with
      | Packer.Placed _, Packer.Infeasible
      | Packer.Infeasible, Packer.Placed _ ->
        false (* contradiction *)
      | (Packer.Placed _ | Packer.Infeasible), Packer.Unknown ->
        false (* v2 lost decisiveness *)
      | _ -> true)

(* Cached/derived verdicts against a direct check: the subsumption index
   must never contradict the engine it fronts, and every placement it
   hands back must validate against the actual query. Sequences of
   related queries (scaled/truncated variants of a base set) exercise
   the embedding paths. *)
let prop_cache_consistent_with_direct =
  QCheck.Test.make ~count:60 ~name:"subsumption cache vs direct check"
    QCheck.(pair int (int_range 1 4))
    (fun (seed, count) ->
      let rng = Rng.create seed in
      let d = Device.minifab in
      let base =
        Array.init count (fun _ ->
            v
              ~clb:(50 + Rng.int rng 250)
              ~bram:(Rng.int rng 11)
              ~dsp:(Rng.int rng 21))
      in
      let variants =
        [
          base;
          Array.map (fun r -> Resource.scale r 0.9) base;
          Array.map (fun r -> Resource.scale r 0.81) base;
          Array.sub base 0 (Stdlib.max 1 (count - 1));
          Array.map (fun r -> Resource.scale r 1.1) base;
          base;
        ]
      in
      let cache = Fp_cache.create ~debug:true () in
      List.for_all
        (fun needs ->
          let needs =
            Array.map (fun (r : Resource.t) -> Resource.max_components r
              (v ~clb:1 ~bram:0 ~dsp:0)) needs
          in
          let cached = (Fp_cache.check cache d needs).Floorplanner.verdict in
          let direct = (Floorplanner.check d needs).Floorplanner.verdict in
          (match cached with
          | Floorplanner.Feasible pl ->
            Floorplanner.validate d ~needs pl = Ok ()
          | _ -> true)
          &&
          match (cached, direct) with
          | Floorplanner.Feasible _, Floorplanner.Infeasible
          | Floorplanner.Infeasible, Floorplanner.Feasible _ ->
            false
          | _ -> true)
        variants)

let () =
  Alcotest.run "floorplan"
    [
      ( "placement",
        [
          Alcotest.test_case "rect geometry" `Quick test_rect_geometry;
          Alcotest.test_case "candidates cover" `Quick
            test_candidates_cover_requirement;
          Alcotest.test_case "candidates minimal" `Quick
            test_candidates_minimal_width;
          Alcotest.test_case "impossible requirement" `Quick
            test_candidates_impossible;
        ] );
      ( "packer",
        [
          Alcotest.test_case "single region" `Quick test_pack_single;
          Alcotest.test_case "disjoint regions" `Quick test_pack_disjoint;
          Alcotest.test_case "capacity infeasible" `Quick
            test_pack_capacity_infeasible;
          Alcotest.test_case "geometric infeasible" `Quick
            test_pack_geometric_infeasible;
          Alcotest.test_case "empty" `Quick test_pack_empty;
          Alcotest.test_case "v2 equal needs" `Quick test_pack_v2_equal_needs;
          Alcotest.test_case "v2 zero slack" `Quick test_pack_v2_zero_slack;
          Alcotest.test_case "capacity bounds" `Quick test_capacity_bounds_ok;
        ] );
      ( "milp-engine",
        [
          Alcotest.test_case "feasible agreement" `Quick
            test_milp_engine_agrees_feasible;
          Alcotest.test_case "infeasible agreement" `Quick
            test_milp_engine_agrees_infeasible;
        ] );
      ( "floorplanner",
        [
          Alcotest.test_case "check + validate" `Quick
            test_floorplanner_check_and_validate;
          Alcotest.test_case "validate rejects bad plans" `Quick
            test_validate_rejects_bad_plans;
          Alcotest.test_case "quick capacity check" `Quick
            test_quick_capacity_check;
        ] );
      ( "fp-cache",
        [
          Alcotest.test_case "counters and permutation" `Quick
            test_cache_counters_and_permutation;
          Alcotest.test_case "invalidate by device" `Quick
            test_cache_invalidate_device;
          Alcotest.test_case "subsumption feasible" `Quick
            test_cache_subsumption_feasible;
          Alcotest.test_case "subsumption infeasible" `Quick
            test_cache_subsumption_infeasible;
          Alcotest.test_case "unknown never subsumed" `Quick
            test_cache_unknown_never_subsumed;
          Alcotest.test_case "stripe stats sum" `Quick
            test_cache_stripe_stats_sum;
          Alcotest.test_case "L1 epoch flush" `Quick test_cache_l1_epoch_flush;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_cache_concurrent_matches_oracle;
          QCheck_alcotest.to_alcotest prop_engines_consistent;
          QCheck_alcotest.to_alcotest prop_grid_candidates_identical;
          QCheck_alcotest.to_alcotest prop_packer_v2_agrees_v1;
          QCheck_alcotest.to_alcotest prop_cache_consistent_with_direct;
        ] );
    ]
