(* Tests for the util substrate: RNG determinism and distribution sanity,
   statistics, table rendering and CSV escaping. *)

module Rng = Resched_util.Rng
module Stats = Resched_util.Stats
module Table = Resched_util.Table
module Csv = Resched_util.Csv
module Domain_pool = Resched_util.Domain_pool

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different first draw" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    if v < 0. || v >= 3.5 then Alcotest.failf "out of range: %f" v
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "independent" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let l = List.init 50 (fun i -> i) in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let check_float = Alcotest.(check (float 1e-9))

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check_float "empty" 0. (Stats.mean [||])

let test_stats_stddev () =
  (* Population stddev of 2,4,4,4,5,5,7,9 is 2. *)
  check_float "known" 2. (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]);
  check_float "singleton" 0. (Stats.stddev [| 3. |])

let test_stats_minmax () =
  check_float "min" (-2.) (Stats.min [| 3.; -2.; 7. |]);
  check_float "max" 7. (Stats.max [| 3.; -2.; 7. |])

let test_stats_median_percentile () =
  check_float "odd median" 3. (Stats.median [| 5.; 1.; 3. |]);
  check_float "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  check_float "p0" 1. (Stats.percentile [| 4.; 1.; 2.; 3. |] 0.);
  check_float "p100" 4. (Stats.percentile [| 4.; 1.; 2.; 3. |] 100.)

let test_stats_improvement () =
  check_float "20% better" 20. (Stats.improvement_pct ~baseline:100. ~value:80.);
  check_float "worse is negative" (-50.)
    (Stats.improvement_pct ~baseline:100. ~value:150.);
  check_float "zero baseline" 0. (Stats.improvement_pct ~baseline:0. ~value:3.)

let test_table_renders () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has rules and cells" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '+') lines
    && List.exists (fun l -> String.length l > 0 && l.[0] = '|') lines)

let test_table_row_length_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: row length mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_cells () =
  Alcotest.(check string) "float" "1.500" (Table.cell_f 1.5);
  Alcotest.(check string) "pct" "+14.8%" (Table.cell_pct 14.8);
  Alcotest.(check string) "neg pct" "-3.0%" (Table.cell_pct (-3.0))

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_domain_pool_ordered_results () =
  let r = Domain_pool.run ~jobs:4 (fun i -> i * i) in
  Alcotest.(check (array int)) "index order" [| 0; 1; 4; 9 |] r;
  Alcotest.(check (array int)) "jobs=1 runs inline" [| 42 |]
    (Domain_pool.run ~jobs:1 (fun _ -> 42))

let test_domain_pool_propagates_failure () =
  (* Every domain is joined even when one job raises; the first failure
     (by index) is re-raised. *)
  Alcotest.check_raises "failure propagates" (Failure "job 2") (fun () ->
      ignore
        (Domain_pool.run ~jobs:3 (fun i ->
             if i = 2 then failwith "job 2" else i)));
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Domain_pool.run: jobs must be >= 1") (fun () ->
      ignore (Domain_pool.run ~jobs:0 (fun i -> i)))

let test_domain_pool_shared_atomic () =
  let counter = Atomic.make 0 in
  ignore
    (Domain_pool.run ~jobs:4 (fun _ ->
         for _ = 1 to 1000 do
           Atomic.incr counter
         done));
  Alcotest.(check int) "all increments land" 4000 (Atomic.get counter)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile monotone in p"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))
        (float_range 0. 100.) (float_range 0. 100.))
    (fun (l, p1, p2) ->
      let a = Array.of_list l in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "rejects bound <= 0" `Quick
            test_rng_int_rejects_nonpositive;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "median/percentile" `Quick
            test_stats_median_percentile;
          Alcotest.test_case "improvement_pct" `Quick test_stats_improvement;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "row mismatch" `Quick
            test_table_row_length_mismatch;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
      ("csv", [ Alcotest.test_case "escaping" `Quick test_csv_escaping ]);
      ( "domain-pool",
        [
          Alcotest.test_case "ordered results" `Quick
            test_domain_pool_ordered_results;
          Alcotest.test_case "failure propagation" `Quick
            test_domain_pool_propagates_failure;
          Alcotest.test_case "shared atomic counter" `Quick
            test_domain_pool_shared_atomic;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_percentile_monotone ]);
    ]
