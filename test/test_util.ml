(* Tests for the util substrate: RNG determinism and distribution sanity,
   statistics, table rendering and CSV escaping, the seqlock's optimistic
   read protocol, the persistent domain pool and the JSON codec. *)

module Rng = Resched_util.Rng
module Stats = Resched_util.Stats
module Table = Resched_util.Table
module Csv = Resched_util.Csv
module Domain_pool = Resched_util.Domain_pool
module Seqlock = Resched_util.Seqlock
module Json = Resched_util.Json

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different first draw" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    if v < 0. || v >= 3.5 then Alcotest.failf "out of range: %f" v
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "independent" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let l = List.init 50 (fun i -> i) in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let check_float = Alcotest.(check (float 1e-9))

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check_float "empty" 0. (Stats.mean [||])

let test_stats_stddev () =
  (* Population stddev of 2,4,4,4,5,5,7,9 is 2. *)
  check_float "known" 2. (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]);
  check_float "singleton" 0. (Stats.stddev [| 3. |])

let test_stats_minmax () =
  check_float "min" (-2.) (Stats.min [| 3.; -2.; 7. |]);
  check_float "max" 7. (Stats.max [| 3.; -2.; 7. |])

let test_stats_median_percentile () =
  check_float "odd median" 3. (Stats.median [| 5.; 1.; 3. |]);
  check_float "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  check_float "p0" 1. (Stats.percentile [| 4.; 1.; 2.; 3. |] 0.);
  check_float "p100" 4. (Stats.percentile [| 4.; 1.; 2.; 3. |] 100.)

let test_stats_improvement () =
  check_float "20% better" 20. (Stats.improvement_pct ~baseline:100. ~value:80.);
  check_float "worse is negative" (-50.)
    (Stats.improvement_pct ~baseline:100. ~value:150.);
  check_float "zero baseline" 0. (Stats.improvement_pct ~baseline:0. ~value:3.)

let test_table_renders () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has rules and cells" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '+') lines
    && List.exists (fun l -> String.length l > 0 && l.[0] = '|') lines)

let test_table_row_length_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: row length mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_cells () =
  Alcotest.(check string) "float" "1.500" (Table.cell_f 1.5);
  Alcotest.(check string) "pct" "+14.8%" (Table.cell_pct 14.8);
  Alcotest.(check string) "neg pct" "-3.0%" (Table.cell_pct (-3.0))

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_domain_pool_ordered_results () =
  let r = Domain_pool.run ~jobs:4 (fun i -> i * i) in
  Alcotest.(check (array int)) "index order" [| 0; 1; 4; 9 |] r;
  Alcotest.(check (array int)) "jobs=1 runs inline" [| 42 |]
    (Domain_pool.run ~jobs:1 (fun _ -> 42))

let test_domain_pool_propagates_failure () =
  (* Every domain is joined even when one job raises; the first failure
     (by index) is re-raised. *)
  Alcotest.check_raises "failure propagates" (Failure "job 2") (fun () ->
      ignore
        (Domain_pool.run ~jobs:3 (fun i ->
             if i = 2 then failwith "job 2" else i)));
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Domain_pool.run: jobs must be >= 1") (fun () ->
      ignore (Domain_pool.run ~jobs:0 (fun i -> i)))

let test_domain_pool_shared_atomic () =
  let counter = Atomic.make 0 in
  ignore
    (Domain_pool.run ~jobs:4 (fun _ ->
         for _ = 1 to 1000 do
           Atomic.incr counter
         done));
  Alcotest.(check int) "all increments land" 4000 (Atomic.get counter)

let test_seqlock_basic () =
  let s = Seqlock.create 1 in
  Alcotest.(check int) "initial" 1 (Seqlock.get s);
  Seqlock.set s 2;
  Alcotest.(check int) "after set" 2 (Seqlock.get s);
  Seqlock.update s (fun x -> x + 10);
  Alcotest.(check int) "after update" 12 (Seqlock.get s);
  Alcotest.(check int) "two writes leave an even version" 4 (Seqlock.version s)

let test_seqlock_update_exn_keeps_value () =
  let s = Seqlock.create 5 in
  Alcotest.check_raises "update re-raises" (Failure "nope") (fun () ->
      Seqlock.update s (fun _ -> failwith "nope"));
  Alcotest.(check int) "value unchanged" 5 (Seqlock.get s);
  Alcotest.(check bool) "version settles even" true
    (Seqlock.version s land 1 = 0);
  Seqlock.set s 6;
  Alcotest.(check int) "cell still writable" 6 (Seqlock.get s)

let test_seqlock_hook_forced_retry () =
  (* A write landing between the version sample and the value read must
     fail the re-check; once the writer goes quiet the read linearizes
     on the latest published value. *)
  let s = Seqlock.create 0 in
  let writes = ref 0 in
  let v =
    Seqlock.For_testing.get_with_hook s ~hook:(fun () ->
        if !writes < 3 then begin
          incr writes;
          Seqlock.set s !writes
        end)
  in
  Alcotest.(check int) "read sees the last write" 3 v;
  Alcotest.(check int) "every collision counted" 3 (Seqlock.retries s)

let test_seqlock_mutex_fallback () =
  (* A hook that writes on every attempt starves the optimistic path
     forever; the read must still terminate, via the writer mutex. *)
  let s = Seqlock.create 0 in
  let n = ref 0 in
  let v =
    Seqlock.For_testing.get_with_hook s ~hook:(fun () ->
        incr n;
        Seqlock.set s !n)
  in
  Alcotest.(check int) "fallback read returns the latest value" !n v;
  Alcotest.(check bool) "optimism is bounded" true (Seqlock.retries s > 64)

let test_seqlock_concurrent_reads () =
  (* One writer publishes (k, -k) pairs in increasing k; concurrent
     readers must never observe a torn pair or travel back in time. *)
  let s = Seqlock.create (0, 0) in
  let writes = 2000 in
  let bad = Atomic.make 0 in
  ignore
    (Domain_pool.run ~jobs:4 (fun i ->
         if i = 0 then
           for k = 1 to writes do
             Seqlock.set s (k, -k)
           done
         else begin
           let last = ref (-1) in
           for _ = 1 to 5000 do
             let a, b = Seqlock.get s in
             if b <> -a || a < !last then Atomic.incr bad;
             last := a
           done
         end));
  Alcotest.(check int) "reads consistent and monotone" 0 (Atomic.get bad);
  Alcotest.(check int) "final value visible after join" writes
    (fst (Seqlock.get s))

let test_plan_jobs () =
  let cores = Domain_pool.available_cores () in
  let p = Domain_pool.plan_jobs ~requested:(cores + 8) () in
  Alcotest.(check int) "clamped to the core count" cores
    p.Domain_pool.effective;
  Alcotest.(check int) "request recorded" (cores + 8) p.Domain_pool.requested;
  Alcotest.(check bool) "clamping is a downgrade" true
    (Domain_pool.downgraded p);
  let q =
    Domain_pool.plan_jobs ~allow_oversubscribe:true ~requested:(cores + 8) ()
  in
  Alcotest.(check int) "oversubscription keeps the request" (cores + 8)
    q.Domain_pool.effective;
  Alcotest.(check bool) "oversubscribed plan is not downgraded" false
    (Domain_pool.downgraded q);
  Alcotest.(check bool) "jobs=1 never downgrades" false
    (Domain_pool.downgraded (Domain_pool.plan_jobs ~requested:1 ()))

let test_warn_downgrade () =
  let capture p =
    let path = Filename.temp_file "resched_warn" ".log" in
    let oc = open_out path in
    Domain_pool.warn_downgrade ~out:oc ~label:"unit-test" p;
    close_out oc;
    let ic = open_in path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Sys.remove path;
    s
  in
  let msg = capture { Domain_pool.requested = 8; effective = 1; cores = 1 } in
  Alcotest.(check bool) "warning names the label" true
    (contains ~sub:"unit-test" msg);
  Alcotest.(check bool) "warning states the requested width" true
    (contains ~sub:"jobs=8" msg);
  Alcotest.(check string) "silent when nothing was downgraded" ""
    (capture { Domain_pool.requested = 2; effective = 2; cores = 4 })

let test_pool_map_reuses_domains () =
  let p = Domain_pool.Pool.create ~jobs:3 () in
  Alcotest.(check int) "jobs" 3 (Domain_pool.Pool.jobs p);
  Alcotest.(check (array int)) "ordered results" [| 0; 2; 4 |]
    (Domain_pool.Pool.map p (fun i -> 2 * i));
  (* Workers are resident, so domain-local state stays warm between
     batches — the property the PA-R arena cache depends on. *)
  let key = Domain.DLS.new_key (fun () -> ref 0) in
  let bump _ =
    let r = Domain.DLS.get key in
    incr r;
    !r
  in
  Alcotest.(check (array int)) "first batch initializes DLS" [| 1; 1; 1 |]
    (Domain_pool.Pool.map p bump);
  Alcotest.(check (array int)) "second batch finds it warm" [| 2; 2; 2 |]
    (Domain_pool.Pool.map p bump);
  Domain_pool.Pool.shutdown p

let test_pool_failure_and_shutdown () =
  let p = Domain_pool.Pool.create ~jobs:2 () in
  Alcotest.check_raises "first failure re-raised" (Failure "job 1") (fun () ->
      ignore
        (Domain_pool.Pool.map p (fun i ->
             if i = 1 then failwith "job 1" else i)));
  Alcotest.(check (array int)) "pool survives a failed batch" [| 0; 1 |]
    (Domain_pool.Pool.map p (fun i -> i));
  Domain_pool.Pool.shutdown p;
  (* Idempotent; a shut pool refuses work instead of hanging. *)
  Domain_pool.Pool.shutdown p;
  Alcotest.(check bool) "map after shutdown raises" true
    (match Domain_pool.Pool.map p (fun i -> i) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Crash containment, the property the serve layer builds on: a task
   that raises fails only its own cell — every sibling in the same
   generation still runs to completion — and the pool keeps serving
   generation after generation afterwards. *)
let test_pool_crash_containment () =
  let jobs = 3 in
  let p = Domain_pool.Pool.create ~jobs () in
  let ran = Array.init jobs (fun _ -> Atomic.make 0) in
  Alcotest.check_raises "poisoned task re-raised" (Failure "poison")
    (fun () ->
      ignore
        (Domain_pool.Pool.map p (fun i ->
             Atomic.incr ran.(i);
             if i = 1 then failwith "poison";
             i)));
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "task %d of the poisoned generation still ran" i)
        1 (Atomic.get c))
    ran;
  (* Several healthy generations after the failure, including the
     chunked dispatch path — the pool state fully recovered. *)
  for gen = 1 to 3 do
    Alcotest.(check (array int))
      (Printf.sprintf "generation %d after the failure" gen)
      [| 0; gen; 2 * gen |]
      (Domain_pool.Pool.map p (fun i -> gen * i))
  done;
  let sum = Atomic.make 0 in
  Domain_pool.Pool.run_chunked p ~n:100 (fun i ->
      ignore (Atomic.fetch_and_add sum i));
  Alcotest.(check int) "run_chunked after a failed generation" 4950
    (Atomic.get sum);
  (* A second poisoned generation doesn't accumulate damage either. *)
  Alcotest.check_raises "second poisoned generation" (Failure "again")
    (fun () ->
      ignore
        (Domain_pool.Pool.map p (fun i ->
             if i = 2 then failwith "again" else i)));
  Alcotest.(check (array int)) "still alive after the second failure"
    [| 0; 1; 2 |]
    (Domain_pool.Pool.map p (fun i -> i));
  Domain_pool.Pool.shutdown p

let test_pool_run_chunked () =
  let p = Domain_pool.Pool.create ~jobs:3 () in
  let n = 1003 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Domain_pool.Pool.run_chunked p ~chunk:7 ~n (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "item %d ran %d times" i (Atomic.get c))
    hits;
  Domain_pool.Pool.run_chunked p ~n:0 (fun _ ->
      Alcotest.fail "n=0 must dispatch nothing");
  let sum = Atomic.make 0 in
  Domain_pool.Pool.run_chunked p ~n:100 (fun i ->
      ignore (Atomic.fetch_and_add sum i));
  Alcotest.(check int) "default chunking covers every item" 4950
    (Atomic.get sum);
  Domain_pool.Pool.shutdown p

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.float 1.5; Json.String "x\n\"\\y"; Json.Null ]);
        ("ok", Json.Bool true);
        ("empty", Json.Obj []);
        ("nested", Json.Obj [ ("l", Json.List []) ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "pretty form roundtrips" true (v = v')
  | Error e -> Alcotest.fail e);
  let compact = Json.to_string ~indent:0 v in
  Alcotest.(check bool) "compact form is one line" true
    (not (String.contains compact '\n'));
  match Json.parse compact with
  | Ok v' -> Alcotest.(check bool) "compact form roundtrips" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_errors_and_nonfinite () =
  Alcotest.(check bool) "NaN prints as null" true
    (Json.float Float.nan = Json.Null);
  (match Json.parse "{\"a\":" with
  | Ok _ -> Alcotest.fail "accepted a truncated object"
  | Error _ -> ());
  match Json.parse "[1, 2] trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ()

let test_json_accessors () =
  match
    Json.parse
      "{\"jobs\": {\"requested\": 4, \"effective\": 1}, \"xs\": [1, 2.5, true]}"
  with
  | Error e -> Alcotest.fail e
  | Ok v ->
    Alcotest.(check (option int)) "nested path" (Some 4)
      (Option.bind (Json.path [ "jobs"; "requested" ] v) Json.get_int);
    Alcotest.(check (option int)) "missing member" None
      (Option.bind (Json.member "nope" v) Json.get_int);
    let xs = Option.value ~default:[] (Option.bind (Json.member "xs" v) Json.to_list) in
    Alcotest.(check int) "list length" 3 (List.length xs);
    Alcotest.(check (option bool)) "bool element" (Some true)
      (Json.get_bool (List.nth xs 2));
    Alcotest.(check (option (float 1e-9))) "int widens to float" (Some 1.)
      (Json.get_float (List.nth xs 0))

(* --- Lineio (reusable jsonl framing buffers) ----------------------- *)

module Lineio = Resched_util.Lineio

(* A fill callback that deposits bytes from an in-memory source string,
   [chunk] bytes at a time. *)
let feeder ?(chunk = max_int) s =
  let pos = ref 0 in
  fun buf off len ->
    let n = Stdlib.min (Stdlib.min len chunk) (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n

let drain_reader r =
  let rec go acc =
    match Lineio.Reader.next r with
    | `Line l -> go (`Line l :: acc)
    | `Overflow n -> go (`Overflow n :: acc)
    | `Pending -> List.rev acc
  in
  go []

let test_lineio_split_fills () =
  let r = Lineio.Reader.create ~capacity:8 ~max_line:64 () in
  (* One logical stream arriving in awkward 3-byte reads: lines split
     across fills, CRLF termination, and a final unterminated tail. *)
  let f = feeder ~chunk:3 "hello\nwor" in
  let rec pump f = if Lineio.Reader.fill r f > 0 then pump f in
  pump f;
  Alcotest.(check int) "first line framed" 1
    (List.length
       (List.filter (function `Line "hello" -> true | _ -> false)
          (drain_reader r)));
  Alcotest.(check int) "partial line buffered" 3 (Lineio.Reader.buffered r);
  pump (feeder ~chunk:3 "ld\r\nlast");
  (match drain_reader r with
  | [ `Line "world" ] -> ()
  | _ -> Alcotest.fail "expected exactly [world] with CRLF stripped");
  Alcotest.(check (option string)) "EOF flush returns the tail"
    (Some "last")
    (Lineio.Reader.pending_line r);
  Alcotest.(check int) "empty after pending_line" 0 (Lineio.Reader.buffered r)

let test_lineio_overflow_and_resume () =
  let r = Lineio.Reader.create ~capacity:8 ~max_line:5 () in
  let pump s =
    let f = feeder s in
    let rec go () = if Lineio.Reader.fill r f > 0 then go () in
    go ()
  in
  (* Exactly max_line is fine. *)
  pump "12345\n";
  (match drain_reader r with
  | [ `Line "12345" ] -> ()
  | _ -> Alcotest.fail "exact-limit line should frame");
  (* One byte over, terminated: a single overflow report, no line. *)
  pump "123456\n";
  (match drain_reader r with
  | [ `Overflow 6 ] -> ()
  | _ -> Alcotest.fail "expected one overflow for a 6-byte line");
  (* Unterminated flood: overflow reported once at detection, the rest
     of the line discarded silently, then framing resumes. *)
  pump "xxxxxxxxxx";
  (match drain_reader r with
  | [ `Overflow _ ] -> ()
  | _ -> Alcotest.fail "expected a single overflow report for the flood");
  pump "xxxx";
  Alcotest.(check int) "mid-discard bytes are silent" 0
    (List.length (drain_reader r));
  Alcotest.(check (option string)) "pending_line hides a discarded tail"
    None
    (Lineio.Reader.pending_line r);
  pump "xxx\nok\n";
  (match drain_reader r with
  | [ `Line "ok" ] -> ()
  | _ -> Alcotest.fail "framing should resume after the discarded line")

let test_lineio_writer () =
  let w = Lineio.Writer.create ~capacity:8 () in
  Alcotest.(check bool) "starts empty" true (Lineio.Writer.is_empty w);
  Alcotest.(check bool) "add a" true (Lineio.Writer.add_line w "aa");
  Alcotest.(check bool) "add b" true (Lineio.Writer.add_line w "bb");
  Alcotest.(check bool) "add c" true (Lineio.Writer.add_line w "cc");
  Alcotest.(check int) "coalesced length" 9 (Lineio.Writer.length w);
  (* The whole backlog is offered as one contiguous write. *)
  let seen = ref "" in
  let n =
    Lineio.Writer.write_with w (fun buf pos len ->
        seen := Bytes.sub_string buf pos len;
        (* short write: only 4 bytes go out *)
        4)
  in
  Alcotest.(check int) "short write consumed" 4 n;
  Alcotest.(check string) "offered contiguously" "aa\nbb\ncc\n" !seen;
  Alcotest.(check int) "remainder stays buffered" 5 (Lineio.Writer.length w);
  let n =
    Lineio.Writer.write_with w (fun buf pos len ->
        seen := Bytes.sub_string buf pos len;
        len)
  in
  Alcotest.(check int) "rest flushed" 5 n;
  Alcotest.(check string) "tail preserved across short writes" "b\ncc\n" !seen;
  Alcotest.(check bool) "empty again" true (Lineio.Writer.is_empty w);
  (* Slow-consumer guard: a cap violation leaves the buffer unchanged. *)
  Alcotest.(check bool) "within cap" true
    (Lineio.Writer.add_line ~max:8 w "12345");
  Alcotest.(check bool) "cap refused" false
    (Lineio.Writer.add_line ~max:8 w "12345");
  Alcotest.(check int) "refused add left buffer intact" 6
    (Lineio.Writer.length w);
  Lineio.Writer.clear w;
  Alcotest.(check bool) "clear empties" true (Lineio.Writer.is_empty w)

(* The zero-copy steady-state claim from ISSUE 10, measured: once the
   ring has grown to fit the traffic, pushing a line through
   Reader.fill/next and echoing it through Writer.add_line/write_with
   allocates only the line string itself (plus a few words of variant
   and closure plumbing) — no per-request buffers.  The budget of 64
   minor words per round trip is ~3x the line string's own size; a
   per-line buffer allocation (4096 bytes = 512+ words) blows it by an
   order of magnitude.  Capacities must also have stabilised. *)
let test_lineio_steady_state_alloc () =
  let line = String.make 100 'j' in
  let request = line ^ "\n" in
  let r = Lineio.Reader.create ~max_line:1024 () in
  let w = Lineio.Writer.create () in
  let pos = ref 0 in
  let fill_fn buf off len =
    let n = Stdlib.min len (String.length request - !pos) in
    Bytes.blit_string request !pos buf off n;
    pos := !pos + n;
    n
  in
  let sink _ _ len = len in
  let cycle () =
    pos := 0;
    while Lineio.Reader.fill r fill_fn > 0 do
      ()
    done;
    (match Lineio.Reader.next r with
    | `Line l ->
      if not (Lineio.Writer.add_line w l) then Alcotest.fail "writer refused"
    | _ -> Alcotest.fail "expected a line");
    (match Lineio.Reader.next r with
    | `Pending -> ()
    | _ -> Alcotest.fail "expected pending");
    ignore (Lineio.Writer.write_with w sink : int)
  in
  for _ = 1 to 100 do
    cycle ()
  done;
  let rcap = Lineio.Reader.capacity r and wcap = Lineio.Writer.capacity w in
  let rounds = 1_000 in
  let before = Gc.minor_words () in
  for _ = 1 to rounds do
    cycle ()
  done;
  let per_line = (Gc.minor_words () -. before) /. float_of_int rounds in
  Alcotest.(check bool)
    (Printf.sprintf "steady state allocates no buffers (%.1f words/line)"
       per_line)
    true
    (per_line <= 64.);
  Alcotest.(check int) "reader capacity stabilised" rcap
    (Lineio.Reader.capacity r);
  Alcotest.(check int) "writer capacity stabilised" wcap
    (Lineio.Writer.capacity w)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile monotone in p"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))
        (float_range 0. 100.) (float_range 0. 100.))
    (fun (l, p1, p2) ->
      let a = Array.of_list l in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

(* --- Sort (the shared in-place insertion sorts) -------------------- *)

(* Elements carry a distinct id next to a many-collision key
   ([v = key * 1024 + id]) so stability is observable on plain ints. *)
let prop_sort_by_int_key_segment =
  QCheck.Test.make ~count:200
    ~name:"Sort.by_int_key sorts exactly [base, base+len) and is stable"
    QCheck.(triple (list small_nat) small_nat small_nat)
    (fun (l, b, len) ->
      let arr = Array.of_list (List.mapi (fun i k -> ((k mod 5) * 1024) + i) l) in
      let n = Array.length arr in
      let base = if n = 0 then 0 else b mod n in
      let len = Stdlib.min len (n - base) in
      let before = Array.copy arr in
      let key v = v / 1024 in
      let expected =
        List.stable_sort
          (fun a b -> compare (key a) (key b))
          (Array.to_list (Array.sub before base len))
      in
      Resched_util.Sort.by_int_key arr ~base ~len ~key;
      let outside_ok = ref true in
      for i = 0 to n - 1 do
        if (i < base || i >= base + len) && arr.(i) <> before.(i) then
          outside_ok := false
      done;
      !outside_ok
      && List.equal Int.equal expected (Array.to_list (Array.sub arr base len)))

let prop_sort_by_float_keys =
  QCheck.Test.make ~count:200
    ~name:"Sort.by_float_keys matches stable_sort, both directions"
    QCheck.(pair (list small_nat) bool)
    (fun (l, desc) ->
      let n = List.length l in
      let arr = Array.of_list (List.mapi (fun i k -> ((k mod 7) * 1024) + i) l) in
      let key v = float_of_int (v / 1024) in
      let keys = Array.map key arr in
      let expected =
        List.stable_sort
          (fun a b ->
            let c = compare (key a) (key b) in
            if desc then -c else c)
          (Array.to_list arr)
      in
      Resched_util.Sort.by_float_keys arr keys ~base:0 ~len:n ~desc;
      (* the key array is permuted alongside the values *)
      let keys_ok = ref true in
      Array.iteri (fun i v -> if keys.(i) <> key v then keys_ok := false) arr;
      !keys_ok && List.equal Int.equal expected (Array.to_list arr))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "rejects bound <= 0" `Quick
            test_rng_int_rejects_nonpositive;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "median/percentile" `Quick
            test_stats_median_percentile;
          Alcotest.test_case "improvement_pct" `Quick test_stats_improvement;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "row mismatch" `Quick
            test_table_row_length_mismatch;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
      ("csv", [ Alcotest.test_case "escaping" `Quick test_csv_escaping ]);
      ( "domain-pool",
        [
          Alcotest.test_case "ordered results" `Quick
            test_domain_pool_ordered_results;
          Alcotest.test_case "failure propagation" `Quick
            test_domain_pool_propagates_failure;
          Alcotest.test_case "shared atomic counter" `Quick
            test_domain_pool_shared_atomic;
          Alcotest.test_case "plan_jobs clamps honestly" `Quick test_plan_jobs;
          Alcotest.test_case "warn_downgrade output" `Quick test_warn_downgrade;
        ] );
      ( "seqlock",
        [
          Alcotest.test_case "get/set/update/version" `Quick test_seqlock_basic;
          Alcotest.test_case "failed update keeps value" `Quick
            test_seqlock_update_exn_keeps_value;
          Alcotest.test_case "hook-forced retry" `Quick
            test_seqlock_hook_forced_retry;
          Alcotest.test_case "mutex fallback under write storm" `Quick
            test_seqlock_mutex_fallback;
          Alcotest.test_case "concurrent reads consistent" `Quick
            test_seqlock_concurrent_reads;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map reuses resident domains" `Quick
            test_pool_map_reuses_domains;
          Alcotest.test_case "failure and shutdown" `Quick
            test_pool_failure_and_shutdown;
          Alcotest.test_case "crash containment" `Quick
            test_pool_crash_containment;
          Alcotest.test_case "run_chunked covers all items" `Quick
            test_pool_run_chunked;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors and non-finite" `Quick
            test_json_errors_and_nonfinite;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "lineio",
        [
          Alcotest.test_case "lines split across fills" `Quick
            test_lineio_split_fills;
          Alcotest.test_case "overflow, discard, resume" `Quick
            test_lineio_overflow_and_resume;
          Alcotest.test_case "writer coalesces and guards" `Quick
            test_lineio_writer;
          Alcotest.test_case "steady state allocates no buffers" `Quick
            test_lineio_steady_state_alloc;
        ] );
      ( "sort",
        [
          QCheck_alcotest.to_alcotest prop_sort_by_int_key_segment;
          QCheck_alcotest.to_alcotest prop_sort_by_float_keys;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_percentile_monotone ]);
    ]
