(* Tests for the LP/MILP substrate: known optima, degenerate cases and
   randomized properties that cross-check the simplex against certificates
   of feasibility. *)

module Lp = Resched_milp.Lp
module Simplex = Resched_milp.Simplex
module Branch_bound = Resched_milp.Branch_bound
module Rng = Resched_util.Rng

let check_float = Alcotest.(check (float 1e-6))

let opt_exn = function
  | Simplex.Optimal s -> s
  | Simplex.Infeasible -> Alcotest.fail "expected Optimal, got Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "expected Optimal, got Unbounded"
  | Simplex.Limit -> Alcotest.fail "expected Optimal, got Limit"

(* maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6).
   The classic Dantzig example. *)
let test_lp_textbook () =
  let m = Lp.create ~objective:Lp.Maximize () in
  let x = Lp.add_var m ~obj:3. () in
  let y = Lp.add_var m ~obj:5. () in
  Lp.add_constraint m [ (x, 1.) ] Lp.Le 4.;
  Lp.add_constraint m [ (y, 2.) ] Lp.Le 12.;
  Lp.add_constraint m [ (x, 3.); (y, 2.) ] Lp.Le 18.;
  let s = opt_exn (Simplex.solve m) in
  check_float "objective" 36. s.objective;
  check_float "x" 2. s.values.(0);
  check_float "y" 6. s.values.(1)

(* minimize 2x + 3y s.t. x + y >= 10, x - y <= 2, x,y >= 0.
   Optimum: push y as low as allowed: x - y <= 2 and x + y = 10 ->
   x = 6, y = 4 gives 24; check against x=0,y=10 -> 30. *)
let test_lp_min_with_ge () =
  let m = Lp.create () in
  let x = Lp.add_var m ~obj:2. () in
  let y = Lp.add_var m ~obj:3. () in
  Lp.add_constraint m [ (x, 1.); (y, 1.) ] Lp.Ge 10.;
  Lp.add_constraint m [ (x, 1.); (y, -1.) ] Lp.Le 2.;
  let s = opt_exn (Simplex.solve m) in
  check_float "objective" 24. s.objective;
  check_float "x" 6. s.values.(0);
  check_float "y" 4. s.values.(1)

let test_lp_equality_and_bounds () =
  (* minimize x + 2y s.t. x + y = 5, 1 <= x <= 3 -> x = 3, y = 2, obj 7. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:1. ~ub:3. ~obj:1. () in
  let y = Lp.add_var m ~obj:2. () in
  Lp.add_constraint m [ (x, 1.); (y, 1.) ] Lp.Eq 5.;
  let s = opt_exn (Simplex.solve m) in
  check_float "objective" 7. s.objective;
  check_float "x" 3. s.values.(0);
  check_float "y" 2. s.values.(1)

let test_lp_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var m ~obj:1. () in
  Lp.add_constraint m [ (x, 1.) ] Lp.Le 1.;
  Lp.add_constraint m [ (x, 1.) ] Lp.Ge 2.;
  match Simplex.solve m with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_lp_unbounded () =
  let m = Lp.create ~objective:Lp.Maximize () in
  let x = Lp.add_var m ~obj:1. () in
  let y = Lp.add_var m ~obj:0. () in
  Lp.add_constraint m [ (x, 1.); (y, -1.) ] Lp.Le 3.;
  match Simplex.solve m with
  | Simplex.Unbounded -> ()
  | Simplex.Optimal s -> Alcotest.failf "expected Unbounded, got %g" s.objective
  | Simplex.Infeasible -> Alcotest.fail "expected Unbounded, got Infeasible"
  | Simplex.Limit -> Alcotest.fail "expected Unbounded, got Limit"

let test_lp_degenerate () =
  (* A degenerate vertex (redundant constraint through the optimum) must
     not cycle thanks to Bland's rule. maximize x + y s.t. x <= 2, y <= 2,
     x + y <= 4 (redundant at optimum) -> 4. *)
  let m = Lp.create ~objective:Lp.Maximize () in
  let x = Lp.add_var m ~obj:1. () in
  let y = Lp.add_var m ~obj:1. () in
  Lp.add_constraint m [ (x, 1.) ] Lp.Le 2.;
  Lp.add_constraint m [ (y, 1.) ] Lp.Le 2.;
  Lp.add_constraint m [ (x, 1.); (y, 1.) ] Lp.Le 4.;
  let s = opt_exn (Simplex.solve m) in
  check_float "objective" 4. s.objective

let test_lp_negative_rhs () =
  (* minimize x s.t. -x <= -3  (i.e. x >= 3) -> 3. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~obj:1. () in
  Lp.add_constraint m [ (x, -1.) ] Lp.Le (-3.);
  let s = opt_exn (Simplex.solve m) in
  check_float "objective" 3. s.objective

let test_lp_duplicate_terms () =
  (* Terms on the same variable must be combined: x + x <= 4 -> x <= 2. *)
  let m = Lp.create ~objective:Lp.Maximize () in
  let x = Lp.add_var m ~obj:1. () in
  Lp.add_constraint m [ (x, 1.); (x, 1.) ] Lp.Le 4.;
  let s = opt_exn (Simplex.solve m) in
  check_float "objective" 2. s.objective

let bb_opt_exn = function
  | Branch_bound.Optimal s -> s
  | Branch_bound.Feasible _ -> Alcotest.fail "hit node limit"
  | Branch_bound.Infeasible -> Alcotest.fail "expected Optimal, got Infeasible"
  | Branch_bound.Unbounded -> Alcotest.fail "expected Optimal, got Unbounded"
  | Branch_bound.Node_limit -> Alcotest.fail "expected Optimal, got Node_limit"

(* Knapsack: values 10,13,7,8; weights 5,6,4,3; capacity 10.
   Best: items 2 and 4 -> value 21 (w 9); check 1+4=18, 3+4=15, 1+3=17. *)
let test_milp_knapsack () =
  let m = Lp.create ~objective:Lp.Maximize () in
  let values = [| 10.; 13.; 7.; 8. |] in
  let weights = [| 5.; 6.; 4.; 3. |] in
  let xs = Array.map (fun v -> Lp.add_binary m ~obj:v ()) values in
  Lp.add_constraint m
    (Array.to_list (Array.mapi (fun i x -> (x, weights.(i))) xs))
    Lp.Le 10.;
  let s = bb_opt_exn (Branch_bound.solve m) in
  check_float "objective" 21. s.objective;
  check_float "x1" 1. s.values.(1);
  check_float "x3" 1. s.values.(3)

let test_milp_integer_rounding_matters () =
  (* maximize x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5). *)
  let m = Lp.create ~objective:Lp.Maximize () in
  let x = Lp.add_var m ~ub:10. ~integer:true ~obj:1. () in
  Lp.add_constraint m [ (x, 2.) ] Lp.Le 7.;
  let s = bb_opt_exn (Branch_bound.solve m) in
  check_float "objective" 3. s.objective

let test_milp_infeasible_integer () =
  (* 0.4 <= x <= 0.6, x integer: LP feasible, MILP infeasible. *)
  let m = Lp.create () in
  let _ = Lp.add_var m ~lb:0.4 ~ub:0.6 ~integer:true ~obj:1. () in
  match Branch_bound.solve m with
  | Branch_bound.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_milp_mixed () =
  (* minimize y - x with x integer, y continuous:
     y >= 0.5 x, x <= 4.3 (x integer -> x <= 4), y free-ish up to 100.
     Optimal: x = 4, y = 2 -> -2. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:4.3 ~integer:true ~obj:(-1.) () in
  let y = Lp.add_var m ~ub:100. ~obj:1. () in
  Lp.add_constraint m [ (y, 1.); (x, -0.5) ] Lp.Ge 0.;
  let s = bb_opt_exn (Branch_bound.solve m) in
  check_float "objective" (-2.) s.objective;
  check_float "x" 4. s.values.(0);
  check_float "y" 2. s.values.(1)

let test_milp_time_limit () =
  (* A hard knapsack-style model with a microscopic time budget must
     come back quickly and never claim optimality. *)
  let m = Lp.create ~objective:Lp.Maximize () in
  let rng = Rng.create 99 in
  let xs = List.init 24 (fun _ -> Lp.add_binary m ~obj:(Rng.float rng 10.) ()) in
  Lp.add_constraint m
    (List.map (fun x -> (x, 1. +. Rng.float rng 5.)) xs)
    Lp.Le 30.;
  let t0 = Unix.gettimeofday () in
  let r = Branch_bound.solve ~time_limit:0.05 m in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "returned promptly" true (dt < 5.);
  match r with
  | Branch_bound.Optimal s ->
    (* Finishing under the budget is fine, but optimality must be real:
       proved flag set. *)
    Alcotest.(check bool) "proved" true s.Branch_bound.proved_optimal
  | Branch_bound.Feasible s ->
    Alcotest.(check bool) "not proved" false s.Branch_bound.proved_optimal
  | Branch_bound.Node_limit -> ()
  | Branch_bound.Infeasible -> Alcotest.fail "spurious Infeasible"
  | Branch_bound.Unbounded -> Alcotest.fail "spurious Unbounded"

let test_milp_node_limit () =
  (* A tiny limit must report Node_limit or Feasible, never crash. *)
  let m = Lp.create ~objective:Lp.Maximize () in
  let xs = List.init 12 (fun _ -> Lp.add_binary m ~obj:1. ()) in
  Lp.add_constraint m (List.map (fun x -> (x, 2.)) xs) Lp.Le 11.;
  match Branch_bound.solve ~node_limit:2 m with
  | Branch_bound.Node_limit | Branch_bound.Feasible _ | Branch_bound.Optimal _
    -> ()
  | Branch_bound.Infeasible -> Alcotest.fail "spurious Infeasible"
  | Branch_bound.Unbounded -> Alcotest.fail "spurious Unbounded"

(* Property: for random LPs constructed around a known feasible point x0
   with constraints a.x <= a.x0 + slack, the simplex (a) declares
   feasibility and (b) returns an objective no worse than c.x0. *)
let prop_simplex_beats_witness =
  QCheck.Test.make ~count:200 ~name:"simplex objective beats witness point"
    QCheck.(pair int (int_range 1 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let x0 = Array.init n (fun _ -> Rng.float rng 10.) in
      let m = Lp.create () in
      let xs =
        Array.init n (fun _ -> Lp.add_var m ~obj:(Rng.float rng 4. -. 2.) ())
      in
      for _ = 1 to 2 * n do
        let coeffs = Array.init n (fun _ -> Rng.float rng 4. -. 2.) in
        let lhs_at_x0 = ref 0. in
        Array.iteri (fun i c -> lhs_at_x0 := !lhs_at_x0 +. (c *. x0.(i))) coeffs;
        Lp.add_constraint m
          (Array.to_list (Array.mapi (fun i x -> (x, coeffs.(i))) xs))
          Lp.Le
          (!lhs_at_x0 +. Rng.float rng 5.)
      done;
      (* Bound the box so the LP cannot be unbounded. *)
      Array.iter (fun x -> Lp.add_constraint m [ (x, 1.) ] Lp.Le 50.) xs;
      let witness_obj =
        let c = Lp.obj_coeffs m in
        let acc = ref 0. in
        Array.iteri (fun i v -> acc := !acc +. (c.(i) *. v)) x0;
        !acc
      in
      match Simplex.solve m with
      | Simplex.Optimal s -> s.objective <= witness_obj +. 1e-6
      | Simplex.Infeasible | Simplex.Unbounded | Simplex.Limit -> false)

(* Property: branch-and-bound on pure binary knapsacks matches a
   brute-force enumeration. *)
let prop_bb_matches_bruteforce =
  QCheck.Test.make ~count:60 ~name:"branch&bound matches brute force"
    QCheck.(pair int (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create (seed lxor 0x5f5f) in
      let values = Array.init n (fun _ -> float_of_int (Rng.int_in rng 1 30)) in
      let weights = Array.init n (fun _ -> float_of_int (Rng.int_in rng 1 12)) in
      let cap = float_of_int (Rng.int_in rng 5 40) in
      let m = Lp.create ~objective:Lp.Maximize () in
      let xs = Array.map (fun v -> Lp.add_binary m ~obj:v ()) values in
      Lp.add_constraint m
        (Array.to_list (Array.mapi (fun i x -> (x, weights.(i))) xs))
        Lp.Le cap;
      let best = ref 0. in
      for mask = 0 to (1 lsl n) - 1 do
        let v = ref 0. and w = ref 0. in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then begin
            v := !v +. values.(i);
            w := !w +. weights.(i)
          end
        done;
        if !w <= cap && !v > !best then best := !v
      done;
      match Branch_bound.solve m with
      | Branch_bound.Optimal s -> Float.abs (s.objective -. !best) < 1e-6
      | _ -> false)

let () =
  Alcotest.run "milp"
    [
      ( "simplex",
        [
          Alcotest.test_case "textbook maximize" `Quick test_lp_textbook;
          Alcotest.test_case "minimize with >=" `Quick test_lp_min_with_ge;
          Alcotest.test_case "equality and var bounds" `Quick
            test_lp_equality_and_bounds;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "degenerate no-cycle" `Quick test_lp_degenerate;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "duplicate terms combined" `Quick
            test_lp_duplicate_terms;
        ] );
      ( "branch-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "integer rounding" `Quick
            test_milp_integer_rounding_matters;
          Alcotest.test_case "integer infeasible" `Quick
            test_milp_infeasible_integer;
          Alcotest.test_case "mixed integer" `Quick test_milp_mixed;
          Alcotest.test_case "node limit" `Quick test_milp_node_limit;
          Alcotest.test_case "time limit" `Quick test_milp_time_limit;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_simplex_beats_witness;
          QCheck_alcotest.to_alcotest prop_bb_matches_bruteforce;
        ] );
    ]
