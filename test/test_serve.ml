(* Tests for the serve layer (lib/serve): wire protocol, latency
   histogram, admission control with per-tenant quotas, deadline
   budgets (queued and mid-run), the graceful-degradation ladder,
   retry-with-backoff with crash containment, and a PipelineKit-style
   deterministic overload script asserting the ISSUE 9 acceptance
   criteria — queue bound never exceeded, shedding structured and
   quota-respecting, accepted requests bit-identical to offline
   [Pa_random.run] at the same seed and effective budget.

   Everything here is single-threaded and clock-virtualized: the server
   is driven by [Server.step] and reads time only through the injected
   clock, so arrival times, expirations and backoffs replay exactly. *)

module Json = Resched_util.Json
module Rng = Resched_util.Rng
module Fp_cache = Resched_floorplan.Fp_cache
module Suite = Resched_platform.Suite
module Io = Resched_platform.Io
module Pa_random = Resched_core.Pa_random
module Schedule = Resched_core.Schedule
module Schedule_io = Resched_core.Schedule_io
module Validate = Resched_core.Validate
module List_sched = Resched_baseline.List_sched
module Histogram = Resched_serve.Histogram
module Protocol = Resched_serve.Protocol
module Server = Resched_serve.Server

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)

type sim = {
  srv : Server.t;
  clock : float ref;
  responses : Protocol.response list ref;  (* newest first *)
}

(* A server over a manual clock: time moves only when the test says so. *)
let make_sim ?cache cfg =
  let clock = ref 0. in
  let responses = ref [] in
  let srv =
    Server.create ?cache
      ~clock:(fun () -> !clock)
      ~respond:(fun r -> responses := r :: !responses)
      cfg
  in
  { srv; clock; responses }

(* A server over a self-advancing clock: every read ticks [dt] forward,
   so an in-flight course observes time passing between its slices and
   mid-run deadline cancellation becomes reproducible. *)
let make_ticking_sim ~dt cfg =
  let clock = ref 0. in
  let responses = ref [] in
  let srv =
    Server.create
      ~clock:(fun () ->
        clock := !clock +. dt;
        !clock)
      ~respond:(fun r -> responses := r :: !responses)
      cfg
  in
  { srv; clock; responses }

let params ?(tenant = "default") ?seed ?min_iterations ?budget_ms
    ?deadline_ms ?(fail_attempts = 0) ?(emit = true) () =
  {
    Protocol.tenant;
    seed;
    min_iterations;
    budget_ms;
    deadline_ms;
    fail_attempts;
    emit_schedule = emit;
  }

let submit_inst sim ~id inst p =
  Server.submit sim.srv
    {
      Protocol.id;
      op = Protocol.Schedule (Protocol.Inline (Io.to_string inst), p);
    }

(* Close and step until drained, advancing the virtual clock through
   retry backoffs. *)
let drain_sim sim =
  Server.close sim.srv;
  let rec go guard =
    if guard = 0 then Alcotest.fail "drain did not converge";
    match Server.step sim.srv with
    | Server.Drained -> ()
    | Server.Did_work -> go (guard - 1)
    | Server.Backoff d ->
      sim.clock := !(sim.clock) +. d +. 1e-6;
      go (guard - 1)
    | Server.Idle -> Alcotest.fail "idle while draining a closed server"
  in
  go 10_000

let find_response sim id =
  match
    List.find_opt (fun r -> Protocol.response_id r = id) !(sim.responses)
  with
  | Some r -> r
  | None -> Alcotest.failf "no response for %s" id

let completion sim id =
  match find_response sim id with
  | Protocol.Completed c -> c
  | r -> Alcotest.failf "%s: expected ok, got %s" id (Protocol.response_to_line r)

let rejection sim id =
  match find_response sim id with
  | Protocol.Rejected { reason; queue_depth; _ } -> (reason, queue_depth)
  | r ->
    Alcotest.failf "%s: expected rejected, got %s" id
      (Protocol.response_to_line r)

(* The offline oracle at the effective budget the server reports: same
   seed, effective_min_iterations restarts, no wall-clock budget, a
   fresh verdict-transparent cache (bit-identical to the server's
   shared one by the Batch/Fp_cache contract). *)
let offline inst ~seed ~min_iterations =
  Pa_random.run
    ~cache:(Fp_cache.create ~subsumption:false ())
    ~seed ~min_iterations ~budget_seconds:0. inst

let check_identity ~what inst ~seed (c : Protocol.completion) =
  if c.Protocol.c_degrade = 2 then begin
    let s =
      List_sched.run ~cache:(Fp_cache.create ~subsumption:false ()) inst
    in
    Alcotest.(check (option int))
      (what ^ ": heuristic-rung makespan = offline List_sched")
      (Some (Schedule.makespan s))
      c.Protocol.c_makespan;
    match c.Protocol.c_schedule with
    | Some text ->
      Alcotest.(check string)
        (what ^ ": heuristic-rung schedule text bit-identical")
        (Schedule_io.to_string s) text
    | None -> ()
  end
  else begin
    let o =
      offline inst ~seed ~min_iterations:c.Protocol.c_effective_min_iterations
    in
    Alcotest.(check int)
      (what ^ ": iterations = offline")
      o.Pa_random.iterations c.Protocol.c_iterations;
    match (o.Pa_random.schedule, c.Protocol.c_makespan, c.Protocol.c_schedule)
    with
    | Some s, Some m, Some text ->
      Alcotest.(check int)
        (what ^ ": makespan = offline")
        (Schedule.makespan s) m;
      Alcotest.(check string)
        (what ^ ": schedule text bit-identical to offline")
        (Schedule_io.to_string s) text;
      (match Schedule_io.of_string text with
      | Ok parsed ->
        Alcotest.(check bool)
          (what ^ ": served schedule passes Validate.check")
          true
          (Validate.check parsed = Ok ())
      | Error e -> Alcotest.failf "%s: served schedule unparseable: %s" what e)
    | None, None, None -> ()
    | _ -> Alcotest.failf "%s: schedule presence mismatch vs offline" what
  end

let instance k ~tasks = Suite.instance (Rng.create k) ~tasks

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let test_protocol_parse () =
  (match
     Protocol.parse_request
       {|{"op":"schedule","id":"r1","tenant":"teamA","path":"x.inst","seed":7,"min_iterations":40,"budget_ms":250,"deadline_ms":2000,"fail_attempts":2,"emit_schedule":true}|}
   with
  | Ok { Protocol.id = "r1"; op = Protocol.Schedule (Protocol.Path "x.inst", p) }
    ->
    Alcotest.(check string) "tenant" "teamA" p.Protocol.tenant;
    Alcotest.(check (option int)) "seed" (Some 7) p.Protocol.seed;
    Alcotest.(check (option int)) "min_iterations" (Some 40)
      p.Protocol.min_iterations;
    Alcotest.(check (option int)) "budget_ms" (Some 250) p.Protocol.budget_ms;
    Alcotest.(check (option int)) "deadline_ms" (Some 2000)
      p.Protocol.deadline_ms;
    Alcotest.(check int) "fail_attempts" 2 p.Protocol.fail_attempts;
    Alcotest.(check bool) "emit_schedule" true p.Protocol.emit_schedule
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  (match Protocol.parse_request {|{"op":"schedule","id":3,"instance":"x"}|} with
  | Ok { Protocol.id = "3"; op = Protocol.Schedule (Protocol.Inline "x", p) } ->
    Alcotest.(check string) "default tenant" "default" p.Protocol.tenant;
    Alcotest.(check (option int)) "no seed" None p.Protocol.seed;
    Alcotest.(check bool) "no schedule emission" false p.Protocol.emit_schedule
  | Ok _ -> Alcotest.fail "wrong shape for integer id"
  | Error e -> Alcotest.fail e);
  (match Protocol.parse_request {|{"op":"metrics","id":"m"}|} with
  | Ok { Protocol.id = "m"; op = Protocol.Metrics } -> ()
  | _ -> Alcotest.fail "metrics");
  (match Protocol.parse_request {|{"op":"shutdown"}|} with
  | Ok { Protocol.id = ""; op = Protocol.Shutdown } -> ()
  | _ -> Alcotest.fail "shutdown with defaulted id");
  let is_error s =
    match Protocol.parse_request s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "garbage rejected" true (is_error "not json");
  Alcotest.(check bool) "missing op rejected" true (is_error {|{"id":"x"}|});
  Alcotest.(check bool) "unknown op rejected" true (is_error {|{"op":"dance"}|});
  Alcotest.(check bool) "schedule without source rejected" true
    (is_error {|{"op":"schedule","id":"x"}|})

let test_protocol_responses () =
  let status r =
    match Json.parse (Protocol.response_to_line r) with
    | Ok j -> Option.bind (Json.member "status" j) Json.get_string
    | Error e -> Alcotest.fail e
  in
  let completed =
    Protocol.Completed
      {
        Protocol.c_id = "a";
        c_tenant = "t";
        c_makespan = Some 5;
        c_iterations = 10;
        c_degrade = 1;
        c_effective_min_iterations = 2;
        c_attempts = 1;
        c_latency_s = 0.25;
        c_deadline_hit = false;
        c_schedule = Some "line1\nline2";
      }
  in
  Alcotest.(check (option string)) "ok" (Some "ok") (status completed);
  Alcotest.(check bool) "single line even with embedded newlines" true
    (not (String.contains (Protocol.response_to_line completed) '\n'));
  Alcotest.(check (option string)) "rejected" (Some "rejected")
    (status
       (Protocol.Rejected
          { id = "b"; reason = Protocol.Queue_full; queue_depth = 4 }));
  Alcotest.(check (option string)) "error" (Some "error")
    (status (Protocol.Failed { id = "c"; message = "boom"; attempts = 3 }));
  Alcotest.(check (option string)) "metrics" (Some "metrics")
    (status (Protocol.Metrics_reply { id = "d"; body = Json.Obj [] }));
  Alcotest.(check (option string)) "shutdown" (Some "shutdown")
    (status (Protocol.Shutdown_ack { id = "e" }));
  Alcotest.(check string) "response_id" "b"
    (Protocol.response_id
       (Protocol.Rejected
          { id = "b"; reason = Protocol.Expired; queue_depth = 0 }))

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check bool) "empty quantile" true (Histogram.quantile h 0.5 = 0.);
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i /. 1000.)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.quantile h 0.5
  and p95 = Histogram.quantile h 0.95
  and p99 = Histogram.quantile h 0.99 in
  Alcotest.(check bool) "quantiles ordered" true (p50 <= p95 && p95 <= p99);
  (* Geometric buckets: each quantile is an upper bound within one
     doubling of the true value. *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 in [0.5, 1.024] (got %g)" p50)
    true
    (p50 >= 0.5 && p50 <= 1.024);
  Alcotest.(check bool) "p99 bounded by max" true
    (p99 <= Histogram.max_seconds h +. 1e-9);
  Alcotest.(check bool) "max" true (Histogram.max_seconds h = 1.);
  match Histogram.to_json h with
  | Json.Obj fields ->
    List.iter
      (fun k ->
        Alcotest.(check bool) ("json has " ^ k) true (List.mem_assoc k fields))
      [ "count"; "mean_ms"; "max_ms"; "p50_ms"; "p95_ms"; "p99_ms"; "buckets" ]
  | _ -> Alcotest.fail "histogram json shape"

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let test_queue_bound () =
  let inst = instance 11 ~tasks:10 in
  let sim =
    make_sim
      (Server.config ~capacity:3 ~degrade_low:50 ~degrade_high:60
         ~default_min_iterations:6 ())
  in
  for i = 0 to 5 do
    submit_inst sim ~id:(Printf.sprintf "r%d" i) inst
      (params ~seed:(100 + i) ~min_iterations:6 ())
  done;
  Alcotest.(check int) "queue holds exactly capacity" 3
    (Server.queue_depth sim.srv);
  Alcotest.(check int) "bound never exceeded" 3
    (Server.max_queue_depth sim.srv);
  for i = 3 to 5 do
    let reason, depth = rejection sim (Printf.sprintf "r%d" i) in
    Alcotest.(check string)
      (Printf.sprintf "r%d shed as queue_full" i)
      "queue_full"
      (Protocol.reject_reason_name reason);
    Alcotest.(check int) "rejection reports the full queue" 3 depth
  done;
  drain_sim sim;
  for i = 0 to 2 do
    let id = Printf.sprintf "r%d" i in
    check_identity ~what:id inst ~seed:(100 + i) (completion sim id)
  done;
  Alcotest.(check int) "exactly one response per request" 6
    (List.length !(sim.responses))

let test_tenant_quota () =
  let inst = instance 12 ~tasks:10 in
  let sim =
    make_sim
      (Server.config ~capacity:10 ~tenant_quota:2 ~degrade_low:50
         ~degrade_high:60 ~default_min_iterations:5 ())
  in
  submit_inst sim ~id:"a1" inst (params ~tenant:"A" ~seed:1 ());
  submit_inst sim ~id:"a2" inst (params ~tenant:"A" ~seed:2 ());
  submit_inst sim ~id:"a3" inst (params ~tenant:"A" ~seed:3 ());
  submit_inst sim ~id:"b1" inst (params ~tenant:"B" ~seed:4 ());
  let reason, _ = rejection sim "a3" in
  Alcotest.(check string) "tenant A over quota" "tenant_quota"
    (Protocol.reject_reason_name reason);
  Alcotest.(check bool) "tenant B unaffected by A's quota" true
    (List.for_all
       (fun r -> Protocol.response_id r <> "b1")
       !(sim.responses));
  (* Completing A's work frees its quota. *)
  Alcotest.(check bool) "step works" true (Server.step sim.srv = Server.Did_work);
  submit_inst sim ~id:"a4" inst (params ~tenant:"A" ~seed:5 ());
  Alcotest.(check bool) "quota slot freed by completion" true
    (List.for_all
       (fun r -> Protocol.response_id r <> "a4")
       !(sim.responses));
  drain_sim sim;
  List.iter
    (fun (id, seed) ->
      check_identity ~what:id inst ~seed (completion sim id))
    [ ("a1", 1); ("a2", 2); ("b1", 4); ("a4", 5) ]

let test_shutdown_sheds () =
  let inst = instance 13 ~tasks:8 in
  let sim = make_sim (Server.config ~capacity:4 ()) in
  Server.close sim.srv;
  submit_inst sim ~id:"late" inst (params ());
  let reason, _ = rejection sim "late" in
  Alcotest.(check string) "closed server sheds as shutting_down"
    "shutting_down"
    (Protocol.reject_reason_name reason);
  drain_sim sim

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)

let test_degrade_ladder () =
  let inst = instance 14 ~tasks:12 in
  let sim =
    make_sim
      (Server.config ~capacity:12 ~degrade_low:2 ~degrade_high:4
         ~degrade_factor:8 ())
  in
  for i = 0 to 5 do
    submit_inst sim ~id:(Printf.sprintf "r%d" i) inst
      (params ~seed:(200 + i) ~min_iterations:16 ())
  done;
  drain_sim sim;
  (* Dispatch depth counts the request being dispatched: r0 is served
     at depth 6, r5 at depth 1 — so the ladder reads 2,2,2,1,1,0. *)
  List.iteri
    (fun i (expected_level, expected_eff) ->
      let id = Printf.sprintf "r%d" i in
      let c = completion sim id in
      Alcotest.(check int) (id ^ " degradation rung") expected_level
        c.Protocol.c_degrade;
      Alcotest.(check int)
        (id ^ " effective restart budget")
        expected_eff c.Protocol.c_effective_min_iterations;
      check_identity ~what:id inst ~seed:(200 + i) c)
    [ (2, 0); (2, 0); (2, 0); (1, 2); (1, 2); (0, 16) ];
  match Json.path [ "degrade" ] (Server.metrics sim.srv) with
  | Some d ->
    List.iter
      (fun (k, v) ->
        Alcotest.(check (option int)) ("metrics degrade." ^ k) (Some v)
          (Option.bind (Json.member k d) Json.get_int))
      [ ("full", 1); ("reduced", 2); ("heuristic", 3) ]
  | None -> Alcotest.fail "metrics missing degrade counters"

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

let test_deadline_sheds_queued () =
  let inst = instance 15 ~tasks:10 in
  let sim =
    make_sim (Server.config ~capacity:8 ~default_min_iterations:5 ()) in
  submit_inst sim ~id:"d1" inst (params ~seed:1 ~deadline_ms:1000 ());
  submit_inst sim ~id:"d2" inst (params ~seed:2 ());
  sim.clock := 2.0;
  (* The sweep (run by every step / poll tick) sheds d1 before any
     worker wastes a slice on it. *)
  Alcotest.(check int) "one expiration swept" 1
    (Server.sweep_expired sim.srv);
  let reason, _ = rejection sim "d1" in
  Alcotest.(check string) "expired while queued" "expired"
    (Protocol.reject_reason_name reason);
  drain_sim sim;
  check_identity ~what:"d2" inst ~seed:2 (completion sim "d2");
  match Json.path [ "shed"; "expired" ] (Server.metrics sim.srv) with
  | Some v -> Alcotest.(check (option int)) "shed.expired" (Some 1)
                (Json.get_int v)
  | None -> Alcotest.fail "metrics missing shed.expired"

let test_deadline_cancels_midrun () =
  let inst = instance 16 ~tasks:10 in
  let slice = 8 in
  (* Self-advancing clock: each read ticks 10 ms, so the course's
     per-slice cancellation poll crosses the 1 s deadline after ~100
     slices — long before the absurd restart budget is met. *)
  let sim =
    make_ticking_sim ~dt:0.01
      (Server.config ~capacity:4 ~slice ~degrade_low:50 ~degrade_high:60 ())
  in
  submit_inst sim ~id:"dl" inst
    (params ~seed:3 ~min_iterations:100_000 ~deadline_ms:1000 ());
  drain_sim sim;
  let c = completion sim "dl" in
  Alcotest.(check bool) "deadline hit mid-run" true c.Protocol.c_deadline_hit;
  Alcotest.(check bool)
    (Printf.sprintf "stopped far short of the budget (ran %d)"
       c.Protocol.c_iterations)
    true
    (c.Protocol.c_iterations > 0 && c.Protocol.c_iterations < 100_000);
  Alcotest.(check int) "stopped exactly at a slice boundary" 0
    (c.Protocol.c_iterations mod slice);
  (* "No response after deadline plus one slice": the only clock reads
     after the deadline poll that fired are the completion stamps. *)
  Alcotest.(check bool)
    (Printf.sprintf "latency %.3fs within deadline + one slice"
       c.Protocol.c_latency_s)
    true
    (c.Protocol.c_latency_s < 1.0 +. 0.1)

(* ------------------------------------------------------------------ *)
(* Retries and crash containment                                       *)

let test_retry_and_containment () =
  let inst = instance 17 ~tasks:10 in
  let sim =
    make_sim
      (Server.config ~capacity:8 ~max_retries:2 ~backoff_s:0.05
         ~degrade_low:50 ~degrade_high:60 ~allow_fault_injection:true ())
  in
  submit_inst sim ~id:"flaky" inst
    (params ~seed:4 ~min_iterations:6 ~fail_attempts:2 ());
  submit_inst sim ~id:"poison" inst
    (params ~seed:5 ~min_iterations:6 ~fail_attempts:99 ());
  submit_inst sim ~id:"healthy" inst (params ~seed:6 ~min_iterations:6 ());
  drain_sim sim;
  let flaky = completion sim "flaky" in
  Alcotest.(check int) "flaky recovered on the third attempt" 3
    flaky.Protocol.c_attempts;
  (* Each retry restarts the course from scratch, so the recovered
     response is still bit-identical to the offline run. *)
  check_identity ~what:"flaky" inst ~seed:4 flaky;
  (match find_response sim "poison" with
  | Protocol.Failed { message; attempts; _ } ->
    Alcotest.(check int) "poison exhausted its retry budget" 3 attempts;
    Alcotest.(check bool) "failure message carries the fault" true
      (let sub = "injected" in
       let rec search i =
         i + String.length sub <= String.length message
         && (String.sub message i (String.length sub) = sub || search (i + 1))
       in
       search 0)
  | r ->
    Alcotest.failf "poison: expected error, got %s"
      (Protocol.response_to_line r));
  (* One poisoned request fails alone: the healthy one is untouched. *)
  check_identity ~what:"healthy" inst ~seed:6 (completion sim "healthy");
  match Json.path [ "retries" ] (Server.metrics sim.srv) with
  | Some v ->
    Alcotest.(check (option int)) "2 + 2 retries recorded" (Some 4)
      (Json.get_int v)
  | None -> Alcotest.fail "metrics missing retries"

let test_fault_injection_gated () =
  let inst = instance 18 ~tasks:8 in
  (* Default config: the fail_attempts hook is inert unless the server
     explicitly enables fault injection. *)
  let sim = make_sim (Server.config ~capacity:4 ()) in
  submit_inst sim ~id:"x" inst
    (params ~seed:7 ~min_iterations:5 ~fail_attempts:5 ());
  drain_sim sim;
  let c = completion sim "x" in
  Alcotest.(check int) "fault hook ignored without the gate" 1
    c.Protocol.c_attempts

(* ------------------------------------------------------------------ *)
(* Scripted overload (the ISSUE 9 acceptance scenario)                 *)

(* Deterministic 4x-overload burst against capacity 4 / quota 2, seeded
   and clock-virtualized: every admission decision below is forced by
   the script, so the expected response of every request is exact. *)
let test_overload_script () =
  let inst = instance 19 ~tasks:12 in
  let sim =
    make_sim
      (Server.config ~capacity:4 ~tenant_quota:2 ~degrade_low:50
         ~degrade_high:60 ~max_retries:1 ~allow_fault_injection:true ())
  in
  let submit i ~id ~tenant ?(fail_attempts = 0) () =
    sim.clock := float_of_int i *. 0.01;
    submit_inst sim ~id inst
      (params ~tenant ~seed:(300 + i) ~min_iterations:6 ~deadline_ms:60_000
         ~fail_attempts ())
  in
  (* Burst of 8 arrivals, no service in between (the 4x condition:
     arrivals outpace the single stepping worker fourfold). *)
  submit 0 ~id:"a0" ~tenant:"A" ();
  submit 1 ~id:"a1" ~tenant:"A" ~fail_attempts:1 ();
  submit 2 ~id:"a2" ~tenant:"A" ();  (* quota: A already has 2 in flight *)
  submit 3 ~id:"b0" ~tenant:"B" ();
  submit 4 ~id:"b1" ~tenant:"B" ();
  submit 5 ~id:"b2" ~tenant:"B" ();  (* queue full at 4 *)
  submit 6 ~id:"a3" ~tenant:"A" ();  (* queue full *)
  submit 7 ~id:"b3" ~tenant:"B" ();  (* queue full *)
  (* Shedding order respects tenant quotas: a2 was shed by quota while
     the queue still had room... *)
  let a2_reason, a2_depth = rejection sim "a2" in
  Alcotest.(check string) "a2 shed by tenant quota" "tenant_quota"
    (Protocol.reject_reason_name a2_reason);
  Alcotest.(check bool) "a2 shed with queue room to spare" true (a2_depth < 4);
  (* ...and only the genuinely-full queue sheds as queue_full. *)
  List.iter
    (fun id ->
      let reason, depth = rejection sim id in
      Alcotest.(check string) (id ^ " shed by queue bound") "queue_full"
        (Protocol.reject_reason_name reason);
      Alcotest.(check int) (id ^ " at the bound") 4 depth)
    [ "b2"; "a3"; "b3" ];
  (* The queue bound was never exceeded. *)
  Alcotest.(check int) "queue bound held through the burst" 4
    (Server.max_queue_depth sim.srv);
  (* Service drains the backlog; a freed quota slot admits new work. *)
  Alcotest.(check bool) "served one" true
    (Server.step sim.srv = Server.Did_work);
  sim.clock := 1.0;
  submit_inst sim ~id:"a4" inst
    (params ~tenant:"A" ~seed:400 ~min_iterations:6 ~deadline_ms:60_000 ());
  drain_sim sim;
  (* Exactly one response per request, none silent. *)
  Alcotest.(check int) "one response per request" 9
    (List.length !(sim.responses));
  let ids =
    List.sort_uniq compare
      (List.map Protocol.response_id !(sim.responses))
  in
  Alcotest.(check int) "all ids answered" 9 (List.length ids);
  (* Every accepted request: Validate-passing schedule, bit-identical
     to the offline run at its seed and effective budget, response
     within its deadline. The flaky one recovered via retry. *)
  List.iter
    (fun (id, seed) ->
      let c = completion sim id in
      check_identity ~what:id inst ~seed c;
      Alcotest.(check bool) (id ^ " answered within its deadline") true
        (c.Protocol.c_latency_s <= 60.))
    [ ("a0", 300); ("a1", 301); ("b0", 303); ("b1", 304); ("a4", 400) ];
  Alcotest.(check int) "a1 recovered from its injected fault" 2
    (completion sim "a1").Protocol.c_attempts;
  (* The shared cache accelerated later requests without perturbing
     their results (identity above); stripe counters are exposed. *)
  match Json.path [ "fp_cache"; "hit_rate" ] (Server.metrics sim.srv) with
  | Some v -> Alcotest.(check bool) "cache hit rate present" true
                (Json.get_float v <> None)
  | None -> Alcotest.fail "metrics missing fp_cache"

(* ------------------------------------------------------------------ *)
(* Metrics and parse errors                                            *)

let test_metrics_and_parse_errors () =
  let inst = instance 20 ~tasks:8 in
  let sim = make_sim (Server.config ~capacity:4 ()) in
  Server.submit_line sim.srv "this is not json";
  (match find_response sim "" with
  | Protocol.Rejected { reason = Protocol.Parse_error; _ } -> ()
  | r ->
    Alcotest.failf "expected parse_error rejection, got %s"
      (Protocol.response_to_line r));
  submit_inst sim ~id:"ok" inst (params ~seed:9 ~min_iterations:5 ());
  Server.submit sim.srv { Protocol.id = "m"; op = Protocol.Metrics };
  (match find_response sim "m" with
  | Protocol.Metrics_reply { body; _ } ->
    Alcotest.(check (option string)) "metrics schema"
      (Some "resched-serve-metrics/2")
      (Option.bind (Json.member "schema" body) Json.get_string);
    Alcotest.(check (option int)) "parse error counted" (Some 1)
      (Option.bind (Json.path [ "requests"; "parse_errors" ] body)
         Json.get_int)
  | r ->
    Alcotest.failf "expected metrics, got %s" (Protocol.response_to_line r));
  drain_sim sim;
  let c = completion sim "ok" in
  check_identity ~what:"ok" inst ~seed:9 c;
  match Json.path [ "latency"; "count" ] (Server.metrics sim.srv) with
  | Some v ->
    Alcotest.(check (option int)) "latency histogram counts completions"
      (Some 1) (Json.get_int v)
  | None -> Alcotest.fail "metrics missing latency histogram"

(* ------------------------------------------------------------------ *)
(* Multiplexing transport: concurrent clients over socketpairs         *)

module Transport = Resched_serve.Transport

(* A transport-backed sim: the server's default responder must never
   fire (every request belongs to a connection), so it records strays
   for the final assertion. Polls run with a zero timeout and work is
   advanced by [Server.step] — fully deterministic, virtual clock. *)
type tsim = {
  tsrv : Server.t;
  tr : Transport.t;
  tclock : float ref;
  strays : Protocol.response list ref;
}

let make_tsim ?(max_line_bytes = 1 lsl 20) cfg =
  let tclock = ref 0. in
  let strays = ref [] in
  let tsrv =
    Server.create
      ~clock:(fun () -> !tclock)
      ~respond:(fun r -> strays := r :: !strays)
      cfg
  in
  let tr = Transport.create ~max_line_bytes tsrv in
  { tsrv; tr; tclock; strays }

(* One connected client: the far end of a socketpair whose near end the
   transport multiplexes. *)
type tclient = { fd : Unix.file_descr; rbuf : Buffer.t }

let add_client sim =
  let near, far = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Transport.add_socket sim.tr near;
  Unix.set_nonblock far;
  { fd = far; rbuf = Buffer.create 256 }

let send c line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Unix.write c.fd b 0 (Bytes.length b) in
  Alcotest.(check int) "request fully written" (Bytes.length b) n

(* Drain whatever responses have been flushed to this client, returning
   complete lines (partials stay buffered). *)
let recv c =
  let chunk = Bytes.create 4096 in
  let rec slurp () =
    match Unix.read c.fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes c.rbuf chunk 0 n;
      slurp ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  slurp ();
  let s = Buffer.contents c.rbuf in
  let rec split start acc =
    match String.index_from_opt s start '\n' with
    | None ->
      Buffer.clear c.rbuf;
      Buffer.add_substring c.rbuf s start (String.length s - start);
      List.rev acc
    | Some i -> split (i + 1) (String.sub s start (i - start) :: acc)
  in
  split 0 []

let response_of_line line =
  match Json.parse line with
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e
  | Ok j ->
    let str k = Option.bind (Json.member k j) Json.get_string in
    ( Option.value (str "id") ~default:"",
      Option.value (str "status") ~default:"",
      j )

let poll_until sim ~what pred =
  let rec go n =
    if not (pred ()) then
      if n = 0 then Alcotest.failf "%s: polling did not converge" what
      else begin
        Transport.poll sim.tr ~timeout_s:0.;
        go (n - 1)
      end
  in
  go 500

let sched_line ~id ~seed ~iters ?deadline_ms inst =
  String.trim
  @@ Json.to_string ~indent:0
    (Json.Obj
       ([
          ("op", Json.String "schedule");
          ("id", Json.String id);
          ("instance", Json.String (Io.to_string inst));
          ("seed", Json.Int seed);
          ("min_iterations", Json.Int iters);
          ("emit_schedule", Json.Bool true);
        ]
       @
       match deadline_ms with
       | Some d -> [ ("deadline_ms", Json.Int d) ]
       | None -> []))

(* Step the server [n] times, flushing responses between steps. *)
let step_n sim n =
  for _ = 1 to n do
    (match Server.step sim.tsrv with
    | Server.Did_work -> ()
    | r ->
      Alcotest.failf "expected Did_work, got %s"
        (match r with
        | Server.Backoff _ -> "Backoff"
        | Server.Idle -> "Idle"
        | Server.Drained -> "Drained"
        | Server.Did_work -> assert false));
    Transport.poll sim.tr ~timeout_s:0.
  done

(* Two interleaved clients, scripted bursts, virtual clock. Asserts the
   ISSUE 10 trio: no head-of-line blocking (a flooding client's backlog
   does not delay the sparse client), per-request results identical to
   the offline sequential oracle, and the queue bound respected. *)
let test_transport_concurrent_clients () =
  let inst_a = instance 31 ~tasks:8 in
  let inst_b = instance 32 ~tasks:8 in
  let sim =
    make_tsim
      (Server.config ~capacity:16 ~degrade_low:50 ~degrade_high:60 ())
  in
  let a = add_client sim in
  let b = add_client sim in
  (* Burst 1: A floods four requests, then B sends one. *)
  for j = 0 to 3 do
    send a (sched_line ~id:(Printf.sprintf "a%d" j) ~seed:(100 + j) ~iters:4 inst_a)
  done;
  send b (sched_line ~id:"b0" ~seed:200 ~iters:4 inst_b);
  poll_until sim ~what:"burst 1 admitted" (fun () ->
      Server.queue_depth sim.tsrv = 5);
  (* DRR: the first two dispatches must serve both sources — B's lone
     request completes after at most two steps despite A's backlog. *)
  step_n sim 2;
  let b_lines = recv b in
  Alcotest.(check int) "sparse client answered within 2 dispatches" 1
    (List.length b_lines);
  let a_lines_early = recv a in
  Alcotest.(check bool) "flood client got at most one of its four" true
    (List.length a_lines_early <= 1);
  step_n sim 3;
  let a_lines = a_lines_early @ recv a in
  Alcotest.(check int) "flood client fully answered" 4 (List.length a_lines);
  (* Every completion is bit-identical to the offline oracle. *)
  let verify inst lines =
    List.iter
      (fun line ->
        let id, status, j = response_of_line line in
        Alcotest.(check string) (id ^ ": ok") "ok" status;
        let seed =
          match id.[0] with
          | 'a' -> 100 + int_of_string (String.sub id 1 (String.length id - 1))
          | _ -> 200
        in
        let iters =
          Option.get (Option.bind (Json.member "iterations" j) Json.get_int)
        in
        let o = offline inst ~seed ~min_iterations:4 in
        Alcotest.(check int) (id ^ ": iterations = offline")
          o.Pa_random.iterations iters;
        let mk = Option.bind (Json.member "makespan" j) Json.get_int in
        let text = Option.bind (Json.member "schedule" j) Json.get_string in
        match (o.Pa_random.schedule, mk, text) with
        | Some s, Some m, Some text ->
          Alcotest.(check int) (id ^ ": makespan = offline")
            (Schedule.makespan s) m;
          Alcotest.(check string) (id ^ ": schedule bit-identical")
            (Schedule_io.to_string s) text
        | None, None, None -> ()
        | _ -> Alcotest.failf "%s: schedule presence mismatch" id)
      lines
  in
  verify inst_a a_lines;
  verify inst_b b_lines;
  (* Burst 2: deadlines are per-request even across connections — A's
     two expire while queued, B's (no deadline) survives the same
     virtual-clock jump. *)
  send a (sched_line ~id:"a4" ~seed:110 ~iters:4 ~deadline_ms:1000 inst_a);
  send a (sched_line ~id:"a5" ~seed:111 ~iters:4 ~deadline_ms:1000 inst_a);
  send b (sched_line ~id:"b1" ~seed:201 ~iters:4 inst_b);
  poll_until sim ~what:"burst 2 admitted" (fun () ->
      Server.queue_depth sim.tsrv = 3);
  sim.tclock := !(sim.tclock) +. 2.;
  (* The sweep on the next poll sheds the expired pair. *)
  poll_until sim ~what:"expiry swept" (fun () ->
      Server.queue_depth sim.tsrv = 1);
  step_n sim 1;
  let a_tail = recv a in
  Alcotest.(check int) "both deadlined requests answered" 2
    (List.length a_tail);
  List.iter
    (fun line ->
      let id, status, j = response_of_line line in
      Alcotest.(check string) (id ^ ": rejected") "rejected" status;
      Alcotest.(check (option string)) (id ^ ": expired") (Some "expired")
        (Option.bind (Json.member "reason" j) Json.get_string))
    a_tail;
  (match recv b with
  | [ line ] ->
    let id, status, _ = response_of_line line in
    Alcotest.(check string) "b1 survived the clock jump" "ok" status;
    Alcotest.(check string) "b1 id" "b1" id
  | ls -> Alcotest.failf "expected one b response, got %d" (List.length ls));
  Alcotest.(check bool) "queue bound respected" true
    (Server.max_queue_depth sim.tsrv <= 16);
  Alcotest.(check int) "no responses leaked to the default responder" 0
    (List.length !(sim.strays))

(* Framing guards: an oversized line and a malformed line are both
   answered with structured rejections and the connection keeps
   serving; connection + dispatch counters surface in metrics. *)
let test_transport_framing_guards () =
  let inst = instance 33 ~tasks:8 in
  let sim = make_tsim ~max_line_bytes:8192 (Server.config ~capacity:8 ()) in
  let c = add_client sim in
  send c (String.make 20_000 'x');
  send c "this is not json";
  (* Both guard responses arrive; then the connection still works. *)
  let collected = ref [] in
  poll_until sim ~what:"framing rejections flushed" (fun () ->
      collected := !collected @ recv c;
      List.length !collected >= 2);
  let guard_lines = !collected in
  let reasons =
    List.map
      (fun l ->
        let _, status, j = response_of_line l in
        Alcotest.(check string) "rejected" "rejected" status;
        Option.value
          (Option.bind (Json.member "reason" j) Json.get_string)
          ~default:"?")
      guard_lines
  in
  Alcotest.(check (list string)) "guard reasons in arrival order"
    [ "line_too_long"; "parse_error" ] reasons;
  send c (sched_line ~id:"ok" ~seed:7 ~iters:3 inst);
  poll_until sim ~what:"valid request admitted" (fun () ->
      Server.queue_depth sim.tsrv = 1);
  step_n sim 1;
  (match recv c with
  | [ line ] ->
    let id, status, _ = response_of_line line in
    Alcotest.(check string) "connection survived the bad lines" "ok" status;
    Alcotest.(check string) "id" "ok" id
  | ls -> Alcotest.failf "expected one completion, got %d" (List.length ls));
  (* Connection and dispatch counters in the metrics body. *)
  let m = Server.metrics sim.tsrv in
  let get_int path = Option.bind (Json.path path m) Json.get_int in
  Alcotest.(check (option int)) "one active connection" (Some 1)
    (get_int [ "connections"; "active" ]);
  Alcotest.(check (option int)) "accepted connections" (Some 1)
    (get_int [ "connections"; "accepted" ]);
  Alcotest.(check (option int)) "oversized lines counted (transport)"
    (Some 1)
    (get_int [ "connections"; "oversized_lines" ]);
  Alcotest.(check (option int)) "oversized lines counted (server)" (Some 1)
    (get_int [ "requests"; "oversized_lines" ]);
  Alcotest.(check bool) "bytes flowed both ways" true
    (match
       (get_int [ "connections"; "bytes_in" ],
        get_int [ "connections"; "bytes_out" ])
     with
    | Some i, Some o -> i > 0 && o > 0
    | _ -> false);
  Alcotest.(check (option int)) "dispatch served this connection" (Some 1)
    (match Json.path [ "dispatch"; "sources" ] m with
    | Some (Json.List (Json.Obj _ :: _ as srcs)) ->
      List.find_map
        (fun s ->
          match Json.member "source" s with
          | Some (Json.String "conn:0") ->
            Option.bind (Json.member "dispatched" s) Json.get_int
          | _ -> None)
        srcs
    | _ -> None);
  Alcotest.(check int) "no stray responses" 0 (List.length !(sim.strays))

(* The DRR quantum is honored: with quantum 2 the rotation serves two
   per source before moving on; with the default 1 it alternates. *)
let test_drr_quantum () =
  let inst = instance 34 ~tasks:6 in
  let order_of ~quantum =
    let sim =
      make_sim
        (Server.config ~capacity:16 ~degrade_low:50 ~degrade_high:60
           ~drr_quantum:quantum ())
    in
    List.iter
      (fun (src, id, seed) ->
        Server.submit ~source:src sim.srv
          {
            Protocol.id;
            op =
              Protocol.Schedule
                ( Protocol.Inline (Io.to_string inst),
                  params ~seed ~min_iterations:2 ~emit:false () );
          })
      [
        ("A", "a0", 1); ("A", "a1", 2); ("A", "a2", 3); ("A", "a3", 4);
        ("B", "b0", 5); ("B", "b1", 6); ("B", "b2", 7); ("B", "b3", 8);
      ];
    for _ = 1 to 8 do
      match Server.step sim.srv with
      | Server.Did_work -> ()
      | _ -> Alcotest.fail "expected work"
    done;
    List.rev
      (List.filter_map
         (function
           | Protocol.Completed c -> Some c.Protocol.c_id
           | _ -> None)
         !(sim.responses))
  in
  Alcotest.(check (list string)) "quantum 1 alternates"
    [ "a0"; "b0"; "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (order_of ~quantum:1);
  Alcotest.(check (list string)) "quantum 2 serves pairs"
    [ "a0"; "a1"; "b0"; "b1"; "a2"; "a3"; "b2"; "b3" ]
    (order_of ~quantum:2)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request parsing" `Quick test_protocol_parse;
          Alcotest.test_case "response shapes" `Quick test_protocol_responses;
        ] );
      ("histogram", [ Alcotest.test_case "quantiles" `Quick test_histogram ]);
      ( "admission",
        [
          Alcotest.test_case "queue bound" `Quick test_queue_bound;
          Alcotest.test_case "tenant quota" `Quick test_tenant_quota;
          Alcotest.test_case "shutdown sheds" `Quick test_shutdown_sheds;
        ] );
      ( "degradation",
        [ Alcotest.test_case "ladder by depth" `Quick test_degrade_ladder ] );
      ( "deadlines",
        [
          Alcotest.test_case "queued expiry sheds" `Quick
            test_deadline_sheds_queued;
          Alcotest.test_case "mid-run cancellation" `Quick
            test_deadline_cancels_midrun;
        ] );
      ( "failures",
        [
          Alcotest.test_case "retry with backoff" `Quick
            test_retry_and_containment;
          Alcotest.test_case "fault hook gated" `Quick
            test_fault_injection_gated;
        ] );
      ( "overload",
        [ Alcotest.test_case "scripted 4x burst" `Quick test_overload_script ]
      );
      ( "metrics",
        [
          Alcotest.test_case "counters and parse errors" `Quick
            test_metrics_and_parse_errors;
        ] );
      ( "transport",
        [
          Alcotest.test_case "concurrent clients, no HOLB, oracle identity"
            `Quick test_transport_concurrent_clients;
          Alcotest.test_case "framing guards keep the connection" `Quick
            test_transport_framing_guards;
          Alcotest.test_case "DRR quantum" `Quick test_drr_quantum;
        ] );
    ]
