(* Tests for the batch engine ([Batch.run]), the resumable course
   abstraction it interleaves, and the allocation contract of the SoA
   restart kernel against its boxed oracle. *)

module Rng = Resched_util.Rng
module Fp_cache = Resched_floorplan.Fp_cache
module Suite = Resched_platform.Suite
module Instance = Resched_platform.Instance
module Pa = Resched_core.Pa
module Pa_random = Resched_core.Pa_random
module Batch = Resched_core.Batch
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module State = Resched_core.State
module Impl_select = Resched_core.Impl_select
module Regions_define = Resched_core.Regions_define
module Sw_balance = Resched_core.Sw_balance
module Arch = Resched_platform.Arch

(* Everything observable about an outcome except wall-clock artifacts
   (elapsed stamps, allocation counters): equality here is what
   "bit-identical per instance" means. *)
let outcome_fingerprint (o : Pa_random.outcome) =
  ( o.Pa_random.iterations,
    (match o.Pa_random.schedule with
    | Some s -> Some (Schedule.makespan s, s.Schedule.regions, s.Schedule.slots)
    | None -> None),
    List.map
      (fun (p : Pa_random.trace_point) ->
        (p.Pa_random.iteration, p.Pa_random.makespan))
      o.Pa_random.trace )

(* Property: a batch over N instances is bit-identical, per instance, to
   N sequential [Pa_random.run] calls — whatever the worker count and
   slice granularity, and with a shared floorplan cache in the mix. *)
let prop_batch_equals_sequential =
  QCheck.Test.make ~count:12
    ~name:"Batch.run = N sequential Pa_random.run (bit-identical)"
    QCheck.(triple int (int_range 2 5) (int_range 1 3))
    (fun (seed, n, jobs) ->
      (* Re-clamp: QCheck's int_range shrinker can step outside the
         range while minimizing a counterexample. *)
      let n = 2 + (abs n mod 4) and jobs = 1 + (abs jobs mod 3) in
      let rng = Rng.create (seed lxor 0xba7c4) in
      let requests =
        Array.init n (fun i ->
            let tasks = 6 + Rng.int rng 14 in
            let inst = Suite.instance rng ~tasks in
            Batch.request ~seed:(seed + (31 * i)) ~min_iterations:(4 + i)
              inst)
      in
      let slice = if seed land 1 = 0 then Some 1 else Some 3 in
      (* Verdict-transparent cache: the mode the identity contract
         requires (see Batch's interface). *)
      let outcomes, stats =
        Batch.run
          ~cache:(Fp_cache.create ~subsumption:false ())
          ~jobs ?slice requests
      in
      let sequential =
        (* Same cache mode as the batch: a verdict-transparent cache
           answers as a pure function of the query, so a fresh one per
           instance sees the same verdicts the shared one did. *)
        Array.map
          (fun (r : Batch.request) ->
            Pa_random.run
              ~cache:(Fp_cache.create ~subsumption:false ())
              ~seed:r.Batch.seed ~min_iterations:r.Batch.min_iterations
              ~budget_seconds:0. r.Batch.instance)
          requests
      in
      stats.Batch.jobs = jobs
      && stats.Batch.total_iterations
         = Array.fold_left
             (fun acc (o : Pa_random.outcome) -> acc + o.Pa_random.iterations)
             0 outcomes
      && Array.for_all2
           (fun a b -> outcome_fingerprint a = outcome_fingerprint b)
           outcomes sequential)

(* Property: the flat struct-of-arrays kernel and the boxed legacy
   pipeline produce bit-identical outcomes (S2's reused-scratch sorts
   included); they may only differ in allocation. *)
let prop_soa_kernel_equals_boxed_oracle =
  QCheck.Test.make ~count:12
    ~name:"SoA kernel = boxed oracle (bit-identical outcomes)"
    QCheck.(pair int (int_range 6 28))
    (fun (seed, tasks) ->
      let rng = Rng.create (seed lxor 0x50abc) in
      let inst = Suite.instance rng ~tasks in
      let run kernel =
        Pa_random.run ~seed ~min_iterations:10 ~kernel ~budget_seconds:0. inst
      in
      let soa = run `Soa and boxed = run `Boxed in
      outcome_fingerprint soa = outcome_fingerprint boxed
      &&
      match soa.Pa_random.schedule with
      | Some s -> Validate.check s = Ok ()
      | None -> true)

(* Slicing invariance: advancing a course in tiny slices (as the batch
   queue does under contention) executes the same stream as one
   uninterrupted run. *)
let test_course_slice_invariance () =
  let rng = Rng.create 21 in
  let inst = Suite.instance rng ~tasks:18 in
  let course =
    Pa_random.Course.create ~seed:7 ~min_iterations:15 ~budget_seconds:0. inst
  in
  let slices = ref 0 in
  while not (Pa_random.Course.finished course) do
    let ran = Pa_random.Course.run_slice course ~max_iterations:2 in
    Alcotest.(check bool) "unfinished course makes progress" true (ran > 0);
    incr slices
  done;
  Alcotest.(check int) "no work after finish" 0
    (Pa_random.Course.run_slice course ~max_iterations:2);
  Alcotest.(check bool) "stream was actually sliced" true (!slices >= 8);
  let whole =
    Pa_random.run ~seed:7 ~min_iterations:15 ~budget_seconds:0. inst
  in
  Alcotest.(check bool) "sliced outcome = uninterrupted outcome" true
    (outcome_fingerprint (Pa_random.Course.outcome course)
    = outcome_fingerprint whole)

(* Cooperative cancellation: a hook that never fires leaves the stream
   bit-identical to an unhooked run; one that fires stops the course at
   the next slice boundary, keeping the incumbent found so far. This is
   the serve layer's "deadline + one slice" contract at its source. *)
let test_course_cancellation () =
  let rng = Rng.create 77 in
  let inst = Suite.instance rng ~tasks:16 in
  let with_hook =
    let c =
      Pa_random.Course.create
        ~cancel:(fun () -> false)
        ~seed:5 ~min_iterations:12 ~budget_seconds:0. inst
    in
    while not (Pa_random.Course.finished c) do
      ignore (Pa_random.Course.run_slice c ~max_iterations:3)
    done;
    Pa_random.Course.outcome c
  in
  let plain = Pa_random.run ~seed:5 ~min_iterations:12 ~budget_seconds:0. inst in
  Alcotest.(check bool) "never-firing hook is bit-identical" true
    (outcome_fingerprint with_hook = outcome_fingerprint plain);
  let polls = ref 0 in
  let c =
    Pa_random.Course.create
      ~cancel:(fun () ->
        incr polls;
        !polls > 2)
      ~seed:5 ~min_iterations:1_000_000 ~budget_seconds:0. inst
  in
  let total = ref 0 in
  while not (Pa_random.Course.finished c) do
    total := !total + Pa_random.Course.run_slice c ~max_iterations:4
  done;
  Alcotest.(check int) "cancelled after exactly two full slices" 8 !total;
  Alcotest.(check int) "iterations agree" 8 (Pa_random.Course.iterations c);
  Alcotest.(check int) "no work after cancellation" 0
    (Pa_random.Course.run_slice c ~max_iterations:4);
  (* The cancelled outcome is exactly an offline run truncated at the
     boundary: same stream, same incumbent. *)
  let truncated =
    Pa_random.run ~seed:5 ~min_iterations:8 ~budget_seconds:0. inst
  in
  Alcotest.(check bool) "outcome = offline run truncated at the boundary" true
    (outcome_fingerprint (Pa_random.Course.outcome c)
    = outcome_fingerprint truncated)

(* A cancelled request inside a batch retires without perturbing its
   neighbours' streams. *)
let test_batch_cancelled_request () =
  let rng = Rng.create 99 in
  let insts = Array.init 3 (fun _ -> Suite.instance rng ~tasks:12) in
  let requests =
    [|
      Batch.request ~seed:3 ~min_iterations:10 insts.(0);
      Batch.request ~seed:4 ~min_iterations:1_000_000
        ~cancel:(fun () -> true)
        insts.(1);
      Batch.request ~seed:5 ~min_iterations:10 insts.(2);
    |]
  in
  let outcomes, _ =
    Batch.run
      ~cache:(Fp_cache.create ~subsumption:false ())
      ~jobs:2 ~slice:2 requests
  in
  Alcotest.(check int) "cancelled request ran no iterations" 0
    outcomes.(1).Pa_random.iterations;
  List.iter
    (fun (i, seed) ->
      let offline =
        Pa_random.run
          ~cache:(Fp_cache.create ~subsumption:false ())
          ~seed ~min_iterations:10 ~budget_seconds:0. insts.(i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "request %d unaffected by its cancelled neighbour" i)
        true
        (outcome_fingerprint outcomes.(i) = outcome_fingerprint offline))
    [ (0, 3); (2, 5) ]

(* Allocation regression guard: the SoA kernel must allocate far less
   than the boxed oracle per restart, and stay under an absolute
   ceiling that a reintroduced per-iteration List.sort/List.map rebuild
   (the bug S2 fixed) would immediately blow through. *)
let test_words_per_iteration () =
  let rng = Rng.create 33 in
  let inst = Suite.instance rng ~tasks:60 in
  let words kernel =
    (* A cache keeps repeated floorplan probes (whose allocation belongs
       to the packer, not the restart kernel) from dominating the
       per-iteration average; enough iterations amortize the cold
       misses both kernels pay identically. *)
    let o =
      Pa_random.run ~seed:5 ~min_iterations:150 ~kernel
        ~cache:(Fp_cache.create ~subsumption:false ())
        ~budget_seconds:0. inst
    in
    o.Pa_random.minor_words /. float_of_int (max 1 o.Pa_random.iterations)
  in
  let soa = words `Soa and boxed = words `Boxed in
  Alcotest.(check bool)
    (Printf.sprintf "SoA kernel under 100k words/iteration (got %.0f)" soa)
    true (soa < 100_000.);
  Alcotest.(check bool)
    (Printf.sprintf "boxed/SoA allocation ratio >= 5 (got x%.1f)"
       (boxed /. soa))
    true
    (boxed >= 5. *. soa)

(* The per-task hw_impls cache in arena scratch answers exactly what
   [Instance.hw_impls] computes. *)
let test_state_hw_impls_cache () =
  let rng = Rng.create 45 in
  let inst = Suite.instance rng ~tasks:25 in
  let impl_of = Impl_select.run inst ~max_res:(Arch.max_res inst.Instance.arch) in
  let plain = State.create inst ~impl_of () in
  let arena = State.create inst ~impl_of ~scratch:true () in
  for u = 0 to Instance.size inst - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "task %d cached hw_impls = computed" u)
      true
      (State.hw_impls arena u = State.hw_impls plain u
      && State.hw_impls plain u = Instance.hw_impls inst u)
  done

(* S2, isolated: software balancing over a scratch-equipped state (the
   in-place insertion sort over a borrowed array) must leave the state
   in exactly the configuration the legacy List.sort path produces. *)
let test_sw_balance_scratch_matches_legacy () =
  let rng = Rng.create 57 in
  let inst = Suite.instance rng ~tasks:30 in
  let impl_of = Impl_select.run inst ~max_res:(Arch.max_res inst.Instance.arch) in
  let build scratch =
    let state = State.create inst ~impl_of:(Array.copy impl_of) ~scratch () in
    Regions_define.run ~ordering:Regions_define.By_efficiency state;
    Sw_balance.run state;
    state
  in
  let fast = build true and legacy = build false in
  Alcotest.(check (array int))
    "same implementation selection" legacy.State.impl_of fast.State.impl_of;
  Alcotest.(check (array int))
    "same region assignment" legacy.State.region_of fast.State.region_of;
  Alcotest.(check int) "same region count" (State.region_count legacy)
    (State.region_count fast);
  for i = 0 to State.region_count legacy - 1 do
    let a = State.nth_region legacy i and b = State.nth_region fast i in
    Alcotest.(check (list int))
      (Printf.sprintf "region %d same task list" i)
      a.State.tasks b.State.tasks
  done

let () =
  Alcotest.run "batch"
    [
      ( "course",
        [
          Alcotest.test_case "slice invariance" `Quick
            test_course_slice_invariance;
          Alcotest.test_case "cancellation" `Quick test_course_cancellation;
          Alcotest.test_case "cancelled batch request" `Quick
            test_batch_cancelled_request;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "words per iteration" `Quick
            test_words_per_iteration;
          Alcotest.test_case "hw_impls cache" `Quick test_state_hw_impls_cache;
          Alcotest.test_case "sw_balance scratch = legacy" `Quick
            test_sw_balance_scratch_matches_legacy;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_batch_equals_sequential;
          QCheck_alcotest.to_alcotest prop_soa_kernel_equals_boxed_oracle;
        ] );
    ]
