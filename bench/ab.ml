(* A/B comparison and release guards over recorded run directories.

   [compare_runs] reads the section logs of two runs and reports, per
   section, the per-group deltas (iterations, makespans), any makespan
   regression of B against A, and any verdict divergence (a correctness
   flag that A recorded true and B recorded false). The comparison never
   re-executes anything — two committed or CI-archived run directories
   are enough to reproduce it.

   [check] is the single-run release gate that replaces the hand-coded
   CI threshold scripts: every guard is derived from the recorded
   logs — engines identical, verdicts agreed, makespans never worse,
   SW-capable fault policies fully recovering — plus the
   honest-parallelism guards (recorded cores and effective width at
   least what the caller demands, jobs=1 bit-identical, scaling speedup
   at least a floor on the large groups). *)

module Json = Resched_util.Json

let get path j = Json.path path j

let get_bool path j = Option.bind (get path j) Json.get_bool
let get_int path j = Option.bind (get path j) Json.get_int
let get_float path j = Option.bind (get path j) Json.get_float

(* ------------------------------------------------------------------ *)
(* Guard plumbing: each guard pushes a verdict line; [finish] prints    *)
(* them and computes the exit code.                                     *)

type verdicts = {
  mutable failures : string list;
  mutable notes : string list;
}

let new_verdicts () = { failures = []; notes = [] }

let fail v fmt =
  Printf.ksprintf (fun s -> v.failures <- s :: v.failures) fmt

let note v fmt = Printf.ksprintf (fun s -> v.notes <- s :: v.notes) fmt

let finish ~label v =
  List.iter (fun n -> Printf.printf "  %s\n" n) (List.rev v.notes);
  match v.failures with
  | [] ->
    Printf.printf "%s: OK\n" label;
    0
  | fs ->
    List.iter (fun f -> Printf.printf "  FAIL %s\n" f) (List.rev fs);
    Printf.printf "%s: %d guard(s) failed\n" label (List.length fs);
    1

(* ------------------------------------------------------------------ *)
(* Single-run guards (the [check] subcommand)                          *)

let each_group j ~list_field f =
  match Option.bind (Json.member list_field j) Json.to_list with
  | None -> ()
  | Some gs -> List.iter f gs

let check_iteration ?max_minor_words_per_iter v j =
  (match max_minor_words_per_iter with
  | None -> ()
  | Some cap -> (
    match get_float [ "alloc"; "max_minor_words_per_iter" ] j with
    | Some w when w > cap ->
      fail v
        "iteration: worst SoA kernel allocation %.0f minor words/iter above \
         the %.0f cap (allocation regression)"
        w cap
    | Some w ->
      note v "iteration: worst SoA kernel allocation %.0f minor words/iter \
              (cap %.0f)" w cap
    | None ->
      fail v
        "iteration: no alloc.max_minor_words_per_iter recorded but a cap \
         was required"));
  (match get_float [ "alloc"; "min_alloc_ratio" ] j with
  | Some r -> note v "iteration: boxed/SoA allocation reduction >= x%.1f" r
  | None -> ());
  each_group j ~list_field:"groups" (fun g ->
      let tasks = Option.value ~default:(-1) (get_int [ "tasks" ] g) in
      (match (get_int [ "makespan_new" ] g, get_int [ "makespan_old" ] g) with
      | Some n, Some o when n > o ->
        fail v "iteration: %d-task group makespan %d > %d (regression)" tasks n
          o
      | _ -> ());
      if get_bool [ "identical" ] g = Some false then
        fail v
          "iteration: %d-task group incremental engine differs from the \
           from-scratch oracle"
          tasks);
  if get_bool [ "all_identical" ] j <> Some true then
    fail v "iteration: all_identical is not true";
  if get_bool [ "never_worse" ] j <> Some true then
    fail v "iteration: never_worse is not true"

let check_milp v j =
  if get_bool [ "lp_kernel"; "all_agree" ] j <> Some true then
    fail v "milp: LP kernel verdicts differ between tableau and revised";
  each_group j ~list_field:"bnb" (fun g ->
      let tasks = Option.value ~default:(-1) (get_int [ "tasks" ] g) in
      if get_bool [ "objectives_agree" ] g = Some false then
        fail v "milp: %d-task ILP proved-optimal objectives differ" tasks;
      if get_bool [ "never_worse" ] g = Some false then
        fail v "milp: %d-task ILP revised makespan worse than tableau" tasks);
  if get_bool [ "engines_agree" ] j <> Some true then
    fail v "milp: engines_agree is not true";
  if get_bool [ "never_worse" ] j <> Some true then
    fail v "milp: never_worse is not true";
  match get_float [ "bnb_totals"; "nodes_per_s_speedup" ] j with
  | Some s -> note v "milp: revised nodes/sec speedup at jobs=1: x%.2f" s
  | None -> ()

let check_floorplan v j =
  each_group j ~list_field:"groups" (fun g ->
      let tasks = Option.value ~default:(-1) (get_int [ "tasks" ] g) in
      if get_bool [ "identical" ] g = Some false then
        fail v
          "floorplan: %d-task group packer v2 contradicts (or is less \
           decisive than) v1"
          tasks;
      match (get_int [ "makespan_v2" ] g, get_int [ "makespan_v1" ] g) with
      | Some b, Some a when b > a ->
        fail v "floorplan: %d-task group PA-R makespan %d (v2) > %d (v1)"
          tasks b a
      | _ -> ());
  if get_bool [ "all_identical" ] j <> Some true then
    fail v "floorplan: all_identical is not true";
  if get_bool [ "makespans_never_worse" ] j <> Some true then
    fail v "floorplan: makespans_never_worse is not true";
  (match get_float [ "speedup_large_groups" ] j with
  | Some s -> note v "floorplan: oracle checks/s speedup (large groups): x%.2f" s
  | None -> ());
  match get_float [ "cache"; "combined_hit_rate" ] j with
  | Some r -> note v "floorplan: oracle-replay cache combined hit rate %.3f" r
  | None -> ()

let check_faults v j =
  each_group j ~list_field:"campaigns" (fun c ->
      let tasks = Option.value ~default:(-1) (get_int [ "tasks" ] c) in
      let policy =
        Option.value ~default:"?"
          (Option.bind (Json.member "policy" c) Json.get_string)
      in
      if get_bool [ "all_valid" ] c = Some false then
        fail v "faults: %d-task %s produced an invalid repaired schedule"
          tasks policy;
      match (policy, get_float [ "survival_rate" ] c) with
      | ("sw-fallback" | "resched-tail"), Some r when r < 1.0 ->
        fail v
          "faults: %d-task %s survival %.3f < 1.0; SW-capable policies must \
           recover every fault on suite instances"
          tasks policy r
      | _ -> ());
  if get_bool [ "sw_policies_full_recovery" ] j <> Some true then
    fail v "faults: sw_policies_full_recovery is not true";
  if get_bool [ "all_valid" ] j <> Some true then
    fail v "faults: all_valid is not true"

let check_parallel v ~min_cores ~min_speedup j =
  let cores = Option.value ~default:0 (get_int [ "cores" ] j) in
  let requested = Option.value ~default:0 (get_int [ "jobs_requested" ] j) in
  let effective = Option.value ~default:0 (get_int [ "jobs_effective" ] j) in
  note v "parallel: cores=%d, jobs requested=%d effective=%d%s" cores
    requested effective
    (if get_bool [ "downgraded" ] j = Some true then " (DOWNGRADED)" else "");
  (match min_cores with
  | Some m when cores < m ->
    fail v
      "parallel: recorded cores=%d < required %d — this run cannot back a \
       parallel-scaling claim"
      cores m
  | Some m when effective < Stdlib.min m requested ->
    fail v "parallel: jobs_effective=%d below required width %d" effective
      (Stdlib.min m requested)
  | _ -> ());
  if get_bool [ "jobs1_bit_identical" ] j <> Some true then
    fail v "parallel: jobs=1 is not bit-identical to the sequential engine";
  if get_bool [ "never_worse" ] j <> Some true then
    fail v "parallel: widest width is worse than jobs=1 on some group";
  match (min_speedup, get_float [ "speedup_large_groups" ] j) with
  | None, _ -> ()
  | Some floor, Some s ->
    if s < floor then
      fail v
        "parallel: large-group iteration speedup x%.2f below required x%.2f"
        s floor
    else note v "parallel: large-group iteration speedup x%.2f (>= x%.2f)" s
        floor
  | Some floor, None ->
    if get_bool [ "parallel_measurable" ] j = Some false then
      fail v
        "parallel: speedup not measurable (single-core run) but a x%.2f \
         floor was required"
        floor
    else fail v "parallel: no speedup_large_groups recorded"

(* The batch engine's correctness contract is unconditional: every
   instance's outcome must be bit-identical to its sequential run,
   whatever the interleaving. The throughput speedup is informational
   only — a CI smoke run on 2 cores with a couple of instances cannot
   back a fleet-throughput claim, so no floor is enforced here (the
   recorded full runs carry it). *)
let check_batch v j =
  each_group j ~list_field:"instances" (fun g ->
      let tasks = Option.value ~default:(-1) (get_int [ "tasks" ] g) in
      let idx = Option.value ~default:(-1) (get_int [ "idx" ] g) in
      if get_bool [ "identical" ] g = Some false then
        fail v
          "batch: instance (%d tasks, #%d) diverged from its sequential \
           one-at-a-time run"
          tasks idx);
  if get_bool [ "all_identical" ] j <> Some true then
    fail v "batch: all_identical is not true";
  match (get_float [ "speedup" ] j, get_int [ "jobs" ] j) with
  | Some s, Some jobs ->
    note v "batch: x%.2f instances/s vs one-at-a-time at jobs=%d" s jobs
  | _ -> ()

(* The move kernel's contract mirrors the iteration section's: zero
   divergence from the from-scratch oracle (bit-identity is the whole
   point of keeping the boxed pipeline around), the LNS driver never
   worse than PA-R at equal wall budget, and optionally a floor on the
   move-evaluation speedup against the full re-evaluation pipeline. *)
let check_moves ?min_move_speedup v j =
  each_group j ~list_field:"groups" (fun g ->
      let tasks = Option.value ~default:(-1) (get_int [ "tasks" ] g) in
      (match get_int [ "divergences" ] g with
      | Some d when d > 0 ->
        fail v "moves: %d-task group has %d incremental/oracle divergence(s)"
          tasks d
      | _ -> ());
      if get_bool [ "lns_not_worse" ] g = Some false then
        fail v
          "moves: %d-task group LNS makespan worse than PA-R at equal budget"
          tasks);
  if get_bool [ "all_agree" ] j <> Some true then
    fail v "moves: all_agree is not true";
  if get_bool [ "lns_never_worse" ] j <> Some true then
    fail v "moves: lns_never_worse is not true";
  (match get_int [ "divergences" ] j with
  | Some 0 -> ()
  | Some d -> fail v "moves: %d divergence(s) recorded" d
  | None -> fail v "moves: no divergence count recorded");
  match (min_move_speedup, get_float [ "min_speedup" ] j) with
  | None, Some s ->
    note v "moves: min move-evaluation speedup x%.2f vs the full pipeline" s
  | None, None -> ()
  | Some floor, Some s ->
    if s < floor then
      fail v "moves: min move-evaluation speedup x%.2f below required x%.2f" s
        floor
    else
      note v "moves: min move-evaluation speedup x%.2f (>= x%.2f)" s floor
  | Some floor, None ->
    fail v "moves: no min_speedup recorded but a x%.2f floor was required"
      floor

(* The serve section's robustness contract: under every offered load
   the admission-queue bound held, no response arrived after its
   deadline plus the recorded slack, every schedule that left the
   server validated, and the sequential identity pass matched the
   offline solver bit-for-bit. Shed counts and tail latencies are
   informational — overload is supposed to shed, loudly. *)
let check_serve v j =
  each_group j ~list_field:"loads" (fun g ->
      let load = Option.value ~default:(-1) (get_int [ "load" ] g) in
      (match get_int [ "overruns" ] g with
      | Some o when o > 0 ->
        fail v "serve: %d deadline overrun(s) at load %dx" o load
      | _ -> ());
      (match get_int [ "invalid_schedules" ] g with
      | Some i when i > 0 ->
        fail v "serve: %d invalid schedule(s) served at load %dx" i load
      | _ -> ());
      if get_bool [ "queue_bound_ok" ] g = Some false then
        fail v "serve: admission-queue bound exceeded at load %dx" load;
      match
        ( get_int [ "shed"; "queue_full" ] g,
          get_float [ "p99_ms" ] g )
      with
      | Some shed, Some p99 ->
        note v "serve: load %dx shed %d (queue_full), p99 %.1f ms" load shed
          p99
      | _ -> ());
  if get_bool [ "zero_overruns" ] j <> Some true then
    fail v "serve: zero_overruns is not true";
  if get_bool [ "zero_invalid" ] j <> Some true then
    fail v "serve: zero_invalid is not true";
  if get_bool [ "queue_bound_ok" ] j <> Some true then
    fail v "serve: queue_bound_ok is not true";
  if get_bool [ "identity_ok" ] j <> Some true then
    fail v "serve: served responses diverged from the offline solver"

(* The serve_concurrency section's contract (ISSUE 10): dispatch is
   fair across simultaneous clients (max/min goodput <= 2 at 4
   clients), a flooding connection never head-of-line-blocks a sparse
   one, transport responses stay bit-identical to the offline solver,
   no client saw an error, and — on hosts with at least 2 serving
   workers — 4 concurrent clients clear the recorded throughput floor
   over 1 client. *)
let check_serve_concurrency v j =
  each_group j ~list_field:"levels" (fun g ->
      let clients = Option.value ~default:(-1) (get_int [ "clients" ] g) in
      (match get_int [ "errors" ] g with
      | Some e when e > 0 ->
        fail v "serve_concurrency: %d client error(s) at %d client(s)" e
          clients
      | _ -> ());
      match
        (get_float [ "throughput_rps" ] g, get_float [ "fairness_ratio" ] g)
      with
      | Some tput, Some fair ->
        note v "serve_concurrency: %d client(s) %.1f req/s, fairness %.2f"
          clients tput fair
      | _ -> ());
  if get_bool [ "fairness_ok" ] j <> Some true then
    fail v "serve_concurrency: per-client goodput ratio exceeded 2 at 4 \
            clients";
  if get_bool [ "no_holb" ] j <> Some true then
    fail v "serve_concurrency: sparse client was head-of-line-blocked (%d \
            dispatches)"
      (Option.value ~default:(-1) (get_int [ "holb_dispatches" ] j));
  if get_bool [ "identity_ok" ] j <> Some true then
    fail v "serve_concurrency: transport responses diverged from the \
            offline solver";
  match
    ( get_bool [ "concurrency_measurable" ] j,
      get_bool [ "throughput_ok" ] j,
      get_float [ "speedup_4c_over_1c" ] j,
      get_float [ "throughput_floor" ] j )
  with
  | Some true, ok, Some s, Some floor ->
    if ok <> Some true then
      fail v
        "serve_concurrency: 4-client speedup x%.2f below the x%.2f floor" s
        floor
    else
      note v "serve_concurrency: 4-client speedup x%.2f (floor x%.2f)" s
        floor
  | Some false, _, _, _ ->
    note v
      "serve_concurrency: single-worker host, throughput gate waived \
       (fairness/HOLB/identity still enforced)"
  | _ -> fail v "serve_concurrency: missing measurability or speedup fields"

(* Sections [check] knows how to audit, with their guard functions.
   Missing sections are skipped with a note (a partial run can still be
   checked) unless [require_all] is set. *)
let checkable_sections ~min_cores ~min_speedup ~max_minor_words_per_iter
    ~min_move_speedup =
  [
    ("parallel", check_parallel ~min_cores ~min_speedup);
    ("iteration", check_iteration ?max_minor_words_per_iter);
    ("batch", check_batch);
    ("serve", check_serve);
    ("serve_concurrency", check_serve_concurrency);
    ("milp", check_milp);
    ("floorplan", check_floorplan);
    ("faults", check_faults);
    ("moves", check_moves ?min_move_speedup);
  ]

let check ?run ?min_cores ?min_speedup ?max_minor_words_per_iter
    ?min_move_speedup ?(require_all = false) () =
  let r = Run_store.find run in
  (match (run, r) with
  | Some arg, None ->
    Printf.printf "check: run %s not found (using legacy BENCH_*.json only)\n"
      arg
  | _, Some r -> Printf.printf "check: auditing %s\n" r.Run_store.dir
  | None, None -> Printf.printf "check: auditing legacy BENCH_*.json\n");
  let v = new_verdicts () in
  List.iter
    (fun (section, guard) ->
      match Run_store.load_section r section with
      | Ok j -> guard v j
      | Error e ->
        if require_all then fail v "%s: %s" section e
        else note v "%s: skipped (%s)" section e)
    (checkable_sections ~min_cores ~min_speedup ~max_minor_words_per_iter
       ~min_move_speedup);
  finish ~label:"check" v

(* ------------------------------------------------------------------ *)
(* Two-run comparison (the [ab] subcommand)                            *)

(* Index a parallel log's widest measurement by tasks. *)
let widest_rows j =
  match Option.bind (Json.member "measurements" j) Json.to_list with
  | None -> []
  | Some ms ->
    let widest =
      List.fold_left
        (fun best m ->
          match (best, get_int [ "jobs_effective" ] m) with
          | None, Some _ -> Some m
          | Some b, Some e
            when e > Option.value ~default:0 (get_int [ "jobs_effective" ] b)
            -> Some m
          | _ -> best)
        None ms
    in
    (match Option.bind widest (fun m -> Option.bind (Json.member "rows" m) Json.to_list) with
    | None -> []
    | Some rows ->
      List.filter_map
        (fun r ->
          match
            ( get_int [ "tasks" ] r,
              get_int [ "iterations" ] r,
              get_int [ "makespan" ] r )
          with
          | Some t, Some it, Some ms -> Some (t, (it, ms))
          | _ -> None)
        rows)

(* Correctness flags whose true->false transition between A and B is a
   divergence. *)
let verdict_flags =
  [
    ("parallel", [ "jobs1_bit_identical" ]);
    ("parallel", [ "never_worse" ]);
    ("iteration", [ "all_identical" ]);
    ("iteration", [ "never_worse" ]);
    ("batch", [ "all_identical" ]);
    ("serve", [ "zero_overruns" ]);
    ("serve", [ "zero_invalid" ]);
    ("serve", [ "queue_bound_ok" ]);
    ("serve", [ "identity_ok" ]);
    ("serve_concurrency", [ "fairness_ok" ]);
    ("serve_concurrency", [ "no_holb" ]);
    ("serve_concurrency", [ "identity_ok" ]);
    ("serve_concurrency", [ "throughput_ok" ]);
    ("milp", [ "engines_agree" ]);
    ("milp", [ "never_worse" ]);
    ("milp", [ "lp_kernel"; "all_agree" ]);
    ("floorplan", [ "all_identical" ]);
    ("floorplan", [ "makespans_never_worse" ]);
    ("faults", [ "sw_policies_full_recovery" ]);
    ("faults", [ "all_valid" ]);
    ("moves", [ "all_agree" ]);
    ("moves", [ "lns_never_worse" ]);
  ]

let compare_runs (a : Run_store.run) (b : Run_store.run) =
  let load r section = Run_store.load_section (Some r) section in
  let v = new_verdicts () in
  (* Coverage audit first: a comparison that silently matches zero
     sections reads as "no regressions" when it actually compared
     nothing. Partial overlap is explicitly noted; empty overlap is a
     failure. *)
  let sa = Run_store.sections_present a
  and sb = Run_store.sections_present b in
  let only_a = List.filter (fun s -> not (List.mem s sb)) sa
  and only_b = List.filter (fun s -> not (List.mem s sa)) sb in
  let shared = List.filter (fun s -> List.mem s sb) sa in
  if only_a <> [] then
    note v "WARNING: section(s) only in %s: %s" a.Run_store.id
      (String.concat ", " only_a);
  if only_b <> [] then
    note v "WARNING: section(s) only in %s: %s" b.Run_store.id
      (String.concat ", " only_b);
  if shared = [] && (sa <> [] || sb <> []) then
    fail v
      "runs share no section logs (%s: %s | %s: %s) — nothing was compared"
      a.Run_store.id
      (if sa = [] then "none" else String.concat ", " sa)
      b.Run_store.id
      (if sb = [] then "none" else String.concat ", " sb);
  let group_deltas = ref [] in
  (match (load a "parallel", load b "parallel") with
  | Ok ja, Ok jb ->
    let ra = widest_rows ja and rb = widest_rows jb in
    List.iter
      (fun (tasks, (it_b, ms_b)) ->
        match List.assoc_opt tasks ra with
        | None -> ()
        | Some (it_a, ms_a) ->
          group_deltas :=
            Json.Obj
              [
                ("tasks", Json.Int tasks);
                ("iterations_a", Json.Int it_a);
                ("iterations_b", Json.Int it_b);
                ( "iteration_ratio",
                  Json.float
                    (float_of_int it_b /. float_of_int (Stdlib.max 1 it_a)) );
                ("makespan_a", Json.Int ms_a);
                ("makespan_b", Json.Int ms_b);
                ("makespan_delta", Json.Int (ms_b - ms_a));
              ]
            :: !group_deltas;
          note v
            "parallel %3d tasks: iters %d -> %d (x%.2f), makespan %d -> %d \
             (%+d)"
            tasks it_a it_b
            (float_of_int it_b /. float_of_int (Stdlib.max 1 it_a))
            ms_a ms_b (ms_b - ms_a);
          if ms_b > ms_a then
            fail v
              "parallel: %d-task group makespan regressed %d -> %d (B worse \
               than A)"
              tasks ms_a ms_b)
      rb
  | Error e, _ -> note v "parallel: skipped for %s (%s)" a.Run_store.id e
  | _, Error e -> note v "parallel: skipped for %s (%s)" b.Run_store.id e);
  let divergences = ref [] in
  List.iter
    (fun (section, path) ->
      match (load a section, load b section) with
      | Ok ja, Ok jb -> (
        match (get_bool path ja, get_bool path jb) with
        | Some true, Some false ->
          let name = section ^ "." ^ String.concat "." path in
          divergences := name :: !divergences;
          fail v "verdict divergence: %s was true in %s, false in %s" name
            a.Run_store.id b.Run_store.id
        | _ -> ())
      | _ -> ())
    verdict_flags;
  (* S1: per-section GC counters from the two manifests — allocation
     drift on the orchestrating domain, informational (never a
     failure: absolute rates shift with groups/iteration knobs). *)
  let gc_deltas = ref [] in
  (match (Run_store.load_manifest a, Run_store.load_manifest b) with
  | Ok ma, Ok mb -> (
    match
      ( Option.bind (Json.member "sections_gc" ma) (function
          | Json.Obj kvs -> Some kvs
          | _ -> None),
        Option.bind (Json.member "sections_gc" mb) (function
          | Json.Obj kvs -> Some kvs
          | _ -> None) )
    with
    | Some ga, Some gb ->
      List.iter
        (fun (section, jb') ->
          match List.assoc_opt section ga with
          | None -> ()
          | Some ja' -> (
            match
              ( get_float [ "minor_words" ] ja',
                get_float [ "minor_words" ] jb' )
            with
            | Some wa, Some wb ->
              let majors label j =
                Option.value ~default:0 (get_int [ label ] j)
              in
              gc_deltas :=
                Json.Obj
                  [
                    ("section", Json.String section);
                    ("minor_words_a", Json.float wa);
                    ("minor_words_b", Json.float wb);
                    ( "minor_words_ratio",
                      Json.float (wb /. Float.max wa 1.) );
                    ( "major_collections_a",
                      Json.Int (majors "major_collections" ja') );
                    ( "major_collections_b",
                      Json.Int (majors "major_collections" jb') );
                  ]
                :: !gc_deltas;
              note v
                "gc %-10s minor words %.2e -> %.2e (x%.2f), major \
                 collections %d -> %d"
                section wa wb
                (wb /. Float.max wa 1.)
                (majors "major_collections" ja')
                (majors "major_collections" jb')
            | _ -> ()))
        gb
    | _ -> ())
  | _ -> ());
  let report =
    Json.Obj
      [
        ("schema", Json.String "resched-bench-ab/1");
        ("run_a", Json.String a.Run_store.id);
        ("run_b", Json.String b.Run_store.id);
        ( "sections_only_a",
          Json.List (List.map (fun s -> Json.String s) only_a) );
        ( "sections_only_b",
          Json.List (List.map (fun s -> Json.String s) only_b) );
        ("groups", Json.List (List.rev !group_deltas));
        ("sections_gc", Json.List (List.rev !gc_deltas));
        ( "divergences",
          Json.List (List.map (fun d -> Json.String d) (List.rev !divergences))
        );
        ("regressions", Json.Int (List.length v.failures));
        ("ok", Json.Bool (v.failures = []));
      ]
  in
  (report, v)

let ab ?run_a ?run_b ?out () =
  let resolve label arg =
    match Run_store.find arg with
    | Some r -> r
    | None ->
      failwith
        (Printf.sprintf "ab: run %s not found" (Option.value ~default:label arg))
  in
  let a, b =
    match (run_a, run_b) with
    | Some a, Some b -> (resolve "A" (Some a), resolve "B" (Some b))
    | _ -> (
      (* Default: the two most recent runs, older as A. *)
      match List.rev (Run_store.list_runs ()) with
      | b :: a :: _ -> (a, b)
      | _ -> failwith "ab: need two recorded runs (or pass two run ids)")
  in
  Printf.printf "ab: A=%s  B=%s\n" a.Run_store.dir b.Run_store.dir;
  let report, v = compare_runs a b in
  (match out with
  | Some path ->
    Json.write_file path report;
    Printf.printf "  [json] %s\n" path
  | None -> ());
  finish ~label:"ab" v
