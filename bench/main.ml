(* Bench CLI.

     main run [SECTION,...]     run sections (default: all) in a fresh
                                run directory under bench_out/runs/
     main ab [A] [B]            compare two recorded runs (default: the
                                latest two); nonzero exit on regression
                                or verdict divergence
     main check [RUN]           audit one run's recorded logs (default:
                                latest, falling back to the repo-root
                                BENCH_*.json); replaces the hand-coded
                                CI threshold scripts
     main champions             print the best-known PA-R results
     main list                  list recorded runs

   Invoking with no arguments runs every section, so `dune exec
   bench/main.exe` keeps its historical behaviour. *)

open Cmdliner

let sections_arg =
  let doc =
    Printf.sprintf "Comma-separated sections to run (known: %s)."
      (String.concat ", " Sections.section_names)
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"SECTIONS" ~doc)

let label_arg =
  let doc = "Label recorded in the run directory name." in
  Arg.(value & opt string "" & info [ "label" ] ~docv:"LABEL" ~doc)

let no_store_arg =
  let doc =
    "Do not create a run directory (only the legacy BENCH_*.json and \
     bench_out CSVs are written)."
  in
  Arg.(value & flag & info [ "no-store" ] ~doc)

let run_bench sections label no_store =
  let names =
    match sections with
    | None -> Sections.default_sections
    | Some s ->
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun x -> x <> "")
  in
  List.iter
    (fun n ->
      if not (List.mem n Sections.section_names) then begin
        Printf.eprintf "unknown section %s (known: %s)\n" n
          (String.concat ", " Sections.section_names);
        exit 2
      end)
    names;
  let run = if no_store then None else Some (Run_store.create ~label) in
  let t0 = Unix.gettimeofday () in
  Sections.run_sections names;
  let elapsed = Unix.gettimeofday () -. t0 in
  (match run with
  | Some r ->
    Run_store.finalize r ~elapsed_s:elapsed;
    Printf.printf "\n[run] completed %s (%.1fs)\n" r.Run_store.dir elapsed
  | None -> Printf.printf "\n(total %.1fs)\n" elapsed);
  0

let run_cmd =
  let info = Cmd.info "run" ~doc:"Run bench sections into a run directory." in
  Cmd.v info Term.(const run_bench $ sections_arg $ label_arg $ no_store_arg)

let run_a_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"RUN_A"
         ~doc:"Baseline run (id or directory).")

let run_b_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"RUN_B"
         ~doc:"Candidate run (id or directory).")

let ab_out_arg =
  let doc = "Write the A/B report JSON to this path." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH" ~doc)

let ab_cmd =
  let doc = "Compare two recorded runs; fail on regression/divergence." in
  let f a b out =
    try Ab.ab ?run_a:a ?run_b:b ?out ()
    with Failure m ->
      Printf.eprintf "%s\n" m;
      2
  in
  Cmd.v (Cmd.info "ab" ~doc)
    Term.(const f $ run_a_arg $ run_b_arg $ ab_out_arg)

let check_run_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"RUN"
         ~doc:"Run to audit (id or directory; default: latest, then the \
               repo-root BENCH_*.json).")

let min_cores_arg =
  let doc =
    "Fail unless the recorded parallel run had at least this many cores and \
     a matching effective width."
  in
  Arg.(value & opt (some int) None & info [ "min-cores" ] ~docv:"N" ~doc)

let min_speedup_arg =
  let doc =
    "Fail unless the recorded large-group iteration speedup is at least this."
  in
  Arg.(value & opt (some float) None & info [ "min-speedup" ] ~docv:"X" ~doc)

let max_minor_words_arg =
  let doc =
    "Fail if the recorded iteration section's worst SoA-kernel allocation \
     rate exceeds this many minor words per iteration (allocation \
     regression gate)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "max-minor-words-per-iter" ] ~docv:"W" ~doc)

let min_move_speedup_arg =
  let doc =
    "Fail unless the recorded move-kernel speedup over the full \
     re-evaluation pipeline is at least this on every task group."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "min-move-speedup" ] ~docv:"X" ~doc)

let require_all_arg =
  let doc = "Fail if any checkable section log is missing." in
  Arg.(value & flag & info [ "require-all" ] ~doc)

let check_cmd =
  let doc = "Audit a run's recorded logs (the CI release gate)." in
  let f run min_cores min_speedup max_minor_words_per_iter min_move_speedup
      require_all =
    Ab.check ?run ?min_cores ?min_speedup ?max_minor_words_per_iter
      ?min_move_speedup ~require_all ()
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const f $ check_run_arg $ min_cores_arg $ min_speedup_arg
      $ max_minor_words_arg $ min_move_speedup_arg $ require_all_arg)

let champions_cmd =
  let doc = "Print the best-known PA-R results per task group." in
  Cmd.v (Cmd.info "champions" ~doc)
    Term.(
      const (fun () ->
          Champions.print ();
          0)
      $ const ())

let list_cmd =
  let doc = "List recorded run directories." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          (match Run_store.list_runs () with
          | [] -> print_endline "no recorded runs"
          | rs ->
            List.iter (fun r -> print_endline r.Run_store.dir) rs);
          0)
      $ const ())

let default =
  (* No subcommand: run everything, like the historical monolith. *)
  Term.(const (fun () -> run_bench None "" false) $ const ())

let () =
  let info = Cmd.info "bench" ~doc:"resched benchmark harness" in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ run_cmd; ab_cmd; check_cmd; champions_cmd; list_cmd ]))
