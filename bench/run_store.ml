(* Run directories: every bench invocation gets
   [<out_dir>/runs/<run-id>/] holding a manifest plus one JSON log per
   section. The [ab] and [check] subcommands consume these logs, so a
   comparison can always be reproduced from two committed (or
   CI-archived) run directories. Sections additionally mirror their log
   to the legacy repo-root [BENCH_<section>.json] paths that older
   tooling and the README reference. *)

module Json = Resched_util.Json

type run = { id : string; dir : string }

let runs_root () = Filename.concat Bench_env.out_dir "runs"

let manifest_path r = Filename.concat r.dir "manifest.json"

let section_path r section = Filename.concat r.dir (section ^ ".json")

(* The active run, if the harness created one; sections write through
   [write_section] regardless, and only get a run-dir copy when a run is
   active (so a bare section invocation still produces the legacy
   files). *)
let active : run option ref = ref None

let set_active r = active := Some r

let active_id () = match !active with Some r -> r.id | None -> "adhoc"

let run_of_dir dir = { id = Filename.basename dir; dir }

let list_runs () =
  let root = runs_root () in
  if not (Sys.file_exists root) then []
  else
    Sys.readdir root |> Array.to_list
    |> List.filter (fun n ->
           Sys.is_directory (Filename.concat root n)
           && String.length n >= 4
           && String.sub n 0 4 = "run-")
    |> List.sort compare
    |> List.map (fun n -> run_of_dir (Filename.concat root n))

(* Run ids are monotone ([run-NNNN-label]) so lexicographic order is
   creation order and "the latest two runs" is well-defined for [ab]. *)
let next_id ~label =
  let seq =
    List.fold_left
      (fun acc r ->
        match String.split_on_char '-' r.id with
        | "run" :: n :: _ -> (
          match int_of_string_opt n with
          | Some v -> Stdlib.max acc v
          | None -> acc)
        | _ -> acc)
      0 (list_runs ())
  in
  let label =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '_')
      label
  in
  if label = "" then Printf.sprintf "run-%04d" (seq + 1)
  else Printf.sprintf "run-%04d-%s" (seq + 1) label

(* Per-section GC counters (S1): the section driver measures
   [Gc.quick_stat] deltas around each section and records them here;
   [finalize] folds them into the manifest so [ab] can report
   allocation-rate drift between two runs without re-executing
   anything. Orchestrating-domain counters only — worker-domain
   allocation is reported by the sections that measure it
   (iteration/batch words-per-iteration telemetry). *)
let section_gc : (string * Json.t) list ref = ref []

let record_section_gc ~section ~elapsed_s (b : Gc.stat) (a : Gc.stat) =
  section_gc :=
    ( section,
      Json.Obj
        [
          ("elapsed_s", Json.float elapsed_s);
          ("minor_words", Json.float (a.Gc.minor_words -. b.Gc.minor_words));
          ("major_words", Json.float (a.Gc.major_words -. b.Gc.major_words));
          ( "promoted_words",
            Json.float (a.Gc.promoted_words -. b.Gc.promoted_words) );
          ( "minor_collections",
            Json.Int (a.Gc.minor_collections - b.Gc.minor_collections) );
          ( "major_collections",
            Json.Int (a.Gc.major_collections - b.Gc.major_collections) );
        ] )
    :: !section_gc

let manifest_json ~completed ~elapsed_s =
  let p = Bench_env.par_plan in
  Json.Obj
    [
      ("schema", Json.String "resched-bench-run/1");
      ("label", Json.String (match !active with Some r -> r.id | None -> ""));
      ("created", Json.float (Unix.gettimeofday ()));
      ("seed", Json.Int Bench_env.seed);
      ( "groups",
        Json.List (List.map (fun g -> Json.Int g) Bench_env.groups) );
      ("graphs_per_group", Json.Int Bench_env.graphs_per_group);
      ("budget_seconds", Json.float Bench_env.par_budget_cap);
      ( "jobs",
        Json.Obj
          [
            ("requested", Json.Int p.Resched_util.Domain_pool.requested);
            ("effective", Json.Int p.Resched_util.Domain_pool.effective);
            ("cores", Json.Int p.Resched_util.Domain_pool.cores);
            ( "downgraded",
              Json.Bool (Resched_util.Domain_pool.downgraded p) );
          ] );
      ("completed", Json.Bool completed);
      ( "elapsed_s",
        match elapsed_s with Some s -> Json.float s | None -> Json.Null );
      ("sections_gc", Json.Obj (List.rev !section_gc));
    ]

let create ~label =
  Bench_env.mkdir_p (runs_root ());
  let id = next_id ~label in
  let dir = Filename.concat (runs_root ()) id in
  Bench_env.mkdir_p dir;
  let r = { id; dir } in
  set_active r;
  Json.write_file (manifest_path r) (manifest_json ~completed:false ~elapsed_s:None);
  Printf.printf "[run] %s\n%!" dir;
  r

let finalize r ~elapsed_s =
  Json.write_file (manifest_path r)
    (manifest_json ~completed:true ~elapsed_s:(Some elapsed_s))

(* Write one section's JSON log: always to the legacy repo-root
   [BENCH_<section>.json], and into the active run directory when there
   is one. [contents] is the already-serialized document (sections that
   build their log with Printf keep doing so; new sections pass
   [Json.to_string]). *)
let write_section ~section contents =
  let write path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents);
    Printf.printf "  [json] %s\n%!" path
  in
  write ("BENCH_" ^ section ^ ".json");
  match !active with
  | Some r -> write (section_path r section)
  | None -> ()

let write_section_json ~section j = write_section ~section (Json.to_string j)

(* Resolve a run argument: an id under the runs root, a directory path,
   or [None] for the latest run. *)
let find = function
  | None -> (
    match List.rev (list_runs ()) with r :: _ -> Some r | [] -> None)
  | Some arg ->
    if Sys.file_exists arg && Sys.is_directory arg then
      Some (run_of_dir arg)
    else
      let dir = Filename.concat (runs_root ()) arg in
      if Sys.file_exists dir && Sys.is_directory dir then
        Some (run_of_dir dir)
      else None

let load_manifest r = Json.parse_file (manifest_path r)

(* The section logs actually present in a run directory (sans the
   manifest), for comparing two runs' coverage before comparing their
   numbers. *)
let sections_present r =
  match Sys.readdir r.dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".json" && f <> "manifest.json" then
             Some (Filename.chop_suffix f ".json")
           else None)
    |> List.sort String.compare

(* A section log for [r], falling back to the legacy repo-root file so
   [check] also works right after a bare `bench run` with no run dir
   (or on a checkout that only has the committed BENCH_*.json). *)
let load_section r section =
  let p =
    match r with
    | Some r when Sys.file_exists (section_path r section) ->
      Some (section_path r section)
    | _ ->
      let legacy = "BENCH_" ^ section ^ ".json" in
      if Sys.file_exists legacy then Some legacy else None
  in
  match p with
  | None -> Error (Printf.sprintf "no %s log found" section)
  | Some p -> Json.parse_file p
