(* Benchmark sections: regenerates every table and figure of the paper's
   evaluation (Sec. VII) plus the ablations listed in DESIGN.md. All
   configuration comes from environment knobs (see bench_env.ml); the
   CLI in main.ml selects which sections run and wraps them in a run
   directory (see run_store.ml). *)

module Rng = Resched_util.Rng
module Stats = Resched_util.Stats
module Table = Resched_util.Table
module Csv = Resched_util.Csv
module Json = Resched_util.Json
module Resource = Resched_fabric.Resource
module Cpm = Resched_taskgraph.Cpm
module Generator = Resched_taskgraph.Generator
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Arch = Resched_platform.Arch
module Lp = Resched_milp.Lp
module Simplex = Resched_milp.Simplex
module Revised = Resched_milp.Revised
module Branch_bound = Resched_milp.Branch_bound
module Ilp_exact = Resched_baseline.Ilp_exact
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache
module Domain_pool = Resched_util.Domain_pool
module Pa = Resched_core.Pa
module Pa_random = Resched_core.Pa_random
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Regions_define = Resched_core.Regions_define
module State = Resched_core.State
module Impl_select = Resched_core.Impl_select
module Sw_balance = Resched_core.Sw_balance
module Sw_map = Resched_core.Sw_map
module Reconf_sched = Resched_core.Reconf_sched
module Timing = Resched_core.Timing
module Isk = Resched_baseline.Isk
module List_sched = Resched_baseline.List_sched
module Repair = Resched_core.Repair
module Delta = Resched_core.Delta
module Lns = Resched_core.Lns
module Campaign = Resched_sim.Campaign
module Schedule_io = Resched_core.Schedule_io
module Plat_io = Resched_platform.Io
module Serve_protocol = Resched_serve.Protocol
module Serve_server = Resched_serve.Server
module Serve_transport = Resched_serve.Transport

open Bench_env

let must_validate label sched =
  match Validate.check sched with
  | Ok () -> ()
  | Error vs ->
    List.iter
      (fun (v : Validate.violation) ->
        Printf.eprintf "VALIDATION [%s] %s\n" label v.Validate.message)
      vs;
    failwith (label ^ ": invalid schedule")

(* ------------------------------------------------------------------ *)
(* Per-instance measurements                                           *)

type run = {
  tasks : int;
  pa_makespan : float;
  pa_sched_s : float;
  pa_plan_s : float;
  par_makespan : float;
  par_budget_s : float;
  is1_makespan : float;
  is1_s : float;
  is5_makespan : float;
  is5_s : float;
  heft_makespan : float;
}

let evaluate_instance ~tasks ~idx inst =
  let pa, pa_stats = Pa.run inst in
  must_validate "PA" pa;
  let (is1, _), is1_s =
    timed (fun () ->
        Isk.run
          ~config:{ (Isk.config ~k:1) with Isk.chunk_node_limit = isk_node_cap }
          inst)
  in
  must_validate "IS-1" is1;
  let (is5, _), is5_s =
    timed (fun () ->
        Isk.run
          ~config:{ (Isk.config ~k:5) with Isk.chunk_node_limit = isk_node_cap }
          inst)
  in
  must_validate "IS-5" is5;
  (* As in the paper, PA-R gets the same budget as IS-5 (here capped so a
     full sweep stays laptop-sized). *)
  let par_budget_s = Float.min par_budget_cap is5_s in
  let outcome =
    Pa_random.run ~seed:(seed + (1000 * tasks) + idx)
      ~budget_seconds:par_budget_s inst
  in
  let par_makespan =
    match outcome.Pa_random.schedule with
    | Some sched ->
      must_validate "PA-R" sched;
      float_of_int (Schedule.makespan sched)
    | None ->
      (* No floorplannable candidate within the budget: the designer
         would fall back to PA's result. *)
      float_of_int (Schedule.makespan pa)
  in
  let heft = List_sched.run inst in
  must_validate "HEFT" heft;
  {
    tasks;
    pa_makespan = float_of_int (Schedule.makespan pa);
    pa_sched_s = pa_stats.Pa.scheduling_seconds;
    pa_plan_s = pa_stats.Pa.floorplanning_seconds;
    par_makespan;
    par_budget_s;
    is1_makespan = float_of_int (Schedule.makespan is1);
    is1_s;
    is5_makespan = float_of_int (Schedule.makespan is5);
    is5_s;
    heft_makespan = float_of_int (Schedule.makespan heft);
  }

let collect_group tasks =
  let insts = Suite.group ~seed ~tasks ~count:graphs_per_group () in
  List.mapi (fun idx inst -> evaluate_instance ~tasks ~idx inst) insts

(* ------------------------------------------------------------------ *)
(* Table I and Figures 2-5                                             *)

let arr f runs = Array.of_list (List.map f runs)

let print_table1 all =
  print_endline "";
  print_endline
    "== Table I: algorithm execution times [s] (means per group) ==";
  print_endline
    "   (PA split into scheduling and floorplanning; the PA-R column is";
  print_endline
    "    its time budget, i.e. the capped IS-5 time, as in the paper)";
  let t =
    Table.create
      [ "# Tasks"; "PA sched"; "PA floorplan"; "PA total"; "IS-1"; "PA-R / IS-5" ]
  in
  let csv = ref [ [ "tasks"; "pa_sched"; "pa_floorplan"; "pa_total"; "is1"; "is5" ] ] in
  List.iter
    (fun (tasks, runs) ->
      let sched = Stats.mean (arr (fun r -> r.pa_sched_s) runs) in
      let plan = Stats.mean (arr (fun r -> r.pa_plan_s) runs) in
      let is1 = Stats.mean (arr (fun r -> r.is1_s) runs) in
      let is5 = Stats.mean (arr (fun r -> r.is5_s) runs) in
      let cells =
        [
          string_of_int tasks;
          Table.cell_f sched;
          Table.cell_f plan;
          Table.cell_f (sched +. plan);
          Table.cell_f is1;
          Table.cell_f is5;
        ]
      in
      Table.add_row t cells;
      csv := cells :: !csv)
    all;
  Table.print t;
  write_csv "table1.csv" (List.rev !csv)

let print_fig2 all =
  print_endline "";
  print_endline
    "== Figure 2: average schedule execution time [ticks] per group ==";
  let t =
    Table.create [ "# Tasks"; "PA"; "PA-R"; "IS-1"; "IS-5"; "HEFT (extra)" ]
  in
  let csv = ref [ [ "tasks"; "pa"; "par"; "is1"; "is5"; "heft" ] ] in
  List.iter
    (fun (tasks, runs) ->
      let m f = Stats.mean (arr f runs) in
      let cells =
        [
          string_of_int tasks;
          Table.cell_f ~decimals:0 (m (fun r -> r.pa_makespan));
          Table.cell_f ~decimals:0 (m (fun r -> r.par_makespan));
          Table.cell_f ~decimals:0 (m (fun r -> r.is1_makespan));
          Table.cell_f ~decimals:0 (m (fun r -> r.is5_makespan));
          Table.cell_f ~decimals:0 (m (fun r -> r.heft_makespan));
        ]
      in
      Table.add_row t cells;
      csv := cells :: !csv)
    all;
  Table.print t;
  write_csv "fig2.csv" (List.rev !csv)

let improvement_figure ~title ~csv_name ~baseline ~value all =
  print_endline "";
  Printf.printf "== %s ==\n" title;
  let t = Table.create [ "# Tasks"; "improvement"; "stddev" ] in
  let csv = ref [ [ "tasks"; "improvement_pct"; "stddev_pct" ] ] in
  let overall = ref [] in
  List.iter
    (fun (tasks, runs) ->
      let per_instance =
        Array.of_list
          (List.map
             (fun r ->
               Stats.improvement_pct ~baseline:(baseline r) ~value:(value r))
             runs)
      in
      overall := Array.to_list per_instance @ !overall;
      let cells =
        [
          string_of_int tasks;
          Table.cell_pct (Stats.mean per_instance);
          Table.cell_f ~decimals:1 (Stats.stddev per_instance);
        ]
      in
      Table.add_row t cells;
      csv := cells :: !csv)
    all;
  Table.print t;
  let overall_arr = Array.of_list !overall in
  (* The paper reports its Fig. 5 headline over graphs with >= 20 tasks. *)
  let ge20 =
    List.concat_map
      (fun (tasks, runs) ->
        if tasks < 20 then []
        else
          List.map
            (fun r ->
              Stats.improvement_pct ~baseline:(baseline r) ~value:(value r))
            runs)
      all
  in
  let ge20_arr = Array.of_list ge20 in
  Printf.printf
    "  overall average: %s; for >=20 tasks: %s (paper reference in \
     EXPERIMENTS.md)\n"
    (Table.cell_pct (Stats.mean overall_arr))
    (Table.cell_pct (Stats.mean ge20_arr));
  write_csv csv_name (List.rev !csv);
  Stats.mean ge20_arr

(* ------------------------------------------------------------------ *)
(* Figure 6: PA-R convergence traces                                   *)

let print_fig6 () =
  print_endline "";
  Printf.printf
    "== Figure 6: PA-R best makespan over time (budget %.1fs per graph) ==\n"
    fig6_budget;
  let csv = ref [ [ "tasks"; "elapsed_s"; "iteration"; "best_makespan" ] ] in
  List.iter
    (fun tasks ->
      match Suite.group ~seed ~tasks ~count:1 () with
      | [ inst ] ->
        let outcome =
          Pa_random.run ~seed:(seed + tasks) ~budget_seconds:fig6_budget inst
        in
        let points = outcome.Pa_random.trace in
        Printf.printf "  %3d tasks (%d iterations): " tasks
          outcome.Pa_random.iterations;
        List.iter
          (fun (p : Pa_random.trace_point) ->
            Printf.printf "%.2fs->%d  " p.Pa_random.elapsed p.Pa_random.makespan;
            csv :=
              [
                string_of_int tasks;
                Printf.sprintf "%.3f" p.Pa_random.elapsed;
                string_of_int p.Pa_random.iteration;
                string_of_int p.Pa_random.makespan;
              ]
              :: !csv)
          points;
        print_newline ()
      | _ -> assert false)
    [ 20; 40; 60; 80; 100 ];
  write_csv "fig6.csv" (List.rev !csv)

(* ------------------------------------------------------------------ *)
(* Parallel PA-R: jobs=1 vs jobs=N at equal wall-clock budget          *)

(* ------------------------------------------------------------------ *)
(* Parallel PA-R: scaling curve over pooled worker widths              *)

(* Iterations of the deterministic pre-warm run that seeds each width's
   shared cache (see [parallel_comparison]). *)
let par_prewarm_iters = 32

(* Everything observable about an outcome. Budget 0 + fixed
   min_iterations is PA-R's deterministic mode, so equal fingerprints
   mean bit-identical results. *)
let par_fingerprint (o : Pa_random.outcome) =
  ( o.Pa_random.iterations,
    (match o.Pa_random.schedule with
    | Some s ->
      Some
        ( s.Schedule.regions, s.Schedule.slots, s.Schedule.reconfigurations,
          s.Schedule.makespan, s.Schedule.resource_scale )
    | None -> None),
    List.map
      (fun (p : Pa_random.trace_point) ->
        (p.Pa_random.iteration, p.Pa_random.makespan))
      o.Pa_random.trace )

(* One measured width of the scaling curve. *)
type par_width = {
  pw_requested : int;  (* first requested width that mapped here *)
  pw_effective : int;
  pw_rows : (int * int * int) list;  (* tasks, iterations, makespan *)
  pw_cache : Fp_cache.stats;  (* parallel phase only (pre-warm subtracted) *)
  pw_stripes : Fp_cache.stats array;
  pw_read_retries : int;  (* L2 optimistic-read retries, all stripes *)
}

let add_stats (a : Fp_cache.stats) (b : Fp_cache.stats) =
  {
    Fp_cache.l1_hits = a.Fp_cache.l1_hits + b.Fp_cache.l1_hits;
    hits = a.Fp_cache.hits + b.Fp_cache.hits;
    sub_hits = a.Fp_cache.sub_hits + b.Fp_cache.sub_hits;
    misses = a.Fp_cache.misses + b.Fp_cache.misses;
    inserts = a.Fp_cache.inserts + b.Fp_cache.inserts;
  }

let cache_stats_json (st : Fp_cache.stats) =
  Json.Obj
    [
      ("l1_hits", Json.Int st.Fp_cache.l1_hits);
      ("hits", Json.Int st.Fp_cache.hits);
      ("sub_hits", Json.Int st.Fp_cache.sub_hits);
      ("misses", Json.Int st.Fp_cache.misses);
      ("inserts", Json.Int st.Fp_cache.inserts);
      ("hit_rate", Json.float (Fp_cache.hit_rate st));
    ]

(* Measure one effective width across all groups. The pool (resident
   domains, one per worker beyond the caller) is created once and
   reused for every group, so domain spawn/join and first-touch costs
   are paid once per width, and per-domain state (restart arenas,
   cache L1 memos) stays warm across the batch. *)
let par_measure_width ~pin ~requested ~effective insts =
  let cache = Fp_cache.create () in
  let pool =
    if effective > 1 then
      Some (Domain_pool.Pool.create ~pin ~jobs:effective ())
    else None
  in
  let prewarm = ref Fp_cache.zero_stats in
  let rows =
    List.map
      (fun (tasks, inst) ->
        let s = seed + (7 * tasks) in
        (* Deterministic pre-warm of the shared cache: a short
           sequential run with the same seed replays the exact stream
           worker 0 will draw, so the parallel run starts against a
           populated table instead of all-cold misses. Budget 0
           (min_iterations only); its cache activity is subtracted. *)
        let before = Fp_cache.stats cache in
        ignore
          (Pa_random.run ~seed:s ~cache ~min_iterations:par_prewarm_iters
             ~budget_seconds:0. inst);
        prewarm :=
          add_stats !prewarm (Fp_cache.diff (Fp_cache.stats cache) before);
        let o =
          match pool with
          | Some p ->
            Pa_random.run_parallel ~pool:p ~seed:s ~cache
              ~budget_seconds:par_budget_cap inst
          | None ->
            Pa_random.run ~seed:s ~cache ~budget_seconds:par_budget_cap inst
        in
        let ms =
          match o.Pa_random.schedule with
          | Some sched ->
            must_validate (Printf.sprintf "PA-R j%d" effective) sched;
            Schedule.makespan sched
          | None ->
            (* fall back to PA, as a designer would *)
            Schedule.makespan (fst (Pa.run inst))
        in
        (tasks, o.Pa_random.iterations, ms))
      insts
  in
  (match pool with Some p -> Domain_pool.Pool.shutdown p | None -> ());
  {
    pw_requested = requested;
    pw_effective = effective;
    pw_rows = rows;
    pw_cache = Fp_cache.diff (Fp_cache.stats cache) !prewarm;
    pw_stripes = Fp_cache.stripe_stats cache;
    pw_read_retries =
      Array.fold_left ( + ) 0 (Fp_cache.stripe_read_retries cache);
  }

let parallel_comparison () =
  print_endline "";
  let plan = par_plan in
  Printf.printf
    "== Parallel PA-R scaling: widths [%s] at equal budget (%.2fs), pooled \
     workers, shared floorplan cache ==\n"
    (String.concat ";" (List.map string_of_int scale_widths))
    par_budget_cap;
  (* Satellite requirement: a clamped run must be unmissable, both here
     and in the recorded metadata below. *)
  Domain_pool.warn_downgrade ~out:stdout ~label:"parallel PA-R comparison"
    plan;
  let insts =
    List.map
      (fun tasks ->
        match Suite.group ~seed ~tasks ~count:1 () with
        | [ inst ] -> (tasks, inst)
        | _ -> assert false)
      groups
  in
  (* jobs=1 bit-identity: the parallel entry point at width 1 must
     replay the sequential engine exactly, and the sequential engine
     must replay itself (warm restart arenas included). *)
  let bit_identical =
    List.for_all
      (fun (tasks, inst) ->
        let s = seed + (7 * tasks) in
        let direct () =
          par_fingerprint
            (Pa_random.run ~seed:s ~min_iterations:par_prewarm_iters
               ~budget_seconds:0. inst)
        in
        let via_parallel =
          par_fingerprint
            (Pa_random.run_parallel ~jobs:1 ~seed:s
               ~min_iterations:par_prewarm_iters ~budget_seconds:0. inst)
        in
        let a = direct () in
        a = via_parallel && a = direct ())
      insts
  in
  if not bit_identical then
    print_endline "  !! jobs=1 is NOT bit-identical to the sequential engine";
  let pin = Domain_pool.env_pin_default () in
  (* One measurement per *distinct effective* width: on a small machine
     several requested widths clamp to the same fan-out and re-measuring
     the same configuration only adds noise. The requested->effective
     mapping of every width is still recorded. *)
  let specs =
    List.map
      (fun requested ->
        let p = Domain_pool.plan_jobs ~requested () in
        (requested, p.Domain_pool.effective))
      scale_widths
  in
  let measured =
    List.fold_left
      (fun acc (requested, effective) ->
        if List.exists (fun pw -> pw.pw_effective = effective) acc then acc
        else acc @ [ par_measure_width ~pin ~requested ~effective insts ])
      [] specs
  in
  let base =
    match List.find_opt (fun pw -> pw.pw_effective = 1) measured with
    | Some pw -> pw
    | None -> List.hd measured
  in
  let top =
    List.fold_left
      (fun best pw ->
        if pw.pw_effective > best.pw_effective then pw else best)
      base measured
  in
  let row_of pw tasks = List.find (fun (t, _, _) -> t = tasks) pw.pw_rows in
  (* Scaling table: one iters/makespan column pair per measured width. *)
  let t =
    Table.create
      ("# Tasks"
      :: List.concat_map
           (fun pw ->
             [
               Printf.sprintf "iters j%d" pw.pw_effective;
               Printf.sprintf "ms j%d" pw.pw_effective;
             ])
           measured
      @ [ "speedup" ])
  in
  List.iter
    (fun (tasks, _) ->
      let _, base_it, _ = row_of base tasks in
      let _, top_it, _ = row_of top tasks in
      Table.add_row t
        (string_of_int tasks
        :: List.concat_map
             (fun pw ->
               let _, it, ms = row_of pw tasks in
               [ string_of_int it; string_of_int ms ])
             measured
        @ [
            Printf.sprintf "x%.2f"
              (float_of_int top_it /. float_of_int (Stdlib.max 1 base_it));
          ]))
    insts;
  Table.print t;
  let totals pw = List.fold_left (fun a (_, it, _) -> a + it) 0 pw.pw_rows in
  let large_tasks_floor = 60 in
  let large_total pw =
    let sel =
      List.filter (fun (t, _, _) -> t >= large_tasks_floor) pw.pw_rows
    in
    let rows = if sel = [] then pw.pw_rows else sel in
    List.fold_left (fun a (_, it, _) -> a + it) 0 rows
  in
  let measurable = top.pw_effective >= 2 in
  let speedup_large =
    if measurable then
      Some
        (float_of_int (large_total top)
        /. float_of_int (Stdlib.max 1 (large_total base)))
    else None
  in
  let never_worse =
    List.for_all
      (fun (tasks, _) ->
        let _, _, ms1 = row_of base tasks in
        let _, _, msn = row_of top tasks in
        msn <= ms1)
      insts
  in
  (match speedup_large with
  | Some s ->
    Printf.printf
      "  iteration speedup j%d/j1: x%.2f overall, x%.2f on >=%d-task groups\n"
      top.pw_effective
      (float_of_int (totals top) /. float_of_int (Stdlib.max 1 (totals base)))
      s large_tasks_floor
  | None ->
    Printf.printf
      "  scaling NOT MEASURABLE on this machine (1 core): every width \
       clamps to jobs=1; the scaling guard must run on a multi-core host\n");
  List.iter
    (fun pw ->
      Printf.printf
        "  j%d cache: %d L1 + %d exact + %d subsumption hits / %d lookups \
         (%.1f%%), %d L2 read retries\n"
        pw.pw_effective pw.pw_cache.Fp_cache.l1_hits pw.pw_cache.Fp_cache.hits
        pw.pw_cache.Fp_cache.sub_hits
        (Fp_cache.lookups pw.pw_cache)
        (100. *. Fp_cache.hit_rate pw.pw_cache)
        pw.pw_read_retries)
    measured;
  let busy =
    Array.to_list top.pw_stripes
    |> List.filter (fun st -> Fp_cache.lookups st > 0)
  in
  Printf.printf "  j%d cache stripes: %d/%d active, per-stripe hit rates [%s]\n"
    top.pw_effective (List.length busy)
    (Array.length top.pw_stripes)
    (String.concat "; "
       (List.map
          (fun st ->
            Printf.sprintf "%d:%.2f" (Fp_cache.lookups st)
              (Fp_cache.hit_rate st))
          busy));
  write_csv "parallel.csv"
    (("tasks"
     :: List.concat_map
          (fun pw ->
            [
              Printf.sprintf "iters_jobs%d" pw.pw_effective;
              Printf.sprintf "makespan_jobs%d" pw.pw_effective;
            ])
          measured)
    :: List.map
         (fun (tasks, _) ->
           string_of_int tasks
           :: List.concat_map
                (fun pw ->
                  let _, it, ms = row_of pw tasks in
                  [ string_of_int it; string_of_int ms ])
                measured)
         insts);
  (* Champion tracking: fold this run's best per-group makespan into the
     persistent best-known table, tagged with the variant that found
     it. *)
  let candidates =
    List.map
      (fun (tasks, _) ->
        let best_ms, best_pw =
          List.fold_left
            (fun (bm, bp) pw ->
              let _, _, ms = row_of pw tasks in
              if ms < bm then (ms, pw) else (bm, bp))
            (max_int, base) measured
        in
        ( tasks,
          best_ms,
          Json.Obj
            [
              ("jobs", Json.Int best_pw.pw_effective);
              ("seed", Json.Int (seed + (7 * tasks)));
              ("budget_seconds", Json.float par_budget_cap);
              ( "shrink_factor",
                Json.float Pa.default_config.Pa.shrink_factor );
            ] ))
      insts
  in
  let improved = Champions.update ~run_id:(Run_store.active_id ()) candidates in
  (match improved with
  | [] -> print_endline "  champions: no group improved on the best known"
  | l ->
    List.iter
      (fun (tasks, old_ms, new_ms) ->
        match old_ms with
        | None ->
          Printf.printf "  champions: %d tasks -> %d (first record)\n" tasks
            new_ms
        | Some o ->
          Printf.printf "  champions: %d tasks improved %d -> %d\n" tasks o
            new_ms)
      l);
  (* Machine-readable record. Honest-parallelism metadata (cores,
     requested and effective widths, downgrade flag) is mandatory: the
     check subcommand refuses runs whose recorded cores are below what a
     scaling claim needs. *)
  let width_json pw =
    Json.Obj
      [
        ("jobs_requested", Json.Int pw.pw_requested);
        ("jobs_effective", Json.Int pw.pw_effective);
        ( "rows",
          Json.List
            (List.map
               (fun (tasks, it, ms) ->
                 Json.Obj
                   [
                     ("tasks", Json.Int tasks);
                     ("iterations", Json.Int it);
                     ("makespan", Json.Int ms);
                   ])
               pw.pw_rows) );
        ("total_iterations", Json.Int (totals pw));
        ("cache", cache_stats_json pw.pw_cache);
        ("l2_read_retries", Json.Int pw.pw_read_retries);
        ( "stripes",
          Json.List
            (Array.to_list
               (Array.map
                  (fun st ->
                    Json.Obj
                      [
                        ("lookups", Json.Int (Fp_cache.lookups st));
                        ("hit_rate", Json.float (Fp_cache.hit_rate st));
                      ])
                  pw.pw_stripes)) );
      ]
  in
  Run_store.write_section_json ~section:"parallel"
    (Json.Obj
       [
         ("section", Json.String "parallel");
         ("seed", Json.Int seed);
         ("budget_seconds", Json.float par_budget_cap);
         ("cores", Json.Int plan.Domain_pool.cores);
         ("jobs_requested", Json.Int plan.Domain_pool.requested);
         ("jobs_effective", Json.Int plan.Domain_pool.effective);
         ("downgraded", Json.Bool (Domain_pool.downgraded plan));
         ("pinned", Json.Bool (pin && Domain_pool.pin_available ()));
         ("prewarm_iterations", Json.Int par_prewarm_iters);
         ("jobs1_bit_identical", Json.Bool bit_identical);
         ("parallel_measurable", Json.Bool measurable);
         ( "requested_widths",
           Json.List
             (List.map
                (fun (requested, effective) ->
                  Json.Obj
                    [
                      ("requested", Json.Int requested);
                      ("effective", Json.Int effective);
                      ("downgraded", Json.Bool (effective < requested));
                    ])
                specs) );
         ("measurements", Json.List (List.map width_json measured));
         ( "totals",
           Json.Obj
             [
               ("iters_jobs1", Json.Int (totals base));
               ("iters_jobsN", Json.Int (totals top));
               ( "iteration_speedup",
                 Json.float
                   (float_of_int (totals top)
                   /. float_of_int (Stdlib.max 1 (totals base))) );
             ] );
         ("never_worse", Json.Bool never_worse);
         ("large_tasks_floor", Json.Int large_tasks_floor);
         ( "speedup_large_groups",
           match speedup_large with Some s -> Json.float s | None -> Json.Null
         );
       ])

(* ------------------------------------------------------------------ *)
(* Iteration throughput: incremental engine vs from-scratch oracle     *)

type iter_row = {
  ir_tasks : int;
  ir_iters : int;
  ir_s_new : float;
  ir_s_old : float;
  ir_ms_new : int;
  ir_ms_old : int;
  ir_identical : bool;
  ir_hits : int;
  ir_sub_hits : int;
  ir_misses : int;
  ir_mw_new : float;  (* minor words / iteration, SoA kernel *)
  ir_mw_old : float;  (* minor words / iteration, boxed oracle *)
}

let words_per_iter (o : Pa_random.outcome) =
  o.Pa_random.minor_words /. float_of_int (Stdlib.max 1 o.Pa_random.iterations)

(* Everything that must coincide between the two engines for a fixed
   (seed, min_iterations, budget = 0) run — elapsed times excluded. *)
let iter_fingerprint (o : Pa_random.outcome) =
  ( o.Pa_random.iterations,
    (match o.Pa_random.schedule with
    | Some s -> Schedule.makespan s
    | None -> -1),
    List.map
      (fun (p : Pa_random.trace_point) ->
        (p.Pa_random.iteration, p.Pa_random.makespan))
      o.Pa_random.trace )

let iteration_comparison () =
  print_endline "";
  Printf.printf
    "== Restart iteration throughput: incremental solver + context arena \
     vs from-scratch (jobs=1, %d iterations each, budget 0) ==\n"
    iter_min;
  let t =
    Table.create
      [ "# Tasks"; "iters"; "new [s]"; "old [s]"; "iters/s new";
        "iters/s old"; "speedup"; "words/it new"; "words/it old"; "alloc x";
        "makespan"; "identical" ]
  in
  let rows =
    List.map
      (fun tasks ->
        match Suite.group ~seed ~tasks ~count:1 () with
        | [ inst ] ->
          let s = seed + (13 * tasks) in
          (* One floorplan cache per group, shared between the two runs:
             both engines emit bit-identical candidate streams, so the
             second run's floorplan checks replay the first run's keys.
             The incremental engine runs FIRST so it is the one paying
             the cold misses — the measured speedup is conservative. *)
          let cache = Fp_cache.create () in
          let run incremental =
            timed (fun () ->
                Pa_random.run ~seed:s ~min_iterations:iter_min ~cache
                  ~incremental ~budget_seconds:0. inst)
          in
          (* Untimed warm-up (throwaway cache) so neither engine pays the
             allocator's first-touch growth inside its timed window. *)
          let warm = Stdlib.min 10 iter_min in
          ignore
            (Pa_random.run ~seed:s ~min_iterations:warm
               ~cache:(Fp_cache.create ()) ~incremental:true
               ~budget_seconds:0. inst);
          ignore
            (Pa_random.run ~seed:s ~min_iterations:warm
               ~cache:(Fp_cache.create ()) ~incremental:false
               ~budget_seconds:0. inst);
          let new_o, s_new = run true in
          let old_o, s_old = run false in
          let makespan_of label (o : Pa_random.outcome) =
            match o.Pa_random.schedule with
            | Some sched ->
              must_validate label sched;
              Schedule.makespan sched
            | None -> -1
          in
          let ms_new = makespan_of "PA-R incremental" new_o in
          let ms_old = makespan_of "PA-R from-scratch" old_o in
          let identical = iter_fingerprint new_o = iter_fingerprint old_o in
          let st = Fp_cache.stats cache in
          let row =
            {
              ir_tasks = tasks;
              ir_iters = new_o.Pa_random.iterations;
              ir_s_new = s_new;
              ir_s_old = s_old;
              ir_ms_new = ms_new;
              ir_ms_old = ms_old;
              ir_identical = identical;
              ir_hits = st.Fp_cache.hits;
              ir_sub_hits = st.Fp_cache.sub_hits;
              ir_misses = st.Fp_cache.misses;
              ir_mw_new = words_per_iter new_o;
              ir_mw_old = words_per_iter old_o;
            }
          in
          let per_s sec =
            float_of_int row.ir_iters /. Float.max sec 1e-9
          in
          Table.add_row t
            [
              string_of_int tasks;
              string_of_int row.ir_iters;
              Table.cell_f s_new;
              Table.cell_f s_old;
              Table.cell_f ~decimals:0 (per_s s_new);
              Table.cell_f ~decimals:0 (per_s s_old);
              Printf.sprintf "x%.2f" (s_old /. Float.max s_new 1e-9);
              Table.cell_f ~decimals:0 row.ir_mw_new;
              Table.cell_f ~decimals:0 row.ir_mw_old;
              Printf.sprintf "x%.1f" (row.ir_mw_old /. Float.max row.ir_mw_new 1e-9);
              string_of_int ms_new;
              (if identical then "yes" else "NO");
            ];
          row
        | _ -> assert false)
      groups
  in
  Table.print t;
  (* The timed groups above run on the zedboard fabric, which fits every
     improving candidate at full scale: the shrink lattice never engages
     and the only cache reuse is the second engine's exact-key replay of
     the first. On a half-size fabric (microzed, impl areas refitted to
     it) the device saturates, the lattice oscillates, and the
     subsumption index answers the re-probes: scaled-down candidates
     embed into stored feasible sets and scale-up probes dominate stored
     infeasible ones. Same two-run shared-cache structure, untimed —
     this batch only measures cache behaviour. *)
  let sat_params =
    { Suite.default_params with Suite.clb_min = 1000; clb_max = 2500 }
  in
  let sat_rows =
    List.map
      (fun tasks ->
        match
          Suite.group ~params:sat_params ~arch:Arch.microzed ~seed ~tasks
            ~count:1 ()
        with
        | [ inst ] ->
          let cache = Fp_cache.create () in
          let s = seed + (13 * tasks) in
          List.iter
            (fun incremental ->
              ignore
                (Pa_random.run ~seed:s ~min_iterations:iter_min ~cache
                   ~incremental ~budget_seconds:0. inst))
            [ true; false ];
          (tasks, Fp_cache.stats cache)
        | _ -> assert false)
      groups
  in
  let timed_hits = List.fold_left (fun a r -> a + r.ir_hits) 0 rows
  and timed_sub = List.fold_left (fun a r -> a + r.ir_sub_hits) 0 rows
  and timed_misses = List.fold_left (fun a r -> a + r.ir_misses) 0 rows in
  let sat_hits =
    List.fold_left (fun a (_, st) -> a + st.Fp_cache.hits) 0 sat_rows
  and sat_sub =
    List.fold_left (fun a (_, st) -> a + st.Fp_cache.sub_hits) 0 sat_rows
  and sat_misses =
    List.fold_left (fun a (_, st) -> a + st.Fp_cache.misses) 0 sat_rows
  in
  let total_hits = timed_hits + sat_hits
  and total_sub = timed_sub + sat_sub
  and total_misses = timed_misses + sat_misses in
  let total_lookups = total_hits + total_sub + total_misses in
  let pct h s m =
    100. *. float_of_int (h + s) /. float_of_int (Stdlib.max 1 (h + s + m))
  in
  Printf.printf
    "  floorplan cache, timed groups (shared per group across both \
     engines): %d exact + %d subsumption / %d lookups (%.1f%%)\n"
    timed_hits timed_sub
    (timed_hits + timed_sub + timed_misses)
    (pct timed_hits timed_sub timed_misses);
  Printf.printf
    "  floorplan cache, saturated fabric (xc7z010): %d exact + %d \
     subsumption / %d lookups (%.1f%%)\n"
    sat_hits sat_sub
    (sat_hits + sat_sub + sat_misses)
    (pct sat_hits sat_sub sat_misses);
  Printf.printf
    "  floorplan cache combined: %d exact + %d subsumption / %d lookups \
     (%.1f%% combined)\n"
    total_hits total_sub total_lookups
    (pct total_hits total_sub total_misses);
  write_csv "iteration.csv"
    ([ "tasks"; "iterations"; "seconds_new"; "seconds_old"; "speedup";
       "minor_words_per_iter_new"; "minor_words_per_iter_old"; "alloc_ratio";
       "makespan_new"; "makespan_old"; "identical"; "cache_hits";
       "cache_sub_hits"; "cache_misses" ]
    :: List.map
         (fun r ->
           [
             string_of_int r.ir_tasks;
             string_of_int r.ir_iters;
             Printf.sprintf "%.4f" r.ir_s_new;
             Printf.sprintf "%.4f" r.ir_s_old;
             Printf.sprintf "%.3f" (r.ir_s_old /. Float.max r.ir_s_new 1e-9);
             Printf.sprintf "%.0f" r.ir_mw_new;
             Printf.sprintf "%.0f" r.ir_mw_old;
             Printf.sprintf "%.2f" (r.ir_mw_old /. Float.max r.ir_mw_new 1e-9);
             string_of_int r.ir_ms_new;
             string_of_int r.ir_ms_old;
             string_of_bool r.ir_identical;
             string_of_int r.ir_hits;
             string_of_int r.ir_sub_hits;
             string_of_int r.ir_misses;
           ])
         rows);
  (* Machine-readable record; CI's never-worse guard reads this. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"seed\": %d,\n" seed;
  Printf.bprintf buf "  \"min_iterations\": %d,\n" iter_min;
  Buffer.add_string buf "  \"groups\": [\n";
  List.iteri
    (fun i r ->
      let hit_rate =
        float_of_int (r.ir_hits + r.ir_sub_hits)
        /. float_of_int
             (Stdlib.max 1 (r.ir_hits + r.ir_sub_hits + r.ir_misses))
      in
      Printf.bprintf buf
        "    {\"tasks\": %d, \"iterations\": %d, \"seconds_new\": %.4f, \
         \"seconds_old\": %.4f, \"iters_per_s_new\": %.1f, \
         \"iters_per_s_old\": %.1f, \"speedup\": %.3f, \
         \"minor_words_per_iter_new\": %.0f, \
         \"minor_words_per_iter_old\": %.0f, \"alloc_ratio\": %.2f, \
         \"makespan_new\": %d, \"makespan_old\": %d, \"identical\": %b, \
         \"cache\": {\"hits\": %d, \"sub_hits\": %d, \"misses\": %d, \
         \"hit_rate\": %.3f}}%s\n"
        r.ir_tasks r.ir_iters r.ir_s_new r.ir_s_old
        (float_of_int r.ir_iters /. Float.max r.ir_s_new 1e-9)
        (float_of_int r.ir_iters /. Float.max r.ir_s_old 1e-9)
        (r.ir_s_old /. Float.max r.ir_s_new 1e-9)
        r.ir_mw_new r.ir_mw_old
        (r.ir_mw_old /. Float.max r.ir_mw_new 1e-9)
        r.ir_ms_new r.ir_ms_old r.ir_identical r.ir_hits r.ir_sub_hits
        r.ir_misses hit_rate
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf "  \"all_identical\": %b,\n"
    (List.for_all (fun r -> r.ir_identical) rows);
  Printf.bprintf buf "  \"never_worse\": %b,\n"
    (List.for_all (fun r -> r.ir_ms_new <= r.ir_ms_old) rows);
  let largest =
    List.fold_left (fun acc r -> if r.ir_tasks > acc.ir_tasks then r else acc)
      (List.hd rows) rows
  in
  Printf.bprintf buf
    "  \"largest_group\": {\"tasks\": %d, \"speedup\": %.3f},\n"
    largest.ir_tasks
    (largest.ir_s_old /. Float.max largest.ir_s_new 1e-9);
  (* Allocation-regression gate inputs (`bench check
     --max-minor-words-per-iter`): worst SoA-kernel words/iteration over
     the groups, and the smallest boxed/SoA reduction. *)
  let max_mw =
    List.fold_left (fun acc r -> Float.max acc r.ir_mw_new) 0. rows
  in
  let min_ratio =
    List.fold_left
      (fun acc r ->
        Float.min acc (r.ir_mw_old /. Float.max r.ir_mw_new 1e-9))
      infinity rows
  in
  Printf.bprintf buf
    "  \"alloc\": {\"max_minor_words_per_iter\": %.0f, \"min_alloc_ratio\": \
     %.2f},\n"
    max_mw min_ratio;
  Buffer.add_string buf "  \"saturated_groups\": [\n";
  List.iteri
    (fun i (tasks, (st : Fp_cache.stats)) ->
      Printf.bprintf buf
        "    {\"tasks\": %d, \"cache\": {\"hits\": %d, \"sub_hits\": %d, \
         \"misses\": %d, \"hit_rate\": %.3f}}%s\n"
        tasks st.Fp_cache.hits st.Fp_cache.sub_hits st.Fp_cache.misses
        (pct st.Fp_cache.hits st.Fp_cache.sub_hits st.Fp_cache.misses
        /. 100.)
        (if i = List.length sat_rows - 1 then "" else ","))
    sat_rows;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf
    "  \"cache\": {\"hits\": %d, \"sub_hits\": %d, \"misses\": %d, \
     \"hit_rate\": %.3f, \"timed\": {\"hits\": %d, \"sub_hits\": %d, \
     \"misses\": %d}, \"saturated\": {\"hits\": %d, \"sub_hits\": %d, \
     \"misses\": %d}}\n"
    total_hits total_sub total_misses
    (float_of_int (total_hits + total_sub)
    /. float_of_int (Stdlib.max 1 total_lookups))
    timed_hits timed_sub timed_misses sat_hits sat_sub sat_misses;
  Buffer.add_string buf "}\n";
  Run_store.write_section ~section:"iteration" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Delta move kernel: moves/s against the from-scratch oracle, plus    *)
(* LNS-vs-PA-R at equal wall budget                                    *)

type moves_row = {
  mv_tasks : int;
  mv_moves : int;
  mv_applied : int;
  mv_s_inc : float;
  mv_s_orc : float;
  mv_s_pipe : float;
  mv_divergences : int;
  mv_ms_par : int;
  mv_ms_lns : int;
  mv_lns_improved : int;
}

(* Drive [n] proposals from a fresh [seed]-derived stream through
   apply-then-rollback — the state never drifts, so the incremental and
   oracle arms see the exact same proposal sequence. Returns how many
   were structurally accepted. *)
let drive_moves d ~incremental ~seed ~n =
  let rng = Rng.create seed in
  let applied = ref 0 in
  for _ = 1 to n do
    match Delta.apply ~incremental d (Lns.propose d rng) with
    | Some _ ->
      incr applied;
      Delta.rollback d
    | None -> ()
  done;
  !applied

(* The honest "no delta state" baseline: what a neighborhood search
   pays per candidate without the kernel — materialize the neighbor and
   re-ingest it through the whole from-scratch pipeline (full re-time +
   unconditional floorplan verification), exactly the boxed restart
   path the iteration section oracles against. *)
let drive_moves_pipeline d ~config ~seed ~n =
  let rng = Rng.create seed in
  let applied = ref 0 in
  for _ = 1 to n do
    match Delta.apply ~incremental:false d (Lns.propose d rng) with
    | Some _ ->
      incr applied;
      let sc = Delta.to_schedule d in
      ignore (Delta.of_schedule ~config sc);
      Delta.rollback d
    | None -> ()
  done;
  !applied

let moves_comparison () =
  print_endline "";
  Printf.printf
    "== Delta move kernel: O(affected-suffix) re-evaluation vs full \
     re-timing (%d moves/instance), and LNS-vs-PA-R at equal budget \
     (%.1fs/instance) ==\n"
    moves_per_instance lns_budget;
  let t =
    Table.create
      [ "# Tasks"; "moves"; "applied"; "inc [s]"; "orc [s]"; "pipe [s]";
        "moves/s inc"; "x orc"; "x pipe"; "diverge"; "PA-R"; "LNS"; "delta" ]
  in
  let rows =
    List.map
      (fun tasks ->
        match Suite.group ~seed ~tasks ~count:1 () with
        | [ inst ] ->
          let s = seed + (29 * tasks) in
          let sched, _ = Pa.run inst in
          must_validate "PA seed" sched;
          let state () =
            (* verdict-transparent cache, fresh per arm: both arms pay
               identical cold misses for identical demand multisets *)
            let config =
              { Delta.default_config with
                Delta.cache = Some (Fp_cache.create ~subsumption:false ()) }
            in
            Delta.of_schedule ~config sched
          in
          let d_inc = state () and d_orc = state () and d_pipe = state () in
          let config_pipe =
            { Delta.default_config with
              Delta.cache = Some (Fp_cache.create ~subsumption:false ()) }
          in
          (* Warm-up with the FULL stream: apply-then-rollback returns to
             the base state, so the timed pass replays the identical
             proposal sequence against a hot floorplan cache. Cold-miss
             floorplanning is the same exact packing solver in all arms
             (and is gated by the same needs-changed test), so leaving it
             in the window would only add identical noise that masks the
             evaluator difference being measured. *)
          ignore (drive_moves d_inc ~incremental:true ~seed:s
                    ~n:moves_per_instance);
          ignore (drive_moves d_orc ~incremental:false ~seed:s
                    ~n:moves_per_instance);
          ignore (drive_moves_pipeline d_pipe ~config:config_pipe ~seed:s
                    ~n:moves_per_instance);
          let applied, s_inc =
            timed (fun () ->
                drive_moves d_inc ~incremental:true ~seed:s
                  ~n:moves_per_instance)
          in
          let applied_orc, s_orc =
            timed (fun () ->
                drive_moves d_orc ~incremental:false ~seed:s
                  ~n:moves_per_instance)
          in
          let _applied_pipe, s_pipe =
            timed (fun () ->
                drive_moves_pipeline d_pipe ~config:config_pipe ~seed:s
                  ~n:moves_per_instance)
          in
          (* Divergence audit (untimed): replay the same stream once
             more, this time committing both arms and comparing their
             verdicts, resolved times and full fingerprints. *)
          let divergences = ref 0 in
          if applied <> applied_orc then incr divergences;
          let rng = Rng.create s in
          for _ = 1 to moves_per_instance do
            let mv = Lns.propose d_inc rng in
            let vi = Delta.apply ~incremental:true d_inc mv in
            let vo = Delta.apply ~incremental:false d_orc mv in
            (match (vi, vo) with
            | Some a, Some b ->
              if
                a.Delta.makespan <> b.Delta.makespan
                || (not (Delta.verify d_inc))
                || not (String.equal (Delta.fingerprint d_inc)
                          (Delta.fingerprint d_orc))
              then incr divergences;
              Delta.commit d_inc;
              Delta.commit d_orc
            | None, None -> ()
            | Some _, None | None, Some _ -> incr divergences)
          done;
          (* LNS vs PA-R at equal wall budget: all of it on restarts,
             or half on restarts and half on annealing the incumbent. *)
          let par =
            Pa_random.run ~seed:s ~cache:(Fp_cache.create ())
              ~budget_seconds:lns_budget inst
          in
          let ms_par =
            match par.Pa_random.schedule with
            | Some sc ->
              must_validate "PA-R (moves)" sc;
              Schedule.makespan sc
            | None -> Schedule.makespan sched
          in
          (* Same total wall budget as the PA-R arm, split 70/30: most
             of it on the restart search that annealing cannot imitate,
             the rest on move-level polish of the incumbent. The cache
             is shared across both phases and keeps subsumption on, the
             same configuration the PA-R arm runs with — this arm makes
             a quality claim, not a bit-identity audit. *)
          let lns_cache = Fp_cache.create () in
          let seed_budget = 0.7 *. lns_budget in
          let lns_seed_outcome =
            Pa_random.run ~seed:s ~cache:lns_cache ~budget_seconds:seed_budget
              inst
          in
          let lns_seed =
            match lns_seed_outcome.Pa_random.schedule with
            | Some sc -> sc
            | None -> sched
          in
          let lns =
            Lns.polish
              ~config:
                { Delta.default_config with Delta.cache = Some lns_cache }
              ~seed:s
              ~budget_seconds:(lns_budget -. seed_budget)
              lns_seed
          in
          let ms_lns =
            match lns.Lns.schedule with
            | Some sc ->
              must_validate "LNS (moves)" sc;
              Schedule.makespan sc
            | None -> Schedule.makespan lns_seed
          in
          let row =
            {
              mv_tasks = tasks;
              mv_moves = moves_per_instance;
              mv_applied = applied;
              mv_s_inc = s_inc;
              mv_s_orc = s_orc;
              mv_s_pipe = s_pipe;
              mv_divergences = !divergences;
              mv_ms_par = ms_par;
              mv_ms_lns = ms_lns;
              mv_lns_improved = lns.Lns.stats.Lns.improvements;
            }
          in
          let per_s sec =
            float_of_int moves_per_instance /. Float.max sec 1e-9
          in
          Table.add_row t
            [
              string_of_int tasks;
              string_of_int moves_per_instance;
              string_of_int applied;
              Table.cell_f s_inc;
              Table.cell_f s_orc;
              Table.cell_f s_pipe;
              Table.cell_f ~decimals:0 (per_s s_inc);
              Printf.sprintf "x%.1f" (s_orc /. Float.max s_inc 1e-9);
              Printf.sprintf "x%.1f" (s_pipe /. Float.max s_inc 1e-9);
              string_of_int !divergences;
              string_of_int ms_par;
              string_of_int ms_lns;
              string_of_int (ms_lns - ms_par);
            ];
          row
        | _ -> assert false)
      groups
  in
  Table.print t;
  let speedup_orc r = r.mv_s_orc /. Float.max r.mv_s_inc 1e-9 in
  let speedup_pipe r = r.mv_s_pipe /. Float.max r.mv_s_inc 1e-9 in
  let min_speedup =
    List.fold_left (fun acc r -> Float.min acc (speedup_pipe r)) infinity rows
  in
  let min_speedup_orc =
    List.fold_left (fun acc r -> Float.min acc (speedup_orc r)) infinity rows
  in
  let total_div = List.fold_left (fun a r -> a + r.mv_divergences) 0 rows in
  let lns_never_worse =
    List.for_all (fun r -> r.mv_ms_lns <= r.mv_ms_par) rows
  in
  Printf.printf
    "\nsummary: min speedup x%.1f vs full pipeline (x%.1f vs in-kernel \
     oracle), %d divergence(s), LNS %s PA-R at equal budget on every group\n"
    min_speedup min_speedup_orc total_div
    (if lns_never_worse then "<=" else "WORSE THAN");
  write_csv "moves.csv"
    ([ "tasks"; "moves"; "applied"; "s_incremental"; "s_oracle"; "s_pipeline";
       "speedup_vs_oracle"; "speedup_vs_pipeline"; "divergences";
       "makespan_par"; "makespan_lns" ]
    :: List.map
         (fun r ->
           [
             string_of_int r.mv_tasks; string_of_int r.mv_moves;
             string_of_int r.mv_applied;
             Printf.sprintf "%.6f" r.mv_s_inc;
             Printf.sprintf "%.6f" r.mv_s_orc;
             Printf.sprintf "%.6f" r.mv_s_pipe;
             Printf.sprintf "%.3f" (speedup_orc r);
             Printf.sprintf "%.3f" (speedup_pipe r);
             string_of_int r.mv_divergences;
             string_of_int r.mv_ms_par; string_of_int r.mv_ms_lns;
           ])
         rows);
  Run_store.write_section_json ~section:"moves"
    (Json.Obj
       [
         ("section", Json.String "moves");
         ("seed", Json.Int seed);
         ("moves_per_instance", Json.Int moves_per_instance);
         ("lns_budget_seconds", Json.float lns_budget);
         ( "groups",
           Json.List
             (List.map
                (fun r ->
                  Json.Obj
                    [
                      ("tasks", Json.Int r.mv_tasks);
                      ("moves", Json.Int r.mv_moves);
                      ("applied", Json.Int r.mv_applied);
                      ("s_incremental", Json.float r.mv_s_inc);
                      ("s_oracle", Json.float r.mv_s_orc);
                      ("s_pipeline", Json.float r.mv_s_pipe);
                      ( "moves_per_s_incremental",
                        Json.float
                          (float_of_int r.mv_moves /. Float.max r.mv_s_inc 1e-9)
                      );
                      ( "moves_per_s_oracle",
                        Json.float
                          (float_of_int r.mv_moves /. Float.max r.mv_s_orc 1e-9)
                      );
                      ( "moves_per_s_pipeline",
                        Json.float
                          (float_of_int r.mv_moves
                          /. Float.max r.mv_s_pipe 1e-9) );
                      ("speedup_vs_oracle", Json.float (speedup_orc r));
                      ("speedup_vs_pipeline", Json.float (speedup_pipe r));
                      ("speedup", Json.float (speedup_pipe r));
                      ("divergences", Json.Int r.mv_divergences);
                      ("makespan_par", Json.Int r.mv_ms_par);
                      ("makespan_lns", Json.Int r.mv_ms_lns);
                      ("lns_improvements", Json.Int r.mv_lns_improved);
                      ( "lns_not_worse",
                        Json.Bool (r.mv_ms_lns <= r.mv_ms_par) );
                    ])
                rows) );
         ("min_speedup", Json.float min_speedup);
         ("min_speedup_vs_oracle", Json.float min_speedup_orc);
         ("divergences", Json.Int total_div);
         ("all_agree", Json.Bool (total_div = 0));
         ("lns_never_worse", Json.Bool lns_never_worse);
       ])

(* ------------------------------------------------------------------ *)
(* Batch engine: a manifest of instances over one worker fleet         *)

let batch_comparison () =
  print_endline "";
  let module Batch = Resched_core.Batch in
  let iters =
    Stdlib.max 1 (env_int "RESCHED_BATCH_ITER" (Stdlib.min iter_min 300))
  in
  let jobs = par_jobs in
  let insts =
    List.concat_map
      (fun tasks ->
        List.mapi
          (fun i inst -> (tasks, i, inst))
          (Suite.group ~seed ~tasks ~count:graphs_per_group ()))
      groups
  in
  let requests =
    Array.of_list
      (List.map
         (fun (tasks, i, inst) ->
           Batch.request ~seed:(seed + (13 * tasks) + i) ~min_iterations:iters
             inst)
         insts)
  in
  Printf.printf
    "== Batch engine: %d instances (%d iterations each) on %d worker(s) vs \
     sequential one-at-a-time ==\n"
    (Array.length requests) iters jobs;
  let pin = Domain_pool.env_pin_default () in
  let pool = Domain_pool.Pool.create ~pin ~jobs () in
  (* Untimed warm-up on both engines: first-touch arena growth, pool
     spawn and per-domain context creation stay out of the timed
     windows. *)
  let warm_requests =
    Array.map
      (fun (r : Batch.request) ->
        { r with Batch.min_iterations = Stdlib.min 10 iters })
      requests
  in
  ignore
    (Batch.run ~cache:(Fp_cache.create ~subsumption:false ()) ~pool
       warm_requests);
  Array.iter
    (fun (r : Batch.request) ->
      ignore
        (Pa_random.run ~seed:r.Batch.seed
           ~min_iterations:(Stdlib.min 10 iters)
           ~cache:(Fp_cache.create ~subsumption:false ())
           ~budget_seconds:0. r.Batch.instance))
    requests;
  (* Batch first, on a cold floorplan cache of its own: it pays the cold
     misses, the sequential baseline gets equally-cold ones — separate
     caches per engine keep the timing comparison honest. Both are
     verdict-transparent (no subsumption), the mode the batch identity
     contract requires. *)
  let (batch_outcomes, bstats), s_batch =
    timed (fun () ->
        Batch.run ~cache:(Fp_cache.create ~subsumption:false ()) ~pool
          requests)
  in
  Domain_pool.Pool.shutdown pool;
  let seq_outcomes, s_seq =
    timed (fun () ->
        let cache = Fp_cache.create ~subsumption:false () in
        Array.map
          (fun (r : Batch.request) ->
            Pa_random.run ~seed:r.Batch.seed
              ~min_iterations:r.Batch.min_iterations ~cache ~budget_seconds:0.
              r.Batch.instance)
          requests)
  in
  let n = Array.length requests in
  let identical = Array.make n false in
  for i = 0 to n - 1 do
    identical.(i) <- iter_fingerprint batch_outcomes.(i) = iter_fingerprint seq_outcomes.(i)
  done;
  let t =
    Table.create [ "# Tasks"; "insts"; "iters"; "identical"; "makespans" ]
  in
  List.iter
    (fun tasks ->
      let idxs =
        List.filteri (fun i _ -> let t', _, _ = List.nth insts i in t' = tasks)
          (List.init n (fun i -> i))
      in
      let iters_sum =
        List.fold_left
          (fun acc i -> acc + batch_outcomes.(i).Pa_random.iterations)
          0 idxs
      in
      let all_id = List.for_all (fun i -> identical.(i)) idxs in
      let makespans =
        String.concat " "
          (List.map
             (fun i ->
               match batch_outcomes.(i).Pa_random.schedule with
               | Some s -> string_of_int (Schedule.makespan s)
               | None -> "-")
             idxs)
      in
      Table.add_row t
        [
          string_of_int tasks;
          string_of_int (List.length idxs);
          string_of_int iters_sum;
          (if all_id then "yes" else "NO");
          makespans;
        ])
    groups;
  Table.print t;
  let total_iters = bstats.Batch.total_iterations in
  let mw_batch =
    bstats.Batch.total_minor_words /. float_of_int (Stdlib.max 1 total_iters)
  in
  let seq_iters =
    Array.fold_left (fun a (o : Pa_random.outcome) -> a + o.Pa_random.iterations)
      0 seq_outcomes
  in
  let mw_seq =
    Array.fold_left
      (fun a (o : Pa_random.outcome) -> a +. o.Pa_random.minor_words)
      0. seq_outcomes
    /. float_of_int (Stdlib.max 1 seq_iters)
  in
  let all_identical = Array.for_all (fun b -> b) identical in
  let speedup = s_seq /. Float.max s_batch 1e-9 in
  Printf.printf
    "  batch: %.3fs (%.1f instances/s, %d slices of %d), sequential: %.3fs \
     (%.1f instances/s) -> x%.2f\n"
    s_batch
    (float_of_int n /. Float.max s_batch 1e-9)
    bstats.Batch.total_slices bstats.Batch.slice s_seq
    (float_of_int n /. Float.max s_seq 1e-9)
    speedup;
  Printf.printf
    "  allocation: %.0f minor words/iter (batch, worker domains) vs %.0f \
     (sequential); per-instance results %s\n"
    mw_batch mw_seq
    (if all_identical then "bit-identical" else "DIVERGED");
  write_csv "batch.csv"
    ([ "tasks"; "idx"; "seed"; "iterations"; "makespan"; "identical" ]
    :: List.mapi
         (fun i (tasks, idx, _) ->
           [
             string_of_int tasks;
             string_of_int idx;
             string_of_int requests.(i).Batch.seed;
             string_of_int batch_outcomes.(i).Pa_random.iterations;
             (match batch_outcomes.(i).Pa_random.schedule with
             | Some s -> string_of_int (Schedule.makespan s)
             | None -> "-1");
             string_of_bool identical.(i);
           ])
         insts);
  let p = par_plan in
  Run_store.write_section_json ~section:"batch"
    (Json.Obj
       [
         ("schema", Json.String "resched-bench-batch/1");
         ("seed", Json.Int seed);
         ("min_iterations", Json.Int iters);
         ("jobs", Json.Int jobs);
         ("cores", Json.Int p.Domain_pool.cores);
         ("slice", Json.Int bstats.Batch.slice);
         ( "instances",
           Json.List
             (List.mapi
                (fun i (tasks, idx, _) ->
                  Json.Obj
                    [
                      ("tasks", Json.Int tasks);
                      ("idx", Json.Int idx);
                      ("seed", Json.Int requests.(i).Batch.seed);
                      ( "iterations",
                        Json.Int batch_outcomes.(i).Pa_random.iterations );
                      ( "makespan",
                        match batch_outcomes.(i).Pa_random.schedule with
                        | Some s -> Json.Int (Schedule.makespan s)
                        | None -> Json.Null );
                      ("identical", Json.Bool identical.(i));
                    ])
                insts) );
         ( "totals",
           Json.Obj
             [
               ("instances", Json.Int n);
               ("iterations", Json.Int total_iters);
               ("slices", Json.Int bstats.Batch.total_slices);
               ("batch_seconds", Json.float s_batch);
               ("seq_seconds", Json.float s_seq);
               ( "instances_per_s_batch",
                 Json.float (float_of_int n /. Float.max s_batch 1e-9) );
               ( "instances_per_s_seq",
                 Json.float (float_of_int n /. Float.max s_seq 1e-9) );
               ("minor_words_per_iter_batch", Json.float mw_batch);
               ("minor_words_per_iter_seq", Json.float mw_seq);
             ] );
         ("speedup", Json.float speedup);
         ( "parallel_measurable",
           Json.Bool (jobs >= 2 && p.Domain_pool.cores >= 2) );
         ("all_identical", Json.Bool all_identical);
       ])

(* ------------------------------------------------------------------ *)
(* Serve: the resident daemon under 1x/2x/4x offered load              *)

type serve_row = {
  sv_load : int;
  sv_interarrival_ms : float;
  sv_accepted : int;
  sv_completed : int;
  sv_failed : int;
  sv_shed : (string * int) list;  (* reason -> count, protocol order *)
  sv_degrade : int array;  (* completions per rung 0..2 *)
  sv_p50_ms : float;
  sv_p95_ms : float;
  sv_p99_ms : float;
  sv_max_ms : float;
  sv_overruns : int;
  sv_invalid : int;
  sv_max_depth : int;
}

(* The service layer under deterministic overload: one server per
   offered-load level (1x, 2x, 4x the calibrated service capacity),
   a paced submitter on pool worker 0 and the remaining workers in
   [work_loop] — the exact topology of [fpga_sched serve]. The gates
   downstream ([check]) hold the recorded run to zero deadline
   overruns, zero invalid schedules, the queue bound, and served =
   offline bit-identity. *)
let serve_comparison () =
  print_endline "";
  let n = serve_requests in
  let iters = serve_iter in
  let capacity = serve_capacity in
  let jobs = par_jobs in
  let serving_width = Stdlib.max 1 (jobs - 1) in
  let rng = Rng.create (seed lxor 0x5e17e) in
  let insts = Array.init n (fun _ -> Suite.instance rng ~tasks:serve_tasks) in
  let texts = Array.map Plat_io.to_string insts in
  Printf.printf
    "== Serve: %d requests per load at 1x/2x/4x offered load, %d worker(s) \
     (%d serving), capacity %d, %d restarts/request ==\n"
    n jobs serving_width capacity iters;
  let fresh_cache () = Fp_cache.create ~subsumption:false () in
  (* Calibrate the nominal per-request service time on this host (warm
     run first: arena growth and code paging stay out of the estimate). *)
  let offline i =
    Pa_random.run ~seed:(seed + i) ~min_iterations:iters
      ~cache:(fresh_cache ()) ~budget_seconds:0. insts.(i)
  in
  ignore (offline 0);
  let service_s =
    let k = Stdlib.min 4 n in
    let _, s = timed (fun () -> for i = 0 to k - 1 do ignore (offline i) done) in
    Float.max 1e-4 (s /. float_of_int k)
  in
  (* Deadline: generous against the worst queueing delay the bound
     allows, so overruns can only come from a broken cancellation
     contract, not from honest queueing. *)
  let deadline_s =
    Float.max 0.25 (service_s *. float_of_int (4 * capacity))
  in
  let deadline_ms = int_of_float (Float.ceil (deadline_s *. 1000.)) in
  Printf.printf "  calibrated service time %.1f ms, deadline %d ms\n%!"
    (service_s *. 1000.) deadline_ms;
  let pin = Domain_pool.env_pin_default () in
  let metric_int path m =
    Option.value ~default:0 (Option.bind (Json.path path m) Json.get_int)
  in
  let run_load load =
    let responses = ref [] in
    let resp_lock = Mutex.create () in
    let srv =
      Serve_server.create
        ~respond:(fun r ->
          Mutex.lock resp_lock;
          responses := r :: !responses;
          Mutex.unlock resp_lock)
        (Serve_server.config ~capacity ~slice:16 ())
    in
    let interarrival =
      service_s /. float_of_int (serving_width * load)
    in
    let t_start = Unix.gettimeofday () in
    let submitter () =
      for i = 0 to n - 1 do
        let target = t_start +. (float_of_int i *. interarrival) in
        let rec pace () =
          let now = Unix.gettimeofday () in
          if now < target then begin
            (* The transport loop's poll tick: expirations are noticed
               even while every worker is busy. *)
            ignore (Serve_server.sweep_expired srv : int);
            Unix.sleepf (Float.min 0.002 (target -. now));
            pace ()
          end
        in
        pace ();
        Serve_server.submit srv
          {
            Serve_protocol.id = Printf.sprintf "%dx-%d" load i;
            op =
              Serve_protocol.Schedule
                ( Serve_protocol.Inline texts.(i),
                  {
                    Serve_protocol.tenant =
                      (if i land 1 = 0 then "even" else "odd");
                    seed = Some (seed + i);
                    min_iterations = Some iters;
                    budget_ms = None;
                    deadline_ms = Some deadline_ms;
                    fail_attempts = 0;
                    emit_schedule = false;
                  } )
          }
      done;
      Serve_server.close srv
    in
    let pool = Domain_pool.Pool.create ~pin ~jobs () in
    Fun.protect
      ~finally:(fun () -> Domain_pool.Pool.shutdown pool)
      (fun () ->
        ignore
          (Domain_pool.Pool.map pool (fun w ->
               if w = 0 then submitter ();
               Serve_server.work_loop srv)
            : unit array));
    let responses = !responses in
    let completions =
      List.filter_map
        (function Serve_protocol.Completed c -> Some c | _ -> None)
        responses
    in
    let lat =
      Array.of_list
        (List.map
           (fun (c : Serve_protocol.completion) ->
             c.Serve_protocol.c_latency_s *. 1000.)
           completions)
    in
    let pct p = if Array.length lat = 0 then 0. else Stats.percentile lat p in
    (* Overrun: a response delivered past deadline + one service time of
       slack — the "deadline + one slice" contract with a margin far
       above any real slice. *)
    let overrun_s = deadline_s +. Float.max 0.05 service_s in
    let overruns =
      List.length
        (List.filter
           (fun (c : Serve_protocol.completion) ->
             c.Serve_protocol.c_latency_s > overrun_s)
           completions)
    in
    let m = Serve_server.metrics srv in
    let row =
      {
        sv_load = load;
        sv_interarrival_ms = interarrival *. 1000.;
        sv_accepted = metric_int [ "requests"; "accepted" ] m;
        sv_completed = metric_int [ "requests"; "completed" ] m;
        sv_failed = metric_int [ "requests"; "failed" ] m;
        sv_shed =
          List.map
            (fun r -> (r, metric_int [ "shed"; r ] m))
            [ "queue_full"; "tenant_quota"; "expired"; "shutting_down" ];
        sv_degrade =
          [| metric_int [ "degrade"; "full" ] m;
             metric_int [ "degrade"; "reduced" ] m;
             metric_int [ "degrade"; "heuristic" ] m;
          |];
        sv_p50_ms = pct 50.;
        sv_p95_ms = pct 95.;
        sv_p99_ms = pct 99.;
        sv_max_ms = (if Array.length lat = 0 then 0. else Stats.max lat);
        sv_overruns = overruns;
        sv_invalid = metric_int [ "invalid_schedules" ] m;
        sv_max_depth = Serve_server.max_queue_depth srv;
      }
    in
    (* Sanity: one response per submission, none silent. *)
    if List.length responses <> n then
      failwith
        (Printf.sprintf "serve: %d responses for %d requests at load %dx"
           (List.length responses) n load);
    row
  in
  let rows = List.map run_load [ 1; 2; 4 ] in
  (* Deterministic identity pass: a sequential server (driven by
     [drain]) must answer bit-identically to the offline solver at the
     effective budget it reports, across whatever rungs the backlog
     triggered. *)
  let id_n = Stdlib.min 6 n in
  let id_responses = ref [] in
  let id_srv =
    Serve_server.create
      ~respond:(fun r -> id_responses := r :: !id_responses)
      (Serve_server.config ~capacity:(Stdlib.max 2 id_n) ())
  in
  for i = 0 to id_n - 1 do
    Serve_server.submit id_srv
      {
        Serve_protocol.id = string_of_int i;
        op =
          Serve_protocol.Schedule
            ( Serve_protocol.Inline texts.(i),
              {
                Serve_protocol.tenant = "identity";
                seed = Some (seed + i);
                min_iterations = Some iters;
                budget_ms = None;
                deadline_ms = None;
                fail_attempts = 0;
                emit_schedule = true;
              } )
      }
  done;
  Serve_server.close id_srv;
  Serve_server.drain id_srv;
  let identity_ok =
    List.for_all
      (fun i ->
        match
          List.find_opt
            (fun r -> Serve_protocol.response_id r = string_of_int i)
            !id_responses
        with
        | Some (Serve_protocol.Completed c) -> (
          let served_text =
            Option.value ~default:"" c.Serve_protocol.c_schedule
          in
          let valid =
            match Schedule_io.of_string served_text with
            | Ok s -> Validate.check s = Ok ()
            | Error _ -> false
          in
          valid
          &&
          if c.Serve_protocol.c_degrade = 2 then
            let s = List_sched.run ~cache:(fresh_cache ()) insts.(i) in
            c.Serve_protocol.c_makespan = Some (Schedule.makespan s)
            && served_text = Schedule_io.to_string s
          else
            let o =
              Pa_random.run ~seed:(seed + i)
                ~min_iterations:c.Serve_protocol.c_effective_min_iterations
                ~cache:(fresh_cache ()) ~budget_seconds:0. insts.(i)
            in
            match o.Pa_random.schedule with
            | Some s ->
              c.Serve_protocol.c_iterations = o.Pa_random.iterations
              && c.Serve_protocol.c_makespan = Some (Schedule.makespan s)
              && served_text = Schedule_io.to_string s
            | None -> false)
        | _ -> false)
      (List.init id_n (fun i -> i))
  in
  let t =
    Table.create
      [
        "load"; "arr ms"; "acc"; "done"; "shed q/t/e"; "rung 0/1/2";
        "p50 ms"; "p95 ms"; "p99 ms"; "overrun"; "maxq";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Printf.sprintf "%dx" r.sv_load;
          Printf.sprintf "%.1f" r.sv_interarrival_ms;
          string_of_int r.sv_accepted;
          string_of_int r.sv_completed;
          Printf.sprintf "%d/%d/%d"
            (List.assoc "queue_full" r.sv_shed)
            (List.assoc "tenant_quota" r.sv_shed)
            (List.assoc "expired" r.sv_shed);
          Printf.sprintf "%d/%d/%d" r.sv_degrade.(0) r.sv_degrade.(1)
            r.sv_degrade.(2);
          Printf.sprintf "%.1f" r.sv_p50_ms;
          Printf.sprintf "%.1f" r.sv_p95_ms;
          Printf.sprintf "%.1f" r.sv_p99_ms;
          string_of_int r.sv_overruns;
          string_of_int r.sv_max_depth;
        ])
    rows;
  Table.print t;
  let total_overruns = List.fold_left (fun a r -> a + r.sv_overruns) 0 rows in
  let total_invalid = List.fold_left (fun a r -> a + r.sv_invalid) 0 rows in
  let bound_ok = List.for_all (fun r -> r.sv_max_depth <= capacity) rows in
  Printf.printf
    "  overruns: %d, invalid schedules: %d, queue bound %s, served = \
     offline %s (%d checked)\n"
    total_overruns total_invalid
    (if bound_ok then "held" else "EXCEEDED")
    (if identity_ok then "bit-identical" else "DIVERGED")
    id_n;
  write_csv "serve.csv"
    ([
       "load"; "interarrival_ms"; "requests"; "accepted"; "completed";
       "shed_queue_full"; "shed_tenant_quota"; "shed_expired"; "p50_ms";
       "p95_ms"; "p99_ms"; "max_ms"; "overruns"; "invalid"; "max_depth";
     ]
    :: List.map
         (fun r ->
           [
             string_of_int r.sv_load;
             Printf.sprintf "%.3f" r.sv_interarrival_ms;
             string_of_int n;
             string_of_int r.sv_accepted;
             string_of_int r.sv_completed;
             string_of_int (List.assoc "queue_full" r.sv_shed);
             string_of_int (List.assoc "tenant_quota" r.sv_shed);
             string_of_int (List.assoc "expired" r.sv_shed);
             Printf.sprintf "%.3f" r.sv_p50_ms;
             Printf.sprintf "%.3f" r.sv_p95_ms;
             Printf.sprintf "%.3f" r.sv_p99_ms;
             Printf.sprintf "%.3f" r.sv_max_ms;
             string_of_int r.sv_overruns;
             string_of_int r.sv_invalid;
             string_of_int r.sv_max_depth;
           ])
         rows);
  Run_store.write_section_json ~section:"serve"
    (Json.Obj
       [
         ("schema", Json.String "resched-bench-serve/1");
         ("seed", Json.Int seed);
         ("jobs", Json.Int jobs);
         ("serving_width", Json.Int serving_width);
         ("capacity", Json.Int capacity);
         ("min_iterations", Json.Int iters);
         ("tasks", Json.Int serve_tasks);
         ("requests_per_load", Json.Int n);
         ("service_s_estimate", Json.float service_s);
         ("deadline_ms", Json.Int deadline_ms);
         ( "loads",
           Json.List
             (List.map
                (fun r ->
                  Json.Obj
                    [
                      ("load", Json.Int r.sv_load);
                      ("interarrival_ms", Json.float r.sv_interarrival_ms);
                      ("requests", Json.Int n);
                      ("accepted", Json.Int r.sv_accepted);
                      ("completed", Json.Int r.sv_completed);
                      ("failed", Json.Int r.sv_failed);
                      ( "shed",
                        Json.Obj
                          (List.map
                             (fun (k, v) -> (k, Json.Int v))
                             r.sv_shed) );
                      ( "degrade",
                        Json.Obj
                          [
                            ("full", Json.Int r.sv_degrade.(0));
                            ("reduced", Json.Int r.sv_degrade.(1));
                            ("heuristic", Json.Int r.sv_degrade.(2));
                          ] );
                      ("p50_ms", Json.float r.sv_p50_ms);
                      ("p95_ms", Json.float r.sv_p95_ms);
                      ("p99_ms", Json.float r.sv_p99_ms);
                      ("max_ms", Json.float r.sv_max_ms);
                      ("overruns", Json.Int r.sv_overruns);
                      ("invalid_schedules", Json.Int r.sv_invalid);
                      ("max_queue_depth", Json.Int r.sv_max_depth);
                      ( "queue_bound_ok",
                        Json.Bool (r.sv_max_depth <= capacity) );
                    ])
                rows) );
         ("zero_overruns", Json.Bool (total_overruns = 0));
         ( "zero_invalid",
           Json.Bool (total_invalid = 0 && identity_ok) );
         ("queue_bound_ok", Json.Bool bound_ok);
         ( "identity",
           Json.Obj
             [
               ("checked", Json.Int id_n);
               ("ok", Json.Bool identity_ok);
             ] );
         ("identity_ok", Json.Bool identity_ok);
       ])

(* ------------------------------------------------------------------ *)
(* Serve concurrency: the multiplexing transport under 1/2/4/8 clients *)

type conc_row = {
  cc_clients : int;
  cc_wall_s : float;
  cc_throughput : float;  (* completed requests / s, aggregate *)
  cc_p50_ms : float;
  cc_p95_ms : float;
  cc_p99_ms : float;
  cc_rates : float array;  (* per-client goodput, requests / s *)
  cc_fairness : float;  (* max rate / min rate *)
  cc_errors : int;
}

(* The ISSUE 10 concurrency sweep: closed-loop jsonl clients on real
   socketpairs through the real [Transport] event loop, workers on the
   persistent pool — the exact [fpga_sched serve --socket] topology.
   Records aggregate throughput, per-client latency percentiles and the
   max/min per-client goodput ratio per client count, plus two
   deterministic probes (no head-of-line blocking; transport responses
   bit-identical to the offline solver). [check] downstream gates
   fairness <= 2 at 4 clients, the HOLB bound, identity, and — when
   this host has enough workers to make concurrency measurable — a
   floor on the 4-client speedup over 1 client. *)
let serve_concurrency () =
  print_endline "";
  let n = serve_conc_requests in
  let iters = serve_conc_iter in
  let jobs = par_jobs in
  let serving_width = if jobs = 1 then 1 else jobs - 1 in
  let measurable = serving_width >= 2 in
  let rng = Rng.create (seed lxor 0xc11e27) in
  let n_inst = 8 in
  let insts =
    Array.init n_inst (fun _ -> Suite.instance rng ~tasks:serve_conc_tasks)
  in
  let texts = Array.map Plat_io.to_string insts in
  Printf.printf
    "== Serve concurrency: %d requests/client at 1/2/4/8 clients, %d \
     worker(s) (%d serving), %d restarts/request ==\n%!"
    n jobs serving_width iters;
  let fresh_cache () = Fp_cache.create ~subsumption:false () in
  let req_line ~client ~i ~emit =
    String.trim
    @@ Json.to_string ~indent:0
         (Json.Obj
            [
              ("op", Json.String "schedule");
              ("id", Json.String (Printf.sprintf "c%d-%d" client i));
              ("instance", Json.String texts.((client + i) mod n_inst));
              ("seed", Json.Int (seed + (1000 * client) + i));
              ("min_iterations", Json.Int iters);
              ("emit_schedule", Json.Bool emit);
            ])
  in
  let write_all fd s =
    let b = Bytes.of_string (s ^ "\n") in
    let len = Bytes.length b in
    let rec go off =
      if off < len then go (off + Unix.write fd b off (len - off))
    in
    go 0
  in
  (* Nonblocking line reads for the single-threaded probes. *)
  let recv_lines buf fd =
    let chunk = Bytes.create 4096 in
    (try
       let rec slurp () =
         let k = Unix.read fd chunk 0 4096 in
         if k > 0 then begin
           Buffer.add_subbytes buf chunk 0 k;
           slurp ()
         end
       in
       slurp ()
     with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ());
    let s = Buffer.contents buf in
    let rec split start acc =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear buf;
        Buffer.add_substring buf s start (String.length s - start);
        List.rev acc
      | Some i -> split (i + 1) (String.sub s start (i - start) :: acc)
    in
    split 0 []
  in
  let pin = Domain_pool.env_pin_default () in
  (* One sweep level: [nc] closed-loop client domains, each on its own
     socketpair, a closer domain that shuts the server down when every
     client is done, and the serve topology (event loop + work_loops)
     on the pool. Degradation is pinned off so the per-request cost is
     identical at every client count. *)
  let run_clients nc =
    let srv =
      Serve_server.create
        ~respond:(fun _ -> ())
        (Serve_server.config ~capacity:64 ~degrade_low:1_000_000
           ~degrade_high:1_000_001 ~slice:16 ())
    in
    let tr =
      Serve_transport.create ~max_clients:(Stdlib.max 8 nc)
        ~drive_server:(jobs = 1) srv
    in
    let pairs =
      Array.init nc (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
    in
    Array.iter (fun (near, _) -> Serve_transport.add_socket tr near) pairs;
    let lat = Array.make_matrix nc n 0. in
    let rates = Array.make nc 0. in
    let errors = Atomic.make 0 in
    let client c far () =
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let read_line () =
        let rec frame () =
          let s = Buffer.contents buf in
          match String.index_opt s '\n' with
          | Some i ->
            Buffer.clear buf;
            Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
            String.sub s 0 i
          | None ->
            let k = Unix.read far chunk 0 4096 in
            if k = 0 then failwith "server closed the connection";
            Buffer.add_subbytes buf chunk 0 k;
            frame ()
        in
        frame ()
      in
      let t_c0 = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        let t0 = Unix.gettimeofday () in
        write_all far (req_line ~client:c ~i ~emit:false);
        let resp = read_line () in
        lat.(c).(i) <- (Unix.gettimeofday () -. t0) *. 1000.;
        match Json.parse resp with
        | Ok j
          when Option.bind (Json.member "status" j) Json.get_string
               = Some "ok" ->
          ()
        | _ -> Atomic.incr errors
      done;
      rates.(c) <- float_of_int n /. (Unix.gettimeofday () -. t_c0);
      Unix.close far
    in
    let t0 = Unix.gettimeofday () in
    let clients =
      Array.mapi (fun c (_, far) -> Domain.spawn (client c far)) pairs
    in
    let wall = ref 0. in
    let closer =
      Domain.spawn (fun () ->
          Array.iter Domain.join clients;
          wall := Unix.gettimeofday () -. t0;
          Serve_server.close srv)
    in
    (if jobs = 1 then Serve_transport.run tr
     else begin
       let pool = Domain_pool.Pool.create ~pin ~jobs () in
       Fun.protect
         ~finally:(fun () -> Domain_pool.Pool.shutdown pool)
         (fun () ->
           ignore
             (Domain_pool.Pool.map pool (fun w ->
                  if w = 0 then Serve_transport.run tr
                  else Serve_server.work_loop srv)
               : unit array))
     end);
    Domain.join closer;
    let pooled = Array.concat (Array.to_list lat) in
    let pct p =
      if Array.length pooled = 0 then 0. else Stats.percentile pooled p
    in
    let rmin = Array.fold_left Float.min Float.infinity rates in
    let rmax = Array.fold_left Float.max 0. rates in
    {
      cc_clients = nc;
      cc_wall_s = !wall;
      cc_throughput = float_of_int (nc * n) /. Float.max 1e-9 !wall;
      cc_p50_ms = pct 50.;
      cc_p95_ms = pct 95.;
      cc_p99_ms = pct 99.;
      cc_rates = rates;
      cc_fairness = (if rmin > 0. then rmax /. rmin else Float.infinity);
      cc_errors = Atomic.get errors;
    }
  in
  let rows = List.map run_clients [ 1; 2; 4; 8 ] in
  (* Deterministic HOLB probe: a flooding connection queues 10 requests
     before a sparse one queues its single request; under DRR the
     sparse client must be answered within 2 dispatches. Driven
     single-threaded (poll + step) so the bound is exact, not a race. *)
  let no_holb, holb_steps =
    let srv =
      Serve_server.create
        ~respond:(fun _ -> ())
        (Serve_server.config ~capacity:16 ~degrade_low:1_000_000
           ~degrade_high:1_000_001 ())
    in
    let tr = Serve_transport.create srv in
    let mk () =
      let near, far = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Serve_transport.add_socket tr near;
      Unix.set_nonblock far;
      (far, Buffer.create 256)
    in
    let flood, _ = mk () in
    let sparse_fd, sparse_buf = mk () in
    for i = 0 to 9 do
      write_all flood (req_line ~client:90 ~i ~emit:false)
    done;
    write_all sparse_fd (req_line ~client:91 ~i:0 ~emit:false);
    let polls = ref 0 in
    while Serve_server.queue_depth srv < 11 && !polls < 500 do
      Serve_transport.poll tr ~timeout_s:0.;
      incr polls
    done;
    let steps = ref 0 in
    let got = ref false in
    while (not !got) && !steps < 11 do
      ignore (Serve_server.step srv : Serve_server.step_result);
      incr steps;
      Serve_transport.poll tr ~timeout_s:0.;
      if recv_lines sparse_buf sparse_fd <> [] then got := true
    done;
    Unix.close flood;
    Unix.close sparse_fd;
    Serve_server.close srv;
    Serve_server.drain srv;
    Serve_transport.poll tr ~timeout_s:0.;
    (!got && !steps <= 2, !steps)
  in
  (* Identity through the real transport: responses (schedule text,
     makespan, iterations) bit-identical to the offline solver at the
     same seed and budget. *)
  let id_n = Stdlib.min 6 n in
  let identity_ok =
    let srv = Serve_server.create ~respond:(fun _ -> ()) (Serve_server.config ()) in
    let tr = Serve_transport.create srv in
    let near, far = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Serve_transport.add_socket tr near;
    Unix.set_nonblock far;
    let buf = Buffer.create 1024 in
    for i = 0 to id_n - 1 do
      write_all far (req_line ~client:0 ~i ~emit:true)
    done;
    let polls = ref 0 in
    while Serve_server.queue_depth srv < id_n && !polls < 500 do
      Serve_transport.poll tr ~timeout_s:0.;
      incr polls
    done;
    let lines = ref [] in
    let steps = ref 0 in
    while List.length !lines < id_n && !steps < 4 * id_n do
      ignore (Serve_server.step srv : Serve_server.step_result);
      incr steps;
      Serve_transport.poll tr ~timeout_s:0.;
      lines := !lines @ recv_lines buf far
    done;
    Unix.close far;
    Serve_server.close srv;
    Serve_server.drain srv;
    Serve_transport.poll tr ~timeout_s:0.;
    List.length !lines = id_n
    && List.for_all
         (fun line ->
           match Json.parse line with
           | Error _ -> false
           | Ok j -> (
             let str k = Option.bind (Json.member k j) Json.get_string in
             let int k = Option.bind (Json.member k j) Json.get_int in
             match str "id" with
             | Some id
               when String.length id > 3 && String.sub id 0 3 = "c0-" -> (
               let i = int_of_string (String.sub id 3 (String.length id - 3)) in
               let o =
                 Pa_random.run
                   ~seed:(seed + i)
                   ~min_iterations:iters ~cache:(fresh_cache ())
                   ~budget_seconds:0.
                   insts.(i mod n_inst)
               in
               str "status" = Some "ok"
               && int "iterations" = Some o.Pa_random.iterations
               &&
               match o.Pa_random.schedule with
               | Some s ->
                 int "makespan" = Some (Schedule.makespan s)
                 && str "schedule" = Some (Schedule_io.to_string s)
               | None -> false)
             | _ -> false))
         !lines
  in
  let row nc = List.find (fun r -> r.cc_clients = nc) rows in
  let speedup = (row 4).cc_throughput /. Float.max 1e-9 (row 1).cc_throughput in
  let floor = if serving_width >= 3 then 2.0 else 1.6 in
  let fairness_ok = (row 4).cc_fairness <= 2.0 in
  let throughput_ok = (not measurable) || speedup >= floor in
  let errors_total = List.fold_left (fun a r -> a + r.cc_errors) 0 rows in
  let t =
    Table.create
      [ "clients"; "wall s"; "req/s"; "p50 ms"; "p95 ms"; "p99 ms"; "fair" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.cc_clients;
          Printf.sprintf "%.2f" r.cc_wall_s;
          Printf.sprintf "%.1f" r.cc_throughput;
          Printf.sprintf "%.1f" r.cc_p50_ms;
          Printf.sprintf "%.1f" r.cc_p95_ms;
          Printf.sprintf "%.1f" r.cc_p99_ms;
          Printf.sprintf "%.2f" r.cc_fairness;
        ])
    rows;
  Table.print t;
  Printf.printf
    "  4-client speedup %.2fx over 1 client (%s; floor %.1f), fairness \
     %.2f, HOLB answered in %d dispatch(es), identity %s, errors %d\n"
    speedup
    (if measurable then "measurable"
     else "NOT measurable on this host, gate waived")
    floor (row 4).cc_fairness holb_steps
    (if identity_ok then "bit-identical" else "DIVERGED")
    errors_total;
  write_csv "serve_concurrency.csv"
    ([
       "clients"; "requests_total"; "wall_s"; "throughput_rps"; "p50_ms";
       "p95_ms"; "p99_ms"; "fairness_ratio"; "errors";
     ]
    :: List.map
         (fun r ->
           [
             string_of_int r.cc_clients;
             string_of_int (r.cc_clients * n);
             Printf.sprintf "%.4f" r.cc_wall_s;
             Printf.sprintf "%.3f" r.cc_throughput;
             Printf.sprintf "%.3f" r.cc_p50_ms;
             Printf.sprintf "%.3f" r.cc_p95_ms;
             Printf.sprintf "%.3f" r.cc_p99_ms;
             Printf.sprintf "%.4f" r.cc_fairness;
             string_of_int r.cc_errors;
           ])
         rows);
  Run_store.write_section_json ~section:"serve_concurrency"
    (Json.Obj
       [
         ("schema", Json.String "resched-bench-serve-concurrency/1");
         ("seed", Json.Int seed);
         ("jobs", Json.Int jobs);
         ("serving_width", Json.Int serving_width);
         ("requests_per_client", Json.Int n);
         ("min_iterations", Json.Int iters);
         ("tasks", Json.Int serve_conc_tasks);
         ( "levels",
           Json.List
             (List.map
                (fun r ->
                  Json.Obj
                    [
                      ("clients", Json.Int r.cc_clients);
                      ("wall_s", Json.float r.cc_wall_s);
                      ("throughput_rps", Json.float r.cc_throughput);
                      ("p50_ms", Json.float r.cc_p50_ms);
                      ("p95_ms", Json.float r.cc_p95_ms);
                      ("p99_ms", Json.float r.cc_p99_ms);
                      ( "client_rates_rps",
                        Json.List
                          (Array.to_list
                             (Array.map Json.float r.cc_rates)) );
                      ("fairness_ratio", Json.float r.cc_fairness);
                      ("errors", Json.Int r.cc_errors);
                    ])
                rows) );
         ("speedup_4c_over_1c", Json.float speedup);
         ("throughput_floor", Json.float floor);
         ("concurrency_measurable", Json.Bool measurable);
         ("throughput_ok", Json.Bool throughput_ok);
         ("fairness_ok", Json.Bool fairness_ok);
         ("holb_dispatches", Json.Int holb_steps);
         ("no_holb", Json.Bool no_holb);
         ( "identity",
           Json.Obj
             [ ("checked", Json.Int id_n); ("ok", Json.Bool identity_ok) ] );
         ("identity_ok", Json.Bool identity_ok);
         ("errors", Json.Int errors_total);
       ])

(* ------------------------------------------------------------------ *)
(* Floorplan oracle: column-interval packer (v2) vs backtracking (v1)  *)

type fp_row = {
  fr_tasks : int;
  fr_checks : int;
  fr_s_v1 : float;
  fr_s_v2 : float;
  fr_identical : bool;
  fr_refined : int;
  fr_hits : int;
  fr_sub_hits : int;
  fr_misses : int;
  fr_ms_v1 : int;
  fr_ms_v2 : int;
}

(* Region need-sets a PA-R search would actually send to the oracle:
   seeded random-ordering [Pa.schedule_once] passes at the shrink-lattice
   scales the restart loop visits. *)
let collect_need_sets ~seed ~count inst =
  let rng = Rng.create seed in
  let ctx = Pa.Context.create inst in
  let lattice = [| 1.0; 0.9; 0.81 |] in
  let acc = ref [] in
  for i = 0 to count - 1 do
    let config =
      { Pa.default_config with
        Pa.ordering = Regions_define.Random (Rng.split rng) }
    in
    let sched =
      Pa.schedule_once ~config ~resource_scale:lattice.(i mod 3) ~ctx inst
    in
    let needs =
      Array.map
        (fun (r : Schedule.region) -> r.Schedule.res)
        sched.Schedule.regions
    in
    if Array.length needs > 0 then acc := needs :: !acc
  done;
  List.rev !acc

let fp_checks_per_group = Stdlib.max 12 (env_int "RESCHED_FP_CHECKS" 120)
let fp_e2e_iters = Stdlib.max 4 (env_int "RESCHED_FP_E2E_ITERS" 40)

let floorplan_oracle_comparison () =
  print_endline "";
  Printf.printf
    "== Floorplan oracle: column-interval packer vs backtracking v1 (%d \
     checks/group) + subsumption cache ==\n"
    fp_checks_per_group;
  let t =
    Table.create
      [ "# Tasks"; "checks"; "v1 [s]"; "v2 [s]"; "checks/s v1";
        "checks/s v2"; "speedup"; "identical"; "hit rate" ]
  in
  let verdict_class (r : Floorplanner.report) =
    match r.Floorplanner.verdict with
    | Floorplanner.Feasible _ -> 0
    | Floorplanner.Infeasible -> 1
    | Floorplanner.Unknown -> 2
  in
  (* v2 may be strictly MORE decisive than v1 (its capacity bounds and
     pruning settle sets where v1's identical node budget runs out); a
     v1 [Unknown] is therefore compatible with any v2 verdict. What must
     never happen: a contradiction (Feasible vs Infeasible) or v2 losing
     decisiveness (v1 decided, v2 Unknown). *)
  let compatible a b =
    let ca = verdict_class a and cb = verdict_class b in
    ca = cb || ca = 2
  in
  let refined a b = verdict_class a = 2 && verdict_class b <> 2 in
  let rows =
    List.map
      (fun tasks ->
        match Suite.group ~seed ~tasks ~count:1 () with
        | [ inst ] ->
          let device = inst.Instance.arch.Arch.device in
          let s = seed + (17 * tasks) in
          let stream =
            collect_need_sets ~seed:s ~count:fp_checks_per_group inst
          in
          let run_engine engine =
            List.map
              (fun needs -> Floorplanner.check ~engine device needs)
              stream
          in
          (* Untimed warm-up so neither engine pays allocator growth. *)
          ignore (run_engine Floorplanner.Backtracking_v1);
          ignore (run_engine Floorplanner.Backtracking);
          let reports_v1, s_v1 =
            timed (fun () -> run_engine Floorplanner.Backtracking_v1)
          in
          let reports_v2, s_v2 =
            timed (fun () -> run_engine Floorplanner.Backtracking)
          in
          let identical = List.for_all2 compatible reports_v1 reports_v2 in
          let refinements =
            List.fold_left2
              (fun acc a b -> if refined a b then acc + 1 else acc)
              0 reports_v1 reports_v2
          in
          (* Every v2 placement must independently validate. *)
          List.iter2
            (fun needs (r : Floorplanner.report) ->
              match r.Floorplanner.verdict with
              | Floorplanner.Feasible placements -> (
                match Floorplanner.validate device ~needs placements with
                | Ok () -> ()
                | Error msg ->
                  failwith
                    (Printf.sprintf "packer-v2 invalid floorplan (%d tasks): %s"
                       tasks msg))
              | _ -> ())
            stream reports_v2;
          (* Replay the same stream through a fresh subsumption cache. *)
          let cache = Fp_cache.create () in
          List.iter
            (fun needs -> ignore (Fp_cache.check cache device needs))
            stream;
          let st = Fp_cache.stats cache in
          (* End-to-end PA-R must be engine-invariant. *)
          let e2e engine =
            let config =
              { Pa.default_config with Pa.floorplan_engine = engine }
            in
            match
              (Pa_random.run ~config ~seed:s ~min_iterations:fp_e2e_iters
                 ~budget_seconds:0. inst)
                .Pa_random.schedule
            with
            | Some sched -> Schedule.makespan sched
            | None -> -1
          in
          let ms_v1 = e2e Floorplanner.Backtracking_v1 in
          let ms_v2 = e2e Floorplanner.Backtracking in
          let checks = List.length stream in
          let row =
            {
              fr_tasks = tasks;
              fr_checks = checks;
              fr_s_v1 = s_v1;
              fr_s_v2 = s_v2;
              fr_identical = identical;
              fr_refined = refinements;
              fr_hits = st.Fp_cache.hits;
              fr_sub_hits = st.Fp_cache.sub_hits;
              fr_misses = st.Fp_cache.misses;
              fr_ms_v1 = ms_v1;
              fr_ms_v2 = ms_v2;
            }
          in
          let per_s sec = float_of_int checks /. Float.max sec 1e-9 in
          Table.add_row t
            [
              string_of_int tasks;
              string_of_int checks;
              Table.cell_f s_v1;
              Table.cell_f s_v2;
              Table.cell_f ~decimals:0 (per_s s_v1);
              Table.cell_f ~decimals:0 (per_s s_v2);
              Printf.sprintf "x%.2f" (s_v1 /. Float.max s_v2 1e-9);
              (if identical then "yes" else "NO");
              Printf.sprintf "%.0f%%" (100. *. Fp_cache.hit_rate st);
            ];
          row
        | _ -> assert false)
      groups
  in
  Table.print t;
  write_csv "floorplan.csv"
    ([ "tasks"; "checks"; "seconds_v1"; "seconds_v2"; "speedup";
       "identical"; "refined"; "cache_hits"; "cache_sub_hits";
       "cache_misses"; "makespan_v1"; "makespan_v2" ]
    :: List.map
         (fun r ->
           [
             string_of_int r.fr_tasks;
             string_of_int r.fr_checks;
             Printf.sprintf "%.4f" r.fr_s_v1;
             Printf.sprintf "%.4f" r.fr_s_v2;
             Printf.sprintf "%.3f" (r.fr_s_v1 /. Float.max r.fr_s_v2 1e-9);
             string_of_bool r.fr_identical;
             string_of_int r.fr_refined;
             string_of_int r.fr_hits;
             string_of_int r.fr_sub_hits;
             string_of_int r.fr_misses;
             string_of_int r.fr_ms_v1;
             string_of_int r.fr_ms_v2;
           ])
         rows);
  (* Aggregate speedup over the largest groups (>= 60 tasks when present,
     otherwise all groups): total v1 time over total v2 time. *)
  let big = List.filter (fun r -> r.fr_tasks >= 60) rows in
  let agg = if big = [] then rows else big in
  let sum f l = List.fold_left (fun a r -> a +. f r) 0. l in
  let speedup_large =
    sum (fun r -> r.fr_s_v1) agg /. Float.max (sum (fun r -> r.fr_s_v2) agg) 1e-9
  in
  let all_identical = List.for_all (fun r -> r.fr_identical) rows in
  (* -1 means no schedule found; v2 finding one where v1 did not is an
     improvement, not a regression. *)
  let makespans_never_worse =
    List.for_all
      (fun r ->
        r.fr_ms_v2 = r.fr_ms_v1
        || (r.fr_ms_v2 >= 0 && (r.fr_ms_v1 < 0 || r.fr_ms_v2 <= r.fr_ms_v1)))
      rows
  in
  let total_hits = List.fold_left (fun a r -> a + r.fr_hits) 0 rows
  and total_sub = List.fold_left (fun a r -> a + r.fr_sub_hits) 0 rows
  and total_misses = List.fold_left (fun a r -> a + r.fr_misses) 0 rows in
  let combined_rate =
    float_of_int (total_hits + total_sub)
    /. float_of_int (Stdlib.max 1 (total_hits + total_sub + total_misses))
  in
  let total_refined = List.fold_left (fun a r -> a + r.fr_refined) 0 rows in
  Printf.printf
    "  oracle speedup on %s groups: x%.2f; verdicts identical: %b (%d \
     refined from v1 Unknown); PA-R makespans never worse: %b; cache %d \
     exact + %d subsumption / %d misses (%.1f%% combined)\n"
    (if big = [] then "all" else ">=60-task")
    speedup_large all_identical total_refined makespans_never_worse total_hits
    total_sub total_misses (100. *. combined_rate);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"seed\": %d,\n" seed;
  Printf.bprintf buf "  \"checks_per_group\": %d,\n" fp_checks_per_group;
  Printf.bprintf buf "  \"e2e_iterations\": %d,\n" fp_e2e_iters;
  Buffer.add_string buf "  \"groups\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf buf
        "    {\"tasks\": %d, \"checks\": %d, \"seconds_v1\": %.4f, \
         \"seconds_v2\": %.4f, \"checks_per_s_v1\": %.1f, \
         \"checks_per_s_v2\": %.1f, \"speedup\": %.3f, \"identical\": %b, \
         \"refined\": %d, \"cache\": {\"hits\": %d, \"sub_hits\": %d, \
         \"misses\": %d, \"hit_rate\": %.3f}, \"makespan_v1\": %d, \
         \"makespan_v2\": %d}%s\n"
        r.fr_tasks r.fr_checks r.fr_s_v1 r.fr_s_v2
        (float_of_int r.fr_checks /. Float.max r.fr_s_v1 1e-9)
        (float_of_int r.fr_checks /. Float.max r.fr_s_v2 1e-9)
        (r.fr_s_v1 /. Float.max r.fr_s_v2 1e-9)
        r.fr_identical r.fr_refined r.fr_hits r.fr_sub_hits r.fr_misses
        (float_of_int (r.fr_hits + r.fr_sub_hits)
        /. float_of_int
             (Stdlib.max 1 (r.fr_hits + r.fr_sub_hits + r.fr_misses)))
        r.fr_ms_v1 r.fr_ms_v2
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf "  \"all_identical\": %b,\n" all_identical;
  Printf.bprintf buf "  \"refined\": %d,\n" total_refined;
  Printf.bprintf buf "  \"makespans_never_worse\": %b,\n"
    makespans_never_worse;
  Printf.bprintf buf "  \"speedup_large_groups\": %.3f,\n" speedup_large;
  Printf.bprintf buf
    "  \"cache\": {\"hits\": %d, \"sub_hits\": %d, \"misses\": %d, \
     \"combined_hit_rate\": %.3f}\n"
    total_hits total_sub total_misses combined_rate;
  Buffer.add_string buf "}\n";
  Run_store.write_section ~section:"floorplan" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* MILP engine: warm-started revised simplex vs dense tableau oracle   *)

(* Tiny homogeneous instances (shared with the ILP-viability section):
   the monolithic formulation is the only workload in the repo that
   drives the branch-and-bound for thousands of nodes, so it is the
   "IS-k chunk"-shaped stress test for the LP engines. *)
let ilp_tiny_params =
  { Suite.default_params with
    Suite.clb_min = 100;
    clb_max = 260;
    p_bram_heavy = 0.;
    p_dsp_heavy = 0.;
    width_of_tasks = (fun _ -> 2) }

(* Random bounded LP in the size range of the floorplanner's packing
   models and one IS-k chunk relaxation (tens of variables, most with
   finite boxes). The rhs is anchored near each row's value at the box
   midpoint so most draws are feasible and need real pivoting. *)
let random_lp rng =
  let nvars = 18 + Rng.int rng 18 in
  let nrows = 10 + Rng.int rng 14 in
  let m =
    Lp.create
      ~objective:(if Rng.bool rng then Lp.Maximize else Lp.Minimize)
      ()
  in
  let vars =
    Array.init nvars (fun _ ->
        let lb = float_of_int (Rng.int rng 3) in
        let ub = lb +. 1. +. float_of_int (Rng.int rng 7) in
        Lp.add_var m ~lb ~ub ~obj:(float_of_int (Rng.int_in rng (-9) 9)) ())
  in
  for _ = 1 to nrows do
    let nterms = 2 + Rng.int rng 4 in
    let terms =
      List.init nterms (fun _ ->
          let v = vars.(Rng.int rng nvars) in
          let c = float_of_int (Rng.int_in rng 1 4) in
          (v, if Rng.bool rng then c else -.c))
    in
    let mid =
      List.fold_left
        (fun acc (v, c) -> acc +. (c *. 0.5 *. (Lp.var_lb m v +. Lp.var_ub m v)))
        0. terms
    in
    if Rng.int rng 6 = 0 then Lp.add_constraint m terms Lp.Eq mid
    else
      let sense = if Rng.bool rng then Lp.Le else Lp.Ge in
      let slack = float_of_int (Rng.int_in rng (-4) 8) in
      let rhs = match sense with Lp.Le -> mid +. slack | _ -> mid -. slack in
      Lp.add_constraint m terms sense rhs
  done;
  m

let lp_results_agree a b =
  match (a, b) with
  | Simplex.Optimal x, Simplex.Optimal y ->
    Float.abs (x.Simplex.objective -. y.Simplex.objective)
    <= 1e-6 *. (1. +. Float.abs x.Simplex.objective)
  | Simplex.Infeasible, Simplex.Infeasible
  | Simplex.Unbounded, Simplex.Unbounded ->
    true
  (* an iteration-capped solve is indeterminate, not a verdict *)
  | Simplex.Limit, _ | _, Simplex.Limit -> true
  | _ -> false

type milp_engine_row = {
  me_seconds : float;
  me_nodes : int;
  me_objective : float;
  me_proved : bool;
  me_makespan : int;  (** -1 when no integer solution was found *)
}

let milp_bnb_run ?(jobs = 1) ~engine inst =
  let r, secs =
    timed (fun () ->
        Ilp_exact.solve ~node_limit:500_000 ~time_limit:milp_time_limit ~jobs
          ~engine inst)
  in
  match r with
  | Some r ->
    must_validate "ILP(bench)" r.Ilp_exact.schedule;
    {
      me_seconds = secs;
      me_nodes = r.Ilp_exact.nodes;
      me_objective = r.Ilp_exact.ilp_objective;
      me_proved = r.Ilp_exact.proved_optimal;
      me_makespan = Schedule.makespan r.Ilp_exact.schedule;
    }
  | None ->
    {
      me_seconds = secs;
      me_nodes = 0;
      me_objective = Float.nan;
      me_proved = false;
      me_makespan = -1;
    }

let milp_comparison () =
  print_endline "";
  Printf.printf
    "== MILP engine: dense tableau oracle vs warm-started revised simplex \
     (time limit %.1fs per solve) ==\n"
    milp_time_limit;
  (* --- LP kernel: floorplan-sized continuous relaxations ----------- *)
  let rng = Rng.create (seed lxor 0x317) in
  let models = List.init 24 (fun _ -> random_lp rng) in
  let nmodels = List.length models in
  let lp_agree =
    List.for_all
      (fun m -> lp_results_agree (Simplex.solve m) (Revised.solve m))
      models
  in
  (* warm-up pass so neither engine pays first-touch allocation *)
  List.iter (fun m -> ignore (Simplex.solve m); ignore (Revised.solve m)) models;
  let (), s_tab =
    timed (fun () ->
        for _ = 1 to milp_lp_repeats do
          List.iter (fun m -> ignore (Simplex.solve m)) models
        done)
  in
  let (), s_rev =
    timed (fun () ->
        for _ = 1 to milp_lp_repeats do
          List.iter (fun m -> ignore (Revised.solve m)) models
        done)
  in
  let lp_speedup = s_tab /. Float.max s_rev 1e-9 in
  Printf.printf
    "  LP kernel (%d models x %d solves): tableau %.3fs, revised %.3fs \
     (x%.2f), verdicts %s\n"
    nmodels milp_lp_repeats s_tab s_rev lp_speedup
    (if lp_agree then "agree" else "DIVERGE");
  (* --- Branch-and-bound on the monolithic ILP, jobs = 1 ------------ *)
  let t =
    Table.create
      [ "# Tasks"; "vars"; "rows"; "nodes tab"; "nodes rev"; "s tab";
        "s rev"; "nodes/s tab"; "nodes/s rev"; "n/s speedup"; "objective" ]
  in
  let bnb =
    List.map
      (fun tasks ->
        let inst =
          Suite.instance ~params:ilp_tiny_params ~arch:Arch.mini
            (Rng.create (seed + tasks)) ~tasks
        in
        let vars, rows = Ilp_exact.model_size inst in
        let tab = milp_bnb_run ~engine:Branch_bound.Tableau inst in
        let rev = milp_bnb_run ~engine:Branch_bound.Revised inst in
        let per_s r = float_of_int r.me_nodes /. Float.max r.me_seconds 1e-9 in
        Table.add_row t
          [
            string_of_int tasks;
            string_of_int vars;
            string_of_int rows;
            string_of_int tab.me_nodes;
            string_of_int rev.me_nodes;
            Table.cell_f tab.me_seconds;
            Table.cell_f rev.me_seconds;
            Table.cell_f ~decimals:0 (per_s tab);
            Table.cell_f ~decimals:0 (per_s rev);
            (if tab.me_nodes = 0 then "-"
             else Printf.sprintf "x%.2f" (per_s rev /. Float.max (per_s tab) 1e-9));
            Printf.sprintf "%.1f vs %.1f" tab.me_objective rev.me_objective;
          ];
        (tasks, vars, rows, tab, rev))
      [ 2; 3; 4; 5 ]
  in
  Table.print t;
  let objectives_agree (tab : milp_engine_row) (rev : milp_engine_row) =
    (* Comparable only when both solves ran to proven optimality; a
       budget-limited incumbent is a lower-quality answer by design. *)
    (not (tab.me_proved && rev.me_proved))
    || Float.abs (tab.me_objective -. rev.me_objective)
       <= 1e-6 *. (1. +. Float.abs tab.me_objective)
  in
  let never_worse (tab : milp_engine_row) (rev : milp_engine_row) =
    tab.me_makespan < 0 || (rev.me_makespan >= 0 && rev.me_makespan <= tab.me_makespan)
  in
  let engines_agree =
    lp_agree
    && List.for_all (fun (_, _, _, tab, rev) -> objectives_agree tab rev) bnb
  in
  let makespan_ok =
    List.for_all (fun (_, _, _, tab, rev) -> never_worse tab rev) bnb
  in
  (* Aggregate throughput over the instances where BOTH engines produced
     a solution: on the largest ones the tableau finds nothing at all
     within the budget (reported per-row above), and counting its 0
     nodes there would inflate the revised engine's speedup. *)
  let both =
    List.filter
      (fun (_, _, _, tab, rev) -> tab.me_makespan >= 0 && rev.me_makespan >= 0)
      bnb
  in
  let tot_nodes f =
    List.fold_left (fun a (_, _, _, tab, rev) -> a + (f tab rev).me_nodes) 0 both
  and tot_secs f =
    List.fold_left
      (fun a (_, _, _, tab, rev) -> a +. (f tab rev).me_seconds)
      0. both
  in
  let nps_tab =
    float_of_int (tot_nodes (fun tab _ -> tab))
    /. Float.max (tot_secs (fun tab _ -> tab)) 1e-9
  and nps_rev =
    float_of_int (tot_nodes (fun _ rev -> rev))
    /. Float.max (tot_secs (fun _ rev -> rev)) 1e-9
  in
  let nps_speedup = nps_rev /. Float.max nps_tab 1e-9 in
  Printf.printf
    "  aggregate B&B throughput at jobs=1: tableau %.0f nodes/s, revised \
     %.0f nodes/s (x%.2f)\n"
    nps_tab nps_rev nps_speedup;
  (* --- Parallel B&B: revised engine, jobs=1 vs jobs=N -------------- *)
  let par_tasks = 5 in
  let par_inst =
    Suite.instance ~params:ilp_tiny_params ~arch:Arch.mini
      (Rng.create (seed + par_tasks)) ~tasks:par_tasks
  in
  let j1 = milp_bnb_run ~jobs:1 ~engine:Branch_bound.Revised par_inst in
  let jn = milp_bnb_run ~jobs:par_jobs ~engine:Branch_bound.Revised par_inst in
  Printf.printf
    "  parallel B&B (%d tasks, revised): jobs=1 %d nodes in %.2fs, jobs=%d \
     %d nodes in %.2fs (nodes/s x%.2f)\n"
    par_tasks j1.me_nodes j1.me_seconds par_jobs jn.me_nodes jn.me_seconds
    (float_of_int jn.me_nodes /. Float.max jn.me_seconds 1e-9
    /. Float.max (float_of_int j1.me_nodes /. Float.max j1.me_seconds 1e-9) 1e-9);
  (* --- CSV + JSON --------------------------------------------------- *)
  write_csv "milp.csv"
    ([ "section"; "label"; "vars"; "rows"; "seconds_tableau";
       "seconds_revised"; "nodes_tableau"; "nodes_revised";
       "objective_tableau"; "objective_revised"; "agree" ]
    :: ([ "lp_kernel";
          Printf.sprintf "%dx%d" nmodels milp_lp_repeats; ""; "";
          Printf.sprintf "%.4f" s_tab; Printf.sprintf "%.4f" s_rev;
          ""; ""; ""; ""; string_of_bool lp_agree ]
       :: List.map
            (fun (tasks, vars, rows, tab, rev) ->
              [ "bnb"; Printf.sprintf "%d_tasks" tasks;
                string_of_int vars; string_of_int rows;
                Printf.sprintf "%.4f" tab.me_seconds;
                Printf.sprintf "%.4f" rev.me_seconds;
                string_of_int tab.me_nodes; string_of_int rev.me_nodes;
                Printf.sprintf "%.3f" tab.me_objective;
                Printf.sprintf "%.3f" rev.me_objective;
                string_of_bool (objectives_agree tab rev) ])
            bnb
       @ [ [ "parallel"; Printf.sprintf "jobs_%d" par_jobs; ""; "";
             Printf.sprintf "%.4f" j1.me_seconds;
             Printf.sprintf "%.4f" jn.me_seconds;
             string_of_int j1.me_nodes; string_of_int jn.me_nodes;
             Printf.sprintf "%.3f" j1.me_objective;
             Printf.sprintf "%.3f" jn.me_objective;
             string_of_bool (objectives_agree j1 jn) ] ]));
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"seed\": %d,\n" seed;
  Printf.bprintf buf "  \"time_limit_seconds\": %.3f,\n" milp_time_limit;
  Printf.bprintf buf
    "  \"lp_kernel\": {\"models\": %d, \"repeats\": %d, \"seconds_tableau\": \
     %.4f, \"seconds_revised\": %.4f, \"speedup\": %.3f, \"all_agree\": %b},\n"
    nmodels milp_lp_repeats s_tab s_rev lp_speedup lp_agree;
  Buffer.add_string buf "  \"bnb\": [\n";
  (* NaN objectives (no solution) and speedups against a 0-node run are
     emitted as null: strict JSON has no NaN/Infinity literals. *)
  let jf fmt v = if Float.is_finite v then Printf.sprintf fmt v else "null" in
  List.iteri
    (fun i (tasks, vars, rows, tab, rev) ->
      let per_s r = float_of_int r.me_nodes /. Float.max r.me_seconds 1e-9 in
      Printf.bprintf buf
        "    {\"tasks\": %d, \"vars\": %d, \"rows\": %d, \"tableau\": \
         {\"seconds\": %.4f, \"nodes\": %d, \"nodes_per_s\": %.1f, \
         \"objective\": %s, \"proved_optimal\": %b, \"makespan\": %d}, \
         \"revised\": {\"seconds\": %.4f, \"nodes\": %d, \"nodes_per_s\": \
         %.1f, \"objective\": %s, \"proved_optimal\": %b, \"makespan\": \
         %d}, \"nodes_per_s_speedup\": %s, \"objectives_agree\": %b, \
         \"never_worse\": %b}%s\n"
        tasks vars rows tab.me_seconds tab.me_nodes (per_s tab)
        (jf "%.4f" tab.me_objective) tab.me_proved tab.me_makespan
        rev.me_seconds rev.me_nodes (per_s rev)
        (jf "%.4f" rev.me_objective) rev.me_proved rev.me_makespan
        (if tab.me_nodes = 0 then "null"
         else jf "%.3f" (per_s rev /. Float.max (per_s tab) 1e-9))
        (objectives_agree tab rev) (never_worse tab rev)
        (if i = List.length bnb - 1 then "" else ","))
    bnb;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf
    "  \"bnb_totals\": {\"nodes_per_s_tableau\": %.1f, \
     \"nodes_per_s_revised\": %.1f, \"nodes_per_s_speedup\": %.3f},\n"
    nps_tab nps_rev nps_speedup;
  Printf.bprintf buf
    "  \"parallel\": {\"jobs\": %d, \"tasks\": %d, \"jobs1\": {\"seconds\": \
     %.4f, \"nodes\": %d, \"makespan\": %d}, \"jobsN\": {\"seconds\": %.4f, \
     \"nodes\": %d, \"makespan\": %d}, \"objectives_agree\": %b},\n"
    par_jobs par_tasks j1.me_seconds j1.me_nodes j1.me_makespan jn.me_seconds
    jn.me_nodes jn.me_makespan (objectives_agree j1 jn);
  Printf.bprintf buf "  \"engines_agree\": %b,\n" engines_agree;
  Printf.bprintf buf "  \"never_worse\": %b\n" makespan_ok;
  Buffer.add_string buf "}\n";
  Run_store.write_section ~section:"milp" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation_ordering () =
  print_endline "";
  print_endline
    "== Ablation: non-critical task ordering in regions definition ==";
  let t =
    Table.create [ "# Tasks"; "efficiency (PA)"; "cost"; "topological"; "random(1)" ]
  in
  List.iter
    (fun tasks ->
      let insts = Suite.group ~seed ~tasks ~count:graphs_per_group () in
      let mean_for ordering =
        let ms =
          List.map
            (fun inst ->
              let config = { Pa.default_config with Pa.ordering } in
              let sched, _ = Pa.run ~config inst in
              must_validate "PA(ordering)" sched;
              float_of_int (Schedule.makespan sched))
            insts
        in
        Stats.mean (Array.of_list ms)
      in
      Table.add_row t
        [
          string_of_int tasks;
          Table.cell_f ~decimals:0 (mean_for Regions_define.By_efficiency);
          Table.cell_f ~decimals:0 (mean_for Regions_define.By_cost);
          Table.cell_f ~decimals:0 (mean_for Regions_define.Topological);
          Table.cell_f ~decimals:0
            (mean_for (Regions_define.Random (Rng.create seed)));
        ])
    [ 30; 60 ];
  Table.print t

let ablation_module_reuse () =
  print_endline "";
  print_endline "== Ablation: module reuse (paper future work) ==";
  let t = Table.create [ "algorithm"; "reuse off"; "reuse on"; "delta" ] in
  let insts = Suite.group ~seed ~tasks:40 ~count:graphs_per_group () in
  let mean ms = Stats.mean (Array.of_list ms) in
  let pa_off =
    mean
      (List.map
         (fun i -> float_of_int (Schedule.makespan (fst (Pa.run i))))
         insts)
  in
  let pa_on =
    mean
      (List.map
         (fun i ->
           let config = { Pa.default_config with Pa.module_reuse = true } in
           float_of_int (Schedule.makespan (fst (Pa.run ~config i))))
         insts)
  in
  let is5 reuse =
    mean
      (List.map
         (fun i ->
           let config =
             { (Isk.config ~k:5) with
               Isk.chunk_node_limit = isk_node_cap;
               Isk.module_reuse = reuse }
           in
           float_of_int (Schedule.makespan (fst (Isk.run ~config i))))
         insts)
  in
  let is5_off = is5 false and is5_on = is5 true in
  let row name off on =
    Table.add_row t
      [
        name;
        Table.cell_f ~decimals:0 off;
        Table.cell_f ~decimals:0 on;
        Table.cell_pct (Stats.improvement_pct ~baseline:off ~value:on);
      ]
  in
  row "PA (40 tasks)" pa_off pa_on;
  row "IS-5 (40 tasks)" is5_off is5_on;
  Table.print t

let ablation_floorplan_engines () =
  print_endline "";
  print_endline
    "== Ablation: floorplan engines (random region sets on minifab, where \
     both engines can decide) ==";
  let t =
    Table.create
      [ "engine"; "feasible"; "infeasible"; "unknown"; "avg time [ms]" ]
  in
  let rng = Rng.create (seed lxor 0xF100) in
  let needs_sets =
    List.init 24 (fun _ ->
        let count = 1 + Rng.int rng 4 in
        Array.init count (fun _ ->
            Resource.make
              ~clb:(50 + Rng.int rng 220)
              ~bram:(Rng.int rng 9)
              ~dsp:(Rng.int rng 14)))
  in
  let agreement = ref 0 and comparable = ref 0 in
  let verdicts engine =
    List.map
      (fun needs ->
        let device = Resched_fabric.Device.minifab in
        let report = Floorplanner.check ~engine device needs in
        (report.Floorplanner.verdict, report.Floorplanner.elapsed))
      needs_sets
  in
  let back = verdicts Floorplanner.Backtracking in
  let milp = verdicts Floorplanner.Milp in
  List.iter2
    (fun (vb, _) (vm, _) ->
      match (vb, vm) with
      | Floorplanner.Feasible _, Floorplanner.Feasible _
      | Floorplanner.Infeasible, Floorplanner.Infeasible ->
        incr comparable;
        incr agreement
      | Floorplanner.Unknown, _ | _, Floorplanner.Unknown -> ()
      | _ -> incr comparable)
    back milp;
  let summarize name results =
    let feas = ref 0 and infeas = ref 0 and unk = ref 0 and time = ref 0. in
    List.iter
      (fun (v, s) ->
        time := !time +. s;
        match v with
        | Floorplanner.Feasible _ -> incr feas
        | Floorplanner.Infeasible -> incr infeas
        | Floorplanner.Unknown -> incr unk)
      results;
    Table.add_row t
      [
        name;
        string_of_int !feas;
        string_of_int !infeas;
        string_of_int !unk;
        Table.cell_f ~decimals:2
          (1000. *. !time /. float_of_int (List.length results));
      ]
  in
  summarize "backtracking" back;
  summarize "milp" milp;
  Table.print t;
  Printf.printf "  decided-verdict agreement: %d/%d\n" !agreement !comparable

let related_work_ilp_viability () =
  print_endline "";
  print_endline
    "== Related work: monolithic ILP [8] viability (time limit 5s/size) ==";
  print_endline
    "   (the paper dismisses the exact ILP as 'not viable even for small\n\
    \    problem instances'; this section reproduces that observation)";
  let t =
    Table.create
      [ "# Tasks"; "vars"; "rows"; "outcome"; "ILP time [s]"; "PA time [s]";
        "makespan vs exhaustive" ]
  in
  List.iter
    (fun tasks ->
      let inst =
        Suite.instance ~params:ilp_tiny_params ~arch:Arch.mini
          (Rng.create (seed + tasks)) ~tasks
      in
      let vars, rows = Resched_baseline.Ilp_exact.model_size inst in
      let (ilp, ilp_s) =
        timed (fun () ->
            Resched_baseline.Ilp_exact.solve ~node_limit:500_000
              ~time_limit:5. inst)
      in
      let (_, pa_s) = timed (fun () -> Pa.run inst) in
      let opt = Resched_baseline.Optimal.schedule inst in
      let outcome, gap =
        match ilp with
        | Some r when r.Resched_baseline.Ilp_exact.proved_optimal ->
          must_validate "ILP" r.Resched_baseline.Ilp_exact.schedule;
          ( "proved optimal",
            Printf.sprintf "%d vs %d"
              (Schedule.makespan r.Resched_baseline.Ilp_exact.schedule)
              (Schedule.makespan opt.Resched_baseline.Optimal.schedule) )
        | Some r ->
          must_validate "ILP" r.Resched_baseline.Ilp_exact.schedule;
          ( "feasible only",
            Printf.sprintf "%d vs %d"
              (Schedule.makespan r.Resched_baseline.Ilp_exact.schedule)
              (Schedule.makespan opt.Resched_baseline.Optimal.schedule) )
        | None -> ("no solution", "-")
      in
      Table.add_row t
        [
          string_of_int tasks;
          string_of_int vars;
          string_of_int rows;
          outcome;
          Table.cell_f ilp_s;
          Table.cell_f pa_s;
          gap;
        ])
    [ 2; 3; 4; 5; 6 ];
  Table.print t

let ablation_robustness () =
  print_endline "";
  print_endline
    "== Ablation: schedule robustness under runtime jitter (resched_sim) ==";
  let insts = Suite.group ~seed ~tasks:30 ~count:graphs_per_group () in
  let t =
    Table.create
      [ "scheduler"; "mean slowdown (±20%)"; "mean slowdown (+40% delays)" ]
  in
  let schedules =
    List.map
      (fun inst ->
        let pa, _ = Pa.run inst in
        let is5, _ =
          Isk.run
            ~config:{ (Isk.config ~k:5) with Isk.chunk_node_limit = isk_node_cap }
            inst
        in
        let heft = List_sched.run inst in
        [ ("PA", pa); ("IS-5", is5); ("HEFT", heft) ])
      insts
  in
  List.iter
    (fun name ->
      let slowdown jitter =
        let samples =
          List.map
            (fun per_inst ->
              let sched = List.assoc name per_inst in
              let rng = Rng.create (seed lxor 0x51) in
              (Resched_sim.Executor.robustness ~rng ~trials:60 ~jitter sched)
                .Resched_sim.Executor.mean_slowdown)
            schedules
        in
        Stats.mean (Array.of_list samples)
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "x%.3f" (slowdown (Resched_sim.Executor.Uniform 0.2));
          Printf.sprintf "x%.3f" (slowdown (Resched_sim.Executor.Delay_only 0.4));
        ])
    [ "PA"; "IS-5"; "HEFT" ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fault campaign: survival and degradation per recovery policy        *)

let fault_campaign () =
  print_endline "";
  Printf.printf
    "== Fault campaign: recovery policies under the default fault plan \
     (%d trials per schedule, jobs=%d) ==\n"
    fault_trials par_jobs;
  let policies = [ Repair.Retry; Repair.Sw_fallback; Repair.Resched_tail ] in
  let t =
    Table.create
      [ "# Tasks"; "policy"; "survival"; "mean degr"; "p95 degr";
        "worst degr"; "fired"; "moot"; "retries"; "migrations"; "retimes" ]
  in
  let rows =
    List.concat_map
      (fun tasks ->
        match Suite.group ~seed ~tasks ~count:1 () with
        | [ inst ] ->
          let sched, _ = Pa.run inst in
          must_validate "PA(faults)" sched;
          List.map
            (fun policy ->
              let s =
                Campaign.run ~jobs:par_jobs ~trials:fault_trials
                  ~seed:(seed + (17 * tasks)) ~policy sched
              in
              let count k =
                Option.value ~default:0 (List.assoc_opt k s.Campaign.actions)
              in
              Table.add_row t
                [
                  string_of_int tasks;
                  Repair.policy_name policy;
                  Printf.sprintf "%d/%d" s.Campaign.survived s.Campaign.trials;
                  Printf.sprintf "x%.3f" s.Campaign.mean_degradation;
                  Printf.sprintf "x%.3f" s.Campaign.p95_degradation;
                  Printf.sprintf "x%.3f" s.Campaign.worst_degradation;
                  string_of_int s.Campaign.faults_fired;
                  string_of_int s.Campaign.faults_moot;
                  string_of_int (count "retry");
                  string_of_int (count "migrate");
                  string_of_int (count "retime");
                ];
              (tasks, s))
            policies
        | _ -> assert false)
      [ 20; 40; 60 ]
  in
  Table.print t;
  let sw_full_recovery =
    List.for_all
      (fun (_, (s : Campaign.summary)) ->
        s.Campaign.policy = Repair.Retry || s.Campaign.survival_rate = 1.0)
      rows
  and all_valid =
    List.for_all (fun (_, s) -> s.Campaign.all_valid) rows
  in
  Printf.printf
    "  SW-capable policies recovered every trial: %b; every repaired \
     schedule validated: %b\n"
    sw_full_recovery all_valid;
  write_csv "faults.csv"
    ([ "tasks"; "policy"; "trials"; "survived"; "survival_rate";
       "mean_degradation"; "p95_degradation"; "worst_degradation";
       "faults_fired"; "faults_moot"; "retries"; "migrations"; "retimes";
       "all_valid" ]
    :: List.map
         (fun (tasks, (s : Campaign.summary)) ->
           let count k =
             Option.value ~default:0 (List.assoc_opt k s.Campaign.actions)
           in
           [
             string_of_int tasks;
             Repair.policy_name s.Campaign.policy;
             string_of_int s.Campaign.trials;
             string_of_int s.Campaign.survived;
             Printf.sprintf "%.4f" s.Campaign.survival_rate;
             Printf.sprintf "%.4f" s.Campaign.mean_degradation;
             Printf.sprintf "%.4f" s.Campaign.p95_degradation;
             Printf.sprintf "%.4f" s.Campaign.worst_degradation;
             string_of_int s.Campaign.faults_fired;
             string_of_int s.Campaign.faults_moot;
             string_of_int (count "retry");
             string_of_int (count "migrate");
             string_of_int (count "retime");
             string_of_bool s.Campaign.all_valid;
           ])
         rows);
  (* Machine-readable record; CI's fault-campaign guard reads this. *)
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"seed\": %d,\n" seed;
  Printf.bprintf buf "  \"trials\": %d,\n" fault_trials;
  Printf.bprintf buf "  \"jobs\": %d,\n" par_jobs;
  Buffer.add_string buf "  \"campaigns\": [\n";
  List.iteri
    (fun i (tasks, (s : Campaign.summary)) ->
      Printf.bprintf buf
        "    {\"tasks\": %d, \"policy\": \"%s\", \"trials\": %d, \
         \"survived\": %d, \"survival_rate\": %.4f, \"mean_degradation\": \
         %.4f, \"p95_degradation\": %.4f, \"worst_degradation\": %.4f, \
         \"faults_fired\": %d, \"faults_moot\": %d, \"actions\": {%s}, \
         \"all_valid\": %b}%s\n"
        tasks
        (Repair.policy_name s.Campaign.policy)
        s.Campaign.trials s.Campaign.survived s.Campaign.survival_rate
        s.Campaign.mean_degradation s.Campaign.p95_degradation
        s.Campaign.worst_degradation s.Campaign.faults_fired
        s.Campaign.faults_moot
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v)
              s.Campaign.actions))
        s.Campaign.all_valid
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf "  \"sw_policies_full_recovery\": %b,\n" sw_full_recovery;
  Printf.bprintf buf "  \"all_valid\": %b\n" all_valid;
  Buffer.add_string buf "}\n";
  Run_store.write_section ~section:"faults" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one kernel per table/figure)             *)

let bechamel_suite () =
  let open Bechamel in
  let rng = Rng.create seed in
  let inst30 = Suite.instance rng ~tasks:30 in
  let inst100 = Suite.instance rng ~tasks:100 in
  let pa_needs =
    let sched = Pa.schedule_once ~resource_scale:0.9 inst30 in
    Array.map (fun (r : Schedule.region) -> r.Schedule.res)
      sched.Schedule.regions
  in
  let durations =
    Array.init (Instance.size inst100) (fun u -> Instance.min_time inst100 u)
  in
  (* A state shaped by the real pipeline, frozen after step 7's input is
     ready: the from-scratch [Timing.resolve] and the incremental
     [Timing.Solver] replay the same augmented graph and sequence. *)
  let timing_state =
    let impl_of =
      Impl_select.run inst100 ~max_res:(Arch.max_res inst100.Instance.arch)
    in
    let st = State.create inst100 ~impl_of () in
    Regions_define.run ~ordering:Regions_define.By_efficiency st;
    Sw_balance.run st;
    Sw_map.run st;
    st
  in
  let specs, sequence = Reconf_sched.run timing_state in
  let solver = Timing.Solver.create timing_state ~reconfigs:specs in
  let ctx100 = Pa.Context.create inst100 in
  let tests =
    [
      Test.make ~name:"table1/pa_schedule_once_30"
        (Staged.stage (fun () -> ignore (Pa.schedule_once inst30)));
      Test.make ~name:"table1/is1_schedule_once_30"
        (Staged.stage (fun () ->
             ignore (Isk.schedule_once ~config:(Isk.config ~k:1) inst30)));
      Test.make ~name:"table1/floorplan_backtracking_30"
        (Staged.stage (fun () ->
             ignore (Floorplanner.check Arch.zedboard.Arch.device pa_needs)));
      Test.make ~name:"fig2/heft_30"
        (Staged.stage (fun () -> ignore (List_sched.schedule_once inst30)));
      Test.make ~name:"fig6/par_iteration_30"
        (Staged.stage (fun () ->
             let config =
               { Pa.default_config with
                 Pa.ordering = Regions_define.Random (Rng.create 1) }
             in
             ignore (Pa.schedule_once ~config inst30)));
      Test.make ~name:"substrate/cpm_100"
        (Staged.stage (fun () ->
             ignore (Cpm.compute inst100.Instance.graph ~durations)));
      Test.make ~name:"iteration/timing_resolve_scratch_100"
        (Staged.stage (fun () ->
             ignore
               (Timing.resolve timing_state ~reconfigs:specs ~sequence)));
      Test.make ~name:"iteration/timing_solver_resolve_100"
        (Staged.stage (fun () ->
             ignore (Timing.Solver.resolve solver ~sequence)));
      Test.make ~name:"iteration/schedule_once_scratch_100"
        (Staged.stage (fun () ->
             ignore (Pa.schedule_once ~incremental:false inst100)));
      Test.make ~name:"iteration/schedule_once_ctx_100"
        (Staged.stage (fun () -> ignore (Pa.schedule_once ~ctx:ctx100 inst100)));
      Test.make ~name:"substrate/simplex_textbook"
        (Staged.stage (fun () ->
             let m = Lp.create ~objective:Lp.Maximize () in
             let x = Lp.add_var m ~obj:3. () in
             let y = Lp.add_var m ~obj:5. () in
             Lp.add_constraint m [ (x, 1.) ] Lp.Le 4.;
             Lp.add_constraint m [ (y, 2.) ] Lp.Le 12.;
             Lp.add_constraint m [ (x, 3.); (y, 2.) ] Lp.Le 18.;
             ignore (Simplex.solve m)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
    in
    let raw = Benchmark.all cfg instances test in
    List.map (fun i -> Analyze.all ols i raw) instances
  in
  print_endline "";
  print_endline "== Bechamel micro-benchmarks (ns per run) ==";
  let results = benchmark (Test.make_grouped ~name:"resched" tests) in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-45s %14.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-45s (no estimate)\n" name)
        tbl)
    results

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Section registry and driver                                         *)

(* Table 1, Figs. 2-6: the paper's headline evaluation. *)
let section_paper () =
  Printf.printf
    "resched benchmark harness: seed=%d, %d graphs/group, groups=[%s],\n\
     IS-k node cap=%d, PA-R budget cap=%.1fs\n%!"
    seed graphs_per_group
    (String.concat "," (List.map string_of_int groups))
    isk_node_cap par_budget_cap;
  let all =
    List.map
      (fun tasks ->
        Printf.printf "running group %d...\n%!" tasks;
        (tasks, collect_group tasks))
      groups
  in
  print_table1 all;
  print_fig2 all;
  let fig3 =
    improvement_figure
      ~title:"Figure 3: average improvement of PA vs IS-1 (paper: ~14.8% avg)"
      ~csv_name:"fig3.csv"
      ~baseline:(fun r -> r.is1_makespan)
      ~value:(fun r -> r.pa_makespan)
      all
  in
  let fig4 =
    improvement_figure
      ~title:
        "Figure 4: average improvement of PA vs IS-5 (paper: smaller than Fig. 3)"
      ~csv_name:"fig4.csv"
      ~baseline:(fun r -> r.is5_makespan)
      ~value:(fun r -> r.pa_makespan)
      all
  in
  let fig5 =
    improvement_figure
      ~title:
        "Figure 5: average improvement of PA-R vs IS-5 at equal budget (paper: ~22.3% for >=20 tasks)"
      ~csv_name:"fig5.csv"
      ~baseline:(fun r -> r.is5_makespan)
      ~value:(fun r -> r.par_makespan)
      all
  in
  print_fig6 ();
  Printf.printf
    "\nsummary: PA-vs-IS1 %+.1f%%, PA-vs-IS5 %+.1f%%, PAR-vs-IS5 %+.1f%%\n"
    fig3 fig4 fig5

let section_ablations () =
  ablation_ordering ();
  ablation_module_reuse ();
  ablation_floorplan_engines ();
  ablation_robustness ()

(* Every runnable section, in default execution order. "bechamel" only
   runs when selected explicitly or RESCHED_BECHAMEL=1 (it is slow and
   its output is not consumed by ab/check). *)
let all_sections =
  [
    ("paper", section_paper);
    ("parallel", parallel_comparison);
    ("iteration", iteration_comparison);
    ("moves", moves_comparison);
    ("batch", batch_comparison);
    ("serve", serve_comparison);
    ("serve_concurrency", serve_concurrency);
    ("floorplan", floorplan_oracle_comparison);
    ("milp", milp_comparison);
    ("ablations", section_ablations);
    ("faults", fault_campaign);
    ("related", related_work_ilp_viability);
    ("bechamel", bechamel_suite);
  ]

let section_names = List.map fst all_sections

let default_sections =
  List.filter
    (fun n -> n <> "bechamel" || env_set "RESCHED_BECHAMEL")
    section_names

let run_sections names =
  List.iter
    (fun n ->
      match List.assoc_opt n all_sections with
      | Some f ->
        (* S1: GC counters per section into the run manifest. Counters
           are per-domain, so this sees the orchestrating domain only —
           the worker-side allocation rates live in the iteration/batch
           section logs. *)
        let before = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        f ();
        let elapsed_s = Unix.gettimeofday () -. t0 in
        Run_store.record_section_gc ~section:n ~elapsed_s before
          (Gc.quick_stat ())
      | None ->
        failwith
          (Printf.sprintf "unknown section %s (known: %s)" n
             (String.concat ", " section_names)))
    names
