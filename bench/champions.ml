(* Champion tracking: the best PA-R makespan ever recorded per task
   group, with the heuristic-parameter variant (jobs, seed, budget,
   shrink factor) that achieved it and the run that produced it.
   [<out_dir>/champions.json] persists across runs, so a parameter
   experiment can tell at a glance whether it beat the best-known
   configuration instead of only its own baseline. *)

module Json = Resched_util.Json

type entry = {
  tasks : int;
  makespan : int;
  variant : Json.t;
  run_id : string;
}

let path () = Filename.concat Bench_env.out_dir "champions.json"

let entry_json e =
  Json.Obj
    [
      ("tasks", Json.Int e.tasks);
      ("makespan", Json.Int e.makespan);
      ("variant", e.variant);
      ("run_id", Json.String e.run_id);
    ]

let entry_of_json j =
  match
    ( Option.bind (Json.member "tasks" j) Json.get_int,
      Option.bind (Json.member "makespan" j) Json.get_int,
      Json.member "variant" j,
      Option.bind (Json.member "run_id" j) Json.get_string )
  with
  | Some tasks, Some makespan, Some variant, Some run_id ->
    Some { tasks; makespan; variant; run_id }
  | _ -> None

let load () =
  if not (Sys.file_exists (path ())) then []
  else
    match Json.parse_file (path ()) with
    | Error _ -> []
    | Ok j -> (
      match Option.bind (Json.member "champions" j) Json.to_list with
      | None -> []
      | Some l -> List.filter_map entry_of_json l)

let save entries =
  Bench_env.ensure_out_dir ();
  Json.write_file (path ())
    (Json.Obj
       [
         ("schema", Json.String "resched-bench-champions/1");
         ( "champions",
           Json.List
             (List.map entry_json
                (List.sort (fun a b -> compare a.tasks b.tasks) entries)) );
       ])

(* Fold a run's per-group results into the champions file. A candidate
   dethrones the stored champion only on a strictly better makespan, so
   the file is monotone and ties keep the earliest variant. Returns the
   dethroned groups as (tasks, old, new). *)
let update ~run_id candidates =
  let existing = load () in
  let improved = ref [] in
  let merged =
    List.fold_left
      (fun acc (tasks, makespan, variant) ->
        let cand = { tasks; makespan; variant; run_id } in
        match List.partition (fun e -> e.tasks = tasks) acc with
        | [], rest ->
          improved := (tasks, None, makespan) :: !improved;
          cand :: rest
        | old :: _, rest ->
          if makespan < old.makespan then begin
            improved := (tasks, Some old.makespan, makespan) :: !improved;
            cand :: rest
          end
          else old :: rest)
      existing candidates
  in
  save merged;
  List.rev !improved

let print () =
  match load () with
  | [] -> Printf.printf "no champions recorded (%s missing)\n" (path ())
  | entries ->
    Printf.printf "PA-R champions (%s):\n" (path ());
    List.iter
      (fun e ->
        Printf.printf "  %3d tasks: makespan %d  (run %s, variant %s)\n"
          e.tasks e.makespan e.run_id
          (String.trim (Json.to_string ~indent:0 e.variant)))
      (List.sort (fun a b -> compare a.tasks b.tasks) entries)
