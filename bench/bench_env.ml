(* Shared bench configuration: every knob is an environment variable so
   CI and local runs stay reproducible without flag plumbing. Defaults in
   brackets:

     RESCHED_SEED                [42]    suite seed
     RESCHED_GRAPHS_PER_GROUP    [4]     instances per task-count group
     RESCHED_GROUPS              [10,20,...,100] comma-separated task counts
     RESCHED_ISK_NODE_CAP        [50000] IS-k branch&bound nodes per chunk
     RESCHED_PAR_BUDGET_CAP_MS   [1500]  cap on the PA-R budget (otherwise
                                         the measured IS-5 time, as in the
                                         paper)
     RESCHED_JOBS                [4]     requested worker domains for the
                                         parallel PA-R comparison; the
                                         effective width is clamped to the
                                         core count and both are recorded
     RESCHED_SCALE_JOBS          [1,2,4] widths of the PA-R scaling curve
     RESCHED_PIN                 [unset] set to 1 to pin pool workers to
                                         cores (Linux only)
     RESCHED_FIG6_BUDGET_MS      [4000]  PA-R budget for the Fig. 6 traces
     RESCHED_ITER_MIN            [1000]  iterations per engine for the
                                         incremental-vs-from-scratch
                                         throughput comparison (also used
                                         by its saturated-fabric cache
                                         batch)
     RESCHED_FP_CHECKS           [120]   oracle checks per group in the
                                         floorplan v1-vs-v2 comparison
     RESCHED_FP_E2E_ITERS        [40]    PA-R iterations per engine in the
                                         floorplan end-to-end makespan check
     RESCHED_MILP_TIME_LIMIT_MS  [5000]  per-solve budget for the MILP
                                         engine comparison (tableau vs
                                         revised simplex)
     RESCHED_MILP_LP_REPEATS     [30]    timed repetitions per model in
                                         the LP kernel comparison
     RESCHED_FAULT_TRIALS        [100]   Monte-Carlo trials per (schedule,
                                         policy) in the fault campaign
     RESCHED_MOVES_PER_INSTANCE  [400]   timed move applications per
                                         instance in the delta-kernel
                                         moves/s comparison
     RESCHED_LNS_BUDGET_MS       [1000]  total wall budget per instance for
                                         the LNS-vs-PA-R equal-budget
                                         comparison (PA-R gets all of it;
                                         the LNS arm splits it half
                                         seeding, half polishing)
     RESCHED_SERVE_REQUESTS      [24]    requests per offered-load level in
                                         the serve section
     RESCHED_SERVE_ITER          [200]   restart budget per serve request
     RESCHED_SERVE_TASKS         [30]    task count of the serve section's
                                         instances
     RESCHED_SERVE_CAPACITY      [8]     admission-queue capacity of the
                                         bench server
     RESCHED_SERVE_CONC_REQUESTS [16]    requests per client in the
                                         serve_concurrency sweep
     RESCHED_SERVE_CONC_ITER     [120]   restart budget per request in the
                                         serve_concurrency sweep
     RESCHED_SERVE_CONC_TASKS    [24]    task count of the
                                         serve_concurrency instances
     RESCHED_OUT_DIR             [bench_out] where CSV series and run
                                         directories are written
     RESCHED_BECHAMEL            [unset] set to 1 to also run the Bechamel
                                         micro-benchmarks
*)

module Csv = Resched_util.Csv
module Domain_pool = Resched_util.Domain_pool

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_set name = Sys.getenv_opt name = Some "1"

let env_int_list name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
    let vs =
      String.split_on_char ',' s
      |> List.filter_map int_of_string_opt
      |> List.filter (fun v -> v > 0)
    in
    if vs = [] then default else vs

let seed = env_int "RESCHED_SEED" 42

let par_jobs_requested = Stdlib.max 2 (env_int "RESCHED_JOBS" 4)

(* Requested-vs-effective fan-out for the parallel comparison. Domains
   beyond the core count don't just timeshare under OCaml 5, they stall
   each other on minor-GC barriers, so the effective width is clamped;
   every JSON record carries both numbers plus the core count
   (satellite: no bench output may silently present a clamped run as the
   requested width). *)
let par_plan = Domain_pool.plan_jobs ~requested:par_jobs_requested ()

let par_jobs = par_plan.Domain_pool.effective

(* Widths of the scaling-curve table (requested; each is re-planned
   against the core count when it runs). The requested comparison width
   is always included. *)
let scale_widths =
  env_int_list "RESCHED_SCALE_JOBS" [ 1; 2; 4 ]
  |> List.cons par_jobs_requested |> List.cons 1 |> List.sort_uniq compare

let graphs_per_group = env_int "RESCHED_GRAPHS_PER_GROUP" 4
let isk_node_cap = env_int "RESCHED_ISK_NODE_CAP" 50_000

let par_budget_cap =
  float_of_int (env_int "RESCHED_PAR_BUDGET_CAP_MS" 1500) /. 1000.

let fig6_budget = float_of_int (env_int "RESCHED_FIG6_BUDGET_MS" 4000) /. 1000.
let iter_min = Stdlib.max 1 (env_int "RESCHED_ITER_MIN" 1000)

let milp_time_limit =
  float_of_int (env_int "RESCHED_MILP_TIME_LIMIT_MS" 5000) /. 1000.

let milp_lp_repeats = Stdlib.max 1 (env_int "RESCHED_MILP_LP_REPEATS" 30)
let fault_trials = Stdlib.max 1 (env_int "RESCHED_FAULT_TRIALS" 100)
let moves_per_instance = Stdlib.max 50 (env_int "RESCHED_MOVES_PER_INSTANCE" 400)
let lns_budget = float_of_int (env_int "RESCHED_LNS_BUDGET_MS" 1000) /. 1000.
let serve_requests = Stdlib.max 4 (env_int "RESCHED_SERVE_REQUESTS" 24)
let serve_iter = Stdlib.max 1 (env_int "RESCHED_SERVE_ITER" 200)
let serve_tasks = Stdlib.max 5 (env_int "RESCHED_SERVE_TASKS" 30)
let serve_capacity = Stdlib.max 2 (env_int "RESCHED_SERVE_CAPACITY" 8)

let serve_conc_requests =
  Stdlib.max 4 (env_int "RESCHED_SERVE_CONC_REQUESTS" 16)

let serve_conc_iter = Stdlib.max 1 (env_int "RESCHED_SERVE_CONC_ITER" 120)
let serve_conc_tasks = Stdlib.max 5 (env_int "RESCHED_SERVE_CONC_TASKS" 24)

let out_dir =
  match Sys.getenv_opt "RESCHED_OUT_DIR" with Some d -> d | None -> "bench_out"

let groups =
  env_int_list "RESCHED_GROUPS" [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]

(* mkdir -p, tolerating concurrent creation: RESCHED_OUT_DIR may be
   nested (a/b/c) and several writers may race on the same suffix. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ensure_out_dir () = mkdir_p out_dir

let write_csv name rows =
  ensure_out_dir ();
  let path = Filename.concat out_dir name in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Csv.write oc rows);
  Printf.printf "  [csv] %s\n%!" path

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)
