(* Tests for the fabric substrate: resource vectors, the bitstream model
   (eqs. 1-2) and the device geometry. *)

module Resource = Resched_fabric.Resource
module Bitstream = Resched_fabric.Bitstream
module Device = Resched_fabric.Device

let res = Alcotest.testable Resource.pp Resource.equal

let v ~clb ~bram ~dsp = Resource.make ~clb ~bram ~dsp

let test_resource_arith () =
  let a = v ~clb:10 ~bram:2 ~dsp:1 and b = v ~clb:5 ~bram:1 ~dsp:3 in
  Alcotest.check res "add" (v ~clb:15 ~bram:3 ~dsp:4) (Resource.add a b);
  Alcotest.check res "sub" (v ~clb:5 ~bram:1 ~dsp:(-2)) (Resource.sub a b);
  Alcotest.check res "max" (v ~clb:10 ~bram:2 ~dsp:3)
    (Resource.max_components a b);
  Alcotest.(check int) "total" 13 (Resource.total_units a)

let test_resource_fits () =
  let small = v ~clb:5 ~bram:1 ~dsp:0 and big = v ~clb:10 ~bram:1 ~dsp:0 in
  Alcotest.(check bool) "fits" true (Resource.fits small ~within:big);
  Alcotest.(check bool) "does not fit" false (Resource.fits big ~within:small);
  Alcotest.(check bool) "equal fits" true (Resource.fits big ~within:big)

let test_resource_scale () =
  Alcotest.check res "90%" (v ~clb:9 ~bram:1 ~dsp:0)
    (Resource.scale (v ~clb:10 ~bram:2 ~dsp:1) 0.9);
  Alcotest.check res "identity" (v ~clb:10 ~bram:2 ~dsp:1)
    (Resource.scale (v ~clb:10 ~bram:2 ~dsp:1) 1.0)

let test_resource_get_set () =
  let a = v ~clb:1 ~bram:2 ~dsp:3 in
  Array.iter
    (fun kind ->
      let a' = Resource.set a kind 9 in
      Alcotest.(check int) "set/get" 9 (Resource.get a' kind))
    Resource.kinds;
  Alcotest.(check (option string)) "kind name round-trip" (Some "CLB")
    (Option.map Resource.kind_name (Resource.kind_of_name "clb"))

let test_bits_per_unit () =
  (* CLB: 36 frames * 3232 bits / 50 slices = 2327.04 bits per slice. *)
  Alcotest.(check (float 1e-6)) "CLB" 2327.04
    (Bitstream.bits_per_unit Bitstream.seven_series Resource.Clb);
  Alcotest.(check (float 1e-6)) "BRAM" 9049.6
    (Bitstream.bits_per_unit Bitstream.seven_series Resource.Bram);
  Alcotest.(check (float 1e-6)) "DSP" 4524.8
    (Bitstream.bits_per_unit Bitstream.seven_series Resource.Dsp)

let test_region_bits_additive () =
  let m = Bitstream.seven_series in
  let a = v ~clb:10 ~bram:1 ~dsp:0 and b = v ~clb:5 ~bram:0 ~dsp:2 in
  Alcotest.(check (float 1e-6)) "additive"
    (Bitstream.region_bits m a +. Bitstream.region_bits m b)
    (Bitstream.region_bits m (Resource.add a b))

let test_reconf_ticks () =
  let m = Bitstream.seven_series in
  (* 100 CLB = 232704 bits; at 3200 bits/tick -> ceil(72.72) = 73. *)
  Alcotest.(check int) "100 CLB" 73
    (Bitstream.reconf_ticks m ~bits_per_tick:3200. (v ~clb:100 ~bram:0 ~dsp:0));
  Alcotest.(check int) "zero region" 0
    (Bitstream.reconf_ticks m ~bits_per_tick:3200. Resource.zero);
  Alcotest.(check int) "at least 1 tick" 1
    (Bitstream.reconf_ticks m ~bits_per_tick:1e12 (v ~clb:1 ~bram:0 ~dsp:0))

let test_xc7z020_totals () =
  let d = Device.xc7z020 in
  Alcotest.check res "totals" (v ~clb:13350 ~bram:150 ~dsp:240) d.Device.total;
  Alcotest.(check int) "rows" 3 d.Device.rows;
  Alcotest.(check int) "columns" 98 (Array.length d.Device.columns)

let test_other_zynq_totals () =
  Alcotest.check res "xc7z010" (v ~clb:4400 ~bram:60 ~dsp:80)
    Device.xc7z010.Device.total;
  Alcotest.check res "xc7z045" (v ~clb:54950 ~bram:560 ~dsp:980)
    Device.xc7z045.Device.total

let test_device_total_consistent_with_rects () =
  List.iter
    (fun d ->
      let ncols = Array.length d.Device.columns in
      let full =
        Device.rect_resources d ~c0:0 ~c1:(ncols - 1) ~r0:0
          ~r1:(d.Device.rows - 1)
      in
      Alcotest.check res
        (d.Device.name ^ ": full rectangle = total")
        d.Device.total full)
    [ Device.xc7z010; Device.xc7z020; Device.xc7z045; Device.minifab ]

let test_rect_resources_additive_in_rows () =
  let d = Device.xc7z020 in
  let row0 = Device.rect_resources d ~c0:0 ~c1:20 ~r0:0 ~r1:0 in
  let rows01 = Device.rect_resources d ~c0:0 ~c1:20 ~r0:0 ~r1:1 in
  Alcotest.check res "two rows = 2x one row" (Resource.add row0 row0) rows01

let test_rect_resources_bounds () =
  let d = Device.minifab in
  Alcotest.check_raises "bad column"
    (Invalid_argument "Device.rect_resources: bad column span") (fun () ->
      ignore (Device.rect_resources d ~c0:0 ~c1:100 ~r0:0 ~r1:0));
  Alcotest.check_raises "bad row"
    (Invalid_argument "Device.rect_resources: bad row span") (fun () ->
      ignore (Device.rect_resources d ~c0:0 ~c1:1 ~r0:1 ~r1:0))

let test_device_make_rejects_bad_geometry () =
  Alcotest.check_raises "rows must be positive"
    (Invalid_argument "Device.make: rows must be positive") (fun () ->
      ignore
        (Device.make ~name:"x" ~columns:[| Resource.Clb |] ~rows:0
           ~model:Resched_fabric.Bitstream.seven_series));
  Alcotest.check_raises "needs columns"
    (Invalid_argument "Device.make: no columns") (fun () ->
      ignore
        (Device.make ~name:"x" ~columns:[||] ~rows:1
           ~model:Resched_fabric.Bitstream.seven_series))

let test_presets () =
  Alcotest.(check bool) "xc7z020 preset" true (Device.by_name "XC7Z020" <> None);
  Alcotest.(check bool) "minifab preset" true (Device.by_name "minifab" <> None);
  Alcotest.(check bool) "unknown" true (Device.by_name "virtex" = None)

(* Property: any in-bounds rectangle's resources fit within the device
   total, and widening the rectangle never loses resources. *)
let prop_rect_monotone =
  QCheck.Test.make ~count:200 ~name:"rect resources monotone"
    QCheck.(
      quad (int_range 0 97) (int_range 0 97) (int_range 0 2) (int_range 0 2))
    (fun (a, b, r1, r2) ->
      let d = Resched_fabric.Device.xc7z020 in
      let c0 = min a b and c1 = max a b in
      let r0 = min r1 r2 and r1 = max r1 r2 in
      let inner = Device.rect_resources d ~c0 ~c1 ~r0 ~r1 in
      let wider =
        Device.rect_resources d ~c0:(max 0 (c0 - 1)) ~c1 ~r0 ~r1
      in
      Resource.fits inner ~within:d.Device.total
      && Resource.fits inner ~within:wider)

let () =
  Alcotest.run "fabric"
    [
      ( "resource",
        [
          Alcotest.test_case "arithmetic" `Quick test_resource_arith;
          Alcotest.test_case "fits" `Quick test_resource_fits;
          Alcotest.test_case "scale" `Quick test_resource_scale;
          Alcotest.test_case "get/set/kinds" `Quick test_resource_get_set;
        ] );
      ( "bitstream",
        [
          Alcotest.test_case "bits per unit" `Quick test_bits_per_unit;
          Alcotest.test_case "region bits additive" `Quick
            test_region_bits_additive;
          Alcotest.test_case "reconf ticks" `Quick test_reconf_ticks;
        ] );
      ( "device",
        [
          Alcotest.test_case "xc7z020 totals" `Quick test_xc7z020_totals;
          Alcotest.test_case "xc7z010/xc7z045 totals" `Quick
            test_other_zynq_totals;
          Alcotest.test_case "full rect = total" `Quick
            test_device_total_consistent_with_rects;
          Alcotest.test_case "rows additive" `Quick
            test_rect_resources_additive_in_rows;
          Alcotest.test_case "bounds checked" `Quick test_rect_resources_bounds;
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "geometry validation" `Quick
            test_device_make_rejects_bad_geometry;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_rect_monotone ]);
    ]
