(* Tests for the SVG visualization library. *)

module Rng = Resched_util.Rng
module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource
module Suite = Resched_platform.Suite
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Svg = Resched_viz.Svg
module Render = Resched_viz.Render
module Floorplanner = Resched_floorplan.Floorplanner

let count_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_svg_builder () =
  let doc = Svg.create ~width:100. ~height:50. in
  Svg.rect doc ~x:1. ~y:2. ~w:10. ~h:5. ~title:"a<b" ();
  Svg.line doc ~x1:0. ~y1:0. ~x2:10. ~y2:10. ();
  Svg.text doc ~x:5. ~y:5. "hello & goodbye";
  let s = Svg.to_string doc in
  Alcotest.(check int) "one rect" 1 (count_substring s "<rect");
  Alcotest.(check int) "one line" 1 (count_substring s "<line");
  Alcotest.(check int) "one text" 1 (count_substring s "<text");
  Alcotest.(check bool) "escaped title" true
    (count_substring s "a&lt;b" = 1);
  Alcotest.(check bool) "escaped text" true
    (count_substring s "hello &amp; goodbye" = 1);
  Alcotest.(check bool) "closed document" true
    (count_substring s "</svg>" = 1)

let test_svg_escape () =
  Alcotest.(check string) "all specials" "&amp;&lt;&gt;&quot;&apos;"
    (Svg.escape "&<>\"'")

let fixture () =
  let rng = Rng.create 8 in
  let inst = Suite.instance rng ~tasks:15 in
  let sched, _ = Pa.run inst in
  sched

let test_floorplan_render () =
  let sched = fixture () in
  match sched.Schedule.floorplan with
  | None -> Alcotest.fail "fixture has no floorplan"
  | Some placements ->
    let needs =
      Array.map (fun (r : Schedule.region) -> r.Schedule.res)
        sched.Schedule.regions
    in
    let device = Device.xc7z020 in
    (match Floorplanner.validate device ~needs placements with
    | Ok () -> ()
    | Error e -> Alcotest.failf "fixture floorplan invalid: %s" e);
    let svg = Render.floorplan device ~needs placements in
    (* One rect per fabric column, one per lane background... at least
       columns + regions. *)
    let min_rects = Array.length device.Device.columns + Array.length placements in
    Alcotest.(check bool) "enough rectangles" true
      (count_substring svg "<rect" >= min_rects);
    (* Every region label appears. *)
    Array.iteri
      (fun i _ ->
        Alcotest.(check bool)
          (Printf.sprintf "label R%d present" i)
          true
          (count_substring svg (Printf.sprintf ">R%d</text>" i) >= 1))
      placements

let test_gantt_render () =
  let sched = fixture () in
  let svg = Render.gantt sched in
  (* One box per task plus one per reconfiguration (on region lane) plus
     one per reconfiguration (controller lane) plus lane backgrounds. *)
  let slots = Array.length sched.Schedule.slots in
  let rcs = List.length sched.Schedule.reconfigurations in
  Alcotest.(check bool) "enough boxes" true
    (count_substring svg "<rect" >= slots + (2 * rcs));
  Alcotest.(check bool) "mentions makespan" true
    (count_substring svg "makespan:" = 1)

let test_renders_deterministic () =
  let sched = fixture () in
  Alcotest.(check string) "gantt deterministic" (Render.gantt sched)
    (Render.gantt sched)

let () =
  Alcotest.run "viz"
    [
      ( "svg",
        [
          Alcotest.test_case "builder" `Quick test_svg_builder;
          Alcotest.test_case "escape" `Quick test_svg_escape;
        ] );
      ( "render",
        [
          Alcotest.test_case "floorplan" `Quick test_floorplan_render;
          Alcotest.test_case "gantt" `Quick test_gantt_render;
          Alcotest.test_case "deterministic" `Quick test_renders_deterministic;
        ] );
    ]
