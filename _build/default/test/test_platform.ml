(* Tests for the platform substrate: implementations, architectures,
   instances, the benchmark suite generator and the instance text
   format. *)

module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device
module Graph = Resched_taskgraph.Graph
module Impl = Resched_platform.Impl
module Arch = Resched_platform.Arch
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Io = Resched_platform.Io

let test_impl_constructors () =
  let sw = Impl.sw ~time:10 in
  Alcotest.(check bool) "sw kind" true (Impl.is_sw sw);
  Alcotest.(check bool) "sw has no resources" true (Resource.is_zero sw.Impl.res);
  let hw = Impl.hw ~time:5 ~res:(Resource.make ~clb:10 ~bram:0 ~dsp:0) () in
  Alcotest.(check bool) "hw kind" true (Impl.is_hw hw);
  Alcotest.check_raises "hw needs resources"
    (Invalid_argument "Impl.hw: empty resources") (fun () ->
      ignore (Impl.hw ~time:5 ~res:Resource.zero ()));
  Alcotest.check_raises "positive time"
    (Invalid_argument "Impl.sw: time must be positive") (fun () ->
      ignore (Impl.sw ~time:0))

let test_arch () =
  Alcotest.(check int) "zedboard cores" 2 Arch.zedboard.Arch.processors;
  Alcotest.(check string) "zedboard device" "xc7z020"
    Arch.zedboard.Arch.device.Device.name;
  (* 100 CLB at the default ICAP rate: 73 ticks (cross-checked in
     test_fabric). *)
  Alcotest.(check int) "reconf ticks" 73
    (Arch.reconf_ticks Arch.zedboard (Resource.make ~clb:100 ~bram:0 ~dsp:0));
  Alcotest.check_raises "needs a core"
    (Invalid_argument "Arch.make: processors must be positive") (fun () ->
      ignore (Arch.make ~processors:0 ~device:Device.minifab ()))

let simple_instance () =
  let graph = Graph.create 2 in
  Graph.add_edge graph 0 1;
  let impls =
    [|
      [| Impl.sw ~time:10; Impl.hw ~time:2 ~res:(Resource.make ~clb:5 ~bram:0 ~dsp:0) () |];
      [| Impl.sw ~time:20 |];
    |]
  in
  Instance.make ~arch:Arch.mini ~graph ~impls ()

let test_instance_accessors () =
  let inst = simple_instance () in
  Alcotest.(check int) "size" 2 (Instance.size inst);
  Alcotest.(check string) "default name" "t1" (Instance.task_name inst 1);
  Alcotest.(check int) "fastest sw of 0" 0 (Instance.fastest_sw inst 0);
  Alcotest.(check int) "hw impl count" 1 (List.length (Instance.hw_impls inst 0));
  Alcotest.(check int) "min time of 0" 2 (Instance.min_time inst 0);
  Alcotest.(check int) "maxT" 22 (Instance.max_t inst)

let test_instance_requires_sw () =
  let graph = Graph.create 1 in
  let impls =
    [| [| Impl.hw ~time:2 ~res:(Resource.make ~clb:5 ~bram:0 ~dsp:0) () |] |]
  in
  match Instance.make ~arch:Arch.mini ~graph ~impls () with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_instance_rejects_oversized_impl () =
  let graph = Graph.create 1 in
  let huge = Resource.make ~clb:1_000_000 ~bram:0 ~dsp:0 in
  let impls = [| [| Impl.sw ~time:5; Impl.hw ~time:2 ~res:huge () |] |] in
  match Instance.make ~arch:Arch.mini ~graph ~impls () with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_suite_shape () =
  let groups = Suite.full ~graphs_per_group:2 ~seed:1 () in
  Alcotest.(check int) "10 groups" 10 (List.length groups);
  List.iteri
    (fun i (tasks, insts) ->
      Alcotest.(check int) "task count" ((i + 1) * 10) tasks;
      Alcotest.(check int) "2 instances" 2 (List.length insts);
      List.iter
        (fun inst -> Alcotest.(check int) "instance size" tasks (Instance.size inst))
        insts)
    groups

let test_suite_impl_structure () =
  let rng = Rng.create 4 in
  let inst = Suite.instance rng ~tasks:20 in
  for u = 0 to 19 do
    let hw = Instance.hw_impls inst u and sw = Instance.sw_impls inst u in
    Alcotest.(check int) "three hw impls" 3 (List.length hw);
    Alcotest.(check int) "one sw impl" 1 (List.length sw);
    (* The paper's trade-off: larger implementations are faster. *)
    let impls = List.map snd hw in
    let sorted_by_area =
      List.sort
        (fun (a : Impl.t) b ->
          compare (Resource.total_units b.Impl.res) (Resource.total_units a.Impl.res))
        impls
    in
    match sorted_by_area with
    | [ big; mid; small ] ->
      Alcotest.(check bool) "bigger is faster" true
        (big.Impl.time <= mid.Impl.time && mid.Impl.time <= small.Impl.time)
    | _ -> Alcotest.fail "expected exactly three"
  done

let test_suite_deterministic () =
  let a = Suite.group ~seed:9 ~tasks:15 ~count:1 () in
  let b = Suite.group ~seed:9 ~tasks:15 ~count:1 () in
  match (a, b) with
  | [ x ], [ y ] ->
    Alcotest.(check string) "identical serialization" (Io.to_string x)
      (Io.to_string y)
  | _ -> Alcotest.fail "expected singletons"

let test_suite_module_sharing () =
  let rng = Rng.create 12 in
  let inst = Suite.instance rng ~tasks:40 in
  (* With p_shared_impl = 0.3 and 40 tasks, sharing is essentially
     certain: some module id appears for two different tasks. *)
  let ids = Hashtbl.create 64 in
  let shared = ref false in
  Array.iteri
    (fun u impls ->
      Array.iter
        (fun (i : Impl.t) ->
          match i.Impl.module_id with
          | Some m -> (
            match Hashtbl.find_opt ids m with
            | Some u' when u' <> u -> shared := true
            | _ -> Hashtbl.replace ids m u)
          | None -> ())
        impls)
    inst.Instance.impls;
  Alcotest.(check bool) "module sharing occurs" true !shared

let test_io_roundtrip () =
  let rng = Rng.create 77 in
  let inst = Suite.instance rng ~tasks:12 in
  let text = Io.to_string inst in
  match Io.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok inst' ->
    Alcotest.(check string) "round-trip stable" text (Io.to_string inst');
    Alcotest.(check int) "same size" (Instance.size inst) (Instance.size inst');
    Alcotest.(check int) "same edges"
      (Graph.edge_count inst.Instance.graph)
      (Graph.edge_count inst'.Instance.graph)

let test_io_errors () =
  let check_err text =
    match Io.of_string text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error _ -> ()
  in
  check_err "nonsense";
  check_err "arch processors x recfreq 1 device xc7z020";
  check_err "arch processors 1 recfreq 3200 device nosuchdevice";
  check_err "arch processors 1 recfreq 3200 device minifab\ntasks 1\nimpl sw time 5";
  (* impl before task *)
  check_err
    "arch processors 1 recfreq 3200 device minifab\ntasks 1\ntask 0\nimpl sw \
     time 5\nedge 0 7"
  (* edge out of range *)

let test_io_comments_and_blank_lines () =
  let text =
    "# a comment\n\narch processors 1 recfreq 3200 device minifab\ntasks 1\n\
     task 0 name solo\nimpl sw time 5 # trailing comment\n"
  in
  match Io.of_string text with
  | Ok inst ->
    Alcotest.(check string) "name parsed" "solo" (Instance.task_name inst 0)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* Property: every suite instance validates and serializes through a
   round-trip unchanged. *)
let prop_suite_roundtrip =
  QCheck.Test.make ~count:40 ~name:"suite instances round-trip"
    QCheck.(pair int (int_range 3 40))
    (fun (seed, tasks) ->
      let rng = Rng.create seed in
      let inst = Suite.instance rng ~tasks in
      let text = Io.to_string inst in
      match Io.of_string text with
      | Ok inst' -> Io.to_string inst' = text
      | Error _ -> false)

let () =
  Alcotest.run "platform"
    [
      ( "impl/arch",
        [
          Alcotest.test_case "impl constructors" `Quick test_impl_constructors;
          Alcotest.test_case "arch" `Quick test_arch;
        ] );
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "requires software impl" `Quick
            test_instance_requires_sw;
          Alcotest.test_case "rejects oversized impl" `Quick
            test_instance_rejects_oversized_impl;
        ] );
      ( "suite",
        [
          Alcotest.test_case "shape" `Quick test_suite_shape;
          Alcotest.test_case "implementation structure" `Quick
            test_suite_impl_structure;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
          Alcotest.test_case "module sharing" `Quick test_suite_module_sharing;
        ] );
      ( "io",
        [
          Alcotest.test_case "round-trip" `Quick test_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "comments" `Quick test_io_comments_and_blank_lines;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_suite_roundtrip ]);
    ]
