(* Tests for the runtime execution simulator. *)

module Rng = Resched_util.Rng
module Suite = Resched_platform.Suite
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Executor = Resched_sim.Executor
module Isk = Resched_baseline.Isk

let fixture tasks seed =
  let rng = Rng.create seed in
  let inst = Suite.instance rng ~tasks in
  fst (Pa.run inst)

let test_deterministic_replay_never_late () =
  (* The replay DAG only contains constraints the static schedule already
     satisfies, so an ASAP replay with nominal durations can finish
     early (compacting artificial gaps) but never late. *)
  List.iter
    (fun seed ->
      let sched = fixture 20 seed in
      let trial = Executor.execute ~jitter:Executor.Deterministic sched in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: replay <= static" seed)
        true
        (trial.Executor.makespan <= Schedule.makespan sched))
    [ 1; 2; 3; 4; 5 ]

let test_deterministic_replay_respects_deps () =
  let sched = fixture 25 7 in
  let inst = sched.Schedule.instance in
  let trial = Executor.execute ~jitter:Executor.Deterministic sched in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "dependency respected" true
        (trial.Executor.task_start.(v) >= trial.Executor.task_end.(u)))
    (Resched_taskgraph.Graph.edges
       inst.Resched_platform.Instance.graph)

let test_delay_only_never_early () =
  let sched = fixture 20 9 in
  let rng = Rng.create 11 in
  let base = Executor.execute ~jitter:Executor.Deterministic sched in
  for _ = 1 to 10 do
    let t = Executor.execute ~rng ~jitter:(Executor.Delay_only 0.3) sched in
    Alcotest.(check bool) "delayed run at least as long" true
      (t.Executor.makespan >= base.Executor.makespan)
  done

let test_uniform_jitter_requires_rng () =
  let sched = fixture 10 3 in
  match Executor.execute ~jitter:(Executor.Uniform 0.2) sched with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_robustness_stats_consistent () =
  let sched = fixture 20 5 in
  let rng = Rng.create 31 in
  let r =
    Executor.robustness ~rng ~trials:50 ~jitter:(Executor.Uniform 0.2) sched
  in
  Alcotest.(check int) "trials recorded" 50 r.Executor.trials;
  Alcotest.(check bool) "mean <= worst" true
    (r.Executor.mean_makespan <= float_of_int r.Executor.worst_makespan);
  Alcotest.(check bool) "p95 <= worst" true
    (r.Executor.p95_makespan <= float_of_int r.Executor.worst_makespan);
  Alcotest.(check bool) "slowdown positive" true (r.Executor.mean_slowdown > 0.)

let test_works_on_isk_schedules () =
  let rng = Rng.create 13 in
  let inst = Suite.instance rng ~tasks:15 in
  let sched, _ = Isk.run ~config:(Isk.config ~k:2) inst in
  let trial = Executor.execute ~jitter:Executor.Deterministic sched in
  Alcotest.(check bool) "replay <= static" true
    (trial.Executor.makespan <= Schedule.makespan sched)

(* Property: under Delay_only jitter the realized makespan is bounded by
   static * (1 + f) ... not exactly (delays compound along the critical
   path only multiplicatively per task), but it IS bounded by the longest
   path with every duration scaled by (1+f); we check against a simple
   safe bound: ceil(static_replay * (1+f)) + n (rounding slack). *)
let prop_delay_bounded =
  QCheck.Test.make ~count:30 ~name:"delay-only jitter bounded"
    QCheck.(pair int (int_range 8 25))
    (fun (seed, tasks) ->
      let rng = Rng.create seed in
      let inst = Suite.instance rng ~tasks in
      let sched, _ = Pa.run inst in
      let base = Executor.execute ~jitter:Executor.Deterministic sched in
      let f = 0.25 in
      let t =
        Executor.execute ~rng:(Rng.create (seed lxor 1)) ~jitter:(Executor.Delay_only f) sched
      in
      float_of_int t.Executor.makespan
      <= (float_of_int base.Executor.makespan *. (1. +. f)) +. float_of_int tasks +. 1.)

let () =
  Alcotest.run "sim"
    [
      ( "executor",
        [
          Alcotest.test_case "deterministic replay never late" `Quick
            test_deterministic_replay_never_late;
          Alcotest.test_case "replay respects dependencies" `Quick
            test_deterministic_replay_respects_deps;
          Alcotest.test_case "delay-only never early" `Quick
            test_delay_only_never_early;
          Alcotest.test_case "stochastic jitter requires rng" `Quick
            test_uniform_jitter_requires_rng;
          Alcotest.test_case "robustness stats" `Quick
            test_robustness_stats_consistent;
          Alcotest.test_case "works on IS-k schedules" `Quick
            test_works_on_isk_schedules;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_delay_bounded ]);
    ]
