test/test_sim.ml: Alcotest Array List Printf QCheck QCheck_alcotest Resched_baseline Resched_core Resched_platform Resched_sim Resched_taskgraph Resched_util
