test/test_fabric.ml: Alcotest Array List Option QCheck QCheck_alcotest Resched_fabric
