test/test_taskgraph.ml: Alcotest Array List Printf QCheck QCheck_alcotest Resched_taskgraph Resched_util String
