test/test_util.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Resched_util String
