test/test_viz.ml: Alcotest Array List Printf Resched_core Resched_fabric Resched_floorplan Resched_platform Resched_util Resched_viz String
