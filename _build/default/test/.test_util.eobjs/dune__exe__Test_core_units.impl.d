test/test_core_units.ml: Alcotest Array Filename Fun List QCheck QCheck_alcotest Resched_core Resched_fabric Resched_platform Resched_taskgraph Resched_util String Sys
