test/test_scheduler.ml: Alcotest Array List Printf QCheck QCheck_alcotest Resched_core Resched_fabric Resched_platform Resched_taskgraph Resched_util String
