test/test_floorplan.ml: Alcotest Array List QCheck QCheck_alcotest Resched_fabric Resched_floorplan Resched_util
