test/test_baseline.ml: Alcotest Array List Printf QCheck QCheck_alcotest Resched_baseline Resched_core Resched_fabric Resched_platform Resched_taskgraph Resched_util String Unix
