test/test_milp.ml: Alcotest Array Float List QCheck QCheck_alcotest Resched_milp Resched_util Unix
