test/test_platform.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Resched_fabric Resched_platform Resched_taskgraph Resched_util
