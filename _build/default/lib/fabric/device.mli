(** FPGA device model.

    The reconfigurable fabric is modelled the way partial-reconfiguration
    floorplanners see 7-series parts: a grid of resource columns crossed by
    horizontal clock regions. A column has a single resource kind and
    contributes a fixed number of units of that kind per clock region.
    Reconfigurable regions are axis-aligned rectangles of whole
    column x clock-region tiles (the PDR granularity constraint of [2,3]). *)

type t = private {
  name : string;
  columns : Resource.kind array;  (** left-to-right column types *)
  rows : int;  (** number of clock regions *)
  model : Bitstream.model;
  total : Resource.t;  (** maxRes_r, derived from the geometry *)
}

val make : name:string -> columns:Resource.kind array -> rows:int ->
  model:Bitstream.model -> t
(** Builds a device; [total] is computed from the geometry. Raises
    [Invalid_argument] if [rows <= 0] or there are no columns. *)

val xc7z020 : t
(** Approximation of the Zynq-7000 XC7Z020 programmable logic used on the
    ZedBoard: 3 clock-region rows; 89 CLB, 5 BRAM and 4 DSP columns
    interleaved as on the real part, giving 13,350 slices / 150 BRAM /
    240 DSP (the real part has 13,300 / 140 / 220; the small excess comes
    from whole-column rounding and is documented in DESIGN.md). *)

val column_units : t -> col:int -> Resource.t
(** Resources provided by one clock-region tile of column [col]. *)

val rect_resources : t -> c0:int -> c1:int -> r0:int -> r1:int -> Resource.t
(** Resources inside the rectangle spanning columns [c0..c1] and clock
    regions [r0..r1] (inclusive). Raises [Invalid_argument] when out of
    bounds or empty. *)

val xc7z010 : t
(** Approximation of the Zynq-7000 XC7Z010 (MicroZed-class): 2 clock-region
    rows; 44 CLB, 3 BRAM, 2 DSP columns — 4,400 slices / 60 BRAM /
    80 DSP (real part: 4,400 / 60 / 80). *)

val xc7z045 : t
(** Approximation of the Zynq-7000 XC7Z045 (ZC706-class): 7 clock-region
    rows; 157 CLB, 8 BRAM, 7 DSP columns — 54,950 slices / 560 BRAM /
    980 DSP (real part: 54,650 / 545 / 900; whole-column rounding). *)

val minifab : t
(** A deliberately tiny fabric (2 clock regions; 6 CLB, 1 BRAM and 1 DSP
    columns) used by unit tests and the quickstart example, where floorplan
    pressure must be reachable with a handful of small tasks. *)

val presets : (string * t) list
(** Name -> device for every built-in preset. *)

val by_name : string -> t option
(** Look up a preset by (case-insensitive) name. *)

val icap_default_bits_per_us : float
(** Default reconfiguration throughput: ICAP at 400 MB/s, i.e. 3200
    configuration bits per microsecond tick. *)

val pp : Format.formatter -> t -> unit
