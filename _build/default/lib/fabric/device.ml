type t = {
  name : string;
  columns : Resource.kind array;
  rows : int;
  model : Bitstream.model;
  total : Resource.t;
}

let column_units_of_model model kind =
  let n = model.Bitstream.units_per_column kind in
  Resource.set Resource.zero kind n

let compute_total ~columns ~rows ~model =
  let acc = ref Resource.zero in
  Array.iter
    (fun kind ->
      let per_region = column_units_of_model model kind in
      for _ = 1 to rows do
        acc := Resource.add !acc per_region
      done)
    columns;
  !acc

let make ~name ~columns ~rows ~model =
  if rows <= 0 then invalid_arg "Device.make: rows must be positive";
  if Array.length columns = 0 then invalid_arg "Device.make: no columns";
  { name; columns; rows; model; total = compute_total ~columns ~rows ~model }

(* Interleave BRAM and DSP columns among the CLB columns the way 7-series
   parts do: thin stripes of hard blocks separated by runs of logic. *)
let xc7z020 =
  let columns =
    let buf = ref [] in
    let push k n = for _ = 1 to n do buf := k :: !buf done in
    (* 9 groups of ~10 CLB columns; BRAM stripes after groups 1,3,5,7,9;
       DSP stripes after groups 2,4,6,8. *)
    for group = 1 to 9 do
      push Resource.Clb (if group <= 8 then 10 else 9);
      if group mod 2 = 1 then push Resource.Bram 1 else push Resource.Dsp 1
    done;
    Array.of_list (List.rev !buf)
  in
  make ~name:"xc7z020" ~columns ~rows:3 ~model:Bitstream.seven_series

(* Same stripe style as xc7z020: runs of CLB columns separated by
   alternating BRAM / DSP hard-block columns. *)
let striped ~name ~rows ~groups ~clb_per_group ~last_group_clb =
  let buf = ref [] in
  let push k n = for _ = 1 to n do buf := k :: !buf done in
  for group = 1 to groups do
    push Resource.Clb (if group < groups then clb_per_group else last_group_clb);
    if group mod 2 = 1 then push Resource.Bram 1 else push Resource.Dsp 1
  done;
  make ~name ~columns:(Array.of_list (List.rev !buf)) ~rows
    ~model:Bitstream.seven_series

let xc7z010 =
  striped ~name:"xc7z010" ~rows:2 ~groups:5 ~clb_per_group:9 ~last_group_clb:8

let xc7z045 =
  striped ~name:"xc7z045" ~rows:7 ~groups:15 ~clb_per_group:10
    ~last_group_clb:17

let minifab =
  let columns =
    [| Resource.Clb; Clb; Clb; Bram; Clb; Clb; Dsp; Clb |]
  in
  make ~name:"minifab" ~columns ~rows:2 ~model:Bitstream.seven_series

let presets =
  [ ("xc7z010", xc7z010); ("xc7z020", xc7z020); ("xc7z045", xc7z045);
    ("minifab", minifab) ]

let by_name name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name presets

let column_units t ~col =
  if col < 0 || col >= Array.length t.columns then
    invalid_arg "Device.column_units: column out of range";
  column_units_of_model t.model t.columns.(col)

let rect_resources t ~c0 ~c1 ~r0 ~r1 =
  let ncols = Array.length t.columns in
  if c0 < 0 || c1 >= ncols || c0 > c1 then
    invalid_arg "Device.rect_resources: bad column span";
  if r0 < 0 || r1 >= t.rows || r0 > r1 then
    invalid_arg "Device.rect_resources: bad row span";
  let height = r1 - r0 + 1 in
  let acc = ref Resource.zero in
  for c = c0 to c1 do
    let per_region = column_units_of_model t.model t.columns.(c) in
    for _ = 1 to height do
      acc := Resource.add !acc per_region
    done
  done;
  !acc

let icap_default_bits_per_us = 3200.

let pp ppf t =
  Format.fprintf ppf "%s: %d columns x %d clock regions, total %a" t.name
    (Array.length t.columns) t.rows Resource.pp t.total
