lib/fabric/bitstream.ml: Array Float Resource Stdlib
