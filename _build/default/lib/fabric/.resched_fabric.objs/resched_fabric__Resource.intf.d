lib/fabric/resource.mli: Format
