lib/fabric/device.ml: Array Bitstream Format List Resource String
