lib/fabric/bitstream.mli: Resource
