lib/fabric/resource.ml: Format Stdlib String
