lib/fabric/device.mli: Bitstream Format Resource
