type kind = Clb | Bram | Dsp

let kinds = [| Clb; Bram; Dsp |]

let kind_name = function Clb -> "CLB" | Bram -> "BRAM" | Dsp -> "DSP"

let kind_of_name s =
  match String.uppercase_ascii s with
  | "CLB" -> Some Clb
  | "BRAM" -> Some Bram
  | "DSP" -> Some Dsp
  | _ -> None

type t = { clb : int; bram : int; dsp : int }

let zero = { clb = 0; bram = 0; dsp = 0 }
let make ~clb ~bram ~dsp = { clb; bram; dsp }

let get t = function Clb -> t.clb | Bram -> t.bram | Dsp -> t.dsp

let set t kind v =
  match kind with
  | Clb -> { t with clb = v }
  | Bram -> { t with bram = v }
  | Dsp -> { t with dsp = v }

let add a b = { clb = a.clb + b.clb; bram = a.bram + b.bram; dsp = a.dsp + b.dsp }
let sub a b = { clb = a.clb - b.clb; bram = a.bram - b.bram; dsp = a.dsp - b.dsp }

let scale t f =
  let s x = int_of_float (float_of_int x *. f) in
  { clb = s t.clb; bram = s t.bram; dsp = s t.dsp }

let fits v ~within:w = v.clb <= w.clb && v.bram <= w.bram && v.dsp <= w.dsp

let max_components a b =
  { clb = Stdlib.max a.clb b.clb;
    bram = Stdlib.max a.bram b.bram;
    dsp = Stdlib.max a.dsp b.dsp }

let total_units t = t.clb + t.bram + t.dsp
let is_zero t = t.clb = 0 && t.bram = 0 && t.dsp = 0
let equal a b = a.clb = b.clb && a.bram = b.bram && a.dsp = b.dsp

let compare a b =
  let c = Stdlib.compare a.clb b.clb in
  if c <> 0 then c
  else begin
    let c = Stdlib.compare a.bram b.bram in
    if c <> 0 then c else Stdlib.compare a.dsp b.dsp
  end

let weighted_sum ~weights t =
  (weights Clb *. float_of_int t.clb)
  +. (weights Bram *. float_of_int t.bram)
  +. (weights Dsp *. float_of_int t.dsp)

let pp ppf t = Format.fprintf ppf "{CLB=%d; BRAM=%d; DSP=%d}" t.clb t.bram t.dsp
let to_string t = Format.asprintf "%a" pp t
