(** Bitstream-size and reconfiguration-time estimation (eqs. 1 and 2).

    Following Vipin & Fahmy [14], the number of configuration bits needed
    by one unit of each resource kind is derived from the 7-series frame
    structure: a configuration frame is 101 32-bit words, and each column
    of a clock region needs a fixed number of frames that depends on the
    column type. *)

type model = {
  frame_bits : int;  (** bits per configuration frame (7-series: 101*32) *)
  frames_per_column : Resource.kind -> int;
      (** configuration frames for one column of one clock region *)
  units_per_column : Resource.kind -> int;
      (** resource units provided by one column of one clock region *)
}

val seven_series : model
(** The Xilinx 7-series model used throughout the paper's evaluation:
    3232-bit frames; CLB columns: 36 frames / 50 slices; BRAM columns:
    28 frames / 10 BRAM36; DSP columns: 28 frames / 20 DSP48. *)

val bits_per_unit : model -> Resource.kind -> float
(** [bit_r] of eq. 1: average configuration bits per resource unit. *)

val region_bits : model -> Resource.t -> float
(** [bit_s] of eq. 1 for a region with the given resource requirements. *)

val reconf_ticks : model -> bits_per_tick:float -> Resource.t -> int
(** Eq. 2, rounded up to integer ticks; at least 1 tick for any non-empty
    region. [bits_per_tick] is [recFreq] expressed in configuration bits
    per scheduler tick. *)
