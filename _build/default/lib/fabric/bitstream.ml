type model = {
  frame_bits : int;
  frames_per_column : Resource.kind -> int;
  units_per_column : Resource.kind -> int;
}

let seven_series =
  {
    frame_bits = 101 * 32;
    frames_per_column = (function Resource.Clb -> 36 | Bram -> 28 | Dsp -> 28);
    units_per_column = (function Resource.Clb -> 50 | Bram -> 10 | Dsp -> 20);
  }

let bits_per_unit m kind =
  float_of_int (m.frames_per_column kind * m.frame_bits)
  /. float_of_int (m.units_per_column kind)

let region_bits m res =
  Array.fold_left
    (fun acc kind ->
      acc +. (bits_per_unit m kind *. float_of_int (Resource.get res kind)))
    0. Resource.kinds

let reconf_ticks m ~bits_per_tick res =
  if Resource.is_zero res then 0
  else begin
    if bits_per_tick <= 0. then invalid_arg "Bitstream.reconf_ticks: recFreq";
    let t = int_of_float (Float.ceil (region_bits m res /. bits_per_tick)) in
    Stdlib.max 1 t
  end
