(** Reconfigurable resource vectors.

    The paper's resource set [R] for the evaluated platform is
    {CLB, BRAM, DSP} (Sec. VII-A). We fix the same three kinds; a vector
    counts how many units of each kind an implementation requires, a
    reconfigurable region provides, or a device offers in total. *)

type kind = Clb | Bram | Dsp

val kinds : kind array
(** All resource kinds, in a fixed order (CLB, BRAM, DSP). *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type t = { clb : int; bram : int; dsp : int }
(** A resource vector; components are unit counts and must be >= 0 in all
    well-formed values. *)

val zero : t
val make : clb:int -> bram:int -> dsp:int -> t
val get : t -> kind -> int
val set : t -> kind -> int -> t
val add : t -> t -> t
val sub : t -> t -> t
(** Component-wise; [sub] may produce negative components (use [fits] to
    test containment first). *)

val scale : t -> float -> t
(** [scale v f] multiplies every component by [f] and truncates toward
    zero. Used for the "virtually reduce [maxRes]" floorplan-retry rule. *)

val fits : t -> within:t -> bool
(** [fits v ~within:w] iff every component of [v] is <= that of [w]. *)

val max_components : t -> t -> t
(** Component-wise maximum. *)

val total_units : t -> int
(** Sum of all components (the denominator of eq. 4). *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val weighted_sum : weights:(kind -> float) -> t -> float
(** [weighted_sum ~weights v] = Σ_r weights r * v_r, the building block of
    eqs. 3 and 5. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
