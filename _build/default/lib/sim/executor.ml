module Rng = Resched_util.Rng
module Stats = Resched_util.Stats
module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Schedule = Resched_core.Schedule

type jitter =
  | Deterministic
  | Uniform of float
  | Delay_only of float

type trial = {
  makespan : int;
  task_start : int array;
  task_end : int array;
}

(* Node layout of the replay DAG: tasks 0..n-1, then one node per
   reconfiguration in the schedule's controller order. *)
let replay_graph (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let rcs = Array.of_list sched.Schedule.reconfigurations in
  let nr = Array.length rcs in
  let g = Graph.create (n + nr) in
  (* Data dependencies. *)
  List.iter (fun (u, v) -> Graph.add_edge g u v) (Graph.edges inst.Instance.graph);
  (* Per-region order with the reconfiguration between each pair (when
     one exists; with module reuse the pair is chained directly). *)
  let rc_index = Hashtbl.create 16 in
  Array.iteri
    (fun k (rc : Schedule.reconfiguration) ->
      Hashtbl.replace rc_index (rc.Schedule.region, rc.Schedule.t_in, rc.Schedule.t_out) k)
    rcs;
  Array.iteri
    (fun ridx (_ : Schedule.region) ->
      let ordered = Schedule.region_tasks_in_order sched ridx in
      let rec chain = function
        | a :: b :: tl ->
          (match Hashtbl.find_opt rc_index (ridx, a, b) with
          | Some k ->
            Graph.add_edge g a (n + k);
            Graph.add_edge g (n + k) b
          | None -> Graph.add_edge g a b);
          chain (b :: tl)
        | [ _ ] | [] -> ()
      in
      chain ordered)
    sched.Schedule.regions;
  (* Per-processor order (by static start time). *)
  let procs = inst.Instance.arch.Arch.processors in
  for p = 0 to procs - 1 do
    let mine = ref [] in
    Array.iteri
      (fun u (s : Schedule.task_slot) ->
        match s.Schedule.placement with
        | Schedule.On_processor q when q = p -> mine := u :: !mine
        | _ -> ())
      sched.Schedule.slots;
    let ordered =
      List.sort
        (fun a b ->
          compare sched.Schedule.slots.(a).Schedule.start_
            sched.Schedule.slots.(b).Schedule.start_)
        !mine
    in
    let rec chain = function
      | a :: b :: tl ->
        Graph.add_edge g a b;
        chain (b :: tl)
      | [ _ ] | [] -> ()
    in
    chain ordered
  done;
  (* Controller order: the reconfiguration list is already in execution
     order. *)
  for k = 0 to nr - 2 do
    Graph.add_edge g (n + k) (n + k + 1)
  done;
  (g, rcs)

let sample_factor rng = function
  | Deterministic -> 1.0
  | Uniform f ->
    if f < 0. || f >= 1. then invalid_arg "Executor: Uniform jitter in [0,1)";
    1. -. f +. Rng.float rng (2. *. f)
  | Delay_only f ->
    if f < 0. then invalid_arg "Executor: Delay_only jitter >= 0";
    1. +. Rng.float rng f

let execute ?rng ~jitter (sched : Schedule.t) =
  let rng =
    match (rng, jitter) with
    | Some r, _ -> r
    | None, Deterministic -> Rng.create 0
    | None, (Uniform _ | Delay_only _) ->
      invalid_arg "Executor.execute: stochastic jitter needs ~rng"
  in
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let g, rcs = replay_graph sched in
  let nr = Array.length rcs in
  let durations =
    Array.init (n + nr) (fun i ->
        let nominal =
          if i < n then begin
            let s = sched.Schedule.slots.(i) in
            s.Schedule.end_ - s.Schedule.start_
          end
          else begin
            let rc = rcs.(i - n) in
            rc.Schedule.r_end - rc.Schedule.r_start
          end
        in
        if i < n then
          (* Only task durations jitter; reconfiguration time is fixed by
             the bitstream size and the controller throughput. *)
          Stdlib.max 1 (int_of_float (Float.round (float_of_int nominal *. sample_factor rng jitter)))
        else nominal)
  in
  let cpm = Cpm.compute g ~durations in
  let task_start = Array.sub cpm.Cpm.t_min 0 n in
  let task_end = Array.init n (fun u -> task_start.(u) + durations.(u)) in
  let makespan = Array.fold_left Stdlib.max 0 task_end in
  { makespan; task_start; task_end }

type robustness = {
  trials : int;
  static_makespan : int;
  mean_makespan : float;
  worst_makespan : int;
  p95_makespan : float;
  mean_slowdown : float;
}

let robustness ~rng ~trials ~jitter sched =
  if trials <= 0 then invalid_arg "Executor.robustness: trials must be positive";
  let samples =
    Array.init trials (fun _ ->
        float_of_int (execute ~rng ~jitter sched).makespan)
  in
  let static = Schedule.makespan sched in
  {
    trials;
    static_makespan = static;
    mean_makespan = Stats.mean samples;
    worst_makespan = int_of_float (Stats.max samples);
    p95_makespan = Stats.percentile samples 95.;
    mean_slowdown = Stats.mean samples /. float_of_int (Stdlib.max 1 static);
  }

let pp_robustness ppf r =
  Format.fprintf ppf
    "%d trials: static %d, mean %.0f (x%.3f), p95 %.0f, worst %d" r.trials
    r.static_makespan r.mean_makespan r.mean_slowdown r.p95_makespan
    r.worst_makespan
