lib/sim/executor.ml: Array Float Format Hashtbl List Resched_core Resched_platform Resched_taskgraph Resched_util Stdlib
