lib/sim/executor.mli: Format Resched_core Resched_util
