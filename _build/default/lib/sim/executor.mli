(** Runtime execution simulator.

    The schedulers in this repository are *offline*: they commit to
    implementation choices, placements and per-resource execution orders
    at design time, using nominal execution times. At runtime, task
    durations vary (cache effects, data-dependent loop bounds, DDR
    contention). This module replays a finished {!Resched_core.Schedule.t}
    under sampled durations: the committed decisions and per-resource
    orders are kept (a realistic runtime executes the static plan
    self-timed), every activity starts as soon as its dependency,
    resource and reconfiguration-controller predecessors complete, and
    the realized makespan falls out.

    The executor rebuilds the precedence structure purely from the public
    schedule — independently from the scheduler internals, like the
    validator — so it doubles as a semantic cross-check: under
    [Deterministic] jitter the realized times must reproduce the static
    schedule's times exactly when the schedule is "compact" (every start
    explained by some predecessor), and may only be earlier otherwise. *)

type jitter =
  | Deterministic  (** nominal durations: replay the plan *)
  | Uniform of float
      (** duration scaled by a uniform factor in [1-f, 1+f]; f in [0,1) *)
  | Delay_only of float
      (** duration scaled by a uniform factor in [1, 1+f]: tasks can only
          run late, never early *)

type trial = {
  makespan : int;
  task_start : int array;
  task_end : int array;
}

val execute : ?rng:Resched_util.Rng.t -> jitter:jitter ->
  Resched_core.Schedule.t -> trial
(** One realization. [rng] is required for stochastic jitter kinds
    (raises [Invalid_argument] when missing). *)

type robustness = {
  trials : int;
  static_makespan : int;
  mean_makespan : float;
  worst_makespan : int;
  p95_makespan : float;
  mean_slowdown : float;  (** mean realized / static *)
}

val robustness : rng:Resched_util.Rng.t -> trials:int -> jitter:jitter ->
  Resched_core.Schedule.t -> robustness
(** Monte-Carlo summary over independent realizations. *)

val pp_robustness : Format.formatter -> robustness -> unit
