(** Step 7 — reconfigurations scheduling (Sec. V-G).

    Decides a total order for the reconfiguration tasks on the single
    reconfiguration controller. Critical reconfigurations (outgoing task
    on the critical path) are placed first, lowest [T_MIN] first, since
    any delay on them propagates fully; each non-critical one is then
    inserted at the earliest controller slot compatible with its window,
    shifting later reconfigurations as required (realized by re-resolving
    the augmented graph, which is exactly the paper's delay
    propagation). *)

val run : ?module_reuse:bool -> State.t ->
  Timing.reconf_spec array * int list
(** Returns the reconfiguration specs and the chosen controller sequence
    (indices into the spec array, execution order). *)
