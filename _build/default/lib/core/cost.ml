module Resource = Resched_fabric.Resource
module Instance = Resched_platform.Instance
module Impl = Resched_platform.Impl

type t = {
  weights : Resource.kind -> float;
  weighted_max : float;  (** Σ_r weightRes_r * maxRes_r *)
  max_t : int;
}

let make inst ~max_res =
  let total = Resource.total_units max_res in
  if total = 0 then invalid_arg "Cost.make: zero max_res";
  let weights kind =
    1. -. (float_of_int (Resource.get max_res kind) /. float_of_int total)
  in
  let weighted_max = Resource.weighted_sum ~weights max_res in
  { weights; weighted_max; max_t = Instance.max_t inst }

let weight_res t kind = t.weights kind
let max_t t = t.max_t

let cost t (impl : Impl.t) =
  let area_term =
    if t.weighted_max = 0. then 0.
    else Resource.weighted_sum ~weights:t.weights impl.res /. t.weighted_max
  in
  let time_term =
    if t.max_t = 0 then 0. else float_of_int impl.time /. float_of_int t.max_t
  in
  area_term +. time_term

let efficiency t (impl : Impl.t) =
  if not (Impl.is_hw impl) then
    invalid_arg "Cost.efficiency: hardware implementation required";
  let denom = Resource.weighted_sum ~weights:t.weights impl.res in
  if denom = 0. then infinity else float_of_int impl.time /. denom

let best_hw t inst task =
  match Instance.hw_impls inst task with
  | [] -> None
  | (idx0, i0) :: rest ->
    let best =
      List.fold_left
        (fun (bidx, bimpl, bcost) (idx, impl) ->
          let c = cost t impl in
          if c < bcost then (idx, impl, c) else (bidx, bimpl, bcost))
        (idx0, i0, cost t i0) rest
    in
    let idx, impl, _ = best in
    Some (idx, impl)
