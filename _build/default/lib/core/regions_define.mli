(** Step 3 — reconfigurable regions definition (Sec. V-C).

    Loops over the tasks whose selected implementation is a hardware one
    and either reuses an existing region, creates a new one, or falls
    back to software. Critical tasks (per the step-2 CPM extraction) are
    processed first; within each class the processing order is given by
    [ordering] — the paper's deterministic scheduler uses the efficiency
    index (eq. 5) descending, the randomized variant a random order. *)

type ordering =
  | By_efficiency  (** paper's PA: efficiency index descending *)
  | By_cost  (** ablation: cost (eq. 3) ascending *)
  | Topological  (** ablation: CPM topological order *)
  | Random of Resched_util.Rng.t  (** PA-R *)

val run : ?module_reuse:bool -> ordering:ordering -> State.t -> unit
(** Mutates the state: region set, task placements (possibly switching
    tasks to software), ordering edges, windows. [module_reuse] (default
    false) lets a task join a region holding an adjacent task with the
    same [module_id] without requiring a reconfiguration gap. *)

val region_compatible_critical : ?module_reuse:bool -> State.t -> task:int ->
  State.region -> bool
(** Exposed for testing: the Sec. V-C condition for a *critical* task —
    the region hosts the implementation's resources, no hosted window
    overlaps the task's window, and the reconfiguration needed before the
    task fits between the neighbouring windows. *)

val region_compatible_non_critical : State.t -> task:int -> State.region ->
  bool
(** Exposed for testing: the weaker condition used for non-critical
    tasks (no reconfiguration-window requirement). *)
