module Rng = Resched_util.Rng
module Floorplanner = Resched_floorplan.Floorplanner
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch

type trace_point = { elapsed : float; iteration : int; makespan : int }

type outcome = {
  schedule : Schedule.t option;
  iterations : int;
  trace : trace_point list;
}

let run ?(config = Pa.default_config) ?(seed = 1) ?(min_iterations = 1)
    ~budget_seconds inst =
  let rng = Rng.create seed in
  let device = inst.Instance.arch.Arch.device in
  let start = Unix.gettimeofday () in
  let deadline = start +. budget_seconds in
  let best = ref None in
  let best_makespan = ref max_int in
  let trace = ref [] in
  let iterations = ref 0 in
  (* Virtual FPGA-resource scale for the inner doSchedule. Algorithm 1
     never shrinks, but when the region definition saturates the device
     no random order yields a floorplannable region set; adapting the
     scale on floorplan failures (and probing back up on successes)
     keeps the search inside the packable envelope. See DESIGN.md. *)
  let scale = ref 1.0 in
  let min_scale = config.Pa.shrink_factor ** 6. in
  while
    !iterations < min_iterations || Unix.gettimeofday () < deadline
  do
    incr iterations;
    let config =
      { config with Pa.ordering = Regions_define.Random (Rng.split rng) }
    in
    let candidate = Pa.schedule_once ~config ~resource_scale:!scale inst in
    if candidate.Schedule.makespan < !best_makespan then begin
      let needs =
        Array.map
          (fun (r : Schedule.region) -> r.Schedule.res)
          candidate.Schedule.regions
      in
      let feasible =
        if Array.length needs = 0 then Some [||]
        else begin
          let report =
            Floorplanner.check ~engine:config.Pa.floorplan_engine
              ?node_limit:config.Pa.floorplan_node_limit device needs
          in
          match report.Floorplanner.verdict with
          | Floorplanner.Feasible placements -> Some placements
          | Floorplanner.Infeasible | Floorplanner.Unknown -> None
        end
      in
      match feasible with
      | None ->
        scale := Stdlib.max min_scale (!scale *. config.Pa.shrink_factor)
      | Some placements ->
        scale := Stdlib.min 1.0 (!scale /. sqrt config.Pa.shrink_factor);
        best := Some { candidate with Schedule.floorplan = Some placements };
        best_makespan := candidate.Schedule.makespan;
        trace :=
          {
            elapsed = Unix.gettimeofday () -. start;
            iteration = !iterations;
            makespan = candidate.Schedule.makespan;
          }
          :: !trace
    end
  done;
  { schedule = !best; iterations = !iterations; trace = List.rev !trace }
