module Resource = Resched_fabric.Resource
module Cpm = Resched_taskgraph.Cpm
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch

type t = {
  makespan : int;
  hw_tasks : int;
  sw_tasks : int;
  regions : int;
  reconfigurations : int;
  reconfiguration_ticks : int;
  reconfiguration_overhead : float;
  fpga_utilization : float;
  processor_utilization : float;
  critical_path_lower_bound : int;
}

let compute (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let makespan = Stdlib.max 1 sched.Schedule.makespan in
  let device_units =
    Resource.total_units (Arch.max_res inst.Instance.arch)
  in
  let fpga_busy = ref 0 in
  let cpu_busy = ref 0 in
  Array.iteri
    (fun u (s : Schedule.task_slot) ->
      let ticks = s.Schedule.end_ - s.Schedule.start_ in
      match s.Schedule.placement with
      | Schedule.On_region r ->
        let units =
          Resource.total_units sched.Schedule.regions.(r).Schedule.res
        in
        fpga_busy := !fpga_busy + (ticks * units);
        ignore u
      | Schedule.On_processor _ -> cpu_busy := !cpu_busy + ticks)
    sched.Schedule.slots;
  let lower_bound =
    let durations = Array.init n (Instance.min_time inst) in
    (Cpm.compute inst.Instance.graph ~durations).Cpm.makespan
  in
  let rec_ticks = Schedule.reconfiguration_time sched in
  {
    makespan = sched.Schedule.makespan;
    hw_tasks = Schedule.hw_task_count sched;
    sw_tasks = Schedule.sw_task_count sched;
    regions = Array.length sched.Schedule.regions;
    reconfigurations = List.length sched.Schedule.reconfigurations;
    reconfiguration_ticks = rec_ticks;
    reconfiguration_overhead = float_of_int rec_ticks /. float_of_int makespan;
    fpga_utilization =
      float_of_int !fpga_busy /. float_of_int (device_units * makespan);
    processor_utilization =
      float_of_int !cpu_busy
      /. float_of_int (inst.Instance.arch.Arch.processors * makespan);
    critical_path_lower_bound = lower_bound;
  }

let pp ppf m =
  Format.fprintf ppf
    "makespan=%d (lb %d), hw=%d sw=%d, regions=%d, reconfs=%d (%d ticks, \
     %.1f%%), fpga-util=%.1f%%, cpu-util=%.1f%%"
    m.makespan m.critical_path_lower_bound m.hw_tasks m.sw_tasks m.regions
    m.reconfigurations m.reconfiguration_ticks
    (100. *. m.reconfiguration_overhead)
    (100. *. m.fpga_utilization)
    (100. *. m.processor_utilization)
