(** PA-R — the randomized scheduler variant (Sec. VI, Algorithm 1).

    Repeatedly runs the deterministic pipeline with a random processing
    order for non-critical hardware tasks, keeping the best schedule that
    passes the floorplan check. The floorplanner is only consulted when a
    candidate improves on the incumbent, amortizing its cost;
    floorplan-infeasible candidates are discarded rather than triggering
    the resource-shrinking restart of PA. *)

type trace_point = {
  elapsed : float;  (** seconds since the run started *)
  iteration : int;
  makespan : int;  (** best feasible makespan at that moment *)
}

type outcome = {
  schedule : Schedule.t option;
      (** best feasible schedule; [None] only if no iteration produced a
          floorplannable schedule within the budget *)
  iterations : int;
  trace : trace_point list;  (** improvements, oldest first (Fig. 6) *)
}

val run : ?config:Pa.config -> ?seed:int -> ?min_iterations:int ->
  budget_seconds:float -> Resched_platform.Instance.t -> outcome
(** Algorithm 1 with a wall-clock budget. [min_iterations] (default 1)
    iterations are executed even if the budget is already exhausted, so a
    tiny budget still returns a schedule whenever one is floorplannable.
    The [config]'s [ordering] field is ignored (PA-R always randomizes
    non-critical tasks). *)
