(** Textual serialization of complete schedules.

    A schedule file is self-contained: it embeds the problem instance (in
    the {!Resched_platform.Io} format) followed by the scheduling
    decisions, so downstream tooling (visualizers, runtime loaders,
    regression diffing) needs nothing else. Grammar of the schedule
    section, one directive per line after a [schedule] header:
    {v
    schedule makespan <int> reuse <bool> scale <float>
    region <id> clb <int> bram <int> dsp <int> reconf <int>
    slot <task> impl <idx> (region <id> | proc <id>) start <int> end <int>
    reconf-task region <id> in <task> out <task> start <int> end <int>
    floorplan <region> cols <c0> <c1> rows <r0> <r1>
    v} *)

val to_string : Schedule.t -> string
(** Serialize instance + schedule. Raises [Invalid_argument] when the
    instance's device is not a named preset (a file must be loadable). *)

val of_string : string -> (Schedule.t, string) result
(** Parse and structurally rebuild the schedule. The result is *not*
    re-validated automatically; run {!Validate.check} for that. *)

val save : string -> Schedule.t -> unit
val load : string -> (Schedule.t, string) result
