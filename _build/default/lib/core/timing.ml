module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Instance = Resched_platform.Instance
module Impl = Resched_platform.Impl

type reconf_spec = {
  region_id : int;
  t_in : int;
  t_out : int;
  dur : int;
  critical : bool;
}

type resolved = {
  task_start : int array;
  task_end : int array;
  rec_start : int array;
  rec_end : int array;
  makespan : int;
}

let same_module (a : Impl.t) (b : Impl.t) =
  match (a.module_id, b.module_id) with
  | Some x, Some y -> x = y
  | _ -> false

let reconf_specs ?(module_reuse = false) state =
  let critical = state.State.cpm.Cpm.critical in
  let specs = ref [] in
  List.iter
    (fun (r : State.region) ->
      let rec pairs = function
        | a :: b :: tl ->
          let skip =
            module_reuse
            && same_module (State.impl state a) (State.impl state b)
          in
          if not skip then
            specs :=
              {
                region_id = r.State.id;
                t_in = a;
                t_out = b;
                dur = r.State.reconf;
                critical = critical.(b);
              }
              :: !specs;
          pairs (b :: tl)
        | [ _ ] | [] -> ()
      in
      pairs r.State.tasks)
    state.State.regions;
  Array.of_list (List.rev !specs)

let resolve state ~reconfigs ~sequence =
  let n = Instance.size state.State.inst in
  let nr = Array.length reconfigs in
  let g = Graph.create (n + nr) in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (Graph.edges state.State.dep);
  Array.iteri
    (fun k spec ->
      Graph.add_edge g spec.t_in (n + k);
      Graph.add_edge g (n + k) spec.t_out)
    reconfigs;
  let rec chain = function
    | a :: b :: tl ->
      Graph.add_edge g (n + a) (n + b);
      chain (b :: tl)
    | [ _ ] | [] -> ()
  in
  chain sequence;
  let durations =
    Array.init (n + nr) (fun i ->
        if i < n then State.duration state i else reconfigs.(i - n).dur)
  in
  let cpm = Cpm.compute g ~durations in
  let task_start = Array.sub cpm.Cpm.t_min 0 n in
  let task_end = Array.init n (fun u -> task_start.(u) + durations.(u)) in
  let rec_start = Array.init nr (fun k -> cpm.Cpm.t_min.(n + k)) in
  let rec_end = Array.init nr (fun k -> rec_start.(k) + reconfigs.(k).dur) in
  let makespan = Array.fold_left Stdlib.max 0 task_end in
  { task_start; task_end; rec_start; rec_end; makespan }

let must_precede state a b =
  a.t_out = b.t_in || (Graph.reachable state.State.dep a.t_out).(b.t_in)
