module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch

(* Draw [label] inside [lane] between columns scaled from the slot. *)
let draw lane ~scale ~start_ ~end_ label =
  let width = Bytes.length lane in
  let a = Stdlib.min (width - 1) (int_of_float (float_of_int start_ *. scale)) in
  let b =
    Stdlib.max (a + 1)
      (Stdlib.min width (int_of_float (float_of_int end_ *. scale)))
  in
  for i = a to b - 1 do
    Bytes.set lane i '='
  done;
  Bytes.set lane a '|';
  if b - 1 > a then Bytes.set lane (b - 1) '|';
  let label = if String.length label > b - a - 1 then "" else label in
  String.iteri
    (fun i c -> if a + 1 + i < b - 1 then Bytes.set lane (a + 1 + i) c)
    label

let render ?(width = 100) (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let makespan = Stdlib.max 1 sched.Schedule.makespan in
  let scale = float_of_int width /. float_of_int makespan in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "makespan: %d ticks (1 column ~ %.1f ticks)\n" makespan
       (1. /. scale));
  let lane_for label fill =
    let lane = Bytes.make width '.' in
    fill lane;
    Buffer.add_string buf (Printf.sprintf "%-12s %s\n" label (Bytes.to_string lane))
  in
  let slot u = sched.Schedule.slots.(u) in
  for p = 0 to inst.Instance.arch.Arch.processors - 1 do
    lane_for
      (Printf.sprintf "cpu%d" p)
      (fun lane ->
        Array.iteri
          (fun u (s : Schedule.task_slot) ->
            match s.Schedule.placement with
            | Schedule.On_processor q when q = p ->
              draw lane ~scale ~start_:s.Schedule.start_ ~end_:s.Schedule.end_
                (Instance.task_name inst u)
            | _ -> ())
          sched.Schedule.slots)
  done;
  Array.iteri
    (fun ridx (r : Schedule.region) ->
      lane_for
        (Printf.sprintf "region%d" ridx)
        (fun lane ->
          List.iter
            (fun u ->
              let s = slot u in
              draw lane ~scale ~start_:s.Schedule.start_ ~end_:s.Schedule.end_
                (Instance.task_name inst u))
            r.Schedule.tasks;
          List.iter
            (fun (rc : Schedule.reconfiguration) ->
              if rc.Schedule.region = ridx then
                draw lane ~scale ~start_:rc.Schedule.r_start
                  ~end_:rc.Schedule.r_end "r")
            sched.Schedule.reconfigurations))
    sched.Schedule.regions;
  if sched.Schedule.reconfigurations <> [] then
    lane_for "icap" (fun lane ->
        List.iter
          (fun (rc : Schedule.reconfiguration) ->
            draw lane ~scale ~start_:rc.Schedule.r_start ~end_:rc.Schedule.r_end
              (Printf.sprintf "R%d" rc.Schedule.region))
          sched.Schedule.reconfigurations);
  Buffer.contents buf

let print ?width sched = print_string (render ?width sched)
