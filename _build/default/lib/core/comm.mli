(** Communication-overhead modelling (the paper's second future-work
    item, Sec. VIII).

    The problem representation does not model inter-task communication
    explicitly; Sec. III notes that "the time needed to read and write
    data for a given implementation can be included within its execution
    time". This module automates exactly that: it folds per-edge data
    transfer costs into the execution times of the consumer's
    implementations, so any scheduler in this repository becomes
    communication-aware without changes. *)

val uniform_cost : int -> src:int -> dst:int -> int
(** The same transfer cost on every edge. *)

val inflate : ?hw_factor:float -> ?sw_factor:float ->
  cost:(src:int -> dst:int -> int) -> Resched_platform.Instance.t ->
  Resched_platform.Instance.t
(** [inflate ~cost inst] returns an instance in which every
    implementation of every task [t] has its execution time increased by
    [factor * Σ_{(p,t) ∈ E} cost ~src:p ~dst:t], rounded up, where
    [factor] is [hw_factor] (default 1.0 — accelerators pay DMA in full)
    for hardware implementations and [sw_factor] (default 0.5 — cores
    read through the cache hierarchy) for software ones. Costs must be
    >= 0; the graph and resource requirements are shared, not copied. *)
