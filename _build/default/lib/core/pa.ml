module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Floorplanner = Resched_floorplan.Floorplanner

let src = Logs.Src.create "resched.pa" ~doc:"PA scheduler pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  ordering : Regions_define.ordering;
  module_reuse : bool;
  floorplan_engine : Floorplanner.engine;
  floorplan_node_limit : int option;
  max_attempts : int;
  shrink_factor : float;
}

let default_config =
  {
    ordering = Regions_define.By_efficiency;
    module_reuse = false;
    floorplan_engine = Floorplanner.Backtracking;
    floorplan_node_limit = None;
    max_attempts = 8;
    shrink_factor = 0.9;
  }

type stats = {
  attempts : int;
  scheduling_seconds : float;
  floorplanning_seconds : float;
}

let schedule_of_state ?(module_reuse = false) ?(resource_scale = 1.0) state
    specs sequence =
  let resolved = Timing.resolve state ~reconfigs:specs ~sequence in
  let n = Instance.size state.State.inst in
  let slots =
    Array.init n (fun u ->
        let placement =
          if state.State.region_of.(u) >= 0 then
            Schedule.On_region state.State.region_of.(u)
          else Schedule.On_processor (Stdlib.max 0 state.State.processor_of.(u))
        in
        {
          Schedule.impl_idx = state.State.impl_of.(u);
          placement;
          start_ = resolved.Timing.task_start.(u);
          end_ = resolved.Timing.task_end.(u);
        })
  in
  let regions =
    Array.map
      (fun (r : State.region) ->
        let ordered =
          List.sort
            (fun a b ->
              compare resolved.Timing.task_start.(a)
                resolved.Timing.task_start.(b))
            r.State.tasks
        in
        {
          Schedule.res = r.State.res;
          reconf_ticks = r.State.reconf;
          tasks = ordered;
        })
      (State.region_list state)
  in
  let reconfigurations =
    List.map
      (fun k ->
        let spec = specs.(k) in
        {
          Schedule.region = spec.Timing.region_id;
          t_in = spec.Timing.t_in;
          t_out = spec.Timing.t_out;
          r_start = resolved.Timing.rec_start.(k);
          r_end = resolved.Timing.rec_end.(k);
        })
      sequence
  in
  {
    Schedule.instance = state.State.inst;
    regions;
    slots;
    reconfigurations;
    makespan = resolved.Timing.makespan;
    floorplan = None;
    module_reuse;
    resource_scale;
  }

let count_hw state =
  let n = Instance.size state.State.inst in
  let acc = ref 0 in
  for u = 0 to n - 1 do
    if State.is_hw state u then incr acc
  done;
  !acc

let schedule_once ?(config = default_config) ?(resource_scale = 1.0) inst =
  let max_res = Resched_fabric.Resource.scale (Arch.max_res inst.Instance.arch)
      resource_scale
  in
  let impl_of = Impl_select.run inst ~max_res in
  let state = State.create inst ~resource_scale ~impl_of () in
  Log.debug (fun m ->
      m "step 1-2: %d/%d tasks start on hardware, unconstrained makespan %d"
        (count_hw state) (Instance.size inst)
        state.State.cpm.Resched_taskgraph.Cpm.makespan);
  Regions_define.run ~module_reuse:config.module_reuse
    ~ordering:config.ordering state;
  Log.debug (fun m ->
      m "step 3: %d regions defined, %d tasks still on hardware"
        (List.length state.State.regions)
        (count_hw state));
  Sw_balance.run state;
  Log.debug (fun m -> m "step 4: %d hardware tasks after balancing" (count_hw state));
  Sw_map.run state;
  let specs, sequence = Reconf_sched.run ~module_reuse:config.module_reuse state in
  Log.debug (fun m ->
      m "step 7: %d reconfigurations sequenced on the controller"
        (Array.length specs));
  schedule_of_state ~module_reuse:config.module_reuse ~resource_scale state
    specs sequence

let all_software_schedule inst =
  let impl_of =
    Array.init (Instance.size inst) (fun u -> Instance.fastest_sw inst u)
  in
  let state = State.create inst ~impl_of () in
  Sw_map.run state;
  let sched = schedule_of_state state [||] [] in
  { sched with Schedule.floorplan = Some [||] }

let region_needs (sched : Schedule.t) =
  Array.map (fun (r : Schedule.region) -> r.Schedule.res) sched.Schedule.regions

let run ?(config = default_config) inst =
  let device = inst.Instance.arch.Arch.device in
  let sched_time = ref 0. and plan_time = ref 0. in
  let rec attempt k scale =
    if k > config.max_attempts then begin
      Log.warn (fun m ->
          m "no floorplannable schedule after %d attempts; all-software \
             fallback"
            config.max_attempts);
      let t0 = Unix.gettimeofday () in
      let fallback = all_software_schedule inst in
      sched_time := !sched_time +. (Unix.gettimeofday () -. t0);
      (fallback, k - 1)
    end
    else begin
      let t0 = Unix.gettimeofday () in
      let sched = schedule_once ~config ~resource_scale:scale inst in
      sched_time := !sched_time +. (Unix.gettimeofday () -. t0);
      let needs = region_needs sched in
      if Array.length needs = 0 then
        ({ sched with Schedule.floorplan = Some [||] }, k)
      else begin
        let report =
          Floorplanner.check ~engine:config.floorplan_engine
            ?node_limit:config.floorplan_node_limit device needs
        in
        plan_time := !plan_time +. report.Floorplanner.elapsed;
        match report.Floorplanner.verdict with
        | Floorplanner.Feasible placements ->
          Log.info (fun m ->
              m "attempt %d (scale %.2f): makespan %d, %d regions, \
                 floorplan found"
                k scale sched.Schedule.makespan (Array.length needs));
          ({ sched with Schedule.floorplan = Some placements }, k)
        | Floorplanner.Infeasible | Floorplanner.Unknown ->
          Log.debug (fun m ->
              m "attempt %d (scale %.2f): %d regions not floorplannable; \
                 shrinking"
                k scale (Array.length needs));
          attempt (k + 1) (scale *. config.shrink_factor)
      end
    end
  in
  let sched, attempts = attempt 1 1.0 in
  ( sched,
    {
      attempts;
      scheduling_seconds = !sched_time;
      floorplanning_seconds = !plan_time;
    } )
