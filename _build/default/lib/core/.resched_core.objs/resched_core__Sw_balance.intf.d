lib/core/sw_balance.mli: State
