lib/core/reconf_sched.ml: Array List Stdlib Timing
