lib/core/gantt.ml: Array Buffer Bytes List Printf Resched_platform Schedule Stdlib String
