lib/core/pa.ml: Array Impl_select List Logs Reconf_sched Regions_define Resched_fabric Resched_floorplan Resched_platform Resched_taskgraph Schedule State Stdlib Sw_balance Sw_map Timing Unix
