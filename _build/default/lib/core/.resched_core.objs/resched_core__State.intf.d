lib/core/state.mli: Cost Resched_fabric Resched_platform Resched_taskgraph
