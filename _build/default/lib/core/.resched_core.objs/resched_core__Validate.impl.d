lib/core/validate.ml: Array Format List Printf Resched_fabric Resched_floorplan Resched_platform Resched_taskgraph Schedule Stdlib String
