lib/core/regions_define.ml: Array Cost List Resched_fabric Resched_platform Resched_taskgraph Resched_util State
