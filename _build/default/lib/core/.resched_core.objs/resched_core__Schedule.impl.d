lib/core/schedule.ml: Array Format List Resched_fabric Resched_floorplan Resched_platform
