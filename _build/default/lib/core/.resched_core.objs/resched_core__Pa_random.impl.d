lib/core/pa_random.ml: Array List Pa Regions_define Resched_floorplan Resched_platform Resched_util Schedule Stdlib Unix
