lib/core/sw_map.mli: State
