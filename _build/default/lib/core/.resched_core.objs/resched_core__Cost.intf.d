lib/core/cost.mli: Resched_fabric Resched_platform
