lib/core/state.ml: Array Cost List Resched_fabric Resched_platform Resched_taskgraph
