lib/core/timing.ml: Array List Resched_platform Resched_taskgraph State Stdlib
