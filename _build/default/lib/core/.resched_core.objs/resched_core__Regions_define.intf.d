lib/core/regions_define.mli: Resched_util State
