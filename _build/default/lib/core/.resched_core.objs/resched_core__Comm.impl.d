lib/core/comm.ml: Array Float List Resched_platform Resched_taskgraph
