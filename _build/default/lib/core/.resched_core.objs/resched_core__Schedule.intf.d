lib/core/schedule.mli: Format Resched_fabric Resched_floorplan Resched_platform
