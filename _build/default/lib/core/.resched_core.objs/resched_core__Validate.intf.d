lib/core/validate.mli: Format Schedule
