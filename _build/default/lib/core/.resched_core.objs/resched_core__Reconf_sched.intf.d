lib/core/reconf_sched.mli: State Timing
