lib/core/impl_select.ml: Array Cost Resched_platform
