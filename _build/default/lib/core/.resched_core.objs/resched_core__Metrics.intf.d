lib/core/metrics.mli: Format Schedule
