lib/core/sw_balance.ml: Array Cost List Regions_define Resched_fabric Resched_platform State Stdlib
