lib/core/metrics.ml: Array Format List Resched_fabric Resched_platform Resched_taskgraph Schedule Stdlib
