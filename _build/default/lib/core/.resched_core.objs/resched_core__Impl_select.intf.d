lib/core/impl_select.mli: Resched_fabric Resched_platform
