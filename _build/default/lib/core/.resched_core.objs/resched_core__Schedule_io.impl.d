lib/core/schedule_io.ml: Array Buffer Fun Hashtbl In_channel List Printf Resched_fabric Resched_floorplan Resched_platform Schedule String
