lib/core/sw_map.ml: Array List Resched_platform Resched_taskgraph State Stdlib
