lib/core/timing.mli: State
