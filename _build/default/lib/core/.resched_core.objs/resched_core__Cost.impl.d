lib/core/cost.ml: List Resched_fabric Resched_platform
