lib/core/pa.mli: Regions_define Resched_floorplan Resched_platform Schedule
