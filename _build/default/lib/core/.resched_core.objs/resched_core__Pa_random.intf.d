lib/core/pa_random.mli: Pa Resched_platform Schedule
