lib/core/comm.mli: Resched_platform
