(** Implementation cost and resource-efficiency metrics (Sec. V-A/V-C).

    All three quantities depend on the (possibly virtually reduced) FPGA
    resource availability [max_res]:
    - [weight_res] (eq. 4) gives more importance to resource kinds that
      are scarcer on the device;
    - [cost] (eq. 3) scores an implementation by its relative resource
      footprint plus its execution time normalized by [maxT];
    - [efficiency] (eq. 5) is the time/weighted-area ratio: high values
      identify the *resource-efficient* implementations the scheduler
      prioritizes. *)

type t
(** Precomputed weights for one (instance, max_res) pair. *)

val make : Resched_platform.Instance.t ->
  max_res:Resched_fabric.Resource.t -> t
(** Raises [Invalid_argument] when [max_res] is the zero vector. *)

val weight_res : t -> Resched_fabric.Resource.kind -> float
(** Eq. 4: [1 - maxRes_r / Σ_r' maxRes_r']. *)

val max_t : t -> int
(** Eq. 4's [maxT]: serial execution with each task's fastest
    implementation. *)

val cost : t -> Resched_platform.Impl.t -> float
(** Eq. 3. Defined for hardware implementations; a software
    implementation gets only its time term (zero resource term). *)

val efficiency : t -> Resched_platform.Impl.t -> float
(** Eq. 5. Requires a hardware implementation (raises otherwise). *)

val best_hw : t -> Resched_platform.Instance.t -> int ->
  (int * Resched_platform.Impl.t) option
(** The hardware implementation of the given task with the lowest
    {!cost} (ties broken by lower index), with its index. *)
