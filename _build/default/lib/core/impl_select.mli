(** Step 1 — implementation selection (Sec. V-A).

    For every task: score each hardware implementation with the cost
    metric (eq. 3), pick the cheapest hardware implementation and the
    fastest software one, then select whichever of the two executes
    faster. *)

val run : Resched_platform.Instance.t -> max_res:Resched_fabric.Resource.t ->
  int array
(** Initial implementation index per task. *)
