module Resource = Resched_fabric.Resource
module Instance = Resched_platform.Instance

type placement = On_region of int | On_processor of int

type task_slot = {
  impl_idx : int;
  placement : placement;
  start_ : int;
  end_ : int;
}

type region = {
  res : Resource.t;
  reconf_ticks : int;
  tasks : int list;
}

type reconfiguration = {
  region : int;
  t_in : int;
  t_out : int;
  r_start : int;
  r_end : int;
}

type t = {
  instance : Instance.t;
  regions : region array;
  slots : task_slot array;
  reconfigurations : reconfiguration list;
  makespan : int;
  floorplan : Resched_floorplan.Placement.rect array option;
  module_reuse : bool;
  resource_scale : float;
}

let makespan t = t.makespan

let count p t =
  Array.fold_left (fun acc slot -> if p slot.placement then acc + 1 else acc) 0 t.slots

let hw_task_count t = count (function On_region _ -> true | On_processor _ -> false) t
let sw_task_count t = count (function On_processor _ -> true | On_region _ -> false) t

let reconfiguration_time t =
  List.fold_left (fun acc r -> acc + (r.r_end - r.r_start)) 0 t.reconfigurations

let region_tasks_in_order t s =
  let tasks = t.regions.(s).tasks in
  List.sort (fun a b -> compare t.slots.(a).start_ t.slots.(b).start_) tasks

let pp_summary ppf t =
  Format.fprintf ppf
    "makespan=%d ticks, %d HW / %d SW tasks, %d regions, %d reconfigurations \
     (%d ticks)%s"
    t.makespan (hw_task_count t) (sw_task_count t) (Array.length t.regions)
    (List.length t.reconfigurations) (reconfiguration_time t)
    (match t.floorplan with Some _ -> ", floorplanned" | None -> "")
