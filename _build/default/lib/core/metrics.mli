(** Schedule quality metrics used by the evaluation harness. *)

type t = {
  makespan : int;
  hw_tasks : int;
  sw_tasks : int;
  regions : int;
  reconfigurations : int;
  reconfiguration_ticks : int;
  reconfiguration_overhead : float;
      (** reconfiguration ticks / makespan *)
  fpga_utilization : float;
      (** busy region-resource-ticks / (device resources * makespan),
          weighted by total resource units *)
  processor_utilization : float;
  critical_path_lower_bound : int;
      (** CPM makespan with every task on its fastest implementation and
          no resource limits: no schedule can beat this *)
}

val compute : Schedule.t -> t
val pp : Format.formatter -> t -> unit
