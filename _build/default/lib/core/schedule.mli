(** The scheduler's output (Sec. III): reconfigurable regions with their
    resource requirements, an implementation and placement per task, time
    slots for every task, and the reconfiguration tasks on the single
    reconfiguration controller.

    Time slots are half-open integer-tick intervals [\[start, end)): two
    activities are compatible on an exclusive resource when one's [end_]
    is <= the other's [start]. (The paper writes [T_START = T_END + 1]
    with closed intervals; both conventions are equivalent up to one
    tick.) *)

type placement =
  | On_region of int  (** index into [regions] *)
  | On_processor of int  (** processor id in [0, processors) *)

type task_slot = {
  impl_idx : int;  (** index into the instance's [impls.(task)] *)
  placement : placement;
  start_ : int;
  end_ : int;
}

type region = {
  res : Resched_fabric.Resource.t;  (** [res_{s,r}] *)
  reconf_ticks : int;  (** [reconf_s] (eq. 2) *)
  tasks : int list;  (** hosted tasks in execution order *)
}

type reconfiguration = {
  region : int;
  t_in : int;  (** ingoing task (runs before the reconfiguration) *)
  t_out : int;  (** outgoing task (needs the new bitstream) *)
  r_start : int;
  r_end : int;
}

type t = {
  instance : Resched_platform.Instance.t;
  regions : region array;
  slots : task_slot array;  (** one per task *)
  reconfigurations : reconfiguration list;
      (** in execution order on the reconfiguration controller *)
  makespan : int;
  floorplan : Resched_floorplan.Placement.rect array option;
      (** one rectangle per region when a floorplan was computed *)
  module_reuse : bool;
      (** whether consecutive same-module tasks were allowed to skip
          reconfiguration when this schedule was built *)
  resource_scale : float;
      (** the virtual [maxRes] scaling under which the scheduler ran
          (1.0 unless floorplanning forced retries) *)
}

val makespan : t -> int
val hw_task_count : t -> int
val sw_task_count : t -> int
val reconfiguration_time : t -> int
(** Total ticks spent reconfiguring. *)

val region_tasks_in_order : t -> int -> int list
(** Tasks of a region sorted by start time (equals [region.tasks]). *)

val pp_summary : Format.formatter -> t -> unit
