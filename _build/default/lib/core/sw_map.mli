(** Step 6 — software task mapping (Sec. V-F).

    Binds every software task to a processor core. Tasks are visited in
    chronological order ([T_MIN] ascending); each goes to the processor
    with the smallest induced delay λ_p (eq. 8 — implemented as
    [max(0, max_{t2 ∈ T_p} T_END_{t2} - T_MIN_t)]; the paper's [min] is a
    typo, see DESIGN.md), and an ordering edge from the processor's last
    task propagates any delay through the task graph (eq. 9 / step 4). *)

val run : State.t -> unit
(** Mutates [processor_of], the dependency graph and the windows. *)

val delay : State.t -> task:int -> last_end:int -> int
(** λ_p for a processor whose currently-last task ends at [last_end]. *)
