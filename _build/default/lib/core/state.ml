module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Resource = Resched_fabric.Resource
module Bitstream = Resched_fabric.Bitstream
module Device = Resched_fabric.Device
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl

type region = {
  id : int;
  res : Resource.t;
  bits : float;
  reconf : int;
  mutable tasks : int list;
}

type t = {
  inst : Instance.t;
  max_res : Resource.t;
  cost : Cost.t;
  impl_of : int array;
  dep : Graph.t;
  mutable regions : region list;
  region_of : int array;
  processor_of : int array;
  mutable cpm : Cpm.t;
}

let impl t u = Instance.impl t.inst ~task:u ~idx:t.impl_of.(u)
let duration t u = (impl t u).Impl.time
let durations t = Array.init (Instance.size t.inst) (duration t)
let is_hw t u = Impl.is_hw (impl t u)

let refresh_windows t =
  t.cpm <- Cpm.compute t.dep ~durations:(durations t)

let create inst ?(resource_scale = 1.0) ~impl_of () =
  let n = Instance.size inst in
  if Array.length impl_of <> n then
    invalid_arg "State.create: impl_of length mismatch";
  let max_res = Resource.scale (Arch.max_res inst.Instance.arch) resource_scale in
  let t =
    {
      inst;
      max_res;
      cost = Cost.make inst ~max_res;
      impl_of = Array.copy impl_of;
      dep = Graph.copy inst.Instance.graph;
      regions = [];
      region_of = Array.make n (-1);
      processor_of = Array.make n (-1);
      cpm =
        Cpm.compute inst.Instance.graph
          ~durations:(Array.make n 0) (* replaced just below *);
    }
  in
  refresh_windows t;
  t

let t_min t u = t.cpm.Cpm.t_min.(u)
let t_max t u = t.cpm.Cpm.t_max.(u)

let used_resources t =
  List.fold_left (fun acc r -> Resource.add acc r.res) Resource.zero t.regions

let fits_on_fpga t need =
  Resource.fits (Resource.add (used_resources t) need) ~within:t.max_res

let new_region t need =
  let device = t.inst.Instance.arch.Arch.device in
  let bits = Bitstream.region_bits device.Device.model need in
  let reconf = Arch.reconf_ticks t.inst.Instance.arch need in
  let region =
    { id = List.length t.regions; res = need; bits; reconf; tasks = [] }
  in
  t.regions <- t.regions @ [ region ];
  region

let sort_by_t_min t tasks =
  List.sort (fun a b -> compare (t_min t a) (t_min t b)) tasks

let insert_region_edges t ~task region =
  (* The region is exclusive: order its tasks by their window starts and
     chain the new task between its neighbours. *)
  let ordered = sort_by_t_min t (task :: region.tasks) in
  let rec neighbours = function
    | a :: b :: tl ->
      if b = task then Some a
      else if a = task then None
      else neighbours (b :: tl)
    | _ -> None
  in
  let prev = neighbours ordered in
  let next =
    let rec after = function
      | a :: b :: tl -> if a = task then Some b else after (b :: tl)
      | _ -> None
    in
    after ordered
  in
  let guard_edge u v =
    if u <> v && not (Graph.has_edge t.dep u v) then begin
      if (Graph.reachable t.dep v).(u) then
        invalid_arg "State.assign_to_region: ordering edge would create a cycle";
      Graph.add_edge t.dep u v
    end
  in
  (match prev with Some p -> guard_edge p task | None -> ());
  (match next with Some nx -> guard_edge task nx | None -> ());
  region.tasks <- ordered

let assign_to_region t ~task region =
  t.region_of.(task) <- region.id;
  t.processor_of.(task) <- -1;
  insert_region_edges t ~task region;
  refresh_windows t

let switch_to_sw t ~task =
  t.impl_of.(task) <- Instance.fastest_sw t.inst task;
  (if t.region_of.(task) >= 0 then begin
     (* Should not happen in the pipeline, but keep the state coherent. *)
     List.iter
       (fun r ->
         if r.id = t.region_of.(task) then
           r.tasks <- List.filter (fun u -> u <> task) r.tasks)
       t.regions;
     t.region_of.(task) <- -1
   end);
  refresh_windows t

let switch_to_hw t ~task ~impl_idx region =
  let i = Instance.impl t.inst ~task ~idx:impl_idx in
  if not (Impl.is_hw i) then
    invalid_arg "State.switch_to_hw: not a hardware implementation";
  t.impl_of.(task) <- impl_idx;
  refresh_windows t;
  assign_to_region t ~task region

let region_list t = Array.of_list t.regions

let find_region t id = List.find (fun r -> r.id = id) t.regions
