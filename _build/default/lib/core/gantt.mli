(** ASCII Gantt rendering of a schedule: one lane per processor, per
    reconfigurable region and one for the reconfiguration controller —
    the same picture as the paper's Fig. 1. *)

val render : ?width:int -> Schedule.t -> string
(** [width] (default 100) is the number of character columns the time
    axis is scaled onto. *)

val print : ?width:int -> Schedule.t -> unit
