(** Timing resolution over the augmented graph.

    Steps 5-7 of the paper compute start/end times and propagate delays
    procedurally; here the committed decisions (implementations, region
    and processor ordering edges, reconfiguration sequence on the single
    controller) are compiled into one DAG whose longest path yields every
    start time at once. This is equivalent to the paper's propagation but
    is independently checkable and cannot leave a stale time behind. *)

type reconf_spec = {
  region_id : int;
  t_in : int;  (** task executed before the reconfiguration *)
  t_out : int;  (** task whose bitstream is loaded *)
  dur : int;  (** [reconf_s] of the hosting region *)
  critical : bool;  (** the outgoing task was critical at extraction *)
}

type resolved = {
  task_start : int array;
  task_end : int array;
  rec_start : int array;  (** indexed like the [reconfigs] argument *)
  rec_end : int array;
  makespan : int;
}

val reconf_specs : ?module_reuse:bool -> State.t -> reconf_spec array
(** One reconfiguration per consecutive task pair inside each region
    (Sec. V-G), in region order; pairs whose implementations share a
    [module_id] are skipped when [module_reuse] is set. Criticality is
    taken from the state's current windows. *)

val resolve : State.t -> reconfigs:reconf_spec array -> sequence:int list ->
  resolved
(** Earliest-start times subject to: augmented dependency edges, each
    reconfiguration after its ingoing and before its outgoing task, and
    the total [sequence] (indices into [reconfigs]) on the reconfiguration
    controller. Reconfigurations not in [sequence] are only constrained
    by their region. Raises [Graph.Cycle] if the sequence contradicts the
    dependencies. *)

val must_precede : State.t -> reconf_spec -> reconf_spec -> bool
(** Dependency-forced ordering between two reconfigurations: [a] must run
    before [b] when [a]'s outgoing task (transitively) precedes [b]'s
    ingoing task, or they share a region in that order. *)
