(** Step 4 — software task balancing (Sec. V-D).

    Region definition may have pushed tasks to software, leaving FPGA
    regions idle while hardware tasks wait. This pass revisits software
    tasks that do own hardware implementations (lowest [T_MIN] first) and
    moves one back to hardware when (a) its start lies beyond the
    estimated total reconfiguration time [totRecTime] (eq. 6) — the
    paper's proxy for "the extra reconfiguration will not contend" — and
    (b) some region can host it without window overlap. *)

val tot_rec_time : State.t -> int
(** Eq. 6: Σ_s reconf_s * (|T_s| - 1). *)

val run : State.t -> unit
(** Mutates implementations, placements and windows. *)
