module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance
module Impl = Resched_platform.Impl

let uniform_cost c ~src:_ ~dst:_ = c

let inflate ?(hw_factor = 1.0) ?(sw_factor = 0.5) ~cost
    (inst : Instance.t) =
  if hw_factor < 0. || sw_factor < 0. then
    invalid_arg "Comm.inflate: negative factor";
  let n = Instance.size inst in
  let incoming = Array.make n 0 in
  for t = 0 to n - 1 do
    incoming.(t) <-
      List.fold_left
        (fun acc p ->
          let c = cost ~src:p ~dst:t in
          if c < 0 then invalid_arg "Comm.inflate: negative cost";
          acc + c)
        0
        (Graph.preds inst.Instance.graph t)
  done;
  let bump factor base extra =
    base + int_of_float (Float.ceil (factor *. float_of_int extra))
  in
  let impls =
    Array.mapi
      (fun t impls ->
        Array.map
          (fun (i : Impl.t) ->
            let factor = if Impl.is_hw i then hw_factor else sw_factor in
            { i with Impl.time = bump factor i.Impl.time incoming.(t) })
          impls)
      inst.Instance.impls
  in
  Instance.make ~arch:inst.Instance.arch ~graph:inst.Instance.graph
    ~names:inst.Instance.names ~impls ()
