(** Mutable working state shared by the scheduler's pipeline steps.

    Holds the current implementation choice per task, the *augmented*
    dependency graph (application edges plus the ordering edges inserted
    when tasks share a reconfigurable region or a processor), the set of
    reconfigurable regions built so far, and the CPM time windows, which
    must be refreshed after any change ({!refresh_windows}). *)

module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm

type region = {
  id : int;
  res : Resched_fabric.Resource.t;
  bits : float;  (** [bit_s] (eq. 1) *)
  reconf : int;  (** [reconf_s] in ticks (eq. 2) *)
  mutable tasks : int list;  (** assigned tasks, kept sorted by [t_min] *)
}

type t = {
  inst : Resched_platform.Instance.t;
  max_res : Resched_fabric.Resource.t;
      (** virtually reduced FPGA availability for this attempt *)
  cost : Cost.t;
  impl_of : int array;  (** current implementation index per task *)
  dep : Graph.t;  (** augmented dependency graph (owned copy) *)
  mutable regions : region list;  (** in creation order *)
  region_of : int array;  (** region id or -1 *)
  processor_of : int array;  (** processor id or -1 *)
  mutable cpm : Cpm.t;  (** windows for the current durations/graph *)
}

val create : Resched_platform.Instance.t -> ?resource_scale:float ->
  impl_of:int array -> unit -> t
(** Fresh state with the given initial implementation selection; windows
    are computed immediately. [resource_scale] (default 1.0) virtually
    scales the device's [maxRes] (floorplan-retry rule, Sec. V-H). *)

val impl : t -> int -> Resched_platform.Impl.t
(** The currently selected implementation of a task. *)

val duration : t -> int -> int
val durations : t -> int array
val is_hw : t -> int -> bool
(** Is the currently selected implementation a hardware one? *)

val refresh_windows : t -> unit
(** Recompute CPM windows for the current durations and augmented graph. *)

val t_min : t -> int -> int
val t_max : t -> int -> int

val used_resources : t -> Resched_fabric.Resource.t
(** Sum of the resource requirements of all regions created so far. *)

val fits_on_fpga : t -> Resched_fabric.Resource.t -> bool
(** Would a new region with the given requirement still fit [max_res]
    next to the existing regions? *)

val new_region : t -> Resched_fabric.Resource.t -> region
(** Create a region sized for the given requirement (eqs. 1-2 fix its
    bitstream and reconfiguration time). Does not check capacity. *)

val assign_to_region : t -> task:int -> region -> unit
(** Place the task on the region: records the placement, inserts the
    region-ordering edges dictated by the current windows, keeps the
    region's task list sorted by [t_min], and refreshes the windows.
    Raises [Invalid_argument] if the insertion would create a dependency
    cycle (callers must have checked window compatibility). *)

val switch_to_sw : t -> task:int -> unit
(** Select the task's fastest software implementation and refresh the
    windows. *)

val switch_to_hw : t -> task:int -> impl_idx:int -> region -> unit
(** Software-balancing move (Sec. V-D): adopt the given hardware
    implementation and place the task on [region]. *)

val region_list : t -> region array
(** Regions in creation order. *)

val find_region : t -> int -> region
(** Region by id; raises [Not_found]. *)
