module Resource = Resched_fabric.Resource
module Io = Resched_platform.Io
module Placement = Resched_floorplan.Placement

let to_string (sched : Schedule.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Io.to_string sched.Schedule.instance);
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  addf "schedule makespan %d reuse %b scale %g" sched.Schedule.makespan
    sched.Schedule.module_reuse sched.Schedule.resource_scale;
  Array.iteri
    (fun id (r : Schedule.region) ->
      addf "region %d clb %d bram %d dsp %d reconf %d" id r.Schedule.res.Resource.clb
        r.Schedule.res.Resource.bram r.Schedule.res.Resource.dsp
        r.Schedule.reconf_ticks)
    sched.Schedule.regions;
  Array.iteri
    (fun task (s : Schedule.task_slot) ->
      let place =
        match s.Schedule.placement with
        | Schedule.On_region r -> Printf.sprintf "region %d" r
        | Schedule.On_processor p -> Printf.sprintf "proc %d" p
      in
      addf "slot %d impl %d %s start %d end %d" task s.Schedule.impl_idx place
        s.Schedule.start_ s.Schedule.end_)
    sched.Schedule.slots;
  List.iter
    (fun (rc : Schedule.reconfiguration) ->
      addf "reconf-task region %d in %d out %d start %d end %d"
        rc.Schedule.region rc.Schedule.t_in rc.Schedule.t_out
        rc.Schedule.r_start rc.Schedule.r_end)
    sched.Schedule.reconfigurations;
  (match sched.Schedule.floorplan with
  | None -> ()
  | Some placements ->
    Array.iteri
      (fun id (p : Placement.rect) ->
        addf "floorplan %d cols %d %d rows %d %d" id p.Placement.c0
          p.Placement.c1 p.Placement.r0 p.Placement.r1)
      placements);
  Buffer.contents buf

let of_string text =
  (* The instance parser ignores unknown directives? It does not — so we
     split the file at the "schedule" header line. *)
  let lines = String.split_on_char '\n' text in
  let rec split acc = function
    | [] -> (List.rev acc, [])
    | line :: rest ->
      let t = String.trim line in
      if String.length t >= 8 && String.sub t 0 8 = "schedule" then
        (List.rev acc, line :: rest)
      else split (line :: acc) rest
  in
  let inst_lines, sched_lines = split [] lines in
  match sched_lines with
  | [] -> Error "missing 'schedule' header"
  | header :: body -> (
    match Io.of_string (String.concat "\n" inst_lines) with
    | Error msg -> Error ("instance part: " ^ msg)
    | Ok inst -> (
      let n = Resched_platform.Instance.size inst in
      let tokens l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
      let parse_error = ref None in
      let err fmt =
        Printf.ksprintf (fun m -> if !parse_error = None then parse_error := Some m) fmt
      in
      let makespan = ref 0 and reuse = ref false and scale = ref 1.0 in
      (match tokens header with
      | [ "schedule"; "makespan"; m; "reuse"; r; "scale"; s ] -> (
        match (int_of_string_opt m, bool_of_string_opt r, float_of_string_opt s) with
        | Some m, Some r, Some s ->
          makespan := m;
          reuse := r;
          scale := s
        | _ -> err "bad schedule header")
      | _ -> err "bad schedule header");
      let regions = ref [] in
      let slots = Array.make n None in
      let reconfs = ref [] in
      let floorplan = ref [] in
      let int_ s k = match int_of_string_opt s with Some v -> k v | None -> err "bad integer %S" s in
      List.iter
        (fun line ->
          match tokens line with
          | [] -> ()
          | [ "region"; id; "clb"; c; "bram"; b; "dsp"; d; "reconf"; rc ] ->
            int_ id (fun id -> int_ c (fun clb -> int_ b (fun bram ->
                int_ d (fun dsp -> int_ rc (fun reconf ->
                    regions := (id, Resource.make ~clb ~bram ~dsp, reconf) :: !regions)))))
          | [ "slot"; t; "impl"; i; place_kind; pid; "start"; s; "end"; e ] ->
            int_ t (fun t -> int_ i (fun impl_idx -> int_ pid (fun pid ->
                int_ s (fun start_ -> int_ e (fun end_ ->
                    if t < 0 || t >= n then err "slot task %d out of range" t
                    else begin
                      let placement =
                        match place_kind with
                        | "region" -> Some (Schedule.On_region pid)
                        | "proc" -> Some (Schedule.On_processor pid)
                        | _ ->
                          err "bad placement %S" place_kind;
                          None
                      in
                      match placement with
                      | Some placement ->
                        slots.(t) <-
                          Some { Schedule.impl_idx; placement; start_; end_ }
                      | None -> ()
                    end)))))
          | [ "reconf-task"; "region"; r; "in"; a; "out"; b; "start"; s; "end"; e ] ->
            int_ r (fun region -> int_ a (fun t_in -> int_ b (fun t_out ->
                int_ s (fun r_start -> int_ e (fun r_end ->
                    reconfs :=
                      { Schedule.region; t_in; t_out; r_start; r_end }
                      :: !reconfs)))))
          | [ "floorplan"; id; "cols"; c0; c1; "rows"; r0; r1 ] ->
            int_ id (fun id -> int_ c0 (fun c0 -> int_ c1 (fun c1 ->
                int_ r0 (fun r0 -> int_ r1 (fun r1 ->
                    floorplan :=
                      (id, { Placement.c0; c1; r0; r1 }) :: !floorplan)))))
          | tok :: _ -> err "unknown schedule directive %S" tok)
        body;
      match !parse_error with
      | Some msg -> Error msg
      | None -> (
        let regions_sorted = List.sort compare !regions in
        let region_tasks = Hashtbl.create 8 in
        Array.iteri
          (fun t slot ->
            match slot with
            | Some { Schedule.placement = Schedule.On_region r; _ } ->
              let prev = try Hashtbl.find region_tasks r with Not_found -> [] in
              Hashtbl.replace region_tasks r (t :: prev)
            | Some _ | None -> ())
          slots;
        let slot_start t =
          match slots.(t) with Some s -> s.Schedule.start_ | None -> 0
        in
        let regions_arr =
          Array.of_list
            (List.map
               (fun (id, res, reconf_ticks) ->
                 let tasks =
                   (try Hashtbl.find region_tasks id with Not_found -> [])
                   |> List.sort (fun a b -> compare (slot_start a) (slot_start b))
                 in
                 { Schedule.res; reconf_ticks; tasks })
               regions_sorted)
        in
        let missing = ref None in
        let slots_arr =
          Array.mapi
            (fun t slot ->
              match slot with
              | Some s -> s
              | None ->
                if !missing = None then missing := Some t;
                { Schedule.impl_idx = 0; placement = Schedule.On_processor 0;
                  start_ = 0; end_ = 0 })
            slots
        in
        match !missing with
        | Some t -> Error (Printf.sprintf "missing slot for task %d" t)
        | None ->
          let floorplan =
            match !floorplan with
            | [] -> None
            | l ->
              Some
                (Array.of_list (List.map snd (List.sort compare l)))
          in
          Ok
            {
              Schedule.instance = inst;
              regions = regions_arr;
              slots = slots_arr;
              reconfigurations =
                List.sort
                  (fun a b -> compare a.Schedule.r_start b.Schedule.r_start)
                  !reconfs;
              makespan = !makespan;
              floorplan;
              module_reuse = !reuse;
              resource_scale = !scale;
            })))

let save path sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string sched))

let load path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg
