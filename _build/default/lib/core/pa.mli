(** PA — the deterministic scheduling heuristic (Secs. IV-V).

    Runs the eight-step pipeline: implementation selection, critical-path
    extraction, regions definition, software task balancing, start/end
    computation, software task mapping, reconfigurations scheduling and
    the floorplan feasibility check — restarting with virtually reduced
    FPGA resources when no feasible floorplan exists. *)

type config = {
  ordering : Regions_define.ordering;
      (** non-critical hardware task order in regions definition;
          {!Regions_define.By_efficiency} gives the paper's PA *)
  module_reuse : bool;
      (** allow consecutive same-module tasks in a region to skip the
          reconfiguration (paper's future work; default false) *)
  floorplan_engine : Resched_floorplan.Floorplanner.engine;
  floorplan_node_limit : int option;
  max_attempts : int;
      (** floorplan retries before falling back to all-software *)
  shrink_factor : float;
      (** virtual [maxRes] multiplier applied per retry (Sec. V-H) *)
}

val default_config : config
(** Efficiency ordering, no module reuse, backtracking floorplanner,
    8 attempts, shrink 0.9. *)

type stats = {
  attempts : int;  (** scheduling attempts (>= 1) *)
  scheduling_seconds : float;  (** time in steps 1-7 *)
  floorplanning_seconds : float;  (** time in step 8 *)
}

val schedule_once : ?config:config -> ?resource_scale:float ->
  Resched_platform.Instance.t -> Schedule.t
(** Steps 1-7 only (no floorplan check); [resource_scale] (default 1.0)
    virtually scales the FPGA resources. The result's [floorplan] is
    [None]. Used by the randomized variant's inner loop and by tests. *)

val all_software_schedule : Resched_platform.Instance.t -> Schedule.t
(** Every task on its fastest software implementation, mapped on the
    processors; trivially floorplan-feasible. The terminal fallback. *)

val run : ?config:config -> Resched_platform.Instance.t ->
  Schedule.t * stats
(** The full PA algorithm. The returned schedule always validates
    ({!Validate.check}) and carries a floorplan when it uses regions. *)
