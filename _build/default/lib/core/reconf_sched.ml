let insert_at pos x l =
  let rec go i = function
    | rest when i = pos -> x :: rest
    | [] -> [ x ]
    | hd :: tl -> hd :: go (i + 1) tl
  in
  go 0 l

(* Legal position interval for inserting [k] into [sequence] given the
   dependency-forced pairwise order: after every scheduled spec that must
   precede it, before every scheduled spec it must precede. *)
let position_bounds state specs sequence k =
  let lo = ref 0 and hi = ref (List.length sequence) in
  List.iteri
    (fun pos j ->
      if Timing.must_precede state specs.(j) specs.(k) then
        lo := Stdlib.max !lo (pos + 1);
      if Timing.must_precede state specs.(k) specs.(j) then
        hi := Stdlib.min !hi pos)
    sequence;
  (!lo, !hi)

let run ?module_reuse state =
  let specs = Timing.reconf_specs ?module_reuse state in
  let nr = Array.length specs in
  let sequence = ref [] in
  let resolve () = Timing.resolve state ~reconfigs:specs ~sequence:!sequence in
  let insert ~desired k =
    let lo, hi = position_bounds state specs !sequence k in
    assert (lo <= hi);
    let pos = Stdlib.max lo (Stdlib.min hi desired) in
    sequence := insert_at pos k !sequence
  in
  (* Critical reconfigurations first, lowest window start first; their
     delay hits the makespan in full. Appending in this order realizes
     the paper's "start after the last scheduled reconfiguration". *)
  let criticals = ref [] and non_criticals = ref [] in
  for k = nr - 1 downto 0 do
    if specs.(k).Timing.critical then criticals := k :: !criticals
    else non_criticals := k :: !non_criticals
  done;
  let remaining = ref !criticals in
  while !remaining <> [] do
    let times = resolve () in
    let t_min_of k = times.Timing.task_end.(specs.(k).Timing.t_in) in
    let best =
      List.fold_left
        (fun acc k ->
          match acc with
          | None -> Some k
          | Some b -> if t_min_of k < t_min_of b then Some k else acc)
        None !remaining
    in
    (match best with
    | Some k ->
      insert ~desired:(List.length !sequence) k;
      remaining := List.filter (fun j -> j <> k) !remaining
    | None -> assert false)
  done;
  (* Non-critical ones slot into the earliest controller gap at or after
     their window start; the re-resolution shifts whatever follows. *)
  let remaining = ref !non_criticals in
  while !remaining <> [] do
    let times = resolve () in
    let t_min_of k = times.Timing.task_end.(specs.(k).Timing.t_in) in
    let best =
      List.fold_left
        (fun acc k ->
          match acc with
          | None -> Some k
          | Some b -> if t_min_of k < t_min_of b then Some k else acc)
        None !remaining
    in
    match best with
    | None -> assert false
    | Some k ->
      let t_min_k = t_min_of k in
      (* Earliest instant >= t_min_k outside every scheduled slot. *)
      let slots =
        List.map
          (fun j -> (times.Timing.rec_start.(j), times.Timing.rec_end.(j)))
          !sequence
        |> List.sort compare
      in
      let tau =
        List.fold_left
          (fun tau (s, e) -> if tau >= s && tau < e then e else tau)
          t_min_k slots
      in
      let desired =
        List.fold_left
          (fun acc j ->
            if times.Timing.rec_start.(j) < tau then acc + 1 else acc)
          0 !sequence
      in
      insert ~desired k;
      remaining := List.filter (fun j -> j <> k) !remaining
  done;
  (specs, !sequence)
