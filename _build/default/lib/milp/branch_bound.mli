(** Branch-and-bound MILP solver on top of {!Simplex}.

    Best-LP-bound-first search, branching on the most fractional integer
    variable. Exact when it terminates within the node budget; otherwise
    returns the incumbent with [proved_optimal = false] (the behaviour the
    IS-k baseline relies on for large chunks). *)

type solution = {
  objective : float;
  values : float array;
  proved_optimal : bool;
  nodes : int;  (** LP relaxations solved *)
}

type result =
  | Optimal of solution  (** [proved_optimal] is true *)
  | Feasible of solution  (** node budget hit with an incumbent *)
  | Infeasible
  | Unbounded
  | Node_limit  (** node budget hit before any integer solution *)

val solve : ?node_limit:int -> ?time_limit:float ->
  ?integrality_tolerance:float -> Lp.t -> result
(** [node_limit] defaults to 1_000_000; [time_limit] (wall-clock seconds,
    default unlimited) turns the solver into an anytime procedure;
    [integrality_tolerance] to 1e-6. Integer variables must have finite
    bounds. *)

val is_integral : ?tolerance:float -> Lp.t -> float array -> bool
(** Do the given values satisfy all the model's integrality markers? *)
