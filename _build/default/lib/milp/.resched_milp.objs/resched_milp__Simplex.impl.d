lib/milp/simplex.ml: Array Float List Lp Unix
