lib/milp/branch_bound.ml: Array Float Lp Obj Simplex Unix
