type solution = {
  objective : float;
  values : float array;
  proved_optimal : bool;
  nodes : int;
}

type result =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Unbounded
  | Node_limit

let is_integral ?(tolerance = 1e-6) model values =
  let ok = ref true in
  Array.iteri
    (fun i v ->
      if Lp.var_is_integer model (Lp.var_of_index model i) then begin
        let r = Float.abs (v -. Float.round v) in
        if r > tolerance then ok := false
      end)
    values;
  !ok

(* Min-heap on LP bound (converted to minimization direction). *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = Array.make 16 (0., Obj.magic 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h key v =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (key, v);
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end
end

let solve ?(node_limit = 1_000_000) ?time_limit
    ?(integrality_tolerance = 1e-6) model =
  let deadline =
    match time_limit with
    | None -> infinity
    | Some s ->
      if s <= 0. then invalid_arg "Branch_bound.solve: time_limit";
      Unix.gettimeofday () +. s
  in
  let n = Lp.num_vars model in
  let base_lb =
    Array.init n (fun i -> Lp.var_lb model (Lp.var_of_index model i))
  in
  let base_ub =
    Array.init n (fun i -> Lp.var_ub model (Lp.var_of_index model i))
  in
  let integer =
    Array.init n (fun i -> Lp.var_is_integer model (Lp.var_of_index model i))
  in
  Array.iteri
    (fun i isint ->
      if isint && not (Float.is_finite base_ub.(i)) then
        invalid_arg "Branch_bound.solve: integer variables need finite bounds")
    integer;
  let sign = match Lp.objective model with Lp.Minimize -> 1. | Maximize -> -1. in
  (* All keys below are in minimization direction: key = sign * objective. *)
  let incumbent = ref None in
  let incumbent_key = ref infinity in
  let nodes = ref 0 in
  let heap = Heap.create () in
  let most_fractional values =
    let best = ref (-1) in
    let best_frac = ref integrality_tolerance in
    for i = 0 to n - 1 do
      if integer.(i) then begin
        let v = values.(i) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > !best_frac then begin
          best := i;
          best_frac := frac
        end
      end
    done;
    !best
  in
  let evaluate lb ub =
    incr nodes;
    match Simplex.solve_with_bounds ~deadline model ~lb ~ub with
    | Simplex.Infeasible -> `Pruned
    | Simplex.Unbounded -> `Unbounded
    | Simplex.Optimal { objective; values } ->
      let key = sign *. objective in
      if key >= !incumbent_key -. 1e-9 then `Pruned
      else begin
        match most_fractional values with
        | -1 ->
          incumbent := Some (objective, values);
          incumbent_key := key;
          `Integer
        | branch_var -> `Branch (key, branch_var, values)
      end
  in
  let push_children lb ub branch_var values =
    let v = values.(branch_var) in
    let floor_v = Float.floor v in
    let down_ub = Array.copy ub in
    down_ub.(branch_var) <- floor_v;
    let up_lb = Array.copy lb in
    up_lb.(branch_var) <- floor_v +. 1.;
    ((Array.copy lb, down_ub), (up_lb, Array.copy ub))
  in
  let unbounded = ref false in
  (match evaluate base_lb base_ub with
  | `Pruned | `Integer -> ()
  | `Unbounded -> unbounded := true
  | `Branch (key, var, values) ->
    let d, u = push_children base_lb base_ub var values in
    Heap.push heap key d;
    Heap.push heap key u);
  let exhausted = ref false in
  if not !unbounded then begin
    let continue_ = ref true in
    while !continue_ do
      if !nodes >= node_limit || Unix.gettimeofday () > deadline then begin
        exhausted := true;
        continue_ := false
      end
      else begin
        match Heap.pop heap with
        | None -> continue_ := false
        | Some (key, (lb, ub)) ->
          if key >= !incumbent_key -. 1e-9 then
            (* Best-first: every remaining node is at least as bad. *)
            continue_ := false
          else begin
            match evaluate lb ub with
            | `Pruned | `Integer -> ()
            | `Unbounded -> ()
            | `Branch (child_key, var, values) ->
              let d, u = push_children lb ub var values in
              Heap.push heap child_key d;
              Heap.push heap child_key u
          end
      end
    done
  end;
  (* An LP aborted by the deadline reports Infeasible; never let that
     masquerade as a proof. *)
  if Unix.gettimeofday () > deadline then exhausted := true;
  if !unbounded then Unbounded
  else begin
    match !incumbent with
    | Some (objective, values) ->
      let sol =
        { objective; values; proved_optimal = not !exhausted; nodes = !nodes }
      in
      if !exhausted then Feasible sol else Optimal sol
    | None -> if !exhausted then Node_limit else Infeasible
  end
