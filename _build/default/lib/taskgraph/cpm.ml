type t = {
  t_min : int array;
  t_max : int array;
  makespan : int;
  critical : bool array;
  order : int array;
}

let check_inputs g ~durations ~release =
  let n = Graph.size g in
  if Array.length durations <> n then
    invalid_arg "Cpm.compute: durations length mismatch";
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Cpm.compute: negative duration")
    durations;
  match release with
  | None -> ()
  | Some r ->
    if Array.length r <> n then invalid_arg "Cpm.compute: release length mismatch";
    Array.iter
      (fun x -> if x < 0 then invalid_arg "Cpm.compute: negative release")
      r

let run g ~durations ~release =
  check_inputs g ~durations ~release;
  let n = Graph.size g in
  let order = Graph.topological_order g in
  let t_min = Array.make n 0 in
  (match release with
  | None -> ()
  | Some r -> Array.blit r 0 t_min 0 n);
  (* Forward pass: earliest starts. *)
  Array.iter
    (fun u ->
      let finish = t_min.(u) + durations.(u) in
      List.iter
        (fun v -> if t_min.(v) < finish then t_min.(v) <- finish)
        (Graph.succs g u))
    order;
  let makespan =
    let m = ref 0 in
    for u = 0 to n - 1 do
      m := Stdlib.max !m (t_min.(u) + durations.(u))
    done;
    !m
  in
  (* Backward pass: latest finishes. *)
  let t_max = Array.make n makespan in
  for i = n - 1 downto 0 do
    let u = order.(i) in
    List.iter
      (fun v ->
        let latest_start = t_max.(v) - durations.(v) in
        if t_max.(u) > latest_start then t_max.(u) <- latest_start)
      (Graph.succs g u)
  done;
  let critical = Array.make n false in
  for u = 0 to n - 1 do
    critical.(u) <- t_max.(u) - t_min.(u) = durations.(u)
  done;
  { t_min; t_max; makespan; critical; order }

let compute g ~durations = run g ~durations ~release:None

let compute_with_release g ~durations ~release =
  run g ~durations ~release:(Some release)

let slack cpm ~durations u = cpm.t_max.(u) - cpm.t_min.(u) - durations.(u)

let critical_path cpm ~durations g =
  (* Start from a critical source and repeatedly follow a critical
     successor whose start abuts our finish. *)
  let n = Graph.size g in
  let start = ref (-1) in
  for u = n - 1 downto 0 do
    if cpm.critical.(u) && cpm.t_min.(u) = 0 && Graph.preds g u = [] then
      start := u
  done;
  if !start = -1 then
    for u = n - 1 downto 0 do
      if cpm.critical.(u) && cpm.t_min.(u) = 0 then start := u
    done;
  if !start = -1 then []
  else begin
    let rec follow u acc =
      let finish = cpm.t_min.(u) + durations.(u) in
      let next =
        List.find_opt
          (fun v -> cpm.critical.(v) && cpm.t_min.(v) = finish)
          (Graph.succs g u)
      in
      match next with
      | Some v -> follow v (u :: acc)
      | None -> List.rev (u :: acc)
    in
    follow !start []
  end
