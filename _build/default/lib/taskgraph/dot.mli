(** Graphviz export of task graphs, for debugging and documentation. *)

val to_string : ?name:string -> ?label:(int -> string) -> Graph.t -> string
(** [to_string g] renders [g] in DOT syntax. [label] gives node labels
    (default: the node index). *)

val to_channel : out_channel -> ?name:string -> ?label:(int -> string) ->
  Graph.t -> unit
