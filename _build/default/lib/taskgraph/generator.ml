module Rng = Resched_util.Rng

let layered rng ~tasks ~width ~edge_probability =
  if tasks <= 0 then invalid_arg "Generator.layered: tasks must be positive";
  if width <= 0 then invalid_arg "Generator.layered: width must be positive";
  if edge_probability < 0. || edge_probability > 1. then
    invalid_arg "Generator.layered: edge_probability out of range";
  let g = Graph.create tasks in
  (* Assign nodes 0..tasks-1 to consecutive layers of random width in
     [1, width]. *)
  let layer_of = Array.make tasks 0 in
  let layers = ref [] in
  let next = ref 0 in
  let layer_idx = ref 0 in
  while !next < tasks do
    let w = Stdlib.min (tasks - !next) (1 + Rng.int rng width) in
    let members = Array.init w (fun i -> !next + i) in
    Array.iter (fun u -> layer_of.(u) <- !layer_idx) members;
    layers := members :: !layers;
    next := !next + w;
    incr layer_idx
  done;
  let layers = Array.of_list (List.rev !layers) in
  let nlayers = Array.length layers in
  (* Mandatory edge: every node of layer l>0 has a parent in layer l-1. *)
  for l = 1 to nlayers - 1 do
    Array.iter
      (fun v ->
        let u = Rng.choose rng layers.(l - 1) in
        Graph.add_edge g u v)
      layers.(l)
  done;
  (* Optional forward edges, possibly skipping layers. *)
  for u = 0 to tasks - 1 do
    for v = u + 1 to tasks - 1 do
      if layer_of.(v) > layer_of.(u)
         && (not (Graph.has_edge g u v))
         && Rng.float rng 1.0 < edge_probability
      then Graph.add_edge g u v
    done
  done;
  g

let chain n =
  let g = Graph.create n in
  for u = 0 to n - 2 do
    Graph.add_edge g u (u + 1)
  done;
  g

let independent n = Graph.create n

let fork_join ~branches ~depth =
  if branches <= 0 || depth <= 0 then
    invalid_arg "Generator.fork_join: branches and depth must be positive";
  let n = (branches * depth) + 2 in
  let g = Graph.create n in
  let source = 0 and sink = n - 1 in
  for b = 0 to branches - 1 do
    let first = 1 + (b * depth) in
    Graph.add_edge g source first;
    for i = 0 to depth - 2 do
      Graph.add_edge g (first + i) (first + i + 1)
    done;
    Graph.add_edge g (first + depth - 1) sink
  done;
  g

let series_parallel rng ~tasks =
  if tasks <= 0 then invalid_arg "Generator.series_parallel: tasks must be positive";
  let g = Graph.create tasks in
  let next = ref 0 in
  let fresh () =
    let u = !next in
    incr next;
    u
  in
  (* Builds a sub-DAG of [budget] nodes; returns its entry and exit node
     lists. Series composition links all exits of the first part to all
     entries of the second; parallel composition is a juxtaposition. *)
  let rec build budget =
    if budget = 1 then begin
      let u = fresh () in
      ([ u ], [ u ])
    end
    else begin
      let left = 1 + Rng.int rng (budget - 1) in
      let right = budget - left in
      let e1, x1 = build left in
      let e2, x2 = build right in
      if Rng.bool rng then begin
        (* series *)
        List.iter (fun u -> List.iter (fun v -> Graph.add_edge g u v) e2) x1;
        (e1, x2)
      end
      else (e1 @ e2, x1 @ x2)
    end
  in
  let _ = build tasks in
  g

let random_orders_respecting rng g =
  let n = Graph.size g in
  let indeg = Array.make n 0 in
  List.iter (fun (_, v) -> indeg.(v) <- indeg.(v) + 1) (Graph.edges g);
  let ready = ref [] in
  for u = n - 1 downto 0 do
    if indeg.(u) = 0 then ready := u :: !ready
  done;
  let order = Array.make n 0 in
  for i = 0 to n - 1 do
    let a = Array.of_list !ready in
    let u = Rng.choose rng a in
    order.(i) <- u;
    ready := List.filter (fun v -> v <> u) !ready;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then ready := v :: !ready)
      (Graph.succs g u)
  done;
  order
