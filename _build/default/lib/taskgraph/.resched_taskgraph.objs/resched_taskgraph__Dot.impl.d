lib/taskgraph/dot.ml: Buffer Graph List Printf
