lib/taskgraph/cpm.ml: Array Graph List Stdlib
