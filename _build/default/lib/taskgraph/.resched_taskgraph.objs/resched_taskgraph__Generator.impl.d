lib/taskgraph/generator.ml: Array Graph List Resched_util Stdlib
