lib/taskgraph/cpm.mli: Graph
