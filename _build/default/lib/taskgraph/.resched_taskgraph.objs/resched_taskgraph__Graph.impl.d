lib/taskgraph/graph.ml: Array Format List Queue
