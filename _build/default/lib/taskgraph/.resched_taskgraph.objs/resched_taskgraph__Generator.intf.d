lib/taskgraph/generator.mli: Graph Resched_util
