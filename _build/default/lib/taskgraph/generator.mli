(** Random and structured DAG generators.

    The paper's evaluation uses pseudo-random task graphs (Sec. VII-A);
    [layered] is the workhorse used by the benchmark suite, while the
    structured families are used by the examples and by property tests to
    exercise edge-case topologies (pure chains, maximal parallelism,
    fork-join pipelines). All generators draw only from the given
    {!Resched_util.Rng.t}, hence are fully reproducible. *)

val layered : Resched_util.Rng.t -> tasks:int -> width:int ->
  edge_probability:float -> Graph.t
(** Nodes are spread over layers of at most [width] tasks; every task of a
    non-first layer gets at least one predecessor from the previous layer;
    extra forward edges (possibly skipping layers) are added with
    probability [edge_probability]. The result is connected enough to have
    a single-digit number of sources and is always acyclic. *)

val chain : int -> Graph.t
(** [chain n]: a pure pipeline [0 -> 1 -> ... -> n-1] (no HW parallelism
    available — worst case for PA, per the paper's Sec. VII-B remark). *)

val independent : int -> Graph.t
(** [independent n]: n tasks, no edges (maximal parallelism — the other
    extreme the paper calls out). *)

val fork_join : branches:int -> depth:int -> Graph.t
(** A source forking into [branches] chains of [depth] tasks that join
    into a sink. Size is [branches * depth + 2]. *)

val series_parallel : Resched_util.Rng.t -> tasks:int -> Graph.t
(** A random series-parallel DAG of exactly [tasks] nodes built by
    recursive series/parallel composition. *)

val random_orders_respecting : Resched_util.Rng.t -> Graph.t -> int array
(** A uniformly-chosen random linear extension (topological order) of the
    graph; used by tests. *)
