(** Directed acyclic task graphs.

    Nodes are dense integer identifiers [0 .. size-1]; an edge [(u, v)]
    means task [v] consumes data produced by task [u] and cannot start
    before [u] completes (Sec. III). The structure is mutable so that the
    scheduler can insert the ordering edges required when several tasks
    share a reconfigurable region or a processor (Sec. V-C/V-F); use
    [copy] to schedule without destroying the input graph. *)

type t

exception Cycle of int list
(** Raised by [topological_order] with (one of) the offending cycles. *)

val create : int -> t
(** [create n] is an edgeless graph over [n] nodes. [n >= 0]. *)

val size : t -> int
val copy : t -> t

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [(u, v)]; duplicate insertions are
    ignored. Raises [Invalid_argument] on out-of-range nodes or self
    loops. Cycles are only detected by [topological_order]. *)

val has_edge : t -> int -> int -> bool
val succs : t -> int -> int list
(** Successors in insertion order. *)

val preds : t -> int -> int list
val edge_count : t -> int
val edges : t -> (int * int) list
(** All edges, ordered by source node. *)

val sources : t -> int list
(** Nodes without predecessors. *)

val sinks : t -> int list
(** Nodes without successors. *)

val topological_order : t -> int array
(** A topological order of all nodes. Raises {!Cycle} if the graph has a
    directed cycle. *)

val is_acyclic : t -> bool

val reachable : t -> int -> bool array
(** [reachable g u] marks every node reachable from [u] (including [u]). *)

val pp : Format.formatter -> t -> unit
