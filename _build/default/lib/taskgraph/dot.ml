let to_string ?(name = "taskgraph") ?(label = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box];\n";
  for u = 0 to Graph.size g - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" u (label u))
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_channel oc ?name ?label g = output_string oc (to_string ?name ?label g)
