let needs_quotes s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if not (needs_quotes s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row_to_string row = String.concat "," (List.map escape row)

let to_string rows =
  String.concat "" (List.map (fun r -> row_to_string r ^ "\n") rows)

let write oc rows = output_string oc (to_string rows)
