(** Deterministic pseudo-random number generation.

    A small, fast, splittable SplitMix64 generator. All randomized parts of
    the library (instance generation, the PA-R scheduler, property tests)
    draw from this module so that every experiment is reproducible from a
    single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. Equal seeds yield
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val shuffle : t -> 'a list -> 'a list
(** [shuffle t l] is a uniformly shuffled copy of [l]. *)
