(** Plain-text table rendering for the benchmark harness and the CLI.

    Produces aligned, boxed ASCII tables similar to the ones in the paper
    (e.g. Table I). *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to [Right] for every column. Its length, when given,
    must equal the number of headers. *)

val add_row : t -> string list -> unit
(** Append a row; the row length must match the header length. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** Render to a string, including a trailing newline. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell with fixed [decimals] (default 3). *)

val cell_pct : float -> string
(** Format a percentage cell as e.g. ["+14.8%"]. *)
