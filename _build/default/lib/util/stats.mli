(** Descriptive statistics over float samples, used by the benchmark
    harness to aggregate per-group results exactly as the paper reports
    them (mean and standard deviation across the task graphs of a group). *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0. on arrays of size < 2. *)

val min : float array -> float
(** Minimum; raises [Invalid_argument] on the empty array. *)

val max : float array -> float
(** Maximum; raises [Invalid_argument] on the empty array. *)

val median : float array -> float
(** Median (average of middle pair for even sizes); raises on empty. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]], linear interpolation;
    raises on empty. *)

val improvement_pct : baseline:float -> value:float -> float
(** [improvement_pct ~baseline ~value] is the percent reduction of [value]
    with respect to [baseline]: [(baseline - value) / baseline * 100.].
    This is the metric of Figures 3-5. 0. when [baseline = 0.]. *)
