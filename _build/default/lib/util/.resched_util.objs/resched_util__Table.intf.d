lib/util/table.mli:
