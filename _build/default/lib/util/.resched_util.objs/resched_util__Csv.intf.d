lib/util/csv.mli:
