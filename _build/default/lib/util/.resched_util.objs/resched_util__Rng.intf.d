lib/util/rng.mli:
