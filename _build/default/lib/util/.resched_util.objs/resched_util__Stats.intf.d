lib/util/stats.mli:
