type align = Left | Right | Center

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ?aligns headers =
  let headers = Array.of_list headers in
  let aligns =
    match aligns with
    | None -> Array.make (Array.length headers) Right
    | Some l ->
      if List.length l <> Array.length headers then
        invalid_arg "Table.create: aligns length mismatch";
      Array.of_list l
  in
  { headers; aligns; rows = [] }

let add_row t row =
  let row = Array.of_list row in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: row length mismatch";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let missing = width - n in
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s
    | Center ->
      let left = missing / 2 in
      String.make left ' ' ^ s ^ String.make (missing - left) ' '
  end

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let widen row =
    Array.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  List.iter widen rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line align_of row =
    Buffer.add_char buf '|';
    for i = 0 to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad (align_of i) widths.(i) row.(i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  rule ();
  line (fun _ -> Center) t.headers;
  rule ();
  List.iter (fun row -> line (fun i -> t.aligns.(i)) row) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v

let cell_pct v =
  if v >= 0. then Printf.sprintf "+%.1f%%" v else Printf.sprintf "%.1f%%" v
