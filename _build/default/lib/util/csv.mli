(** Minimal CSV writing, used to dump benchmark series (the figures'
    underlying data) next to the printed tables. *)

val escape : string -> string
(** RFC-4180 escaping of a single field. *)

val row_to_string : string list -> string
(** Join escaped fields with commas (no newline). *)

val write : out_channel -> string list list -> unit
(** Write all rows, one per line. *)

val to_string : string list list -> string
