let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    sqrt (!acc /. float_of_int n)
  end

let min a =
  if Array.length a = 0 then invalid_arg "Stats.min: empty";
  Array.fold_left Stdlib.min a.(0) a

let max a =
  if Array.length a = 0 then invalid_arg "Stats.max: empty";
  Array.fold_left Stdlib.max a.(0) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then b.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (b.(lo) *. (1. -. frac)) +. (b.(hi) *. frac)
  end

let median a = percentile a 50.

let improvement_pct ~baseline ~value =
  if baseline = 0. then 0. else (baseline -. value) /. baseline *. 100.
