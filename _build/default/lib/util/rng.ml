type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so that [Int64.to_int] stays non-negative on 64-bit
     OCaml; modulo bias is negligible for bounds far below 2^62. *)
  let v = Int64.to_int (Int64.logand (bits64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a
