(** Exact reference scheduler for small instances.

    Exhaustive branch-and-bound over the *entire* instance (equivalent to
    running {!Chunk_dfs} with one chunk containing every task): every
    interleaving, implementation choice and placement is explored, so the
    result is makespan-optimal within the repository's scheduling model
    (earliest-start timing, single reconfiguration controller, regions
    sized by their first implementation, free initial configuration).

    Exponential — intended for instances of up to ~8 tasks, where it
    serves as the ground truth for testing PA and IS-k (no heuristic may
    beat it) and for measuring optimality gaps. Comparable in spirit to
    the exact ILP of Redaelli et al. [8] that the paper cites as
    intractable beyond small sizes. *)

type result = {
  schedule : Resched_core.Schedule.t;
  nodes : int;
  proved_optimal : bool;  (** false when the node budget was exhausted *)
}

val schedule : ?node_limit:int -> ?module_reuse:bool ->
  Resched_platform.Instance.t -> result
(** [node_limit] defaults to 5_000_000. *)

val lower_bound : Resched_platform.Instance.t -> int
(** The CPM bound with every task at its fastest implementation and no
    resource constraints — optimal makespan can never be below this. *)
