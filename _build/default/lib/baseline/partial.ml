module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Schedule = Resched_core.Schedule

type region = {
  rid : int;
  res : Resource.t;
  reconf : int;
  free_at : int;
  loaded_module : int option;
  hosted_rev : (int * int * int) list;
  recs_rev : (int * int * int * int) list;
}

type t = {
  inst : Instance.t;
  max_res : Resource.t;
  module_reuse : bool;
  regions : region list;
  nregions : int;
  used : Resource.t;
  proc_free : int array;
  proc_tasks_rev : (int * int * int) list array;
  ctrl_free : int;
  finish : int array;
  impl_sel : int array;
  place : int array;
  makespan : int;
}

type option_ =
  | Opt_sw of { impl_idx : int; proc : int }
  | Opt_existing of { impl_idx : int; rid : int }
  | Opt_new of { impl_idx : int }

let create ?(module_reuse = false) ?(resource_scale = 1.0) inst =
  let n = Instance.size inst in
  let arch = inst.Instance.arch in
  {
    inst;
    max_res = Resource.scale (Arch.max_res arch) resource_scale;
    module_reuse;
    regions = [];
    nregions = 0;
    used = Resource.zero;
    proc_free = Array.make arch.Arch.processors 0;
    proc_tasks_rev = Array.make arch.Arch.processors [];
    ctrl_free = 0;
    finish = Array.make n (-1);
    impl_sel = Array.make n (-1);
    place = Array.make n min_int;
    makespan = 0;
  }

let copy t =
  {
    t with
    proc_free = Array.copy t.proc_free;
    proc_tasks_rev = Array.copy t.proc_tasks_rev;
    finish = Array.copy t.finish;
    impl_sel = Array.copy t.impl_sel;
    place = Array.copy t.place;
  }

let ready_time t task =
  List.fold_left
    (fun acc p ->
      if t.finish.(p) < 0 then
        failwith
          (Printf.sprintf "Partial.ready_time: predecessor %d of %d uncommitted"
             p task)
      else Stdlib.max acc t.finish.(p))
    0
    (Graph.preds t.inst.Instance.graph task)

let options t task =
  let procs = Array.length t.proc_free in
  let sw_idx = Instance.fastest_sw t.inst task in
  let sw = List.init procs (fun proc -> Opt_sw { impl_idx = sw_idx; proc }) in
  let hw =
    List.concat_map
      (fun (impl_idx, (i : Impl.t)) ->
        let on_regions =
          List.filter_map
            (fun r ->
              if Resource.fits i.Impl.res ~within:r.res then
                Some (Opt_existing { impl_idx; rid = r.rid })
              else None)
            t.regions
        in
        let fresh =
          if Resource.fits (Resource.add t.used i.Impl.res) ~within:t.max_res
          then [ Opt_new { impl_idx } ]
          else []
        in
        fresh @ on_regions)
      (Instance.hw_impls t.inst task)
  in
  sw @ hw

let bump_makespan t end_ = { t with makespan = Stdlib.max t.makespan end_ }

let apply t ~task option =
  let t = copy t in
  let ready = ready_time t task in
  match option with
  | Opt_sw { impl_idx; proc } ->
    let dur = (Instance.impl t.inst ~task ~idx:impl_idx).Impl.time in
    let start = Stdlib.max ready t.proc_free.(proc) in
    let end_ = start + dur in
    t.proc_free.(proc) <- end_;
    t.proc_tasks_rev.(proc) <- (task, start, end_) :: t.proc_tasks_rev.(proc);
    t.finish.(task) <- end_;
    t.impl_sel.(task) <- impl_idx;
    t.place.(task) <- -(proc + 1);
    bump_makespan t end_
  | Opt_new { impl_idx } ->
    let i = Instance.impl t.inst ~task ~idx:impl_idx in
    let dur = i.Impl.time in
    let start = ready in
    let end_ = start + dur in
    let region =
      {
        rid = t.nregions;
        res = i.Impl.res;
        reconf = Arch.reconf_ticks t.inst.Instance.arch i.Impl.res;
        free_at = end_;
        loaded_module = i.Impl.module_id;
        hosted_rev = [ (task, start, end_) ];
        recs_rev = [];
      }
    in
    t.finish.(task) <- end_;
    t.impl_sel.(task) <- impl_idx;
    t.place.(task) <- region.rid;
    bump_makespan
      {
        t with
        regions = region :: t.regions;
        nregions = t.nregions + 1;
        used = Resource.add t.used i.Impl.res;
      }
      end_
  | Opt_existing { impl_idx; rid } ->
    let region = List.find (fun r -> r.rid = rid) t.regions in
    let i = Instance.impl t.inst ~task ~idx:impl_idx in
    let dur = i.Impl.time in
    let prev_task =
      match region.hosted_rev with
      | (p, _, _) :: _ -> Some p
      | [] -> None
    in
    let reuse =
      t.module_reuse
      && (match (region.loaded_module, i.Impl.module_id) with
         | Some a, Some b -> a = b
         | _ -> false)
    in
    let start, end_, ctrl_free, recs_rev =
      if reuse || prev_task = None then begin
        let start = Stdlib.max ready region.free_at in
        (start, start + dur, t.ctrl_free, region.recs_rev)
      end
      else begin
        let rec_start = Stdlib.max t.ctrl_free region.free_at in
        let rec_end = rec_start + region.reconf in
        let start = Stdlib.max ready rec_end in
        let t_in = match prev_task with Some p -> p | None -> assert false in
        ( start,
          start + dur,
          rec_end,
          (t_in, task, rec_start, rec_end) :: region.recs_rev )
      end
    in
    let region' =
      {
        region with
        free_at = end_;
        loaded_module = i.Impl.module_id;
        hosted_rev = (task, start, end_) :: region.hosted_rev;
        recs_rev;
      }
    in
    let regions =
      List.map (fun r -> if r.rid = rid then region' else r) t.regions
    in
    t.finish.(task) <- end_;
    t.impl_sel.(task) <- impl_idx;
    t.place.(task) <- rid;
    bump_makespan { t with regions; ctrl_free } end_

let to_schedule t =
  let n = Instance.size t.inst in
  for u = 0 to n - 1 do
    if t.finish.(u) < 0 then
      invalid_arg "Partial.to_schedule: some task is not committed"
  done;
  let regions_in_order =
    List.sort (fun a b -> compare a.rid b.rid) t.regions
  in
  let regions =
    Array.of_list
      (List.map
         (fun r ->
           {
             Schedule.res = r.res;
             reconf_ticks = r.reconf;
             tasks =
               List.rev_map (fun (task, _, _) -> task) r.hosted_rev;
           })
         regions_in_order)
  in
  let slots =
    Array.init n (fun u ->
        let impl_idx = t.impl_sel.(u) in
        let dur = (Instance.impl t.inst ~task:u ~idx:impl_idx).Impl.time in
        let placement =
          if t.place.(u) >= 0 then Schedule.On_region t.place.(u)
          else Schedule.On_processor (-t.place.(u) - 1)
        in
        {
          Schedule.impl_idx;
          placement;
          start_ = t.finish.(u) - dur;
          end_ = t.finish.(u);
        })
  in
  let reconfigurations =
    List.concat_map
      (fun r ->
        List.rev_map
          (fun (t_in, t_out, s, e) ->
            {
              Schedule.region = r.rid;
              t_in;
              t_out;
              r_start = s;
              r_end = e;
            })
          r.recs_rev)
      regions_in_order
    |> List.sort (fun a b -> compare a.Schedule.r_start b.Schedule.r_start)
  in
  {
    Schedule.instance = t.inst;
    regions;
    slots;
    reconfigurations;
    makespan = t.makespan;
    floorplan = None;
    module_reuse = t.module_reuse;
    resource_scale = 1.0;
  }
