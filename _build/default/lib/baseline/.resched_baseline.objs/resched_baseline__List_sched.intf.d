lib/baseline/list_sched.mli: Resched_core Resched_platform
