lib/baseline/list_sched.ml: Array List Partial Resched_core Resched_floorplan Resched_platform Resched_taskgraph Stdlib
