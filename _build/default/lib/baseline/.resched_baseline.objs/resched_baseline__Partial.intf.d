lib/baseline/partial.mli: Resched_core Resched_fabric Resched_platform
