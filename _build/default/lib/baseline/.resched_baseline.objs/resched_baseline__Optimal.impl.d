lib/baseline/optimal.ml: Array Chunk_dfs List Partial Resched_core Resched_platform Resched_taskgraph
