lib/baseline/isk.mli: Resched_core Resched_floorplan Resched_platform
