lib/baseline/chunk_dfs.ml: Array List Partial Resched_platform Resched_taskgraph
