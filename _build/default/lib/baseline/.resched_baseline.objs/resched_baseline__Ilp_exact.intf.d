lib/baseline/ilp_exact.mli: Resched_core Resched_platform
