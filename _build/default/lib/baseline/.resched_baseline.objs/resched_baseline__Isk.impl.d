lib/baseline/isk.ml: Array Chunk_dfs List Partial Resched_core Resched_floorplan Resched_platform Resched_taskgraph Unix
