lib/baseline/partial.ml: Array List Printf Resched_core Resched_fabric Resched_platform Resched_taskgraph Stdlib
