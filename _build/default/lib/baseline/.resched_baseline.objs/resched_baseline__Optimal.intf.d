lib/baseline/optimal.mli: Resched_core Resched_platform
