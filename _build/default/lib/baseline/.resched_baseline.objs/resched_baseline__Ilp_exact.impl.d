lib/baseline/ilp_exact.ml: Array List Printf Resched_core Resched_fabric Resched_milp Resched_platform Resched_taskgraph Stdlib
