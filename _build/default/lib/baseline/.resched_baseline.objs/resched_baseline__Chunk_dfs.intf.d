lib/baseline/chunk_dfs.mli: Partial
