(** Committed partial schedules for the iterative IS-k baseline
    (Deiana et al. [6]).

    IS-k fixes tasks chunk by chunk; this module is the bookkeeping of
    everything already committed: per-region occupation and currently
    loaded module, per-processor occupation, the reconfiguration
    controller timeline, and per-task decisions. Engines explore
    extensions by {!copy}ing the state, {!apply}ing options and comparing
    {!makespan}s, then commit the best. *)

module Resource = Resched_fabric.Resource

type region = {
  rid : int;
  res : Resource.t;
  reconf : int;  (** reconf_s in ticks *)
  free_at : int;
  loaded_module : int option;
  hosted_rev : (int * int * int) list;  (** (task, start, end), newest first *)
  recs_rev : (int * int * int * int) list;
      (** (t_in, t_out, start, end), newest first *)
}

type t = {
  inst : Resched_platform.Instance.t;
  max_res : Resource.t;
  module_reuse : bool;
  regions : region list;  (** newest first *)
  nregions : int;
  used : Resource.t;
  proc_free : int array;
  proc_tasks_rev : (int * int * int) list array;
  ctrl_free : int;
  finish : int array;  (** committed end per task; -1 when unscheduled *)
  impl_sel : int array;
  place : int array;  (** region id, or -(processor+1), or min_int *)
  makespan : int;
}

type option_ =
  | Opt_sw of { impl_idx : int; proc : int }
  | Opt_existing of { impl_idx : int; rid : int }
  | Opt_new of { impl_idx : int }

val create : ?module_reuse:bool -> ?resource_scale:float ->
  Resched_platform.Instance.t -> t

val copy : t -> t
(** Cheap: the state is immutable except the two arrays, which are
    duplicated. *)

val ready_time : t -> int -> int
(** Max committed finish over the task's predecessors; raises [Failure]
    if a predecessor is not committed yet. *)

val options : t -> int -> option_ list
(** All legal options for scheduling the task next: its fastest software
    implementation on each processor, every hardware implementation on
    every existing region it fits, and every hardware implementation on a
    fresh region when FPGA capacity allows. Never empty (software always
    exists). *)

val apply : t -> task:int -> option_ -> t
(** Commit the option with earliest-start semantics: the task (and its
    reconfiguration, when joining a configured region) is placed at the
    earliest instants compatible with dependencies, the region/processor
    occupation and the reconfiguration controller. Reconfiguration
    prefetching falls out naturally (the reconfiguration does not wait
    for the task's inputs). *)

val to_schedule : t -> Resched_core.Schedule.t
(** Freeze a fully-committed state ([finish] everywhere >= 0) into a
    checkable schedule. Raises [Invalid_argument] otherwise. *)
