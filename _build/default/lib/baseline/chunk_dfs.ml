module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance

type result = {
  state : Partial.t;
  nodes : int;
  optimal : bool;
}

exception Budget

let sum_finish state chunk =
  List.fold_left (fun acc u -> acc + state.Partial.finish.(u)) 0 chunk

let solve ?(node_limit = 200_000) state ~chunk =
  let graph = state.Partial.inst.Instance.graph in
  let best = ref None in
  let best_key = ref (max_int, max_int) in
  let nodes = ref 0 in
  let rec go state remaining =
    if remaining = [] then begin
      let key = (state.Partial.makespan, sum_finish state chunk) in
      if key < !best_key then begin
        best_key := key;
        best := Some state
      end
    end
    else begin
      (* A chunk task is ready once all its predecessors are committed
         (out-of-chunk predecessors always are, by the chunk invariant). *)
      let ready =
        List.filter
          (fun u ->
            List.for_all
              (fun p -> state.Partial.finish.(p) >= 0)
              (Graph.preds graph u))
          remaining
      in
      List.iter
        (fun task ->
          List.iter
            (fun option ->
              incr nodes;
              if !nodes > node_limit then raise Budget;
              let state' = Partial.apply state ~task option in
              (* The makespan only grows along a branch: prune against
                 the incumbent. *)
              if state'.Partial.makespan < fst !best_key then
                go state' (List.filter (fun u -> u <> task) remaining))
            (Partial.options state task))
        ready
    end
  in
  let optimal =
    match go state chunk with () -> true | exception Budget -> false
  in
  match !best with
  | Some state -> { state; nodes = !nodes; optimal }
  | None ->
    (* Budget hit before any leaf: commit greedily, first-ready task,
       best single option each time. *)
    let rec greedy state remaining =
      match remaining with
      | [] -> state
      | _ ->
        let task =
          List.find
            (fun u ->
              List.for_all
                (fun p -> state.Partial.finish.(p) >= 0)
                (Graph.preds graph u))
            remaining
        in
        let best_state =
          List.fold_left
            (fun acc option ->
              let s = Partial.apply state ~task option in
              match acc with
              | None -> Some s
              | Some b ->
                if s.Partial.makespan < b.Partial.makespan then Some s else acc)
            None (Partial.options state task)
        in
        let state =
          match best_state with Some s -> s | None -> assert false
        in
        greedy state (List.filter (fun u -> u <> task) remaining)
    in
    { state = greedy state chunk; nodes = !nodes; optimal = false }
