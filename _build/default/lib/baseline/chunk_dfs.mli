(** Exact combinatorial solver for one IS-k chunk.

    Replaces the per-iteration Gurobi MILP of [6]: branch-and-bound over
    every interleaving of the chunk's tasks (respecting in-chunk
    dependencies) and every option of every task, with earliest-start
    timing. Within the node budget the returned extension minimizes the
    partial-schedule makespan over that decision space — i.e. it is
    chunk-optimal exactly like the MILP; past the budget it is the best
    extension found (anytime behaviour). *)

type result = {
  state : Partial.t;  (** the committed state after the chunk *)
  nodes : int;
  optimal : bool;  (** false when the node budget was exhausted *)
}

val solve : ?node_limit:int -> Partial.t -> chunk:int list -> result
(** [chunk] must be closed under in-chunk dependencies (a predecessor of
    a chunk task is either committed or in the chunk). [node_limit]
    defaults to 200_000. *)
