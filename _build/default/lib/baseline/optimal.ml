module Cpm = Resched_taskgraph.Cpm
module Instance = Resched_platform.Instance
module Schedule = Resched_core.Schedule

type result = {
  schedule : Schedule.t;
  nodes : int;
  proved_optimal : bool;
}

let lower_bound inst =
  let n = Instance.size inst in
  let durations = Array.init n (Instance.min_time inst) in
  (Cpm.compute inst.Instance.graph ~durations).Cpm.makespan

let schedule ?(node_limit = 5_000_000) ?(module_reuse = false) inst =
  let n = Instance.size inst in
  let chunk = List.init n (fun i -> i) in
  let state = Partial.create ~module_reuse inst in
  let r = Chunk_dfs.solve ~node_limit state ~chunk in
  {
    schedule = Partial.to_schedule r.Chunk_dfs.state;
    nodes = r.Chunk_dfs.nodes;
    proved_optimal = r.Chunk_dfs.optimal;
  }
