(** Minimal SVG document builder.

    Just enough structured SVG for the floorplan and Gantt renderers: a
    document accumulates shapes and serializes to standalone SVG 1.1.
    Coordinates are in abstract user units. *)

type t
(** A document under construction. *)

val create : width:float -> height:float -> t

val rect : t -> x:float -> y:float -> w:float -> h:float -> ?rx:float ->
  ?fill:string -> ?stroke:string -> ?stroke_width:float -> ?opacity:float ->
  ?title:string -> unit -> unit
(** Add a rectangle; [title] becomes a <title> child (hover tooltip). *)

val line : t -> x1:float -> y1:float -> x2:float -> y2:float ->
  ?stroke:string -> ?stroke_width:float -> ?dash:string -> unit -> unit

val text : t -> x:float -> y:float -> ?size:float -> ?fill:string ->
  ?anchor:string -> string -> unit
(** [anchor] is the SVG [text-anchor] ("start", "middle", "end"). *)

val to_string : t -> string
(** Serialize the whole document. *)

val escape : string -> string
(** XML-escape text content: ampersand, angle brackets, quotes. *)
