module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device
module Placement = Resched_floorplan.Placement
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Schedule = Resched_core.Schedule

let kind_fill = function
  | Resource.Clb -> "#dce8f5"
  | Resource.Bram -> "#f5d9dc"
  | Resource.Dsp -> "#d9f0d9"

let region_palette =
  [| "#4c78a8"; "#f58518"; "#54a24b"; "#b279a2"; "#e45756"; "#72b7b2";
     "#eeca3b"; "#9d755d"; "#bab0ac"; "#4f5d75" |]

let region_fill i = region_palette.(i mod Array.length region_palette)

let floorplan device ?needs placements =
  let ncols = Array.length device.Device.columns in
  let rows = device.Device.rows in
  let col_w = 9. and row_h = 70. in
  let margin = 24. in
  let width = margin +. (float_of_int ncols *. col_w) +. margin in
  let height = margin +. (float_of_int rows *. row_h) +. margin in
  let doc = Svg.create ~width ~height in
  (* Fabric columns. *)
  Array.iteri
    (fun c kind ->
      Svg.rect doc
        ~x:(margin +. (float_of_int c *. col_w))
        ~y:margin ~w:col_w
        ~h:(float_of_int rows *. row_h)
        ~fill:(kind_fill kind) ~stroke:"#ffffff" ~stroke_width:0.4
        ~title:(Resource.kind_name kind) ())
    device.Device.columns;
  (* Clock-region boundaries. *)
  for r = 0 to rows do
    Svg.line doc ~x1:margin
      ~y1:(margin +. (float_of_int r *. row_h))
      ~x2:(margin +. (float_of_int ncols *. col_w))
      ~y2:(margin +. (float_of_int r *. row_h))
      ~stroke:"#666666" ~stroke_width:0.8 ~dash:"4,3" ()
  done;
  (* Region placements. *)
  Array.iteri
    (fun i (p : Placement.rect) ->
      let x = margin +. (float_of_int p.Placement.c0 *. col_w) in
      let y = margin +. (float_of_int p.Placement.r0 *. row_h) in
      let w = float_of_int (Placement.width p) *. col_w in
      let h = float_of_int (Placement.height p) *. row_h in
      let title =
        let provided = Placement.resources device p in
        match needs with
        | Some ns when i < Array.length ns ->
          Printf.sprintf "R%d: needs %s, placement provides %s" i
            (Resource.to_string ns.(i))
            (Resource.to_string provided)
        | _ -> Printf.sprintf "R%d: %s" i (Resource.to_string provided)
      in
      Svg.rect doc ~x ~y ~w ~h ~rx:2. ~fill:(region_fill i)
        ~stroke:"#202020" ~stroke_width:1.2 ~opacity:0.55 ~title ();
      Svg.text doc
        ~x:(x +. (w /. 2.))
        ~y:(y +. (h /. 2.) +. 4.)
        ~size:12. ~anchor:"middle" ~fill:"#101010"
        (Printf.sprintf "R%d" i))
    placements;
  Svg.text doc ~x:margin ~y:(height -. 6.) ~size:10. ~fill:"#555555"
    (Printf.sprintf "%s: %d columns x %d clock regions" device.Device.name
       ncols rows);
  Svg.to_string doc

let gantt ?(width = 900.) (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let makespan = float_of_int (Stdlib.max 1 sched.Schedule.makespan) in
  let lane_h = 26. and lane_gap = 6. in
  let label_w = 76. and margin = 14. in
  let procs = inst.Instance.arch.Arch.processors in
  let nregions = Array.length sched.Schedule.regions in
  let has_icap = sched.Schedule.reconfigurations <> [] in
  let lanes = procs + nregions + if has_icap then 1 else 0 in
  let height =
    margin +. (float_of_int lanes *. (lane_h +. lane_gap)) +. 30.
  in
  let doc = Svg.create ~width:(label_w +. width +. (2. *. margin)) ~height in
  let x_of t = label_w +. margin +. (float_of_int t /. makespan *. width) in
  let lane_y i = margin +. (float_of_int i *. (lane_h +. lane_gap)) in
  let lane_label i name =
    Svg.text doc ~x:margin ~y:(lane_y i +. (lane_h /. 2.) +. 4.) ~size:11.
      name
  in
  let box lane_idx ~start_ ~end_ ~fill ~title label =
    let x = x_of start_ in
    let w = Float.max 1.5 (x_of end_ -. x) in
    let y = lane_y lane_idx in
    Svg.rect doc ~x ~y ~w ~h:lane_h ~rx:2. ~fill ~stroke:"#303030"
      ~stroke_width:0.8 ~title ();
    if w > 30. then
      Svg.text doc
        ~x:(x +. (w /. 2.))
        ~y:(y +. (lane_h /. 2.) +. 4.)
        ~size:10. ~anchor:"middle" label
  in
  (* Lane backgrounds. *)
  for i = 0 to lanes - 1 do
    Svg.rect doc ~x:(label_w +. margin) ~y:(lane_y i) ~w:width ~h:lane_h
      ~fill:"#f6f6f6" ~stroke:"#e0e0e0" ~stroke_width:0.5 ()
  done;
  (* Processor lanes. *)
  for p = 0 to procs - 1 do
    lane_label p (Printf.sprintf "cpu%d" p);
    Array.iteri
      (fun u (s : Schedule.task_slot) ->
        match s.Schedule.placement with
        | Schedule.On_processor q when q = p ->
          box p ~start_:s.Schedule.start_ ~end_:s.Schedule.end_
            ~fill:"#c5d6ea"
            ~title:
              (Printf.sprintf "%s: %d..%d (SW)" (Instance.task_name inst u)
                 s.Schedule.start_ s.Schedule.end_)
            (Instance.task_name inst u)
        | _ -> ())
      sched.Schedule.slots
  done;
  (* Region lanes. *)
  Array.iteri
    (fun ridx (r : Schedule.region) ->
      let lane_idx = procs + ridx in
      lane_label lane_idx (Printf.sprintf "region%d" ridx);
      List.iter
        (fun u ->
          let s = sched.Schedule.slots.(u) in
          box lane_idx ~start_:s.Schedule.start_ ~end_:s.Schedule.end_
            ~fill:(region_fill ridx)
            ~title:
              (Printf.sprintf "%s: %d..%d (HW on R%d)"
                 (Instance.task_name inst u) s.Schedule.start_ s.Schedule.end_
                 ridx)
            (Instance.task_name inst u))
        r.Schedule.tasks;
      List.iter
        (fun (rc : Schedule.reconfiguration) ->
          if rc.Schedule.region = ridx then
            box lane_idx ~start_:rc.Schedule.r_start ~end_:rc.Schedule.r_end
              ~fill:"#999999"
              ~title:
                (Printf.sprintf "reconfiguration for %s: %d..%d"
                   (Instance.task_name inst rc.Schedule.t_out)
                   rc.Schedule.r_start rc.Schedule.r_end)
              "rcfg")
        sched.Schedule.reconfigurations)
    sched.Schedule.regions;
  (* Controller lane. *)
  if has_icap then begin
    let lane_idx = procs + nregions in
    lane_label lane_idx "icap";
    List.iter
      (fun (rc : Schedule.reconfiguration) ->
        box lane_idx ~start_:rc.Schedule.r_start ~end_:rc.Schedule.r_end
          ~fill:"#b5b5b5"
          ~title:
            (Printf.sprintf "R%d bitstream: %d..%d" rc.Schedule.region
               rc.Schedule.r_start rc.Schedule.r_end)
          (Printf.sprintf "R%d" rc.Schedule.region))
      sched.Schedule.reconfigurations
  end;
  Svg.text doc ~x:(label_w +. margin)
    ~y:(height -. 8.)
    ~size:10. ~fill:"#555555"
    (Printf.sprintf "makespan: %d ticks" sched.Schedule.makespan);
  Svg.to_string doc

let save path svg =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc svg)
