(** SVG renderers for floorplans and schedules.

    Both are deterministic pure functions of their inputs, so renders can
    be regression-tested and diffed. *)

val floorplan : Resched_fabric.Device.t ->
  ?needs:Resched_fabric.Resource.t array ->
  Resched_floorplan.Placement.rect array -> string
(** Draw the device fabric (one column per resource column, colored by
    kind, clock-region boundaries dashed) with the region placements
    overlaid and labelled [R0, R1, ...]. When [needs] is given, each
    region's tooltip shows requirement vs provided resources. *)

val gantt : ?width:float -> Resched_core.Schedule.t -> string
(** Draw the schedule: one lane per processor, per reconfigurable region
    and one for the reconfiguration controller; tasks as labelled boxes,
    reconfigurations hatched. [width] (default 900) is the drawing width
    in pixels. *)

val save : string -> string -> unit
(** [save path svg] writes the document to a file. *)
