type t = {
  width : float;
  height : float;
  mutable shapes : string list;  (* reversed *)
}

let create ~width ~height = { width; height; shapes = [] }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let push t s = t.shapes <- s :: t.shapes

let f = Printf.sprintf "%.2f"

let rect t ~x ~y ~w ~h ?rx ?(fill = "#cccccc") ?(stroke = "#333333")
    ?(stroke_width = 1.0) ?opacity ?title () =
  let attrs =
    Printf.sprintf
      "x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"%s\" \
       stroke=\"%s\" stroke-width=\"%s\"%s%s"
      (f x) (f y) (f w) (f h) fill stroke (f stroke_width)
      (match rx with None -> "" | Some r -> Printf.sprintf " rx=\"%s\"" (f r))
      (match opacity with
      | None -> ""
      | Some o -> Printf.sprintf " fill-opacity=\"%s\"" (f o))
  in
  match title with
  | None -> push t (Printf.sprintf "<rect %s/>" attrs)
  | Some title ->
    push t
      (Printf.sprintf "<rect %s><title>%s</title></rect>" attrs (escape title))

let line t ~x1 ~y1 ~x2 ~y2 ?(stroke = "#333333") ?(stroke_width = 1.0) ?dash
    () =
  push t
    (Printf.sprintf
       "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"%s\" \
        stroke-width=\"%s\"%s/>"
       (f x1) (f y1) (f x2) (f y2) stroke (f stroke_width)
       (match dash with
       | None -> ""
       | Some d -> Printf.sprintf " stroke-dasharray=\"%s\"" d))

let text t ~x ~y ?(size = 11.) ?(fill = "#111111") ?(anchor = "start") s =
  push t
    (Printf.sprintf
       "<text x=\"%s\" y=\"%s\" font-size=\"%s\" fill=\"%s\" \
        text-anchor=\"%s\" font-family=\"sans-serif\">%s</text>"
       (f x) (f y) (f size) fill anchor (escape s))

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
        <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%s\" \
        height=\"%s\" viewBox=\"0 0 %s %s\">\n"
       (f t.width) (f t.height) (f t.width) (f t.height));
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    (List.rev t.shapes);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
