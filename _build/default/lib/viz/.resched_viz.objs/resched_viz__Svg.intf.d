lib/viz/svg.mli:
