lib/viz/render.mli: Resched_core Resched_fabric Resched_floorplan
