lib/viz/render.ml: Array Float Fun List Printf Resched_core Resched_fabric Resched_floorplan Resched_platform Stdlib Svg
