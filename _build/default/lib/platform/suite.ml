module Rng = Resched_util.Rng
module Resource = Resched_fabric.Resource
module Generator = Resched_taskgraph.Generator

type params = {
  fast_time_min : int;
  fast_time_max : int;
  medium_time_factor : float;
  small_time_factor : float;
  medium_area_factor : float;
  small_area_factor : float;
  sw_factor_min : float;
  sw_factor_max : float;
  clb_min : int;
  clb_max : int;
  p_dsp_heavy : float;
  p_bram_heavy : float;
  p_shared_impl : float;
  width_of_tasks : int -> int;
  edge_probability : float;
}

(* Calibrated so that FPGA contention is the dominant effect from ~20
   tasks on (see DESIGN.md): the fastest hardware implementation of a
   task occupies a sizeable fraction of the XC7Z020, so schedulers that
   greedily pick it (IS-1) run out of parallel regions, while the
   resource-efficient implementations (~4-5x smaller, ~2.6x slower)
   allow many concurrent regions — the Fig. 1 trade-off at suite scale. *)
let default_params =
  {
    fast_time_min = 150;
    fast_time_max = 1500;
    medium_time_factor = 1.6;
    small_time_factor = 2.6;
    medium_area_factor = 0.5;
    small_area_factor = 0.2;
    sw_factor_min = 3.0;
    sw_factor_max = 6.0;
    clb_min = 2000;
    clb_max = 5000;
    p_dsp_heavy = 0.35;
    p_bram_heavy = 0.35;
    p_shared_impl = 0.30;
    width_of_tasks = (fun tasks -> 2 + (tasks / 12));
    edge_probability = 0.07;
  }

(* A template is the full implementation set of one "module family"; tasks
   that share a template share module ids, enabling module reuse. *)
let fresh_template p rng next_module_id =
  let log_uniform lo hi =
    let lo = float_of_int lo and hi = float_of_int hi in
    int_of_float (exp (log lo +. Rng.float rng (log hi -. log lo)))
  in
  let fast_time = log_uniform p.fast_time_min p.fast_time_max in
  let clb = Rng.int_in rng p.clb_min p.clb_max in
  let dsp = if Rng.float rng 1.0 < p.p_dsp_heavy then Rng.int_in rng 8 48 else 0 in
  let bram = if Rng.float rng 1.0 < p.p_bram_heavy then Rng.int_in rng 4 24 else 0 in
  let large = Resource.make ~clb ~bram ~dsp in
  let jitter lo hi = lo +. Rng.float rng (hi -. lo) in
  let shrink res f =
    let s x = Stdlib.max (if x > 0 then 1 else 0) (int_of_float (float_of_int x *. f)) in
    Resource.make ~clb:(s res.Resource.clb) ~bram:(s res.Resource.bram)
      ~dsp:(s res.Resource.dsp)
  in
  let time f = Stdlib.max 1 (int_of_float (float_of_int fast_time *. f)) in
  let mid = !next_module_id in
  next_module_id := mid + 3;
  let hw_fast =
    Impl.hw ~module_id:mid ~time:fast_time ~res:large ()
  in
  let hw_medium =
    Impl.hw ~module_id:(mid + 1)
      ~time:(time (p.medium_time_factor *. jitter 0.9 1.1))
      ~res:(shrink large (p.medium_area_factor *. jitter 0.9 1.1)) ()
  in
  let hw_small =
    Impl.hw ~module_id:(mid + 2)
      ~time:(time (p.small_time_factor *. jitter 0.9 1.1))
      ~res:(shrink large (p.small_area_factor *. jitter 0.9 1.1)) ()
  in
  let sw =
    Impl.sw ~time:(time (jitter p.sw_factor_min p.sw_factor_max))
  in
  [| sw; hw_fast; hw_medium; hw_small |]

let instance ?(params = default_params) ?(arch = Arch.zedboard) rng ~tasks =
  let graph =
    Generator.layered rng ~tasks ~width:(params.width_of_tasks tasks)
      ~edge_probability:params.edge_probability
  in
  let next_module_id = ref 0 in
  let templates = ref [] in
  let impls =
    Array.init tasks (fun _ ->
        let reuse =
          !templates <> [] && Rng.float rng 1.0 < params.p_shared_impl
        in
        if reuse then Rng.choose rng (Array.of_list !templates)
        else begin
          let t = fresh_template params rng next_module_id in
          templates := t :: !templates;
          t
        end)
  in
  Instance.make ~arch ~graph ~impls ()

let group ?params ?arch ~seed ~tasks ~count () =
  let rng = Rng.create (seed + (tasks * 7919)) in
  List.init count (fun _ -> instance ?params ?arch rng ~tasks)

let full ?params ?arch ?(graphs_per_group = 10) ~seed () =
  List.init 10 (fun i ->
      let tasks = (i + 1) * 10 in
      (tasks, group ?params ?arch ~seed ~tasks ~count:graphs_per_group ()))
