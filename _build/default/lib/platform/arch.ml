module Device = Resched_fabric.Device
module Bitstream = Resched_fabric.Bitstream

type t = {
  processors : int;
  device : Device.t;
  bits_per_tick : float;
}

let make ~processors ~device ?(bits_per_tick = Device.icap_default_bits_per_us)
    () =
  if processors <= 0 then invalid_arg "Arch.make: processors must be positive";
  if bits_per_tick <= 0. then invalid_arg "Arch.make: bits_per_tick";
  { processors; device; bits_per_tick }

let zedboard = make ~processors:2 ~device:Device.xc7z020 ()
let microzed = make ~processors:2 ~device:Device.xc7z010 ()
let zc706 = make ~processors:2 ~device:Device.xc7z045 ()
let mini = make ~processors:1 ~device:Device.minifab ()
let max_res t = t.device.Device.total

let reconf_ticks t res =
  Bitstream.reconf_ticks t.device.Device.model ~bits_per_tick:t.bits_per_tick
    res

let pp ppf t =
  Format.fprintf ppf "%d cores + %a @ %.0f bits/tick" t.processors Device.pp
    t.device t.bits_per_tick
