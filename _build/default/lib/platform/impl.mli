(** Task implementations (Sec. III).

    Every application task offers a set of implementations [I_t]: software
    ones ([I_t^S], executed on a processor core, no FPGA resources) and
    hardware ones ([I_t^H], executed inside a reconfigurable region whose
    resources must cover [res_i]). *)

type kind = Hw | Sw

type t = {
  kind : kind;
  time : int;
      (** execution time in ticks (includes data movement, per Sec. III) *)
  res : Resched_fabric.Resource.t;
      (** [res_{i,r}]; {!Resched_fabric.Resource.zero} for SW *)
  module_id : int option;
      (** identity of the synthesized hardware module: two tasks whose
          selected implementations share a [module_id] can reuse a
          configured region without reconfiguring (module reuse,
          Sec. II / future work of Sec. VIII) *)
}

val sw : time:int -> t
(** A software implementation. *)

val hw : ?module_id:int -> time:int -> res:Resched_fabric.Resource.t -> unit -> t
(** A hardware implementation; [res] must be non-zero. *)

val is_hw : t -> bool
val is_sw : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
