module Resource = Resched_fabric.Resource

type kind = Hw | Sw

type t = {
  kind : kind;
  time : int;
  res : Resource.t;
  module_id : int option;
}

let sw ~time =
  if time <= 0 then invalid_arg "Impl.sw: time must be positive";
  { kind = Sw; time; res = Resource.zero; module_id = None }

let hw ?module_id ~time ~res () =
  if time <= 0 then invalid_arg "Impl.hw: time must be positive";
  if Resource.is_zero res then invalid_arg "Impl.hw: empty resources";
  { kind = Hw; time; res; module_id }

let is_hw i = i.kind = Hw
let is_sw i = i.kind = Sw

let equal a b =
  a.kind = b.kind && a.time = b.time && Resource.equal a.res b.res
  && a.module_id = b.module_id

let pp ppf i =
  match i.kind with
  | Sw -> Format.fprintf ppf "SW(time=%d)" i.time
  | Hw ->
    Format.fprintf ppf "HW(time=%d, res=%a%s)" i.time Resource.pp i.res
      (match i.module_id with
      | None -> ""
      | Some m -> Printf.sprintf ", module=%d" m)
