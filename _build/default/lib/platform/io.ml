module Graph = Resched_taskgraph.Graph
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device

let to_string (t : Instance.t) =
  let device_name = t.arch.Arch.device.Device.name in
  if Device.by_name device_name = None then
    invalid_arg "Io.to_string: device is not a named preset";
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  addf "# resched instance";
  addf "arch processors %d recfreq %g device %s" t.arch.Arch.processors
    t.arch.Arch.bits_per_tick device_name;
  let n = Instance.size t in
  addf "tasks %d" n;
  for u = 0 to n - 1 do
    addf "task %d name %s" u t.names.(u);
    Array.iter
      (fun (i : Impl.t) ->
        match i.kind with
        | Impl.Sw -> addf "impl sw time %d" i.time
        | Impl.Hw ->
          let r = i.res in
          let m =
            match i.module_id with
            | None -> ""
            | Some id -> Printf.sprintf " module %d" id
          in
          addf "impl hw time %d clb %d bram %d dsp %d%s" i.time r.Resource.clb
            r.Resource.bram r.Resource.dsp m)
      t.impls.(u)
  done;
  List.iter (fun (u, v) -> addf "edge %d %d" u v) (Graph.edges t.graph);
  Buffer.contents buf

type parse_state = {
  mutable arch : Arch.t option;
  mutable tasks : int;
  mutable names : string array;
  mutable impls : Impl.t list array;  (* reversed *)
  mutable current : int;
  mutable edges : (int * int) list;
}

let of_string text =
  let state =
    { arch = None; tasks = -1; names = [||]; impls = [||]; current = -1;
      edges = [] }
  in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let tokens line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
  in
  let parse_int lineno s k =
    match int_of_string_opt s with
    | Some v -> k v
    | None -> error lineno (Printf.sprintf "expected integer, got %S" s)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> finish ()
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      (match tokens line with
      | [] -> go (lineno + 1) rest
      | [ "arch"; "processors"; p; "recfreq"; f; "device"; d ] ->
        parse_int lineno p (fun processors ->
            match (float_of_string_opt f, Device.by_name d) with
            | None, _ -> error lineno (Printf.sprintf "bad recfreq %S" f)
            | _, None -> error lineno (Printf.sprintf "unknown device %S" d)
            | Some bits_per_tick, Some device ->
              state.arch <-
                Some (Arch.make ~processors ~device ~bits_per_tick ());
              go (lineno + 1) rest)
      | [ "tasks"; n ] ->
        parse_int lineno n (fun n ->
            if n < 0 then error lineno "negative task count"
            else begin
              state.tasks <- n;
              state.names <- Array.init n (Printf.sprintf "t%d");
              state.impls <- Array.make n [];
              go (lineno + 1) rest
            end)
      | "task" :: id :: tail ->
        parse_int lineno id (fun id ->
            if id < 0 || id >= state.tasks then
              error lineno "task id out of range (declare 'tasks' first)"
            else begin
              state.current <- id;
              (match tail with
              | [ "name"; name ] -> state.names.(id) <- name
              | [] -> ()
              | _ -> ());
              go (lineno + 1) rest
            end)
      | [ "impl"; "sw"; "time"; t ] ->
        if state.current < 0 then error lineno "impl before any task"
        else
          parse_int lineno t (fun time ->
              state.impls.(state.current) <-
                Impl.sw ~time :: state.impls.(state.current);
              go (lineno + 1) rest)
      | "impl" :: "hw" :: "time" :: t :: "clb" :: c :: "bram" :: b :: "dsp"
        :: d :: tail ->
        if state.current < 0 then error lineno "impl before any task"
        else
          parse_int lineno t (fun time ->
              parse_int lineno c (fun clb ->
                  parse_int lineno b (fun bram ->
                      parse_int lineno d (fun dsp ->
                          let res = Resource.make ~clb ~bram ~dsp in
                          let finishing module_id =
                            state.impls.(state.current) <-
                              Impl.hw ?module_id ~time ~res ()
                              :: state.impls.(state.current);
                            go (lineno + 1) rest
                          in
                          match tail with
                          | [] -> finishing None
                          | [ "module"; m ] ->
                            parse_int lineno m (fun m -> finishing (Some m))
                          | _ -> error lineno "trailing tokens on impl hw"))))
      | [ "edge"; u; v ] ->
        parse_int lineno u (fun u ->
            parse_int lineno v (fun v ->
                state.edges <- (u, v) :: state.edges;
                go (lineno + 1) rest))
      | tok :: _ -> error lineno (Printf.sprintf "unknown directive %S" tok))
  and finish () =
    match state.arch with
    | None -> Error "missing 'arch' line"
    | Some arch ->
      if state.tasks < 0 then Error "missing 'tasks' line"
      else begin
        let graph = Graph.create state.tasks in
        match
          List.iter
            (fun (u, v) ->
              if u < 0 || u >= state.tasks || v < 0 || v >= state.tasks then
                failwith (Printf.sprintf "edge (%d, %d) out of range" u v);
              Graph.add_edge graph u v)
            (List.rev state.edges)
        with
        | () -> (
          let impls =
            Array.map (fun l -> Array.of_list (List.rev l)) state.impls
          in
          match
            Instance.make ~arch ~graph ~names:state.names ~impls ()
          with
          | inst -> Ok inst
          | exception Invalid_argument msg -> Error msg)
        | exception (Failure msg | Invalid_argument msg) -> Error msg
      end
  in
  go 1 lines

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg
