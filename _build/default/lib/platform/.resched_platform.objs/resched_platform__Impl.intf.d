lib/platform/impl.mli: Format Resched_fabric
