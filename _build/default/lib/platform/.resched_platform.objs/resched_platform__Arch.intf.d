lib/platform/arch.mli: Format Resched_fabric
