lib/platform/instance.ml: Arch Array Format Impl List Printf Resched_fabric Resched_taskgraph Stdlib
