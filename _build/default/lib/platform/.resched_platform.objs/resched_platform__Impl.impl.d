lib/platform/impl.ml: Format Printf Resched_fabric
