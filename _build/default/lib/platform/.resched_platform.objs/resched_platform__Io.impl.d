lib/platform/io.ml: Arch Array Buffer Fun Impl In_channel Instance List Printf Resched_fabric Resched_taskgraph String
