lib/platform/suite.mli: Arch Instance Resched_util
