lib/platform/suite.ml: Arch Array Impl Instance List Resched_fabric Resched_taskgraph Resched_util Stdlib
