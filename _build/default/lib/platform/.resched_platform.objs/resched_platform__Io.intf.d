lib/platform/io.mli: Instance
