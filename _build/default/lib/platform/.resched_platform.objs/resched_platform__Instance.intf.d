lib/platform/instance.mli: Arch Format Impl Resched_taskgraph
