lib/platform/arch.ml: Format Resched_fabric
