module Graph = Resched_taskgraph.Graph
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device

type t = {
  arch : Arch.t;
  graph : Graph.t;
  names : string array;
  impls : Impl.t array array;
}

let validate t =
  let n = Graph.size t.graph in
  if Array.length t.impls <> n then
    invalid_arg "Instance.make: impls length mismatch";
  if Array.length t.names <> n then
    invalid_arg "Instance.make: names length mismatch";
  let max_res = Arch.max_res t.arch in
  Array.iteri
    (fun task impls ->
      if Array.length impls = 0 then
        invalid_arg
          (Printf.sprintf "Instance.make: task %d has no implementation" task);
      if not (Array.exists Impl.is_sw impls) then
        invalid_arg
          (Printf.sprintf
             "Instance.make: task %d has no software implementation" task);
      Array.iter
        (fun i ->
          if Impl.is_hw i && not (Resource.fits i.Impl.res ~within:max_res)
          then
            invalid_arg
              (Printf.sprintf
                 "Instance.make: task %d has an implementation larger than \
                  the device"
                 task))
        impls)
    t.impls

let make ~arch ~graph ?names ~impls () =
  let names =
    match names with
    | Some a -> a
    | None -> Array.init (Graph.size graph) (fun i -> Printf.sprintf "t%d" i)
  in
  let t = { arch; graph; names; impls } in
  validate t;
  t

let size t = Graph.size t.graph
let task_name t u = t.names.(u)

let indexed_filter p impls =
  let acc = ref [] in
  Array.iteri (fun idx i -> if p i then acc := (idx, i) :: !acc) impls;
  List.rev !acc

let hw_impls t u = indexed_filter Impl.is_hw t.impls.(u)
let sw_impls t u = indexed_filter Impl.is_sw t.impls.(u)

let fastest_sw t u =
  match sw_impls t u with
  | [] -> invalid_arg "Instance.fastest_sw: no SW implementation"
  | (idx0, i0) :: rest ->
    let best, _ =
      List.fold_left
        (fun (bidx, bt) (idx, i) ->
          if i.Impl.time < bt then (idx, i.Impl.time) else (bidx, bt))
        (idx0, i0.Impl.time) rest
    in
    best

let impl t ~task ~idx = t.impls.(task).(idx)

let min_time t u =
  Array.fold_left (fun acc i -> Stdlib.min acc i.Impl.time) max_int t.impls.(u)

let max_t t =
  let acc = ref 0 in
  for u = 0 to size t - 1 do
    acc := !acc + min_time t u
  done;
  !acc

let pp_summary ppf t =
  Format.fprintf ppf "instance: %d tasks, %d edges on %a" (size t)
    (Graph.edge_count t.graph) Arch.pp t.arch
