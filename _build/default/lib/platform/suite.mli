(** The paper's synthetic benchmark suite (Sec. VII-A).

    100 pseudo-random task graphs in 10 groups of 10; the graphs of a
    group share the task count, which ranges over 10..100 across groups.
    Every task has one software implementation and three hardware
    implementations with heterogeneous CLB/BRAM/DSP requirements trading
    execution time against area (fast/large, medium, slow/small — exactly
    the trade-off of Fig. 1). Some tasks share a common implementation
    (same [module_id]s) so that module reuse is exploitable.

    The generator is seeded and fully deterministic. *)

type params = {
  fast_time_min : int;
  fast_time_max : int;  (** fastest HW implementation time range (ticks) *)
  medium_time_factor : float;  (** medium impl time = factor * fast *)
  small_time_factor : float;  (** small impl time = factor * fast *)
  medium_area_factor : float;  (** medium impl area = factor * large *)
  small_area_factor : float;  (** small impl area = factor * large *)
  sw_factor_min : float;
  sw_factor_max : float;  (** SW time = factor * fast HW time *)
  clb_min : int;
  clb_max : int;  (** CLB demand of the large implementation *)
  p_dsp_heavy : float;  (** probability a task also needs DSPs *)
  p_bram_heavy : float;  (** probability a task also needs BRAMs *)
  p_shared_impl : float;
      (** probability a task reuses an implementation template generated
          for an earlier task of the same instance *)
  width_of_tasks : int -> int;  (** DAG layer width per task count *)
  edge_probability : float;
}

val default_params : params
(** Calibrated against the XC7Z020 so that FPGA contention appears from
    roughly 20 tasks on, as in the paper's result discussion. *)

val instance : ?params:params -> ?arch:Arch.t -> Resched_util.Rng.t ->
  tasks:int -> Instance.t
(** One pseudo-random instance ([arch] defaults to {!Arch.zedboard}). *)

val group : ?params:params -> ?arch:Arch.t -> seed:int -> tasks:int ->
  count:int -> unit -> Instance.t list
(** [count] instances of [tasks] tasks each, derived from [seed]. *)

val full : ?params:params -> ?arch:Arch.t -> ?graphs_per_group:int ->
  seed:int -> unit -> (int * Instance.t list) list
(** The whole suite: groups of [graphs_per_group] (default 10) instances
    for task counts 10, 20, ..., 100, as [(tasks, instances)] pairs. *)
