(** A complete scheduling problem instance: architecture + application
    task graph + per-task implementation sets (Sec. III). *)

module Graph = Resched_taskgraph.Graph

type t = {
  arch : Arch.t;
  graph : Graph.t;
  names : string array;  (** one display name per task *)
  impls : Impl.t array array;  (** [I_t] per task, HW and SW mixed *)
}

val make : arch:Arch.t -> graph:Graph.t -> ?names:string array ->
  impls:Impl.t array array -> unit -> t
(** Builds and validates an instance. Raises [Invalid_argument] when a
    task has no implementation, no software implementation (the paper
    assumes at least one per task), a hardware implementation that cannot
    fit the device even alone, or when array lengths disagree with the
    graph size. [names] defaults to ["t0", "t1", ...]. *)

val size : t -> int
(** Number of tasks. *)

val task_name : t -> int -> string

val hw_impls : t -> int -> (int * Impl.t) list
(** Hardware implementations of a task, with their index in [impls.(t)]. *)

val sw_impls : t -> int -> (int * Impl.t) list

val fastest_sw : t -> int -> int
(** Index of the software implementation with the lowest execution time
    (the paper's fallback choice). *)

val impl : t -> task:int -> idx:int -> Impl.t

val min_time : t -> int -> int
(** [min_{i in I_t} time_i], used by eq. 4's [maxT]. *)

val max_t : t -> int
(** [maxT] of eq. 4: serial execution with the fastest implementations. *)

val pp_summary : Format.formatter -> t -> unit
