(** Target architecture description (Sec. III): a set of homogeneous
    processor cores tightly coupled with a partially-reconfigurable FPGA
    served by a single reconfiguration controller. *)

type t = {
  processors : int;  (** |P|, number of cores *)
  device : Resched_fabric.Device.t;
  bits_per_tick : float;
      (** [recFreq]: configuration bits loaded per tick by the single
          reconfiguration controller *)
}

val make : processors:int -> device:Resched_fabric.Device.t ->
  ?bits_per_tick:float -> unit -> t
(** [bits_per_tick] defaults to
    {!Resched_fabric.Device.icap_default_bits_per_us}. Raises
    [Invalid_argument] if [processors <= 0] or [bits_per_tick <= 0.]. *)

val zedboard : t
(** The paper's target: ZedBoard (dual-core ARM Cortex-A9 + XC7Z020). *)

val microzed : t
(** MicroZed-class: dual-core ARM + XC7Z010 (half the fabric). *)

val zc706 : t
(** ZC706-class: dual-core ARM + XC7Z045 (4x the fabric). *)

val mini : t
(** A single-core architecture over {!Resched_fabric.Device.minifab}, for
    tests and the quickstart. *)

val max_res : t -> Resched_fabric.Resource.t
(** [maxRes_r] for all kinds: the device's total resources. *)

val reconf_ticks : t -> Resched_fabric.Resource.t -> int
(** Reconfiguration time (eq. 2) of a region with the given resources on
    this architecture. *)

val pp : Format.formatter -> t -> unit
