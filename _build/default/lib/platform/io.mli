(** Textual problem-instance format (round-trippable).

    Grammar (one directive per line, '#' starts a comment):
    {v
    arch processors <int> recfreq <float> device <preset-name>
    tasks <int>
    task <id> [name <string>]
    impl sw time <int>
    impl hw time <int> clb <int> bram <int> dsp <int> [module <int>]
    edge <src> <dst>
    v}
    [impl] lines attach to the most recent [task] line. The device must be
    one of the {!Resched_fabric.Device.presets}. *)

val to_string : Instance.t -> string
(** Serialize; device is emitted by preset name (raises [Invalid_argument]
    for non-preset devices). *)

val of_string : string -> (Instance.t, string) result
(** Parse; the error message carries the offending line number. *)

val save : string -> Instance.t -> unit
(** Write to a file path. *)

val load : string -> (Instance.t, string) result
