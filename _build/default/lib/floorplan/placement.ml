module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource

type rect = { c0 : int; c1 : int; r0 : int; r1 : int }

let width r = r.c1 - r.c0 + 1
let height r = r.r1 - r.r0 + 1

let overlap a b =
  a.c0 <= b.c1 && b.c0 <= a.c1 && a.r0 <= b.r1 && b.r0 <= a.r1

let contains ~outer r =
  outer.c0 <= r.c0 && r.c1 <= outer.c1 && outer.r0 <= r.r0 && r.r1 <= outer.r1

let resources device r =
  Device.rect_resources device ~c0:r.c0 ~c1:r.c1 ~r0:r.r0 ~r1:r.r1

let pp ppf r =
  Format.fprintf ppf "[cols %d-%d, rows %d-%d]" r.c0 r.c1 r.r0 r.r1

let candidate_count_cap = 512

let candidates device need =
  if Resource.is_zero need then
    invalid_arg "Placement.candidates: zero requirement";
  let ncols = Array.length device.Device.columns in
  let rows = device.Device.rows in
  let acc = ref [] in
  for r0 = 0 to rows - 1 do
    for r1 = r0 to rows - 1 do
      let h = r1 - r0 + 1 in
      (* Sliding window over columns: grow c1 until the window fits,
         then record and slide c0. Per (r0, r1) this yields, for every
         c0, the minimal c1 — but we only keep windows that are minimal
         in the sense that shrinking from the left also breaks
         feasibility, which the slide achieves naturally. *)
      let have = ref Resource.zero in
      let col_res c =
        let unit_ = Device.column_units device ~col:c in
        Resource.scale unit_ (float_of_int h)
      in
      let c0 = ref 0 and c1 = ref (-1) in
      let continue_ = ref true in
      while !continue_ do
        (* Extend right edge until the requirement fits. *)
        while (not (Resource.fits need ~within:!have)) && !c1 < ncols - 1 do
          incr c1;
          have := Resource.add !have (col_res !c1)
        done;
        if not (Resource.fits need ~within:!have) then continue_ := false
        else begin
          (* Shrink from the left while it still fits to make it minimal. *)
          while
            !c0 <= !c1
            && Resource.fits need
                 ~within:(Resource.sub !have (col_res !c0))
          do
            have := Resource.sub !have (col_res !c0);
            incr c0
          done;
          acc := { c0 = !c0; c1 = !c1; r0; r1 } :: !acc;
          (* Drop the left column and continue the scan. *)
          have := Resource.sub !have (col_res !c0);
          incr c0;
          if !c0 > !c1 && !c1 = ncols - 1 then continue_ := false
        end
      done
    done
  done;
  let area r =
    Resource.total_units (resources device r)
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (area a) (area b) in
        if c <> 0 then c else compare (a.r0, a.c0, a.r1, a.c1) (b.r0, b.c0, b.r1, b.c1))
      !acc
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take candidate_count_cap sorted
