module Resource = Resched_fabric.Resource

type outcome =
  | Placed of Placement.rect array
  | Infeasible
  | Unknown

exception Done of Placement.rect array
exception Budget

(* First-fit greedy: place regions in the given order, each on its
   snuggest non-overlapping candidate. Succeeds on most practical
   inputs (the device is rarely packed tight) at negligible cost. *)
let greedy needs_order cands =
  let n = Array.length cands in
  let chosen = Array.make n None in
  let ok =
    List.for_all
      (fun region ->
        let free rect =
          Array.for_all
            (function
              | Some placed -> not (Placement.overlap placed rect)
              | None -> true)
            chosen
        in
        match List.find_opt free cands.(region) with
        | Some rect ->
          chosen.(region) <- Some rect;
          true
        | None -> false)
      needs_order
  in
  if ok then
    Some (Array.map (function Some r -> r | None -> assert false) chosen)
  else None

let pack ?(node_limit = 200_000) device needs =
  let n = Array.length needs in
  if n = 0 then Placed [||]
  else begin
    let cands = Array.map (Placement.candidates device) needs in
    if Array.exists (fun c -> c = []) cands then Infeasible
    else begin
      let indices = List.init n (fun i -> i) in
      let by_cand_count =
        List.sort
          (fun a b ->
            let c = compare (List.length cands.(a)) (List.length cands.(b)) in
            if c <> 0 then c
            else
              compare
                (Resource.total_units needs.(b))
                (Resource.total_units needs.(a)))
          indices
      in
      let by_area_desc =
        List.sort
          (fun a b ->
            compare (Resource.total_units needs.(b))
              (Resource.total_units needs.(a)))
          indices
      in
      let greedy_result =
        match greedy by_cand_count cands with
        | Some p -> Some p
        | None -> greedy by_area_desc cands
      in
      match greedy_result with
      | Some placements -> Placed placements
      | None ->
        (* Exact search: hardest regions first, snuggest candidates
           first; [node_limit] bounds the effort. *)
        let order = Array.of_list by_cand_count in
        let chosen = Array.make n None in
        let nodes = ref 0 in
        let rec go k =
          if k = n then begin
            let result =
              Array.map (function Some r -> r | None -> assert false) chosen
            in
            raise (Done result)
          end;
          let region = order.(k) in
          List.iter
            (fun rect ->
              incr nodes;
              if !nodes > node_limit then raise Budget;
              let clash =
                Array.exists
                  (function
                    | Some placed -> Placement.overlap placed rect
                    | None -> false)
                  chosen
              in
              if not clash then begin
                chosen.(region) <- Some rect;
                go (k + 1);
                chosen.(region) <- None
              end)
            cands.(region)
        in
        (match go 0 with
        | () -> Infeasible
        | exception Done placements -> Placed placements
        | exception Budget -> Unknown)
    end
  end
