lib/floorplan/placement.ml: Array Format List Resched_fabric
