lib/floorplan/packer.mli: Placement Resched_fabric
