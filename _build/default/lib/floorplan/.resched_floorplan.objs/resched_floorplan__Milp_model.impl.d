lib/floorplan/milp_model.ml: Array List Placement Printf Resched_fabric Resched_milp
