lib/floorplan/floorplanner.mli: Placement Resched_fabric
