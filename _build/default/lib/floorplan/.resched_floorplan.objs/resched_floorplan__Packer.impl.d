lib/floorplan/packer.ml: Array List Placement Resched_fabric
