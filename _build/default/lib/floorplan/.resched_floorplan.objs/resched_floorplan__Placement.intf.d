lib/floorplan/placement.mli: Format Resched_fabric
