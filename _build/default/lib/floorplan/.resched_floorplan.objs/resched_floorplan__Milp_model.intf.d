lib/floorplan/milp_model.mli: Placement Resched_fabric
