lib/floorplan/floorplanner.ml: Array Milp_model Packer Placement Printf Resched_fabric Unix
