(** Backtracking search for a non-overlapping assignment of one feasible
    placement to every reconfigurable region. *)

type outcome =
  | Placed of Placement.rect array
      (** one placement per input region, in input order *)
  | Infeasible  (** exhaustively proven: no packing exists *)
  | Unknown  (** node budget exhausted before a conclusion *)

val pack : ?node_limit:int -> Resched_fabric.Device.t ->
  Resched_fabric.Resource.t array -> outcome
(** [pack device needs] searches for placements of all regions. Regions
    are tried hardest-first (fewest candidates); candidates snuggest
    first. [node_limit] (default 200_000) bounds backtracking nodes.
    Raises [Invalid_argument] if any requirement is zero. *)
