examples/quickstart.ml: Format List Printf Resched_core Resched_fabric Resched_platform Resched_taskgraph
