examples/quickstart.mli:
