examples/robustness.mli:
