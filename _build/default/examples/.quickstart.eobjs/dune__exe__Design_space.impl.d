examples/design_space.ml: List Printf Resched_core Resched_fabric Resched_platform Resched_util Unix
