examples/robustness.ml: List Printf Resched_baseline Resched_core Resched_platform Resched_sim Resched_util
