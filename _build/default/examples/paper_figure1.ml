(* Reproduction of the paper's Figure 1: the impact of implementation
   selection on the schedule execution time.

   Three hardware tasks t1, t2, t3 with a dependency t1 -> t3. Task t1
   has two implementations: t1_1 (fast but large — alone it fills the
   device) and t1_2 (slower but small). Selecting t1_1 forces a single
   large reconfigurable region, serializing everything and paying big
   reconfigurations; selecting the resource-efficient t1_2 lets three
   small regions coexist. PA picks t1_2; a locally-greedy iterative
   scheduler (IS-1) picks t1_1.

   Run with:  dune exec examples/paper_figure1.exe *)

module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Impl = Resched_platform.Impl
module Arch = Resched_platform.Arch
module Instance = Resched_platform.Instance
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Gantt = Resched_core.Gantt
module Isk = Resched_baseline.Isk

let () =
  (* Use the small test fabric so a single implementation can plausibly
     occupy "most of the FPGA" as in the figure: minifab has 600 CLB. *)
  let arch = Arch.mini in
  let graph = Graph.create 3 in
  Graph.add_edge graph 0 2;
  let names = [| "t1"; "t2"; "t3" |] in
  let hw ~time ~clb = Impl.hw ~time ~res:(Resource.make ~clb ~bram:0 ~dsp:0) () in
  let impls =
    [|
      (* t1_1: fastest, hogs the fabric; t1_2: resource-efficient. *)
      [| Impl.sw ~time:30_000; hw ~time:1000 ~clb:520; hw ~time:1900 ~clb:180 |];
      [| Impl.sw ~time:30_000; hw ~time:1400 ~clb:190 |];
      [| Impl.sw ~time:30_000; hw ~time:1500 ~clb:190 |];
    |]
  in
  let inst = Instance.make ~arch ~graph ~names ~impls () in

  Printf.printf "device: 600 CLB total; t1_1 needs 520 CLB, t1_2 needs 180\n\n";

  let pa, _ = Pa.run inst in
  Validate.check_exn pa;
  let t1_impl = (Instance.impl inst ~task:0 ~idx:pa.Schedule.slots.(0).Schedule.impl_idx) in
  Printf.printf "PA selects %s for t1 -> makespan %d ticks, %d region(s)\n"
    (if t1_impl.Impl.res.Resource.clb > 300 then "t1_1 (fast/large)"
     else "t1_2 (efficient/small)")
    (Schedule.makespan pa)
    (Array.length pa.Schedule.regions);
  Gantt.print ~width:90 pa;

  let is1, _ = Isk.run ~config:(Isk.config ~k:1) inst in
  Validate.check_exn is1;
  let t1_impl' = (Instance.impl inst ~task:0 ~idx:is1.Schedule.slots.(0).Schedule.impl_idx) in
  Printf.printf "\nIS-1 selects %s for t1 -> makespan %d ticks, %d region(s)\n"
    (if t1_impl'.Impl.res.Resource.clb > 300 then "t1_1 (fast/large)"
     else "t1_2 (efficient/small)")
    (Schedule.makespan is1)
    (Array.length is1.Schedule.regions);
  Gantt.print ~width:90 is1;

  Printf.printf
    "\nresource-efficient selection improves the schedule by %.1f%% (Fig. 1 effect)\n"
    ((float_of_int (Schedule.makespan is1 - Schedule.makespan pa))
    /. float_of_int (Schedule.makespan is1)
    *. 100.)
