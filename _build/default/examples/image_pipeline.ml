(* A realistic scenario: an image-processing pipeline on the ZedBoard —
   the kind of streaming vision application the paper's introduction
   motivates (SoC with ARM cores + reconfigurable logic).

   Two frames are processed through capture -> demosaic -> denoise ->
   {edges, corners} -> fuse -> compress -> store, giving the scheduler
   both pipeline depth and cross-frame parallelism. Hardware
   implementations come in an HLS-style area/latency trade-off. All four
   schedulers are compared.

   Run with:  dune exec examples/image_pipeline.exe *)

module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Impl = Resched_platform.Impl
module Arch = Resched_platform.Arch
module Instance = Resched_platform.Instance
module Pa = Resched_core.Pa
module Pa_random = Resched_core.Pa_random
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Metrics = Resched_core.Metrics
module Isk = Resched_baseline.Isk
module List_sched = Resched_baseline.List_sched

type stage = {
  name : string;
  sw_us : int;
  hw_fast : int * int * int * int;  (** time, clb, bram, dsp *)
  hw_small : int * int * int * int;
}

let stages =
  [|
    { name = "capture"; sw_us = 900; hw_fast = (300, 1500, 12, 0);
      hw_small = (700, 500, 6, 0) };
    { name = "demosaic"; sw_us = 7200; hw_fast = (800, 3200, 8, 24);
      hw_small = (2000, 900, 4, 8) };
    { name = "denoise"; sw_us = 9500; hw_fast = (1100, 4000, 16, 32);
      hw_small = (2800, 1100, 6, 10) };
    { name = "edges"; sw_us = 5200; hw_fast = (600, 2600, 4, 18);
      hw_small = (1500, 800, 2, 6) };
    { name = "corners"; sw_us = 4800; hw_fast = (650, 2400, 4, 16);
      hw_small = (1600, 750, 2, 6) };
    { name = "fuse"; sw_us = 2600; hw_fast = (400, 1400, 6, 8);
      hw_small = (950, 450, 3, 3) };
    { name = "compress"; sw_us = 8800; hw_fast = (1000, 3600, 24, 12);
      hw_small = (2600, 1000, 10, 4) };
    { name = "store"; sw_us = 1200; hw_fast = (500, 900, 18, 0);
      hw_small = (900, 400, 8, 0) };
  |]

let frames = 2

let () =
  let per_frame = Array.length stages in
  let n = frames * per_frame in
  let graph = Graph.create n in
  let id frame stage = (frame * per_frame) + stage in
  for f = 0 to frames - 1 do
    (* capture -> demosaic -> denoise -> {edges, corners} -> fuse ->
       compress -> store *)
    List.iter
      (fun (a, b) -> Graph.add_edge graph (id f a) (id f b))
      [ (0, 1); (1, 2); (2, 3); (2, 4); (3, 5); (4, 5); (5, 6); (6, 7) ];
    (* Frames are captured sequentially by the same sensor. *)
    if f > 0 then Graph.add_edge graph (id (f - 1) 0) (id f 0)
  done;
  let names =
    Array.init n (fun u ->
        Printf.sprintf "%s/%d" stages.(u mod per_frame).name (u / per_frame))
  in
  (* The same stage of different frames shares its hardware modules:
     module reuse (and region sharing) is genuinely available. *)
  let impls =
    Array.init n (fun u ->
        let s = stages.(u mod per_frame) in
        let stage_idx = u mod per_frame in
        let mk (time, clb, bram, dsp) variant =
          Impl.hw
            ~module_id:((stage_idx * 2) + variant)
            ~time
            ~res:(Resource.make ~clb ~bram ~dsp)
            ()
        in
        [| Impl.sw ~time:s.sw_us; mk s.hw_fast 0; mk s.hw_small 1 |])
  in
  let inst = Instance.make ~arch:Arch.zedboard ~graph ~names ~impls () in
  Format.printf "%a@.@." Instance.pp_summary inst;

  let report name sched =
    Validate.check_exn sched;
    let m = Metrics.compute sched in
    Printf.printf
      "%-10s makespan %6d us | %d HW / %d SW | %d regions | reconf %4.1f%% | \
       fps (both frames done): %.1f\n"
      name (Schedule.makespan sched) m.Metrics.hw_tasks m.Metrics.sw_tasks
      m.Metrics.regions
      (100. *. m.Metrics.reconfiguration_overhead)
      (float_of_int frames /. (float_of_int (Schedule.makespan sched) /. 1e6))
  in
  let pa, _ = Pa.run inst in
  report "PA" pa;
  let par = Pa_random.run ~seed:1 ~budget_seconds:1.0 inst in
  (match par.Pa_random.schedule with
  | Some sched -> report "PA-R(1s)" sched
  | None -> print_endline "PA-R: no feasible schedule found");
  let is1, _ = Isk.run ~config:(Isk.config ~k:1) inst in
  report "IS-1" is1;
  let is5, _ = Isk.run ~config:(Isk.config ~k:5) inst in
  report "IS-5" is5;
  report "HEFT" (List_sched.run inst);
  report "SW-only" (Pa.all_software_schedule inst);
  print_newline ();
  Resched_core.Gantt.print ~width:100 pa
