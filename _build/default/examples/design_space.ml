(* Design-space exploration: the use case the paper's conclusions call
   out — PA is fast enough to evaluate many candidate architectures for a
   fixed application before committing to one.

   A 30-task synthetic application is scheduled on every combination of
   core count and reconfiguration throughput, plus both fabric presets;
   the table shows how makespan and the HW/SW split react.

   Run with:  dune exec examples/design_space.exe *)

module Rng = Resched_util.Rng
module Table = Resched_util.Table
module Device = Resched_fabric.Device
module Arch = Resched_platform.Arch
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Metrics = Resched_core.Metrics

let () =
  (* One fixed application; only the architecture varies. The instance
     is regenerated per architecture from the same seed so that the task
     graph stays identical; implementation areas are sized relative to
     each device so the same application "ported" to a smaller or larger
     part keeps a comparable footprint share. *)
  let application arch =
    let clb = (Resched_platform.Arch.max_res arch).Resched_fabric.Resource.clb in
    let params =
      { Suite.default_params with
        Suite.clb_min = clb * 15 / 100;
        clb_max = clb * 37 / 100 }
    in
    Suite.instance ~params (Rng.create 2024) ~tasks:30 ~arch
  in
  let icap_full = Device.icap_default_bits_per_us in
  let table =
    Table.create
      [ "device"; "cores"; "ICAP"; "makespan [us]"; "HW/SW"; "regions";
        "reconf %"; "PA time [ms]" ]
  in
  List.iter
    (fun device ->
      List.iter
        (fun processors ->
          List.iter
            (fun (icap_label, bits_per_tick) ->
              let arch = Arch.make ~processors ~device ~bits_per_tick () in
              let inst = application arch in
              let t0 = Unix.gettimeofday () in
              let sched, _ = Pa.run inst in
              let ms = (Unix.gettimeofday () -. t0) *. 1000. in
              Validate.check_exn sched;
              let m = Metrics.compute sched in
              Table.add_row table
                [
                  device.Device.name;
                  string_of_int processors;
                  icap_label;
                  string_of_int (Schedule.makespan sched);
                  Printf.sprintf "%d/%d" m.Metrics.hw_tasks m.Metrics.sw_tasks;
                  string_of_int m.Metrics.regions;
                  Printf.sprintf "%.1f" (100. *. m.Metrics.reconfiguration_overhead);
                  Printf.sprintf "%.1f" ms;
                ])
            [ ("400MB/s", icap_full); ("100MB/s", icap_full /. 4.) ])
        [ 1; 2; 4 ])
    [ Device.xc7z010; Device.xc7z020; Device.xc7z045 ];
  print_endline
    "PA as a design-space-exploration engine (fixed 30-task application):";
  Table.print table;
  print_endline
    "Reading guide: more cores absorb the software overflow; a slower\n\
     ICAP inflates reconfiguration overhead and pushes PA toward fewer,\n\
     longer-lived regions. The xc7z045 rows illustrate a real PDR pitfall\n\
     the bitstream model captures: porting the same fractional footprint\n\
     to a 4x larger part quadruples every partial bitstream, so unless\n\
     the configuration port gets faster too, the design becomes\n\
     reconfiguration-bound and the extra fabric buys nothing."
