(* Quickstart: build a small application by hand, schedule it with PA on
   the ZedBoard model, and inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Impl = Resched_platform.Impl
module Arch = Resched_platform.Arch
module Instance = Resched_platform.Instance
module Pa = Resched_core.Pa
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Gantt = Resched_core.Gantt
module Metrics = Resched_core.Metrics

let () =
  (* A five-task application:   decode -> {filter_a, filter_b} -> merge
     -> encode. Times are microseconds on the modelled platform. *)
  let graph = Graph.create 5 in
  List.iter
    (fun (u, v) -> Graph.add_edge graph u v)
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ];
  let names = [| "decode"; "filter_a"; "filter_b"; "merge"; "encode" |] in
  (* Every task: one software implementation, plus hardware variants
     trading area for speed (as HLS unrolling factors would). *)
  let hw ~time ~clb ~bram ~dsp =
    Impl.hw ~time ~res:(Resource.make ~clb ~bram ~dsp) ()
  in
  let impls =
    [|
      [| Impl.sw ~time:4200; hw ~time:700 ~clb:2400 ~bram:8 ~dsp:4;
         hw ~time:1600 ~clb:800 ~bram:4 ~dsp:2 |];
      [| Impl.sw ~time:6000; hw ~time:900 ~clb:3000 ~bram:12 ~dsp:24;
         hw ~time:2100 ~clb:900 ~bram:4 ~dsp:8 |];
      [| Impl.sw ~time:5600; hw ~time:850 ~clb:2800 ~bram:10 ~dsp:20;
         hw ~time:2000 ~clb:850 ~bram:4 ~dsp:6 |];
      [| Impl.sw ~time:2500; hw ~time:500 ~clb:1200 ~bram:2 ~dsp:0 |];
      [| Impl.sw ~time:3800; hw ~time:650 ~clb:2000 ~bram:16 ~dsp:0 |];
    |]
  in
  let inst = Instance.make ~arch:Arch.zedboard ~graph ~names ~impls () in
  Format.printf "%a@." Instance.pp_summary inst;

  (* Schedule with the deterministic heuristic (PA). *)
  let sched, stats = Pa.run inst in
  Validate.check_exn sched;
  Format.printf "PA finished in %d attempt(s): %a@." stats.Pa.attempts
    Schedule.pp_summary sched;
  Format.printf "%a@." Metrics.pp (Metrics.compute sched);
  print_newline ();
  Gantt.print ~width:96 sched;

  (* Software-only reference, to see what the FPGA buys us. *)
  let sw_only = Pa.all_software_schedule inst in
  Printf.printf "\nall-software makespan: %d ticks -> PA speedup: %.2fx\n"
    (Schedule.makespan sw_only)
    (float_of_int (Schedule.makespan sw_only)
    /. float_of_int (Schedule.makespan sched))
