(* Robustness study: how do the schedulers' plans survive runtime
   execution-time variation?

   Offline schedules bake in nominal task times; at runtime, durations
   jitter. The resched_sim executor replays a finished schedule
   self-timed (same decisions and per-resource orders, sampled durations)
   and reports realized makespans. Schedules with more slack between
   dependent activities absorb jitter better; tightly-packed plans
   degrade more. PA's resource-efficient style — more regions, fewer
   reconfigurations in series — tends to leave more independent slack
   than IS-k's few-big-regions style.

   Run with:  dune exec examples/robustness.exe *)

module Rng = Resched_util.Rng
module Table = Resched_util.Table
module Suite = Resched_platform.Suite
module Pa = Resched_core.Pa
module Pa_random = Resched_core.Pa_random
module Schedule = Resched_core.Schedule
module Executor = Resched_sim.Executor
module Isk = Resched_baseline.Isk
module List_sched = Resched_baseline.List_sched

let () =
  let inst = Suite.instance (Rng.create 77) ~tasks:30 in
  let schedules =
    let pa, _ = Pa.run inst in
    let par =
      match
        (Pa_random.run ~seed:3 ~budget_seconds:0.5 inst).Pa_random.schedule
      with
      | Some s -> s
      | None -> pa
    in
    let is5, _ = Isk.run ~config:(Isk.config ~k:5) inst in
    [ ("PA", pa); ("PA-R", par); ("IS-5", is5); ("HEFT", List_sched.run inst) ]
  in
  List.iter
    (fun (jitter_name, jitter) ->
      Printf.printf "\n-- jitter: %s --\n" jitter_name;
      let table =
        Table.create
          [ "scheduler"; "static"; "mean"; "p95"; "worst"; "slowdown" ]
      in
      List.iter
        (fun (name, sched) ->
          let rng = Rng.create 1234 in
          let r = Executor.robustness ~rng ~trials:200 ~jitter sched in
          Table.add_row table
            [
              name;
              string_of_int r.Executor.static_makespan;
              Printf.sprintf "%.0f" r.Executor.mean_makespan;
              Printf.sprintf "%.0f" r.Executor.p95_makespan;
              string_of_int r.Executor.worst_makespan;
              Printf.sprintf "x%.3f" r.Executor.mean_slowdown;
            ])
        schedules;
      Table.print table)
    [
      ("uniform ±10%", Executor.Uniform 0.10);
      ("uniform ±30%", Executor.Uniform 0.30);
      ("delays only, up to +50%", Executor.Delay_only 0.50);
    ];
  print_newline ();
  print_endline
    "slowdown < 1.0 under symmetric jitter means the plan contains slack\n\
     that early-finishing tasks expose; the gap between mean and worst is\n\
     the price of committing to an offline schedule."
