type solution = {
  objective : float;
  values : float array;
  proved_optimal : bool;
  nodes : int;
}

type result =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Unbounded
  | Node_limit

type engine = Revised | Tableau

let is_integral ?(tolerance = 1e-6) model values =
  let ok = ref true in
  Array.iteri
    (fun i v ->
      if Lp.var_is_integer model (Lp.var_of_index model i) then begin
        let r = Float.abs (v -. Float.round v) in
        if r > tolerance then ok := false
      end)
    values;
  !ok

(* Min-heap on LP bound (converted to minimization direction). Starts
   empty and grows lazily, so no placeholder element is ever needed. *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h key v =
    if h.size = Array.length h.data then begin
      let cap = Stdlib.max 16 (2 * h.size) in
      let bigger = Array.make cap (key, v) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (key, v);
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end
end

(* A search node stores only the bound it changed relative to its parent
   (plus the chain to the root), never full bound arrays: materializing
   on pop is O(depth), where the old copy-per-push was O(2n) per child.
   [snap] is the parent's optimal basis, shared by both children, so a
   popped node can warm-start even after a best-first jump across the
   tree. *)
type node = {
  nkey : float;  (* parent LP bound, minimization direction *)
  nvar : int;  (* branched variable; -1 for the root *)
  nlower : bool;  (* true: [nvalue] is a new lower bound (up branch) *)
  nvalue : float;
  ndist : float;  (* |parent relaxation value - new bound| *)
  nparent : node option;
  nsnap : Revised.snapshot option;
}

let root_node =
  {
    nkey = neg_infinity;
    nvar = -1;
    nlower = false;
    nvalue = 0.;
    ndist = 0.;
    nparent = None;
    nsnap = None;
  }

(* Fill [lb]/[ub] (preloaded with the base bounds) with the node's
   effective box. Deltas on the same variable only ever tighten, so
   max/min makes the child-to-root walk order-insensitive. *)
let materialize nd lb ub =
  let rec walk = function
    | None -> ()
    | Some n ->
      if n.nvar >= 0 then
        if n.nlower then lb.(n.nvar) <- Float.max lb.(n.nvar) n.nvalue
        else ub.(n.nvar) <- Float.min ub.(n.nvar) n.nvalue;
      walk n.nparent
  in
  walk (Some nd)

let make_children parent ~key ~var ~value snap =
  let floor_v = Float.floor value in
  let frac = value -. floor_v in
  let parent = Some parent in
  let down =
    {
      nkey = key;
      nvar = var;
      nlower = false;
      nvalue = floor_v;
      ndist = frac;
      nparent = parent;
      nsnap = snap;
    }
  and up =
    {
      nkey = key;
      nvar = var;
      nlower = true;
      nvalue = floor_v +. 1.;
      ndist = 1. -. frac;
      nparent = parent;
      nsnap = snap;
    }
  in
  (down, up)

(* ------------------------------------------------------------------ *)
(* Pseudo-costs                                                        *)

(* Per-variable average objective degradation per unit of bound motion,
   one account per direction. Seeded by strong branching at the root;
   thereafter every solved child updates its parent's branching
   variable. Workers keep private copies (seeded identically), so no
   synchronization is needed. *)
type pseudo = {
  dsum : float array;
  dcnt : int array;
  usum : float array;
  ucnt : int array;
}

let pseudo_create n =
  {
    dsum = Array.make n 0.;
    dcnt = Array.make n 0;
    usum = Array.make n 0.;
    ucnt = Array.make n 0;
  }

let pseudo_copy p =
  {
    dsum = Array.copy p.dsum;
    dcnt = Array.copy p.dcnt;
    usum = Array.copy p.usum;
    ucnt = Array.copy p.ucnt;
  }

let pseudo_update p nd child_key =
  if nd.nvar >= 0 && nd.ndist > 1e-9 && Float.is_finite nd.nkey then begin
    let unit = Float.max 0. (child_key -. nd.nkey) /. nd.ndist in
    if nd.nlower then begin
      p.usum.(nd.nvar) <- p.usum.(nd.nvar) +. unit;
      p.ucnt.(nd.nvar) <- p.ucnt.(nd.nvar) + 1
    end
    else begin
      p.dsum.(nd.nvar) <- p.dsum.(nd.nvar) +. unit;
      p.dcnt.(nd.nvar) <- p.dcnt.(nd.nvar) + 1
    end
  end

(* Product rule over the estimated down/up degradations; variables with
   no history use the average of the initialized ones. Returns -1 when
   the point is integral. When no account is initialized at all (e.g.
   strong branching disabled by a tiny node budget), falls back to the
   most fractional variable. *)
let choose_branch_pc ~tol ~integer pseudo values =
  let n = Array.length values in
  let tot_d = ref 0. and ntot_d = ref 0 in
  let tot_u = ref 0. and ntot_u = ref 0 in
  for i = 0 to n - 1 do
    if pseudo.dcnt.(i) > 0 then begin
      tot_d := !tot_d +. (pseudo.dsum.(i) /. float_of_int pseudo.dcnt.(i));
      incr ntot_d
    end;
    if pseudo.ucnt.(i) > 0 then begin
      tot_u := !tot_u +. (pseudo.usum.(i) /. float_of_int pseudo.ucnt.(i));
      incr ntot_u
    end
  done;
  let avg_d = if !ntot_d > 0 then !tot_d /. float_of_int !ntot_d else 0. in
  let avg_u = if !ntot_u > 0 then !tot_u /. float_of_int !ntot_u else 0. in
  let have_history = !ntot_d > 0 || !ntot_u > 0 in
  let best = ref (-1) and best_score = ref neg_infinity in
  let most_frac = ref (-1) and best_frac = ref tol in
  for i = 0 to n - 1 do
    if integer.(i) then begin
      let v = values.(i) in
      let frac = Float.abs (v -. Float.round v) in
      if frac > tol then begin
        if frac > !best_frac then begin
          most_frac := i;
          best_frac := frac
        end;
        let fd = v -. Float.floor v in
        let fu = 1. -. fd in
        let est_d =
          (if pseudo.dcnt.(i) > 0 then
             pseudo.dsum.(i) /. float_of_int pseudo.dcnt.(i)
           else avg_d)
          *. fd
        and est_u =
          (if pseudo.ucnt.(i) > 0 then
             pseudo.usum.(i) /. float_of_int pseudo.ucnt.(i)
           else avg_u)
          *. fu
        in
        let score = Float.max est_d 1e-12 *. Float.max est_u 1e-12 in
        if score > !best_score then begin
          best := i;
          best_score := score
        end
      end
    end
  done;
  if !most_frac = -1 then -1 else if have_history then !best else !most_frac

let most_fractional ~tol ~integer values =
  let best = ref (-1) in
  let best_frac = ref tol in
  Array.iteri
    (fun i v ->
      if integer.(i) then begin
        let frac = Float.abs (v -. Float.round v) in
        if frac > !best_frac then begin
          best := i;
          best_frac := frac
        end
      end)
    values;
  !best

(* ------------------------------------------------------------------ *)
(* Engine-specific node evaluation                                     *)

(* An evaluator owns whatever per-worker solver state its engine needs.
   [ev_solve] materialized-bounds -> LP result; [ev_snap] the basis to
   hand to the children of the node just solved (None for Tableau). *)
type evaluator = {
  ev_solve : node -> lb:float array -> ub:float array -> Simplex.result;
  ev_snap : unit -> Revised.snapshot option;
}

let tableau_evaluator ~deadline model =
  {
    ev_solve =
      (fun _nd ~lb ~ub -> Simplex.solve_with_bounds ~deadline model ~lb ~ub);
    ev_snap = (fun () -> None);
  }

(* The revised evaluator tracks which snapshot context the solver is in:
   popping a node whose [nsnap] is physically the basis we are already
   at (the common first-child-after-parent case) skips the O(m^3)
   refactorization entirely, and the dual simplex starts from the
   parent's optimum. *)
let revised_evaluator ~deadline solver =
  let last_snap : Revised.snapshot option ref = ref None in
  let solver_snap = ref None in
  {
    ev_solve =
      (fun nd ~lb ~ub ->
        Revised.set_bounds solver ~lb ~ub;
        let warm =
          match nd.nsnap with
          | None -> false
          | Some s when
              (match !last_snap with Some l -> l == s | None -> false) ->
            true (* already in this context; current basis is dual feasible *)
          | Some s ->
            last_snap := nd.nsnap;
            Revised.load_basis solver s
        in
        solver_snap := None;
        let r =
          if warm then Revised.solve_warm ~deadline solver
          else Revised.solve_fresh ~deadline solver
        in
        (match r with
        | Simplex.Optimal _ ->
          (* The solver now sits at this node's optimum. *)
          ()
        | _ -> last_snap := None);
        r);
    ev_snap =
      (fun () ->
        match !solver_snap with
        | Some s -> Some s
        | None ->
          let s = Revised.save_basis solver in
          solver_snap := Some s;
          last_snap := Some s;
          Some s);
  }

(* Strong branching at the root: actually solve both children of each
   candidate (most fractional first, capped) and seed the pseudo-cost
   accounts with the observed per-unit degradations. An infeasible or
   cut-off child is recorded as a large degradation — branching there
   closes the subtree outright. *)
let strong_branch_cap = 8
let infeasible_degradation = 1e7

let strong_branch ~deadline ~tol ~integer ~base_lb ~base_ub ~sign ~root_key
    solver pseudo values =
  let n = Array.length values in
  let cands = ref [] in
  for i = n - 1 downto 0 do
    if integer.(i) then begin
      let frac = Float.abs (values.(i) -. Float.round values.(i)) in
      if frac > tol then cands := (frac, i) :: !cands
    end
  done;
  let cands =
    List.sort (fun (fa, ia) (fb, ib) -> compare (-.fa, ia) (-.fb, ib)) !cands
  in
  let cands = List.filteri (fun k _ -> k < strong_branch_cap) cands in
  let snap0 = Revised.save_basis solver in
  let lb = Array.copy base_lb and ub = Array.copy base_ub in
  let probe () =
    Revised.set_bounds solver ~lb ~ub;
    Revised.solve_warm ~deadline solver
  in
  List.iter
    (fun (_, v) ->
      let x = values.(v) in
      let floor_v = Float.floor x in
      let fd = x -. floor_v and fu = floor_v +. 1. -. x in
      (* Down child. *)
      ub.(v) <- floor_v;
      let d_down =
        if not (Revised.load_basis solver snap0) then None
        else
          match probe () with
          | Simplex.Optimal { objective; _ } ->
            Some (Float.max 0. ((sign *. objective) -. root_key))
          | Simplex.Infeasible -> Some infeasible_degradation
          | Simplex.Unbounded | Simplex.Limit -> None
      in
      ub.(v) <- base_ub.(v);
      (* Up child. *)
      lb.(v) <- floor_v +. 1.;
      let d_up =
        if not (Revised.load_basis solver snap0) then None
        else
          match probe () with
          | Simplex.Optimal { objective; _ } ->
            Some (Float.max 0. ((sign *. objective) -. root_key))
          | Simplex.Infeasible -> Some infeasible_degradation
          | Simplex.Unbounded | Simplex.Limit -> None
      in
      lb.(v) <- base_lb.(v);
      (match d_down with
      | Some d when fd > 1e-9 ->
        pseudo.dsum.(v) <- pseudo.dsum.(v) +. (d /. fd);
        pseudo.dcnt.(v) <- pseudo.dcnt.(v) + 1
      | _ -> ());
      match d_up with
      | Some d when fu > 1e-9 ->
        pseudo.usum.(v) <- pseudo.usum.(v) +. (d /. fu);
        pseudo.ucnt.(v) <- pseudo.ucnt.(v) + 1
      | _ -> ())
    cands;
  (* Leave the solver back at the root basis and bounds. *)
  Revised.set_bounds solver ~lb:base_lb ~ub:base_ub;
  ignore (Revised.load_basis solver snap0);
  snap0

(* ------------------------------------------------------------------ *)
(* Shared setup                                                        *)

type problem = {
  model : Lp.t;
  n : int;
  base_lb : float array;
  base_ub : float array;
  integer : bool array;
  sign : float;  (* key = sign * user objective, minimized *)
}

let problem_of_model model =
  let n = Lp.num_vars model in
  let base_lb = Lp.lb_array model in
  let base_ub = Lp.ub_array model in
  let integer = Lp.integer_array model in
  Array.iteri
    (fun i isint ->
      if isint && not (Float.is_finite base_ub.(i)) then
        invalid_arg "Branch_bound.solve: integer variables need finite bounds")
    integer;
  let sign =
    match Lp.objective model with Lp.Minimize -> 1. | Maximize -> -1.
  in
  { model; n; base_lb; base_ub; integer; sign }

(* ------------------------------------------------------------------ *)
(* Sequential search (jobs = 1)                                        *)

let solve_seq ~node_limit ~deadline ~tol ~engine p =
  let { model; n = _; base_lb; base_ub; integer; sign } = p in
  let incumbent = ref None in
  let incumbent_key = ref infinity in
  let nodes = ref 0 in
  let exhausted = ref false in
  let heap = Heap.create () in
  let pseudo = pseudo_create p.n in
  let solver =
    match engine with
    | Tableau -> None
    | Revised ->
      Some
        (Revised.make ~goal:(Lp.objective model) ~obj:(Lp.obj_coeffs model)
           ~lb:base_lb ~ub:base_ub ~rows:(Lp.rows model) ())
  in
  let ev =
    match solver with
    | None -> tableau_evaluator ~deadline model
    | Some s -> revised_evaluator ~deadline s
  in
  let choose values =
    match engine with
    | Tableau -> most_fractional ~tol ~integer values
    | Revised -> choose_branch_pc ~tol ~integer pseudo values
  in
  let lbbuf = Array.copy base_lb and ubbuf = Array.copy base_ub in
  let evaluate nd =
    incr nodes;
    Array.blit base_lb 0 lbbuf 0 p.n;
    Array.blit base_ub 0 ubbuf 0 p.n;
    materialize nd lbbuf ubbuf;
    match ev.ev_solve nd ~lb:lbbuf ~ub:ubbuf with
    | Simplex.Infeasible -> `Pruned
    | Simplex.Unbounded -> `Unbounded
    | Simplex.Limit ->
      (* The LP hit its iteration cap or the deadline: the node is
         unresolved, not infeasible. Give up on proving optimality but
         never prune the subtree as if it were empty. *)
      exhausted := true;
      `Pruned
    | Simplex.Optimal { objective; values } ->
      let key = sign *. objective in
      pseudo_update pseudo nd key;
      if key >= !incumbent_key -. 1e-9 then `Pruned
      else begin
        match choose values with
        | -1 ->
          incumbent := Some (objective, values);
          incumbent_key := key;
          `Integer
        | branch_var -> `Branch (key, branch_var, values)
      end
  in
  let unbounded = ref false in
  (match evaluate root_node with
  | `Pruned | `Integer -> ()
  | `Unbounded -> unbounded := true
  | `Branch (key, var, values) ->
    (match (engine, solver) with
    | Revised, Some s ->
      ignore
        (strong_branch ~deadline ~tol ~integer ~base_lb ~base_ub ~sign
           ~root_key:key s pseudo values)
    | _ -> ());
    (* Re-pick the branching variable with the seeded pseudo-costs. *)
    let var =
      match engine with
      | Tableau -> var
      | Revised -> (
        match choose values with -1 -> var | v -> v)
    in
    let snap = ev.ev_snap () in
    let d, u = make_children root_node ~key ~var ~value:values.(var) snap in
    Heap.push heap key d;
    Heap.push heap key u);
  if not !unbounded then begin
    let continue_ = ref true in
    while !continue_ do
      if !nodes >= node_limit || Unix.gettimeofday () > deadline then begin
        exhausted := true;
        continue_ := false
      end
      else begin
        match Heap.pop heap with
        | None -> continue_ := false
        | Some (key, nd) ->
          if key >= !incumbent_key -. 1e-9 then
            (* Best-first: every remaining node is at least as bad. *)
            continue_ := false
          else begin
            match evaluate nd with
            | `Pruned | `Integer -> ()
            | `Unbounded -> ()
            | `Branch (child_key, var, values) ->
              let snap = ev.ev_snap () in
              let d, u =
                make_children nd ~key:child_key ~var ~value:values.(var) snap
              in
              Heap.push heap child_key d;
              Heap.push heap child_key u
          end
      end
    done
  end;
  if Unix.gettimeofday () > deadline then exhausted := true;
  if !unbounded then Unbounded
  else begin
    match !incumbent with
    | Some (objective, values) ->
      let sol =
        { objective; values; proved_optimal = not !exhausted; nodes = !nodes }
      in
      if !exhausted then Feasible sol else Optimal sol
    | None -> if !exhausted then Node_limit else Infeasible
  end

(* ------------------------------------------------------------------ *)
(* Parallel search (jobs > 1)                                          *)

(* Per-worker best-first heaps behind mutexes, work stealing from the
   next worker over, a CAS-updated shared incumbent and an atomic
   outstanding-node counter for termination. The root (plus strong
   branching) is solved sequentially, so `Unbounded` can only arise
   there. Node counts are nondeterministic under work stealing, but the
   incumbent objective matches the sequential solve whenever the search
   runs to completion. *)
let solve_par ~node_limit ~deadline ~tol ~engine ~jobs p =
  let { model; n; base_lb; base_ub; integer; sign } = p in
  let root_solver =
    Revised.make ~goal:(Lp.objective model) ~obj:(Lp.obj_coeffs model)
      ~lb:base_lb ~ub:base_ub ~rows:(Lp.rows model) ()
  in
  let pseudo0 = pseudo_create n in
  let root_result =
    match engine with
    | Revised -> Revised.solve_fresh ~deadline root_solver
    | Tableau -> Simplex.solve_with_bounds ~deadline model ~lb:base_lb ~ub:base_ub
  in
  match root_result with
  | Simplex.Unbounded -> Unbounded
  | Simplex.Infeasible -> Infeasible
  | Simplex.Limit -> Node_limit
  | Simplex.Optimal { objective; values } -> (
    let root_key = sign *. objective in
    match most_fractional ~tol ~integer values with
    | -1 ->
      Optimal
        { objective; values; proved_optimal = true; nodes = 1 }
    | mf_var ->
      let root_snap =
        match engine with
        | Tableau -> None
        | Revised ->
          Some
            (strong_branch ~deadline ~tol ~integer ~base_lb ~base_ub ~sign
               ~root_key root_solver pseudo0 values)
      in
      let var =
        match engine with
        | Tableau -> mf_var
        | Revised -> (
          match choose_branch_pc ~tol ~integer pseudo0 values with
          | -1 -> mf_var
          | v -> v)
      in
      let incumbent = Atomic.make None in
      let incumbent_key () =
        match Atomic.get incumbent with
        | None -> infinity
        | Some (k, _, _) -> k
      in
      let rec offer key objective values =
        let cur = Atomic.get incumbent in
        let cur_key =
          match cur with None -> infinity | Some (k, _, _) -> k
        in
        if key < cur_key -. 1e-9 then
          if not (Atomic.compare_and_set incumbent cur
                    (Some (key, objective, values)))
          then offer key objective values
      in
      let nodes = Atomic.make 1 (* root *) in
      let outstanding = Atomic.make 0 in
      let stop = Atomic.make false in
      let exhausted = Atomic.make false in
      let heaps = Array.init jobs (fun _ -> Heap.create ()) in
      let locks = Array.init jobs (fun _ -> Mutex.create ()) in
      let push wid key nd =
        Atomic.incr outstanding;
        Mutex.lock locks.(wid);
        Heap.push heaps.(wid) key nd;
        Mutex.unlock locks.(wid)
      in
      let try_pop wid =
        Mutex.lock locks.(wid);
        let r = Heap.pop heaps.(wid) in
        Mutex.unlock locks.(wid);
        r
      in
      let pop_any wid =
        match try_pop wid with
        | Some _ as r -> r
        | None ->
          let r = ref None in
          let k = ref 1 in
          while !r = None && !k < jobs do
            r := try_pop ((wid + !k) mod jobs);
            incr k
          done;
          !r
      in
      let d, u =
        make_children root_node ~key:root_key ~var ~value:values.(var)
          root_snap
      in
      push 0 root_key d;
      push (1 mod jobs) root_key u;
      let worker wid =
        let pseudo = pseudo_copy pseudo0 in
        let ev =
          match engine with
          | Tableau -> tableau_evaluator ~deadline model
          | Revised ->
            revised_evaluator ~deadline (Revised.clone root_solver)
        in
        let lbbuf = Array.copy base_lb and ubbuf = Array.copy base_ub in
        let process nd key =
          if key >= incumbent_key () -. 1e-9 then ()
          else begin
            let c = Atomic.fetch_and_add nodes 1 in
            if c >= node_limit then begin
              Atomic.set exhausted true;
              Atomic.set stop true
            end
            else begin
              Array.blit base_lb 0 lbbuf 0 n;
              Array.blit base_ub 0 ubbuf 0 n;
              materialize nd lbbuf ubbuf;
              match ev.ev_solve nd ~lb:lbbuf ~ub:ubbuf with
              | Simplex.Infeasible | Simplex.Unbounded -> ()
              | Simplex.Limit -> Atomic.set exhausted true
              | Simplex.Optimal { objective; values } -> (
                let child_key = sign *. objective in
                pseudo_update pseudo nd child_key;
                if child_key >= incumbent_key () -. 1e-9 then ()
                else
                  let bvar =
                    match engine with
                    | Tableau -> most_fractional ~tol ~integer values
                    | Revised -> choose_branch_pc ~tol ~integer pseudo values
                  in
                  match bvar with
                  | -1 -> offer child_key objective values
                  | bvar ->
                    let snap = ev.ev_snap () in
                    let d, u =
                      make_children nd ~key:child_key ~var:bvar
                        ~value:values.(bvar) snap
                    in
                    push wid child_key d;
                    push wid child_key u)
            end
          end
        in
        let running = ref true in
        while !running do
          if Atomic.get stop then running := false
          else if Unix.gettimeofday () > deadline then begin
            Atomic.set exhausted true;
            Atomic.set stop true
          end
          else begin
            match pop_any wid with
            | Some (key, nd) ->
              process nd key;
              Atomic.decr outstanding
            | None ->
              if Atomic.get outstanding = 0 then running := false
              else Domain.cpu_relax ()
          end
        done
      in
      ignore (Resched_util.Domain_pool.run ~jobs worker);
      if Unix.gettimeofday () > deadline then Atomic.set exhausted true;
      let exhausted = Atomic.get exhausted in
      let node_count = Atomic.get nodes in
      (match Atomic.get incumbent with
      | Some (_, objective, values) ->
        let sol =
          { objective; values; proved_optimal = not exhausted;
            nodes = node_count }
        in
        if exhausted then Feasible sol else Optimal sol
      | None -> if exhausted then Node_limit else Infeasible))

(* ------------------------------------------------------------------ *)

let default_engine = Revised

let solve ?(node_limit = 1_000_000) ?time_limit
    ?(integrality_tolerance = 1e-6) ?(jobs = 1) ?(engine = default_engine)
    model =
  let deadline =
    match time_limit with
    | None -> infinity
    | Some s ->
      if s <= 0. then invalid_arg "Branch_bound.solve: time_limit";
      Unix.gettimeofday () +. s
  in
  let p = problem_of_model model in
  let jobs = Stdlib.max 1 jobs in
  if jobs = 1 then
    solve_seq ~node_limit ~deadline ~tol:integrality_tolerance ~engine p
  else
    solve_par ~node_limit ~deadline ~tol:integrality_tolerance ~engine ~jobs p
