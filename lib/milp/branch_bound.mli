(** Branch-and-bound MILP solver.

    Best-LP-bound-first search. The default [Revised] engine solves each
    node with the bounded-variable revised simplex ({!Revised}),
    warm-starting children from the parent's basis (a child differs by
    one bound, so a few dual pivots suffice), and branches on
    pseudo-costs seeded by strong branching at the root. The [Tableau]
    engine is the original dense two-phase solver with most-fractional
    branching, kept as a property-tested oracle: at [jobs = 1] it
    reproduces the legacy node order exactly.

    With [jobs > 1] the search runs on a domain pool: per-worker
    best-first heaps with work stealing and a CAS-updated shared
    incumbent. Node counts are then nondeterministic, but the returned
    objective agrees with the sequential solve whenever the search
    completes. [jobs = 1] never spawns a domain and is deterministic
    run-to-run.

    Exact when it terminates within the node budget; otherwise returns
    the incumbent with [proved_optimal = false] (the behaviour the IS-k
    baseline relies on for large chunks). An LP relaxation cut short by
    its iteration cap or the deadline ({!Simplex.Limit}) marks the
    search exhausted — it is never treated as an infeasibility proof, so
    unsolved subtrees can no longer be silently pruned. *)

type solution = {
  objective : float;
  values : float array;
  proved_optimal : bool;
  nodes : int;  (** LP relaxations solved *)
}

type result =
  | Optimal of solution  (** [proved_optimal] is true *)
  | Feasible of solution  (** node budget hit with an incumbent *)
  | Infeasible
  | Unbounded
  | Node_limit  (** node budget hit before any integer solution *)

type engine =
  | Revised  (** warm-started revised simplex, pseudo-cost branching *)
  | Tableau  (** legacy dense tableau oracle, most-fractional branching *)

val default_engine : engine
(** [Revised]. *)

val solve : ?node_limit:int -> ?time_limit:float ->
  ?integrality_tolerance:float -> ?jobs:int -> ?engine:engine -> Lp.t ->
  result
(** [node_limit] defaults to 1_000_000; [time_limit] (wall-clock seconds,
    default unlimited) turns the solver into an anytime procedure;
    [integrality_tolerance] to 1e-6; [jobs] (default 1) to the number of
    worker domains; [engine] to {!default_engine}. Integer variables
    must have finite bounds. *)

val is_integral : ?tolerance:float -> Lp.t -> float array -> bool
(** Do the given values satisfy all the model's integrality markers? *)
