(* Revised simplex with native bounded variables.

   Where {!Simplex} turns every finite upper bound into an extra tableau
   row (a model with n variables and m rows becomes an (m+n)-row
   tableau), this engine keeps bounds in the ratio test: a nonbasic
   variable sits At_lower or At_upper and can cross to the opposite
   bound without a basis change (a "bound flip"). Each constraint row
   carries one logical variable (slack, surplus or fixed-at-zero for
   equalities), so the basis is always m x m and is maintained as an LU
   factorization plus an eta file ({!Basis}). Rows are equilibrated at
   load time (exact power-of-two scaling to unit max coefficient), which
   keeps the big-M scheduling models of [Ilp_exact] numerically tame.

   Three solve modes:
   - primal phase 1: composite (piecewise-linear) infeasibility
     minimization from the all-logical basis, with relaxed bounds on the
     infeasible basics and +-1 costs recomputed every iteration;
   - primal phase 2: standard bounded-variable primal;
   - dual: for warm starts. A branch-and-bound child differs from its
     parent by one variable bound, so the parent's optimal basis stays
     dual feasible and a handful of dual pivots restore primal
     feasibility — no two-phase solve from scratch.

   All loops are deterministic: Dantzig pricing with smallest-index tie
   breaks, switching to Bland's rule while the objective stalls. *)

let feas_tol = 1e-7
let dual_tol = 1e-7
let pivot_tol = 1e-9
let ratio_tol = 1e-9

type status = At_lower | At_upper | Basic

type t = {
  n : int;  (* structural variables *)
  m : int;  (* rows = logical variables *)
  ncols : int;  (* n + m *)
  col_idx : int array array;
  col_val : float array array;
  c : float array;  (* minimization costs; logicals 0 *)
  obj_sign : float;  (* user objective = obj_sign * (c . x) *)
  rhs : float array;
  lb : float array;  (* ncols; structural entries mutated per B&B node *)
  ub : float array;
  status : status array;
  basis : int array;  (* m; column basic in each position *)
  x : float array;  (* ncols *)
  fac : Basis.t;
  y : float array;  (* m; dual prices scratch *)
  w : float array;  (* m; FTRAN scratch *)
  rho : float array;  (* m; BTRAN row scratch *)
  pcost : float array;  (* ncols; phase-1 costs *)
  mutable infeas : float;
  mutable pivots : int;  (* cumulative *)
  mutable last_pivots : int;  (* pivots of the most recent solve *)
  mutable factored : bool;
}

type snapshot = { s_status : status array; s_basis : int array }

let make ?(refactor_every = 48) ~goal ~obj ~lb ~ub ~rows () =
  let n = Array.length obj in
  let m = Array.length rows in
  let ncols = n + m in
  (* Row equilibration: big-M scheduling rows mix coefficients of 1 and
     ~1e5, which makes B^-1 rows tiny along some directions and forces
     the dual ratio test into microscopic pivots. Scale each row by the
     power of two bringing its largest coefficient into [0.5, 1) — exact
     in floating point, so the solved x and objective are bit-unaffected
     by everything except pivot order. The row's logical column keeps
     coefficient 1 (the slack simply lives in scaled row units). *)
  let row_scale =
    Array.map
      (fun (terms, _, _) ->
        let amax =
          List.fold_left (fun a (_, cf) -> Float.max a (Float.abs cf)) 0. terms
        in
        if amax > 0. then ldexp 1. (-snd (Float.frexp amax)) else 1.)
      rows
  in
  let buckets = Array.make n [] in
  Array.iteri
    (fun i (terms, _, _) ->
      List.iter
        (fun (v, cf) -> buckets.(v) <- (i, row_scale.(i) *. cf) :: buckets.(v))
        terms)
    rows;
  let col_idx = Array.make ncols [||] and col_val = Array.make ncols [||] in
  for j = 0 to n - 1 do
    let entries = List.rev buckets.(j) in
    col_idx.(j) <- Array.of_list (List.map fst entries);
    col_val.(j) <- Array.of_list (List.map snd entries)
  done;
  let lb_all = Array.make ncols 0. and ub_all = Array.make ncols 0. in
  Array.blit lb 0 lb_all 0 n;
  Array.blit ub 0 ub_all 0 n;
  let rhs_arr = Array.make m 0. in
  Array.iteri
    (fun i (_, sense, rhs) ->
      col_idx.(n + i) <- [| i |];
      col_val.(n + i) <- [| 1. |];
      rhs_arr.(i) <- row_scale.(i) *. rhs;
      match sense with
      | Lp.Le ->
        lb_all.(n + i) <- 0.;
        ub_all.(n + i) <- infinity
      | Lp.Ge ->
        lb_all.(n + i) <- neg_infinity;
        ub_all.(n + i) <- 0.
      | Lp.Eq ->
        lb_all.(n + i) <- 0.;
        ub_all.(n + i) <- 0.)
    rows;
  let sign = match goal with Lp.Minimize -> 1. | Lp.Maximize -> -1. in
  let c = Array.make ncols 0. in
  for j = 0 to n - 1 do
    if not (Float.is_finite lb.(j)) then
      invalid_arg "Revised: variables must have a finite lower bound";
    c.(j) <- sign *. obj.(j)
  done;
  {
    n;
    m;
    ncols;
    col_idx;
    col_val;
    c;
    obj_sign = sign;
    rhs = rhs_arr;
    lb = lb_all;
    ub = ub_all;
    status = Array.make ncols At_lower;
    basis = Array.init m (fun i -> n + i);
    x = Array.make ncols 0.;
    fac = Basis.create ~refactor_every m;
    y = Array.make m 0.;
    w = Array.make m 0.;
    rho = Array.make m 0.;
    pcost = Array.make ncols 0.;
    infeas = 0.;
    pivots = 0;
    last_pivots = 0;
    factored = false;
  }

let of_model model =
  make ~goal:(Lp.objective model) ~obj:(Lp.obj_coeffs model)
    ~lb:(Lp.lb_array model) ~ub:(Lp.ub_array model) ~rows:(Lp.rows model) ()

(* Workers get their own mutable state; the sparse columns, costs and
   rhs are immutable after [make] and safely shared across domains. *)
let clone t =
  {
    t with
    lb = Array.copy t.lb;
    ub = Array.copy t.ub;
    status = Array.copy t.status;
    basis = Array.copy t.basis;
    x = Array.copy t.x;
    fac = Basis.create t.m;
    y = Array.make t.m 0.;
    w = Array.make t.m 0.;
    rho = Array.make t.m 0.;
    pcost = Array.make t.ncols 0.;
    infeas = 0.;
    factored = false;
  }

let set_bounds t ~lb ~ub =
  if Array.length lb <> t.n || Array.length ub <> t.n then
    invalid_arg "Revised.set_bounds: length mismatch";
  Array.blit lb 0 t.lb 0 t.n;
  Array.blit ub 0 t.ub 0 t.n

let save_basis t =
  { s_status = Array.copy t.status; s_basis = Array.copy t.basis }

let last_pivots t = t.last_pivots
let num_vars t = t.n

(* ------------------------------------------------------------------ *)
(* Linear algebra plumbing                                             *)

let refactor t =
  Basis.refactor t.fac ~column:(fun k ->
      let j = t.basis.(k) in
      (t.col_idx.(j), t.col_val.(j)));
  t.factored <- true

(* Nonbasic variables to their bounds, basic values by FTRAN. *)
let compute_primal t =
  for j = 0 to t.ncols - 1 do
    match t.status.(j) with
    | Basic -> ()
    | At_lower ->
      t.x.(j) <- (if Float.is_finite t.lb.(j) then t.lb.(j) else t.ub.(j))
    | At_upper ->
      t.x.(j) <- (if Float.is_finite t.ub.(j) then t.ub.(j) else t.lb.(j))
  done;
  Array.blit t.rhs 0 t.w 0 t.m;
  for j = 0 to t.ncols - 1 do
    if t.status.(j) <> Basic && t.x.(j) <> 0. then begin
      let idx = t.col_idx.(j) and v = t.col_val.(j) in
      let xj = t.x.(j) in
      Array.iteri (fun p r -> t.w.(r) <- t.w.(r) -. (v.(p) *. xj)) idx
    end
  done;
  Basis.ftran t.fac t.w;
  for pos = 0 to t.m - 1 do
    t.x.(t.basis.(pos)) <- t.w.(pos)
  done

let load_basis t { s_status; s_basis } =
  Array.blit s_status 0 t.status 0 t.ncols;
  Array.blit s_basis 0 t.basis 0 t.m;
  match refactor t with
  | () ->
    compute_primal t;
    true
  | exception Basis.Singular -> false

(* y = B^-T c_B, indexed by original row. *)
let prices t costs =
  for pos = 0 to t.m - 1 do
    t.y.(pos) <- costs.(t.basis.(pos))
  done;
  Basis.btran t.fac t.y

let col_dot t j v =
  let idx = t.col_idx.(j) and cv = t.col_val.(j) in
  let acc = ref 0. in
  Array.iteri (fun p r -> acc := !acc +. (cv.(p) *. v.(r))) idx;
  !acc

let fetch_column t j =
  Array.fill t.w 0 t.m 0.;
  let idx = t.col_idx.(j) and v = t.col_val.(j) in
  Array.iteri (fun p r -> t.w.(r) <- v.(p)) idx;
  Basis.ftran t.fac t.w

let fixed t j = t.ub.(j) -. t.lb.(j) < 1e-12

let objective_value t =
  let acc = ref 0. in
  for j = 0 to t.n - 1 do
    acc := !acc +. (t.c.(j) *. t.x.(j))
  done;
  !acc

(* Total violation of the true bounds by the basic variables, and the
   composite phase-1 cost row (+1 above ub, -1 below lb). *)
let refresh_pcost t =
  Array.fill t.pcost 0 t.ncols 0.;
  let infeas = ref 0. in
  for pos = 0 to t.m - 1 do
    let k = t.basis.(pos) in
    let xb = t.x.(k) in
    if xb < t.lb.(k) -. feas_tol then begin
      t.pcost.(k) <- -1.;
      infeas := !infeas +. (t.lb.(k) -. xb)
    end
    else if xb > t.ub.(k) +. feas_tol then begin
      t.pcost.(k) <- 1.;
      infeas := !infeas +. (xb -. t.ub.(k))
    end
  done;
  t.infeas <- !infeas

(* ------------------------------------------------------------------ *)
(* Primal iterations (phases 1 and 2)                                  *)

(* Entering column: Dantzig (largest reduced-cost violation, ties to the
   smallest index) or Bland (first violating index) while stalling. *)
let choose_entering t costs ~bland =
  let best = ref (-1) and best_score = ref dual_tol in
  (try
     for j = 0 to t.ncols - 1 do
       if t.status.(j) <> Basic && not (fixed t j) then begin
         let d = costs.(j) -. col_dot t j t.y in
         let score =
           match t.status.(j) with
           | At_lower -> if d < -.dual_tol then -.d else 0.
           | At_upper -> if d > dual_tol then d else 0.
           | Basic -> 0.
         in
         if score > 0. then
           if bland then begin
             best := j;
             raise Exit
           end
           else if score > !best_score then begin
             best := j;
             best_score := score
           end
       end
     done
   with Exit -> ());
  !best

(* Bounded-variable ratio test. [dir] is the entering variable's motion
   (+1 from At_lower, -1 from At_upper); basic position [pos] moves by
   [-dir * w.(pos)] per unit step. In phase 1, an infeasible basic
   moving toward its violated bound blocks there (where its composite
   cost flips to zero) and is unblocked on its relaxed side. Returns
   [Some (step, leaving_pos, bound)] with [leaving_pos = -1] for a bound
   flip of the entering variable, or [None] when unbounded. *)
let ratio_test t ~dir ~phase1 q ~bland =
  let limit = ref (t.ub.(q) -. t.lb.(q)) in
  let leaving = ref (-1) and leave_bound = ref nan and leave_w = ref 0. in
  for pos = 0 to t.m - 1 do
    let wi = t.w.(pos) in
    if Float.abs wi > pivot_tol then begin
      let delta = -.dir *. wi in
      let k = t.basis.(pos) in
      let xb = t.x.(k) in
      let bound =
        if phase1 then
          if delta > 0. then
            if xb < t.lb.(k) -. feas_tol then t.lb.(k)
            else if xb <= t.ub.(k) +. feas_tol then t.ub.(k)
            else infinity
          else if xb > t.ub.(k) +. feas_tol then t.ub.(k)
          else if xb >= t.lb.(k) -. feas_tol then t.lb.(k)
          else neg_infinity
        else if delta > 0. then t.ub.(k)
        else t.lb.(k)
      in
      if Float.is_finite bound then begin
        let step = Float.max 0. ((bound -. xb) /. delta) in
        let better =
          step < !limit -. ratio_tol
          || (step < !limit +. ratio_tol
             && !leaving >= 0
             &&
             if bland then k < t.basis.(!leaving)
             else Float.abs wi > Float.abs !leave_w)
        in
        if better then begin
          limit := step;
          leaving := pos;
          leave_bound := bound;
          leave_w := wi
        end
      end
    end
  done;
  if Float.is_finite !limit then Some (!limit, !leaving, !leave_bound)
  else None

let leave_status t k bound =
  if Float.is_finite t.lb.(k) && Float.abs (bound -. t.lb.(k)) <= feas_tol
  then At_lower
  else At_upper

let apply_primal_step t ~q ~dir ~step ~leaving ~leave_bound =
  for pos = 0 to t.m - 1 do
    let k = t.basis.(pos) in
    t.x.(k) <- t.x.(k) -. (dir *. step *. t.w.(pos))
  done;
  if leaving < 0 then begin
    (* Bound flip: no basis change. *)
    t.x.(q) <- (if dir > 0. then t.ub.(q) else t.lb.(q));
    t.status.(q) <- (if dir > 0. then At_upper else At_lower);
    false
  end
  else begin
    t.x.(q) <- t.x.(q) +. (dir *. step);
    let out = t.basis.(leaving) in
    t.x.(out) <- leave_bound;
    t.status.(out) <- leave_status t out leave_bound;
    t.basis.(leaving) <- q;
    t.status.(q) <- Basic;
    t.pivots <- t.pivots + 1;
    Basis.update t.fac ~row:leaving ~w:t.w
  end

let iteration_cap t = 2000 + (64 * (t.m + t.ncols))

let primal t ~phase1 ~deadline =
  let cap = iteration_cap t in
  let iter = ref 0 in
  let bland = ref false and stall = ref 0 and last = ref infinity in
  let result = ref None in
  while !result = None do
    incr iter;
    if !iter > cap then result := Some `Limit
    else if !iter land 31 = 0 && Unix.gettimeofday () > deadline then
      result := Some `Limit
    else begin
      if phase1 then refresh_pcost t;
      if phase1 && t.infeas <= feas_tol then result := Some `Feasible
      else begin
        let measure = if phase1 then t.infeas else objective_value t in
        if measure < !last -. 1e-12 then begin
          stall := 0;
          last := measure;
          bland := false
        end
        else begin
          incr stall;
          if !stall > (2 * t.m) + 32 then bland := true
        end;
        let costs = if phase1 then t.pcost else t.c in
        prices t costs;
        match choose_entering t costs ~bland:!bland with
        | -1 ->
          result :=
            Some
              (if not phase1 then `Optimal
               else if t.infeas <= feas_tol then `Feasible
               else `Infeasible)
        | q ->
          let dir = match t.status.(q) with At_upper -> -1. | _ -> 1. in
          fetch_column t q;
          (match ratio_test t ~dir ~phase1 q ~bland:!bland with
          | None ->
            (* A genuinely unbounded phase-1 ray cannot decrease the
               infeasibility forever; treat it as numerical trouble. *)
            result := Some (if phase1 then `Limit else `Unbounded)
          | Some (step, leaving, leave_bound) ->
            if apply_primal_step t ~q ~dir ~step ~leaving ~leave_bound
            then begin
              match refactor t with
              | () -> compute_primal t
              | exception Basis.Singular -> result := Some `Limit
            end)
      end
    end
  done;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Dual iterations (warm starts)                                       *)

(* Warm starts only: restore primal feasibility from a dual-feasible
   basis. Capped well below the primal's budget — a warm start that
   needs thousands of pivots is not a warm start, and the caller falls
   back to {!solve_fresh} on [`Limit]. *)
let dual_iteration_cap t = 100 + (4 * t.m)

let dual t ~deadline =
  let cap = dual_iteration_cap t in
  let iter = ref 0 and bland = ref false and stall = ref 0 in
  let last = ref infinity in
  let viol0 = ref infinity in
  let result = ref None in
  while !result = None do
    incr iter;
    if !iter > cap then result := Some `Limit
    else if !iter land 31 = 0 && Unix.gettimeofday () > deadline then
      result := Some `Limit
    else begin
      (* Leaving: the basic variable most outside its bounds. *)
      let r = ref (-1) and viol = ref feas_tol and total = ref 0. in
      for pos = 0 to t.m - 1 do
        let k = t.basis.(pos) in
        let v =
          if t.x.(k) > t.ub.(k) then t.x.(k) -. t.ub.(k)
          else if t.x.(k) < t.lb.(k) then t.lb.(k) -. t.x.(k)
          else 0.
        in
        total := !total +. v;
        if
          v > !viol
          || (!bland && v > feas_tol && (!r = -1 || t.basis.(pos) < t.basis.(!r)))
        then begin
          r := pos;
          viol := v
        end
      done;
      if !viol0 = infinity then viol0 := !total;
      if !r = -1 then result := Some `Optimal
      else if !total > 100. *. (!viol0 +. 1.) then
        (* The iterate is drifting away from feasibility instead of
           toward it (ill-conditioned pivots); a fresh two-phase solve
           is cheaper than riding this out. *)
        result := Some `Limit
      else begin
        if !viol < !last -. 1e-12 then begin
          stall := 0;
          last := !viol
        end
        else begin
          incr stall;
          if !stall > (2 * t.m) + 32 then bland := true
        end;
        let pos = !r in
        let out = t.basis.(pos) in
        let above = t.x.(out) > t.ub.(out) in
        (* rho = B^-T e_pos; alpha_j = rho . A_j. *)
        Array.fill t.rho 0 t.m 0.;
        t.rho.(pos) <- 1.;
        Basis.btran t.fac t.rho;
        prices t t.c;
        (* Sign-eligible columns and their dual ratios. [above] means the
           leaving variable exits at its upper bound (d'_out <= 0), so
           the dual step d_q / alpha_q must be >= 0 for the listed
           status/alpha sign combinations; symmetric below. *)
        let ratio_of j =
          if t.status.(j) = Basic || fixed t j then None
          else
            let alpha = col_dot t j t.rho in
            if Float.abs alpha <= pivot_tol then None
            else
              let ok =
                match (t.status.(j), above) with
                | At_lower, true -> alpha > 0.
                | At_upper, true -> alpha < 0.
                | At_lower, false -> alpha < 0.
                | At_upper, false -> alpha > 0.
                | Basic, _ -> false
              in
              if not ok then None
              else
                let d = t.c.(j) -. col_dot t j t.y in
                let ratio = if above then d /. alpha else -.(d /. alpha) in
                Some (alpha, Float.max 0. ratio)
        in
        (* Pass 1: the textbook minimum ratio. *)
        let theta = ref infinity in
        for j = 0 to t.ncols - 1 do
          match ratio_of j with
          | Some (_, ratio) -> if ratio < !theta then theta := ratio
          | None -> ()
        done;
        if !theta = infinity then result := Some `Infeasible
        else begin
          (* Pass 2 (Harris-style): any column within a dual-feasibility
             tolerance of the minimum ratio is an acceptable entering
             candidate; among those take the largest |alpha| — a
             microscopic pivot element turns a sub-unit bound violation
             into a 1e4-unit step that throws dozens of basics out of
             their bounds. Under Bland's rule take the smallest index. *)
          let window = !theta +. dual_tol in
          let q = ref (-1) and best_alpha = ref 0. in
          (try
             for j = 0 to t.ncols - 1 do
               match ratio_of j with
               | Some (alpha, ratio) when ratio <= window ->
                 if !bland then begin
                   q := j;
                   raise Exit
                 end
                 else if Float.abs alpha > Float.abs !best_alpha then begin
                   q := j;
                   best_alpha := alpha
                 end
               | _ -> ()
             done
           with Exit -> ());
          let q = !q in
          fetch_column t q;
          if Float.abs t.w.(pos) < pivot_tol then
            (* Disagreement between rho-pricing and the FTRAN column:
               refactorize and retry this iteration. *)
            if Basis.eta_count t.fac = 0 then result := Some `Limit
            else begin
              match refactor t with
              | () -> compute_primal t
              | exception Basis.Singular -> result := Some `Limit
            end
          else begin
            let target = if above then t.ub.(out) else t.lb.(out) in
            let delta = (t.x.(out) -. target) /. t.w.(pos) in
            for p = 0 to t.m - 1 do
              let k = t.basis.(p) in
              t.x.(k) <- t.x.(k) -. (delta *. t.w.(p))
            done;
            t.x.(q) <- t.x.(q) +. delta;
            t.x.(out) <- target;
            t.status.(out) <- leave_status t out target;
            t.basis.(pos) <- q;
            t.status.(q) <- Basic;
            t.pivots <- t.pivots + 1;
            if Basis.update t.fac ~row:pos ~w:t.w then begin
              match refactor t with
              | () -> compute_primal t
              | exception Basis.Singular -> result := Some `Limit
            end
          end
        end
      end
    end
  done;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Solves                                                              *)

let solution t =
  let values = Array.sub t.x 0 t.n in
  Simplex.Optimal
    { Simplex.objective = t.obj_sign *. objective_value t; values }

let bad_box t =
  let bad = ref false in
  for j = 0 to t.n - 1 do
    if t.lb.(j) > t.ub.(j) +. 1e-9 then bad := true
  done;
  !bad

let solve_fresh ?(deadline = infinity) t =
  let p0 = t.pivots in
  let result =
    if bad_box t then Simplex.Infeasible
    else begin
      for j = 0 to t.n - 1 do
        t.status.(j) <- At_lower
      done;
      for i = 0 to t.m - 1 do
        t.basis.(i) <- t.n + i;
        t.status.(t.n + i) <- Basic
      done;
      match refactor t with
      | exception Basis.Singular -> Simplex.Limit (* cannot happen: B = I *)
      | () -> (
        compute_primal t;
        refresh_pcost t;
        let feasible =
          if t.infeas <= feas_tol then `Feasible
          else primal t ~phase1:true ~deadline
        in
        match feasible with
        | `Infeasible -> Simplex.Infeasible
        | `Limit | `Unbounded | `Optimal -> Simplex.Limit
        | `Feasible -> (
          match primal t ~phase1:false ~deadline with
          | `Optimal -> solution t
          | `Unbounded -> Simplex.Unbounded
          | `Limit | `Feasible | `Infeasible -> Simplex.Limit))
    end
  in
  t.last_pivots <- t.pivots - p0;
  result

(* Re-solve after a bound change, from the current basis: the basis is
   still dual feasible, so dual pivots restore primal feasibility. A
   final (usually zero-iteration) primal phase 2 certifies optimality
   independently of the warm start's dual-feasibility assumption. *)
let solve_warm ?(deadline = infinity) t =
  if not t.factored then solve_fresh ~deadline t
  else if bad_box t then Simplex.Infeasible
  else begin
    let p0 = t.pivots in
    compute_primal t;
    match dual t ~deadline with
    | `Infeasible ->
      t.last_pivots <- t.pivots - p0;
      Simplex.Infeasible
    | `Limit ->
      t.last_pivots <- t.pivots - p0;
      solve_fresh ~deadline t
    | `Optimal -> (
      match primal t ~phase1:false ~deadline with
      | `Optimal ->
        t.last_pivots <- t.pivots - p0;
        solution t
      | `Unbounded ->
        t.last_pivots <- t.pivots - p0;
        Simplex.Unbounded
      | `Limit | `Feasible | `Infeasible ->
        t.last_pivots <- t.pivots - p0;
        solve_fresh ~deadline t)
  end

(* ------------------------------------------------------------------ *)
(* Drop-in entry points mirroring {!Simplex}                           *)

let solve_with_bounds ?deadline model ~lb ~ub =
  let n = Lp.num_vars model in
  if Array.length lb <> n || Array.length ub <> n then
    invalid_arg "Revised.solve_with_bounds: bounds length mismatch";
  let t =
    make ~goal:(Lp.objective model) ~obj:(Lp.obj_coeffs model) ~lb ~ub
      ~rows:(Lp.rows model) ()
  in
  solve_fresh ?deadline t

let solve model =
  solve_with_bounds model ~lb:(Lp.lb_array model) ~ub:(Lp.ub_array model)
