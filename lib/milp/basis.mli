(** LU-factorized simplex basis with product-form (eta) updates.

    Backs {!Revised}: one dense LU factorization with partial pivoting,
    then one eta matrix per pivot until the caller refactorizes. FTRAN
    and BTRAN are the two solves the revised simplex needs each
    iteration. *)

type t

exception Singular
(** Raised by {!refactor} when the basis columns are linearly dependent
    to working precision. *)

val create : ?refactor_every:int -> int -> t
(** [create m] allocates a basis handle for an [m]-row problem.
    [refactor_every] (default 48) bounds the eta file length before
    {!update} starts requesting refactorization. *)

val refactor : t -> column:(int -> int array * float array) -> unit
(** [refactor t ~column] factors the matrix whose basis position [k]
    holds the sparse column [column k] (parallel row-index/value arrays).
    Resets the eta file. Raises {!Singular} on dependent columns. *)

val ftran : t -> float array -> unit
(** [ftran t b] solves [B x = b] in place. Input is indexed by original
    constraint row, output by basis position. *)

val btran : t -> float array -> unit
(** [btran t c] solves [B^T y = c] in place. Input is indexed by basis
    position, output by original constraint row. *)

val update : t -> row:int -> w:float array -> bool
(** [update t ~row ~w] appends the eta for a pivot that replaced basis
    position [row] with a column whose basis-frame image is [w]
    (= [ftran] of the entering column). Returns [true] when the eta file
    is full or the pivot is small, i.e. the caller should refactorize. *)

val eta_count : t -> int
(** Etas applied since the last {!refactor} (for tests and stats). *)
