type var = int

type sense = Le | Ge | Eq

type objective = Minimize | Maximize

type row = { terms : (int * float) list; sense : sense; rhs : float }

type t = {
  goal : objective;
  mutable nvars : int;
  mutable obj : float list;  (* reversed *)
  mutable lb : float list;
  mutable ub : float list;
  mutable integer : bool list;
  mutable names : string list;
  mutable constraints : row list;  (* reversed *)
  mutable nrows : int;
}

let create ?(objective = Minimize) () =
  { goal = objective; nvars = 0; obj = []; lb = []; ub = []; integer = [];
    names = []; constraints = []; nrows = 0 }

let add_var t ?(lb = 0.) ?(ub = infinity) ?(integer = false) ?name ~obj () =
  if Float.is_nan lb || Float.is_nan ub then invalid_arg "Lp.add_var: NaN bound";
  if lb > ub then invalid_arg "Lp.add_var: lb > ub";
  let idx = t.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" idx in
  t.nvars <- idx + 1;
  t.obj <- obj :: t.obj;
  t.lb <- lb :: t.lb;
  t.ub <- ub :: t.ub;
  t.integer <- integer :: t.integer;
  t.names <- name :: t.names;
  idx

let add_binary t ?name ~obj () =
  add_var t ~lb:0. ~ub:1. ~integer:true ?name ~obj ()

let combine_terms terms =
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (v, c) ->
      let prev = try Hashtbl.find tbl v with Not_found -> 0. in
      Hashtbl.replace tbl v (prev +. c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0. then acc else (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let add_constraint t ?name:_ terms sense rhs =
  List.iter
    (fun ((v : var), _) ->
      if v < 0 || v >= t.nvars then
        invalid_arg "Lp.add_constraint: variable out of range")
    terms;
  t.constraints <- { terms = combine_terms terms; sense; rhs } :: t.constraints;
  t.nrows <- t.nrows + 1

let num_vars t = t.nvars
let num_constraints t = t.nrows
let objective t = t.goal

let rev_array l = Array.of_list (List.rev l)

let obj_coeffs t = rev_array t.obj

let nth_rev t l (v : var) =
  (* list is reversed: element for var v sits at position nvars-1-v *)
  List.nth l (t.nvars - 1 - v)

let var_lb t v = nth_rev t t.lb v
let var_ub t v = nth_rev t t.ub v
let var_is_integer t v = nth_rev t t.integer v
let var_name t v = nth_rev t t.names v

let lb_array t = rev_array t.lb
let ub_array t = rev_array t.ub
let integer_array t = rev_array t.integer

let var_of_index t i =
  if i < 0 || i >= t.nvars then invalid_arg "Lp.var_of_index: out of range";
  i

let rows t =
  rev_array t.constraints
  |> Array.map (fun r -> (r.terms, r.sense, r.rhs))

let pp ppf t =
  let names = rev_array t.names in
  let obj = obj_coeffs t in
  let goal = match t.goal with Minimize -> "minimize" | Maximize -> "maximize" in
  Format.fprintf ppf "%s" goal;
  Array.iteri
    (fun i c -> if c <> 0. then Format.fprintf ppf " %+g %s" c names.(i))
    obj;
  Format.fprintf ppf "@\nsubject to@\n";
  Array.iter
    (fun (terms, sense, rhs) ->
      List.iter
        (fun (v, c) -> Format.fprintf ppf " %+g %s" c names.(v))
        terms;
      let s = match sense with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf ppf " %s %g@\n" s rhs)
    (rows t);
  let lb = rev_array t.lb and ub = rev_array t.ub in
  let integer = rev_array t.integer in
  Array.iteri
    (fun i name ->
      Format.fprintf ppf "%g <= %s <= %g%s@\n" lb.(i) name ub.(i)
        (if integer.(i) then " (int)" else ""))
    names
