(** Bounded-variable revised simplex over an LU-factorized basis.

    The default LP engine behind {!Branch_bound}. Unlike {!Simplex} it
    never adds rows for finite upper bounds — a nonbasic variable sits
    at either bound and crosses to the other one via a bound flip in the
    ratio test — so the basis stays [m x m] for an [m]-row model, and it
    supports warm starts: after a single bound change the previous
    optimal basis is still dual feasible, and {!solve_warm} reaches the
    new optimum in a few dual-simplex pivots instead of a full two-phase
    solve. Results use {!Simplex.result} so callers can switch engines
    without re-matching. *)

type t
(** Mutable solver state: model data (shared, immutable) plus bounds,
    basis, factorization and iterate. One [t] per worker domain; use
    {!clone} to hand copies to other domains. *)

type snapshot
(** An immutable basis snapshot ([status] + [basis] arrays) taken by
    {!save_basis}; cheap to retain per branch-and-bound node. *)

val make :
  ?refactor_every:int ->
  goal:Lp.objective ->
  obj:float array ->
  lb:float array ->
  ub:float array ->
  rows:((int * float) list * Lp.sense * float) array ->
  unit ->
  t
(** Build solver state from raw arrays (same shape as
    [Simplex.solve_arrays]). Every variable needs a finite lower bound.
    [refactor_every] bounds the eta file length (default 48). *)

val of_model : Lp.t -> t
(** [make] from a model's own goal, objective, bounds and rows. *)

val clone : t -> t
(** Copy with fresh mutable state (bounds, basis, iterate, scratch);
    the sparse column data is shared. The clone starts unfactored, so
    its first solve must be {!solve_fresh} or go through {!load_basis}. *)

val set_bounds : t -> lb:float array -> ub:float array -> unit
(** Overwrite the structural variables' bounds (arrays of length
    [num_vars]); logical bounds are fixed by the row senses. *)

val save_basis : t -> snapshot
val load_basis : t -> snapshot -> bool
(** Restore a snapshot and refactorize; [false] if the snapshot's basis
    is singular under the current bounds (caller should {!solve_fresh}). *)

val solve_fresh : ?deadline:float -> t -> Simplex.result
(** Two-phase primal solve from the all-logical basis, ignoring any
    previous state. [deadline] is an absolute [Unix.gettimeofday]
    instant; hitting it (or the iteration cap) yields [Limit]. *)

val solve_warm : ?deadline:float -> t -> Simplex.result
(** Re-solve after bound changes, starting from the current basis: dual
    simplex to primal feasibility, then a certifying primal cleanup.
    Falls back to {!solve_fresh} when the warm start stalls, and behaves
    exactly like it when the state is unfactored. *)

val last_pivots : t -> int
(** Pivot count of the most recent [solve_fresh]/[solve_warm] call. *)

val num_vars : t -> int

val solve : Lp.t -> Simplex.result
(** One-shot convenience mirroring [Simplex.solve]. *)

val solve_with_bounds :
  ?deadline:float -> Lp.t -> lb:float array -> ub:float array ->
  Simplex.result
(** One-shot convenience mirroring [Simplex.solve_with_bounds]. *)
