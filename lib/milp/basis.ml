(* LU-factorized simplex basis with product-form-of-the-inverse updates.

   The revised simplex needs two linear solves per iteration against the
   current basis matrix B (m x m): FTRAN (B w = a, the pivot column in
   the basis frame) and BTRAN (B^T y = c, the dual prices). B changes by
   one column per pivot, so instead of refactorizing we keep

     B_k = B_0 E_1 E_2 ... E_k

   where B_0 carries a dense LU factorization with partial pivoting and
   every eta matrix E_i is the identity with column [row_i] replaced by
   the pivot column w_i = B_{i-1}^{-1} a_i. FTRAN applies the LU solve
   and then the etas oldest-first; BTRAN applies the transposed etas
   newest-first and then the transposed LU solve. After [refactor_every]
   updates (or on a dangerously small pivot) the caller refactorizes,
   which also squashes accumulated floating-point drift. *)

type eta = { e_row : int; e_col : float array }

type t = {
  m : int;
  lu : float array array;  (* m x m; unit L strictly below, U on/above *)
  rowp : int array;  (* rowp.(k) = original row held by pivot position k *)
  mutable etas : eta array;
  mutable neta : int;
  refactor_every : int;
}

exception Singular

let pivot_floor = 1e-10

let create ?(refactor_every = 48) m =
  if m < 0 then invalid_arg "Basis.create: negative dimension";
  if refactor_every < 1 then invalid_arg "Basis.create: refactor_every";
  {
    m;
    lu = Array.init m (fun _ -> Array.make m 0.);
    rowp = Array.init m (fun i -> i);
    etas = [||];
    neta = 0;
    refactor_every;
  }

let eta_count t = t.neta

(* Factor the matrix whose k-th column is given (sparsely) by [column k];
   raises {!Singular} when the columns are linearly dependent to working
   precision. *)
let refactor t ~column =
  let m = t.m in
  for k = 0 to m - 1 do
    let col = t.lu.(k) in
    Array.fill col 0 m 0.;
    (* lu is stored row-major; stage columns into rows then transpose in
       place? Cheaper: build B transposed into lu, i.e. lu.(k) holds
       column k for now, and swap to row-major below. *)
    let idx, v = column k in
    Array.iteri (fun p r -> col.(r) <- col.(r) +. v.(p)) idx
  done;
  (* Transpose in place so lu.(i).(j) = B_{ij}. *)
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let a = t.lu.(i).(j) and b = t.lu.(j).(i) in
      t.lu.(i).(j) <- b;
      t.lu.(j).(i) <- a
    done
  done;
  let rowp = t.rowp in
  for i = 0 to m - 1 do
    rowp.(i) <- i
  done;
  for k = 0 to m - 1 do
    (* Partial pivoting: bring the largest |entry| of column k into the
       pivot position. *)
    let best = ref k and best_v = ref (Float.abs t.lu.(k).(k)) in
    for i = k + 1 to m - 1 do
      let v = Float.abs t.lu.(i).(k) in
      if v > !best_v then begin
        best := i;
        best_v := v
      end
    done;
    if !best_v < pivot_floor then raise Singular;
    if !best <> k then begin
      let tmp = t.lu.(k) in
      t.lu.(k) <- t.lu.(!best);
      t.lu.(!best) <- tmp;
      let tp = rowp.(k) in
      rowp.(k) <- rowp.(!best);
      rowp.(!best) <- tp
    end;
    let pivot_row = t.lu.(k) in
    let p = pivot_row.(k) in
    for i = k + 1 to m - 1 do
      let row = t.lu.(i) in
      let f = row.(k) /. p in
      if f <> 0. then begin
        row.(k) <- f;
        for j = k + 1 to m - 1 do
          row.(j) <- row.(j) -. (f *. pivot_row.(j))
        done
      end
    done
  done;
  t.neta <- 0

(* B x = b. [b] is indexed by original row; the result (written into [b])
   is indexed by basis position. *)
let ftran t b =
  let m = t.m in
  if m > 0 then begin
    (* Permute, forward-substitute L, back-substitute U. *)
    let y = Array.make m 0. in
    for k = 0 to m - 1 do
      let row = t.lu.(k) in
      let acc = ref b.(t.rowp.(k)) in
      for j = 0 to k - 1 do
        acc := !acc -. (row.(j) *. y.(j))
      done;
      y.(k) <- !acc
    done;
    for k = m - 1 downto 0 do
      let row = t.lu.(k) in
      let acc = ref y.(k) in
      for j = k + 1 to m - 1 do
        acc := !acc -. (row.(j) *. b.(j))
      done;
      b.(k) <- !acc /. row.(k)
    done;
    (* Etas, oldest first: solving E z = x with E's column r = w gives
       z_r = x_r / w_r and z_i = x_i - w_i z_r. *)
    for e = 0 to t.neta - 1 do
      let { e_row = r; e_col = w } = t.etas.(e) in
      let zr = b.(r) /. w.(r) in
      for i = 0 to m - 1 do
        b.(i) <- b.(i) -. (w.(i) *. zr)
      done;
      b.(r) <- zr
    done
  end

(* B^T y = c. [c] is indexed by basis position; the result (written into
   [c]) is indexed by original row. *)
let btran t c =
  let m = t.m in
  if m > 0 then begin
    (* Transposed etas, newest first: E^T is the identity except row r
       = w^T, so z_i = c_i for i <> r and z_r solves the r-th row. *)
    for e = t.neta - 1 downto 0 do
      let { e_row = r; e_col = w } = t.etas.(e) in
      let acc = ref c.(r) in
      for i = 0 to m - 1 do
        if i <> r then acc := !acc -. (w.(i) *. c.(i))
      done;
      c.(r) <- !acc /. w.(r)
    done;
    (* U^T z = c (forward), L^T v = z (backward), y = P^T v. *)
    let z = Array.make m 0. in
    for k = 0 to m - 1 do
      let acc = ref c.(k) in
      for j = 0 to k - 1 do
        acc := !acc -. (t.lu.(j).(k) *. z.(j))
      done;
      z.(k) <- !acc /. t.lu.(k).(k)
    done;
    for k = m - 1 downto 0 do
      let acc = ref z.(k) in
      for j = k + 1 to m - 1 do
        acc := !acc -. (t.lu.(j).(k) *. z.(j))
      done;
      z.(k) <- !acc
    done;
    for k = 0 to m - 1 do
      c.(t.rowp.(k)) <- z.(k)
    done
  end

(* Record the pivot (basis position [row] replaced by the column whose
   basis-frame image is [w] = B^-1 a). Returns [true] when the caller
   should refactorize before trusting further solves. *)
let update t ~row ~w =
  let col = Array.copy w in
  if t.neta = Array.length t.etas then begin
    let cap = Stdlib.max 8 (2 * t.neta) in
    let bigger = Array.make cap { e_row = row; e_col = col } in
    Array.blit t.etas 0 bigger 0 t.neta;
    t.etas <- bigger
  end;
  t.etas.(t.neta) <- { e_row = row; e_col = col };
  t.neta <- t.neta + 1;
  t.neta >= t.refactor_every || Float.abs w.(row) < 1e-7
