(** Linear / mixed-integer linear program modelling.

    This is the substrate that replaces Gurobi in the reproduction: the
    floorplanner of [3] and the IS-k baseline of [6] both need an exact
    optimizer for small models. Build a model here, then solve its
    continuous relaxation with {!Simplex.solve} or the full MILP with
    {!Branch_bound.solve}. *)

type t
(** A mutable model. Variables and constraints are appended; solving
    never mutates the model. *)

type var = private int
(** Variable handle (dense index, stable across the model's lifetime). *)

type sense = Le | Ge | Eq

type objective = Minimize | Maximize

val create : ?objective:objective -> unit -> t
(** A fresh empty model; [objective] defaults to [Minimize]. *)

val add_var : t -> ?lb:float -> ?ub:float -> ?integer:bool ->
  ?name:string -> obj:float -> unit -> var
(** New variable with objective coefficient [obj]; bounds default to
    [\[0, +inf)]; [integer] defaults to [false]. Raises
    [Invalid_argument] if [lb > ub] or a bound is NaN. *)

val add_binary : t -> ?name:string -> obj:float -> unit -> var
(** Integer variable in [\[0, 1\]]. *)

val add_constraint : t -> ?name:string -> (var * float) list -> sense ->
  float -> unit
(** [add_constraint m terms sense rhs] adds [Σ coeff * var  sense  rhs].
    Repeated variables in [terms] are summed. *)

val num_vars : t -> int
val num_constraints : t -> int
val objective : t -> objective
val obj_coeffs : t -> float array
val var_lb : t -> var -> float
val var_ub : t -> var -> float

(** Whole-model bound/integrality snapshots in index order; O(n) where
    the per-variable accessors above are O(n) {e each}. Solvers use
    these to avoid quadratic model extraction. *)

val lb_array : t -> float array

val ub_array : t -> float array

val integer_array : t -> bool array
val var_is_integer : t -> var -> bool
val var_name : t -> var -> string
val var_of_index : t -> int -> var
(** Raises [Invalid_argument] when out of range. *)

val rows : t -> ((int * float) list * sense * float) array
(** Constraint rows as (terms over variable indices, sense, rhs). *)

val pp : Format.formatter -> t -> unit
(** Human-readable LP-format-style dump. *)
