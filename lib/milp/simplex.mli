(** Two-phase primal simplex for the continuous relaxation of an
    {!Lp.t} model.

    Dense tableau implementation with Bland's anti-cycling rule; intended
    for the small models produced by the floorplanner and the IS-k chunk
    solver (tens to a few hundred variables), not for large-scale LPs. *)

type solution = {
  objective : float;
  values : float array;  (** one value per model variable, in index order *)
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Limit
      (** The iteration cap or the [deadline] cut the solve short: the
          model's status is unknown. {!Branch_bound} treats this as
          "node budget exhausted", never as an infeasibility proof. *)

val solve : Lp.t -> result
(** Solve the continuous relaxation (integrality markers are ignored). *)

val solve_with_bounds : ?deadline:float -> Lp.t -> lb:float array ->
  ub:float array -> result
(** Like {!solve} but overriding every variable's bounds; used by
    {!Branch_bound} to explore subproblems without rebuilding the model.
    Array lengths must equal [Lp.num_vars]. [deadline] is an absolute
    [Unix.gettimeofday] instant past which the solve aborts (the phase
    that was interrupted reports [Infeasible], so callers should treat a
    post-deadline result as indeterminate). *)

val feasibility_tolerance : float
(** Tolerance under which phase-1 infeasibility is accepted as zero. *)
