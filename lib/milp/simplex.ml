type solution = { objective : float; values : float array }

type result = Optimal of solution | Infeasible | Unbounded | Limit

let feasibility_tolerance = 1e-7
let eps = 1e-9

exception Unbounded_exn
exception Iteration_limit

(* A standard-form tableau: minimize cost . x  s.t.  a x = b, x >= 0, with
   [basis.(r)] holding the column basic in row [r]. The cost row is kept
   reduced with respect to the basis. *)
type tableau = {
  m : int;
  ncols : int;
  a : float array array;  (* m x ncols *)
  b : float array;  (* m *)
  cost : float array;  (* ncols, reduced *)
  mutable z : float;  (* objective value of current basis *)
  basis : int array;  (* m *)
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  for j = 0 to t.ncols - 1 do
    arow.(j) <- arow.(j) /. p
  done;
  t.b.(row) <- t.b.(row) /. p;
  for r = 0 to t.m - 1 do
    if r <> row then begin
      let f = t.a.(r).(col) in
      if Float.abs f > 0. then begin
        let target = t.a.(r) in
        for j = 0 to t.ncols - 1 do
          target.(j) <- target.(j) -. (f *. arow.(j))
        done;
        t.b.(r) <- t.b.(r) -. (f *. t.b.(row))
      end
    end
  done;
  let f = t.cost.(col) in
  if Float.abs f > 0. then begin
    for j = 0 to t.ncols - 1 do
      t.cost.(j) <- t.cost.(j) -. (f *. arow.(j))
    done;
    t.z <- t.z -. (f *. t.b.(row))
  end;
  t.basis.(row) <- col

(* Bland's rule: entering = smallest column index with cost < -eps;
   leaving = min ratio, ties broken by smallest basis column. Bland's
   rule cannot cycle, so the iteration cap is a pure safety backstop.
   (Dantzig pricing was tried and performs worse here: the big-M
   disjunctive models keep attracting it to near-degenerate columns.) *)
let iterate ?(allowed = fun _ -> true) ?(deadline = infinity) t =
  let limit = 2000 + (64 * (t.m + t.ncols)) in
  let iter = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr iter;
    if !iter > limit then raise Iteration_limit;
    if !iter land 63 = 0 && Unix.gettimeofday () > deadline then
      raise Iteration_limit;
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && t.cost.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering = -1 then continue_ := false
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to t.m - 1 do
        let arc = t.a.(r).(col) in
        if arc > eps then begin
          let ratio = t.b.(r) /. arc in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
                && (!best_row = -1 || t.basis.(r) < t.basis.(!best_row)))
          then begin
            best_row := r;
            best_ratio := ratio
          end
        end
      done;
      if !best_row = -1 then raise Unbounded_exn;
      pivot t ~row:!best_row ~col
    end
  done

(* Recompute the reduced cost row for objective [c] under the current
   basis: cost = c - c_B B^-1 A, z = c_B B^-1 b. In tableau form, simply
   subtract c_B(r) * row_r from the raw cost row. *)
let install_objective t c =
  Array.blit c 0 t.cost 0 t.ncols;
  t.z <- 0.;
  for r = 0 to t.m - 1 do
    let cb = c.(t.basis.(r)) in
    if Float.abs cb > 0. then begin
      let arow = t.a.(r) in
      for j = 0 to t.ncols - 1 do
        t.cost.(j) <- t.cost.(j) -. (cb *. arow.(j))
      done;
      t.z <- t.z -. (cb *. t.b.(r))
    end
  done

let solve_arrays ?deadline ~goal ~obj ~lb ~ub ~rows () =
  let n = Array.length obj in
  (* Infeasible bound boxes short-circuit (branch-and-bound produces
     them). *)
  let bad_box = ref false in
  for j = 0 to n - 1 do
    if not (Float.is_finite lb.(j)) then
      invalid_arg "Simplex: variables must have a finite lower bound";
    if lb.(j) > ub.(j) +. eps then bad_box := true
  done;
  if !bad_box then Infeasible
  else begin
    (* Shift x = lb + x'; finite upper bounds become extra rows. *)
    let shift_rhs terms rhs =
      List.fold_left (fun acc (v, c) -> acc -. (c *. lb.(v))) rhs terms
    in
    let base_rows =
      Array.to_list rows
      |> List.map (fun (terms, sense, rhs) -> (terms, sense, shift_rhs terms rhs))
    in
    let bound_rows = ref [] in
    for j = n - 1 downto 0 do
      if Float.is_finite ub.(j) then
        bound_rows := ([ (j, 1.) ], Lp.Le, ub.(j) -. lb.(j)) :: !bound_rows
    done;
    let all_rows = base_rows @ !bound_rows in
    let m = List.length all_rows in
    (* Column layout: n shifted vars, then one slack/surplus per Le/Ge
       row, then one artificial per row that needs one. *)
    let slack_count =
      List.fold_left
        (fun acc (_, sense, _) ->
          match sense with Lp.Eq -> acc | Lp.Le | Lp.Ge -> acc + 1)
        0 all_rows
    in
    (* Normalize rhs >= 0 first to know which rows need artificials. *)
    let normalized =
      List.map
        (fun (terms, sense, rhs) ->
          if rhs < 0. then begin
            let terms = List.map (fun (v, c) -> (v, -.c)) terms in
            let sense =
              match sense with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq
            in
            (terms, sense, -.rhs)
          end
          else (terms, sense, rhs))
        all_rows
    in
    let needs_artificial =
      List.map
        (fun (_, sense, _) ->
          match sense with Lp.Le -> false | Lp.Ge | Lp.Eq -> true)
        normalized
    in
    let art_count = List.fold_left (fun a b -> if b then a + 1 else a) 0 needs_artificial in
    let ncols = n + slack_count + art_count in
    let a = Array.init m (fun _ -> Array.make ncols 0.) in
    let b = Array.make m 0. in
    let basis = Array.make m (-1) in
    let next_slack = ref n in
    let next_art = ref (n + slack_count) in
    List.iteri
      (fun r (terms, sense, rhs) ->
        List.iter (fun (v, c) -> a.(r).(v) <- a.(r).(v) +. c) terms;
        b.(r) <- rhs;
        (match sense with
        | Lp.Le ->
          a.(r).(!next_slack) <- 1.;
          basis.(r) <- !next_slack;
          incr next_slack
        | Lp.Ge ->
          a.(r).(!next_slack) <- -1.;
          incr next_slack
        | Lp.Eq -> ());
        if basis.(r) = -1 then begin
          a.(r).(!next_art) <- 1.;
          basis.(r) <- !next_art;
          incr next_art
        end)
      normalized;
    let t = { m; ncols; a; b; cost = Array.make ncols 0.; z = 0.; basis } in
    let art_start = n + slack_count in
    (* Phase 1: minimize the artificial sum. *)
    let result =
      if art_count > 0 then begin
        let phase1 = Array.make ncols 0. in
        for j = art_start to ncols - 1 do
          phase1.(j) <- 1.
        done;
        install_objective t phase1;
        match iterate ?deadline t with
        | () ->
          if -.t.z > feasibility_tolerance then Some Infeasible else None
        | exception Unbounded_exn -> Some Infeasible (* cannot happen *)
        | exception Iteration_limit -> Some Limit
      end
      else None
    in
    match result with
    | Some r -> r
    | None ->
      (* Drive any remaining artificial out of the basis (degenerate
         rows); rows where that is impossible are redundant. *)
      for r = 0 to m - 1 do
        if t.basis.(r) >= art_start then begin
          let col = ref (-1) in
          (try
             for j = 0 to art_start - 1 do
               if Float.abs t.a.(r).(j) > eps then begin
                 col := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !col >= 0 then pivot t ~row:r ~col:!col
        end
      done;
      (* Phase 2: forbid artificial columns and optimize the real goal. *)
      let sign = match goal with Lp.Minimize -> 1. | Lp.Maximize -> -1. in
      let phase2 = Array.make ncols 0. in
      for j = 0 to n - 1 do
        phase2.(j) <- sign *. obj.(j)
      done;
      install_objective t phase2;
      let allowed j = j < art_start in
      (match iterate ~allowed ?deadline t with
      | () ->
        let values = Array.make n 0. in
        for r = 0 to m - 1 do
          if t.basis.(r) < n then values.(t.basis.(r)) <- t.b.(r)
        done;
        for j = 0 to n - 1 do
          values.(j) <- values.(j) +. lb.(j)
        done;
        let offset =
          let acc = ref 0. in
          for j = 0 to n - 1 do
            acc := !acc +. (obj.(j) *. lb.(j))
          done;
          !acc
        in
        (* t.z tracks -(phase2 objective of basis). *)
        let objective = (sign *. -.t.z) +. offset in
        Optimal { objective; values }
      | exception Unbounded_exn -> Unbounded
      | exception Iteration_limit -> Limit)
  end

let solve_with_bounds ?deadline model ~lb ~ub =
  let n = Lp.num_vars model in
  if Array.length lb <> n || Array.length ub <> n then
    invalid_arg "Simplex.solve_with_bounds: bounds length mismatch";
  solve_arrays ?deadline ~goal:(Lp.objective model) ~obj:(Lp.obj_coeffs model)
    ~lb ~ub ~rows:(Lp.rows model) ()

let solve model =
  solve_with_bounds model ~lb:(Lp.lb_array model) ~ub:(Lp.ub_array model)
