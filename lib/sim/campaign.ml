module Rng = Resched_util.Rng
module Stats = Resched_util.Stats
module Domain_pool = Resched_util.Domain_pool
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Repair = Resched_core.Repair

type summary = {
  policy : Repair.policy;
  trials : int;
  survived : int;
  survival_rate : float;
  faults_fired : int;
  faults_moot : int;
  mean_degradation : float;
  p95_degradation : float;
  worst_degradation : float;
  actions : (string * int) list;
  all_valid : bool;
}

let run ?(jobs = 1) ?(spec = Fault.default_spec) ~trials ~seed ~policy
    (sched : Schedule.t) =
  if trials <= 0 then invalid_arg "Campaign.run: trials must be positive";
  if jobs < 1 then invalid_arg "Campaign.run: jobs must be positive";
  (* One SplitMix64 sub-seed per trial, drawn sequentially up front:
     trial [i] is a pure function of [seeds.(i)], so the partition of
     trials over worker domains cannot influence any result. *)
  let master = Rng.create seed in
  let seeds = Array.init trials (fun _ -> Int64.to_int (Rng.bits64 master)) in
  let results : Executor.fault_trial option array = Array.make trials None in
  let jobs = Stdlib.min jobs trials in
  Domain_pool.run ~jobs (fun w ->
      let i = ref w in
      while !i < trials do
        let rng = Rng.create seeds.(!i) in
        let plan = Fault.sample rng ~spec sched in
        results.(!i) <- Some (Executor.replay_faults ~policy ~plan sched);
        i := !i + jobs
      done)
  |> ignore;
  let trial i =
    match results.(i) with Some t -> t | None -> assert false
  in
  let survived = ref 0 in
  let fired = ref 0 in
  let moot = ref 0 in
  let histogram = Hashtbl.create 8 in
  let degradations = ref [] in
  let all_valid = ref true in
  for i = 0 to trials - 1 do
    let t = trial i in
    if t.Executor.survived then begin
      incr survived;
      degradations := t.Executor.degradation :: !degradations
    end;
    fired := !fired + List.length t.Executor.fired;
    moot := !moot + t.Executor.moot;
    List.iter
      (fun a ->
        let k = Repair.action_key a in
        Hashtbl.replace histogram k
          (1 + Option.value ~default:0 (Hashtbl.find_opt histogram k)))
      t.Executor.actions;
    (* The repair engine validates every schedule it returns; re-check
       the survivors here anyway so the campaign's [all_valid] flag is
       an end-to-end fact, not a restatement of Repair's contract. *)
    if t.Executor.survived && Validate.check t.Executor.schedule <> Ok () then
      all_valid := false
  done;
  let degr = Array.of_list (List.rev !degradations) in
  let actions =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    policy;
    trials;
    survived = !survived;
    survival_rate = float_of_int !survived /. float_of_int trials;
    faults_fired = !fired;
    faults_moot = !moot;
    mean_degradation = (if degr = [||] then 0. else Stats.mean degr);
    p95_degradation = (if degr = [||] then 0. else Stats.percentile degr 95.);
    worst_degradation = (if degr = [||] then 0. else Stats.max degr);
    actions;
    all_valid = !all_valid;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%s: %d/%d survived (%.1f%%), degradation mean x%.3f p95 x%.3f worst \
     x%.3f, %d fault(s) fired (%d moot), actions [%s]%s"
    (Repair.policy_name s.policy)
    s.survived s.trials
    (100. *. s.survival_rate)
    s.mean_degradation s.p95_degradation s.worst_degradation s.faults_fired
    s.faults_moot
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) s.actions))
    (if s.all_valid then "" else " INVALID-REPAIR")
