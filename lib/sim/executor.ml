module Rng = Resched_util.Rng
module Stats = Resched_util.Stats
module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Schedule = Resched_core.Schedule

type jitter =
  | Deterministic
  | Uniform of float
  | Delay_only of float

type trial = {
  makespan : int;
  task_start : int array;
  task_end : int array;
}

exception Replay_error of string

(* Node layout of the replay DAG: tasks 0..n-1, then one node per
   reconfiguration in the schedule's controller order. *)
let replay_graph (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let rcs = Array.of_list sched.Schedule.reconfigurations in
  let nr = Array.length rcs in
  let g = Graph.create (n + nr) in
  (* Data dependencies. *)
  List.iter (fun (u, v) -> Graph.add_edge g u v) (Graph.edges inst.Instance.graph);
  (* Per-region order with the reconfiguration between each pair (when
     one exists; with module reuse the pair is chained directly). The
     key (region, t_in, t_out) must be unique: a duplicate would
     silently collapse under [Hashtbl.replace], replaying one fewer
     controller occupation than the schedule declares. *)
  let rc_index = Hashtbl.create 16 in
  Array.iteri
    (fun k (rc : Schedule.reconfiguration) ->
      let key = (rc.Schedule.region, rc.Schedule.t_in, rc.Schedule.t_out) in
      if Hashtbl.mem rc_index key then
        raise
          (Replay_error
             (Printf.sprintf
                "duplicate reconfiguration (region %d, %d->%d) in the \
                 controller sequence"
                rc.Schedule.region rc.Schedule.t_in rc.Schedule.t_out));
      Hashtbl.replace rc_index key k)
    rcs;
  Array.iteri
    (fun ridx (_ : Schedule.region) ->
      let ordered = Schedule.region_tasks_in_order sched ridx in
      let rec chain = function
        | a :: b :: tl ->
          (match Hashtbl.find_opt rc_index (ridx, a, b) with
          | Some k ->
            Graph.add_edge g a (n + k);
            Graph.add_edge g (n + k) b
          | None -> Graph.add_edge g a b);
          chain (b :: tl)
        | [ _ ] | [] -> ()
      in
      chain ordered)
    sched.Schedule.regions;
  (* Per-processor order (by static start time). *)
  let procs = inst.Instance.arch.Arch.processors in
  for p = 0 to procs - 1 do
    let mine = ref [] in
    Array.iteri
      (fun u (s : Schedule.task_slot) ->
        match s.Schedule.placement with
        | Schedule.On_processor q when q = p -> mine := u :: !mine
        | _ -> ())
      sched.Schedule.slots;
    let ordered =
      List.sort
        (fun a b ->
          compare sched.Schedule.slots.(a).Schedule.start_
            sched.Schedule.slots.(b).Schedule.start_)
        !mine
    in
    let rec chain = function
      | a :: b :: tl ->
        Graph.add_edge g a b;
        chain (b :: tl)
      | [ _ ] | [] -> ()
    in
    chain ordered
  done;
  (* Controller order: the reconfiguration list is already in execution
     order. *)
  for k = 0 to nr - 2 do
    Graph.add_edge g (n + k) (n + k + 1)
  done;
  (g, rcs)

let sample_factor rng = function
  | Deterministic -> 1.0
  | Uniform f ->
    if f < 0. || f >= 1. then invalid_arg "Executor: Uniform jitter in [0,1)";
    1. -. f +. Rng.float rng (2. *. f)
  | Delay_only f ->
    if f < 0. then invalid_arg "Executor: Delay_only jitter >= 0";
    1. +. Rng.float rng f

let execute ?rng ~jitter (sched : Schedule.t) =
  let rng =
    match (rng, jitter) with
    | Some r, _ -> r
    | None, Deterministic -> Rng.create 0
    | None, (Uniform _ | Delay_only _) ->
      invalid_arg "Executor.execute: stochastic jitter needs ~rng"
  in
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let g, rcs = replay_graph sched in
  let nr = Array.length rcs in
  let durations =
    Array.init (n + nr) (fun i ->
        let nominal =
          if i < n then begin
            let s = sched.Schedule.slots.(i) in
            s.Schedule.end_ - s.Schedule.start_
          end
          else begin
            let rc = rcs.(i - n) in
            rc.Schedule.r_end - rc.Schedule.r_start
          end
        in
        if i < n then
          (* Only task durations jitter; reconfiguration time is fixed by
             the bitstream size and the controller throughput. *)
          Stdlib.max 1 (int_of_float (Float.round (float_of_int nominal *. sample_factor rng jitter)))
        else nominal)
  in
  let cpm = Cpm.compute g ~durations in
  let task_start = Array.sub cpm.Cpm.t_min 0 n in
  let task_end = Array.init n (fun u -> task_start.(u) + durations.(u)) in
  let makespan = Array.fold_left Stdlib.max 0 task_end in
  { makespan; task_start; task_end }

type robustness = {
  trials : int;
  static_makespan : int;
  mean_makespan : float;
  worst_makespan : int;
  p95_makespan : float;
  mean_slowdown : float;
}

let robustness ~rng ~trials ~jitter sched =
  if trials <= 0 then invalid_arg "Executor.robustness: trials must be positive";
  let samples =
    Array.init trials (fun _ ->
        float_of_int (execute ~rng ~jitter sched).makespan)
  in
  let static = Schedule.makespan sched in
  {
    trials;
    static_makespan = static;
    mean_makespan = Stats.mean samples;
    worst_makespan = int_of_float (Stats.max samples);
    p95_makespan = Stats.percentile samples 95.;
    mean_slowdown = Stats.mean samples /. float_of_int (Stdlib.max 1 static);
  }

let pp_robustness ppf r =
  Format.fprintf ppf
    "%d trials: static %d, mean %.0f (x%.3f), p95 %.0f, worst %d" r.trials
    r.static_makespan r.mean_makespan r.mean_slowdown r.p95_makespan
    r.worst_makespan

(* ------------------------------------------------------------------ *)
(* Fault-injection replay                                              *)

module Repair = Resched_core.Repair

type fault_trial = {
  survived : bool;
  fired : Fault.event list;  (** events that struck, in firing order *)
  moot : int;  (** sampled events that no longer applied *)
  actions : Repair.action list;
  schedule : Schedule.t;  (** last valid schedule (fully repaired iff
                              [survived]) *)
  static_makespan : int;
  final_makespan : int;
  degradation : float;
  failure : string option;
}

(* When does a pending event strike, measured against the *current*
   (possibly already repaired) schedule? [None] = the event no longer
   applies: its reconfiguration was dropped by an earlier migration. *)
let trigger_time (sched : Schedule.t) = function
  | Fault.Overrun { task; _ } -> Some sched.Schedule.slots.(task).Schedule.end_
  | Fault.Region_death { at; _ } -> Some at
  | Fault.Reconf_fail { region; t_in; t_out; _ } ->
    List.find_map
      (fun (rc : Schedule.reconfiguration) ->
        if
          rc.Schedule.region = region && rc.Schedule.t_in = t_in
          && rc.Schedule.t_out = t_out
        then Some rc.Schedule.r_start
        else None)
      sched.Schedule.reconfigurations

let fault_of_event (sched : Schedule.t) = function
  | Fault.Reconf_fail { region; t_in; t_out; failures } ->
    Repair.Reconf_failed { region; t_in; t_out; failures }
  | Fault.Region_death { region; _ } -> Repair.Region_dead { region }
  | Fault.Overrun { task; factor } ->
    let s = sched.Schedule.slots.(task) in
    let nominal = s.Schedule.end_ - s.Schedule.start_ in
    let extra =
      Stdlib.max 1
        (int_of_float (Float.round (float_of_int nominal *. (factor -. 1.))))
    in
    Repair.Task_overrun { task; end_at = s.Schedule.end_ + extra }

let replay_faults ~policy ~(plan : Fault.plan) (sched0 : Schedule.t) =
  let static = Schedule.makespan sched0 in
  let finish sched ~fired ~moot ~actions ~failure =
    let final = Schedule.makespan sched in
    {
      survived = failure = None;
      fired = List.rev fired;
      moot;
      actions = List.rev actions;
      schedule = sched;
      static_makespan = static;
      final_makespan = final;
      degradation = float_of_int final /. float_of_int (Stdlib.max 1 static);
      failure;
    }
  in
  (* Event-driven loop: at each step, fire the pending event with the
     earliest strike time in the current schedule (plan order breaks
     ties), repair, and continue on the repaired schedule. Strike times
     are re-read every step because each repair can shift, drop or
     compact the activities later events reference. *)
  let rec loop sched pending ~fired ~moot ~actions =
    let live, newly_moot =
      List.partition (fun (_, ev) -> trigger_time sched ev <> None) pending
    in
    let moot = moot + List.length newly_moot in
    let next =
      List.fold_left
        (fun best (idx, ev) ->
          match trigger_time sched ev with
          | None -> best
          | Some t -> (
            match best with
            | Some (bt, bidx, _) when (bt, bidx) <= (t, idx) -> best
            | Some _ | None -> Some (t, idx, ev)))
        None live
    in
    match next with
    | None -> finish sched ~fired ~moot ~actions ~failure:None
    | Some (at, idx, ev) -> (
      let pending = List.filter (fun (i, _) -> i <> idx) live in
      let fault = fault_of_event sched ev in
      match
        Repair.repair ~max_attempts:plan.Fault.spec.Fault.max_attempts
          ~backoff:plan.Fault.spec.Fault.backoff ~policy ~at ~fault sched
      with
      | Ok (repaired, acts) ->
        loop repaired pending ~fired:(ev :: fired) ~moot
          ~actions:(List.rev_append acts actions)
      | Error msg ->
        finish sched ~fired:(ev :: fired) ~moot ~actions ~failure:(Some msg))
  in
  loop sched0
    (List.mapi (fun i ev -> (i, ev)) plan.Fault.events)
    ~fired:[] ~moot:0 ~actions:[]
