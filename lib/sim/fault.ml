module Rng = Resched_util.Rng
module Schedule = Resched_core.Schedule

type spec = {
  p_reconf_fail : float;
  p_reconf_permanent : float;
  p_overrun : float;
  overrun_factor : float;
  p_region_death : float;
  max_attempts : int;
  backoff : int;
}

let default_spec =
  {
    p_reconf_fail = 0.10;
    p_reconf_permanent = 0.25;
    p_overrun = 0.08;
    overrun_factor = 2.0;
    p_region_death = 0.05;
    max_attempts = 3;
    backoff = 1;
  }

type event =
  | Reconf_fail of { region : int; t_in : int; t_out : int; failures : int }
  | Overrun of { task : int; factor : float }
  | Region_death of { region : int; at : int }

type plan = { spec : spec; events : event list }

let pp_event ppf = function
  | Reconf_fail { region; t_in; t_out; failures } ->
    Format.fprintf ppf "reconf-fail(region %d, %d->%d, %d failure(s))" region
      t_in t_out failures
  | Overrun { task; factor } ->
    Format.fprintf ppf "overrun(task %d, x%.2f)" task factor
  | Region_death { region; at } ->
    Format.fprintf ppf "region-death(region %d at %d)" region at

let check_spec spec =
  let prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Fault.sample: %s must be in [0,1]" name)
  in
  prob "p_reconf_fail" spec.p_reconf_fail;
  prob "p_reconf_permanent" spec.p_reconf_permanent;
  prob "p_overrun" spec.p_overrun;
  prob "p_region_death" spec.p_region_death;
  if spec.overrun_factor <= 1. then
    invalid_arg "Fault.sample: overrun_factor must exceed 1";
  if spec.max_attempts < 1 then
    invalid_arg "Fault.sample: max_attempts must be positive";
  if spec.backoff < 0 then
    invalid_arg "Fault.sample: backoff must be non-negative"

(* Sampling walks the schedule in a fixed order (tasks ascending, then
   the reconfiguration list in controller order, then regions ascending)
   so a plan is a pure function of (seed, schedule). Events carry stable
   identities — task ids, region ids, (region, t_in, t_out) keys — not
   list positions, so they survive the structural edits repairs make. *)
let sample rng ?(spec = default_spec) (sched : Schedule.t) =
  check_spec spec;
  let n = Array.length sched.Schedule.slots in
  let events = ref [] in
  for u = 0 to n - 1 do
    if Rng.float rng 1.0 < spec.p_overrun then begin
      let factor = 1. +. Rng.float rng (spec.overrun_factor -. 1.) in
      events := Overrun { task = u; factor } :: !events
    end
  done;
  List.iter
    (fun (rc : Schedule.reconfiguration) ->
      if Rng.float rng 1.0 < spec.p_reconf_fail then begin
        let permanent = Rng.float rng 1.0 < spec.p_reconf_permanent in
        let failures =
          if permanent || spec.max_attempts = 1 then spec.max_attempts
          else 1 + Rng.int rng (spec.max_attempts - 1)
        in
        events :=
          Reconf_fail
            {
              region = rc.Schedule.region;
              t_in = rc.Schedule.t_in;
              t_out = rc.Schedule.t_out;
              failures;
            }
          :: !events
      end)
    sched.Schedule.reconfigurations;
  Array.iteri
    (fun ridx (_ : Schedule.region) ->
      if Rng.float rng 1.0 < spec.p_region_death then begin
        let horizon = Stdlib.max 1 sched.Schedule.makespan in
        let at = Rng.int rng horizon in
        events := Region_death { region = ridx; at } :: !events
      end)
    sched.Schedule.regions;
  { spec; events = List.rev !events }
