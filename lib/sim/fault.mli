(** Seeded fault plans for the executor's fault-injection replay.

    A fault plan is a deterministic function of (seed, schedule): it
    lists the faults that will strike a particular run — bitstream
    loads that fail (with a bounded number of retry attempts available
    before the load is declared permanently broken), tasks that overrun
    beyond any modelled jitter, and regions that die outright at some
    instant. The executor replays the schedule against the plan and
    hands each fault to a {!Resched_core.Repair} policy as it fires.

    Determinism is load-bearing: campaigns fan trials out over domains,
    and equal seeds must produce bit-identical results at any worker
    count, so sampling draws from the caller's
    {!Resched_util.Rng.t} in a fixed schedule-walk order and events
    reference activities by stable identity (task id, region id,
    [(region, t_in, t_out)]) rather than by list position. *)

type spec = {
  p_reconf_fail : float;  (** per-reconfiguration failure probability *)
  p_reconf_permanent : float;
      (** probability that a failing load never succeeds (otherwise it
          succeeds within the retry budget) *)
  p_overrun : float;  (** per-task overrun probability *)
  overrun_factor : float;
      (** overrun durations stretch by a factor drawn uniformly from
          (1, overrun_factor]; must exceed 1 *)
  p_region_death : float;  (** per-region permanent-death probability *)
  max_attempts : int;  (** reconfiguration retry budget (>= 1) *)
  backoff : int;  (** idle ticks after each failed attempt (>= 0) *)
}

val default_spec : spec
(** 10% reconfiguration failures (a quarter of them permanent), 8%
    overruns up to 2x, 5% region deaths, 3 attempts, backoff 1. *)

type event =
  | Reconf_fail of { region : int; t_in : int; t_out : int; failures : int }
      (** [failures >= max_attempts] means the load never succeeds *)
  | Overrun of { task : int; factor : float }
  | Region_death of { region : int; at : int }

type plan = { spec : spec; events : event list }

val sample : Resched_util.Rng.t -> ?spec:spec -> Resched_core.Schedule.t ->
  plan
(** Draw a fault plan for one run of the schedule. Equal generator
    states yield equal plans. Raises [Invalid_argument] on a malformed
    [spec]. *)

val pp_event : Format.formatter -> event -> unit
