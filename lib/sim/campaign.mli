(** Monte-Carlo fault campaigns.

    Runs many independent fault-injection replays of one schedule —
    each trial samples a fresh {!Fault.plan} from its own SplitMix64
    sub-seed and executes {!Executor.replay_faults} under the chosen
    recovery policy — and aggregates survival rate, the
    makespan-degradation distribution over surviving trials, and a
    histogram of recovery actions.

    Trials fan out over OCaml domains ({!Resched_util.Domain_pool});
    each trial is a pure function of its pre-drawn sub-seed, so a
    campaign is bit-identical for equal seeds at any [jobs]. *)

type summary = {
  policy : Resched_core.Repair.policy;
  trials : int;
  survived : int;
  survival_rate : float;  (** survived / trials *)
  faults_fired : int;  (** total events that struck, over all trials *)
  faults_moot : int;  (** sampled events that no longer applied *)
  mean_degradation : float;
      (** mean realized/static makespan over surviving trials *)
  p95_degradation : float;
  worst_degradation : float;
  actions : (string * int) list;
      (** recovery-action histogram, sorted by key
          ({!Resched_core.Repair.action_key}) *)
  all_valid : bool;
      (** every surviving trial's final schedule re-passed
          {!Resched_core.Validate.check} *)
}

val run : ?jobs:int -> ?spec:Fault.spec -> trials:int -> seed:int ->
  policy:Resched_core.Repair.policy -> Resched_core.Schedule.t -> summary
(** [jobs] defaults to 1 (sequential); results do not depend on it.
    Raises [Invalid_argument] on non-positive [trials] or [jobs]. *)

val pp_summary : Format.formatter -> summary -> unit
