(** Runtime execution simulator.

    The schedulers in this repository are *offline*: they commit to
    implementation choices, placements and per-resource execution orders
    at design time, using nominal execution times. At runtime, task
    durations vary (cache effects, data-dependent loop bounds, DDR
    contention). This module replays a finished {!Resched_core.Schedule.t}
    under sampled durations: the committed decisions and per-resource
    orders are kept (a realistic runtime executes the static plan
    self-timed), every activity starts as soon as its dependency,
    resource and reconfiguration-controller predecessors complete, and
    the realized makespan falls out.

    The executor rebuilds the precedence structure purely from the public
    schedule — independently from the scheduler internals, like the
    validator — so it doubles as a semantic cross-check: under
    [Deterministic] jitter the realized times must reproduce the static
    schedule's times exactly when the schedule is "compact" (every start
    explained by some predecessor), and may only be earlier otherwise. *)

type jitter =
  | Deterministic  (** nominal durations: replay the plan *)
  | Uniform of float
      (** duration scaled by a uniform factor in [1-f, 1+f]; f in [0,1) *)
  | Delay_only of float
      (** duration scaled by a uniform factor in [1, 1+f]: tasks can only
          run late, never early *)

type trial = {
  makespan : int;
  task_start : int array;
  task_end : int array;
}

exception Replay_error of string
(** The schedule cannot be replayed faithfully — currently: two
    reconfigurations share a (region, ingoing, outgoing) identity, which
    would silently collapse to a single controller occupation. *)

val execute : ?rng:Resched_util.Rng.t -> jitter:jitter ->
  Resched_core.Schedule.t -> trial
(** One realization. [rng] is required for stochastic jitter kinds
    (raises [Invalid_argument] when missing). Raises {!Replay_error}
    when the schedule's reconfiguration list is ambiguous. *)

type robustness = {
  trials : int;
  static_makespan : int;
  mean_makespan : float;
  worst_makespan : int;
  p95_makespan : float;
  mean_slowdown : float;  (** mean realized / static *)
}

val robustness : rng:Resched_util.Rng.t -> trials:int -> jitter:jitter ->
  Resched_core.Schedule.t -> robustness
(** Monte-Carlo summary over independent realizations. *)

val pp_robustness : Format.formatter -> robustness -> unit

(** {1 Fault-injection replay}

    Event-driven replay against a {!Fault.plan}: pending fault events
    strike in order of their trigger time *in the current schedule*
    (the reconfiguration's start, the task's committed end, the region
    death instant), each one is handed to the
    {!Resched_core.Repair} policy, and the run continues on the
    repaired schedule. A policy that cannot recover a fault ends the
    trial unsurvived; every intermediate schedule is validated by the
    repair engine before the run continues on it. *)

type fault_trial = {
  survived : bool;
  fired : Fault.event list;  (** events that struck, in firing order *)
  moot : int;
      (** sampled events that no longer applied when their turn came
          (e.g. the reconfiguration was dropped by an earlier
          migration) *)
  actions : Resched_core.Repair.action list;
      (** recovery actions, in execution order *)
  schedule : Resched_core.Schedule.t;
      (** last valid schedule — fully repaired iff [survived] *)
  static_makespan : int;
  final_makespan : int;
  degradation : float;  (** final / static *)
  failure : string option;  (** why the trial ended, when not survived *)
}

val replay_faults : policy:Resched_core.Repair.policy -> plan:Fault.plan ->
  Resched_core.Schedule.t -> fault_trial
(** Deterministic: equal (schedule, plan, policy) triples produce equal
    trials. *)
