(** Multiplexing jsonl transport for {!Server}: one [Unix.select]
    event loop carrying any number of simultaneous socket and pipe
    clients.

    Each connection owns a reusable {!Resched_util.Lineio} read ring
    and write buffer (allocated once at accept time — the steady state
    allocates no per-request transport buffers), a per-connection
    dispatch source key (so {!Server}'s deficit-round-robin keeps a
    flooding client from head-of-line-blocking the rest), and a small
    state machine: bytes read when [select] reports them, complete
    lines submitted to the server, responses appended to the
    connection's write buffer by whichever worker domain finished the
    request, and flushed — many responses coalesced into single
    [write] calls — when the socket is writable. A self-pipe wakes the
    loop when a worker enqueues a response, so the loop never spins
    and never sleeps through a finished request.

    Framing guards: a line longer than [max_line_bytes] is answered
    with a structured [rejected]/[line_too_long] response and
    discarded, without dropping the connection; a peer that stops
    reading until [max_buffered_response_bytes] of responses pile up
    is disconnected (slow-consumer guard); at [max_clients] the listen
    socket stops being polled, leaving further connections in the
    kernel backlog.

    The loop itself is single-threaded (run it on one domain — with
    [drive_server] it also pumps {!Server.step} between polls, the
    [--jobs 1] topology); [add_*] before {!run}, and response delivery
    from worker domains, are the only cross-thread entry points. *)

type t

val create :
  ?max_clients:int ->
  ?max_line_bytes:int ->
  ?max_buffered_response_bytes:int ->
  ?drive_server:bool ->
  Server.t ->
  t
(** Defaults: 32 clients, 1 MiB lines, 8 MiB buffered responses per
    connection, [drive_server] false. Registers the transport's
    connection counters with {!Server.set_connection_stats}, and (on
    Unix) sets SIGPIPE to ignore so a peer disconnecting mid-write
    surfaces as EPIPE — reaping that one connection — instead of
    killing the process. *)

val listen : t -> Unix.file_descr -> unit
(** Adopt a bound, listening socket; the loop accepts (up to
    [max_clients] concurrent) connections from it. The transport owns
    the descriptor from here on. *)

val add_channel :
  t ->
  ?close_server_on_eof:bool ->
  ?owns_fds:bool ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit ->
  unit
(** Add a pre-connected client carried by two descriptors (the CLI's
    stdin/stdout pipe mode; socketpairs in tests). With
    [close_server_on_eof] (default false), EOF on [in_fd] closes the
    server after submitting a final unterminated line, so a piped
    request file drains to completion and the process exits. With
    [owns_fds] (default true) the descriptors are closed when the
    connection dies. *)

val add_socket : t -> Unix.file_descr -> unit
(** Add a pre-connected bidirectional socket client (tests, benches). *)

val poll : t -> timeout_s:float -> unit
(** One event-loop iteration: sweep expired requests, select, accept,
    read + submit, flush, reap dead connections. Exposed so tests and
    benches can interleave polls with {!Server.step} under a virtual
    clock. *)

val run : t -> unit
(** Loop {!poll} until {!finished}. With [drive_server] each iteration
    also runs {!Server.step}, and the poll timeout tracks the step
    result (0 after work, the backoff remainder otherwise). *)

val finished : t -> bool
(** The server is closed and drained and every response has been
    flushed (or its connection abandoned). A daemon that never
    receives [shutdown] never finishes. *)

val stats_json : t -> Resched_util.Json.t
(** Connection counters: active/accepted/closed connections, total and
    per-connection bytes in/out, oversized-line and dropped-response
    counts. Readable from any thread (monitoring reads are racy but
    never unsafe). *)
