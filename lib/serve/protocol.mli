(** The jsonl wire protocol of [fpga_sched serve].

    One JSON object per line in both directions. Requests:
    {v
    {"op": "schedule", "id": "r1", "tenant": "teamA",
     "path": "inst.txt" | "instance": "arch processors 2 ...",
     "seed": 7, "min_iterations": 400, "budget_ms": 0,
     "deadline_ms": 2000, "emit_schedule": false}
    {"op": "metrics", "id": "m1"}
    {"op": "shutdown", "id": "q1"}
    v}
    Responses (one line each, in completion order — not submission
    order):
    {v
    {"id": "r1", "status": "ok", "tenant": "teamA", "makespan": 63,
     "iterations": 400, "degrade": 0, "effective_min_iterations": 400,
     "attempts": 1, "latency_ms": 12.4, "deadline_hit": false}
    {"id": "r2", "status": "rejected", "reason": "queue_full",
     "queue_depth": 64}
    {"id": "r3", "status": "error", "message": "...", "attempts": 3}
    {"id": "m1", "status": "metrics", "metrics": {...}}
    {"id": "q1", "status": "shutdown"}
    v}
    Every request gets exactly one response; load shedding is always a
    structured ["rejected"] line, never a silent drop. [degrade] is the
    graceful-degradation rung the request was served at (0 full PA-R
    budget, 1 reduced restarts, 2 [List_sched] heuristic only), and
    [effective_min_iterations] plus the request's [seed] is the exact
    recipe to reproduce the returned schedule offline with
    [fpga_sched schedule --algo pa-r]. *)

type schedule_params = {
  tenant : string;  (** admission-quota bucket; default ["default"] *)
  seed : int option;
  min_iterations : int option;
  budget_ms : int option;
  deadline_ms : int option;
      (** response deadline relative to submission; past it the request
          is shed ([rejected]/[expired]) or its course cancelled at the
          next slice boundary *)
  fail_attempts : int;
      (** test hook: fail the first N execution attempts (honored only
          when the server enables fault injection) *)
  emit_schedule : bool;
      (** include the full {!Resched_core.Schedule_io} text in the
          response *)
}

type source =
  | Inline of string  (** instance text embedded in the request *)
  | Path of string  (** instance file on the server's filesystem *)

type op =
  | Schedule of source * schedule_params
  | Metrics
  | Shutdown

type request = { id : string; op : op }

val parse_request : string -> (request, string) result
(** Parse one request line. [id] may be a JSON string or integer and
    defaults to [""]; unknown fields are ignored. *)

type reject_reason =
  | Queue_full
  | Tenant_quota
  | Expired
  | Shutting_down
  | Parse_error  (** the request line was not a valid request *)
  | Line_too_long
      (** the request line exceeded the transport's maximum line
          length; the oversized line is discarded but the connection
          stays open *)

val reject_reason_name : reject_reason -> string

type completion = {
  c_id : string;
  c_tenant : string;
  c_makespan : int option;
      (** [None] when no floorplannable schedule was found *)
  c_iterations : int;
  c_degrade : int;  (** 0 full, 1 reduced, 2 heuristic-only *)
  c_effective_min_iterations : int;
  c_attempts : int;
  c_latency_s : float;
  c_deadline_hit : bool;
      (** the course was cancelled at a slice boundary by the deadline *)
  c_schedule : string option;
}

type response =
  | Completed of completion
  | Rejected of {
      id : string;
      reason : reject_reason;
      queue_depth : int;  (** admission-queue depth at the decision *)
    }
  | Failed of { id : string; message : string; attempts : int }
  | Metrics_reply of { id : string; body : Resched_util.Json.t }
  | Shutdown_ack of { id : string }

val response_id : response -> string

val response_json : response -> Resched_util.Json.t

val response_to_line : response -> string
(** Compact single-line JSON, no trailing newline. *)
