(* Multiplexing jsonl transport: one select loop, N clients, reusable
   per-connection ring buffers. See the mli for the contract.

   Threading: the loop (poll/run) is single-threaded. Worker domains
   enter only through a connection's responder closure, which appends
   to that connection's write buffer under [c_wlock] and pokes the
   self-pipe. Loop-side per-connection counters are plain fields; the
   stats snapshot may read them racily from a metrics request, which
   is safe in OCaml (word-sized reads, bounded staleness) and fine for
   monitoring. *)

module Json = Resched_util.Json
module Lineio = Resched_util.Lineio

type conn = {
  c_id : int;
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_source : string;  (* DRR dispatch key: "conn:<id>" *)
  c_reader : Lineio.Reader.t;
  c_writer : Lineio.Writer.t;
  c_wlock : Mutex.t;
  c_owns_fds : bool;
  c_close_server_on_eof : bool;
  c_respond : Protocol.response -> unit;
  c_fill : Bytes.t -> int -> int -> int;
  c_flush : Bytes.t -> int -> int -> int;
  mutable c_open : bool;  (* accepts responses; under c_wlock *)
  mutable c_kill : bool;  (* reap immediately; under c_wlock *)
  mutable c_inflight : int;  (* submitted, not yet answered; c_wlock *)
  mutable c_eof : bool;  (* loop only *)
  mutable c_bytes_in : int;  (* loop only *)
  mutable c_bytes_out : int;  (* loop only *)
}

type t = {
  srv : Server.t;
  max_clients : int;
  max_line : int;
  max_buffered : int;
  drive : bool;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  scratch : Bytes.t;  (* wake-pipe drain buffer; loop only *)
  mutable listen_fd : Unix.file_descr option;
  mutable conns : conn list;  (* replaced wholesale, never mutated *)
  mutable next_id : int;
  mutable accepted : int;
  mutable closed_conns : int;
  mutable total_in : int;
  mutable total_out : int;
  mutable oversized : int;
  dropped : int Atomic.t;  (* responses to dead connections *)
}

(* One shared byte for self-pipe pokes; its content is irrelevant. *)
let wake_byte = Bytes.make 1 '!'

let wake t =
  try ignore (Unix.write t.wake_w wake_byte 0 1 : int)
  with Unix.Unix_error _ -> ()
(* A full pipe (EAGAIN) still wakes the loop; EBADF after the loop is
   gone is a straggler monitoring write, equally ignorable. *)

(* Worker-side response delivery: append to the submitting
   connection's write buffer, disconnect a peer that stopped reading
   (the buffer cap), count what could not be delivered. *)
let conn_respond t c resp =
  let line = Protocol.response_to_line resp in
  Mutex.lock c.c_wlock;
  if c.c_inflight > 0 then c.c_inflight <- c.c_inflight - 1;
  let accepted =
    c.c_open && Lineio.Writer.add_line ~max:t.max_buffered c.c_writer line
  in
  if (not accepted) && c.c_open then begin
    c.c_open <- false;
    c.c_kill <- true;
    Lineio.Writer.clear c.c_writer
  end;
  Mutex.unlock c.c_wlock;
  if not accepted then Atomic.incr t.dropped;
  wake t

let add_conn t ~in_fd ~out_fd ~owns_fds ~close_server_on_eof =
  let id = t.next_id in
  t.next_id <- id + 1;
  let rec c =
    {
      c_id = id;
      c_in = in_fd;
      c_out = out_fd;
      c_source = Printf.sprintf "conn:%d" id;
      c_reader = Lineio.Reader.create ~max_line:t.max_line ();
      c_writer = Lineio.Writer.create ();
      c_wlock = Mutex.create ();
      c_owns_fds = owns_fds;
      c_close_server_on_eof = close_server_on_eof;
      c_respond = (fun resp -> conn_respond t c resp);
      c_fill = (fun b p l -> Unix.read in_fd b p l);
      c_flush = (fun b p l -> Unix.write out_fd b p l);
      c_open = true;
      c_kill = false;
      c_inflight = 0;
      c_eof = false;
      c_bytes_in = 0;
      c_bytes_out = 0;
    }
  in
  t.accepted <- t.accepted + 1;
  t.conns <- t.conns @ [ c ]

let bump_inflight c =
  Mutex.lock c.c_wlock;
  c.c_inflight <- c.c_inflight + 1;
  Mutex.unlock c.c_wlock

(* Extract complete lines and hand them to the server, each stamped
   with this connection's responder and dispatch source. Input past a
   shutdown is never read into requests (matching the single-client
   transport this replaces). *)
let rec drain_lines t c =
  if not (Server.closed t.srv) then
    match Lineio.Reader.next c.c_reader with
    | `Pending -> ()
    | `Overflow _ ->
      t.oversized <- t.oversized + 1;
      bump_inflight c;
      Server.reject_oversized ~respond:c.c_respond t.srv;
      drain_lines t c
    | `Line line ->
      let line = String.trim line in
      if line <> "" then begin
        bump_inflight c;
        Server.submit_line ~respond:c.c_respond ~source:c.c_source t.srv line
      end;
      drain_lines t c

let mark_eof t c =
  if not c.c_eof then begin
    c.c_eof <- true;
    if not (Server.closed t.srv) then (
      match Lineio.Reader.pending_line c.c_reader with
      | Some line ->
        let line = String.trim line in
        if line <> "" then begin
          bump_inflight c;
          Server.submit_line ~respond:c.c_respond ~source:c.c_source t.srv
            line
        end
      | None -> ());
    if c.c_close_server_on_eof then Server.close t.srv
  end

let read_conn t c =
  match Lineio.Reader.fill c.c_reader c.c_fill with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> mark_eof t c
  | 0 -> mark_eof t c
  | n ->
    c.c_bytes_in <- c.c_bytes_in + n;
    t.total_in <- t.total_in + n;
    drain_lines t c

let flush_conn t c =
  Mutex.lock c.c_wlock;
  let wrote =
    match Lineio.Writer.write_with c.c_writer c.c_flush with
    | n -> n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> 0
    | exception (Unix.Unix_error _ | Sys_error _) ->
      (* Peer is gone: abandon its responses, reap the connection. *)
      c.c_open <- false;
      c.c_kill <- true;
      Lineio.Writer.clear c.c_writer;
      0
  in
  Mutex.unlock c.c_wlock;
  c.c_bytes_out <- c.c_bytes_out + wrote;
  t.total_out <- t.total_out + wrote

let reap t =
  let dead, alive =
    List.partition
      (fun c ->
        Mutex.lock c.c_wlock;
        let d =
          c.c_kill
          || c.c_eof && c.c_inflight = 0 && Lineio.Writer.is_empty c.c_writer
        in
        if d then c.c_open <- false;
        Mutex.unlock c.c_wlock;
        d)
      t.conns
  in
  if dead <> [] then begin
    List.iter
      (fun c ->
        t.closed_conns <- t.closed_conns + 1;
        if c.c_owns_fds then begin
          (try Unix.close c.c_in with Unix.Unix_error _ -> ());
          if c.c_out <> c.c_in then
            try Unix.close c.c_out with Unix.Unix_error _ -> ()
        end)
      dead;
    t.conns <- alive
  end

let rec accept_loop t lfd =
  if List.length t.conns < t.max_clients && not (Server.closed t.srv) then
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      add_conn t ~in_fd:fd ~out_fd:fd ~owns_fds:true
        ~close_server_on_eof:false;
      accept_loop t lfd
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()

let drain_wake t =
  let cap = Bytes.length t.scratch in
  let rec go () =
    match Unix.read t.wake_r t.scratch 0 cap with
    | n when n = cap -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let has_output c =
  Mutex.lock c.c_wlock;
  let w = (not (Lineio.Writer.is_empty c.c_writer)) && not c.c_kill in
  Mutex.unlock c.c_wlock;
  w

let poll t ~timeout_s =
  ignore (Server.sweep_expired t.srv : int);
  let srv_closed = Server.closed t.srv in
  let reads =
    (t.wake_r
     ::
     (match t.listen_fd with
     | Some fd when (not srv_closed) && List.length t.conns < t.max_clients
       ->
       [ fd ]
     | _ -> []))
    @ List.filter_map
        (fun c -> if c.c_eof || srv_closed then None else Some c.c_in)
        t.conns
  in
  let writes =
    List.filter_map
      (fun c -> if has_output c then Some c.c_out else None)
      t.conns
  in
  let rd, wr, _ =
    try Unix.select reads writes [] timeout_s
    with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
  in
  if List.mem t.wake_r rd then drain_wake t;
  (match t.listen_fd with
  | Some fd when List.mem fd rd -> accept_loop t fd
  | _ -> ());
  List.iter
    (fun c -> if (not c.c_eof) && List.mem c.c_in rd then read_conn t c)
    t.conns;
  List.iter (fun c -> if List.mem c.c_out wr then flush_conn t c) t.conns;
  reap t

let finished t =
  Server.closed t.srv
  && Server.drained t.srv
  && List.for_all
       (fun c ->
         Mutex.lock c.c_wlock;
         let done_ = Lineio.Writer.is_empty c.c_writer || c.c_kill in
         Mutex.unlock c.c_wlock;
         done_)
       t.conns

(* The wake pipe is deliberately left open: a worker's poke races the
   teardown, and closing the descriptors could hand their numbers to
   an unrelated file mid-write. Two idle descriptors per transport is
   the price of never writing to a recycled fd. *)
let cleanup t =
  (match t.listen_fd with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.listen_fd <- None
  | None -> ());
  List.iter
    (fun c ->
      Mutex.lock c.c_wlock;
      c.c_open <- false;
      Mutex.unlock c.c_wlock;
      t.closed_conns <- t.closed_conns + 1;
      if c.c_owns_fds then begin
        (try Unix.close c.c_in with Unix.Unix_error _ -> ());
        if c.c_out <> c.c_in then
          try Unix.close c.c_out with Unix.Unix_error _ -> ()
      end)
    t.conns;
  t.conns <- []

let run t =
  while not (finished t) do
    let timeout =
      if t.drive then
        match Server.step t.srv with
        | Server.Did_work -> 0.
        | Server.Backoff d -> Float.max 0.001 (Float.min d 0.05)
        | Server.Idle | Server.Drained -> 0.05
      else 0.2
    in
    poll t ~timeout_s:timeout
  done;
  cleanup t

let stats_json t =
  let conns = t.conns in
  Json.Obj
    [
      ("active", Json.Int (List.length conns));
      ("accepted", Json.Int t.accepted);
      ("closed", Json.Int t.closed_conns);
      ("bytes_in", Json.Int t.total_in);
      ("bytes_out", Json.Int t.total_out);
      ("oversized_lines", Json.Int t.oversized);
      ("dropped_responses", Json.Int (Atomic.get t.dropped));
      ( "per_connection",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("id", Json.Int c.c_id);
                   ("source", Json.String c.c_source);
                   ("bytes_in", Json.Int c.c_bytes_in);
                   ("bytes_out", Json.Int c.c_bytes_out);
                   ("inflight", Json.Int c.c_inflight);
                 ])
             conns) );
    ]

let create ?(max_clients = 32) ?(max_line_bytes = 1 lsl 20)
    ?(max_buffered_response_bytes = 8 lsl 20) ?(drive_server = false) srv =
  (* A peer that disconnects mid-write must surface as EPIPE in
     [flush_conn] (which reaps the connection), not as a SIGPIPE that
     kills the whole daemon. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      srv;
      max_clients = Stdlib.max 1 max_clients;
      max_line = Stdlib.max 1 max_line_bytes;
      max_buffered = Stdlib.max 1 max_buffered_response_bytes;
      drive = drive_server;
      wake_r;
      wake_w;
      scratch = Bytes.create 256;
      listen_fd = None;
      conns = [];
      next_id = 0;
      accepted = 0;
      closed_conns = 0;
      total_in = 0;
      total_out = 0;
      oversized = 0;
      dropped = Atomic.make 0;
    }
  in
  Server.set_connection_stats srv (fun () -> stats_json t);
  t

let listen t fd =
  Unix.set_nonblock fd;
  t.listen_fd <- Some fd

let add_channel t ?(close_server_on_eof = false) ?(owns_fds = true) ~in_fd
    ~out_fd () =
  add_conn t ~in_fd ~out_fd ~owns_fds ~close_server_on_eof

let add_socket t fd =
  Unix.set_nonblock fd;
  add_conn t ~in_fd:fd ~out_fd:fd ~owns_fds:true ~close_server_on_eof:false
