module Json = Resched_util.Json
module Fp_cache = Resched_floorplan.Fp_cache
module Instance = Resched_platform.Instance
module Io = Resched_platform.Io
module Pa_random = Resched_core.Pa_random
module Schedule = Resched_core.Schedule
module Schedule_io = Resched_core.Schedule_io
module Validate = Resched_core.Validate
module List_sched = Resched_baseline.List_sched

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  capacity : int;
  tenant_quota : int;
  degrade_low : int;
  degrade_high : int;
  degrade_factor : int;
  slice : int;
  max_retries : int;
  backoff_s : float;
  default_seed : int;
  default_min_iterations : int;
  default_budget_s : float;
  default_deadline_s : float option;
  allow_fault_injection : bool;
  drr_quantum : int;
}

let config ?(capacity = 64) ?tenant_quota ?degrade_low ?degrade_high
    ?(degrade_factor = 8) ?(slice = 16) ?(max_retries = 2)
    ?(backoff_s = 0.05) ?(default_seed = 1) ?(default_min_iterations = 200)
    ?(default_budget_s = 0.) ?default_deadline_s
    ?(allow_fault_injection = false) ?(drr_quantum = 1) () =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Server.config: capacity=%d" capacity);
  if slice < 1 then
    invalid_arg (Printf.sprintf "Server.config: slice=%d" slice);
  if degrade_factor < 1 then
    invalid_arg
      (Printf.sprintf "Server.config: degrade_factor=%d" degrade_factor);
  if drr_quantum < 1 then
    invalid_arg (Printf.sprintf "Server.config: drr_quantum=%d" drr_quantum);
  let tenant_quota =
    match tenant_quota with Some q -> Stdlib.max 1 q | None -> capacity
  in
  let degrade_low =
    match degrade_low with
    | Some v -> Stdlib.max 1 v
    | None -> Stdlib.max 1 (capacity / 4)
  in
  let degrade_high =
    match degrade_high with
    | Some v -> Stdlib.max degrade_low v
    | None -> Stdlib.max degrade_low (3 * capacity / 4)
  in
  {
    capacity;
    tenant_quota;
    degrade_low;
    degrade_high;
    degrade_factor;
    slice;
    max_retries;
    backoff_s = Float.max 0. backoff_s;
    default_seed;
    default_min_iterations = Stdlib.max 1 default_min_iterations;
    default_budget_s = Float.max 0. default_budget_s;
    default_deadline_s;
    allow_fault_injection;
    drr_quantum;
  }

let default_config = config ()

(* ------------------------------------------------------------------ *)
(* State                                                               *)

(* One admitted schedule request. [e_attempt] is the attempt about to
   run (1-based); [e_not_before] gates a retry behind its backoff.
   [e_respond] is the responder the answer must go back through — with
   a multiplexing transport, the connection that submitted it. *)
type entry = {
  e_id : string;
  e_tenant : string;
  e_inst : Instance.t;
  e_seed : int;
  e_min_iterations : int;
  e_budget_s : float;
  e_deadline : float option;  (* absolute, server clock *)
  e_submitted : float;
  e_fail_attempts : int;
  e_emit : bool;
  e_respond : Protocol.response -> unit;
  mutable e_attempt : int;
  mutable e_not_before : float;
}

(* One dispatch source (a connection, or a tenant when the caller does
   not distinguish connections). Admitted entries queue per-source;
   the deficit-round-robin scan in [take_locked] serves the sources in
   rotation so no single flooding source can head-of-line-block the
   rest. [s_in_rotation] means the source is in [rotation] or is the
   current deficit holder. *)
type src = {
  s_key : string;
  s_q : entry Queue.t;
  mutable s_deficit : int;
  mutable s_in_rotation : bool;
  mutable s_enqueued : int;  (* admitted, cumulative *)
  mutable s_dispatched : int;  (* handed to a worker, cumulative *)
}

type t = {
  cfg : config;
  clock : unit -> float;
  cache : Fp_cache.t;
  respond : Protocol.response -> unit;  (* default responder *)
  lock : Mutex.t;
  work : Condition.t;
  sources : (string, src) Hashtbl.t;
  rotation : src Queue.t;  (* active sources, DRR order *)
  mutable drr_current : src option;  (* source whose deficit is draining *)
  mutable pending_total : int;  (* admitted entries across sources *)
  mutable retrying : entry list;  (* backed-off retries, outside the bound *)
  tenants : (string, int) Hashtbl.t;  (* in-flight count per tenant *)
  mutable running : int;
  mutable is_closed : bool;
  mutable conn_stats : (unit -> Json.t) option;
  (* counters, all guarded by [lock] *)
  mutable submitted : int;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable parse_errors : int;
  mutable oversized_lines : int;
  mutable shed_queue_full : int;
  mutable shed_quota : int;
  mutable shed_expired : int;
  mutable shed_shutdown : int;
  degrade_counts : int array;  (* per rung 0..2, counted at completion *)
  mutable retries : int;
  mutable deadline_hits : int;
  mutable invalid_schedules : int;
  mutable max_depth : int;
  latency : Histogram.t;  (* completed requests only *)
  resp_lock : Mutex.t;
}

let create ?clock ?cache ~respond cfg =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  (* Verdict-transparent cache by default: the serve layer promises
     accepted requests are bit-identical to offline runs, which needs
     verdicts that are a pure function of the query (see Batch). *)
  let cache =
    match cache with
    | Some c -> c
    | None -> Fp_cache.create ~subsumption:false ()
  in
  {
    cfg;
    clock;
    cache;
    respond;
    lock = Mutex.create ();
    work = Condition.create ();
    sources = Hashtbl.create 16;
    rotation = Queue.create ();
    drr_current = None;
    pending_total = 0;
    retrying = [];
    tenants = Hashtbl.create 16;
    running = 0;
    is_closed = false;
    conn_stats = None;
    submitted = 0;
    accepted = 0;
    completed = 0;
    failed = 0;
    parse_errors = 0;
    oversized_lines = 0;
    shed_queue_full = 0;
    shed_quota = 0;
    shed_expired = 0;
    shed_shutdown = 0;
    degrade_counts = Array.make 3 0;
    retries = 0;
    deadline_hits = 0;
    invalid_schedules = 0;
    max_depth = 0;
    latency = Histogram.create ();
    resp_lock = Mutex.create ();
  }

let cache t = t.cache

(* Responses are serialized under their own lock so lines never
   interleave, and delivery failures (a client that hung up) never
   poison the request that produced them. *)
let deliver t ~via resp =
  Mutex.lock t.resp_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.resp_lock)
    (fun () -> try via resp with _ -> ())

let tenant_inflight t tenant =
  Option.value (Hashtbl.find_opt t.tenants tenant) ~default:0

let tenant_add t tenant d =
  let v = tenant_inflight t tenant + d in
  if v <= 0 then Hashtbl.remove t.tenants tenant
  else Hashtbl.replace t.tenants tenant v

let depth_locked t = t.pending_total + List.length t.retrying

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let queue_depth t = with_lock t (fun () -> depth_locked t)

let max_queue_depth t = with_lock t (fun () -> t.max_depth)

let closed t = with_lock t (fun () -> t.is_closed)

let drained t =
  with_lock t (fun () ->
      t.is_closed && t.pending_total = 0 && t.retrying = [] && t.running = 0)

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.work)

let set_connection_stats t f =
  with_lock t (fun () -> t.conn_stats <- Some f)

(* ------------------------------------------------------------------ *)
(* Dispatch sources                                                    *)

let source_of_locked t key =
  match Hashtbl.find_opt t.sources key with
  | Some s -> s
  | None ->
    let s =
      {
        s_key = key;
        s_q = Queue.create ();
        s_deficit = 0;
        s_in_rotation = false;
        s_enqueued = 0;
        s_dispatched = 0;
      }
    in
    Hashtbl.add t.sources key s;
    s

(* Idle sources keep their cumulative fairness counters in the table
   (the metrics endpoint reports them); only past this many known
   sources does connection churn start evicting empty idle ones, so a
   long-lived daemon stays bounded. *)
let max_idle_sources = 1024

let maybe_prune_locked t src =
  if
    Hashtbl.length t.sources > max_idle_sources
    && Queue.is_empty src.s_q
    && not src.s_in_rotation
  then Hashtbl.remove t.sources src.s_key

let enqueue_locked t src e =
  Queue.push e src.s_q;
  src.s_enqueued <- src.s_enqueued + 1;
  t.pending_total <- t.pending_total + 1;
  if not src.s_in_rotation then begin
    src.s_in_rotation <- true;
    Queue.push src t.rotation
  end

let deactivate_locked t src =
  src.s_in_rotation <- false;
  src.s_deficit <- 0;
  maybe_prune_locked t src

(* Deficit round robin over the active sources; every request costs
   one unit, each visit grants [drr_quantum] units. With the default
   quantum of 1 this is exact per-source round robin. Only called when
   [pending_total > 0], which guarantees the rotation holds a
   non-empty source. *)
let rec take_locked t =
  match t.drr_current with
  | Some src when (not (Queue.is_empty src.s_q)) && src.s_deficit >= 1 ->
    let e = Queue.pop src.s_q in
    src.s_deficit <- src.s_deficit - 1;
    src.s_dispatched <- src.s_dispatched + 1;
    t.pending_total <- t.pending_total - 1;
    if Queue.is_empty src.s_q then begin
      t.drr_current <- None;
      deactivate_locked t src
    end
    else if src.s_deficit < 1 then begin
      t.drr_current <- None;
      Queue.push src t.rotation
    end;
    e
  | current ->
    (match current with
    | Some src ->
      (* Deficit spent (or the sweeper emptied the queue): rotate. *)
      t.drr_current <- None;
      if Queue.is_empty src.s_q then deactivate_locked t src
      else Queue.push src t.rotation
    | None -> ());
    let src = Queue.pop t.rotation in
    if Queue.is_empty src.s_q then begin
      deactivate_locked t src;
      take_locked t
    end
    else begin
      src.s_deficit <- src.s_deficit + t.cfg.drr_quantum;
      t.drr_current <- Some src;
      take_locked t
    end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let cache_json c =
  let s = Fp_cache.stats c in
  let stripe (st : Fp_cache.stats) =
    Json.Obj
      [
        ("hits", Json.Int st.Fp_cache.hits);
        ("sub_hits", Json.Int st.Fp_cache.sub_hits);
        ("misses", Json.Int st.Fp_cache.misses);
        ("hit_rate", Json.float (Fp_cache.hit_rate st));
      ]
  in
  Json.Obj
    [
      ("l1_hits", Json.Int s.Fp_cache.l1_hits);
      ("hits", Json.Int s.Fp_cache.hits);
      ("sub_hits", Json.Int s.Fp_cache.sub_hits);
      ("misses", Json.Int s.Fp_cache.misses);
      ("inserts", Json.Int s.Fp_cache.inserts);
      ("hit_rate", Json.float (Fp_cache.hit_rate s));
      ( "stripes",
        Json.List (Array.to_list (Array.map stripe (Fp_cache.stripe_stats c)))
      );
      ( "stripe_read_retries",
        Json.List
          (Array.to_list
             (Array.map (fun n -> Json.Int n) (Fp_cache.stripe_read_retries c)))
      );
    ]

let dispatch_json_locked t =
  let srcs = Hashtbl.fold (fun _ s acc -> s :: acc) t.sources [] in
  let srcs = List.sort (fun a b -> compare a.s_key b.s_key) srcs in
  let served = List.filter (fun s -> s.s_dispatched > 0) srcs in
  let dmax = List.fold_left (fun m s -> Stdlib.max m s.s_dispatched) 0 served in
  let dmin =
    match served with
    | [] -> 0
    | _ -> List.fold_left (fun m s -> Stdlib.min m s.s_dispatched) max_int served
  in
  Json.Obj
    [
      ("quantum", Json.Int t.cfg.drr_quantum);
      ( "active_sources",
        Json.Int (List.length (List.filter (fun s -> s.s_in_rotation) srcs)) );
      ("known_sources", Json.Int (List.length srcs));
      ("dispatched_max", Json.Int dmax);
      ("dispatched_min", Json.Int dmin);
      ( "sources",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("source", Json.String s.s_key);
                   ("queued", Json.Int (Queue.length s.s_q));
                   ("deficit", Json.Int s.s_deficit);
                   ("enqueued", Json.Int s.s_enqueued);
                   ("dispatched", Json.Int s.s_dispatched);
                 ])
             srcs) );
    ]

let metrics t =
  with_lock t (fun () ->
      Json.Obj
        ([
           ("schema", Json.String "resched-serve-metrics/2");
           ( "queue",
             Json.Obj
               [
                 ("depth", Json.Int (depth_locked t));
                 ("pending", Json.Int t.pending_total);
                 ("retrying", Json.Int (List.length t.retrying));
                 ("running", Json.Int t.running);
                 ("capacity", Json.Int t.cfg.capacity);
                 ("max_depth", Json.Int t.max_depth);
               ] );
           ( "requests",
             Json.Obj
               [
                 ("submitted", Json.Int t.submitted);
                 ("accepted", Json.Int t.accepted);
                 ("completed", Json.Int t.completed);
                 ("failed", Json.Int t.failed);
                 ("parse_errors", Json.Int t.parse_errors);
                 ("oversized_lines", Json.Int t.oversized_lines);
               ] );
           ( "shed",
             Json.Obj
               [
                 ("queue_full", Json.Int t.shed_queue_full);
                 ("tenant_quota", Json.Int t.shed_quota);
                 ("expired", Json.Int t.shed_expired);
                 ("shutting_down", Json.Int t.shed_shutdown);
               ] );
           ( "degrade",
             Json.Obj
               [
                 ("full", Json.Int t.degrade_counts.(0));
                 ("reduced", Json.Int t.degrade_counts.(1));
                 ("heuristic", Json.Int t.degrade_counts.(2));
               ] );
           ("dispatch", dispatch_json_locked t);
           ( "tenants",
             Json.Obj
               (List.sort compare
                  (Hashtbl.fold
                     (fun k v acc -> (k, Json.Int v) :: acc)
                     t.tenants [])) );
           ("deadline_hits", Json.Int t.deadline_hits);
           ("retries", Json.Int t.retries);
           ("invalid_schedules", Json.Int t.invalid_schedules);
           ("latency", Histogram.to_json t.latency);
           ("fp_cache", cache_json t.cache);
         ]
        @
        match t.conn_stats with
        | Some f -> [ ("connections", (try f () with _ -> Json.Null)) ]
        | None -> []))

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let load_instance source =
  try
    match source with
    | Protocol.Inline s -> Io.of_string s
    | Protocol.Path p -> Io.load p
  with Sys_error m -> Error m

let reject t ~via ~id ~reason ~depth =
  deliver t ~via (Protocol.Rejected { id; reason; queue_depth = depth })

let submit ?respond ?source t (req : Protocol.request) =
  let via = match respond with Some r -> r | None -> t.respond in
  match req.Protocol.op with
  | Protocol.Metrics ->
    deliver t ~via
      (Protocol.Metrics_reply { id = req.Protocol.id; body = metrics t })
  | Protocol.Shutdown ->
    close t;
    deliver t ~via (Protocol.Shutdown_ack { id = req.Protocol.id })
  | Protocol.Schedule (src_spec, p) -> (
    (* Parse/load the instance before touching server state, so a
       malformed request costs admission nothing. *)
    match load_instance src_spec with
    | Error e ->
      with_lock t (fun () ->
          t.submitted <- t.submitted + 1;
          t.parse_errors <- t.parse_errors + 1);
      deliver t ~via
        (Protocol.Failed
           {
             id = req.Protocol.id;
             message = "instance: " ^ e;
             attempts = 0;
           })
    | Ok inst ->
      let now = t.clock () in
      let skey =
        match source with
        | Some s -> s
        | None -> "tenant:" ^ p.Protocol.tenant
      in
      let verdict =
        with_lock t (fun () ->
            t.submitted <- t.submitted + 1;
            if t.is_closed then begin
              t.shed_shutdown <- t.shed_shutdown + 1;
              `Reject (Protocol.Shutting_down, depth_locked t)
            end
            else if t.pending_total >= t.cfg.capacity then begin
              t.shed_queue_full <- t.shed_queue_full + 1;
              `Reject (Protocol.Queue_full, depth_locked t)
            end
            else if tenant_inflight t p.Protocol.tenant >= t.cfg.tenant_quota
            then begin
              t.shed_quota <- t.shed_quota + 1;
              `Reject (Protocol.Tenant_quota, depth_locked t)
            end
            else begin
              let e =
                {
                  e_id = req.Protocol.id;
                  e_tenant = p.Protocol.tenant;
                  e_inst = inst;
                  e_seed =
                    Option.value p.Protocol.seed ~default:t.cfg.default_seed;
                  e_min_iterations =
                    Stdlib.max 1
                      (Option.value p.Protocol.min_iterations
                         ~default:t.cfg.default_min_iterations);
                  e_budget_s =
                    (match p.Protocol.budget_ms with
                    | Some b -> Float.max 0. (float_of_int b /. 1000.)
                    | None -> t.cfg.default_budget_s);
                  e_deadline =
                    (match p.Protocol.deadline_ms with
                    | Some d -> Some (now +. (float_of_int d /. 1000.))
                    | None ->
                      Option.map (fun d -> now +. d) t.cfg.default_deadline_s);
                  e_submitted = now;
                  e_fail_attempts =
                    (if t.cfg.allow_fault_injection then
                       p.Protocol.fail_attempts
                     else 0);
                  e_emit = p.Protocol.emit_schedule;
                  e_respond = via;
                  e_attempt = 1;
                  e_not_before = 0.;
                }
              in
              t.accepted <- t.accepted + 1;
              tenant_add t p.Protocol.tenant 1;
              enqueue_locked t (source_of_locked t skey) e;
              let d = depth_locked t in
              if d > t.max_depth then t.max_depth <- d;
              Condition.signal t.work;
              `Accepted
            end)
      in
      (match verdict with
      | `Accepted -> ()
      | `Reject (reason, depth) ->
        reject t ~via ~id:req.Protocol.id ~reason ~depth))

let submit_line ?respond ?source t line =
  let via = match respond with Some r -> r | None -> t.respond in
  match Protocol.parse_request line with
  | Ok req -> submit ~respond:via ?source t req
  | Error _ ->
    let depth =
      with_lock t (fun () ->
          t.parse_errors <- t.parse_errors + 1;
          depth_locked t)
    in
    reject t ~via ~id:"" ~reason:Protocol.Parse_error ~depth

(* Transport hook: a line exceeded the framing limit and was discarded
   before it could even be parsed — answer with a structured rejection
   on the connection that sent it, keeping the connection alive. *)
let reject_oversized ?respond t =
  let via = match respond with Some r -> r | None -> t.respond in
  let depth =
    with_lock t (fun () ->
        t.oversized_lines <- t.oversized_lines + 1;
        depth_locked t)
  in
  reject t ~via ~id:"" ~reason:Protocol.Line_too_long ~depth

(* ------------------------------------------------------------------ *)
(* Deadline sweeping                                                   *)

(* Requests whose deadline passed while still queued are shed here, not
   at dispatch, so their [rejected]/[expired] line goes out as soon as a
   sweeper notices — workers sweep before picking work, and the
   transport sweeps on every poll tick. Sources left empty by the sweep
   are deactivated lazily by the next [take_locked] scan. *)
let sweep_expired t =
  let expired =
    with_lock t (fun () ->
        let now = t.clock () in
        let live e =
          match e.e_deadline with Some d -> now < d | None -> true
        in
        let dead = ref [] in
        Hashtbl.iter
          (fun _ src ->
            if not (Queue.is_empty src.s_q) then begin
              let before = Queue.length src.s_q in
              let keep = Queue.create () in
              Queue.iter
                (fun e ->
                  if live e then Queue.push e keep else dead := e :: !dead)
                src.s_q;
              if Queue.length keep <> before then begin
                t.pending_total <-
                  t.pending_total - (before - Queue.length keep);
                Queue.clear src.s_q;
                Queue.transfer keep src.s_q
              end
            end)
          t.sources;
        let keep_r, dead_r = List.partition live t.retrying in
        t.retrying <- keep_r;
        let dead = List.rev !dead @ dead_r in
        List.iter
          (fun e ->
            tenant_add t e.e_tenant (-1);
            t.shed_expired <- t.shed_expired + 1)
          dead;
        List.map (fun e -> (e, depth_locked t)) dead)
  in
  List.iter
    (fun (e, depth) ->
      reject t ~via:e.e_respond ~id:e.e_id ~reason:Protocol.Expired ~depth)
    expired;
  List.length expired

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

(* The degradation rung is chosen from the queue depth left behind at
   dispatch: a deep backlog means every queued request is burning its
   deadline budget waiting, so the one being served gets a cheaper
   recipe. The rung (and the effective budget it implies) is reported
   in the response — a degraded answer is never silent. *)
let degrade_level cfg ~depth =
  if depth >= cfg.degrade_high then 2
  else if depth >= cfg.degrade_low then 1
  else 0

let effective_budget cfg e ~level =
  match level with
  | 2 -> (0, 0.)
  | 1 ->
    ( Stdlib.max 1 (e.e_min_iterations / cfg.degrade_factor),
      e.e_budget_s /. float_of_int cfg.degrade_factor )
  | _ -> (e.e_min_iterations, e.e_budget_s)

(* One execution attempt. Returns the completion to deliver; raises on
   worker failure (injected faults and real ones alike) — the caller
   owns retry policy. *)
let run_attempt t e ~level ~eff_iters ~eff_budget =
  if t.cfg.allow_fault_injection && e.e_attempt <= e.e_fail_attempts then
    failwith (Printf.sprintf "injected fault (attempt %d)" e.e_attempt);
  let deadline_hit = ref false in
  let schedule, iterations =
    if level = 2 then (Some (List_sched.run ~cache:t.cache e.e_inst), 0)
    else begin
      let cancel =
        Option.map
          (fun d () ->
            if t.clock () >= d then begin
              deadline_hit := true;
              true
            end
            else false)
          e.e_deadline
      in
      let course =
        Pa_random.Course.create ~cache:t.cache ?cancel ~seed:e.e_seed
          ~min_iterations:eff_iters ~budget_seconds:eff_budget e.e_inst
      in
      while not (Pa_random.Course.finished course) do
        ignore
          (Pa_random.Course.run_slice course ~max_iterations:t.cfg.slice : int)
      done;
      let o = Pa_random.Course.outcome course in
      (o.Pa_random.schedule, o.Pa_random.iterations)
    end
  in
  let makespan, sched_text =
    match schedule with
    | None -> (None, None)
    | Some s -> (
      (* Independent re-check of every schedule that leaves the service:
         an invalid one becomes a structured failure, never an "ok". *)
      match Validate.check s with
      | Ok () ->
        ( Some s.Schedule.makespan,
          if e.e_emit then Some (Schedule_io.to_string s) else None )
      | Error violations ->
        with_lock t (fun () ->
            t.invalid_schedules <- t.invalid_schedules + 1);
        raise (Validate.Invalid violations))
  in
  (makespan, iterations, sched_text, !deadline_hit)

let complete t e ~level ~eff_iters (makespan, iterations, sched_text, hit) =
  let latency =
    with_lock t (fun () ->
        tenant_add t e.e_tenant (-1);
        t.completed <- t.completed + 1;
        t.degrade_counts.(level) <- t.degrade_counts.(level) + 1;
        if hit then t.deadline_hits <- t.deadline_hits + 1;
        let lat = t.clock () -. e.e_submitted in
        Histogram.add t.latency lat;
        lat)
  in
  deliver t ~via:e.e_respond
    (Protocol.Completed
       {
         Protocol.c_id = e.e_id;
         c_tenant = e.e_tenant;
         c_makespan = makespan;
         c_iterations = iterations;
         c_degrade = level;
         c_effective_min_iterations = eff_iters;
         c_attempts = e.e_attempt;
         c_latency_s = latency;
         c_deadline_hit = hit;
         c_schedule = sched_text;
       })

(* Crash containment: any exception out of an attempt is caught here —
   the worker survives, the request alone retries (exponential backoff,
   through the unbounded [retrying] side-queue so a storm of retries
   can never evict fresh admissions) or fails with a structured error
   once its retry budget or deadline is spent. *)
let handle_failure t e exn =
  let msg = Printexc.to_string exn in
  let now = t.clock () in
  let deadline_ok =
    match e.e_deadline with None -> true | Some d -> now < d
  in
  let retry =
    with_lock t (fun () ->
        if e.e_attempt <= t.cfg.max_retries && deadline_ok then begin
          t.retries <- t.retries + 1;
          e.e_attempt <- e.e_attempt + 1;
          e.e_not_before <-
            now +. (t.cfg.backoff_s *. (2. ** float_of_int (e.e_attempt - 2)));
          t.retrying <- t.retrying @ [ e ];
          Condition.signal t.work;
          true
        end
        else begin
          tenant_add t e.e_tenant (-1);
          t.failed <- t.failed + 1;
          false
        end)
  in
  if not retry then
    deliver t ~via:e.e_respond
      (Protocol.Failed { id = e.e_id; message = msg; attempts = e.e_attempt })

let process_entry t e ~depth =
  let now = t.clock () in
  match e.e_deadline with
  | Some d when now >= d ->
    (* Expired while queued and missed by the sweepers: still a
       structured rejection, never silently dropped. *)
    with_lock t (fun () ->
        tenant_add t e.e_tenant (-1);
        t.shed_expired <- t.shed_expired + 1);
    reject t ~via:e.e_respond ~id:e.e_id ~reason:Protocol.Expired ~depth
  | _ -> (
    let level = degrade_level t.cfg ~depth in
    let eff_iters, eff_budget = effective_budget t.cfg e ~level in
    match run_attempt t e ~level ~eff_iters ~eff_budget with
    | result -> complete t e ~level ~eff_iters result
    | exception exn -> handle_failure t e exn)

(* ------------------------------------------------------------------ *)
(* Work loops                                                          *)

type picked =
  | P_entry of entry * int
  | P_backoff of float
  | P_idle
  | P_drained

let pick_locked t =
  let now = t.clock () in
  let ready, waiting =
    List.partition (fun e -> e.e_not_before <= now) t.retrying
  in
  (* Dispatch depth is measured before removing the entry: the rung a
     request is served at reflects the load it was part of, and the
     choice is explicit rather than left to argument evaluation
     order. *)
  match ready with
  | e :: rest ->
    let depth = depth_locked t in
    t.retrying <- rest @ waiting;
    P_entry (e, depth)
  | [] ->
    if t.pending_total > 0 then begin
      let depth = depth_locked t in
      P_entry (take_locked t, depth)
    end
    else if waiting <> [] then
      P_backoff
        (List.fold_left
           (fun acc e -> Float.min acc (e.e_not_before -. now))
           infinity waiting)
    else if t.is_closed && t.running = 0 then P_drained
    else P_idle

type step_result = Did_work | Backoff of float | Idle | Drained

let step t =
  ignore (sweep_expired t : int);
  Mutex.lock t.lock;
  match pick_locked t with
  | P_drained ->
    Mutex.unlock t.lock;
    Drained
  | P_idle ->
    Mutex.unlock t.lock;
    Idle
  | P_backoff d ->
    Mutex.unlock t.lock;
    Backoff d
  | P_entry (e, depth) ->
    t.running <- t.running + 1;
    Mutex.unlock t.lock;
    Fun.protect
      ~finally:(fun () ->
        with_lock t (fun () ->
            t.running <- t.running - 1;
            Condition.broadcast t.work))
      (fun () -> process_entry t e ~depth);
    Did_work

let work_loop t =
  let rec loop () =
    ignore (sweep_expired t : int);
    Mutex.lock t.lock;
    let rec decide () =
      match pick_locked t with
      | P_drained ->
        (* Wake siblings blocked in P_idle so they observe the drain. *)
        Condition.broadcast t.work;
        Mutex.unlock t.lock;
        `Stop
      | P_idle ->
        Condition.wait t.work t.lock;
        decide ()
      | P_backoff d ->
        Mutex.unlock t.lock;
        `Sleep d
      | P_entry (e, depth) ->
        t.running <- t.running + 1;
        Mutex.unlock t.lock;
        `Work (e, depth)
    in
    match decide () with
    | `Stop -> ()
    | `Sleep d ->
      (* Capped nap: a fresh submission or close must be noticed soon
         even though sleepers do not sit on the condition variable. *)
      Unix.sleepf (Float.max 0.001 (Float.min d 0.05));
      loop ()
    | `Work (e, depth) ->
      Fun.protect
        ~finally:(fun () ->
          with_lock t (fun () ->
              t.running <- t.running - 1;
              Condition.broadcast t.work))
        (fun () -> process_entry t e ~depth);
      loop ()
  in
  loop ()

let drain t =
  let rec go () =
    match step t with
    | Drained -> ()
    | Did_work -> go ()
    | Backoff d ->
      Unix.sleepf (Float.max 0.001 (Float.min d 0.05));
      go ()
    | Idle ->
      Unix.sleepf 0.001;
      go ()
  in
  go ()
