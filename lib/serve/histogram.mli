(** Fixed-bucket geometric latency histogram for the serve layer.

    Forty buckets with exponentially growing upper edges cover 10 us to
    about three hours, so one [add] is an O(buckets) array walk with no
    allocation — cheap enough to run under the server's state lock on
    every response. Quantiles are read from the bucket edges, so they
    are upper bounds with at most one bucket (2x) of resolution error;
    the serve bench computes its gate-grade percentiles from raw
    samples and uses this histogram only for the [metrics] endpoint.

    Not thread-safe: the server guards each instance with its state
    lock. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one latency sample in seconds (negatives clamp to zero). *)

val count : t -> int

val max_seconds : t -> float
(** Largest sample recorded; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile h q] with [q] in [0, 1]: the inclusive upper edge of the
    bucket holding the [ceil (q * count)]-th smallest sample, capped at
    {!max_seconds}; 0 when empty. *)

val to_json : t -> Resched_util.Json.t
(** [{count; mean_ms; max_ms; p50_ms; p95_ms; p99_ms; buckets}] with
    [buckets] the non-empty buckets as [[upper_edge_ms; count]] pairs. *)
