module Json = Resched_util.Json

(* Bucket i holds samples in (edge (i-1), edge i]; the last bucket also
   absorbs everything larger. base 1e-5 s with doubling edges spans
   10 us .. ~3 h in 40 buckets. *)
let bucket_count = 40

let base = 1e-5

let edge i = base *. (2. ** float_of_int i)

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_s : float;
}

let create () =
  { counts = Array.make bucket_count 0; total = 0; sum = 0.; max_s = 0. }

let index v =
  let rec find i =
    if i >= bucket_count - 1 || v <= edge i then i else find (i + 1)
  in
  find 0

let add h v =
  let v = if v < 0. then 0. else v in
  h.counts.(index v) <- h.counts.(index v) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum +. v;
  if v > h.max_s then h.max_s <- v

let count h = h.total

let max_seconds h = h.max_s

let quantile h q =
  if h.total = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.total)))
    in
    let rec walk i acc =
      let acc = acc + h.counts.(i) in
      if acc >= rank || i = bucket_count - 1 then
        Float.min (edge i) h.max_s
      else walk (i + 1) acc
    in
    walk 0 0
  end

let ms s = Json.float (1000. *. s)

let to_json h =
  let buckets =
    Array.to_list h.counts
    |> List.mapi (fun i n -> (i, n))
    |> List.filter_map (fun (i, n) ->
           if n = 0 then None
           else Some (Json.List [ ms (edge i); Json.Int n ]))
  in
  Json.Obj
    [
      ("count", Json.Int h.total);
      ("mean_ms", ms (if h.total = 0 then 0. else h.sum /. float_of_int h.total));
      ("max_ms", ms h.max_s);
      ("p50_ms", ms (quantile h 0.5));
      ("p95_ms", ms (quantile h 0.95));
      ("p99_ms", ms (quantile h 0.99));
      ("buckets", Json.List buckets);
    ]
