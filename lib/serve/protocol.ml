module Json = Resched_util.Json

type schedule_params = {
  tenant : string;
  seed : int option;
  min_iterations : int option;
  budget_ms : int option;
  deadline_ms : int option;
  fail_attempts : int;
  emit_schedule : bool;
}

type source = Inline of string | Path of string

type op = Schedule of source * schedule_params | Metrics | Shutdown

type request = { id : string; op : op }

let parse_request line =
  match Json.parse line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j ->
    let str k = Option.bind (Json.member k j) Json.get_string in
    let int k = Option.bind (Json.member k j) Json.get_int in
    let bool k = Option.bind (Json.member k j) Json.get_bool in
    let id =
      match Json.member "id" j with
      | Some (Json.String s) -> s
      | Some (Json.Int n) -> string_of_int n
      | Some _ | None -> ""
    in
    (match str "op" with
    | Some "metrics" -> Ok { id; op = Metrics }
    | Some "shutdown" -> Ok { id; op = Shutdown }
    | Some "schedule" -> (
      let source =
        match (str "instance", str "path") with
        | Some s, _ -> Ok (Inline s)
        | None, Some p -> Ok (Path p)
        | None, None ->
          Error "schedule request needs \"instance\" or \"path\""
      in
      match source with
      | Error e -> Error e
      | Ok source ->
        let params =
          {
            tenant = Option.value (str "tenant") ~default:"default";
            seed = int "seed";
            min_iterations = int "min_iterations";
            budget_ms = int "budget_ms";
            deadline_ms = int "deadline_ms";
            fail_attempts = Option.value (int "fail_attempts") ~default:0;
            emit_schedule =
              Option.value (bool "emit_schedule") ~default:false;
          }
        in
        Ok { id; op = Schedule (source, params) })
    | Some other -> Error (Printf.sprintf "unknown op %S" other)
    | None -> Error "missing \"op\"")

type reject_reason =
  | Queue_full
  | Tenant_quota
  | Expired
  | Shutting_down
  | Parse_error
  | Line_too_long

let reject_reason_name = function
  | Queue_full -> "queue_full"
  | Tenant_quota -> "tenant_quota"
  | Expired -> "expired"
  | Shutting_down -> "shutting_down"
  | Parse_error -> "parse_error"
  | Line_too_long -> "line_too_long"

type completion = {
  c_id : string;
  c_tenant : string;
  c_makespan : int option;
  c_iterations : int;
  c_degrade : int;
  c_effective_min_iterations : int;
  c_attempts : int;
  c_latency_s : float;
  c_deadline_hit : bool;
  c_schedule : string option;
}

type response =
  | Completed of completion
  | Rejected of { id : string; reason : reject_reason; queue_depth : int }
  | Failed of { id : string; message : string; attempts : int }
  | Metrics_reply of { id : string; body : Json.t }
  | Shutdown_ack of { id : string }

let response_id = function
  | Completed c -> c.c_id
  | Rejected r -> r.id
  | Failed f -> f.id
  | Metrics_reply m -> m.id
  | Shutdown_ack s -> s.id

let response_json = function
  | Completed c ->
    Json.Obj
      ([
         ("id", Json.String c.c_id);
         ("status", Json.String "ok");
         ("tenant", Json.String c.c_tenant);
         ( "makespan",
           match c.c_makespan with Some m -> Json.Int m | None -> Json.Null
         );
         ("iterations", Json.Int c.c_iterations);
         ("degrade", Json.Int c.c_degrade);
         ("effective_min_iterations", Json.Int c.c_effective_min_iterations);
         ("attempts", Json.Int c.c_attempts);
         ("latency_ms", Json.float (1000. *. c.c_latency_s));
         ("deadline_hit", Json.Bool c.c_deadline_hit);
       ]
      @
      match c.c_schedule with
      | Some s -> [ ("schedule", Json.String s) ]
      | None -> [])
  | Rejected r ->
    Json.Obj
      [
        ("id", Json.String r.id);
        ("status", Json.String "rejected");
        ("reason", Json.String (reject_reason_name r.reason));
        ("queue_depth", Json.Int r.queue_depth);
      ]
  | Failed f ->
    Json.Obj
      [
        ("id", Json.String f.id);
        ("status", Json.String "error");
        ("message", Json.String f.message);
        ("attempts", Json.Int f.attempts);
      ]
  | Metrics_reply m ->
    Json.Obj
      [
        ("id", Json.String m.id);
        ("status", Json.String "metrics");
        ("metrics", m.body);
      ]
  | Shutdown_ack s ->
    Json.Obj
      [ ("id", Json.String s.id); ("status", Json.String "shutdown") ]

let response_to_line r = Json.to_string ~indent:0 (response_json r)
