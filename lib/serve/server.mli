(** The scheduling service engine behind [fpga_sched serve].

    A thread-safe request broker wrapping the solver stack
    ({!Resched_core.Pa_random} courses, {!Resched_baseline.List_sched}
    as the last degradation rung) behind bounded admission, per-tenant
    quotas, per-request deadline budgets and bounded retries. The
    engine is transport-agnostic: {!submit} feeds it parsed
    {!Protocol.request}s from any thread, completed
    {!Protocol.response}s come back through the [respond] callback, and
    the actual solving happens in whichever domains run {!work_loop}
    (e.g. the workers of one persistent
    {!Resched_util.Domain_pool.Pool}) — or cooperatively via {!step} on
    a single domain.

    {b Robustness contract.}
    - Every submitted request gets exactly one response; shedding is a
      structured [Rejected] line, never a silent drop.
    - The admission queue never holds more than [capacity] entries;
      beyond it (or a tenant's quota) requests are shed at submission.
    - A request past its deadline is shed if still queued, and an
      in-flight one is cancelled at the next {!Pa_random.Course} slice
      boundary — a worker is never hung by an expired request.
    - Worker failures are contained per request: the attempt is retried
      with exponential backoff (up to [max_retries], through a side
      queue that cannot evict fresh admissions) and then reported as a
      structured [Failed] response. The worker and its pool survive.
    - Degradation under load is explicit: the rung (0 full budget, 1
      restarts cut by [degrade_factor], 2 heuristic-only) is picked
      from the queue depth at dispatch — counting the request being
      dispatched — and reported in the response.
    - Dispatch is fair across sources: admitted requests queue per
      [source] (per connection under the multiplexing transport,
      per tenant otherwise) and workers drain the sources
      deficit-round-robin, so a source flooding the admission queue
      delays its own requests, not everyone else's.

    {b Determinism.} The engine shares one verdict-transparent
    {!Resched_floorplan.Fp_cache} across requests, so a completed
    request at degradation rung 0 or 1 is bit-identical to an offline
    [Pa_random.run ~seed ~min_iterations:effective ~budget_seconds:0.]
    of the same instance whenever its budget is iteration-bounded
    (tested). An injectable [clock] makes deadline/backoff behaviour
    replayable in tests. *)

type config = {
  capacity : int;  (** admission-queue bound *)
  tenant_quota : int;  (** max in-flight requests per tenant *)
  degrade_low : int;  (** queue depth where rung 1 starts *)
  degrade_high : int;  (** queue depth where rung 2 starts *)
  degrade_factor : int;  (** restart-budget divisor at rung 1 *)
  slice : int;  (** course iterations between cancellation checks *)
  max_retries : int;  (** retries after the first failed attempt *)
  backoff_s : float;  (** base retry backoff, doubling per attempt *)
  default_seed : int;
  default_min_iterations : int;
  default_budget_s : float;
  default_deadline_s : float option;
      (** deadline for requests that do not carry one; [None] = none *)
  allow_fault_injection : bool;
      (** honor the protocol's [fail_attempts] test hook *)
  drr_quantum : int;
      (** deficit-round-robin units granted per source visit (requests
          are unit cost, so 1 = exact per-source round robin) *)
}

val config :
  ?capacity:int ->
  ?tenant_quota:int ->
  ?degrade_low:int ->
  ?degrade_high:int ->
  ?degrade_factor:int ->
  ?slice:int ->
  ?max_retries:int ->
  ?backoff_s:float ->
  ?default_seed:int ->
  ?default_min_iterations:int ->
  ?default_budget_s:float ->
  ?default_deadline_s:float ->
  ?allow_fault_injection:bool ->
  ?drr_quantum:int ->
  unit ->
  config
(** Defaults: capacity 64, quota = capacity (no per-tenant limit),
    rungs at capacity/4 and 3*capacity/4, factor 8, slice 16, 2
    retries from 50 ms backoff, seed 1, 200 restarts, no wall-clock
    budget, no default deadline, fault injection off, DRR quantum 1.
    Out-of-range values are clamped ([degrade_high >= degrade_low >=
    1]); [capacity < 1], [slice < 1], [degrade_factor < 1] and
    [drr_quantum < 1] raise [Invalid_argument]. *)

val default_config : config

type t

val create :
  ?clock:(unit -> float) ->
  ?cache:Resched_floorplan.Fp_cache.t ->
  respond:(Protocol.response -> unit) ->
  config ->
  t
(** [clock] (default [Unix.gettimeofday]) is the only time source the
    engine consults — deadlines, backoffs and latency stamps all read
    it, so tests drive a virtual clock. [cache] (default a fresh
    [Fp_cache.create ~subsumption:false ()]) must be
    verdict-transparent for the offline bit-identity contract to hold.
    [respond] is invoked exactly once per request, serialized under an
    internal lock, from whichever domain finished the request; it must
    not call back into this module, and exceptions it raises are
    swallowed. *)

val cache : t -> Resched_floorplan.Fp_cache.t

val submit :
  ?respond:(Protocol.response -> unit) ->
  ?source:string ->
  t ->
  Protocol.request ->
  unit
(** Admit (or shed) one request. [Metrics] and [Shutdown] are answered
    inline on the calling thread; [Schedule] requests are parsed,
    admission-checked and either enqueued or answered with a
    structured rejection immediately. Thread-safe.

    [respond] overrides the server-wide responder for every response
    this request produces — a multiplexing transport passes the
    submitting connection's writer. [source] names the
    deficit-round-robin dispatch queue the request joins (default
    ["tenant:<tenant>"]); a transport passes a per-connection key so
    one flooding connection cannot head-of-line-block the others. *)

val submit_line :
  ?respond:(Protocol.response -> unit) -> ?source:string -> t -> string -> unit
(** {!Protocol.parse_request} + {!submit}; malformed lines get a
    structured [Rejected] response with reason [parse_error] and an
    empty id (the connection stays usable). *)

val reject_oversized : ?respond:(Protocol.response -> unit) -> t -> unit
(** Transport hook: count and answer (reason [line_too_long], empty
    id) a request line that exceeded the framing limit and was
    discarded unread. *)

val close : t -> unit
(** Stop admitting [Schedule] requests (they shed as [Shutting_down]);
    already-accepted work still runs to a response. {!work_loop}s
    return once closed {e and} drained. *)

val closed : t -> bool

val drained : t -> bool
(** Closed, with every accepted request answered and no worker mid-
    request — the condition under which {!work_loop}s return and a
    transport may stop flushing. *)

val set_connection_stats : t -> (unit -> Resched_util.Json.t) -> unit
(** Register a transport's connection-stats provider; its result is
    embedded as the ["connections"] object of {!metrics}. The callback
    runs on whatever thread serves the metrics request and must not
    call back into this module. *)

val work_loop : t -> unit
(** Blocking worker body: repeatedly sweep expired queue entries, pick
    work (ready retries first, then the admission queue) and process
    it. Run it on any number of domains. Returns when the server is
    closed and every accepted request has been answered. *)

type step_result =
  | Did_work  (** one request was processed to its response *)
  | Backoff of float  (** only backed-off retries remain; seconds left *)
  | Idle  (** nothing to do right now *)
  | Drained  (** closed and everything answered *)

val step : t -> step_result
(** Non-blocking, single-request alternative to {!work_loop} for
    event-loop embedding (the CLI's [--jobs 1] mode) and for
    deterministic tests, which advance a virtual clock between
    steps. *)

val drain : t -> unit
(** Drive {!step} (sleeping through backoffs) until [Drained].
    Call after {!close}. *)

val sweep_expired : t -> int
(** Shed every queued request whose deadline has passed (structured
    [Expired] rejections); returns how many. Workers and {!step} sweep
    automatically; a transport loop should also call this on its poll
    tick so expirations are noticed while all workers are busy. *)

val metrics : t -> Resched_util.Json.t
(** The [metrics] response body: queue gauges, request/shed/degrade
    counters, retry and deadline counts, the completed-request latency
    histogram ({!Histogram.to_json}), floorplan-cache stripe hit
    rates, the DRR dispatch table (per-source queued/enqueued/
    dispatched fairness counters and their max/min), per-tenant
    in-flight occupancy, and — when a transport registered
    {!set_connection_stats} — per-connection transport counters. *)

val queue_depth : t -> int

val max_queue_depth : t -> int
(** High-water mark of the admission queue (including retries). *)
