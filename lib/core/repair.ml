module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl

type fault =
  | Reconf_failed of { region : int; t_in : int; t_out : int; failures : int }
  | Task_overrun of { task : int; end_at : int }
  | Region_dead of { region : int }

type policy = Retry | Sw_fallback | Resched_tail

type action =
  | Retried of { region : int; t_out : int; attempts : int }
  | Migrated of { task : int; processor : int }
  | Retimed of { compacted : bool }

let policy_name = function
  | Retry -> "retry"
  | Sw_fallback -> "sw-fallback"
  | Resched_tail -> "resched-tail"

let policy_of_string = function
  | "retry" -> Ok Retry
  | "sw-fallback" | "sw_fallback" | "sw" -> Ok Sw_fallback
  | "resched-tail" | "resched_tail" | "tail" -> Ok Resched_tail
  | s ->
    Error
      (Printf.sprintf "unknown policy %S (expected retry, sw-fallback or \
                       resched-tail)" s)

let action_key = function
  | Retried _ -> "retry"
  | Migrated _ -> "migrate"
  | Retimed _ -> "retime"

let pp_action ppf = function
  | Retried { region; t_out; attempts } ->
    Format.fprintf ppf "retried region %d load for task %d (attempt %d)"
      region t_out attempts
  | Migrated { task; processor } ->
    Format.fprintf ppf "migrated task %d to SW on processor %d" task processor
  | Retimed { compacted } ->
    Format.fprintf ppf "retimed schedule tail%s"
      (if compacted then " (compacted)" else "")

let pp_fault ppf = function
  | Reconf_failed { region; t_in; t_out; failures } ->
    Format.fprintf ppf "reconfiguration (region %d, %d->%d) failed %d time(s)"
      region t_in t_out failures
  | Task_overrun { task; end_at } ->
    Format.fprintf ppf "task %d overran to end at %d" task end_at
  | Region_dead { region } -> Format.fprintf ppf "region %d died" region

(* Internal early-exit carrier; every [raise] below is caught by [repair]
   and surfaced as [Error]. *)
exception Bail of string

let bail fmt = Printf.ksprintf (fun m -> raise (Bail m)) fmt

(* A repair is computed in four moves:

   1. Decide the structural change: which tasks leave their region for a
      software fallback, which reconfiguration gets retried (and how much
      controller time the failed attempts burned), which task carries an
      overrun.
   2. Rebuild the precedence plan of the surviving decisions — data
      edges, region chains (with one node per kept reconfiguration),
      the committed controller order — exactly like the validator and
      the executor do, from the public schedule alone.
   3. Re-time with {!Timing.Solver} under per-activity release times:
      finished and in-flight activities are pinned to their committed
      starts (history cannot move), the faulted activity is pushed to
      its post-fault earliest start, and the pending tail either keeps
      its committed starts ([Retry]/[Sw_fallback]: pure right-shift) or
      restarts from the fault instant ([Resched_tail]: the suffix is
      recomputed and may reclaim slack). Processor orders are rebuilt
      from a first chain-free resolve, so migrated tasks slot into each
      processor's queue wherever their dependencies allow.
   4. Check the result with {!Validate.check}; a repair that does not
      validate is never returned. *)

let repair ?(max_attempts = 3) ?(backoff = 0) ~policy ~at ~fault
    (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let procs = inst.Instance.arch.Arch.processors in
  let slot u = sched.Schedule.slots.(u) in
  let impl_of u = Instance.impl inst ~task:u ~idx:(slot u).Schedule.impl_idx in
  let finished u = (slot u).Schedule.end_ <= at in
  let rcs = Array.of_list sched.Schedule.reconfigurations in
  let find_rc region a b =
    let found = ref None in
    Array.iteri
      (fun k (rc : Schedule.reconfiguration) ->
        if
          !found = None && rc.Schedule.region = region
          && rc.Schedule.t_in = a && rc.Schedule.t_out = b
        then found := Some (k, rc))
      rcs;
    !found
  in
  try
    (* -------------------------------------------------------------- *)
    (* 1. Structural decision.                                         *)
    let region_suffix ridx ~from_task =
      let rec drop = function
        | x :: tl -> if x = from_task then x :: tl else drop tl
        | [] -> []
      in
      drop (Schedule.region_tasks_in_order sched ridx)
    in
    (* [to_migrate] is always a suffix of its region's execution order,
       so the kept prefix's reconfigurations stay pairwise intact. *)
    let to_migrate, retried, overrun, base_actions =
      match fault with
      | Task_overrun { task; end_at } ->
        if task < 0 || task >= n then bail "overrun: unknown task %d" task;
        (* An overrun is detected at the task's committed end, so [at]
           equals that end; only a strictly earlier end means the event
           arrived stale. *)
        if (slot task).Schedule.end_ < at then
          bail "overrun: task %d already finished at %d" task
            (slot task).Schedule.end_;
        if end_at <= (slot task).Schedule.end_ then
          bail "overrun: task %d 'overran' to %d, not past its end %d" task
            end_at (slot task).Schedule.end_;
        ( [],
          None,
          Some (task, end_at),
          [ Retimed { compacted = policy = Resched_tail } ] )
      | Reconf_failed { region; t_in; t_out; failures } -> (
        match find_rc region t_in t_out with
        | None ->
          bail "reconf-failure: no reconfiguration (region %d, %d->%d)" region
            t_in t_out
        | Some (k, rc) ->
          if failures < max_attempts then begin
            let dur = rc.Schedule.r_end - rc.Schedule.r_start in
            let delay = failures * (dur + backoff) in
            ( [],
              Some (k, delay),
              None,
              [ Retried { region; t_out; attempts = failures + 1 } ] )
          end
          else begin
            match policy with
            | Retry ->
              bail
                "reconf-failure: region %d load for task %d still failing \
                 after %d attempts (Retry gives up)"
                region t_out max_attempts
            | Sw_fallback | Resched_tail ->
              (region_suffix region ~from_task:t_out, None, None, [])
          end)
      | Region_dead { region } -> (
        if region < 0 || region >= Array.length sched.Schedule.regions then
          bail "region-death: unknown region %d" region;
        let remaining =
          List.filter
            (fun u -> not (finished u))
            (Schedule.region_tasks_in_order sched region)
        in
        match policy with
        | Retry when remaining <> [] ->
          bail
            "region-death: region %d is dead with %d task(s) unfinished and \
             Retry cannot migrate"
            region (List.length remaining)
        | Retry -> ([], None, None, [])
        | Sw_fallback | Resched_tail -> (remaining, None, None, []))
    in
    (* Software fallback: fastest SW implementation, least-loaded
       processor first (load = committed completion horizon of the
       processor, then the migrated work as it queues up). *)
    let load = Array.make (Stdlib.max 1 procs) 0 in
    Array.iteri
      (fun _ (s : Schedule.task_slot) ->
        match s.Schedule.placement with
        | Schedule.On_processor p when p >= 0 && p < procs ->
          if s.Schedule.end_ > load.(p) then load.(p) <- s.Schedule.end_
        | Schedule.On_processor _ | Schedule.On_region _ -> ())
      sched.Schedule.slots;
    let assignments =
      List.map
        (fun u ->
          if procs <= 0 then bail "task %d: no processor to migrate to" u;
          if Instance.sw_impls inst u = [] then
            bail "task %d has no software implementation to fall back to" u;
          let idx = Instance.fastest_sw inst u in
          let time = (Instance.impl inst ~task:u ~idx).Impl.time in
          let best = ref 0 in
          for p = 1 to procs - 1 do
            if load.(p) < load.(!best) then best := p
          done;
          let p = !best in
          load.(p) <- Stdlib.max load.(p) at + time;
          (u, idx, p, time))
        to_migrate
    in
    let migrated = Array.make n false in
    List.iter (fun (u, _, _, _) -> migrated.(u) <- true) assignments;
    let actions =
      base_actions
      @ List.map
          (fun (u, _, p, _) -> Migrated { task = u; processor = p })
          assignments
      @
      if assignments <> [] && policy = Resched_tail then
        [ Retimed { compacted = true } ]
      else []
    in
    (* -------------------------------------------------------------- *)
    (* 2. Surviving precedence plan.                                   *)
    let kept_region_tasks =
      Array.init (Array.length sched.Schedule.regions) (fun ridx ->
          List.filter
            (fun u -> not migrated.(u))
            (Schedule.region_tasks_in_order sched ridx))
    in
    let same_module a b =
      match ((impl_of a).Impl.module_id, (impl_of b).Impl.module_id) with
      | Some x, Some y -> x = y
      | _ -> false
    in
    let durations =
      Array.init n (fun u ->
          let s = slot u in
          s.Schedule.end_ - s.Schedule.start_)
    in
    List.iter (fun (u, _, _, time) -> durations.(u) <- time) assignments;
    (* Kept reconfigurations, as (original controller position, spec,
       release). Module-reuse pairs chain directly instead. *)
    let specs = ref [] in
    let direct_edges = ref [] in
    Array.iteri
      (fun ridx (r : Schedule.region) ->
        let rec pairs = function
          | a :: b :: tl ->
            if sched.Schedule.module_reuse && same_module a b then
              direct_edges := (a, b) :: !direct_edges
            else begin
              match find_rc ridx a b with
              | None ->
                bail
                  "input schedule lacks the reconfiguration (region %d, \
                   %d->%d)"
                  ridx a b
              | Some (k, rc) ->
                let release =
                  match retried with
                  | Some (k', delay) when k = k' -> rc.Schedule.r_start + delay
                  | _ ->
                    if rc.Schedule.r_start < at then rc.Schedule.r_start
                    else if policy = Resched_tail then at
                    else rc.Schedule.r_start
                in
                specs :=
                  ( k,
                    {
                      Timing.region_id = ridx;
                      t_in = a;
                      t_out = b;
                      dur = r.Schedule.reconf_ticks;
                      critical = false;
                    },
                    release )
                  :: !specs
            end;
            pairs (b :: tl)
          | [ _ ] | [] -> ()
        in
        pairs kept_region_tasks.(ridx))
      sched.Schedule.regions;
    let specs =
      List.sort (fun (k1, _, _) (k2, _, _) -> compare k1 k2) !specs
    in
    let spec_arr = Array.of_list (List.map (fun (_, s, _) -> s) specs) in
    let nr = Array.length spec_arr in
    let sequence = List.init nr Fun.id in
    let release = Array.make (n + nr) 0 in
    List.iteri (fun i (_, _, r) -> release.(n + i) <- r) specs;
    for u = 0 to n - 1 do
      release.(u) <-
        (if migrated.(u) then at
         else
           match overrun with
           | Some (t, end_at) when t = u -> end_at - durations.(u)
           | _ ->
             let s = slot u in
             if s.Schedule.start_ < at then s.Schedule.start_
             else if policy = Resched_tail then at
             else s.Schedule.start_)
    done;
    let base_graph () =
      let g = Graph.create n in
      List.iter
        (fun (u, v) -> Graph.add_edge g u v)
        (Graph.edges inst.Instance.graph);
      List.iter (fun (a, b) -> Graph.add_edge g a b) !direct_edges;
      g
    in
    (* -------------------------------------------------------------- *)
    (* 3. Two-pass re-timing: earliest starts without processor chains
       fix a dependency-consistent order per processor (durations are
       strictly positive, so chaining by earliest start cannot close a
       cycle), then the full resolve prices everything. *)
    let processor_of u =
      if migrated.(u) then
        List.find_map
          (fun (m, _, p, _) -> if m = u then Some p else None)
          assignments
      else
        match (slot u).Schedule.placement with
        | Schedule.On_processor p -> Some p
        | Schedule.On_region _ -> None
    in
    let est =
      let solver =
        Timing.Solver.of_plan ~graph:(base_graph ()) ~durations
          ~reconfigs:spec_arr
      in
      Array.copy (Timing.Solver.resolve ~release solver ~sequence).task_start
    in
    let g = base_graph () in
    for p = 0 to procs - 1 do
      let mine = ref [] in
      for u = n - 1 downto 0 do
        if processor_of u = Some p then mine := u :: !mine
      done;
      let ordered =
        List.sort
          (fun a b ->
            let c = compare est.(a) est.(b) in
            if c <> 0 then c else compare a b)
          !mine
      in
      let rec chain = function
        | a :: b :: tl ->
          Graph.add_edge g a b;
          chain (b :: tl)
        | [ _ ] | [] -> ()
      in
      chain ordered
    done;
    let solver = Timing.Solver.of_plan ~graph:g ~durations ~reconfigs:spec_arr in
    let resolved = Timing.Solver.resolve ~release solver ~sequence in
    (* -------------------------------------------------------------- *)
    (* 4. Rebuild and check.                                           *)
    let slots =
      Array.init n (fun u ->
          let s = slot u in
          let impl_idx, placement =
            match
              List.find_map
                (fun (m, idx, p, _) -> if m = u then Some (idx, p) else None)
                assignments
            with
            | Some (idx, p) -> (idx, Schedule.On_processor p)
            | None -> (s.Schedule.impl_idx, s.Schedule.placement)
          in
          {
            Schedule.impl_idx;
            placement;
            start_ = resolved.Timing.task_start.(u);
            end_ = resolved.Timing.task_end.(u);
          })
    in
    let regions =
      Array.mapi
        (fun ridx (r : Schedule.region) ->
          { r with Schedule.tasks = kept_region_tasks.(ridx) })
        sched.Schedule.regions
    in
    let reconfigurations =
      List.mapi
        (fun k (spec : Timing.reconf_spec) ->
          {
            Schedule.region = spec.Timing.region_id;
            t_in = spec.Timing.t_in;
            t_out = spec.Timing.t_out;
            r_start = resolved.Timing.rec_start.(k);
            r_end = resolved.Timing.rec_end.(k);
          })
        (Array.to_list spec_arr)
    in
    let repaired =
      {
        sched with
        Schedule.slots;
        regions;
        reconfigurations;
        makespan = resolved.Timing.makespan;
      }
    in
    match Validate.check repaired with
    | Ok () -> Ok (repaired, actions)
    | Error vs ->
      Error
        (Printf.sprintf "repair produced an invalid schedule: %s"
           (String.concat "; "
              (List.map
                 (fun (v : Validate.violation) ->
                   Printf.sprintf "[%s] %s" v.Validate.code v.Validate.message)
                 vs)))
  with
  | Bail msg -> Error msg
  | Graph.Cycle _ -> Error "repair created a dependency cycle"
