(** Step 6 — software task mapping (Sec. V-F).

    Binds every software task to a processor core. Tasks are visited in
    chronological order ([T_MIN] ascending); each goes to the processor
    with the smallest induced delay λ_p (eq. 8 — implemented as
    [max(0, max_{t2 ∈ T_p} T_END_{t2} - T_MIN_t)]; the paper's [min] is a
    typo, see DESIGN.md), and an ordering edge from the processor's last
    task propagates any delay through the task graph (eq. 9 / step 4). *)

val run : ?incremental:bool -> State.t -> unit
(** Mutates [processor_of], the dependency graph and the windows.
    [incremental] (default [true]) resolves the already-ordered test for
    each (task, assigned) pair from incrementally maintained descendant
    and ancestor marks instead of two reachability DFS per pair — the
    decisions, inserted edges and resulting schedule are bit-identical
    (property-tested); [false] keeps the pairwise-DFS oracle. *)

val delay : State.t -> task:int -> last_end:int -> int
(** λ_p for a processor whose currently-last task ends at [last_end]. *)
