module Resource = Resched_fabric.Resource
module Instance = Resched_platform.Instance
module Impl = Resched_platform.Impl

let tot_rec_time state =
  let acc = ref 0 in
  State.iter_regions state (fun (r : State.region) ->
      acc := !acc + (r.State.reconf * Stdlib.max 0 (List.length r.State.tasks - 1)));
  !acc

(* Cheapest hardware implementation of [task] that fits [region]: the
   first strict cost minimum among the fitting ones, in declaration
   order — same pick as filtering then folding, without building the
   filtered list. *)
let best_fitting_hw state ~task (region : State.region) =
  let best_idx = ref (-1) and best_cost = ref infinity in
  List.iter
    (fun (idx, (i : Impl.t)) ->
      if Resource.fits i.Impl.res ~within:region.State.res then begin
        let c = Cost.cost state.State.cost i in
        if !best_idx < 0 || c < !best_cost then begin
          best_idx := idx;
          best_cost := c
        end
      end)
    (State.hw_impls state task);
  if !best_idx < 0 then None else Some !best_idx

let try_move state ~task =
  (* Regions in creation order, without materializing the list; no move
     ever changes the region count, so a plain index walk is safe. *)
  let nregions = State.region_count state in
  let rec attempt i =
    if i < nregions then begin
      let region = State.nth_region state i in
      match best_fitting_hw state ~task region with
      | None -> attempt (i + 1)
      | Some impl_idx -> (
        (* Tentatively adopt the implementation so the window check sees
           the hardware duration, then commit or roll back. *)
        let saved = state.State.impl_of.(task) in
        state.State.impl_of.(task) <- impl_idx;
        State.refresh_windows state;
        let ok =
          Regions_define.region_compatible_non_critical state ~task region
        in
        if ok then
          match State.assign_to_region state ~task region with
          | () -> ()
          | exception Invalid_argument _ ->
            state.State.impl_of.(task) <- saved;
            State.refresh_windows state;
            attempt (i + 1)
        else begin
          state.State.impl_of.(task) <- saved;
          State.refresh_windows state;
          attempt (i + 1)
        end)
    end
  in
  attempt 0

let run_legacy state =
  let n = Instance.size state.State.inst in
  let candidates =
    List.filter
      (fun u ->
        (not (State.is_hw state u))
        && Instance.hw_impls state.State.inst u <> [])
      (List.init n (fun i -> i))
  in
  let by_t_min =
    List.sort
      (fun a b -> compare (State.t_min state a) (State.t_min state b))
      candidates
  in
  List.iter
    (fun task ->
      let budget = tot_rec_time state in
      if State.t_min state task > budget then try_move state ~task)
    by_t_min

(* Arena states collect and sort the candidates in a borrowed scratch
   array: same candidate set, same stable t_min order (insertion sort
   over index-ordered input ties out with [List.sort]'s stable merge),
   zero list churn. *)
let run_scratch state scratch =
  let n = Instance.size state.State.inst in
  let cand = State.sc_tasks scratch in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if (not (State.is_hw state u)) && State.hw_impls state u <> [] then begin
      cand.(!count) <- u;
      incr count
    end
  done;
  let count = !count in
  Resched_util.Sort.by_int_key cand ~base:0 ~len:count
    ~key:(State.t_min state);
  for j = 0 to count - 1 do
    let task = cand.(j) in
    let budget = tot_rec_time state in
    if State.t_min state task > budget then try_move state ~task
  done

let run state =
  match State.scratch_of state with
  | Some scratch -> run_scratch state scratch
  | None -> run_legacy state
