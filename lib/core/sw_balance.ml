module Resource = Resched_fabric.Resource
module Instance = Resched_platform.Instance
module Impl = Resched_platform.Impl

let tot_rec_time state =
  List.fold_left
    (fun acc (r : State.region) ->
      acc + (r.State.reconf * Stdlib.max 0 (List.length r.State.tasks - 1)))
    0 state.State.regions_rev

(* Cheapest hardware implementation of [task] that fits [region]. *)
let best_fitting_hw state ~task (region : State.region) =
  let fitting =
    List.filter
      (fun (_, (i : Impl.t)) ->
        Resource.fits i.Impl.res ~within:region.State.res)
      (Instance.hw_impls state.State.inst task)
  in
  match fitting with
  | [] -> None
  | (idx0, i0) :: rest ->
    let best_idx, _ =
      List.fold_left
        (fun (bidx, bcost) (idx, i) ->
          let c = Cost.cost state.State.cost i in
          if c < bcost then (idx, c) else (bidx, bcost))
        (idx0, Cost.cost state.State.cost i0)
        rest
    in
    Some best_idx

let try_move state ~task =
  let rec attempt = function
    | [] -> ()
    | (region : State.region) :: rest -> (
      match best_fitting_hw state ~task region with
      | None -> attempt rest
      | Some impl_idx ->
        (* Tentatively adopt the implementation so the window check sees
           the hardware duration, then commit or roll back. *)
        let saved = state.State.impl_of.(task) in
        state.State.impl_of.(task) <- impl_idx;
        State.refresh_windows state;
        let ok =
          Regions_define.region_compatible_non_critical state ~task region
        in
        if ok then
          match State.assign_to_region state ~task region with
          | () -> ()
          | exception Invalid_argument _ ->
            state.State.impl_of.(task) <- saved;
            State.refresh_windows state;
            attempt rest
        else begin
          state.State.impl_of.(task) <- saved;
          State.refresh_windows state;
          attempt rest
        end)
  in
  attempt (State.regions state)

let run state =
  let n = Instance.size state.State.inst in
  let candidates =
    List.filter
      (fun u ->
        (not (State.is_hw state u))
        && Instance.hw_impls state.State.inst u <> [])
      (List.init n (fun i -> i))
  in
  let by_t_min =
    List.sort
      (fun a b -> compare (State.t_min state a) (State.t_min state b))
      candidates
  in
  List.iter
    (fun task ->
      let budget = tot_rec_time state in
      if State.t_min state task > budget then try_move state ~task)
    by_t_min
