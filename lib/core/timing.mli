(** Timing resolution over the augmented graph.

    Steps 5-7 of the paper compute start/end times and propagate delays
    procedurally; here the committed decisions (implementations, region
    and processor ordering edges, reconfiguration sequence on the single
    controller) are compiled into one DAG whose longest path yields every
    start time at once. This is equivalent to the paper's propagation but
    is independently checkable and cannot leave a stale time behind. *)

type reconf_spec = {
  region_id : int;
  t_in : int;  (** task executed before the reconfiguration *)
  t_out : int;  (** task whose bitstream is loaded *)
  dur : int;  (** [reconf_s] of the hosting region *)
  critical : bool;  (** the outgoing task was critical at extraction *)
}

type resolved = {
  task_start : int array;
  task_end : int array;
  rec_start : int array;  (** indexed like the [reconfigs] argument *)
  rec_end : int array;
  makespan : int;
}

val reconf_specs : ?module_reuse:bool -> State.t -> reconf_spec array
(** One reconfiguration per consecutive task pair inside each region
    (Sec. V-G), in region order; pairs whose implementations share a
    [module_id] are skipped when [module_reuse] is set. Criticality is
    taken from the state's current windows. *)

val resolve : State.t -> reconfigs:reconf_spec array -> sequence:int list ->
  resolved
(** Earliest-start times subject to: augmented dependency edges, each
    reconfiguration after its ingoing and before its outgoing task, and
    the total [sequence] (indices into [reconfigs]) on the reconfiguration
    controller. Reconfigurations not in [sequence] are only constrained
    by their region. Raises [Graph.Cycle] if the sequence contradicts the
    dependencies. *)

val must_precede : State.t -> reconf_spec -> reconf_spec -> bool
(** Dependency-forced ordering between two reconfigurations: [a] must run
    before [b] when [a]'s outgoing task (transitively) precedes [b]'s
    ingoing task, or they share a region in that order. Runs a fresh
    graph traversal per call; the sequencing hot path uses
    {!must_precede_closure} instead. *)

val must_precede_closure :
  Resched_taskgraph.Graph.closure -> reconf_spec -> reconf_spec -> bool
(** {!must_precede} answered in O(1) from a one-shot
    {!Resched_taskgraph.Graph.closure} of the state's augmented
    dependency graph (valid while no further edges are inserted). *)

(** Incremental counterpart of {!resolve} for the sequencing loop of
    step 7, which resolves once per reconfiguration insertion: the
    augmented graph and durations are compiled once at {!Solver.create},
    and each {!Solver.resolve} only re-applies the controller-chain
    edges and reruns the longest-path pass over reused scratch arrays.
    Produces bit-identical times to the from-scratch {!resolve}. *)
module Solver : sig
  type t

  val create : State.t -> reconfigs:reconf_spec array -> t
  (** Compile the state's current augmented graph. The solver snapshots
      dependencies and durations: it must not outlive further mutations
      of the state. *)

  val of_plan : graph:Resched_taskgraph.Graph.t -> durations:int array ->
    reconfigs:reconf_spec array -> t
  (** {!create} decoupled from the scheduler state: compile an explicit
      precedence graph over the task nodes (one [durations] entry per
      node) plus the reconfiguration nodes described by [reconfigs].
      Used by the schedule-repair engine, whose precedence structure
      comes from a finished {!Schedule.t} rather than a live state. *)

  val resolve : ?release:int array -> t -> sequence:int list -> resolved
  (** Same contract as {!resolve} for this solver's state and reconfigs.
      [release] (length task nodes + reconfiguration nodes, default all
      zero) gives a per-node earliest start: no activity begins before
      its release time, on top of every precedence constraint. The
      arrays of the result are owned by the solver and overwritten by
      the next [resolve]; callers must copy whatever they retain. *)

  val scratch : unit -> t
  (** An empty reusable solver: {!reload} it before resolving. One
      scratch solver per restart arena turns the per-iteration
      {!create} compilation into an allocation-free refill once its
      buffers have grown to the instance's high-water mark. *)

  val reload : t -> State.t -> reconfigs:reconf_spec array -> unit
  (** Recompile the solver in place for the state's current augmented
      graph and durations (what {!create} builds, minus the
      allocations). The solver's arrays may be longer than the compiled
      problem; all resolves are bounded by the compiled sizes. Results
      are bit-identical to a freshly {!create}d solver's. *)

  val resolve_array :
    ?release:int array -> t -> sequence:int array -> len:int -> resolved
  (** {!resolve} with the controller sequence given as the first [len]
      entries of an int array — the sequencing loop's scratch
      representation — instead of a list. Same result, same aliasing
      caveat. *)
end
