module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Resource = Resched_fabric.Resource
module Bitstream = Resched_fabric.Bitstream
module Device = Resched_fabric.Device
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl

type region = {
  id : int;
  res : Resource.t;
  bits : float;
  reconf : int;
  mutable tasks : int list;
}

type scratch = {
  sc_buffers : Cpm.buffers;
  sc_durations : int array;
  sc_sort : int array;  (* region-task ordering workspace, size n *)
  sc_keys : float array;  (* sort keys (unboxed), size n *)
  sc_mark : bool array;  (* cycle-guard reachability marks, size n *)
  sc_tasks : int array;  (* pipeline-step candidate workspace, size n *)
  sc_flags : bool array;  (* pipeline-step flag workspace, size n *)
  sc_hw_impls : (int * Impl.t) list array;
      (* [Instance.hw_impls] per task, computed once: the instance is
         immutable, so the cached lists stay equal to what the accessor
         would rebuild (and reallocate) on every balance probe *)
}

let sc_tasks s = s.sc_tasks
let sc_keys s = s.sc_keys
let sc_flags s = s.sc_flags
let sc_mark s = s.sc_mark

type t = {
  inst : Instance.t;
  max_res : Resource.t;
  cost : Cost.t;
  impl_of : int array;
  dep : Graph.t;
  mutable regions_arr : region array;
  mutable nregions : int;
  mutable used : Resource.t;
  region_of : int array;
  processor_of : int array;
  mutable cpm : Cpm.t;
  scratch : scratch option;
}

let scratch_of t = t.scratch

let impl t u = Instance.impl t.inst ~task:u ~idx:t.impl_of.(u)
let duration t u = (impl t u).Impl.time
let durations t = Array.init (Instance.size t.inst) (duration t)
let is_hw t u = Impl.is_hw (impl t u)

let hw_impls t u =
  match t.scratch with
  | Some s -> s.sc_hw_impls.(u)
  | None -> Instance.hw_impls t.inst u

let refresh_windows t =
  match t.scratch with
  | None -> t.cpm <- Cpm.compute t.dep ~durations:(durations t)
  | Some s ->
    (* Arena states recycle one set of CPM arrays: bit-identical windows,
       no per-refresh allocation. Safe because no pipeline step keeps a
       [Cpm.t] alive across a refresh (Regions_define copies the critical
       flags it needs), and a shared [base_cpm] owns separate arrays. *)
    let n = Instance.size t.inst in
    for u = 0 to n - 1 do
      s.sc_durations.(u) <- duration t u
    done;
    t.cpm <- Cpm.compute_with s.sc_buffers t.dep ~durations:s.sc_durations

let initial_cpm inst ~impl_of =
  let durations =
    Array.init (Instance.size inst) (fun u ->
        (Instance.impl inst ~task:u ~idx:impl_of.(u)).Impl.time)
  in
  Cpm.compute inst.Instance.graph ~durations

let create inst ?(resource_scale = 1.0) ?cost ?base_cpm ?(scratch = false)
    ~impl_of () =
  let n = Instance.size inst in
  if Array.length impl_of <> n then
    invalid_arg "State.create: impl_of length mismatch";
  let max_res = Resource.scale (Arch.max_res inst.Instance.arch) resource_scale in
  let cost = match cost with Some c -> c | None -> Cost.make inst ~max_res in
  let cpm =
    match base_cpm with Some c -> c | None -> initial_cpm inst ~impl_of
  in
  let scratch =
    if scratch then
      Some
        {
          sc_buffers = Cpm.make_buffers n;
          sc_durations = Array.make n 0;
          sc_sort = Array.make n 0;
          sc_keys = Array.make n 0.;
          sc_mark = Array.make n false;
          sc_tasks = Array.make n 0;
          sc_flags = Array.make n false;
          sc_hw_impls = Array.init n (fun u -> Instance.hw_impls inst u);
        }
    else None
  in
  {
    inst;
    max_res;
    cost;
    impl_of = Array.copy impl_of;
    dep = Graph.copy inst.Instance.graph;
    regions_arr = [||];
    nregions = 0;
    used = Resource.zero;
    region_of = Array.make n (-1);
    processor_of = Array.make n (-1);
    cpm;
    scratch;
  }

let dummy_region =
  { id = -1; res = Resource.zero; bits = 0.; reconf = 0; tasks = [] }

let reset t ~impl_of ~base_cpm =
  let n = Instance.size t.inst in
  if Array.length impl_of <> n then
    invalid_arg "State.reset: impl_of length mismatch";
  Array.blit impl_of 0 t.impl_of 0 n;
  Graph.restore ~from:t.inst.Instance.graph t.dep;
  (* Drop the region references so the previous iteration's records do
     not stay rooted by the recycled slot array. *)
  Array.fill t.regions_arr 0 t.nregions dummy_region;
  t.nregions <- 0;
  t.used <- Resource.zero;
  Array.fill t.region_of 0 n (-1);
  Array.fill t.processor_of 0 n (-1);
  t.cpm <- base_cpm

let t_min t u = t.cpm.Cpm.t_min.(u)
let t_max t u = t.cpm.Cpm.t_max.(u)

let iter_regions t f =
  for i = 0 to t.nregions - 1 do
    f t.regions_arr.(i)
  done

let nth_region t i =
  if i < 0 || i >= t.nregions then invalid_arg "State.nth_region";
  t.regions_arr.(i)

let regions t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (t.regions_arr.(i) :: acc)
  in
  build (t.nregions - 1) []

let region_count t = t.nregions
let used_resources t = t.used

let fits_on_fpga t need =
  Resource.fits (Resource.add t.used need) ~within:t.max_res

let new_region t need =
  let device = t.inst.Instance.arch.Arch.device in
  let bits = Bitstream.region_bits device.Device.model need in
  let reconf = Arch.reconf_ticks t.inst.Instance.arch need in
  let region = { id = t.nregions; res = need; bits; reconf; tasks = [] } in
  (if t.nregions = Array.length t.regions_arr then begin
     let cap = max 8 (2 * Array.length t.regions_arr) in
     let grown = Array.make cap dummy_region in
     Array.blit t.regions_arr 0 grown 0 t.nregions;
     t.regions_arr <- grown
   end);
  t.regions_arr.(t.nregions) <- region;
  t.nregions <- t.nregions + 1;
  t.used <- Resource.add t.used need;
  region

(* Would adding edge u -> v close a cycle, i.e. is u reachable from v?
   Arena states answer with a recycled mark array; plain states keep the
   original allocating query. *)
let edge_would_cycle t u v =
  match t.scratch with
  | Some s ->
    Array.fill s.sc_mark 0 (Array.length s.sc_mark) false;
    Graph.mark_reachable t.dep v s.sc_mark;
    s.sc_mark.(u)
  | None -> (Graph.reachable t.dep v).(u)

let insert_region_edges t ~task region =
  (* The region is exclusive: order its tasks by their window starts and
     chain the new task between its neighbours. The former
     [List.sort (by t_min) (task :: region.tasks)] is replaced by a
     stable insertion sort ({!Resched_util.Sort}) over a reused scratch
     array — bit-identical order (the stdlib's [List.sort] is the stable
     merge sort, and insertion sort preserves ties the same way) without
     the per-call sort allocations. *)
  let k = List.length region.tasks in
  let arr =
    match t.scratch with
    | Some s when Array.length s.sc_sort >= k + 1 -> s.sc_sort
    | _ -> Array.make (k + 1) 0
  in
  arr.(0) <- task;
  let i = ref 1 in
  List.iter
    (fun u ->
      arr.(!i) <- u;
      incr i)
    region.tasks;
  Resched_util.Sort.by_int_key arr ~base:0 ~len:(k + 1) ~key:(t_min t);
  let pos = ref 0 in
  while arr.(!pos) <> task do
    incr pos
  done;
  let guard_edge u v =
    if u <> v && not (Graph.has_edge t.dep u v) then begin
      if edge_would_cycle t u v then
        invalid_arg "State.assign_to_region: ordering edge would create a cycle";
      Graph.add_edge t.dep u v
    end
  in
  if !pos > 0 then guard_edge arr.(!pos - 1) task;
  if !pos < k then guard_edge task arr.(!pos + 1);
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (arr.(i) :: acc)
  in
  region.tasks <- build k []

let assign_to_region t ~task region =
  t.region_of.(task) <- region.id;
  t.processor_of.(task) <- -1;
  insert_region_edges t ~task region;
  refresh_windows t

let switch_to_sw t ~task =
  t.impl_of.(task) <- Instance.fastest_sw t.inst task;
  (if t.region_of.(task) >= 0 then begin
     (* Should not happen in the pipeline, but keep the state coherent. *)
     let r = t.regions_arr.(t.region_of.(task)) in
     r.tasks <- List.filter (fun u -> u <> task) r.tasks;
     t.region_of.(task) <- -1
   end);
  refresh_windows t

let switch_to_hw t ~task ~impl_idx region =
  let i = Instance.impl t.inst ~task ~idx:impl_idx in
  if not (Impl.is_hw i) then
    invalid_arg "State.switch_to_hw: not a hardware implementation";
  t.impl_of.(task) <- impl_idx;
  refresh_windows t;
  assign_to_region t ~task region

let region_list t = Array.sub t.regions_arr 0 t.nregions

let find_region t id =
  (* Region ids are assigned densely by [new_region], so the id is the
     slot index. *)
  if id < 0 || id >= t.nregions then raise Not_found;
  t.regions_arr.(id)
