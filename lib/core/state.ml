module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Resource = Resched_fabric.Resource
module Bitstream = Resched_fabric.Bitstream
module Device = Resched_fabric.Device
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl

type region = {
  id : int;
  res : Resource.t;
  bits : float;
  reconf : int;
  mutable tasks : int list;
}

type scratch = { sc_buffers : Cpm.buffers; sc_durations : int array }

type t = {
  inst : Instance.t;
  max_res : Resource.t;
  cost : Cost.t;
  impl_of : int array;
  dep : Graph.t;
  mutable regions_rev : region list;
  mutable nregions : int;
  mutable used : Resource.t;
  region_of : int array;
  processor_of : int array;
  mutable cpm : Cpm.t;
  scratch : scratch option;
}

let impl t u = Instance.impl t.inst ~task:u ~idx:t.impl_of.(u)
let duration t u = (impl t u).Impl.time
let durations t = Array.init (Instance.size t.inst) (duration t)
let is_hw t u = Impl.is_hw (impl t u)

let refresh_windows t =
  match t.scratch with
  | None -> t.cpm <- Cpm.compute t.dep ~durations:(durations t)
  | Some s ->
    (* Arena states recycle one set of CPM arrays: bit-identical windows,
       no per-refresh allocation. Safe because no pipeline step keeps a
       [Cpm.t] alive across a refresh (Regions_define copies the critical
       flags it needs), and a shared [base_cpm] owns separate arrays. *)
    let n = Instance.size t.inst in
    for u = 0 to n - 1 do
      s.sc_durations.(u) <- duration t u
    done;
    t.cpm <- Cpm.compute_with s.sc_buffers t.dep ~durations:s.sc_durations

let initial_cpm inst ~impl_of =
  let durations =
    Array.init (Instance.size inst) (fun u ->
        (Instance.impl inst ~task:u ~idx:impl_of.(u)).Impl.time)
  in
  Cpm.compute inst.Instance.graph ~durations

let create inst ?(resource_scale = 1.0) ?cost ?base_cpm ?(scratch = false)
    ~impl_of () =
  let n = Instance.size inst in
  if Array.length impl_of <> n then
    invalid_arg "State.create: impl_of length mismatch";
  let max_res = Resource.scale (Arch.max_res inst.Instance.arch) resource_scale in
  let cost = match cost with Some c -> c | None -> Cost.make inst ~max_res in
  let cpm =
    match base_cpm with Some c -> c | None -> initial_cpm inst ~impl_of
  in
  let scratch =
    if scratch then
      Some { sc_buffers = Cpm.make_buffers n; sc_durations = Array.make n 0 }
    else None
  in
  {
    inst;
    max_res;
    cost;
    impl_of = Array.copy impl_of;
    dep = Graph.copy inst.Instance.graph;
    regions_rev = [];
    nregions = 0;
    used = Resource.zero;
    region_of = Array.make n (-1);
    processor_of = Array.make n (-1);
    cpm;
    scratch;
  }

let reset t ~impl_of ~base_cpm =
  let n = Instance.size t.inst in
  if Array.length impl_of <> n then
    invalid_arg "State.reset: impl_of length mismatch";
  Array.blit impl_of 0 t.impl_of 0 n;
  Graph.restore ~from:t.inst.Instance.graph t.dep;
  t.regions_rev <- [];
  t.nregions <- 0;
  t.used <- Resource.zero;
  Array.fill t.region_of 0 n (-1);
  Array.fill t.processor_of 0 n (-1);
  t.cpm <- base_cpm

let t_min t u = t.cpm.Cpm.t_min.(u)
let t_max t u = t.cpm.Cpm.t_max.(u)

let regions t = List.rev t.regions_rev
let region_count t = t.nregions
let used_resources t = t.used

let fits_on_fpga t need =
  Resource.fits (Resource.add t.used need) ~within:t.max_res

let new_region t need =
  let device = t.inst.Instance.arch.Arch.device in
  let bits = Bitstream.region_bits device.Device.model need in
  let reconf = Arch.reconf_ticks t.inst.Instance.arch need in
  let region = { id = t.nregions; res = need; bits; reconf; tasks = [] } in
  t.regions_rev <- region :: t.regions_rev;
  t.nregions <- t.nregions + 1;
  t.used <- Resource.add t.used need;
  region

let sort_by_t_min t tasks =
  List.sort (fun a b -> compare (t_min t a) (t_min t b)) tasks

let insert_region_edges t ~task region =
  (* The region is exclusive: order its tasks by their window starts and
     chain the new task between its neighbours. *)
  let ordered = sort_by_t_min t (task :: region.tasks) in
  let rec neighbours = function
    | a :: b :: tl ->
      if b = task then Some a
      else if a = task then None
      else neighbours (b :: tl)
    | _ -> None
  in
  let prev = neighbours ordered in
  let next =
    let rec after = function
      | a :: b :: tl -> if a = task then Some b else after (b :: tl)
      | _ -> None
    in
    after ordered
  in
  let guard_edge u v =
    if u <> v && not (Graph.has_edge t.dep u v) then begin
      if (Graph.reachable t.dep v).(u) then
        invalid_arg "State.assign_to_region: ordering edge would create a cycle";
      Graph.add_edge t.dep u v
    end
  in
  (match prev with Some p -> guard_edge p task | None -> ());
  (match next with Some nx -> guard_edge task nx | None -> ());
  region.tasks <- ordered

let assign_to_region t ~task region =
  t.region_of.(task) <- region.id;
  t.processor_of.(task) <- -1;
  insert_region_edges t ~task region;
  refresh_windows t

let switch_to_sw t ~task =
  t.impl_of.(task) <- Instance.fastest_sw t.inst task;
  (if t.region_of.(task) >= 0 then begin
     (* Should not happen in the pipeline, but keep the state coherent. *)
     List.iter
       (fun r ->
         if r.id = t.region_of.(task) then
           r.tasks <- List.filter (fun u -> u <> task) r.tasks)
       t.regions_rev;
     t.region_of.(task) <- -1
   end);
  refresh_windows t

let switch_to_hw t ~task ~impl_idx region =
  let i = Instance.impl t.inst ~task ~idx:impl_idx in
  if not (Impl.is_hw i) then
    invalid_arg "State.switch_to_hw: not a hardware implementation";
  t.impl_of.(task) <- impl_idx;
  refresh_windows t;
  assign_to_region t ~task region

let region_list t = Array.of_list (List.rev t.regions_rev)

let find_region t id = List.find (fun r -> r.id = id) t.regions_rev
