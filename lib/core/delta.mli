(** Delta-evaluation move kernel for neighborhood search.

    A {!t} is a live, mutable view of a complete solution — implementation
    selection, region partition, processor assignment, controller sequence
    and the resolved earliest-start times — on which candidate {e moves}
    (reassign a task to another region, swap two tasks' regions, move a
    task HW<->SW, merge or split a region) are evaluated {e incrementally}:
    only the affected suffix of the timing graph is re-solved (a dirty-set
    Kahn pass over the nodes reachable from the structurally touched
    ones), region resource totals and demand vectors are maintained as
    moves apply, and floorplan feasibility is re-queried only when the
    multiset of region demands actually changed (through the shared
    {!Resched_floorplan.Fp_cache}, so repeated demand sets are O(1)).

    Every applied move is undone in O(touched) by {!rollback} via a typed
    undo log, which is what makes a large-neighborhood / simulated-
    annealing driver ({!Lns}) able to explore thousands of moves per
    second. The from-scratch evaluator — a fresh
    {!Timing.Solver.of_plan} over the post-move plan — is retained behind
    [apply ~incremental:false] as the bit-identity oracle, exactly like
    the incremental paths of PRs 2/5/7: both evaluators compute the same
    unique longest-path fixpoint, so an accepted move's resulting times
    are bit-identical whichever path evaluated it ({!verify} checks this
    directly).

    {b Timing model.} The plan's precedence graph has one node per task
    and one per live reconfiguration. Edges are the instance's data
    edges (static CSR, built once) plus the implicit structural edges:
    consecutive tasks of a region chain are separated by their
    reconfiguration node (or linked directly under module reuse),
    consecutive tasks of a processor chain are linked directly, and the
    controller totally orders the reconfiguration nodes. Earliest starts
    are the longest-path potential of that DAG — the same quantity
    {!Timing.resolve} computes for the PA pipeline. *)

type t

type config = {
  engine : Resched_floorplan.Floorplanner.engine;
  node_limit : int option;
  cache : Resched_floorplan.Fp_cache.t option;
      (** demand-vector feasibility queries go through this cache when
          present; pass a [~subsumption:false] cache on any path whose
          verdicts are compared across runs (see PR 7's fence) *)
}

val default_config : config

type move =
  | Reassign of { task : int; region : int }
      (** move a hardware task to another live region (its current
          implementation must fit the target's resources) *)
  | Swap of { task_a : int; task_b : int }
      (** exchange the regions of two hardware tasks in distinct regions *)
  | To_sw of { task : int; processor : int }
      (** demote a hardware task to its fastest software implementation
          on the given processor *)
  | To_hw of { task : int; impl_idx : int; region : int option }
      (** promote a software task to hardware implementation [impl_idx],
          into an existing live region ([Some r]) or a fresh region sized
          to the implementation's needs ([None]) *)
  | Merge of { dst : int; src : int }
      (** fuse two live regions: [dst] grows to the component-wise max of
          both demand vectors, members interleave by current start time,
          [src] dies *)
  | Split of { region : int; keep : int }
      (** cut a live region's chain after its first [keep] members; the
          suffix moves to a fresh region, and both demand vectors shrink
          to the component-wise max of their members' needs *)

type verdict = {
  makespan : int;  (** of the re-evaluated plan *)
  fp_feasible : bool;
      (** current floorplan verdict (cached unless the demand multiset
          changed; [Unknown] counts as infeasible) *)
  needs_changed : bool;
      (** whether this move changed the region demand multiset (and
          hence re-queried the floorplanner) *)
}

val of_schedule : ?config:config -> Schedule.t -> t
(** Build a kernel state from a validated schedule (typically a PA / PA-R
    result). The plan's times are canonicalized by one full evaluation:
    the reduced structural graph can admit earlier starts than the
    pipeline's (it drops edges the chains subsume), so the initial
    makespan is at most the schedule's. The schedule's floorplan, when
    present, seeds the feasibility state; otherwise it is queried. *)

val instance : t -> Resched_platform.Instance.t
val makespan : t -> int
val fp_feasible : t -> bool

val size : t -> int
(** Task count. *)

val region_of : t -> int -> int
(** Region id hosting a task, or [-1] for software tasks. *)

val processor_of : t -> int -> int
(** Processor hosting a task, or [-1] for hardware tasks. *)

val live_regions : t -> int list
(** Ids of live regions, ascending. *)

val region_task_count : t -> int -> int
val region_res : t -> int -> Resched_fabric.Resource.t

val apply : ?incremental:bool -> t -> move -> verdict option
(** Apply one move: mutate the plan structurally, re-evaluate times
    ([~incremental:true], the default, re-solves only the affected
    suffix; [false] re-times the whole plan through a fresh
    {!Timing.Solver} — the oracle), and re-query floorplan feasibility
    iff the demand multiset changed. [None] means the move was rejected
    — structurally ill-formed (dead region, implementation that does not
    fit, …) or it would create a precedence cycle — and the state is
    exactly as before the call. [Some v] leaves the move applied;
    follow with {!commit} to keep it or {!rollback} to undo it. *)

val rollback : t -> unit
(** Undo the most recent applied-but-uncommitted move. Moves roll back
    LIFO: a sequence of applies followed by as many rollbacks restores
    the state bit-identically (property-tested). Raises
    [Invalid_argument] if there is nothing to roll back. *)

val commit : t -> unit
(** Accept every applied move and drop the undo log. *)

val verify : t -> bool
(** Oracle check: re-time the current plan from scratch through
    {!Timing.Solver.of_plan} and compare against the stored times and
    makespan. [true] iff bit-identical — the divergence gate benched and
    property-tested against [apply ~incremental]. *)

val to_schedule : t -> Schedule.t
(** Materialize the current plan. The result passes {!Validate.check}
    whenever the plan is within device capacity; its [floorplan] is the
    cached placement when the current demand set is feasible, [None]
    otherwise. *)

val fingerprint : t -> string
(** Digest of everything observable about the plan (selection, chains,
    controller order, times, resource totals, feasibility) — equal
    fingerprints mean bit-identical states. Slot-allocation bookkeeping
    (free lists, high-water marks) is canonicalized away. *)
