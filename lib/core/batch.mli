(** Batched multi-instance PA-R: many scheduling problems over one
    worker fleet.

    {!run} turns each request into a resumable {!Pa_random.Course} and
    feeds them all through one set of worker domains (a persistent
    {!Resched_util.Domain_pool.Pool} or a one-shot fan-out) at
    (instance x restart-slice) granularity: a worker pops whichever
    course is ready, advances it by a bounded slice of restarts on its
    own warm arena, and requeues it. Compared to scheduling the
    instances one {!Pa_random.run_parallel} at a time this removes the
    per-instance fan-out barrier — a straggler instance no longer idles
    the other workers — while the per-domain {!Pa.Context} restart
    arenas and floorplan-cache L1 memos stay warm across instances.

    Determinism: each course owns its RNG and its incumbent, so the
    slice interleaving (which varies with load) never leaks between
    instances. With a verdict-transparent shared [cache]
    ([Fp_cache.create ~subsumption:false ()]) — or no cache at all —
    per-instance outcomes are bit-identical to running
    [Pa_random.run ~seed ~min_iterations ~budget_seconds:0.] for each
    request in isolation under the same cache mode, whatever [jobs] and
    [slice] are (property-tested): such a cache's verdicts are a pure
    function of the query, so sharing it across instances changes
    wall-clock only. Two cache caveats, both inherited from
    {!Resched_floorplan.Fp_cache}: the exact layer canonicalizes needs
    before consulting the engine, so cached and cache-less runs can
    disagree where the engine's node budget bites; and a cache with the
    dominance index enabled ([subsumption:true], the default) can
    decide verdicts the bare engine would call [Unknown], making
    results depend on what other instances happened to insert first —
    don't pass one here if reproducibility matters. *)

type request = {
  instance : Resched_platform.Instance.t;
  seed : int;
  min_iterations : int;
  budget_seconds : float;
      (** wall-clock budget, counted from batch launch (all courses
          share one time origin) *)
  cancel : (unit -> bool) option;
      (** cooperative cancellation hook for this request's course,
          polled at every slice boundary of the dispatch loop (see
          {!Pa_random.Course.create}); a fired hook retires the course
          from the round-robin queue within one slice, outcome keeping
          the incumbent found so far *)
}

val request : ?seed:int -> ?min_iterations:int -> ?budget_seconds:float ->
  ?cancel:(unit -> bool) -> Resched_platform.Instance.t -> request
(** Defaults: [seed 1], [min_iterations 1], [budget_seconds 0.] (run
    exactly [min_iterations] restarts), no [cancel] hook. *)

type stats = {
  jobs : int;  (** worker domains used *)
  slice : int;  (** restarts per slice actually used *)
  wall_seconds : float;
  total_iterations : int;  (** restarts summed over instances *)
  total_slices : int;  (** work-stealing grants summed over workers *)
  total_minor_words : float;
      (** minor-heap words allocated inside the restart kernels *)
}

val run : ?config:Pa.config -> ?cache:Resched_floorplan.Fp_cache.t ->
  ?incremental:bool -> ?kernel:Pa_random.kernel -> ?jobs:int ->
  ?pool:Resched_util.Domain_pool.Pool.t -> ?slice:int ->
  request array -> Pa_random.outcome array * stats
(** Schedule every request; outcomes are in request order. [config],
    [cache], [incremental] and [kernel] apply to all courses (see
    {!Pa_random.run}). [jobs] defaults to the pool's width when [pool]
    is given (both with different values is an error), else to
    {!Resched_util.Domain_pool.available_cores}. [slice] (default:
    derived from the total requested iterations, at most 32) bounds how
    many restarts a worker runs on a course before requeuing it —
    results never depend on it, only load balance does. Worker 0 runs
    on the calling domain. *)
