module Resource = Resched_fabric.Resource
module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Floorplanner = Resched_floorplan.Floorplanner

type violation = { code : string; message : string }

exception Invalid of violation list

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.code v.message

let () =
  Printexc.register_printer (function
    | Invalid vs ->
      Some
        (Printf.sprintf "invalid schedule:\n  %s"
           (String.concat "\n  "
              (List.map
                 (fun v -> Printf.sprintf "[%s] %s" v.code v.message)
                 vs)))
    | _ -> None)

let overlap a_start a_end b_start b_end = a_start < b_end && b_start < a_end

let check (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let violations = ref [] in
  let fail code fmt =
    Printf.ksprintf
      (fun message -> violations := { code; message } :: !violations)
      fmt
  in
  (* Structural checks on slots and implementations. *)
  if Array.length sched.Schedule.slots <> n then
    fail "STRUCT" "expected %d slots, got %d" n
      (Array.length sched.Schedule.slots);
  let slot u = sched.Schedule.slots.(u) in
  let impl u = Instance.impl inst ~task:u ~idx:(slot u).Schedule.impl_idx in
  for u = 0 to n - 1 do
    let s = slot u in
    if s.Schedule.impl_idx < 0
       || s.Schedule.impl_idx >= Array.length inst.Instance.impls.(u)
    then fail "IMPL" "task %d: implementation index out of range" u
    else begin
      let i = impl u in
      (match (i.Impl.kind, s.Schedule.placement) with
      | Impl.Hw, Schedule.On_processor _ ->
        fail "KIND" "task %d: hardware implementation on a processor" u
      | Impl.Sw, Schedule.On_region _ ->
        fail "KIND" "task %d: software implementation on a region" u
      | Impl.Hw, Schedule.On_region r ->
        if r < 0 || r >= Array.length sched.Schedule.regions then
          fail "KIND" "task %d: region %d out of range" u r
      | Impl.Sw, Schedule.On_processor p ->
        if p < 0 || p >= inst.Instance.arch.Arch.processors then
          fail "KIND" "task %d: processor %d out of range" u p);
      if s.Schedule.start_ < 0 then fail "TIME" "task %d starts before 0" u;
      if s.Schedule.end_ - s.Schedule.start_ <> i.Impl.time then
        fail "TIME" "task %d: slot length %d <> implementation time %d" u
          (s.Schedule.end_ - s.Schedule.start_)
          i.Impl.time
    end
  done;
  (* Data dependencies. *)
  List.iter
    (fun (u, v) ->
      if (slot v).Schedule.start_ < (slot u).Schedule.end_ then
        fail "DEP" "edge (%d, %d): %d starts at %d before %d ends at %d" u v v
          (slot v).Schedule.start_ u (slot u).Schedule.end_)
    (Graph.edges inst.Instance.graph);
  (* Region membership consistency. *)
  Array.iteri
    (fun ridx (r : Schedule.region) ->
      List.iter
        (fun u ->
          if u < 0 || u >= n then
            fail "REGION" "region %d lists unknown task %d" ridx u
          else begin
            match (slot u).Schedule.placement with
            | Schedule.On_region r' when r' = ridx -> ()
            | _ -> fail "REGION" "region %d lists task %d placed elsewhere" ridx u
          end)
        r.Schedule.tasks)
    sched.Schedule.regions;
  for u = 0 to n - 1 do
    match (slot u).Schedule.placement with
    | Schedule.On_region r
      when r >= 0
           && r < Array.length sched.Schedule.regions
           && not (List.mem u sched.Schedule.regions.(r).Schedule.tasks) ->
      fail "REGION" "task %d placed on region %d but not listed there" u r
    | Schedule.On_region _ | Schedule.On_processor _ -> ()
  done;
  (* Region capacity per task and total device capacity. *)
  Array.iteri
    (fun ridx (r : Schedule.region) ->
      List.iter
        (fun u ->
          if u >= 0 && u < n then begin
            let i = impl u in
            if Impl.is_hw i
               && not (Resource.fits i.Impl.res ~within:r.Schedule.res)
            then
              fail "CAP" "task %d does not fit region %d (%s in %s)" u ridx
                (Resource.to_string i.Impl.res)
                (Resource.to_string r.Schedule.res)
          end)
        r.Schedule.tasks)
    sched.Schedule.regions;
  let total =
    Array.fold_left
      (fun acc (r : Schedule.region) -> Resource.add acc r.Schedule.res)
      Resource.zero sched.Schedule.regions
  in
  if not (Resource.fits total ~within:(Arch.max_res inst.Instance.arch)) then
    fail "CAP" "regions total %s exceeds device %s"
      (Resource.to_string total)
      (Resource.to_string (Arch.max_res inst.Instance.arch));
  (* Region exclusiveness + reconfiguration between consecutive tasks. *)
  let find_reconf ridx a b =
    List.find_opt
      (fun (rc : Schedule.reconfiguration) ->
        rc.Schedule.region = ridx && rc.Schedule.t_in = a && rc.Schedule.t_out = b)
      sched.Schedule.reconfigurations
  in
  let same_module a b =
    match ((impl a).Impl.module_id, (impl b).Impl.module_id) with
    | Some x, Some y -> x = y
    | _ -> false
  in
  Array.iteri
    (fun ridx (r : Schedule.region) ->
      let ordered =
        List.sort
          (fun a b -> compare (slot a).Schedule.start_ (slot b).Schedule.start_)
          r.Schedule.tasks
      in
      let rec walk = function
        | a :: b :: tl ->
          if overlap (slot a).Schedule.start_ (slot a).Schedule.end_
               (slot b).Schedule.start_ (slot b).Schedule.end_
          then fail "EXCL" "region %d: tasks %d and %d overlap" ridx a b
          else begin
            let reuse = sched.Schedule.module_reuse && same_module a b in
            if not reuse then begin
              match find_reconf ridx a b with
              | None ->
                fail "RECONF" "region %d: no reconfiguration between %d and %d"
                  ridx a b
              | Some rc ->
                if rc.Schedule.r_start < (slot a).Schedule.end_ then
                  fail "RECONF"
                    "region %d: reconfiguration for %d starts before %d ends"
                    ridx b a;
                if rc.Schedule.r_end > (slot b).Schedule.start_ then
                  fail "RECONF"
                    "region %d: reconfiguration for %d ends after it starts"
                    ridx b;
                if rc.Schedule.r_end - rc.Schedule.r_start
                   <> r.Schedule.reconf_ticks
                then
                  fail "RECONF"
                    "region %d: reconfiguration length %d <> reconf_s %d" ridx
                    (rc.Schedule.r_end - rc.Schedule.r_start)
                    r.Schedule.reconf_ticks
            end
          end;
          walk (b :: tl)
        | [ _ ] | [] -> ()
      in
      walk ordered)
    sched.Schedule.regions;
  (* Processor exclusiveness: per-processor sort-and-sweep. Sorted by
     start time, two slots on the same processor overlap iff a slot
     starts before its predecessor in the order ends — adjacent pairs
     suffice, so the all-pairs quadratic scan collapses to sort + one
     linear walk per processor. *)
  let procs = inst.Instance.arch.Arch.processors in
  let per_proc = Array.make (Stdlib.max 1 procs) [] in
  for u = n - 1 downto 0 do
    match (slot u).Schedule.placement with
    | Schedule.On_processor p when p >= 0 && p < procs ->
      per_proc.(p) <- u :: per_proc.(p)
    | Schedule.On_processor _ | Schedule.On_region _ -> ()
  done;
  Array.iteri
    (fun p tasks ->
      let ordered =
        List.sort
          (fun a b ->
            let c = compare (slot a).Schedule.start_ (slot b).Schedule.start_ in
            if c <> 0 then c else compare a b)
          tasks
      in
      (* Walk in start order keeping the slot with the furthest end seen
         so far: any slot starting before that end overlaps the witness
         (a zero-length slot never overlaps anything). *)
      let rec sweep witness = function
        | u :: tl ->
          let s = slot u in
          (match witness with
          | Some w
            when s.Schedule.start_ < (slot w).Schedule.end_
                 && overlap (slot w).Schedule.start_ (slot w).Schedule.end_
                      s.Schedule.start_ s.Schedule.end_ ->
            fail "EXCL" "processor %d: tasks %d and %d overlap" p w u
          | Some _ | None -> ());
          let witness =
            match witness with
            | Some w when (slot w).Schedule.end_ >= s.Schedule.end_ -> Some w
            | Some _ | None -> Some u
          in
          sweep witness tl
        | [] -> ()
      in
      sweep None ordered)
    per_proc;
  (* Single reconfiguration controller. *)
  let rcs = Array.of_list sched.Schedule.reconfigurations in
  Array.iteri
    (fun i (a : Schedule.reconfiguration) ->
      if a.Schedule.r_start < 0 then
        fail "RECONF" "reconfiguration %d starts before 0" i;
      Array.iteri
        (fun j (b : Schedule.reconfiguration) ->
          if j > i
             && overlap a.Schedule.r_start a.Schedule.r_end b.Schedule.r_start
                  b.Schedule.r_end
          then
            fail "CTRL" "reconfigurations %d and %d overlap on the controller"
              i j)
        rcs)
    rcs;
  (* Makespan. *)
  let real_makespan =
    Array.fold_left
      (fun acc (s : Schedule.task_slot) -> Stdlib.max acc s.Schedule.end_)
      0 sched.Schedule.slots
  in
  if real_makespan <> sched.Schedule.makespan then
    fail "SPAN" "declared makespan %d <> actual %d" sched.Schedule.makespan
      real_makespan;
  (* Floorplan, when present. *)
  (match sched.Schedule.floorplan with
  | None -> ()
  | Some placements -> (
    let needs =
      Array.map (fun (r : Schedule.region) -> r.Schedule.res) sched.Schedule.regions
    in
    match
      Floorplanner.validate inst.Instance.arch.Arch.device ~needs placements
    with
    | Ok () -> ()
    | Error msg -> fail "PLAN" "floorplan invalid: %s" msg));
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let check_exn sched =
  match check sched with Ok () -> () | Error vs -> raise (Invalid vs)
