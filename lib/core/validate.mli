(** Independent schedule checker.

    Verifies every constraint from the problem statement (Sec. III)
    against a finished {!Schedule.t}, without trusting anything the
    scheduler computed: implementation indices and kinds, slot arithmetic,
    data dependencies, region capacity and exclusiveness with the
    mandatory reconfiguration between consecutive tasks (module reuse
    aside), processor exclusiveness, the single reconfiguration
    controller, total FPGA capacity and the floorplan when present.

    Both schedulers' outputs are fed through this checker in the tests
    and in the benchmark harness. *)

type violation = {
  code : string;  (** stable machine-readable identifier, e.g. "DEP" *)
  message : string;
}

exception Invalid of violation list
(** Structured failure carrying every violation found; a printer is
    registered with {!Printexc} so uncaught instances still render a
    readable report. *)

val check : Schedule.t -> (unit, violation list) result
(** All violations found, or [Ok ()]. *)

val check_exn : Schedule.t -> unit
(** Raises {!Invalid} with the full violation list when the schedule is
    invalid. *)

val pp_violation : Format.formatter -> violation -> unit
