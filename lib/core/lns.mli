(** Simulated-annealing neighborhood search over the {!Delta} move
    kernel.

    [polish] takes a finished schedule (typically the best of a PA / PA-R
    run), wraps it in a {!Delta.t} and explores the move neighborhood —
    reassign / swap / HW<->SW / merge / split, proposed by a seeded
    {!Resched_util.Rng} — under a standard geometric-cooling Metropolis
    rule. Every accepted move is {!Delta.commit}ed; every declined one is
    rolled back in O(touched), which is what makes thousands of proposals
    per second possible. The incumbent is only replaced by {e feasible}
    improvements (floorplan verdict included), and the best schedule is
    materialized lazily, so a polish run can never return something worse
    than its seed. *)

type stats = {
  proposed : int;  (** moves drawn from the proposal distribution *)
  applied : int;  (** structurally legal moves (evaluated by the kernel) *)
  accepted : int;  (** applied moves kept by the Metropolis rule *)
  improvements : int;  (** accepted moves that improved the feasible best *)
  elapsed : float;  (** wall-clock seconds spent *)
}

type outcome = {
  schedule : Schedule.t option;
      (** best floorplan-feasible schedule seen — the (canonicalized)
          seed itself when nothing improved, [None] only if the seed
          was floorplan-infeasible and no move repaired it *)
  makespan : int;
      (** of [schedule]; the seed's canonical makespan when unimproved,
          [max_int] when [schedule = None] *)
  stats : stats;
}

val propose : Delta.t -> Resched_util.Rng.t -> Delta.move
(** One draw from the weighted proposal distribution [polish] explores
    (30% reassign, 15% swap, 15% demote, 20% promote, 10% merge, 10%
    split; infeasible draws are returned anyway and bounce off the
    kernel's structural checks). Exposed so the bench harness can drive
    the kernel with the exact move mix the search uses. *)

val polish : ?config:Delta.config -> ?seed:int -> ?temperature:float ->
  ?cooling:float -> ?min_moves:int -> budget_seconds:float -> Schedule.t ->
  outcome
(** [polish ~budget_seconds sched] anneals from [sched] until at least
    [min_moves] (default 1) proposals have been drawn {e and} the
    wall-clock budget is spent. [temperature] (default: 5% of the seed
    makespan) and [cooling] (default 0.999, applied per proposal) shape
    the Metropolis rule: a move whose energy — makespan, plus a large
    penalty when it breaks floorplan feasibility — rises by [d] is still
    accepted with probability [exp (-d / T)].

    With [budget_seconds = 0.] the run performs exactly [min_moves]
    proposals, and the outcome is a deterministic function of
    [(seed, min_moves)] and the input schedule — the reproducible
    configuration used by tests and the bench harness. *)
