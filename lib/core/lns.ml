module Rng = Resched_util.Rng
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch

type stats = {
  proposed : int;
  applied : int;
  accepted : int;
  improvements : int;
  elapsed : float;
}

type outcome = {
  schedule : Schedule.t option;
  makespan : int;
  stats : stats;
}

(* Draw one move from the current state. Plenty of draws are dead on
   arrival (a software task where a hardware one was wanted, the same
   region twice, ...); they are returned anyway and rejected by the
   kernel's structural checks — the proposal loop stays branch-light and
   the accounting ([proposed] vs [applied]) shows the waste. *)
let propose d rng =
  let n = Delta.size d in
  let pick_task () = Rng.int rng n in
  let pick_region regions = regions.(Rng.int rng (Array.length regions)) in
  let regions = Array.of_list (Delta.live_regions d) in
  let have_regions = Array.length regions > 0 in
  match Rng.int rng 100 with
  | k when k < 30 && have_regions ->
    Delta.Reassign { task = pick_task (); region = pick_region regions }
  | k when k < 45 ->
    Delta.Swap { task_a = pick_task (); task_b = pick_task () }
  | k when k < 60 ->
    let inst = Delta.instance d in
    let processors = inst.Instance.arch.Arch.processors in
    Delta.To_sw { task = pick_task (); processor = Rng.int rng processors }
  | k when k < 80 ->
    let u = pick_task () in
    let inst = Delta.instance d in
    (match Instance.hw_impls inst u with
    | [] -> Delta.To_sw { task = u; processor = 0 }
    | impls ->
      let idx, _ = List.nth impls (Rng.int rng (List.length impls)) in
      let region =
        if have_regions && Rng.bool rng then Some (pick_region regions)
        else None
      in
      Delta.To_hw { task = u; impl_idx = idx; region })
  | k when (k < 90 && have_regions) || (k >= 90 && not have_regions) ->
    if not have_regions then Delta.Swap { task_a = 0; task_b = 0 }
    else
      Delta.Merge { dst = pick_region regions; src = pick_region regions }
  | _ ->
    if not have_regions then Delta.Swap { task_a = 0; task_b = 0 }
    else
      let r = pick_region regions in
      let count = Delta.region_task_count d r in
      if count < 2 then Delta.Split { region = r; keep = 1 }
      else Delta.Split { region = r; keep = 1 + Rng.int rng (count - 1) }

let polish ?config ?(seed = 0) ?temperature ?(cooling = 0.999) ?(min_moves = 1)
    ~budget_seconds sched =
  let t0 = Unix.gettimeofday () in
  let d = Delta.of_schedule ?config sched in
  let rng = Rng.create seed in
  let seed_mk = Delta.makespan d in
  (* infeasibility must dominate any makespan difference *)
  let penalty = 10 * (seed_mk + 1) in
  let energy mk fp = if fp then mk else mk + penalty in
  let temp = ref (match temperature with
    | Some t -> Stdlib.max 1e-6 t
    | None -> Stdlib.max 1.0 (0.05 *. float_of_int seed_mk)) in
  let cur_energy = ref (energy seed_mk (Delta.fp_feasible d)) in
  let best_mk = ref (if Delta.fp_feasible d then seed_mk else max_int) in
  let best = ref (if Delta.fp_feasible d then Some (Delta.to_schedule d) else None) in
  let proposed = ref 0
  and applied = ref 0
  and accepted = ref 0
  and improvements = ref 0 in
  let out_of_budget () =
    !proposed >= min_moves
    && (budget_seconds <= 0.
       || Unix.gettimeofday () -. t0 >= budget_seconds)
  in
  while not (out_of_budget ()) do
    incr proposed;
    let move = propose d rng in
    (match Delta.apply d move with
    | None -> ()
    | Some v ->
      incr applied;
      let e = energy v.Delta.makespan v.Delta.fp_feasible in
      let delta = e - !cur_energy in
      let keep =
        delta <= 0
        || Rng.float rng 1.0 < exp (-.float_of_int delta /. !temp)
      in
      if keep then begin
        Delta.commit d;
        incr accepted;
        cur_energy := e;
        if v.Delta.fp_feasible && v.Delta.makespan < !best_mk then begin
          best_mk := v.Delta.makespan;
          best := Some (Delta.to_schedule d);
          incr improvements
        end
      end
      else Delta.rollback d);
    temp := Stdlib.max 1e-6 (!temp *. cooling)
  done;
  {
    schedule = !best;
    makespan = !best_mk;
    stats =
      {
        proposed = !proposed;
        applied = !applied;
        accepted = !accepted;
        improvements = !improvements;
        elapsed = Unix.gettimeofday () -. t0;
      };
  }
