module Instance = Resched_platform.Instance
module Impl = Resched_platform.Impl

let run ?cost inst ~max_res =
  let cost =
    match cost with Some c -> c | None -> Cost.make inst ~max_res
  in
  Array.init (Instance.size inst) (fun task ->
      let sw_idx = Instance.fastest_sw inst task in
      let sw_time = (Instance.impl inst ~task ~idx:sw_idx).Impl.time in
      match Cost.best_hw cost inst task with
      | None -> sw_idx
      | Some (hw_idx, hw_impl) ->
        if hw_impl.Impl.time < sw_time then hw_idx else sw_idx)
