module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance

let delay state ~task ~last_end =
  Stdlib.max 0 (last_end - State.t_min state task)

(* Totally order [task] against every task already on the processor: a
   dependency path (either way) already orders the pair; otherwise an
   explicit edge is inserted following the current window order. This
   guarantees processor exclusiveness whatever delays appear later. *)
let sequence_on_processor state ~task assigned =
  List.iter
    (fun u ->
      if not ((Graph.reachable state.State.dep task).(u)
             || (Graph.reachable state.State.dep u).(task))
      then begin
        if State.t_min state u <= State.t_min state task then
          Graph.add_edge state.State.dep u task
        else Graph.add_edge state.State.dep task u
      end)
    assigned

(* Same decisions as [sequence_on_processor] without the two full DFS
   per pair: [fwd] holds the descendants of [task] and [anc] its
   ancestors *in the current graph*, maintained incrementally as edges
   go in. An edge [task -> u] can only extend [fwd] (by [u]'s
   descendants, a DAG admits no new path into [task] from an edge out of
   it), and an edge [u -> task] only [anc] — so one marking DFS from [u]
   restores the invariant and total work per task is bounded by one
   graph traversal instead of one per assigned pair. *)
let sequence_on_processor_marked state ~task ~fwd ~anc assigned =
  let dep = state.State.dep in
  List.iter
    (fun u ->
      if not (fwd.(u) || anc.(u)) then begin
        if State.t_min state u <= State.t_min state task then begin
          Graph.add_edge dep u task;
          Graph.mark_coreachable dep u anc
        end
        else begin
          Graph.add_edge dep task u;
          Graph.mark_reachable dep u fwd
        end
      end)
    assigned

let run ?(incremental = true) state =
  let n = Instance.size state.State.inst in
  let processors =
    state.State.inst.Instance.arch.Resched_platform.Arch.processors
  in
  let on_processor = Array.make processors [] in
  (* Software tasks sorted by t_min. Arena states collect and
     stable-insertion-sort them in borrowed scratch (same order as the
     legacy filter + [List.sort], which is the stdlib's stable merge);
     plain states keep the list pipeline. *)
  let scratch = State.scratch_of state in
  let sw_arr, sw_count =
    match scratch with
    | Some s ->
      let arr = State.sc_tasks s in
      let count = ref 0 in
      for u = 0 to n - 1 do
        if not (State.is_hw state u) then begin
          arr.(!count) <- u;
          incr count
        end
      done;
      Resched_util.Sort.by_int_key arr ~base:0 ~len:!count
        ~key:(State.t_min state);
      (arr, !count)
    | None ->
      let l =
        List.filter
          (fun u -> not (State.is_hw state u))
          (List.init n (fun i -> i))
        |> List.sort
             (fun a b -> compare (State.t_min state a) (State.t_min state b))
      in
      (Array.of_list l, List.length l)
  in
  let fwd, anc =
    if not incremental then ([||], [||])
    else
      match scratch with
      | Some s -> (State.sc_flags s, State.sc_mark s)
      | None -> (Array.make n false, Array.make n false)
  in
  for i = 0 to sw_count - 1 do
    let task = sw_arr.(i) in
    let end_of u = State.t_min state u + State.duration state u in
    let best_p = ref 0 and best_lambda = ref max_int in
    for p = 0 to processors - 1 do
      let last_end =
        List.fold_left (fun acc u -> Stdlib.max acc (end_of u)) 0
          on_processor.(p)
      in
      let lambda = delay state ~task ~last_end in
      if lambda < !best_lambda then begin
        best_lambda := lambda;
        best_p := p
      end
    done;
    let p = !best_p in
    (if incremental then begin
       Array.fill fwd 0 n false;
       Array.fill anc 0 n false;
       Graph.mark_reachable state.State.dep task fwd;
       Graph.mark_coreachable state.State.dep task anc;
       sequence_on_processor_marked state ~task ~fwd ~anc on_processor.(p)
     end
     else sequence_on_processor state ~task on_processor.(p));
    state.State.processor_of.(task) <- p;
    on_processor.(p) <- task :: on_processor.(p);
    State.refresh_windows state
  done
