(** Step 1 — implementation selection (Sec. V-A).

    For every task: score each hardware implementation with the cost
    metric (eq. 3), pick the cheapest hardware implementation and the
    fastest software one, then select whichever of the two executes
    faster. *)

val run : ?cost:Cost.t -> Resched_platform.Instance.t ->
  max_res:Resched_fabric.Resource.t -> int array
(** Initial implementation index per task. [cost] shares an
    already-built {!Cost.t} for the same [max_res] instead of deriving
    the weights again (the callers of the restart loop hold one per
    resource scale). *)
