(** Self-healing schedule repair.

    The scheduler's output assumes every reconfiguration and task
    execution succeeds; real PR systems see bitstream CRC failures,
    task overruns and region faults. This module takes a finished
    {!Schedule.t}, a fault observed at instant [at], and a recovery
    policy, and produces a *repaired* schedule: the committed history
    (everything finished or in flight at [at]) is pinned in place, the
    faulted activity is retried, migrated or shifted, and the suffix is
    re-timed through the incremental {!Timing.Solver}. Because every
    task in the model carries both HW and SW implementations, graceful
    degradation to software is always a candidate recovery path.

    Every schedule returned here has passed {!Validate.check}; a repair
    whose result would not validate is reported as [Error] instead. *)

type fault =
  | Reconf_failed of { region : int; t_in : int; t_out : int; failures : int }
      (** the bitstream load between [t_in] and [t_out] failed
          [failures] consecutive times; each failed attempt re-occupies
          the single reconfiguration controller for the load duration
          plus a backoff *)
  | Task_overrun of { task : int; end_at : int }
      (** the task ran long (beyond any modelled jitter) and completed
          at [end_at] instead of its committed end *)
  | Region_dead of { region : int }
      (** permanent region fault: no further bitstream can be loaded
          and any computation in flight there is lost *)

type policy =
  | Retry
      (** re-attempt failed loads (bounded, with backoff) and shift;
          cannot recover permanent faults *)
  | Sw_fallback
      (** like [Retry], plus: permanently-faulted HW tasks migrate to
          their software implementations on the least-loaded processor;
          surviving activities keep their committed starts (pure
          right-shift) *)
  | Resched_tail
      (** like [Sw_fallback], but the schedule suffix is recomputed
          from the fault instant: pending activities may move *earlier*
          than committed to reclaim slack the fault exposed *)

type action =
  | Retried of { region : int; t_out : int; attempts : int }
  | Migrated of { task : int; processor : int }
  | Retimed of { compacted : bool }

val repair : ?max_attempts:int -> ?backoff:int -> policy:policy -> at:int ->
  fault:fault -> Schedule.t -> (Schedule.t * action list, string) result
(** [repair ~policy ~at ~fault sched] is the repaired schedule and the
    recovery actions taken, or a reason why the policy cannot recover
    this fault (permanent fault under [Retry], a faulted task without a
    software implementation, a malformed fault reference). The input
    schedule must be valid; the output schedule is guaranteed valid.
    [max_attempts] (default 3) bounds reconfiguration retries;
    [backoff] (default 0) is the idle gap after each failed attempt. *)

val policy_name : policy -> string
val policy_of_string : string -> (policy, string) result
val action_key : action -> string
(** Histogram bucket: ["retry"], ["migrate"] or ["retime"]. *)

val pp_action : Format.formatter -> action -> unit
val pp_fault : Format.formatter -> fault -> unit
