module Graph = Resched_taskgraph.Graph
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache
module Placement = Resched_floorplan.Placement

type config = {
  engine : Floorplanner.engine;
  node_limit : int option;
  cache : Fp_cache.t option;
}

let default_config =
  { engine = Floorplanner.Backtracking; node_limit = None; cache = None }

type move =
  | Reassign of { task : int; region : int }
  | Swap of { task_a : int; task_b : int }
  | To_sw of { task : int; processor : int }
  | To_hw of { task : int; impl_idx : int; region : int option }
  | Merge of { dst : int; src : int }
  | Split of { region : int; keep : int }

type verdict = { makespan : int; fp_feasible : bool; needs_changed : bool }

(* Every mutable cell lives in one of a fixed set of named int arrays (or
   the few Resource / global cells below), so an undo entry can name the
   cell by (field, index) instead of holding an array reference — array
   references would dangle when a capacity grow reallocates the
   backing store between a write and its rollback. *)
type field =
  | F_t  (* node earliest start, tasks then spec slots *)
  | F_impl  (* task implementation index *)
  | F_dur  (* task duration *)
  | F_mod  (* task module id, -1 none *)
  | F_regof  (* region id, -1 = software *)
  | F_procof  (* processor id, -1 = hardware *)
  | F_prev  (* chain predecessor task, -1 *)
  | F_next  (* chain successor task, -1 *)
  | F_spec_after  (* spec slot between task and its chain successor, -1 *)
  | F_sp_pred  (* spec: t_in task *)
  | F_sp_succ  (* spec: t_out task *)
  | F_sp_region
  | F_sp_dur
  | F_sp_cprev  (* controller chain links (slot ids), -1 ends *)
  | F_sp_cnext
  | F_sp_live  (* 0/1 *)
  | F_rg_head  (* first task of the region chain, -1; doubles as the
                  free-list link of dead slots *)
  | F_rg_count
  | F_rg_reconf
  | F_rg_live  (* 0/1 *)
  | F_proc_head  (* first task of each processor chain, -1 *)

type undo =
  | U_mark  (* move boundary *)
  | U_int of field * int * int
  | U_rgres of int * Resource.t
  | U_resof of int * Resource.t
  | U_used of Resource.t
  | U_spfree of int
  | U_rgfree of int
  | U_ctrl_head of int
  | U_ctrl_tail of int
  | U_nctrl of int
  | U_nspecs of int
  | U_nregions of int
  | U_mk of int
  | U_fp of bool * Placement.rect array

type t = {
  inst : Instance.t;
  device : Device.t;
  arch : Arch.t;
  n : int;
  processors : int;
  module_reuse : bool;
  resource_scale : float;
  cfg : config;
  (* static data-dependency CSR, forward and reverse *)
  d_soff : int array;
  d_sadj : int array;
  d_poff : int array;
  d_padj : int array;
  (* per-task state *)
  impl_idx : int array;
  dur : int array;
  mod_id : int array;
  res_of : Resource.t array;  (* current implementation's needs *)
  regof : int array;
  procof : int array;
  prev_ : int array;
  next_ : int array;
  spec_after : int array;
  (* spec slots (grown on demand) *)
  mutable sp_pred : int array;
  mutable sp_succ : int array;
  mutable sp_region : int array;
  mutable sp_dur : int array;
  mutable sp_cprev : int array;
  mutable sp_cnext : int array;
  mutable sp_live : int array;
  mutable nspecs : int;  (* high-water slot count *)
  mutable sp_free : int;  (* free-list head through sp_cnext, -1 *)
  mutable ctrl_head : int;
  mutable ctrl_tail : int;
  mutable nctrl : int;  (* live controller-chain length *)
  (* region slots (grown on demand) *)
  mutable rg_head : int array;
  mutable rg_count : int array;
  mutable rg_reconf : int array;
  mutable rg_live : int array;
  mutable rg_res : Resource.t array;
  mutable nregions : int;
  mutable rg_free : int;  (* free-list head through rg_head, -1 *)
  proc_head : int array;
  (* resolved node times: tasks 0..n-1, spec slot s at n+s *)
  mutable t : int array;
  mutable mk : int;
  mutable used : Resource.t;  (* sum of live region demands *)
  mutable fp_ok : bool;
  mutable fp_places : Placement.rect array;
  (* undo log, newest first; U_mark separates moves *)
  mutable undo : undo list;
  (* evaluation scratch (node-indexed, grown with the spec table) *)
  mutable stamp : int array;
  mutable gen : int;
  mutable indeg : int array;
  mutable queue : int array;
  mutable suffix : int array;
  mutable stk : int array;
  sortbuf : int array;  (* member collection, task-indexed *)
  (* direct-mapped floorplan-verdict memo keyed by the live demand
     multiset in region order. A verdict is a pure function of the
     multiset, so entries never go stale across moves or rollbacks; a
     hit skips the shared cache's sort/key/unpermute work entirely.
     Key layout: [|clb0; bram0; dsp0; clb1; ...|]; [||] marks empty. *)
  mutable l0_key : int array array;  (* [||] until the first query *)
  mutable l0_ok : bool array;
  mutable l0_places : Placement.rect array array;
  mutable times_valid : bool;
      (* do the stored times satisfy every current edge? pruned
         reachability relies on this; structural edits that break the
         potential clear it until the next evaluation *)
}

let instance d = d.inst
let makespan d = d.mk
let fp_feasible d = d.fp_ok
let size d = d.n
let region_of d u = d.regof.(u)
let processor_of d u = d.procof.(u)

let live_regions d =
  let acc = ref [] in
  for r = d.nregions - 1 downto 0 do
    if d.rg_live.(r) = 1 then acc := r :: !acc
  done;
  !acc

let region_task_count d r =
  if r < 0 || r >= d.nregions || d.rg_live.(r) = 0 then
    invalid_arg "Delta.region_task_count: dead region";
  d.rg_count.(r)

let region_res d r =
  if r < 0 || r >= d.nregions || d.rg_live.(r) = 0 then
    invalid_arg "Delta.region_res: dead region";
  d.rg_res.(r)

(* ------------------------------------------------------------------ *)
(* Logged writes. Every structural mutation goes through these so one
   [rollback] replays the exact inverse. *)

let arr_of d = function
  | F_t -> d.t
  | F_impl -> d.impl_idx
  | F_dur -> d.dur
  | F_mod -> d.mod_id
  | F_regof -> d.regof
  | F_procof -> d.procof
  | F_prev -> d.prev_
  | F_next -> d.next_
  | F_spec_after -> d.spec_after
  | F_sp_pred -> d.sp_pred
  | F_sp_succ -> d.sp_succ
  | F_sp_region -> d.sp_region
  | F_sp_dur -> d.sp_dur
  | F_sp_cprev -> d.sp_cprev
  | F_sp_cnext -> d.sp_cnext
  | F_sp_live -> d.sp_live
  | F_rg_head -> d.rg_head
  | F_rg_count -> d.rg_count
  | F_rg_reconf -> d.rg_reconf
  | F_rg_live -> d.rg_live
  | F_proc_head -> d.proc_head

let seti d f i v =
  let a = arr_of d f in
  let old = a.(i) in
  if old <> v then begin
    d.undo <- U_int (f, i, old) :: d.undo;
    a.(i) <- v
  end

let set_rgres d i v =
  if not (Resource.equal d.rg_res.(i) v) then begin
    d.undo <- U_rgres (i, d.rg_res.(i)) :: d.undo;
    d.rg_res.(i) <- v
  end

let set_resof d i v =
  if not (Resource.equal d.res_of.(i) v) then begin
    d.undo <- U_resof (i, d.res_of.(i)) :: d.undo;
    d.res_of.(i) <- v
  end

let set_used d v =
  if not (Resource.equal d.used v) then begin
    d.undo <- U_used d.used :: d.undo;
    d.used <- v
  end

let set_spfree d v =
  if d.sp_free <> v then begin
    d.undo <- U_spfree d.sp_free :: d.undo;
    d.sp_free <- v
  end

let set_rgfree d v =
  if d.rg_free <> v then begin
    d.undo <- U_rgfree d.rg_free :: d.undo;
    d.rg_free <- v
  end

let set_ctrl_head d v =
  if d.ctrl_head <> v then begin
    d.undo <- U_ctrl_head d.ctrl_head :: d.undo;
    d.ctrl_head <- v
  end

let set_ctrl_tail d v =
  if d.ctrl_tail <> v then begin
    d.undo <- U_ctrl_tail d.ctrl_tail :: d.undo;
    d.ctrl_tail <- v
  end

let set_nctrl d v =
  if d.nctrl <> v then begin
    d.undo <- U_nctrl d.nctrl :: d.undo;
    d.nctrl <- v
  end

let set_nspecs d v =
  if d.nspecs <> v then begin
    d.undo <- U_nspecs d.nspecs :: d.undo;
    d.nspecs <- v
  end

let set_nregions d v =
  if d.nregions <> v then begin
    d.undo <- U_nregions d.nregions :: d.undo;
    d.nregions <- v
  end

let set_mk d v =
  if d.mk <> v then begin
    d.undo <- U_mk d.mk :: d.undo;
    d.mk <- v
  end

let set_fp d ok places =
  d.undo <- U_fp (d.fp_ok, d.fp_places) :: d.undo;
  d.fp_ok <- ok;
  d.fp_places <- places

let undo_one d = function
  | U_mark -> ()
  | U_int (f, i, v) -> (arr_of d f).(i) <- v
  | U_rgres (i, v) -> d.rg_res.(i) <- v
  | U_resof (i, v) -> d.res_of.(i) <- v
  | U_used v -> d.used <- v
  | U_spfree v -> d.sp_free <- v
  | U_rgfree v -> d.rg_free <- v
  | U_ctrl_head v -> d.ctrl_head <- v
  | U_ctrl_tail v -> d.ctrl_tail <- v
  | U_nctrl v -> d.nctrl <- v
  | U_nspecs v -> d.nspecs <- v
  | U_nregions v -> d.nregions <- v
  | U_mk v -> d.mk <- v
  | U_fp (ok, places) ->
    d.fp_ok <- ok;
    d.fp_places <- places

let rollback d =
  let rec pop = function
    | [] -> invalid_arg "Delta.rollback: nothing to roll back"
    | U_mark :: tl -> d.undo <- tl
    | e :: tl ->
      undo_one d e;
      pop tl
  in
  pop d.undo;
  d.times_valid <- true

let commit d = d.undo <- []

(* ------------------------------------------------------------------ *)
(* Capacity. Grown only at move entry, before the first logged write of
   the move, so no live undo entry ever names a stale array (entries
   name fields, but scratch bookkeeping like [stamp] must cover every
   slot an in-flight move may touch). *)

let grow_int a cap fill =
  let b = Array.make cap fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_capacity d ~specs ~regions =
  let want_sp = d.nspecs + specs in
  if want_sp > Array.length d.sp_pred then begin
    let cap = Stdlib.max want_sp (2 * Array.length d.sp_pred) in
    d.sp_pred <- grow_int d.sp_pred cap (-1);
    d.sp_succ <- grow_int d.sp_succ cap (-1);
    d.sp_region <- grow_int d.sp_region cap (-1);
    d.sp_dur <- grow_int d.sp_dur cap 0;
    d.sp_cprev <- grow_int d.sp_cprev cap (-1);
    d.sp_cnext <- grow_int d.sp_cnext cap (-1);
    d.sp_live <- grow_int d.sp_live cap 0;
    let nodes = d.n + cap in
    d.t <- grow_int d.t nodes 0;
    d.stamp <- grow_int d.stamp nodes 0;
    d.indeg <- grow_int d.indeg nodes 0;
    d.queue <- grow_int d.queue nodes 0;
    d.suffix <- grow_int d.suffix nodes 0;
    d.stk <- grow_int d.stk nodes 0
  end;
  let want_rg = d.nregions + regions in
  if want_rg > Array.length d.rg_head then begin
    let cap = Stdlib.max want_rg (2 * Array.length d.rg_head) in
    d.rg_head <- grow_int d.rg_head cap (-1);
    d.rg_count <- grow_int d.rg_count cap 0;
    d.rg_reconf <- grow_int d.rg_reconf cap 0;
    d.rg_live <- grow_int d.rg_live cap 0;
    let b = Array.make cap Resource.zero in
    Array.blit d.rg_res 0 b 0 Array.(length d.rg_res);
    d.rg_res <- b
  end

(* ------------------------------------------------------------------ *)
(* The dynamic precedence graph, implicit in the chain fields. *)

let iter_preds d x f =
  if x < d.n then begin
    for j = d.d_poff.(x) to d.d_poff.(x + 1) - 1 do
      f d.d_padj.(j)
    done;
    let p = d.prev_.(x) in
    if p >= 0 then begin
      let s = d.spec_after.(p) in
      if s >= 0 then f (d.n + s) else f p
    end
  end
  else begin
    let s = x - d.n in
    f d.sp_pred.(s);
    let cp = d.sp_cprev.(s) in
    if cp >= 0 then f (d.n + cp)
  end

let iter_succs d x f =
  if x < d.n then begin
    for j = d.d_soff.(x) to d.d_soff.(x + 1) - 1 do
      f d.d_sadj.(j)
    done;
    let nx = d.next_.(x) in
    if nx >= 0 then begin
      let s = d.spec_after.(x) in
      if s >= 0 then f (d.n + s) else f nx
    end
  end
  else begin
    let s = x - d.n in
    f d.sp_succ.(s);
    let cn = d.sp_cnext.(s) in
    if cn >= 0 then f (d.n + cn)
  end

(* Closure-free twin of [iter_preds] — this is the single hottest
   operation of the incremental evaluator, so the predecessor walk is
   unrolled by node kind (data preds of a task are tasks; a spec's
   graph pred is its host task, its controller pred another spec). *)
let compute_time d x =
  let best = ref 0 in
  if x < d.n then begin
    for j = d.d_poff.(x) to d.d_poff.(x + 1) - 1 do
      let p = d.d_padj.(j) in
      let fin = d.t.(p) + d.dur.(p) in
      if fin > !best then best := fin
    done;
    let p = d.prev_.(x) in
    if p >= 0 then begin
      let s = d.spec_after.(p) in
      let fin =
        if s >= 0 then d.t.(d.n + s) + d.sp_dur.(s) else d.t.(p) + d.dur.(p)
      in
      if fin > !best then best := fin
    end
  end
  else begin
    let s = x - d.n in
    let p = d.sp_pred.(s) in
    let fin = d.t.(p) + d.dur.(p) in
    if fin > !best then best := fin;
    let cp = d.sp_cprev.(s) in
    if cp >= 0 then begin
      let fin = d.t.(d.n + cp) + d.sp_dur.(cp) in
      if fin > !best then best := fin
    end
  end;
  !best

(* Reachability on the dynamic graph. Pruning only needs the stored
   times to be monotone along edges (t(y) >= t(x)) — a strictly weaker
   property than full timing feasibility, so it survives almost every
   mid-move edit: any node whose time exceeds the target's cannot lie
   on a path to it, and the DFS explores only the window between source
   and target. [times_valid] tracks that order-potential; the rare edit
   that inserts a genuinely backward-in-time edge clears it and the same
   DFS runs unpruned until the next evaluation. *)
let path_exists d src dst =
  if src = dst then true
  else if d.times_valid && d.t.(src) > d.t.(dst) then false
  else begin
    d.gen <- d.gen + 1;
    let gen = d.gen in
    let limit = d.t.(dst) in
    let sp = ref 0 in
    let found = ref false in
    let push x =
      if x = dst then found := true
      else if
        d.stamp.(x) <> gen && ((not d.times_valid) || d.t.(x) <= limit)
      then begin
        d.stamp.(x) <- gen;
        d.stk.(!sp) <- x;
        incr sp
      end
    in
    d.stamp.(src) <- gen;
    d.stk.(!sp) <- src;
    incr sp;
    while (not !found) && !sp > 0 do
      decr sp;
      let x = d.stk.(!sp) in
      iter_succs d x (push : int -> unit)
    done;
    !found
  end

(* A freshly inserted structural edge keeps the order-potential valid
   as long as it points forward (or sideways) in stored time; only a
   backward edge forces pruning off until the next evaluation. The full
   timing constraint (t(y) >= t(x) + dur(x)) is deliberately NOT
   required here — reachability pruning never looks at durations. *)
let note_edge d x y =
  if d.times_valid && d.t.(y) < d.t.(x) then d.times_valid <- false

(* ------------------------------------------------------------------ *)
(* Evaluation.

   Incremental path: a change-pruned worklist. Each popped node is
   recomputed exactly from its current predecessors; its successors are
   pushed only when the recomputed start actually moved. Most moves
   perturb a handful of starts before the max-over-predecessors
   structure re-absorbs the change, so the work is proportional to the
   set of nodes whose times change, not to everything reachable from
   the edit. Longest-path fixpoints are unique, so the fixpoint is
   bit-identical to re-timing the whole plan.

   Chaotic iteration only terminates on a DAG. Structural application
   cycle-checks every edge it inserts, so a cycle here is a bug-guard
   path, not an expected one: a relaxation budget bounds the loop and
   overruns fall back to [eval_suffix], the reach-DFS + Kahn pass that
   recomputes the full reachable suffix once and detects cycles
   exactly. *)

let eval_suffix d seeds =
  d.gen <- d.gen + 1;
  let gen = d.gen in
  let sp = ref 0 and top = ref 0 in
  let push x =
    if d.stamp.(x) <> gen then begin
      d.stamp.(x) <- gen;
      d.stk.(!sp) <- x;
      incr sp
    end
  in
  List.iter push seeds;
  while !sp > 0 do
    decr sp;
    let x = d.stk.(!sp) in
    d.suffix.(!top) <- x;
    incr top;
    iter_succs d x (push : int -> unit)
  done;
  let top = !top in
  for i = 0 to top - 1 do
    let x = d.suffix.(i) in
    let c = ref 0 in
    iter_preds d x (fun p -> if d.stamp.(p) = gen then incr c);
    d.indeg.(x) <- !c
  done;
  let head = ref 0 and tail = ref 0 in
  for i = 0 to top - 1 do
    let x = d.suffix.(i) in
    if d.indeg.(x) = 0 then begin
      d.queue.(!tail) <- x;
      incr tail
    end
  done;
  while !head < !tail do
    let x = d.queue.(!head) in
    incr head;
    seti d F_t x (compute_time d x);
    iter_succs d x (fun y ->
        if d.stamp.(y) = gen then begin
          let c = d.indeg.(y) - 1 in
          d.indeg.(y) <- c;
          if c = 0 then begin
            d.queue.(!tail) <- y;
            incr tail
          end
        end)
  done;
  (* [!head < top] would mean a cycle slipped past the insertion
     checks; treat it as a rejected move rather than corrupt state. *)
  !head = top

let eval_incremental d seeds =
  d.gen <- d.gen + 1;
  let gen = d.gen in
  let stamp = d.stamp and heap = d.queue and t = d.t in
  (* Min-heap on the stored start time: stale times are near-topological
     (the order-potential again), so each node is almost always popped
     after all its changing predecessors and recomputed once. Keys read
     live from [t]; a mid-pass update can only degrade the order, never
     the fixpoint. *)
  let len = ref 0 in
  let push x =
    if stamp.(x) <> gen then begin
      stamp.(x) <- gen;
      let i = ref !len in
      incr len;
      let k = t.(x) in
      while
        !i > 0
        &&
        let p = (!i - 1) / 2 in
        if t.(heap.(p)) > k then begin
          heap.(!i) <- heap.(p);
          i := p;
          true
        end
        else false
      do
        ()
      done;
      heap.(!i) <- x
    end
  in
  let pop () =
    let x = heap.(0) in
    decr len;
    let last = heap.(!len) in
    let k = t.(last) in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= !len then continue_ := false
      else begin
        let c =
          if l + 1 < !len && t.(heap.(l + 1)) < t.(heap.(l)) then l + 1
          else l
        in
        if t.(heap.(c)) < k then begin
          heap.(!i) <- heap.(c);
          i := c
        end
        else continue_ := false
      end
    done;
    heap.(!i) <- last;
    x
  in
  List.iter push seeds;
  (* Worst legal case is every node finalizing once per depth level;
     anything past a generous multiple means a cycle is spinning the
     worklist, so hand over to the exact pass. *)
  let budget = ref ((4 * (d.n + d.nspecs)) + 64) in
  let overrun = ref false in
  while (not !overrun) && !len > 0 do
    let x = pop () in
    stamp.(x) <- 0;
    decr budget;
    if !budget < 0 then overrun := true
    else begin
      let nt = compute_time d x in
      if nt <> t.(x) then begin
        seti d F_t x nt;
        (* closure-free [iter_succs]: push each successor directly *)
        if x < d.n then begin
          for j = d.d_soff.(x) to d.d_soff.(x + 1) - 1 do
            push d.d_sadj.(j)
          done;
          let nx = d.next_.(x) in
          if nx >= 0 then begin
            let s = d.spec_after.(x) in
            if s >= 0 then push (d.n + s) else push nx
          end
        end
        else begin
          let s = x - d.n in
          push d.sp_succ.(s);
          let cn = d.sp_cnext.(s) in
          if cn >= 0 then push (d.n + cn)
        end
      end
    end
  done;
  if !overrun then eval_suffix d seeds else true

(* Oracle path: project the plan onto the PR 2 machinery — a fresh
   [Graph.t] with the data and chain edges, the live reconfigurations as
   a [Timing.reconf_spec] array, the controller order as [sequence] —
   and let a from-scratch CSR solver re-time everything. Shares no code
   with [eval_incremental] past the structural application itself. *)
let oracle_resolve d =
  let n = d.n in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for j = d.d_soff.(u) to d.d_soff.(u + 1) - 1 do
      Graph.add_edge g u d.d_sadj.(j)
    done
  done;
  (* live specs in ascending slot order; remember slot -> compact idx *)
  let compact = Array.make (Stdlib.max 1 d.nspecs) (-1) in
  let count = ref 0 in
  for s = 0 to d.nspecs - 1 do
    if d.sp_live.(s) = 1 then begin
      compact.(s) <- !count;
      incr count
    end
  done;
  let reconfigs =
    Array.init !count (fun _ ->
        { Timing.region_id = 0; t_in = 0; t_out = 0; dur = 0; critical = false })
  in
  for s = 0 to d.nspecs - 1 do
    if d.sp_live.(s) = 1 then
      reconfigs.(compact.(s)) <-
        {
          Timing.region_id = d.sp_region.(s);
          t_in = d.sp_pred.(s);
          t_out = d.sp_succ.(s);
          dur = d.sp_dur.(s);
          critical = false;
        }
  done;
  (* chain edges between consecutive tasks not separated by a spec *)
  for u = 0 to n - 1 do
    let nx = d.next_.(u) in
    if nx >= 0 && d.spec_after.(u) < 0 then Graph.add_edge g u nx
  done;
  let sequence =
    let rec walk s acc =
      if s < 0 then List.rev acc else walk d.sp_cnext.(s) (compact.(s) :: acc)
    in
    walk d.ctrl_head []
  in
  let solver = Timing.Solver.of_plan ~graph:g ~durations:d.dur ~reconfigs in
  let times = Timing.Solver.resolve solver ~sequence in
  (times, compact)

let eval_oracle d =
  match oracle_resolve d with
  | times, compact ->
    for u = 0 to d.n - 1 do
      seti d F_t u times.Timing.task_start.(u)
    done;
    for s = 0 to d.nspecs - 1 do
      if d.sp_live.(s) = 1 then
        seti d F_t (d.n + s) times.Timing.rec_start.(compact.(s))
    done;
    true
  | exception Graph.Cycle _ -> false

let verify d =
  match oracle_resolve d with
  | times, compact ->
    let ok = ref (d.mk = times.Timing.makespan) in
    for u = 0 to d.n - 1 do
      if d.t.(u) <> times.Timing.task_start.(u) then ok := false
    done;
    for s = 0 to d.nspecs - 1 do
      if
        d.sp_live.(s) = 1
        && d.t.(d.n + s) <> times.Timing.rec_start.(compact.(s))
      then ok := false
    done;
    !ok
  | exception Graph.Cycle _ -> false

let update_makespan d =
  let m = ref 0 in
  for u = 0 to d.n - 1 do
    let e = d.t.(u) + d.dur.(u) in
    if e > !m then m := e
  done;
  set_mk d !m

(* ------------------------------------------------------------------ *)
(* Floorplan state. Demands are re-queried only when the live demand
   multiset changed; the shared cache (sorted-needs key) makes repeated
   multisets exact hits. *)

let l0_slots = 4096 (* power of two; direct-mapped, overwrite on clash *)

let requery_fp d =
  let nlive = ref 0 in
  for r = 0 to d.nregions - 1 do
    if d.rg_live.(r) = 1 then incr nlive
  done;
  if !nlive = 0 then set_fp d true [||]
  else if
    not (Resource.fits d.used ~within:(Arch.max_res d.arch))
  then set_fp d false [||]
  else begin
    (* The memo arrays are grown on first use: most states never query
       (their schedule arrives with a floorplan attached), and paying
       three 4096-slot allocations in [of_schedule] would tax exactly
       the from-scratch paths this memo is meant to speed past. *)
    if Array.length d.l0_key = 0 then begin
      d.l0_key <- Array.make l0_slots [||];
      d.l0_ok <- Array.make l0_slots false;
      d.l0_places <- Array.make l0_slots [||]
    end;
    (* L0 probe: hash the live demands in place, compare in place. *)
    let h = ref 17 in
    for r = 0 to d.nregions - 1 do
      if d.rg_live.(r) = 1 then begin
        let res = d.rg_res.(r) in
        h := (!h * 131) + res.Resource.clb;
        h := (!h * 131) + res.Resource.bram;
        h := (!h * 131) + res.Resource.dsp
      end
    done;
    let slot = !h land (l0_slots - 1) in
    let key = d.l0_key.(slot) in
    let hit =
      Array.length key = 3 * !nlive
      && begin
           let i = ref 0 and same = ref true in
           (try
              for r = 0 to d.nregions - 1 do
                if d.rg_live.(r) = 1 then begin
                  let res = d.rg_res.(r) in
                  if
                    key.(!i) <> res.Resource.clb
                    || key.(!i + 1) <> res.Resource.bram
                    || key.(!i + 2) <> res.Resource.dsp
                  then begin
                    same := false;
                    raise Stdlib.Exit
                  end;
                  i := !i + 3
                end
              done
            with Stdlib.Exit -> ());
           !same
         end
    in
    if hit then set_fp d d.l0_ok.(slot) d.l0_places.(slot)
    else begin
      let needs = Array.make !nlive Resource.zero in
      let i = ref 0 in
      for r = 0 to d.nregions - 1 do
        if d.rg_live.(r) = 1 then begin
          needs.(!i) <- d.rg_res.(r);
          incr i
        end
      done;
      let report =
        match d.cfg.cache with
        | Some cache ->
          Fp_cache.check cache ~engine:d.cfg.engine
            ?node_limit:d.cfg.node_limit d.device needs
        | None ->
          Floorplanner.check ~engine:d.cfg.engine ?node_limit:d.cfg.node_limit
            d.device needs
      in
      let ok, places =
        match report.Floorplanner.verdict with
        | Floorplanner.Feasible placements -> (true, placements)
        | Floorplanner.Infeasible | Floorplanner.Unknown -> (false, [||])
      in
      let key = Array.make (3 * !nlive) 0 in
      Array.iteri
        (fun i (res : Resource.t) ->
          key.(3 * i) <- res.Resource.clb;
          key.((3 * i) + 1) <- res.Resource.bram;
          key.((3 * i) + 2) <- res.Resource.dsp)
        needs;
      d.l0_key.(slot) <- key;
      d.l0_ok.(slot) <- ok;
      d.l0_places.(slot) <- places;
      set_fp d ok places
    end
  end

(* ------------------------------------------------------------------ *)
(* Structural primitives. All of them log through the setters; a move
   composes them and either finishes or rolls back to its U_mark. *)

let reuse_pair d a b =
  d.module_reuse && d.mod_id.(a) >= 0 && d.mod_id.(a) = d.mod_id.(b)

let alloc_spec d =
  if d.sp_free >= 0 then begin
    let s = d.sp_free in
    set_spfree d d.sp_cnext.(s);
    s
  end
  else begin
    let s = d.nspecs in
    set_nspecs d (s + 1);
    s
  end

(* Remove a spec from the controller chain and free its slot. The
   caller seeds the controller successor (it lost a predecessor). *)
let free_spec d s =
  let cp = d.sp_cprev.(s) and cn = d.sp_cnext.(s) in
  if cp >= 0 then seti d F_sp_cnext cp cn else set_ctrl_head d cn;
  if cn >= 0 then seti d F_sp_cprev cn cp else set_ctrl_tail d cp;
  set_nctrl d (d.nctrl - 1);
  seti d F_sp_live s 0;
  seti d F_sp_cprev s (-1);
  seti d F_sp_cnext s d.sp_free;
  set_spfree d s;
  cn

let sp_node d s = d.n + s

(* Controller insertion: legal interval via pairwise must-precede over
   the dynamic graph (same rule as [Reconf_sched.position_bounds]),
   desired slot = earliest controller gap at or after [ready] (same walk
   as [slot_position_sorted] — the chain is start-ordered whenever the
   times are a valid potential). Returns the controller successor to
   seed, or raises [Exit] when the bounds are empty (the caller rejects
   the move). *)
exception Reject

let must_precede_specs d a b =
  d.sp_succ.(a) = d.sp_pred.(b) || path_exists d d.sp_succ.(a) d.sp_pred.(b)

let ctrl_insert d s ~ready =
  (* Forward gap walk: desired slot = earliest controller gap at or
     after [ready]. Pure time reads, no reachability queries — and once
     a slot starts past [tau] the chain (start-ordered while the
     potential holds) has no earlier gap left, so the walk stops. *)
  let tau = ref ready and desired = ref 0 in
  let j = ref d.ctrl_head and stop = ref false in
  while !j >= 0 && not !stop do
    let js = !j in
    let st = d.t.(sp_node d js) in
    let en = st + d.sp_dur.(js) in
    if st <= !tau then begin
      if !tau < en then tau := en;
      if st < !tau then incr desired;
      j := d.sp_cnext.(js)
    end
    else stop := true
  done;
  (* Backward pass for the lower bound: the LAST slot that must precede
     the new spec decides it, so scanning from the tail stops at the
     first hit — and the slots near the tail, being latest in time,
     exit their reachability check immediately. *)
  let lo = ref 0 in
  let k = ref d.ctrl_tail and kpos = ref (d.nctrl - 1) in
  while !lo = 0 && !k >= 0 do
    let js = !k in
    if must_precede_specs d js s then lo := !kpos + 1
    else begin
      decr kpos;
      k := d.sp_cprev.(js)
    end
  done;
  let len = d.nctrl in
  (* Upper bound: position of the FIRST slot the new spec must precede.
     It only ever caps the landing position, so slots at or past
     [max lo desired] never need checking — and the remaining checks
     aim backward in time, where [path_exists] exits immediately on its
     time window. This sidesteps the wide-open forward windows that a
     full-chain scan would pay on every late slot. *)
  let p0 = Stdlib.min len (Stdlib.max !lo !desired) in
  let hi = ref max_int in
  let q = ref 0 in
  let j = ref d.ctrl_head in
  while !hi = max_int && !q < p0 do
    let js = !j in
    if must_precede_specs d s js then hi := !q;
    incr q;
    j := d.sp_cnext.(js)
  done;
  let hi = if !hi = max_int then len else !hi in
  if !lo > hi then raise Reject;
  let p = Stdlib.max !lo (Stdlib.min hi !desired) in
  (* link [s] so that it lands at position [p] *)
  let after = ref (-1) and cur = ref d.ctrl_head in
  for _ = 1 to p do
    after := !cur;
    cur := d.sp_cnext.(!cur)
  done;
  (* Seed the new spec's time with an order-consistent guess (its real
     start is recomputed by the next evaluation): at least [ready] and
     at least its controller predecessor, so the edges inserted below
     rarely break the reachability-pruning potential. *)
  let guess =
    if !after >= 0 then Stdlib.max ready d.t.(sp_node d !after) else ready
  in
  seti d F_t (sp_node d s) guess;
  seti d F_sp_cprev s !after;
  seti d F_sp_cnext s !cur;
  if !after >= 0 then seti d F_sp_cnext !after s else set_ctrl_head d s;
  if !cur >= 0 then seti d F_sp_cprev !cur s else set_ctrl_tail d s;
  set_nctrl d (d.nctrl + 1);
  (if !after >= 0 then note_edge d (sp_node d !after) (sp_node d s));
  (if !cur >= 0 then note_edge d (sp_node d s) (sp_node d !cur));
  !cur

let make_spec d ~pred ~succ ~region ~seeds =
  let s = alloc_spec d in
  seti d F_sp_pred s pred;
  seti d F_sp_succ s succ;
  seti d F_sp_region s region;
  seti d F_sp_dur s d.rg_reconf.(region);
  seti d F_sp_live s 1;
  seti d F_spec_after pred s;
  let cn = ctrl_insert d s ~ready:(d.t.(pred) + d.dur.(pred)) in
  note_edge d pred (sp_node d s);
  note_edge d (sp_node d s) succ;
  seeds := sp_node d s :: !seeds;
  if cn >= 0 then seeds := sp_node d cn :: !seeds

(* Detach a task from whatever chain hosts it. Deletes the adjacent
   specs of a region chain and, when both neighbours remain, reconnects
   them (with a fresh spec unless module reuse applies). Does not kill
   emptied regions — the move decides that. *)
let unlink_task d u ~seeds =
  let p = d.prev_.(u) and nx = d.next_.(u) in
  let r = d.regof.(u) in
  if r >= 0 then begin
    (if p >= 0 then
       let s = d.spec_after.(p) in
       if s >= 0 then begin
         let cn = free_spec d s in
         if cn >= 0 then seeds := sp_node d cn :: !seeds
       end;
       seti d F_spec_after p (-1));
    (let s = d.spec_after.(u) in
     if s >= 0 then begin
       let cn = free_spec d s in
       if cn >= 0 then seeds := sp_node d cn :: !seeds
     end;
     seti d F_spec_after u (-1));
    if p >= 0 then seti d F_next p nx else seti d F_rg_head r nx;
    if nx >= 0 then seti d F_prev nx p;
    if p >= 0 && nx >= 0 && not (reuse_pair d p nx) then
      make_spec d ~pred:p ~succ:nx ~region:r ~seeds;
    seti d F_rg_count r (d.rg_count.(r) - 1)
  end
  else begin
    let pr = d.procof.(u) in
    if p >= 0 then seti d F_next p nx else seti d F_proc_head pr nx;
    if nx >= 0 then seti d F_prev nx p;
    if p >= 0 && nx >= 0 then note_edge d p nx
  end;
  seti d F_prev u (-1);
  seti d F_next u (-1);
  seeds := u :: !seeds;
  if nx >= 0 then seeds := nx :: !seeds

(* Chain insertion point: after every member whose current start is at
   or before the task's. Time-consistent positions cannot create cycles
   while the potential is valid; the explicit checks catch the rest. *)
let chain_position d head u =
  let a = ref (-1) and cur = ref head in
  while !cur >= 0 && d.t.(!cur) <= d.t.(u) do
    a := !cur;
    cur := d.next_.(!cur)
  done;
  (!a, !cur)

let insert_into_region d u r ~seeds =
  let a, b = chain_position d d.rg_head.(r) u in
  if a >= 0 && path_exists d u a then raise Reject;
  if b >= 0 && path_exists d b u then raise Reject;
  (* splice the task *)
  (if a >= 0 then begin
     (let s = d.spec_after.(a) in
      if s >= 0 then begin
        let cn = free_spec d s in
        if cn >= 0 then seeds := sp_node d cn :: !seeds
      end);
     seti d F_spec_after a (-1);
     seti d F_next a u
   end
   else seti d F_rg_head r u);
  seti d F_prev u a;
  seti d F_next u b;
  if b >= 0 then seti d F_prev b u;
  seti d F_regof u r;
  seti d F_procof u (-1);
  seti d F_rg_count r (d.rg_count.(r) + 1);
  if a >= 0 then
    if reuse_pair d a u then note_edge d a u
    else make_spec d ~pred:a ~succ:u ~region:r ~seeds;
  if b >= 0 then
    if reuse_pair d u b then note_edge d u b
    else make_spec d ~pred:u ~succ:b ~region:r ~seeds;
  seeds := u :: !seeds;
  if b >= 0 then seeds := b :: !seeds

let insert_into_proc d u p ~seeds =
  let a, b = chain_position d d.proc_head.(p) u in
  if a >= 0 && path_exists d u a then raise Reject;
  if b >= 0 && path_exists d b u then raise Reject;
  (if a >= 0 then seti d F_next a u else seti d F_proc_head p u);
  seti d F_prev u a;
  seti d F_next u b;
  if b >= 0 then seti d F_prev b u;
  seti d F_procof u p;
  seti d F_regof u (-1);
  if a >= 0 then note_edge d a u;
  if b >= 0 then note_edge d u b;
  seeds := u :: !seeds;
  if b >= 0 then seeds := b :: !seeds

let alloc_region d res =
  let r =
    if d.rg_free >= 0 then begin
      let r = d.rg_free in
      set_rgfree d d.rg_head.(r);
      r
    end
    else begin
      let r = d.nregions in
      set_nregions d (r + 1);
      r
    end
  in
  set_rgres d r res;
  seti d F_rg_reconf r (Arch.reconf_ticks d.arch res);
  seti d F_rg_head r (-1);
  seti d F_rg_count r 0;
  seti d F_rg_live r 1;
  set_used d (Resource.add d.used res);
  r

let kill_region_if_empty d r ~needs_changed =
  if d.rg_live.(r) = 1 && d.rg_count.(r) = 0 then begin
    seti d F_rg_live r 0;
    set_used d (Resource.sub d.used d.rg_res.(r));
    seti d F_rg_head r d.rg_free;
    set_rgfree d r;
    needs_changed := true
  end

(* Changing the implementation changes [dur u] — an edge-weight change
   the change-pruned evaluator cannot see when [t u] itself stays put,
   so every data successor must be seeded explicitly (the chain
   successor is seeded by the relink that always follows). *)
let set_impl d u idx ~seeds =
  let impl = Instance.impl d.inst ~task:u ~idx in
  seti d F_impl u idx;
  if impl.Impl.time <> d.dur.(u) then
    for j = d.d_soff.(u) to d.d_soff.(u + 1) - 1 do
      seeds := d.d_sadj.(j) :: !seeds
    done;
  seti d F_dur u impl.Impl.time;
  seti d F_mod u (match impl.Impl.module_id with Some m -> m | None -> -1);
  set_resof d u impl.Impl.res

(* Collect a region's chain into [sortbuf.(0..count)] and drop every
   internal spec and link, leaving the members detached. Used by the
   rebuild moves (merge/split). *)
let dissolve_chain d r ~seeds =
  let count = ref 0 in
  let cur = ref d.rg_head.(r) in
  while !cur >= 0 do
    let u = !cur in
    d.sortbuf.(!count) <- u;
    incr count;
    (let s = d.spec_after.(u) in
     if s >= 0 then begin
       let cn = free_spec d s in
       if cn >= 0 then seeds := sp_node d cn :: !seeds
     end);
    seti d F_spec_after u (-1);
    cur := d.next_.(u);
    seti d F_prev u (-1);
    seti d F_next u (-1);
    seeds := u :: !seeds
  done;
  !count

(* Relink [members.(base..base+count)] as region [r]'s chain, in the
   given order, creating the specs. Order must be cycle-consistent; the
   per-pair checks reject interleavings the dependency graph forbids. *)
let rebuild_chain d r members ~base ~count ~seeds =
  if count = 0 then seti d F_rg_head r (-1)
  else begin
    seti d F_rg_head r members.(base);
    for i = 0 to count - 1 do
      let u = members.(base + i) in
      seti d F_regof u r;
      seti d F_procof u (-1);
      seti d F_prev u (if i = 0 then -1 else members.(base + i - 1));
      seti d F_next u (if i = count - 1 then -1 else members.(base + i + 1))
    done;
    for i = 0 to count - 2 do
      let a = members.(base + i) and b = members.(base + i + 1) in
      if path_exists d b a then raise Reject;
      if reuse_pair d a b then note_edge d a b
      else make_spec d ~pred:a ~succ:b ~region:r ~seeds
    done
  end;
  seti d F_rg_count r count

let members_max_res d members ~base ~count =
  let acc = ref Resource.zero in
  for i = 0 to count - 1 do
    acc := Resource.max_components !acc d.res_of.(members.(base + i))
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Moves. *)

let live_region d r = r >= 0 && r < d.nregions && d.rg_live.(r) = 1

let apply_structural d move ~seeds ~needs_changed =
  match move with
  | Reassign { task = u; region = r } ->
    if u < 0 || u >= d.n || d.regof.(u) < 0 then raise Reject;
    if (not (live_region d r)) || r = d.regof.(u) then raise Reject;
    if not (Resource.fits d.res_of.(u) ~within:d.rg_res.(r)) then raise Reject;
    let src = d.regof.(u) in
    unlink_task d u ~seeds;
    insert_into_region d u r ~seeds;
    kill_region_if_empty d src ~needs_changed
  | Swap { task_a = a; task_b = b } ->
    if a < 0 || a >= d.n || b < 0 || b >= d.n || a = b then raise Reject;
    let ra = d.regof.(a) and rb = d.regof.(b) in
    if ra < 0 || rb < 0 || ra = rb then raise Reject;
    if not (Resource.fits d.res_of.(a) ~within:d.rg_res.(rb)) then raise Reject;
    if not (Resource.fits d.res_of.(b) ~within:d.rg_res.(ra)) then raise Reject;
    unlink_task d a ~seeds;
    unlink_task d b ~seeds;
    insert_into_region d a rb ~seeds;
    insert_into_region d b ra ~seeds
  | To_sw { task = u; processor = p } ->
    if u < 0 || u >= d.n || d.regof.(u) < 0 then raise Reject;
    if p < 0 || p >= d.processors then raise Reject;
    let src = d.regof.(u) in
    unlink_task d u ~seeds;
    set_impl d u (Instance.fastest_sw d.inst u) ~seeds;
    insert_into_proc d u p ~seeds;
    kill_region_if_empty d src ~needs_changed
  | To_hw { task = u; impl_idx; region } ->
    if u < 0 || u >= d.n || d.regof.(u) >= 0 then raise Reject;
    let impl =
      match Instance.impl d.inst ~task:u ~idx:impl_idx with
      | impl -> impl
      | exception Invalid_argument _ -> raise Reject
    in
    if not (Impl.is_hw impl) then raise Reject;
    let r =
      match region with
      | Some r ->
        if not (live_region d r) then raise Reject;
        if not (Resource.fits impl.Impl.res ~within:d.rg_res.(r)) then
          raise Reject;
        r
      | None ->
        needs_changed := true;
        alloc_region d impl.Impl.res
    in
    unlink_task d u ~seeds;
    set_impl d u impl_idx ~seeds;
    insert_into_region d u r ~seeds
  | Merge { dst; src } ->
    if (not (live_region d dst)) || (not (live_region d src)) || dst = src
    then raise Reject;
    let res_dst = d.rg_res.(dst) and res_src = d.rg_res.(src) in
    let merged = Resource.max_components res_dst res_src in
    let c1 = dissolve_chain d dst ~seeds in
    let cur = ref d.rg_head.(src) in
    let count = ref c1 in
    while !cur >= 0 do
      let u = !cur in
      d.sortbuf.(!count) <- u;
      incr count;
      (let s = d.spec_after.(u) in
       if s >= 0 then begin
         let cn = free_spec d s in
         if cn >= 0 then seeds := sp_node d cn :: !seeds
       end);
      seti d F_spec_after u (-1);
      cur := d.next_.(u);
      seti d F_prev u (-1);
      seti d F_next u (-1);
      seeds := u :: !seeds
    done;
    let count = !count in
    (* retire [src] *)
    seti d F_rg_count src 0;
    seti d F_rg_live src 0;
    seti d F_rg_head src d.rg_free;
    set_rgfree d src;
    (* grow [dst] *)
    set_rgres d dst merged;
    seti d F_rg_reconf dst (Arch.reconf_ticks d.arch merged);
    set_used d
      (Resource.add (Resource.sub (Resource.sub d.used res_dst) res_src) merged);
    (* interleave by current start, ties by task id (stable, and the
       member ids are distinct so the order is total) *)
    Resched_util.Sort.by_int_key d.sortbuf ~base:0 ~len:count ~key:(fun u ->
        d.t.(u));
    rebuild_chain d dst d.sortbuf ~base:0 ~count ~seeds;
    needs_changed := true
  | Split { region = r; keep } ->
    if not (live_region d r) then raise Reject;
    let count = d.rg_count.(r) in
    if keep < 1 || keep >= count then raise Reject;
    let c = dissolve_chain d r ~seeds in
    assert (c = count);
    let res_kept = members_max_res d d.sortbuf ~base:0 ~count:keep in
    let res_moved =
      members_max_res d d.sortbuf ~base:keep ~count:(count - keep)
    in
    let old_res = d.rg_res.(r) in
    set_rgres d r res_kept;
    seti d F_rg_reconf r (Arch.reconf_ticks d.arch res_kept);
    set_used d
      (Resource.add (Resource.sub d.used old_res) res_kept);
    let nr = alloc_region d res_moved in
    rebuild_chain d r d.sortbuf ~base:0 ~count:keep ~seeds;
    rebuild_chain d nr d.sortbuf ~base:keep ~count:(count - keep) ~seeds;
    needs_changed := true

let apply ?(incremental = true) d move =
  ensure_capacity d ~specs:8 ~regions:2;
  d.undo <- U_mark :: d.undo;
  let seeds = ref [] and needs_changed = ref false in
  let ok =
    match apply_structural d move ~seeds ~needs_changed with
    | () -> true
    | exception Reject -> false
  in
  let ok =
    ok
    && (if incremental then eval_incremental d !seeds else eval_oracle d)
  in
  if not ok then begin
    rollback d;
    None
  end
  else begin
    update_makespan d;
    (* The incremental kernel re-queries the floorplan only when the
       live demand multiset changed; the from-scratch oracle arm, being
       the full pipeline, re-verifies it on every evaluation. Same
       multiset, same (deterministic, memoized) verdict — only the cost
       differs. *)
    if (not incremental) || !needs_changed then requery_fp d;
    d.times_valid <- true;
    Some
      {
        makespan = d.mk;
        fp_feasible = d.fp_ok;
        needs_changed = !needs_changed;
      }
  end

(* ------------------------------------------------------------------ *)
(* Construction from a schedule. *)

let of_schedule ?(config = default_config) (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let n = Instance.size inst in
  let graph = inst.Instance.graph in
  (* static data-dependency CSR, both directions *)
  let d_soff = Array.make (n + 1) 0 and d_poff = Array.make (n + 1) 0 in
  let edges = Graph.edges graph in
  List.iter
    (fun (u, v) ->
      d_soff.(u + 1) <- d_soff.(u + 1) + 1;
      d_poff.(v + 1) <- d_poff.(v + 1) + 1)
    edges;
  for i = 0 to n - 1 do
    d_soff.(i + 1) <- d_soff.(i + 1) + d_soff.(i);
    d_poff.(i + 1) <- d_poff.(i + 1) + d_poff.(i)
  done;
  let ne = List.length edges in
  let d_sadj = Array.make (Stdlib.max 1 ne) 0 in
  let d_padj = Array.make (Stdlib.max 1 ne) 0 in
  let scur = Array.copy d_soff and pcur = Array.copy d_poff in
  List.iter
    (fun (u, v) ->
      d_sadj.(scur.(u)) <- v;
      scur.(u) <- scur.(u) + 1;
      d_padj.(pcur.(v)) <- u;
      pcur.(v) <- pcur.(v) + 1)
    edges;
  let nreg = Array.length sched.Schedule.regions in
  let nrc = List.length sched.Schedule.reconfigurations in
  let cap_sp = Stdlib.max 8 (2 * Stdlib.max 1 nrc) in
  let cap_rg = Stdlib.max 8 (2 * Stdlib.max 1 nreg) in
  let arch = inst.Instance.arch in
  let d =
    {
      inst;
      device = arch.Arch.device;
      arch;
      n;
      processors = arch.Arch.processors;
      module_reuse = sched.Schedule.module_reuse;
      resource_scale = sched.Schedule.resource_scale;
      cfg = config;
      d_soff;
      d_sadj;
      d_poff;
      d_padj;
      impl_idx = Array.make n 0;
      dur = Array.make n 0;
      mod_id = Array.make n (-1);
      res_of = Array.make n Resource.zero;
      regof = Array.make n (-1);
      procof = Array.make n (-1);
      prev_ = Array.make n (-1);
      next_ = Array.make n (-1);
      spec_after = Array.make n (-1);
      sp_pred = Array.make cap_sp (-1);
      sp_succ = Array.make cap_sp (-1);
      sp_region = Array.make cap_sp (-1);
      sp_dur = Array.make cap_sp 0;
      sp_cprev = Array.make cap_sp (-1);
      sp_cnext = Array.make cap_sp (-1);
      sp_live = Array.make cap_sp 0;
      nspecs = 0;
      sp_free = -1;
      ctrl_head = -1;
      ctrl_tail = -1;
      nctrl = 0;
      l0_key = [||];
      l0_ok = [||];
      l0_places = [||];
      rg_head = Array.make cap_rg (-1);
      rg_count = Array.make cap_rg 0;
      rg_reconf = Array.make cap_rg 0;
      rg_live = Array.make cap_rg 0;
      rg_res = Array.make cap_rg Resource.zero;
      nregions = 0;
      rg_free = -1;
      proc_head = Array.make (Stdlib.max 1 arch.Arch.processors) (-1);
      t = Array.make (n + cap_sp) 0;
      mk = 0;
      used = Resource.zero;
      fp_ok = false;
      fp_places = [||];
      undo = [];
      stamp = Array.make (n + cap_sp) 0;
      gen = 0;
      indeg = Array.make (n + cap_sp) 0;
      queue = Array.make (n + cap_sp) 0;
      suffix = Array.make (n + cap_sp) 0;
      stk = Array.make (n + cap_sp) 0;
      sortbuf = Array.make (Stdlib.max 1 n) 0;
      times_valid = false;
    }
  in
  for u = 0 to n - 1 do
    let slot = sched.Schedule.slots.(u) in
    d.impl_idx.(u) <- slot.Schedule.impl_idx;
    let impl = Instance.impl inst ~task:u ~idx:slot.Schedule.impl_idx in
    d.dur.(u) <- impl.Impl.time;
    d.mod_id.(u) <-
      (match impl.Impl.module_id with Some m -> m | None -> -1);
    d.res_of.(u) <- impl.Impl.res;
    d.t.(u) <- slot.Schedule.start_
  done;
  (* region chains in resolved start order *)
  d.nregions <- nreg;
  Array.iteri
    (fun r (reg : Schedule.region) ->
      d.rg_res.(r) <- reg.Schedule.res;
      d.rg_reconf.(r) <- reg.Schedule.reconf_ticks;
      d.rg_live.(r) <- 1;
      d.used <- Resource.add d.used reg.Schedule.res;
      let members = Schedule.region_tasks_in_order sched r in
      d.rg_count.(r) <- List.length members;
      let rec link prev = function
        | [] -> ()
        | u :: tl ->
          d.regof.(u) <- r;
          d.prev_.(u) <- prev;
          (match prev with
          | -1 -> d.rg_head.(r) <- u
          | p -> d.next_.(p) <- u);
          link u tl
      in
      link (-1) members)
    sched.Schedule.regions;
  (* processor chains in start order, ties by task id *)
  for p = 0 to d.processors - 1 do
    let count = ref 0 in
    for u = 0 to n - 1 do
      match sched.Schedule.slots.(u).Schedule.placement with
      | Schedule.On_processor p' when p' = p ->
        d.sortbuf.(!count) <- u;
        incr count;
        d.procof.(u) <- p
      | Schedule.On_processor _ | Schedule.On_region _ -> ()
    done;
    Resched_util.Sort.by_int_key d.sortbuf ~base:0 ~len:!count ~key:(fun u ->
        d.t.(u));
    let prev = ref (-1) in
    for i = 0 to !count - 1 do
      let u = d.sortbuf.(i) in
      d.prev_.(u) <- !prev;
      (match !prev with -1 -> d.proc_head.(p) <- u | pv -> d.next_.(pv) <- u);
      prev := u
    done
  done;
  (* reconfiguration slots: one per consecutive region pair (module
     reuse skips), matched against the schedule's list for identity,
     sequenced on the controller by start time *)
  let rcs =
    List.stable_sort
      (fun (a : Schedule.reconfiguration) (b : Schedule.reconfiguration) ->
        compare a.Schedule.r_start b.Schedule.r_start)
      sched.Schedule.reconfigurations
  in
  let prev_slot = ref (-1) in
  List.iter
    (fun (rc : Schedule.reconfiguration) ->
      let s = d.nspecs in
      d.nspecs <- s + 1;
      if s >= Array.length d.sp_pred then
        invalid_arg "Delta.of_schedule: reconfiguration overflow";
      if d.spec_after.(rc.Schedule.t_in) >= 0 then
        invalid_arg "Delta.of_schedule: duplicate reconfiguration";
      if d.next_.(rc.Schedule.t_in) <> rc.Schedule.t_out then
        invalid_arg
          "Delta.of_schedule: reconfiguration does not match region chain";
      d.sp_pred.(s) <- rc.Schedule.t_in;
      d.sp_succ.(s) <- rc.Schedule.t_out;
      d.sp_region.(s) <- rc.Schedule.region;
      d.sp_dur.(s) <- rc.Schedule.r_end - rc.Schedule.r_start;
      d.sp_live.(s) <- 1;
      d.spec_after.(rc.Schedule.t_in) <- s;
      d.t.(n + s) <- rc.Schedule.r_start;
      d.sp_cprev.(s) <- !prev_slot;
      (match !prev_slot with
      | -1 -> d.ctrl_head <- s
      | p -> d.sp_cnext.(p) <- s);
      prev_slot := s)
    rcs;
  d.ctrl_tail <- !prev_slot;
  d.nctrl <- d.nspecs;
  (* canonicalize: the reduced graph can start some nodes earlier than
     the pipeline's richer edge set did; one full evaluation settles on
     this plan's own fixpoint (and [verify] holds from here on) *)
  if not (eval_oracle d) then
    invalid_arg "Delta.of_schedule: schedule's plan graph is cyclic";
  update_makespan d;
  (match sched.Schedule.floorplan with
  | Some places when nreg > 0 ->
    d.fp_ok <- true;
    d.fp_places <- places
  | Some _ | None -> requery_fp d);
  d.undo <- [];
  d.times_valid <- true;
  d

(* ------------------------------------------------------------------ *)
(* Materialization and fingerprinting. *)

let region_chain d r =
  let rec walk u acc =
    if u < 0 then List.rev acc else walk d.next_.(u) (u :: acc)
  in
  walk d.rg_head.(r) []

let to_schedule d =
  let n = d.n in
  (* compact live regions, ascending slot order — the same enumeration
     the floorplan queries use, so cached placements line up *)
  let dense = Array.make (Stdlib.max 1 d.nregions) (-1) in
  let nlive = ref 0 in
  for r = 0 to d.nregions - 1 do
    if d.rg_live.(r) = 1 then begin
      dense.(r) <- !nlive;
      incr nlive
    end
  done;
  let regions =
    Array.make !nlive
      { Schedule.res = Resource.zero; reconf_ticks = 0; tasks = [] }
  in
  for r = 0 to d.nregions - 1 do
    if d.rg_live.(r) = 1 then
      regions.(dense.(r)) <-
        {
          Schedule.res = d.rg_res.(r);
          reconf_ticks = d.rg_reconf.(r);
          tasks = region_chain d r;
        }
  done;
  let slots =
    Array.init n (fun u ->
        let placement =
          if d.regof.(u) >= 0 then Schedule.On_region dense.(d.regof.(u))
          else Schedule.On_processor (Stdlib.max 0 d.procof.(u))
        in
        {
          Schedule.impl_idx = d.impl_idx.(u);
          placement;
          start_ = d.t.(u);
          end_ = d.t.(u) + d.dur.(u);
        })
  in
  let reconfigurations =
    let rec walk s acc =
      if s < 0 then List.rev acc
      else
        walk d.sp_cnext.(s)
          ({
             Schedule.region = dense.(d.sp_region.(s));
             t_in = d.sp_pred.(s);
             t_out = d.sp_succ.(s);
             r_start = d.t.(sp_node d s);
             r_end = d.t.(sp_node d s) + d.sp_dur.(s);
           }
          :: acc)
    in
    walk d.ctrl_head []
  in
  {
    Schedule.instance = d.inst;
    regions;
    slots;
    reconfigurations;
    makespan = d.mk;
    floorplan = (if d.fp_ok then Some d.fp_places else None);
    module_reuse = d.module_reuse;
    resource_scale = d.resource_scale;
  }

let fingerprint d =
  let regions =
    List.map
      (fun r -> (d.rg_res.(r), d.rg_reconf.(r), region_chain d r))
      (live_regions d)
  in
  let procs =
    Array.to_list
      (Array.init d.processors (fun p ->
           let rec walk u acc =
             if u < 0 then List.rev acc else walk d.next_.(u) (u :: acc)
           in
           walk d.proc_head.(p) []))
  in
  let ctrl =
    let rec walk s acc =
      if s < 0 then List.rev acc
      else
        walk d.sp_cnext.(s)
          ((d.sp_pred.(s), d.sp_succ.(s), d.sp_region.(s), d.sp_dur.(s),
            d.t.(sp_node d s))
          :: acc)
    in
    walk d.ctrl_head []
  in
  let tasks =
    Array.init d.n (fun u ->
        (d.impl_idx.(u), d.regof.(u), d.procof.(u), d.t.(u), d.dur.(u)))
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (regions, procs, ctrl, tasks, d.mk, d.used, d.fp_ok, d.fp_places)
          []))
