(** PA — the deterministic scheduling heuristic (Secs. IV-V).

    Runs the eight-step pipeline: implementation selection, critical-path
    extraction, regions definition, software task balancing, start/end
    computation, software task mapping, reconfigurations scheduling and
    the floorplan feasibility check — restarting with virtually reduced
    FPGA resources when no feasible floorplan exists. *)

type config = {
  ordering : Regions_define.ordering;
      (** non-critical hardware task order in regions definition;
          {!Regions_define.By_efficiency} gives the paper's PA *)
  module_reuse : bool;
      (** allow consecutive same-module tasks in a region to skip the
          reconfiguration (paper's future work; default false) *)
  floorplan_engine : Resched_floorplan.Floorplanner.engine;
  floorplan_node_limit : int option;
  floorplan_cache : Resched_floorplan.Fp_cache.t option;
      (** when set, step H consults this shared {!Resched_floorplan.Fp_cache}
          instead of calling the floorplanner directly, so shrink-retry
          attempts (and other schedulers sharing the cache) reuse
          verdicts (default [None]) *)
  max_attempts : int;
      (** floorplan retries before falling back to all-software *)
  shrink_factor : float;
      (** virtual [maxRes] multiplier applied per retry (Sec. V-H) *)
}

val default_config : config
(** Efficiency ordering, no module reuse, backtracking floorplanner,
    8 attempts, shrink 0.9. *)

type stats = {
  attempts : int;  (** scheduling attempts (>= 1) *)
  scheduling_seconds : float;  (** time in steps 1-7 *)
  floorplanning_seconds : float;  (** time in step 8 *)
}

(** Restart-context arena: memoizes, per (instance, resource-scale),
    everything steps 1-2 recompute identically on every restart — the
    cost weights, the initial implementation selection and the base CPM
    windows — and recycles one arena {!State.t} per scale through
    {!State.reset} so an iteration allocates no fresh working state.
    A context belongs to one instance and is not thread-safe: the
    parallel randomized search holds one per worker domain. *)
module Context : sig
  type t

  val create : Resched_platform.Instance.t -> t

  val state : t -> resource_scale:float -> State.t
  (** The arena state for this scale, reset and ready for steps 3-7.
      Invalidates whatever the previous [state] call for the same scale
      returned (it is the same recycled object). Exposed for tests and
      benchmarks; {!schedule_once} is the normal entry point. *)
end

type candidate
(** One restart iteration's outcome, {e borrowed} from the context
    arena: placements, the sequenced reconfigurations and their final
    resolved times, without the boxed {!Schedule.t}. Valid until the
    next {!schedule_candidate} or {!schedule_once} on the same context;
    {!materialize} copies it into an owning schedule. *)

val schedule_candidate : ?config:config -> ?resource_scale:float ->
  ctx:Context.t -> Resched_platform.Instance.t -> candidate
(** Steps 1-7 over the context's arena — the struct-of-arrays restart
    kernel. The restart loop inspects {!candidate_makespan} (and
    {!candidate_needs} for the floorplan check) and only pays
    {!materialize} for improving iterations. [inst] must be the
    instance the context was created for (checked by identity). *)

val candidate_makespan : candidate -> int
(** O(1); equals [(materialize c).makespan]. *)

val candidate_needs : candidate -> Resched_fabric.Resource.t array
(** Fresh array of per-region requirements, creation order — what the
    floorplan feasibility check consumes. *)

val materialize : candidate -> Schedule.t
(** The owning {!Schedule.t} — bit-identical to what {!schedule_once}
    with the same configuration returns (property-tested). *)

val schedule_once : ?config:config -> ?resource_scale:float ->
  ?ctx:Context.t -> ?incremental:bool -> Resched_platform.Instance.t ->
  Schedule.t
(** Steps 1-7 only (no floorplan check); [resource_scale] (default 1.0)
    virtually scales the FPGA resources. The result's [floorplan] is
    [None]. Used by the randomized variant's inner loop and by tests.

    [ctx] reuses the restart arena's memoized invariants and recycled
    state (the returned schedule never aliases the arena, so it survives
    later iterations); [incremental] (default [true]) selects the
    incremental timing solver in step 7 ({!Reconf_sched.run}). Both
    switches change wall-clock only — the produced schedule is
    bit-identical to the from-scratch path (property-tested). *)

val all_software_schedule : Resched_platform.Instance.t -> Schedule.t
(** Every task on its fastest software implementation, mapped on the
    processors; trivially floorplan-feasible. The terminal fallback. *)

val run : ?config:config -> ?ctx:Context.t ->
  Resched_platform.Instance.t -> Schedule.t * stats
(** The full PA algorithm. The returned schedule always validates
    ({!Validate.check}) and carries a floorplan when it uses regions.
    [ctx] shares a restart arena across the shrink attempts (and across
    calls, when the caller keeps one). *)
