module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Instance = Resched_platform.Instance
module Impl = Resched_platform.Impl

type reconf_spec = {
  region_id : int;
  t_in : int;
  t_out : int;
  dur : int;
  critical : bool;
}

type resolved = {
  task_start : int array;
  task_end : int array;
  rec_start : int array;
  rec_end : int array;
  makespan : int;
}

let same_module (a : Impl.t) (b : Impl.t) =
  match (a.module_id, b.module_id) with
  | Some x, Some y -> x = y
  | _ -> false

let reconf_specs ?(module_reuse = false) state =
  let critical = state.State.cpm.Cpm.critical in
  let specs = ref [] in
  State.iter_regions state (fun (r : State.region) ->
      let rec pairs = function
        | a :: b :: tl ->
          let skip =
            module_reuse
            && same_module (State.impl state a) (State.impl state b)
          in
          if not skip then
            specs :=
              {
                region_id = r.State.id;
                t_in = a;
                t_out = b;
                dur = r.State.reconf;
                critical = critical.(b);
              }
              :: !specs;
          pairs (b :: tl)
        | [ _ ] | [] -> ()
      in
      pairs r.State.tasks);
  Array.of_list (List.rev !specs)

let resolve state ~reconfigs ~sequence =
  let n = Instance.size state.State.inst in
  let nr = Array.length reconfigs in
  let g = Graph.create (n + nr) in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (Graph.edges state.State.dep);
  Array.iteri
    (fun k spec ->
      Graph.add_edge g spec.t_in (n + k);
      Graph.add_edge g (n + k) spec.t_out)
    reconfigs;
  let rec chain = function
    | a :: b :: tl ->
      Graph.add_edge g (n + a) (n + b);
      chain (b :: tl)
    | [ _ ] | [] -> ()
  in
  chain sequence;
  let durations =
    Array.init (n + nr) (fun i ->
        if i < n then State.duration state i else reconfigs.(i - n).dur)
  in
  let cpm = Cpm.compute g ~durations in
  let task_start = Array.sub cpm.Cpm.t_min 0 n in
  let task_end = Array.init n (fun u -> task_start.(u) + durations.(u)) in
  let rec_start = Array.init nr (fun k -> cpm.Cpm.t_min.(n + k)) in
  let rec_end = Array.init nr (fun k -> rec_start.(k) + reconfigs.(k).dur) in
  let makespan = Array.fold_left Stdlib.max 0 task_end in
  { task_start; task_end; rec_start; rec_end; makespan }

let must_precede state a b =
  a.t_out = b.t_in || (Graph.reachable state.State.dep a.t_out).(b.t_in)

let must_precede_closure closure a b =
  a.t_out = b.t_in || Graph.in_closure closure a.t_out b.t_in

module Solver = struct
  (* The augmented graph (data edges, region/processor ordering edges,
     one node per reconfiguration wired between its in/out tasks) is
     invariant across the resolves of one [Reconf_sched.run]; only the
     controller-chain edges over [sequence] change. The base adjacency,
     in-degrees and durations are therefore built once, the chain is kept
     as a [chain_next] side array, and every resolve is a single
     allocation-free Kahn pass that relaxes earliest starts as nodes are
     dequeued (any topological order yields the same longest-path
     [t_min], so the result is bit-identical to the from-scratch
     {!resolve}). *)

  (* Every field is mutable so one solver value can be {!reload}ed for
     each restart iteration, growing its arrays on demand: loops are
     bounded by [n]/[nr], never by array lengths. *)
  type t = {
    mutable n : int;  (** task nodes *)
    mutable nr : int;  (** reconfiguration nodes, ids [n .. n+nr-1] *)
    mutable reconfigs : reconf_spec array;
    mutable adj : int array;  (** base augmented adjacency, CSR targets *)
    mutable off : int array;  (** CSR row offsets, [total + 1] entries *)
    mutable base_indeg : int array;
    mutable durations : int array;
    (* scratch, overwritten by every [resolve] *)
    mutable chain_next : int array;
        (** spec index -> next spec in sequence, -1 *)
    mutable indeg : int array;
    mutable queue : int array;
    mutable t_min : int array;
    mutable task_start : int array;
    mutable task_end : int array;
    mutable rec_start : int array;
    mutable rec_end : int array;
  }

  let of_plan ~graph ~durations:task_durations ~reconfigs =
    let n = Graph.size graph in
    if Array.length task_durations <> n then
      invalid_arg "Timing.Solver.of_plan: durations length mismatch";
    let nr = Array.length reconfigs in
    let total = n + nr in
    let succ = Array.make total [] in
    let base_indeg = Array.make total 0 in
    let add u v =
      succ.(u) <- v :: succ.(u);
      base_indeg.(v) <- base_indeg.(v) + 1
    in
    for u = 0 to n - 1 do
      List.iter (fun v -> add u v) (Graph.succs graph u)
    done;
    Array.iteri
      (fun k spec ->
        add spec.t_in (n + k);
        add (n + k) spec.t_out)
      reconfigs;
    (* Flatten to CSR: the base adjacency never changes after [create],
       and [resolve] runs many times over it — contiguous int arrays
       beat chasing cons cells on every pass. *)
    let edges = Array.fold_left (fun acc bi -> acc + bi) 0 base_indeg in
    let adj = Array.make (Stdlib.max 1 edges) 0 in
    let off = Array.make (total + 1) 0 in
    let c = ref 0 in
    for u = 0 to total - 1 do
      off.(u) <- !c;
      List.iter
        (fun v ->
          adj.(!c) <- v;
          incr c)
        succ.(u)
    done;
    off.(total) <- !c;
    let durations =
      Array.init total (fun i ->
          if i < n then task_durations.(i) else reconfigs.(i - n).dur)
    in
    {
      n;
      nr;
      reconfigs;
      adj;
      off;
      base_indeg;
      durations;
      chain_next = Array.make (Stdlib.max 1 nr) (-1);
      indeg = Array.make total 0;
      queue = Array.make total 0;
      t_min = Array.make total 0;
      task_start = Array.make n 0;
      task_end = Array.make n 0;
      rec_start = Array.make (Stdlib.max 1 nr) 0;
      rec_end = Array.make (Stdlib.max 1 nr) 0;
    }

  let create state ~reconfigs =
    of_plan ~graph:state.State.dep ~durations:(State.durations state)
      ~reconfigs

  let scratch () =
    {
      n = 0;
      nr = 0;
      reconfigs = [||];
      adj = [| 0 |];
      off = [| 0 |];
      base_indeg = [||];
      durations = [||];
      chain_next = [| -1 |];
      indeg = [||];
      queue = [||];
      t_min = [||];
      task_start = [||];
      task_end = [||];
      rec_start = [| 0 |];
      rec_end = [| 0 |];
    }

  let reload s state ~reconfigs =
    let graph = state.State.dep in
    let n = Resched_taskgraph.Graph.size graph in
    let nr = Array.length reconfigs in
    let total = n + nr in
    s.n <- n;
    s.nr <- nr;
    s.reconfigs <- reconfigs;
    let grow a need =
      if Array.length a < need then
        Array.make (Stdlib.max need (2 * Array.length a)) 0
      else a
    in
    s.off <- grow s.off (total + 1);
    s.base_indeg <- grow s.base_indeg total;
    s.durations <- grow s.durations total;
    s.indeg <- grow s.indeg total;
    s.queue <- grow s.queue total;
    s.t_min <- grow s.t_min total;
    s.task_start <- grow s.task_start n;
    s.task_end <- grow s.task_end n;
    s.chain_next <- grow s.chain_next (Stdlib.max 1 nr);
    s.rec_start <- grow s.rec_start (Stdlib.max 1 nr);
    s.rec_end <- grow s.rec_end (Stdlib.max 1 nr);
    let off = s.off and base_indeg = s.base_indeg in
    Array.fill base_indeg 0 total 0;
    (* Pass 1: out-degree per node into [off.(u+1)], in-degrees as we
       go. Successors are taken in [succs_rev] order (no reversed-list
       allocation): the longest-path relaxation of [resolve] is
       edge-order independent, so the times stay bit-identical to
       {!of_plan}'s ordering. *)
    for u = 0 to n - 1 do
      let c = ref 0 in
      List.iter
        (fun v ->
          incr c;
          base_indeg.(v) <- base_indeg.(v) + 1)
        (Graph.succs_rev graph u);
      off.(u + 1) <- !c
    done;
    for k = 0 to nr - 1 do
      let spec = reconfigs.(k) in
      off.(spec.t_in + 1) <- off.(spec.t_in + 1) + 1;
      off.(n + k + 1) <- 1;
      base_indeg.(n + k) <- base_indeg.(n + k) + 1;
      base_indeg.(spec.t_out) <- base_indeg.(spec.t_out) + 1
    done;
    off.(0) <- 0;
    for u = 0 to total - 1 do
      off.(u + 1) <- off.(u + 1) + off.(u)
    done;
    let edges = off.(total) in
    s.adj <- grow s.adj (Stdlib.max 1 edges);
    let adj = s.adj in
    (* Pass 2: fill rows, using [queue] as the per-row cursor. *)
    let cur = s.queue in
    Array.blit off 0 cur 0 total;
    for u = 0 to n - 1 do
      List.iter
        (fun v ->
          adj.(cur.(u)) <- v;
          cur.(u) <- cur.(u) + 1)
        (Graph.succs_rev graph u)
    done;
    for k = 0 to nr - 1 do
      let spec = reconfigs.(k) in
      adj.(cur.(spec.t_in)) <- n + k;
      cur.(spec.t_in) <- cur.(spec.t_in) + 1;
      adj.(cur.(n + k)) <- spec.t_out;
      cur.(n + k) <- cur.(n + k) + 1
    done;
    let durations = s.durations in
    for i = 0 to n - 1 do
      durations.(i) <- State.duration state i
    done;
    for k = 0 to nr - 1 do
      durations.(n + k) <- reconfigs.(k).dur
    done

  (* Shared Kahn pass: chain edges must already be installed in
     [chain_next]/[indeg] (on top of a fresh [base_indeg] blit). *)
  let finish_resolve ?release s =
    let { n; nr; indeg; queue; t_min; chain_next; durations; _ } = s in
    let total = n + nr in
    (match release with
    | None -> Array.fill t_min 0 total 0
    | Some r ->
      if Array.length r <> total then
        invalid_arg "Timing.Solver.resolve: release length mismatch";
      Array.blit r 0 t_min 0 total);
    let head = ref 0 and tail = ref 0 in
    (* Node ids in [adj] were validated when the base adjacency was
       built, so unchecked accesses are safe (cf. [Cpm.compute_with]).
       Defined outside the drain loop: a closure per popped node is real
       allocation in this, the single hottest loop of the restart
       kernel. *)
    let relax v finish =
      if Array.unsafe_get t_min v < finish then
        Array.unsafe_set t_min v finish;
      let d = Array.unsafe_get indeg v - 1 in
      Array.unsafe_set indeg v d;
      if d = 0 then begin
        Array.unsafe_set queue !tail v;
        incr tail
      end
    in
    for u = 0 to total - 1 do
      if indeg.(u) = 0 then begin
        queue.(!tail) <- u;
        incr tail
      end
    done;
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      (* [u]'s predecessors are all processed: its start is final, so its
         successors can be relaxed now. *)
      let finish = t_min.(u) + durations.(u) in
      let adj = s.adj in
      for j = Array.unsafe_get s.off u to Array.unsafe_get s.off (u + 1) - 1 do
        relax (Array.unsafe_get adj j) finish
      done;
      if u >= n then begin
        let next = chain_next.(u - n) in
        if next >= 0 then relax (n + next) finish
      end
    done;
    if !tail < total then begin
      let stuck = ref [] in
      for u = total - 1 downto 0 do
        if indeg.(u) > 0 then stuck := u :: !stuck
      done;
      raise (Graph.Cycle !stuck)
    end;
    let makespan = ref 0 in
    for u = 0 to n - 1 do
      s.task_start.(u) <- t_min.(u);
      s.task_end.(u) <- t_min.(u) + durations.(u);
      if s.task_end.(u) > !makespan then makespan := s.task_end.(u)
    done;
    for k = 0 to nr - 1 do
      s.rec_start.(k) <- t_min.(n + k);
      s.rec_end.(k) <- t_min.(n + k) + s.reconfigs.(k).dur
    done;
    {
      task_start = s.task_start;
      task_end = s.task_end;
      rec_start = s.rec_start;
      rec_end = s.rec_end;
      makespan = !makespan;
    }

  let prep s =
    Array.fill s.chain_next 0 s.nr (-1);
    Array.blit s.base_indeg 0 s.indeg 0 (s.n + s.nr)

  let resolve ?release s ~sequence =
    prep s;
    let n = s.n and chain_next = s.chain_next and indeg = s.indeg in
    let rec chain = function
      | a :: b :: tl ->
        chain_next.(a) <- b;
        indeg.(n + b) <- indeg.(n + b) + 1;
        chain (b :: tl)
      | [ _ ] | [] -> ()
    in
    chain sequence;
    finish_resolve ?release s

  let resolve_array ?release s ~sequence ~len =
    if len < 0 || len > Array.length sequence then
      invalid_arg "Timing.Solver.resolve_array: bad length";
    prep s;
    let n = s.n and chain_next = s.chain_next and indeg = s.indeg in
    for i = 0 to len - 2 do
      let a = sequence.(i) and b = sequence.(i + 1) in
      chain_next.(a) <- b;
      indeg.(n + b) <- indeg.(n + b) + 1
    done;
    finish_resolve ?release s
end
