(** PA-R — the randomized scheduler variant (Sec. VI, Algorithm 1).

    Repeatedly runs the deterministic pipeline with a random processing
    order for non-critical hardware tasks, keeping the best schedule that
    passes the floorplan check. The floorplanner is only consulted when a
    candidate improves on the incumbent, amortizing its cost;
    floorplan-infeasible candidates are discarded rather than triggering
    the resource-shrinking restart of PA.

    Both entry points accept a {!Resched_floorplan.Fp_cache.t} so that
    repeated region-need multisets skip the floorplanner entirely, and
    {!run_parallel} fans the restart loop out over OCaml 5 domains with a
    shared atomic incumbent makespan. *)

type trace_point = {
  elapsed : float;
      (** seconds since the run started, read at the start of the
          improving iteration *)
  iteration : int;
      (** 1-based iteration index within the stream that found the
          improvement (worker-local under {!run_parallel}) *)
  makespan : int;  (** best feasible makespan at that moment *)
}

type outcome = {
  schedule : Schedule.t option;
      (** best feasible schedule; [None] only if no iteration produced a
          floorplannable schedule within the budget *)
  iterations : int;
      (** total restart iterations, summed over workers *)
  trace : trace_point list;  (** improvements, oldest first (Fig. 6) *)
}

val run : ?config:Pa.config -> ?seed:int -> ?min_iterations:int ->
  ?cache:Resched_floorplan.Fp_cache.t -> ?incremental:bool ->
  budget_seconds:float -> Resched_platform.Instance.t -> outcome
(** Algorithm 1 with a wall-clock budget. [min_iterations] (default 1)
    iterations are executed even if the budget is already exhausted, so a
    tiny budget still returns a schedule whenever one is floorplannable.
    The [config]'s [ordering] field is ignored (PA-R always randomizes
    non-critical tasks). When [cache] is given, floorplan verdicts are
    memoized through it; the packer being deterministic, this changes
    wall-clock only, never the result for a fixed iteration count.

    The adaptive virtual resource scale moves on the integer
    [shrink_factor^k] lattice (k in [0..6]) so the per-scale restart
    memo and the floorplan cache see repeated keys.

    [incremental] (default [true]) runs each iteration through a
    per-worker {!Pa.Context} restart arena and the incremental timing
    solver; [incremental:false] is the from-scratch oracle path. Both
    produce bit-identical candidate streams for a fixed
    [(seed, min_iterations, budget_seconds = 0.)] configuration. *)

val run_parallel : ?config:Pa.config -> ?seed:int -> ?min_iterations:int ->
  ?jobs:int -> ?pool:Resched_util.Domain_pool.Pool.t ->
  ?cache:Resched_floorplan.Fp_cache.t -> ?incremental:bool ->
  budget_seconds:float -> Resched_platform.Instance.t -> outcome
(** [run] fanned out over [jobs] worker domains (default
    {!Resched_util.Domain_pool.available_cores}) sharing one atomic
    incumbent makespan — a worker floorplans a candidate only if it beats
    the best found by {e any} worker — and, when given, one [cache].

    With [pool], the fan-out reuses that persistent pool's resident
    domains instead of spawning fresh ones per call — across a batch of
    runs this amortizes domain spawn/join and keeps per-domain state
    warm: each worker's {!Pa.Context} restart arena (cached in
    domain-local storage, keyed by instance identity) and its floorplan
    cache L1 memo survive between calls. [jobs] then defaults to the
    pool's width, and giving both with different values is an error.
    Pool reuse never changes results: worker 0 still runs on the calling
    domain, and arena reuse is bit-identical by construction.

    Reproducibility: worker 0 replays exactly the stream [run] would use
    for [seed]; workers 1..jobs-1 use independent streams split from
    [seed], so the set of candidate streams is a function of
    [(seed, jobs)] alone. [jobs = 1] is literally [run]. Under a non-zero
    wall-clock budget the {e number} of iterations each stream completes
    still depends on machine load, so only [budget_seconds = 0.] with
    [min_iterations] set gives bit-identical outcomes across runs; see
    DESIGN.md for the full determinism discussion.

    [min_iterations] is a total: each worker performs at least
    [ceil (min_iterations / jobs)] iterations. The merged trace is
    globally ordered by elapsed time and strictly improving. *)
